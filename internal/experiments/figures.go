package experiments

import (
	"fmt"
	"os"
	"time"

	"github.com/cognitive-sim/compass/internal/c2"
	"github.com/cognitive-sim/compass/internal/cocomac"
	"github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/pcc"
	"github.com/cognitive-sim/compass/internal/perfmodel"
	"github.com/cognitive-sim/compass/internal/power"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// Shared experiment constants.
const (
	// cocomacSeed fixes the synthetic connectome for all experiments.
	cocomacSeed = 2012
	// paperCoresPerNode is the paper's weak-scaling density (§VI-B).
	paperCoresPerNode = 16384
	// paperFiringHz and paperDensity set the operating point.
	paperFiringHz = 8.1
	paperDensity  = 0.10
	// paperTicks is the simulated tick count of Figures 4 and 5.
	paperTicks = 500
	// hostTicks is the tick count for host-scale measured runs.
	hostTicks = 80
	// hostCoresPerRank sizes host-scale measured models.
	hostCoresPerRank = 16
)

// hostCoCoMacRun compiles a scaled CoCoMac model with PCC and simulates
// it functionally, returning the run statistics and timings.
func hostCoCoMacRun(ranks, totalCores, ticks int) (*compass.RunStats, time.Duration, time.Duration, error) {
	net := cocomac.Generate(cocomacSeed)
	spec, err := net.ToSpec(totalCores, uint64(ticks))
	if err != nil {
		return nil, 0, 0, err
	}
	t0 := time.Now()
	res, err := pcc.Compile(spec, ranks)
	if err != nil {
		return nil, 0, 0, err
	}
	compileTime := time.Since(t0)
	t1 := time.Now()
	stats, err := compass.Run(res.Model, compass.Config{
		Ranks:          res.Ranks,
		ThreadsPerRank: 2,
		RankOf:         res.RankOf,
		MeasurePhases:  true,
	}, ticks)
	if err != nil {
		return nil, 0, 0, err
	}
	return stats, compileTime, time.Since(t1), nil
}

// Fig3 reproduces the region allocation map of Figure 3: the raw
// Paxinos-derived core allocation versus the allocation after matrix
// balancing, for a 4096-core model, with each region's out-degree.
func Fig3() ([]*Table, error) {
	net := cocomac.Generate(cocomacSeed)
	rows, err := net.CoreAllocations(4096)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig3",
		Title:  "Macaque brain map: Paxinos vs balanced core allocation (4096-core model)",
		Header: []string{"region", "class", "paxinos cores", "balanced cores", "out-degree", "volume"},
	}
	for _, r := range rows {
		vol := "atlas"
		if r.Imputed {
			vol = "imputed (median)"
		}
		t.Rows = append(t.Rows, []string{
			r.Name, r.Class.String(), fmtI(r.PaxinosCores), fmtI(r.BalancedCores), fmtI(r.OutDegree), vol,
		})
	}
	lgn := net.RegionIndex("LGN")
	deg := 0
	for j := range net.Adj[lgn] {
		if net.Adj[lgn][j] {
			deg++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d regions (paper: 77); %d with median-imputed volumes (paper: 13 = 5 cortical + 8 thalamic)", len(rows), countImputed(rows)),
		fmt.Sprintf("LGN, the first stage of the thalamocortical visual stream, has %d outgoing pathways", deg),
		"allocations are plotted in log space in the paper; both columns sum to the 4096-core budget here")
	return []*Table{t}, nil
}

func countImputed(rows []cocomac.AllocationRow) int {
	n := 0
	for _, r := range rows {
		if r.Imputed {
			n++
		}
	}
	return n
}

// Fig4a reproduces the weak-scaling figure: fixed 16384 cores per node,
// 1–16 Blue Gene/Q racks, total and per-phase wall-clock for 500 ticks,
// projected from the analytic CoCoMac workload through the calibrated
// machine model — plus a host-scale measured run of the same protocol.
func Fig4a() ([]*Table, error) {
	net := cocomac.Generate(cocomacSeed)
	m := perfmodel.BlueGeneQ()
	proj := &Table{
		ID:    "fig4a",
		Title: "Weak scaling on Blue Gene/Q (projected; 16384 TrueNorth cores/node, 500 ticks, 32 threads/process)",
		Header: []string{"CPUs", "nodes", "cores (M)", "synapse ms/tick", "neuron ms/tick",
			"network ms/tick", "total ms/tick", "total 500 ticks (s)", "x real time"},
	}
	for _, racks := range []int{1, 2, 4, 8, 16} {
		nodes := racks * 1024
		w, err := perfmodel.AnalyticCoCoMac(net, nodes, paperCoresPerNode, paperFiringHz, paperDensity)
		if err != nil {
			return nil, err
		}
		pt, err := perfmodel.Project(m, w, 32, compass.TransportMPI)
		if err != nil {
			return nil, err
		}
		proj.Rows = append(proj.Rows, []string{
			fmtI(nodes * 16), fmtI(nodes), fmtI(nodes * paperCoresPerNode / (1 << 20)),
			fmtMS(pt.Synapse), fmtMS(pt.Neuron), fmtMS(pt.Network),
			fmtMS(pt.Total()), fmtF(pt.Total() * paperTicks), fmtF(pt.Total() / 0.001),
		})
	}
	proj.Notes = append(proj.Notes,
		"paper: 256M cores on 262,144 CPUs took 194 s for 500 ticks (388x real time); total time near-constant across the sweep",
		"network-phase growth is dominated by the reduce-scatter, which scales with communicator size, as in the paper")

	meas := &Table{
		ID:    "fig4a-measured",
		Title: "Weak scaling, functional simulator on this host (16 cores/rank; workload statistics are scale-exact)",
		Header: []string{"ranks", "cores", "spikes/tick", "remote spikes/tick", "msgs/tick",
			"firing Hz", "compile (ms)", "simulate (ms)", "synapse (ms)", "neuron (ms)", "network (ms)"},
	}
	for _, ranks := range []int{8, 16, 32} {
		stats, ct, st, err := hostCoCoMacRun(ranks, ranks*hostCoresPerRank, hostTicks)
		if err != nil {
			return nil, err
		}
		meas.Rows = append(meas.Rows, []string{
			fmtI(ranks), fmtI(stats.NumCores),
			fmtF(float64(stats.TotalSpikes) / float64(stats.Ticks)),
			fmtF(stats.SpikesPerTick()), fmtF(stats.MessagesPerTick()),
			fmtF(stats.AvgFiringRateHz()),
			fmtI(int(ct.Milliseconds())), fmtI(int(st.Milliseconds())),
			fmtMS(stats.PhaseSeconds.Synapse), fmtMS(stats.PhaseSeconds.Neuron),
			fmtMS(stats.PhaseSeconds.Network),
		})
	}
	meas.Notes = append(meas.Notes,
		"this host has one CPU, so wall-clock grows with total model size; the per-tick workload statistics are the measured quantities that feed the projection")
	return []*Table{proj, meas}, nil
}

// Fig4b reproduces the messaging analysis: MPI message count and total
// (white matter) spike count per tick versus CPU count, with the
// link-thinning mechanism visible as falling spikes-per-message.
func Fig4b() ([]*Table, error) {
	net := cocomac.Generate(cocomacSeed)
	proj := &Table{
		ID:    "fig4b",
		Title: "Messaging and data transfer per tick (projected, weak scaling at 16384 cores/node)",
		Header: []string{"CPUs", "messages/tick", "spikes/tick (M)", "spikes/message",
			"payload GB/tick", "GB/s per node (1 ms ticks)"},
	}
	for _, racks := range []int{1, 2, 4, 8, 16} {
		nodes := racks * 1024
		w, err := perfmodel.AnalyticCoCoMac(net, nodes, paperCoresPerNode, paperFiringHz, paperDensity)
		if err != nil {
			return nil, err
		}
		gb := w.TotalRemoteSpikesPerTick * truenorth.SpikeWireBytes / 1e9
		proj.Rows = append(proj.Rows, []string{
			fmtI(nodes * 16), fmtI(int(w.TotalMessagesPerTick)),
			fmt.Sprintf("%.2f", w.TotalRemoteSpikesPerTick/1e6),
			fmtF(w.TotalRemoteSpikesPerTick / w.TotalMessagesPerTick),
			fmt.Sprintf("%.3f", gb),
			fmt.Sprintf("%.4f", w.Max.BytesSent/0.001/1e9),
		})
	}
	proj.Notes = append(proj.Notes,
		"paper: ~22M spikes/tick at 256M cores = 0.44 GB/tick at 20 B/spike, well below the 2 GB/s 5-D torus links",
		"message growth is held below spike growth by link thinning: white-matter links carry fewer spikes each as the model grows (§VI-B)")

	meas := &Table{
		ID:     "fig4b-measured",
		Title:  "Messaging, functional simulator on this host",
		Header: []string{"ranks", "cores", "msgs/tick", "remote spikes/tick", "spikes/message"},
	}
	for _, ranks := range []int{8, 16, 32} {
		stats, _, _, err := hostCoCoMacRun(ranks, ranks*hostCoresPerRank, hostTicks)
		if err != nil {
			return nil, err
		}
		spm := 0.0
		if stats.Messages > 0 {
			spm = float64(stats.RemoteSpikes) / float64(stats.Messages)
		}
		meas.Rows = append(meas.Rows, []string{
			fmtI(ranks), fmtI(stats.NumCores), fmtF(stats.MessagesPerTick()),
			fmtF(stats.SpikesPerTick()), fmtF(spm),
		})
	}
	return []*Table{proj, meas}, nil
}

// Fig5 reproduces strong scaling: a fixed 32M-core CoCoMac model on 1–16
// Blue Gene/Q racks.
func Fig5() ([]*Table, error) {
	net := cocomac.Generate(cocomacSeed)
	m := perfmodel.BlueGeneQ()
	const totalCores = 32 << 20
	proj := &Table{
		ID:    "fig5",
		Title: "Strong scaling on Blue Gene/Q (projected; fixed 32M-core CoCoMac model, 500 ticks)",
		Header: []string{"CPUs", "racks", "cores/node", "synapse ms", "neuron ms", "network ms",
			"total 500 ticks (s)", "speedup", "paper (s)"},
	}
	paperTimes := map[int]string{1: "324", 2: "-", 4: "-", 8: "47", 16: "37"}
	var base float64
	for _, racks := range []int{1, 2, 4, 8, 16} {
		nodes := racks * 1024
		w, err := perfmodel.AnalyticCoCoMac(net, nodes, totalCores/nodes, paperFiringHz, paperDensity)
		if err != nil {
			return nil, err
		}
		pt, err := perfmodel.Project(m, w, 32, compass.TransportMPI)
		if err != nil {
			return nil, err
		}
		total := pt.Total() * paperTicks
		if racks == 1 {
			base = total
		}
		proj.Rows = append(proj.Rows, []string{
			fmtI(nodes * 16), fmtI(racks), fmtI(totalCores / nodes),
			fmtMS(pt.Synapse), fmtMS(pt.Neuron), fmtMS(pt.Network),
			fmtF(total), fmt.Sprintf("%.1fx", base/total), paperTimes[racks],
		})
	}
	proj.Notes = append(proj.Notes,
		"paper: 324 s on 1 rack, 47 s on 8 racks (6.9x), 37 s on 16 racks (8.8x); perfect scaling inhibited by the communication-intense phases",
		"the model reproduces the sub-linear tail: compute shrinks 16x but the reduce-scatter grows with the communicator")

	meas := &Table{
		ID:     "fig5-measured",
		Title:  "Strong scaling, functional simulator on this host (fixed 512-core model)",
		Header: []string{"ranks", "remote spikes/tick", "msgs/tick", "peer ranks (max)", "simulate (ms)"},
	}
	for _, ranks := range []int{4, 8, 16, 32} {
		stats, _, st, err := hostCoCoMacRun(ranks, 512, hostTicks)
		if err != nil {
			return nil, err
		}
		maxPeers := 0
		for _, rs := range stats.PerRank {
			if rs.PeerRanks > maxPeers {
				maxPeers = rs.PeerRanks
			}
		}
		meas.Rows = append(meas.Rows, []string{
			fmtI(ranks), fmtF(stats.SpikesPerTick()), fmtF(stats.MessagesPerTick()),
			fmtI(maxPeers), fmtI(int(st.Milliseconds())),
		})
	}
	meas.Notes = append(meas.Notes,
		"remote traffic grows with rank count at fixed model size — the communication pressure that bends the projected curve")
	return []*Table{proj, meas}, nil
}

// Fig6 reproduces OpenMP thread scaling: a fixed 64M-core model on four
// racks, threads per process swept 1–32.
func Fig6() ([]*Table, error) {
	net := cocomac.Generate(cocomacSeed)
	m := perfmodel.BlueGeneQ()
	// 64M cores on 4096 nodes = 16384 cores/node.
	w, err := perfmodel.AnalyticCoCoMac(net, 4096, paperCoresPerNode, paperFiringHz, paperDensity)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig6",
		Title: "Thread scaling (projected; 64M-core model on 4 racks, 1 MPI process/node)",
		Header: []string{"threads/process", "synapse ms/tick", "neuron ms/tick", "network ms/tick",
			"total ms/tick", "speedup"},
	}
	var base float64
	for _, threads := range []int{1, 2, 4, 8, 16, 32} {
		pt, err := perfmodel.Project(m, w, threads, compass.TransportMPI)
		if err != nil {
			return nil, err
		}
		if threads == 1 {
			base = pt.Total()
		}
		t.Rows = append(t.Rows, []string{
			fmtI(threads), fmtMS(pt.Synapse), fmtMS(pt.Neuron), fmtMS(pt.Network),
			fmtMS(pt.Total()), fmt.Sprintf("%.1fx", base/pt.Total()),
		})
	}
	t.Notes = append(t.Notes,
		"paper: near-linear thread speedup, imperfect because the Network phase receives messages inside a critical section (a serial bottleneck at all thread counts)",
		"the critical-section and false-sharing terms cap the modelled 32-thread speedup below 32x, as observed")
	return []*Table{t}, nil
}

// Fig7 reproduces the PGAS versus MPI real-time comparison on Blue
// Gene/P: the synthetic network with 75% node-local connectivity and
// 10 Hz firing, 1000 ticks, strong-scaled over 1–4 racks — projected at
// paper scale and measured functionally (both transports really run).
func Fig7() ([]*Table, error) {
	m := perfmodel.BlueGeneP()
	proj := &Table{
		ID:    "fig7",
		Title: "PGAS vs MPI real-time simulation on Blue Gene/P (projected; 81K cores, 10 Hz, 75% local, 1000 ticks)",
		Header: []string{"CPUs", "racks", "cores/node", "PGAS s/1000 ticks", "MPI s/1000 ticks",
			"MPI/PGAS", "real time?"},
	}
	const totalCores = 81920
	for _, racks := range []int{1, 2, 4} {
		nodes := racks * 1024
		w, err := perfmodel.SyntheticUniform(nodes, totalCores/nodes, 10, 0.75, paperDensity)
		if err != nil {
			return nil, err
		}
		pgasT, err := perfmodel.Project(m, w, 4, compass.TransportPGAS)
		if err != nil {
			return nil, err
		}
		mpiT, err := perfmodel.Project(m, w, 4, compass.TransportMPI)
		if err != nil {
			return nil, err
		}
		rt := "no"
		if pgasT.Total() <= 0.00125 {
			rt = "yes (soft)"
		}
		proj.Rows = append(proj.Rows, []string{
			fmtI(nodes * 4), fmtI(racks), fmtI(totalCores / nodes),
			fmt.Sprintf("%.2f", pgasT.Total()*1000), fmt.Sprintf("%.2f", mpiT.Total()*1000),
			fmt.Sprintf("%.2fx", mpiT.Total()/pgasT.Total()), rt,
		})
	}
	proj.Notes = append(proj.Notes,
		"paper: PGAS simulates 81K cores in real time (1000 ticks in 1 s) on 4 racks; MPI takes 2.1x as long",
		"the PGAS win comes from one-sided puts (no buffering or tag matching) and replacing the reduce-scatter with one low-latency global barrier")

	// Measured: both transports actually run on the functional simulator.
	model, err := SyntheticModel(8, hostCoresPerRank, 0.75, 10, 77)
	if err != nil {
		return nil, err
	}
	meas := &Table{
		ID:     "fig7-measured",
		Title:  "PGAS vs MPI, functional simulator on this host (8 ranks x 16 cores, 200 ticks)",
		Header: []string{"transport", "spikes/tick", "remote spikes/tick", "msgs or puts/tick", "firing Hz", "wall (ms)"},
	}
	for _, tr := range []compass.Transport{compass.TransportPGAS, compass.TransportMPI} {
		t0 := time.Now()
		stats, err := compass.Run(model, compass.Config{Ranks: 8, ThreadsPerRank: 2, Transport: tr}, 200)
		if err != nil {
			return nil, err
		}
		meas.Rows = append(meas.Rows, []string{
			tr.String(),
			fmtF(float64(stats.TotalSpikes) / float64(stats.Ticks)),
			fmtF(stats.SpikesPerTick()), fmtF(stats.MessagesPerTick()),
			fmtF(stats.AvgFiringRateHz()), fmtI(int(time.Since(t0).Milliseconds())),
		})
	}
	meas.Notes = append(meas.Notes,
		"both transports produce identical spike traffic (the simulator is transport-invariant); host wall-clock differences on one CPU reflect Go runtime behaviour, not Blue Gene/P network hardware — the projection above carries the hardware comparison")
	return []*Table{proj, meas}, nil
}

// Headline reproduces the paper's scale claims: 256M cores, 65B neurons,
// 16T synapses, 388x slower than real time at 8.1 Hz.
func Headline() ([]*Table, error) {
	net := cocomac.Generate(cocomacSeed)
	m := perfmodel.BlueGeneQ()
	nodes := 16384
	w, err := perfmodel.AnalyticCoCoMac(net, nodes, paperCoresPerNode, paperFiringHz, paperDensity)
	if err != nil {
		return nil, err
	}
	pt, err := perfmodel.Project(m, w, 32, compass.TransportMPI)
	if err != nil {
		return nil, err
	}
	cores := nodes * paperCoresPerNode
	neurons := float64(cores) * truenorth.CoreSize
	synapses := float64(cores) * truenorth.CoreSize * truenorth.CoreSize
	t := &Table{
		ID:     "headline",
		Title:  "Headline scale: 16-rack Blue Gene/Q run",
		Header: []string{"quantity", "paper", "this reproduction"},
		Rows: [][]string{
			{"CPUs", "262,144", fmtI(nodes * 16)},
			{"TrueNorth cores", "256M", fmt.Sprintf("%dM", cores/(1<<20))},
			{"neurons", "65B", fmt.Sprintf("%.1fB", neurons/1e9)},
			{"synapses (crossbar capacity)", "16T", fmt.Sprintf("%.1fT", synapses/1e12)},
			{"mean firing rate", "8.1 Hz", fmt.Sprintf("%.1f Hz", paperFiringHz)},
			{"slower than real time", "388x", fmt.Sprintf("%.0fx", pt.Total()/0.001)},
			{"wall clock, 500 ticks", "194 s", fmt.Sprintf("%.0f s", pt.Total()*paperTicks)},
			{"white-matter spikes/tick", "~22M", fmt.Sprintf("%.1fM", w.TotalRemoteSpikesPerTick/1e6)},
			{"spike payload/tick", "0.44 GB", fmt.Sprintf("%.2f GB", w.TotalRemoteSpikesPerTick*truenorth.SpikeWireBytes/1e9)},
		},
		Notes: []string{
			"neurons: 3x the human cortex neuron count estimate used in the paper; synapses comparable to monkey cortex",
			"the slowdown is projected by the calibrated machine model over the analytic CoCoMac workload",
		},
	}
	return []*Table{t}, nil
}

// PCCSetup reproduces the §IV set-up time claim: parallel in-situ model
// generation versus writing and re-reading the explicit model.
func PCCSetup() ([]*Table, error) {
	net := cocomac.Generate(cocomacSeed)
	spec, err := net.ToSpec(308, hostTicks)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	res, err := pcc.Compile(spec, 8)
	if err != nil {
		return nil, err
	}
	compileTime := time.Since(t0)

	f, err := os.CreateTemp("", "compass-model-*.bin")
	if err != nil {
		return nil, err
	}
	defer os.Remove(f.Name())
	t1 := time.Now()
	if err := coreobject.WriteModel(f, res.Model); err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		return nil, err
	}
	writeTime := time.Since(t1)
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	t2 := time.Now()
	if _, err := coreobject.ReadModel(f); err != nil {
		return nil, err
	}
	readTime := time.Since(t2)
	if err := f.Close(); err != nil {
		return nil, err
	}

	explicit := writeTime + readTime
	ratio := float64(explicit) / float64(compileTime)
	// Paper-scale projection: 256M cores at the explicit record size over
	// a 1 GB/s parallel filesystem, versus the measured 107 s compile.
	paperModelTB := 256.0 * (1 << 20) * float64(coreobject.CoreRecordBytes) / 1e12
	paperIOHours := paperModelTB * 1e12 / 1e9 / 3600 * 2 // write + read

	t := &Table{
		ID:     "pcc",
		Title:  "PCC in-situ compilation vs explicit model file (308-core CoCoMac model, 8 compiler ranks)",
		Header: []string{"path", "time", "artifact"},
		Rows: [][]string{
			{"parallel in-situ compile", fmt.Sprintf("%d ms", compileTime.Milliseconds()), fmt.Sprintf("%d grant messages, %d IPFP sweeps", res.GrantMessages, res.BalanceIterations)},
			{"write explicit model", fmt.Sprintf("%d ms", writeTime.Milliseconds()), fmt.Sprintf("%.1f MB file", float64(fi.Size())/1e6)},
			{"read explicit model", fmt.Sprintf("%d ms", readTime.Milliseconds()), "full validation"},
			{"explicit / compile ratio", fmt.Sprintf("%.1fx", ratio), ""},
		},
		Notes: []string{
			fmt.Sprintf("paper scale: the 256M-core explicit model is %.1f TB; write+read at 1 GB/s is ~%.0f hours against 107 s of parallel compilation — the three-orders-of-magnitude set-up reduction of §IV", paperModelTB, paperIOHours),
			"at host scale the file fits in page cache, so the measured ratio understates the paper-scale gap",
		},
	}
	return []*Table{t}, nil
}

// Ablation isolates the contribution of Compass's two §III communication
// design choices — per-destination spike aggregation and overlapping the
// reduce-scatter with local delivery — by disabling each in the machine
// model at the paper-scale weak-scaling endpoint.
func Ablation() ([]*Table, error) {
	net := cocomac.Generate(cocomacSeed)
	m := perfmodel.BlueGeneQ()
	w, err := perfmodel.AnalyticCoCoMac(net, 16384, paperCoresPerNode, paperFiringHz, paperDensity)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation",
		Title:  "Design-choice ablations (projected; 256M cores on 16 racks, MPI transport)",
		Header: []string{"variant", "network ms/tick", "total ms/tick", "vs baseline"},
	}
	variants := []struct {
		name string
		opts perfmodel.Options
	}{
		{"baseline (aggregate + overlap)", perfmodel.Options{}},
		{"no spike aggregation", perfmodel.Options{NoAggregation: true}},
		{"no RS/delivery overlap", perfmodel.Options{NoOverlap: true}},
		{"neither", perfmodel.Options{NoAggregation: true, NoOverlap: true}},
	}
	var base float64
	for _, v := range variants {
		pt, err := perfmodel.ProjectWithOptions(m, w, 32, compass.TransportMPI, v.opts)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = pt.Total()
		}
		t.Rows = append(t.Rows, []string{
			v.name, fmtMS(pt.Network), fmtMS(pt.Total()),
			fmt.Sprintf("%+.1f%%", (pt.Total()/base-1)*100),
		})
	}
	t.Notes = append(t.Notes,
		"aggregation collapses each rank pair's spikes into one message per tick; without it every white-matter spike pays full message overhead",
		"the overlap hides the reduce-scatter behind local spike delivery on the non-master threads")
	return []*Table{t}, nil
}

// Power estimates TrueNorth hardware power for the simulated workloads —
// use case (e) of §I ("estimating power consumption"). The measured row
// feeds a real Compass run's event counts into the energy model; the
// chip-scale rows use the analytic operating point.
func Power() ([]*Table, error) {
	profile := power.TrueNorth45nm()
	t := &Table{
		ID:     "power",
		Title:  "TrueNorth power estimation (45 nm profile, real-time 1 ms ticks)",
		Header: []string{"configuration", "cores", "dynamic mW", "static mW", "total mW", "pJ/spike"},
	}
	addEstimate := func(name string, est power.Estimate) {
		t.Rows = append(t.Rows, []string{
			name, fmtI(est.Cores),
			fmt.Sprintf("%.2f", est.DynamicW*1000),
			fmt.Sprintf("%.2f", est.StaticW*1000),
			fmt.Sprintf("%.2f", est.TotalW*1000),
			fmt.Sprintf("%.1f", est.EnergyPerSpikeJ*1e12),
		})
	}

	// Measured: the host-scale CoCoMac run's exact event counts.
	stats, _, _, err := hostCoCoMacRun(8, 512, hostTicks)
	if err != nil {
		return nil, err
	}
	est, err := power.FromStats(profile, stats)
	if err != nil {
		return nil, err
	}
	addEstimate("measured 512-core CoCoMac run", est)

	// Analytic chip- and system-scale operating points at 8.1 Hz.
	for _, cores := range []int{4096, 1 << 20, 256 << 20} {
		est, err := power.FromRates(profile, cores, paperFiringHz, paperDensity, 0.2)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%s cores @ 8.1 Hz", fmtI(cores))
		if cores == 4096 {
			name = "one TrueNorth chip (4,096 cores) @ 8.1 Hz"
		}
		addEstimate(name, est)
	}
	t.Notes = append(t.Notes,
		"the 4096-core chip estimate lands in the tens of milliwatts, consistent with the TrueNorth programme's ultra-low-power target",
		"energy constants derive from the cited 45 pJ/spike 45 nm neurosynaptic core (Merolla et al., CICC 2011); they are order-of-magnitude hardware estimates")
	return []*Table{t}, nil
}

// C2Comparison reproduces the §I contrast between Compass and its
// predecessor C2: core-centric bit synapses versus synapse-centric
// records (32× storage at full crossbar density), and threaded versus
// flat execution. Both simulators run the same compiled CoCoMac model
// and are verified spike-for-spike equivalent.
func C2Comparison() ([]*Table, error) {
	net := cocomac.Generate(cocomacSeed)
	spec, err := net.ToSpec(256, uint64(hostTicks))
	if err != nil {
		return nil, err
	}
	res, err := pcc.Compile(spec, 8)
	if err != nil {
		return nil, err
	}

	baseline, err := c2.FromModel(res.Model)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	baseline.Run(hostTicks)
	c2Time := time.Since(t0)

	t1 := time.Now()
	stats, err := compass.Run(res.Model, compass.Config{
		Ranks: res.Ranks, ThreadsPerRank: 2, RankOf: res.RankOf,
	}, hostTicks)
	if err != nil {
		return nil, err
	}
	compassTime := time.Since(t1)
	if stats.TotalSpikes != baseline.TotalSpikes() {
		return nil, fmt.Errorf("c2 experiment: baselines disagree (%d vs %d spikes)", baseline.TotalSpikes(), stats.TotalSpikes)
	}

	implMem, histMem := baseline.MemoryBytes()
	compassMem := c2.CompassMemoryBytes(res.Model)
	fullDensityRatio := float64(truenorth.CoreSize*truenorth.CoreSize*c2.C2SynapseBytes) /
		float64(truenorth.CoreSize*truenorth.CoreSize/8)

	t := &Table{
		ID:     "c2",
		Title:  "Compass vs the C2 baseline (256-core CoCoMac model, identical spike output)",
		Header: []string{"quantity", "C2 baseline (synapse-centric)", "Compass (core-centric)"},
		Rows: [][]string{
			{"synapse storage, this model", fmt.Sprintf("%.2f MB (%.2f MB at C2's 4 B/synapse)", float64(implMem)/1e6, float64(histMem)/1e6), fmt.Sprintf("%.2f MB (crossbar bitmaps)", float64(compassMem)/1e6)},
			{"synapse storage, full density", fmt.Sprintf("%.0fx the crossbar bitmap", fullDensityRatio), "1x (8 KB/core, density-independent)"},
			{"execution model", "flat, single-threaded per rank", fmt.Sprintf("%d ranks x %d threads", res.Ranks, 2)},
			{"wall-clock, this host", fmt.Sprintf("%d ms", c2Time.Milliseconds()), fmt.Sprintf("%d ms", compassTime.Milliseconds())},
			{"spikes simulated", fmtI(int(baseline.TotalSpikes())), fmtI(int(stats.TotalSpikes))},
		},
		Notes: []string{
			"paper §I: Compass's bit synapses need 32x less storage than C2's synapse records, and C2's flat MPI model could not exploit Blue Gene/Q threading",
			"the sparse-model storage gap is smaller than 32x because the bitmap pays for unset bits too; the full-density row is the paper's operating regime",
		},
	}
	return []*Table{t}, nil
}

// Tradeoff reproduces the §VI-D observation: trading MPI processes per
// node against OpenMP threads per process yields little net change —
// fewer processes shrink the reduce-scatter, but wider shared memory
// pays false-sharing penalties.
func Tradeoff() ([]*Table, error) {
	net := cocomac.Generate(cocomacSeed)
	m := perfmodel.BlueGeneQ()
	const nodes = 4096 // 4 racks
	t := &Table{
		ID:    "tradeoff",
		Title: "Processes vs threads at fixed CPUs (projected; 64M cores on 4 racks)",
		Header: []string{"procs/node", "threads/proc", "ranks", "reduce-scatter ms", "total ms/tick",
			"vs 1x32"},
	}
	var base float64
	for _, ppn := range []int{1, 2, 4, 8, 16} {
		ranks := nodes * ppn
		threads := 32 / ppn
		w, err := perfmodel.AnalyticCoCoMac(net, ranks, paperCoresPerNode/ppn, paperFiringHz, paperDensity)
		if err != nil {
			return nil, err
		}
		pt, err := perfmodel.Project(m, w, threads, compass.TransportMPI)
		if err != nil {
			return nil, err
		}
		if ppn == 1 {
			base = pt.Total()
		}
		t.Rows = append(t.Rows, []string{
			fmtI(ppn), fmtI(threads), fmtI(ranks),
			fmtMS(m.ReduceScatterTime(ranks)), fmtMS(pt.Total()),
			fmt.Sprintf("%+.1f%%", (pt.Total()/base-1)*100),
		})
	}
	t.Notes = append(t.Notes,
		"paper: 1 process x 32 threads performed nearly the same as 16 processes x 2 threads — reduce-scatter savings offset by cache false sharing",
		"the model shows the same flat tradeoff: the reduce-scatter term grows with ranks while the contention term shrinks with threads")
	return []*Table{t}, nil
}
