// Package faults is the deterministic fault-injection layer behind the
// simulator's transport stack. An Injector holds a seeded rule list; the
// transport backends consult it at their send and drain points (message
// drop, duplication, delay) and at Exchange entry (rank stall, rank
// crash). Every decision is a pure function of (seed, class, rank, tick,
// dest, attempt), so a faulted run is reproducible regardless of
// goroutine scheduling and identical across the MPI, PGAS, and shmem
// transports — which all publish the same per-tick message multiset.
//
// Fault classes split into two families:
//
//   - Survivable (drop, dup, delay, stall): the transport absorbs them —
//     dropped sends are retried with backoff, duplicates are deduplicated
//     under the one-aggregated-message-per-(src,dst,tick) contract, and
//     delays/stalls are wall-clock only — so spike output stays
//     bit-identical to the fault-free run.
//   - Fatal (crash, or a drop that outlives the retry budget): the rank
//     returns an error naming itself and the tick, and the transport's
//     abort broadcast unblocks every peer so the run fails cleanly
//     instead of hanging.
package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Class is one injectable fault kind.
type Class uint8

const (
	// Drop discards an outgoing message; the sender retries with
	// backoff and fails the rank when the retry budget is exhausted.
	Drop Class = iota
	// Duplicate publishes an outgoing message twice; the receiver
	// deduplicates by source within the tick.
	Duplicate
	// Delay holds an outgoing message for K delay quanta of wall-clock
	// before publishing it within the same tick's Exchange.
	Delay
	// Stall sleeps the rank for K delay quanta at Exchange entry.
	Stall
	// Crash fails the rank at Exchange entry with an error naming the
	// rank and tick.
	Crash
	// NumClasses bounds per-class arrays.
	NumClasses
)

// String names the class as it appears in the spec grammar and metric
// labels.
func (c Class) String() string {
	switch c {
	case Drop:
		return "drop"
	case Duplicate:
		return "dup"
	case Delay:
		return "delay"
	case Stall:
		return "stall"
	case Crash:
		return "crash"
	default:
		return "unknown"
	}
}

// Classes lists every fault class, in spec-grammar order.
func Classes() []Class {
	return []Class{Drop, Duplicate, Delay, Stall, Crash}
}

// Action is the injector's verdict on one outgoing message attempt.
type Action uint8

const (
	// ActNone publishes the message normally.
	ActNone Action = iota
	// ActDrop discards this attempt; the sender should retry.
	ActDrop
	// ActDuplicate publishes the message twice.
	ActDuplicate
	// ActDelay publishes the message after the returned wall-clock hold.
	ActDelay
)

// Any matches every rank, tick, or destination in a Rule selector.
const Any = -1

// Rule arms one fault class at a set of decision points. Selector fields
// use Any (-1) as a wildcard; Parse defaults every selector to Any, so
// hand-built Rule literals must set them explicitly.
type Rule struct {
	Class Class
	// Rank selects the faulting rank; Tick the tick it fires at; Dest
	// the message destination (send classes only).
	Rank int
	Tick int64
	Dest int
	// K scales the fault: delay quanta for Delay and Stall. Values < 1
	// are treated as 1.
	K int
	// Attempts is how many leading send attempts a deterministic Drop
	// rule discards (default 1: the first send drops, the retry
	// succeeds). A value at or past the injector's attempt budget makes
	// the drop fatal. Ignored when P is set.
	Attempts int
	// P, when non-zero, makes the rule probabilistic: each matching
	// decision point fires independently with probability P, decided by
	// a seeded hash so runs stay reproducible.
	P float64
}

// validate rejects selector and parameter combinations the matcher would
// silently misread.
func (r Rule) validate() error {
	if r.Class >= NumClasses {
		return fmt.Errorf("faults: unknown class %d", r.Class)
	}
	if r.P < 0 || r.P > 1 {
		return fmt.Errorf("faults: %s probability %v outside [0, 1]", r.Class, r.P)
	}
	if (r.Class == Stall || r.Class == Crash) && r.Dest != Any && r.Dest != 0 {
		return fmt.Errorf("faults: %s is rank-scoped; dest selector not allowed", r.Class)
	}
	return nil
}

// ErrDropped marks a message drop that outlived the sender's retry
// budget; transports wrap it with the rank, destination, and tick.
var ErrDropped = errors.New("faults: message dropped past retry budget")

// CrashError is the error an injected rank crash returns.
type CrashError struct {
	Rank int
	Tick uint64
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("faults: injected crash at rank %d, tick %d", e.Rank, e.Tick)
}

// Summary is the injector's cumulative activity, for CLI reporting and
// tests. Telemetry mirrors these as compass_fault* metrics.
type Summary struct {
	// Injected counts fired decisions per class.
	Injected [NumClasses]uint64
	// Retries counts send re-attempts after an injected drop.
	Retries uint64
	// Dedups counts duplicate messages discarded at receivers.
	Dedups uint64
}

// Injector decides fault injection for one run. The zero value and nil
// are both inert; build real injectors with New or Parse. All methods
// are safe for concurrent use from every rank.
type Injector struct {
	// Seed keys every probabilistic decision.
	Seed uint64
	// MaxSendAttempts is the per-message send budget (first try plus
	// retries) before a persistent drop fails the rank. Values < 1 mean
	// the default of 4.
	MaxSendAttempts int
	// DelayQuantum is the wall-clock length of one simulated tick of
	// injected delay or stall. Values <= 0 mean the default of 500 µs.
	DelayQuantum time.Duration

	rules []Rule

	injected [NumClasses]atomic.Uint64
	retries  atomic.Uint64
	dedups   atomic.Uint64
}

// New builds an injector from explicit rules. Rule selector fields use
// Any (-1) as the wildcard.
func New(seed uint64, rules ...Rule) (*Injector, error) {
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
	}
	return &Injector{Seed: seed, rules: rules}, nil
}

// Active reports whether the injector can fire at all. Nil-safe.
func (in *Injector) Active() bool {
	return in != nil && len(in.rules) > 0
}

// SendAttempts is the per-message send budget, defaults applied.
func (in *Injector) SendAttempts() int {
	if in == nil || in.MaxSendAttempts < 1 {
		return 4
	}
	return in.MaxSendAttempts
}

// quantum is the wall-clock unit of injected delay, defaults applied.
func (in *Injector) quantum() time.Duration {
	if in.DelayQuantum <= 0 {
		return 500 * time.Microsecond
	}
	return in.DelayQuantum
}

// Summary returns the injector's cumulative counters. Nil-safe.
func (in *Injector) Summary() Summary {
	var s Summary
	if in == nil {
		return s
	}
	for c := range s.Injected {
		s.Injected[c] = in.injected[c].Load()
	}
	s.Retries = in.retries.Load()
	s.Dedups = in.dedups.Load()
	return s
}

// Dedup records n duplicate messages discarded by a receiver. Nil-safe.
func (in *Injector) Dedup(n uint64) {
	if in == nil || n == 0 {
		return
	}
	in.dedups.Add(n)
}

// Send decides the fate of one outgoing message: rank's aggregated
// payload for dest at tick t, on its attempt-th send try (0 = first).
// The returned duration is the wall-clock hold for ActDelay. Nil-safe.
func (in *Injector) Send(rank int, t uint64, dest, attempt int) (Action, time.Duration) {
	if !in.Active() {
		return ActNone, 0
	}
	if attempt > 0 {
		in.retries.Add(1)
	}
	for _, r := range in.rules {
		if !r.matches(rank, t, dest) {
			continue
		}
		switch r.Class {
		case Drop:
			if in.fires(r, rank, t, dest, attempt, func() bool {
				return attempt < maxi(r.Attempts, 1)
			}) {
				in.injected[Drop].Add(1)
				return ActDrop, 0
			}
		case Duplicate:
			// Duplication decides once per message, not per attempt, so
			// a retried send cannot double-fire the rule.
			if in.fires(r, rank, t, dest, 0, func() bool { return true }) {
				in.injected[Duplicate].Add(1)
				return ActDuplicate, 0
			}
		case Delay:
			if in.fires(r, rank, t, dest, 0, func() bool { return true }) {
				in.injected[Delay].Add(1)
				return ActDelay, time.Duration(maxi(r.K, 1)) * in.quantum()
			}
		}
	}
	return ActNone, 0
}

// Stall returns how long rank must sleep at the top of tick t's Exchange
// (zero when no stall rule fires). Nil-safe.
func (in *Injector) Stall(rank int, t uint64) time.Duration {
	if !in.Active() {
		return 0
	}
	for _, r := range in.rules {
		if r.Class != Stall || !r.matches(rank, t, Any) {
			continue
		}
		if in.fires(r, rank, t, Any, 0, func() bool { return true }) {
			in.injected[Stall].Add(1)
			return time.Duration(maxi(r.K, 1)) * in.quantum()
		}
	}
	return 0
}

// Crash returns a non-nil *CrashError when rank must fail at tick t.
// Nil-safe.
func (in *Injector) Crash(rank int, t uint64) error {
	if !in.Active() {
		return nil
	}
	for _, r := range in.rules {
		if r.Class != Crash || !r.matches(rank, t, Any) {
			continue
		}
		if in.fires(r, rank, t, Any, 0, func() bool { return true }) {
			in.injected[Crash].Add(1)
			return &CrashError{Rank: rank, Tick: t}
		}
	}
	return nil
}

// matches applies the rule's selector to one decision point.
func (r Rule) matches(rank int, t uint64, dest int) bool {
	if r.Rank != Any && r.Rank != rank {
		return false
	}
	if r.Tick != Any && (r.Tick < 0 || uint64(r.Tick) != t) {
		return false
	}
	if r.Dest != Any && r.Dest != dest {
		return false
	}
	return true
}

// fires resolves a matched rule: deterministic rules delegate to det;
// probabilistic rules hash the decision point against P.
func (in *Injector) fires(r Rule, rank int, t uint64, dest, attempt int, det func() bool) bool {
	if r.P == 0 {
		return det()
	}
	h := in.Seed
	h = mix(h, uint64(r.Class)+1)
	h = mix(h, uint64(rank)+1)
	h = mix(h, t+1)
	h = mix(h, uint64(int64(dest))+2)
	h = mix(h, uint64(attempt)+1)
	return float64(h>>11)/(1<<53) < r.P
}

// mix folds v into h with the splitmix64 finalizer, giving a uniform,
// scheduling-independent decision hash.
func mix(h, v uint64) uint64 {
	h ^= v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Parse builds an injector from the -faults spec grammar:
//
//	spec  := rule (';' rule)*
//	rule  := class [':' kv (',' kv)*]
//	class := drop | dup | delay | stall | crash
//	kv    := rank=N | tick=N | dest=N | k=N | attempts=N | p=F
//
// Selectors default to wildcards, so "drop" alone drops the first send
// attempt of every message (each is retried and the run completes
// bit-identically), while "crash:rank=1,tick=5" fails rank 1 at tick 5.
func Parse(spec string, seed uint64) (*Injector, error) {
	var rules []Rule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		head, rest, _ := strings.Cut(rs, ":")
		rule := Rule{Rank: Any, Tick: Any, Dest: Any, K: 1, Attempts: 1}
		switch strings.TrimSpace(head) {
		case "drop":
			rule.Class = Drop
		case "dup":
			rule.Class = Duplicate
		case "delay":
			rule.Class = Delay
		case "stall":
			rule.Class = Stall
		case "crash":
			rule.Class = Crash
		default:
			return nil, fmt.Errorf("faults: unknown class %q (want drop, dup, delay, stall, or crash)", head)
		}
		if rest != "" {
			for _, kv := range strings.Split(rest, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("faults: malformed option %q in rule %q", kv, rs)
				}
				if err := rule.setOption(strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
					return nil, err
				}
			}
		}
		if err := rule.validate(); err != nil {
			return nil, err
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faults: empty spec %q", spec)
	}
	return New(seed, rules...)
}

// setOption applies one key=value pair of the spec grammar to the rule.
func (r *Rule) setOption(key, val string) error {
	switch key {
	case "rank", "tick", "dest", "k", "attempts":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("faults: %s=%q is not an integer", key, val)
		}
		switch key {
		case "rank":
			r.Rank = int(n)
		case "tick":
			r.Tick = n
		case "dest":
			r.Dest = int(n)
		case "k":
			if n < 1 {
				return fmt.Errorf("faults: k=%d must be >= 1", n)
			}
			r.K = int(n)
		case "attempts":
			if n < 1 {
				return fmt.Errorf("faults: attempts=%d must be >= 1", n)
			}
			r.Attempts = int(n)
		}
	case "p":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("faults: p=%q is not a number", val)
		}
		r.P = p
	default:
		return fmt.Errorf("faults: unknown option %q (want rank, tick, dest, k, attempts, or p)", key)
	}
	return nil
}
