package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

func TestAllRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Name == "" || e.Run == nil {
			t.Fatalf("incomplete experiment entry %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(seen))
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig5"); !ok {
		t.Fatal("fig5 not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestTableRenderAndMarkdown(t *testing.T) {
	tab := &Table{
		ID:     "t",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "> hello") {
		t.Fatalf("markdown output wrong:\n%s", md)
	}
}

func TestFmtI(t *testing.T) {
	for v, want := range map[int]string{0: "0", 12: "12", 1234: "1,234", 262144: "262,144", 1048576: "1,048,576"} {
		if got := fmtI(v); got != want {
			t.Fatalf("fmtI(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestSyntheticModelValidation(t *testing.T) {
	if _, err := SyntheticModel(0, 4, 0.5, 10, 1); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := SyntheticModel(2, 4, 1.5, 10, 1); err == nil {
		t.Fatal("bad local fraction accepted")
	}
	if _, err := SyntheticModel(2, 4, 0.5, 0, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestSyntheticModelProperties(t *testing.T) {
	const ranks, cpr = 4, 4
	m, err := SyntheticModel(ranks, cpr, 0.75, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumCores() != ranks*cpr {
		t.Fatalf("NumCores = %d", m.NumCores())
	}
	// Locality: ~75% of neuron targets stay on the source rank under the
	// block placement.
	local, total := 0, 0
	for id, cfg := range m.Cores {
		myRank := id / cpr
		for j := range cfg.Neurons {
			total++
			if int(cfg.Neurons[j].Target.Core)/cpr == myRank {
				local++
			}
		}
	}
	frac := float64(local) / float64(total)
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("local fraction %.3f, want ≈0.75", frac)
	}
}

func TestSyntheticModelFiringRate(t *testing.T) {
	m, err := SyntheticModel(2, 4, 0.75, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := compass.Run(m, compass.Config{Ranks: 2, ThreadsPerRank: 1}, 400)
	if err != nil {
		t.Fatal(err)
	}
	hz := stats.AvgFiringRateHz()
	if hz < 6 || hz > 20 {
		t.Fatalf("synthetic network fires at %.1f Hz, want ≈10", hz)
	}
	if stats.RemoteSpikes == 0 {
		t.Fatal("no remote traffic in synthetic network")
	}
}

// parseFloat pulls a float out of a table cell (strips x, %, commas).
func parseFloat(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(cell, "x"), "%")
	s = strings.ReplaceAll(s, ",", "")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func TestFig3Shape(t *testing.T) {
	tabs, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || len(tabs[0].Rows) != 77 {
		t.Fatalf("fig3: %d tables, %d rows", len(tabs), len(tabs[0].Rows))
	}
	// Both allocation columns must sum to the 4096-core budget.
	pax, bal := 0, 0
	for _, row := range tabs[0].Rows {
		pax += int(parseFloat(t, row[2]))
		bal += int(parseFloat(t, row[3]))
	}
	if pax != 4096 || bal != 4096 {
		t.Fatalf("allocations sum to (%d, %d), want 4096", pax, bal)
	}
}

func TestFig6ThreadScalingShape(t *testing.T) {
	tabs, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	if len(rows) != 6 {
		t.Fatalf("fig6 has %d rows", len(rows))
	}
	// Speedup column monotone increasing, imperfect at 32.
	prev := 0.0
	for _, row := range rows {
		s := parseFloat(t, row[5])
		if s <= prev {
			t.Fatalf("speedup not monotone: %v", rows)
		}
		prev = s
	}
	if prev >= 32 || prev < 15 {
		t.Fatalf("32-thread speedup %.1f implausible", prev)
	}
}

func TestFig7ProjectedShape(t *testing.T) {
	tabs, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	proj := tabs[0]
	last := proj.Rows[len(proj.Rows)-1]
	ratio := parseFloat(t, last[5])
	if ratio < 1.5 || ratio > 3.2 {
		t.Fatalf("4-rack MPI/PGAS ratio %.2f outside band around paper's 2.1x", ratio)
	}
	if last[6] == "no" {
		t.Fatal("4-rack PGAS run must reach soft real time")
	}
	// Measured table must show identical traffic across transports.
	meas := tabs[1]
	if len(meas.Rows) != 2 {
		t.Fatalf("measured table rows: %d", len(meas.Rows))
	}
	if meas.Rows[0][1] != meas.Rows[1][1] || meas.Rows[0][2] != meas.Rows[1][2] {
		t.Fatalf("transports disagree on traffic: %v vs %v", meas.Rows[0], meas.Rows[1])
	}
}

func TestHeadlineShape(t *testing.T) {
	tabs, err := Headline()
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	byName := map[string][]string{}
	for _, r := range rows {
		byName[r[0]] = r
	}
	if byName["TrueNorth cores"][2] != "256M" {
		t.Fatalf("core count %q", byName["TrueNorth cores"][2])
	}
	slow := parseFloat(t, byName["slower than real time"][2])
	if slow < 290 || slow > 560 {
		t.Fatalf("slowdown %v outside calibration band", slow)
	}
}

func TestTradeoffFlat(t *testing.T) {
	tabs, err := Tradeoff()
	if err != nil {
		t.Fatal(err)
	}
	// The §VI-D claim: swapping processes for threads changes little.
	for _, row := range tabs[0].Rows {
		delta := parseFloat(t, row[5])
		if delta < -35 || delta > 35 {
			t.Fatalf("tradeoff row %v deviates %v%% from baseline; paper found near-parity", row, delta)
		}
	}
}

// TestMeasuredExperimentsEndToEnd exercises the host-scale measured
// paths of figures 4 and 5 and the PCC comparison (the slowest
// experiments, so they share one test).
func TestMeasuredExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiments take seconds")
	}
	tabs, err := Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("fig4a tables: %d", len(tabs))
	}
	meas := tabs[1]
	for _, row := range meas.Rows {
		if hz := parseFloat(t, row[5]); hz <= 0 {
			t.Fatalf("measured run silent: %v", row)
		}
	}

	tabs, err = Fig4b()
	if err != nil {
		t.Fatal(err)
	}
	measured := tabs[1]
	for _, row := range measured.Rows {
		if spm := parseFloat(t, row[4]); spm < 1 {
			t.Fatalf("spikes per message %v < 1; aggregation broken: %v", spm, row)
		}
	}

	tabs, err = Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// Projected speedup at 16 racks within the paper band.
	proj := tabs[0]
	s16 := parseFloat(t, proj.Rows[len(proj.Rows)-1][7])
	if s16 < 7 || s16 > 11.5 {
		t.Fatalf("fig5 16-rack speedup %v", s16)
	}
	// Measured: the message count per tick grows with rank count (more
	// rank pairs carry the same white matter), and every configuration
	// has live remote traffic. Remote spike volume itself is not
	// monotone: each rank count compiles a distinct model whose firing
	// rate differs.
	measRows := tabs[1].Rows
	firstMsgs := parseFloat(t, measRows[0][2])
	lastMsgs := parseFloat(t, measRows[len(measRows)-1][2])
	if lastMsgs <= firstMsgs {
		t.Fatalf("messages did not grow with ranks: %v -> %v", firstMsgs, lastMsgs)
	}
	for _, row := range measRows {
		if parseFloat(t, row[1]) <= 0 {
			t.Fatalf("no remote traffic at %s ranks", row[0])
		}
	}

	tabs, err = PCCSetup()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Rows) != 4 {
		t.Fatalf("pcc table rows: %d", len(tabs[0].Rows))
	}
}

func TestModelSanity(t *testing.T) {
	// The shared constants must stay consistent with the architecture.
	if paperCoresPerNode*16384*truenorth.CoreSize != 68719476736 {
		t.Skip("informational")
	}
}

func TestAblationShape(t *testing.T) {
	tabs, err := Ablation()
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	if len(rows) != 4 {
		t.Fatalf("ablation rows: %d", len(rows))
	}
	// Every ablated variant must be no faster than the baseline, and
	// removing aggregation must hurt substantially (it multiplies the
	// per-message overhead by the spikes-per-message factor).
	base := parseFloat(t, rows[0][2])
	noAgg := parseFloat(t, rows[1][2])
	noOverlap := parseFloat(t, rows[2][2])
	neither := parseFloat(t, rows[3][2])
	if noAgg <= base || noOverlap < base || neither < noAgg {
		t.Fatalf("ablation ordering wrong: base=%v noAgg=%v noOverlap=%v neither=%v", base, noAgg, noOverlap, neither)
	}
	if noAgg < base*1.05 {
		t.Fatalf("aggregation ablation changed total by less than 5%%: %v -> %v", base, noAgg)
	}
}

func TestPowerTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a measured simulation")
	}
	tabs, err := Power()
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	if len(rows) != 4 {
		t.Fatalf("power rows: %d", len(rows))
	}
	// The single-chip row must be ultra-low power (tens of mW).
	chip := rows[1]
	total := parseFloat(t, chip[4])
	if total < 20 || total > 300 {
		t.Fatalf("chip power %v mW outside the ultra-low-power band", total)
	}
	// Power grows monotonically with core count across analytic rows.
	prev := 0.0
	for _, row := range rows[1:] {
		v := parseFloat(t, row[4])
		if v <= prev {
			t.Fatalf("power not monotone in cores: %v", rows)
		}
		prev = v
	}
}

func TestC2ComparisonTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full simulations")
	}
	tabs, err := C2Comparison()
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	if len(rows) != 5 {
		t.Fatalf("c2 table rows: %d", len(rows))
	}
	// The spike counts must agree (equivalence is asserted inside the
	// experiment too, but verify the rendered cells).
	if rows[4][1] != rows[4][2] {
		t.Fatalf("spike counts differ in table: %v", rows[4])
	}
	if !strings.Contains(rows[1][1], "32x") {
		t.Fatalf("full-density row missing the 32x claim: %v", rows[1])
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "csv demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "two, quoted"}, {"3", "4"}},
	}
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# x: csv demo") || !strings.Contains(out, `"two, quoted"`) {
		t.Fatalf("CSV output:\n%s", out)
	}
}
