// Charrec: character recognition on TrueNorth cores — one of the
// applications the paper demonstrates with Compass ("character
// recognition", §I).
//
// A single neurosynaptic core holds ten digit templates on a 5×7 pixel
// grid. Each digit's neuron integrates +1 per matching active pixel and
// −1 per non-matching active pixel through the binary crossbar, firing
// when its margin clears a per-template threshold (the template's pixel
// count minus a noise allowance). Digits are presented as one-tick spike
// volleys — clean first, then with increasing numbers of flipped pixels —
// and the spikes coming out of the classifier are the predictions.
//
// The font, pixel-noise, and glyph helpers live in internal/spikecode,
// shared with the served `charrec` scenario (internal/scenario) and the
// other sensory examples.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/cognitive-sim/compass/internal/corelets"
	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/spikecode"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// noiseAllowance is how many flipped pixels a template tolerates.
const noiseAllowance = 3

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	digits := []rune("0123456789")
	templates := make([][]bool, len(digits))
	thresholds := make([]int32, len(digits))
	for i, d := range digits {
		bits, ok := spikecode.Glyph(d)
		if !ok {
			return fmt.Errorf("digit %c missing from font", d)
		}
		templates[i] = bits
		// Demand all template pixels minus the noise allowance, so a
		// template only fires on patterns close to itself: margin =
		// matches − mismatches ≥ |template| − noiseAllowance.
		thresholds[i] = int32(spikecode.Popcount(bits) - noiseAllowance)
	}

	b := corelets.NewBuilder(7)
	in, out, err := b.TemplateMatcherThresholds(spikecode.GlyphBits, templates, thresholds)
	if err != nil {
		return err
	}
	probe, err := b.Probe(out)
	if err != nil {
		return err
	}

	// Schedule presentations: every digit clean, then with 1 and 2
	// pixels flipped. One presentation per tick-pair keeps volleys apart.
	type presentation struct {
		label int
		tick  uint64
	}
	var schedule []presentation
	r := prng.New(99)
	tick := uint64(0)
	for _, flips := range []int{0, 1, 2} {
		for i := range digits {
			pattern := templates[i]
			if flips > 0 {
				pattern = spikecode.FlipPixels(pattern, flips, r)
			}
			if err := b.Volley(in, pattern, tick); err != nil {
				return err
			}
			schedule = append(schedule, presentation{label: i, tick: tick})
			tick += 2
		}
	}

	m, err := b.Build()
	if err != nil {
		return err
	}
	fmt.Printf("classifier: %d digit templates on %d TrueNorth core(s), %d input lines\n",
		len(templates), b.NumCores(), spikecode.GlyphBits)

	// Run and collect which template fired at which tick.
	sim, err := truenorth.NewSerialSim(m)
	if err != nil {
		return err
	}
	fired := map[uint64][]int{}
	sim.OnSpike = func(tk uint64, s truenorth.Spike) {
		if idx, ok := probe.Index(s.Target); ok {
			fired[tk] = append(fired[tk], idx)
		}
	}
	if err := sim.Run(int(tick) + 4); err != nil {
		return err
	}

	correct, total := 0, 0
	fmt.Println("\npresentation results (prediction = templates that fired):")
	for bi, p := range schedule {
		flips := bi / len(digits)
		preds := fired[p.tick]
		hit := false
		unique := len(preds) == 1
		for _, pr := range preds {
			if pr == p.label {
				hit = true
			}
		}
		total++
		if hit && unique {
			correct++
		}
		var buf strings.Builder
		for _, pr := range preds {
			fmt.Fprintf(&buf, "%c ", digits[pr])
		}
		status := "MISS"
		if hit && unique {
			status = "ok"
		} else if hit {
			status = "ambiguous"
		}
		fmt.Printf("  digit %c (%d flipped): fired [%s] %s\n", digits[p.label], flips, strings.TrimSpace(buf.String()), status)
	}
	fmt.Printf("\naccuracy: %d/%d unique correct classifications\n", correct, total)
	if correct < total*2/3 {
		return fmt.Errorf("accuracy too low: %d/%d", correct, total)
	}
	return nil
}
