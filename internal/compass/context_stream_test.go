package compass

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/cognitive-sim/compass/internal/truenorth"
)

// tickSource feeds a fixed per-tick schedule through the InputSource
// hook: the streaming analogue of truenorth.Model.Inputs.
type tickSource struct {
	byTick map[uint64][]truenorth.InputSpike
}

func (s *tickSource) SpikesFor(t uint64) []truenorth.InputSpike { return s.byTick[t] }

// collectSink accumulates every emitted spike under a lock (Emit is
// called concurrently by all ranks).
type collectSink struct {
	mu     sync.Mutex
	events []truenorth.SpikeEvent
}

func (c *collectSink) Emit(rank int, t uint64, events []truenorth.SpikeEvent) {
	c.mu.Lock()
	c.events = append(c.events, events...)
	c.mu.Unlock()
}

// TestRunContextCancelAllTransports checks the acceptance criterion
// that a cancelled session returns context.Canceled on every transport
// without hanging: the cancelled rank unwinds at its tick boundary and
// the abort broadcast releases every peer blocked in the Network phase.
func TestRunContextCancelAllTransports(t *testing.T) {
	m := randomModel(8, 42)
	for _, tr := range Transports() {
		tr := tr
		t.Run(tr.String(), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			type result struct {
				stats *RunStats
				err   error
			}
			done := make(chan result, 1)
			go func() {
				// A tick count far beyond what could finish before the
				// cancel lands.
				stats, err := RunContext(ctx, m, Config{
					Ranks: 4, ThreadsPerRank: 2, Transport: tr,
				}, 10_000_000)
				done <- result{stats, err}
			}()
			time.Sleep(20 * time.Millisecond)
			cancel()
			select {
			case res := <-done:
				if !errors.Is(res.err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", res.err)
				}
				if res.stats != nil {
					t.Fatalf("cancelled run returned stats")
				}
			case <-time.After(30 * time.Second):
				t.Fatal("cancelled run hung")
			}
		})
	}
}

// TestRunContextPreCancelled: a context cancelled before the run starts
// returns immediately on every transport.
func TestRunContextPreCancelled(t *testing.T) {
	m := randomModel(4, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tr := range Transports() {
		_, err := RunContext(ctx, m, Config{Ranks: 2, ThreadsPerRank: 1, Transport: tr}, 50)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", tr, err)
		}
	}
}

// TestRunContextBackgroundMatchesRun: RunContext with a background
// context is exactly Run.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	m := randomModel(6, 3)
	cfg := Config{Ranks: 3, ThreadsPerRank: 2, Transport: TransportShmem, RecordTrace: true}
	a, err := Run(m, cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), m, cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSpikes != b.TotalSpikes || len(a.Trace) != len(b.Trace) {
		t.Fatalf("RunContext diverged from Run: %d/%d spikes, %d/%d trace",
			a.TotalSpikes, b.TotalSpikes, len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("trace[%d] = %+v vs %+v", i, a.Trace[i], b.Trace[i])
		}
	}
}

// TestInputSourceMatchesScheduled is the streaming-injection
// equivalence test: the same spikes delivered through the InputSource
// hook produce a bit-identical trace to pre-scheduling them in
// Model.Inputs, on every transport.
func TestInputSourceMatchesScheduled(t *testing.T) {
	const ticks = 60
	scheduled := randomModel(6, 11)

	// Streamed variant: same cores, empty input schedule; the inputs
	// arrive via the hook instead.
	streamed := &truenorth.Model{Seed: scheduled.Seed, Cores: scheduled.Cores}
	src := &tickSource{byTick: make(map[uint64][]truenorth.InputSpike)}
	for _, in := range scheduled.Inputs {
		src.byTick[in.Tick] = append(src.byTick[in.Tick], in)
	}

	want, err := Run(scheduled, Config{
		Ranks: 2, ThreadsPerRank: 2, Transport: TransportShmem, RecordTrace: true,
	}, ticks)
	if err != nil {
		t.Fatal(err)
	}
	if want.TotalSpikes == 0 {
		t.Fatal("reference run produced no spikes; test is vacuous")
	}
	for _, tr := range Transports() {
		got, err := Run(streamed, Config{
			Ranks: 3, ThreadsPerRank: 2, Transport: tr, RecordTrace: true,
			InputSource: src,
		}, ticks)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if got.TotalSpikes != want.TotalSpikes || len(got.Trace) != len(want.Trace) {
			t.Fatalf("%s: streamed %d spikes (%d trace), scheduled %d (%d)",
				tr, got.TotalSpikes, len(got.Trace), want.TotalSpikes, len(want.Trace))
		}
		for i := range want.Trace {
			if got.Trace[i] != want.Trace[i] {
				t.Fatalf("%s: trace[%d] = %+v, want %+v", tr, i, got.Trace[i], want.Trace[i])
			}
		}
	}
}

// TestInputSourceOutOfModelDropsCounted: streamed spikes addressing
// cores outside the model are dropped and counted, once, not crashed
// on.
func TestInputSourceOutOfModelDropsCounted(t *testing.T) {
	m := randomModel(4, 5)
	src := &tickSource{byTick: map[uint64][]truenorth.InputSpike{
		2: {{Tick: 2, Core: 999, Axon: 0}, {Tick: 2, Core: 0, Axon: 3}},
	}}
	stats, err := Run(&truenorth.Model{Seed: m.Seed, Cores: m.Cores}, Config{
		Ranks: 2, ThreadsPerRank: 1, Transport: TransportShmem, InputSource: src,
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedInputs != 1 {
		t.Fatalf("DroppedInputs = %d, want 1", stats.DroppedInputs)
	}
}

// TestOutputSinkMatchesTrace: the OutputSink hook observes exactly the
// spikes the trace records, on every transport.
func TestOutputSinkMatchesTrace(t *testing.T) {
	m := randomModel(6, 23)
	for _, tr := range Transports() {
		sink := &collectSink{}
		stats, err := Run(m, Config{
			Ranks: 3, ThreadsPerRank: 2, Transport: tr, RecordTrace: true,
			OutputSink: sink,
		}, 50)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if uint64(len(sink.events)) != stats.TotalSpikes {
			t.Fatalf("%s: sink saw %d events, run fired %d", tr, len(sink.events), stats.TotalSpikes)
		}
		truenorth.SortSpikeEvents(sink.events)
		for i := range stats.Trace {
			if sink.events[i] != stats.Trace[i] {
				t.Fatalf("%s: sink[%d] = %+v, trace %+v", tr, i, sink.events[i], stats.Trace[i])
			}
		}
	}
}

// TestCancelledRunFlushesNothingWeird: repeated cancels across
// transports under load shake out unwinding races (this test is most
// valuable under -race).
func TestRepeatedCancelStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	m := randomModel(6, 99)
	for i := 0; i < 6; i++ {
		tr := Transports()[i%len(Transports())]
		ctx, cancel := context.WithCancel(context.Background())
		errCh := make(chan error, 1)
		go func() {
			_, err := RunContext(ctx, m, Config{Ranks: 3, ThreadsPerRank: 2, Transport: tr}, 1_000_000)
			errCh <- err
		}()
		time.Sleep(time.Duration(1+i) * 5 * time.Millisecond)
		cancel()
		select {
		case err := <-errCh:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("round %d (%s): %v", i, tr, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d (%s): hung", i, tr)
		}
	}
}

var _ = fmt.Sprintf // keep fmt import if assertions above change
