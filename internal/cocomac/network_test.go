package cocomac

import (
	"math"
	"testing"

	"github.com/cognitive-sim/compass/internal/balance"
)

func TestRegionTablesMatchPublishedCounts(t *testing.T) {
	if got := len(connectedRegionNames); got != ConnectedRegions {
		t.Fatalf("connected region table has %d entries, want %d", got, ConnectedRegions)
	}
	if got := len(connectedRegionNames) + len(isolatedRegionNames); got != ReducedRegions {
		t.Fatalf("reduced region tables have %d entries, want %d", got, ReducedRegions)
	}
	if got := len(imputedCortical) + len(imputedThalamic); got != ImputedVolumes {
		t.Fatalf("imputed name tables have %d entries, want %d", got, ImputedVolumes)
	}
	// No duplicate names across both tables.
	seen := make(map[string]bool)
	for _, e := range connectedRegionNames {
		if seen[e.name] {
			t.Fatalf("duplicate region name %q", e.name)
		}
		seen[e.name] = true
	}
	for _, e := range isolatedRegionNames {
		if seen[e.name] {
			t.Fatalf("duplicate region name %q", e.name)
		}
		seen[e.name] = true
	}
	// Every imputed name must exist and have the right class.
	byName := make(map[string]Class)
	for _, e := range connectedRegionNames {
		byName[e.name] = e.class
	}
	for name := range imputedCortical {
		if c, ok := byName[name]; !ok || c != Cortical {
			t.Fatalf("imputed cortical region %q missing or misclassed", name)
		}
	}
	for name := range imputedThalamic {
		if c, ok := byName[name]; !ok || c != Thalamic {
			t.Fatalf("imputed thalamic region %q missing or misclassed", name)
		}
	}
}

func TestGenerateReproducesPublishedStatistics(t *testing.T) {
	n := Generate(2012)
	if len(n.Regions) != ReducedRegions {
		t.Fatalf("generated %d regions, want %d", len(n.Regions), ReducedRegions)
	}
	if n.FullEdgeCount() != FullEdges {
		t.Fatalf("full network has %d edges, want %d", n.FullEdgeCount(), FullEdges)
	}
	children := 0
	for _, r := range n.Regions {
		if r.Children < 1 {
			t.Fatalf("region %q has %d children", r.Name, r.Children)
		}
		children += r.Children
	}
	if children != FullRegions {
		t.Fatalf("children sum to %d, want %d", children, FullRegions)
	}
	connected := 0
	imputed := 0
	for _, r := range n.Regions {
		if r.Connected {
			connected++
		}
		if r.VolumeImputed {
			imputed++
		}
		if r.Volume <= 0 || math.IsNaN(r.Volume) {
			t.Fatalf("region %q has volume %v", r.Name, r.Volume)
		}
	}
	if connected != ConnectedRegions {
		t.Fatalf("%d connected regions, want %d", connected, ConnectedRegions)
	}
	if imputed != ImputedVolumes {
		t.Fatalf("%d imputed volumes, want %d", imputed, ImputedVolumes)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(7), Generate(7)
	if a.ReducedEdgeCount() != b.ReducedEdgeCount() {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range a.Regions {
		if a.Regions[i] != b.Regions[i] {
			t.Fatalf("region %d differs across identical seeds", i)
		}
	}
	for i := range a.Adj {
		for j := range a.Adj[i] {
			if a.Adj[i][j] != b.Adj[i][j] {
				t.Fatalf("adjacency (%d,%d) differs across identical seeds", i, j)
			}
		}
	}
	c := Generate(8)
	diff := false
	for i := range a.Adj {
		for j := range a.Adj[i] {
			if a.Adj[i][j] != c.Adj[i][j] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical adjacency")
	}
}

func TestEveryConnectedRegionHasInAndOutEdges(t *testing.T) {
	n := Generate(3)
	for i := 0; i < ConnectedRegions; i++ {
		hasOut, hasIn := false, false
		for j := 0; j < ConnectedRegions; j++ {
			hasOut = hasOut || n.Adj[i][j]
			hasIn = hasIn || n.Adj[j][i]
		}
		if !hasOut || !hasIn {
			t.Fatalf("region %q lacks edges (out=%v in=%v)", n.Regions[i].Name, hasOut, hasIn)
		}
		if n.Adj[i][i] {
			t.Fatalf("region %q has a self-edge; local connectivity is gray matter", n.Regions[i].Name)
		}
	}
}

func TestImputedVolumesAreClassMedian(t *testing.T) {
	n := Generate(11)
	// All imputed thalamic volumes must be identical (the class median).
	var val float64
	first := true
	for _, r := range n.Regions {
		if r.Class == Thalamic && r.VolumeImputed {
			if first {
				val = r.Volume
				first = false
			} else if r.Volume != val {
				t.Fatalf("imputed thalamic volumes differ: %v vs %v", r.Volume, val)
			}
		}
	}
	if first {
		t.Fatal("no imputed thalamic volumes found")
	}
}

func TestStochasticMatrixRowsSumToOne(t *testing.T) {
	n := Generate(5)
	m := n.StochasticMatrix()
	for i, row := range m {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
		wantGray := n.Regions[i].Class.GrayFraction()
		if math.Abs(row[i]-wantGray) > 1e-9 {
			t.Fatalf("region %q diagonal %v, want gray fraction %v", n.Regions[i].Name, row[i], wantGray)
		}
	}
}

func TestBalancedMatrixAchievesVolumeMarginals(t *testing.T) {
	n := Generate(6)
	res, err := n.BalancedMatrix()
	if err != nil {
		t.Fatal(err)
	}
	vol := n.Volumes()
	if r := balance.Residual(res.Matrix, vol, vol); r > 1e-8 {
		t.Fatalf("balanced residual %g", r)
	}
	// Zero pattern: balanced matrix must not create pathways absent from
	// the adjacency (diagonal aside).
	for i := range res.Matrix {
		for j := range res.Matrix[i] {
			if i != j && !n.Adj[i][j] && res.Matrix[i][j] != 0 {
				t.Fatalf("balancing created pathway %q->%q", n.Regions[i].Name, n.Regions[j].Name)
			}
		}
	}
}

func TestCoreAllocations(t *testing.T) {
	n := Generate(9)
	const total = 4096
	rows, err := n.CoreAllocations(total)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != ConnectedRegions {
		t.Fatalf("%d allocation rows", len(rows))
	}
	pax, bal := 0, 0
	lifted := 0
	for _, row := range rows {
		if row.BalancedCores < 1 {
			t.Fatalf("region %q allocated %d balanced cores; realizability needs >= 1", row.Name, row.BalancedCores)
		}
		if row.PaxinosCores < 0 {
			t.Fatalf("region %q allocated %d Paxinos cores", row.Name, row.PaxinosCores)
		}
		if row.BalancedCores > row.PaxinosCores {
			lifted++
		}
		pax += row.PaxinosCores
		bal += row.BalancedCores
	}
	if pax != total || bal != total {
		t.Fatalf("allocations sum to (%d, %d), want %d", pax, bal, total)
	}
	_ = lifted

	// At a tight core budget the realizability floor must lift small
	// regions above their raw atlas share (the red-vs-green gap of
	// Figure 3).
	tight, err := n.CoreAllocations(120)
	if err != nil {
		t.Fatal(err)
	}
	lifted = 0
	for _, row := range tight {
		if row.BalancedCores < 1 {
			t.Fatalf("region %q allocated %d balanced cores at tight budget", row.Name, row.BalancedCores)
		}
		if row.BalancedCores > row.PaxinosCores {
			lifted++
		}
	}
	if lifted == 0 {
		t.Fatal("balanced allocation identical to raw shares at tight budget; floor had no effect")
	}
}

func TestCoreAllocationsTooFewCores(t *testing.T) {
	n := Generate(9)
	if _, err := n.CoreAllocations(10); err == nil {
		t.Fatal("10 cores for 77 regions accepted")
	}
}

func TestGrayFractions(t *testing.T) {
	if Cortical.GrayFraction() != 0.40 {
		t.Fatalf("cortical gray fraction %v", Cortical.GrayFraction())
	}
	if Thalamic.GrayFraction() != 0.20 || BasalGanglia.GrayFraction() != 0.20 {
		t.Fatal("subcortical gray fraction must be 0.20")
	}
}

func TestClassString(t *testing.T) {
	if Cortical.String() != "cortical" || Thalamic.String() != "thalamic" ||
		BasalGanglia.String() != "basal-ganglia" || Class(9).String() != "unknown" {
		t.Fatal("class names wrong")
	}
}

func TestToSpec(t *testing.T) {
	n := Generate(13)
	spec, err := n.ToSpec(512, 100)
	if err != nil {
		t.Fatal(err)
	}
	if spec.TotalCores() != 512 {
		t.Fatalf("spec has %d cores, want 512", spec.TotalCores())
	}
	if len(spec.Regions) != ConnectedRegions {
		t.Fatalf("spec has %d regions", len(spec.Regions))
	}
	if len(spec.Connections) != n.ReducedEdgeCount() {
		t.Fatalf("spec has %d connections, network has %d edges", len(spec.Connections), n.ReducedEdgeCount())
	}
	if len(spec.Inputs) != 1 || spec.Inputs[0].Region != "LGN" {
		t.Fatalf("spec inputs: %+v", spec.Inputs)
	}
	// Validate was already called inside ToSpec; double-check.
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(uint64(i))
	}
}

func BenchmarkBalancedMatrix(b *testing.B) {
	n := Generate(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.BalancedMatrix(); err != nil {
			b.Fatal(err)
		}
	}
}
