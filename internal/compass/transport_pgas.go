package compass

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/cognitive-sim/compass/internal/faults"
	"github.com/cognitive-sim/compass/internal/pgas"
)

// pgasBackend is the one-sided Network phase of §VII: deposit each
// aggregated spike buffer directly into the destination rank's window,
// deliver local spikes in parallel, synchronize with a single global
// barrier, then drain and deliver the window contents.
//
// Failure propagation rides on the space abort: the first rank whose
// body errors marks the space aborted, releasing every peer blocked in
// (or arriving at) Barrier with pgas.ErrAborted within the tick.
type pgasBackend struct {
	probe *transportProbe
	tel   *Telemetry
	inj   *faults.Injector
}

func (pgasBackend) Name() string    { return "pgas" }
func (pgasBackend) RawSpikes() bool { return false }

func (b pgasBackend) Run(ranks int, fn func(rank int, ep Endpoint) error) error {
	return pgas.Run(ranks, func(h *pgas.Handle) error {
		ep := &pgasEndpoint{h: h, rank: h.Rank(), probe: b.probe, tel: b.tel, inj: b.inj}
		err := fn(h.Rank(), ep)
		if cerr := ep.Close(); err == nil {
			err = cerr
		}
		if err != nil && !errors.Is(err, pgas.ErrAborted) {
			b.tel.faultAbort(h.Rank())
		}
		return err
	})
}

// pgasEndpoint is one rank's one-sided transport connection. The drained
// slice holds references into the window segments pending parallel
// delivery; its header is reused across ticks so the steady-state tick
// allocates nothing. When a fault injector is attached, every put is
// framed with a 4-byte length prefix (frame scratch reused across ticks)
// so the drain can tell an injected duplicate — a second frame appended
// to the same source segment — from the payload proper.
type pgasEndpoint struct {
	h       *pgas.Handle
	rank    int
	probe   *transportProbe
	tel     *Telemetry
	inj     *faults.Injector
	drained [][]byte
	nextSeg atomic.Int64
	errs    []error
	frame   []byte
}

func (ep *pgasEndpoint) Close() error { return nil }

// putFramed deposits one length-prefixed copy of the payload per planned
// copy, holding the rank for an injected delay first. The hold is
// synchronous: a one-sided epoch closes at the barrier, so a delayed put
// must still land before this rank arrives there.
func (ep *pgasEndpoint) putFramed(dest int, payload []byte, plan sendPlan) error {
	if plan.delay > 0 {
		time.Sleep(plan.delay)
	}
	ep.frame = ep.frame[:0]
	ep.frame = binary.LittleEndian.AppendUint32(ep.frame, uint32(len(payload)))
	ep.frame = append(ep.frame, payload...)
	for c := 0; c < plan.copies; c++ {
		if err := ep.h.Put(dest, ep.frame); err != nil {
			return err
		}
	}
	return nil
}

// deframe splits one drained source segment into its frames, delivering
// only the first — any further frame is an injected duplicate of the
// same aggregated message and is discarded and counted.
func (ep *pgasEndpoint) deframe(src int, data []byte) error {
	first := true
	var dups uint64
	for len(data) > 0 {
		if len(data) < 4 {
			return fmt.Errorf("compass: pgas rank %d: truncated frame header from rank %d", ep.rank, src)
		}
		n := int(binary.LittleEndian.Uint32(data))
		if len(data) < 4+n {
			return fmt.Errorf("compass: pgas rank %d: truncated frame from rank %d (%d of %d bytes)",
				ep.rank, src, len(data)-4, n)
		}
		if first {
			ep.drained = append(ep.drained, data[4:4+n])
			first = false
		} else {
			dups++
		}
		data = data[4+n:]
	}
	if dups > 0 {
		ep.inj.Dedup(dups)
		ep.tel.faultDedup(ep.rank, dups)
	}
	return nil
}

func (ep *pgasEndpoint) Exchange(t uint64, out *Outbox, d Delivery) error {
	if err := faultEnter(ep.inj, ep.tel, ep.rank, t); err != nil {
		return err
	}
	threads := d.Threads()
	errs := errScratch(&ep.errs, threads)
	var sendStart time.Time
	if ep.probe != nil {
		sendStart = time.Now()
		var puts, bytes uint64
		for dest, n := range out.Counts {
			if n != 0 {
				puts++
				bytes += uint64(len(out.Encoded[dest]))
			}
		}
		ep.probe.sent(ep.rank, puts, bytes)
	}
	injected := ep.inj.Active()
	d.Parallel(func(tid int) {
		if tid == 0 {
			for dest := range out.Encoded {
				if out.Counts[dest] == 0 {
					continue
				}
				if injected {
					plan, err := resolveSend(ep.inj, ep.tel, ep.rank, t, dest)
					if err == nil {
						err = ep.putFramed(dest, out.Encoded[dest], plan)
					}
					if err != nil {
						errs[tid] = err
						return
					}
				} else if err := ep.h.Put(dest, out.Encoded[dest]); err != nil {
					errs[tid] = err
					return
				}
			}
			if threads == 1 {
				errs[tid] = d.DeliverLocal(t, 0, 1)
			}
		} else {
			errs[tid] = d.DeliverLocal(t, tid-1, threads-1)
		}
	})
	if err := firstErr(errs); err != nil {
		return err
	}
	var barrierStart time.Time
	if ep.probe != nil {
		ep.probe.span(ep.rank, PhaseNetSend, t, sendStart)
		barrierStart = time.Now()
	}

	if err := ep.h.Barrier(); err != nil {
		return err
	}

	var drainStart time.Time
	if ep.probe != nil {
		ep.probe.span(ep.rank, PhaseNetBarrier, t, barrierStart)
		drainStart = time.Now()
	}

	// Collect the drained segments by reference — no copy. This is safe
	// because a writer reuses a segment's parity only two epochs later,
	// after a barrier this rank can only pass once delivery below has
	// finished; the double-buffered protocol provides the happens-before
	// edge (see package pgas).
	ep.drained = ep.drained[:0]
	var drainErr error
	ep.h.Drain(func(src int, data []byte) {
		if drainErr != nil {
			return
		}
		if injected {
			drainErr = ep.deframe(src, data)
			return
		}
		ep.drained = append(ep.drained, data)
	})
	if drainErr != nil {
		return drainErr
	}
	ep.nextSeg.Store(0)
	d.Parallel(func(tid int) {
		for {
			i := int(ep.nextSeg.Add(1)) - 1
			if i >= len(ep.drained) {
				return
			}
			if err := d.DeliverEncoded(t, ep.drained[i]); err != nil {
				errs[tid] = err
				return
			}
		}
	})
	if ep.probe != nil {
		ep.probe.span(ep.rank, PhaseNetDrain, t, drainStart)
		ep.probe.depth(ep.rank, float64(len(ep.drained)))
	}
	return firstErr(errs)
}
