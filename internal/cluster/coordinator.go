package cluster

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/cognitive-sim/compass/internal/server"
	"github.com/cognitive-sim/compass/internal/spikeio"
)

// Options configures a Coordinator.
type Options struct {
	// HTTPAddr is the cluster control-plane listen address; StreamAddr
	// the listen address of the session-following stream proxy.
	HTTPAddr   string
	StreamAddr string
	// HeartbeatInterval paces node heartbeats and the monitor loop; a
	// node whose heartbeats lapse for LapseFactor intervals is declared
	// dead and its sessions are restored elsewhere. Defaults: 2s, 4.
	HeartbeatInterval time.Duration
	LapseFactor       int
	// RebalanceThreshold is the utilization spread (hottest minus
	// coolest node, as a fraction of capacity) that, sustained for
	// RebalanceRounds monitor rounds, triggers one migration from the
	// hottest node to the coolest. <= 0 disables rebalancing.
	// Defaults: 0.3, 3.
	RebalanceThreshold float64
	RebalanceRounds    int
	// MaxRestores caps failover attempts per session before it is
	// marked failed for good. Default 3.
	MaxRestores int
	// NodeTimeout bounds individual control-plane calls to nodes.
	// Default 30s.
	NodeTimeout time.Duration
	// Logf receives coordinator event lines; nil means log.Printf.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = 2 * time.Second
	}
	if out.LapseFactor <= 0 {
		out.LapseFactor = 4
	}
	if out.RebalanceThreshold == 0 {
		out.RebalanceThreshold = 0.3
	}
	if out.RebalanceRounds <= 0 {
		out.RebalanceRounds = 3
	}
	if out.MaxRestores <= 0 {
		out.MaxRestores = 3
	}
	if out.NodeTimeout <= 0 {
		out.NodeTimeout = 30 * time.Second
	}
	if out.Logf == nil {
		out.Logf = log.Printf
	}
	return out
}

// node is the coordinator's view of one registered compassd.
type node struct {
	id           string
	httpAddr     string
	streamAddr   string
	capacity     float64
	memoryBudget int64
	client       *nodeClient

	// All below are guarded by the coordinator's mu.
	lastSeen time.Time
	used     float64
	memUsed  int64
	resident map[string]bool
	running  int
	queued   int
	draining bool
	dead     bool
}

// rec is the coordinator's record of one cluster session.
type rec struct {
	clusterID string
	req       server.CreateRequest // original request; source doubles as rebuild fallback

	// Ownership: which node hosts the session right now, under which
	// node-local ID, at which generation. Every migration or restore
	// bumps gen; stale pushes and pulses from older generations are
	// ignored by (node, nodeSessionID) mismatch.
	nodeID        string
	nodeSessionID string
	gen           int
	placedAt      time.Time
	misses        int // consecutive owner heartbeats that omitted the session

	modelHash     string
	lastExport    *server.ExportDoc // latest pushed boundary state
	committedTick uint64            // egress release horizon for the proxy
	migrations    int
	restores      int
	userPaused    bool // client asked for paused; restores keep it parked
	ended         bool
	endState      string
	migrating     bool // a planned migration holds the record

	// Stream proxy state: inject journal for failover replay, and the
	// generation the proxy last attached to (migration waits for the
	// proxy to re-attach before resuming, so no egress is missed).
	journal     []spikeio.Event
	proxyRefs   int
	attachedGen int

	// Inject-forwarder cursor. The journal is the single source of truth
	// for proxied injects; a per-record forwarder goroutine delivers it
	// to whichever node owns the session. jBase is the absolute index of
	// journal[0] (prefix trims advance it), fwdAbs the absolute index of
	// the next entry to deliver, fwdSent the entries delivered to the
	// current generation (the migration barrier's target), fwdStarted
	// the lazy-start guard.
	jBase      int
	fwdAbs     int
	fwdSent    uint64
	fwdStarted bool
	genPending int // pending spikes the current generation's import injected
}

// Coordinator is the cluster control plane.
type Coordinator struct {
	opts Options

	mu    sync.Mutex
	cond  *sync.Cond // broadcast on any ownership/commit/end change
	nodes map[string]*node
	recs  map[string]*rec
	next  int

	imbalanceFor int // consecutive monitor rounds over the threshold

	httpLn   net.Listener
	streamLn net.Listener
	httpSrv  *http.Server
	stop     chan struct{}
	wg       sync.WaitGroup
	started  time.Time
}

// NewCoordinator builds an unstarted coordinator.
func NewCoordinator(opts Options) *Coordinator {
	c := &Coordinator{
		opts:  opts.withDefaults(),
		nodes: make(map[string]*node),
		recs:  make(map[string]*rec),
		stop:  make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Start binds the control and stream listeners and begins the monitor
// loop.
func (c *Coordinator) Start() error {
	c.started = time.Now()
	httpLn, err := net.Listen("tcp", c.opts.HTTPAddr)
	if err != nil {
		return fmt.Errorf("cluster: http listen: %w", err)
	}
	streamLn, err := net.Listen("tcp", c.opts.StreamAddr)
	if err != nil {
		httpLn.Close()
		return fmt.Errorf("cluster: stream listen: %w", err)
	}
	c.httpLn, c.streamLn = httpLn, streamLn
	c.httpSrv = &http.Server{Handler: c.handler()}
	go c.httpSrv.Serve(httpLn)
	c.wg.Add(2)
	go c.acceptProxy(streamLn)
	go c.monitor()
	return nil
}

// HTTPAddr returns the bound control-plane address.
func (c *Coordinator) HTTPAddr() string { return c.httpLn.Addr().String() }

// StreamAddr returns the bound stream-proxy address.
func (c *Coordinator) StreamAddr() string { return c.streamLn.Addr().String() }

// Shutdown stops serving. Sessions keep running on their nodes; a
// coordinator restart re-learns the fleet from re-registrations.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	close(c.stop)
	c.streamLn.Close()
	err := c.httpSrv.Shutdown(ctx)
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
	return err
}

func (c *Coordinator) logf(format string, args ...any) {
	c.opts.Logf("coordinator: "+format, args...)
}

// register adds or replaces a node.
func (c *Coordinator) register(req *RegisterRequest) error {
	if req.NodeID == "" || req.HTTPAddr == "" {
		return fmt.Errorf("cluster: registration needs node_id and http_addr")
	}
	n := &node{
		id:           req.NodeID,
		httpAddr:     req.HTTPAddr,
		streamAddr:   req.StreamAddr,
		capacity:     req.Capacity,
		memoryBudget: req.MemoryBudget,
		client:       newNodeClient(req.HTTPAddr, c.opts.NodeTimeout),
		lastSeen:     time.Now(),
		resident:     make(map[string]bool),
	}
	if n.capacity <= 0 {
		n.capacity = 1.0
	}
	c.mu.Lock()
	prev := c.nodes[req.NodeID]
	c.nodes[req.NodeID] = n
	c.mu.Unlock()
	if prev != nil {
		c.logf("node %s re-registered at %s (was %s)", req.NodeID, req.HTTPAddr, prev.httpAddr)
	} else {
		c.logf("node %s registered at %s (capacity %.3g s/tick)", req.NodeID, req.HTTPAddr, n.capacity)
	}
	return nil
}

// heartbeat folds one node report in and flags sessions needing
// attention (terminal pulses, sessions missing from their owner).
func (c *Coordinator) heartbeat(hb *Heartbeat) error {
	c.mu.Lock()
	n := c.nodes[hb.NodeID]
	if n == nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown node %q (register first)", hb.NodeID)
	}
	if n.dead {
		// A node declared dead that heartbeats again is alive after all,
		// but its sessions have been restored elsewhere; make it
		// re-register as a fresh, empty node instead of resurrecting it.
		c.mu.Unlock()
		return fmt.Errorf("cluster: node %q was declared dead (re-register)", hb.NodeID)
	}
	n.lastSeen = time.Now()
	n.used = hb.Used
	n.memUsed = hb.MemUsed
	n.running = hb.Running
	n.queued = hb.Queued
	n.resident = make(map[string]bool, len(hb.Resident))
	for _, h := range hb.Resident {
		n.resident[h] = true
	}
	// A snapshot taken before a just-placed session was admitted must
	// not wipe the eager residency mark from create/import: images of
	// live sessions the coordinator placed here are resident by
	// construction (the daemon's cache pins them while resident), so
	// affinity placement keeps seeing them between heartbeats.
	for _, r := range c.recs {
		if r.nodeID == hb.NodeID && !r.ended && r.modelHash != "" {
			n.resident[r.modelHash] = true
		}
	}
	pulse := make(map[string]SessionPulse, len(hb.Sessions))
	for _, p := range hb.Sessions {
		pulse[p.ID] = p
	}
	type action struct {
		r       *rec
		restore bool
		state   string
		errMsg  string
	}
	var acts []action
	for _, r := range c.recs {
		if r.nodeID != hb.NodeID || r.ended || r.migrating {
			continue
		}
		p, ok := pulse[r.nodeSessionID]
		if !ok {
			// The owner no longer knows the session (daemon restarted
			// under the same ID, or it was deleted out-of-band). Tolerate
			// two rounds of absence — a session placed moments ago can race
			// the heartbeat snapshot — then restore.
			if time.Since(r.placedAt) > 2*c.opts.HeartbeatInterval {
				r.misses++
				if r.misses >= 2 {
					acts = append(acts, action{r: r, restore: true, errMsg: "session missing from owner"})
				}
			}
			continue
		}
		r.misses = 0
		switch p.State {
		case "done", "drained", "cancelled":
			// Normal end of life. Drained/cancelled can only happen via
			// the cluster API (which marks ended itself) or out-of-band;
			// either way there is nothing left to failover.
			acts = append(acts, action{r: r, state: p.State})
		case "failed":
			if r.req.Faults != "" && r.restores < c.opts.MaxRestores {
				// A crash-faulted session: the chaos drill. Restore it
				// elsewhere from its last pushed boundary, without the
				// fault rules (replaying them would re-fire the crash).
				acts = append(acts, action{r: r, restore: true, errMsg: p.Error})
			} else {
				acts = append(acts, action{r: r, state: "failed", errMsg: p.Error})
			}
		}
	}
	c.mu.Unlock()

	for _, a := range acts {
		if a.restore {
			c.logf("session %s on %s needs restore: %s", a.r.clusterID, hb.NodeID, a.errMsg)
			go c.restore(a.r, a.errMsg)
		} else {
			c.endSession(a.r, a.state, a.errMsg)
		}
	}
	return nil
}

// endSession marks a record terminal and wakes the proxy so it can
// flush and close.
func (c *Coordinator) endSession(r *rec, state, errMsg string) {
	c.mu.Lock()
	if !r.ended {
		r.ended = true
		r.endState = state
		if state == "done" && r.lastExport != nil {
			// The final boundary push covers every emitted record; move
			// the horizon past it so the proxy flushes the tail.
			if t := r.lastExport.Tick; t > r.committedTick {
				r.committedTick = t
			}
		}
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	_ = errMsg
}

// checkpointPush folds a node agent's boundary report into the record
// it matches; stale pushes (older generation owners) are dropped.
func (c *Coordinator) checkpointPush(p *CheckpointPush) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// A node declared dead may still be alive and pushing (lost
	// heartbeats only). Its sessions are being restored from the last
	// push read *before* the declaration; accepting later pushes would
	// advance the commit horizon past the restore boundary and release
	// records the restored run will emit again.
	if n := c.nodes[p.NodeID]; n == nil || n.dead {
		return
	}
	for _, r := range c.recs {
		if r.nodeID == p.NodeID && r.nodeSessionID == p.NodeSessionID && !r.ended {
			doc := p.Export
			// Pushes ship asynchronously and can land out of order; keep
			// the newest boundary.
			if r.lastExport == nil || doc.Tick >= r.lastExport.Tick {
				r.lastExport = &doc
			}
			if r.modelHash == "" {
				r.modelHash = doc.ModelHash
			}
			if doc.Tick > r.committedTick {
				r.committedTick = doc.Tick
			}
			// The pushed document carries everything needed to replay
			// from its boundary; journal entries at or past it are merged
			// at restore time, so older entries can be dropped here.
			c.trimJournalLocked(r)
			c.cond.Broadcast()
			return
		}
	}
}

// trimJournalLocked drops the journal prefix already covered by the
// last pushed checkpoint: entries both delivered to the owner (absolute
// index below the forwarder cursor) and stamped below the boundary
// (their effect — delivery or pending — is inside the push). Trimming
// is prefix-only so absolute indices stay meaningful; jBase advances by
// the dropped count. Callers hold mu.
func (c *Coordinator) trimJournalLocked(r *rec) {
	if r.lastExport == nil || len(r.journal) == 0 {
		return
	}
	horizon := r.lastExport.Tick
	drop := 0
	for _, ev := range r.journal {
		if ev.Tick >= horizon || r.jBase+drop >= r.fwdAbs {
			break
		}
		drop++
	}
	if drop == 0 {
		return
	}
	r.journal = append(r.journal[:0], r.journal[drop:]...)
	r.jBase += drop
}

// startForwarderLocked launches the record's inject forwarder on first
// use (first journaled entry). Callers hold mu.
func (c *Coordinator) startForwarderLocked(r *rec) {
	if r.fwdStarted {
		return
	}
	r.fwdStarted = true
	c.wg.Add(1)
	go c.runForwarder(r)
}

// stopping reports whether Shutdown has begun.
func (c *Coordinator) stopping() bool {
	select {
	case <-c.stop:
		return true
	default:
		return false
	}
}

// fwdPause sleeps one retry interval on the forwarder's reused timer;
// false means shutdown. The timer belongs to the calling loop so retry
// storms reuse one allocation instead of leaving a pending time.After
// timer per iteration.
func (c *Coordinator) fwdPause(retry *reusableTimer) bool {
	select {
	case <-c.stop:
		retry.Disarm()
		return false
	case <-retry.Arm(proxyDialRetry):
		return true
	}
}

// runForwarder delivers the record's inject journal to the session's
// current owner, one generation at a time. It is the only path by which
// proxied injects reach a daemon: the proxy's client reader just
// journals (so a slow or unreachable owner can never stall frame
// intake), and this goroutine drains the journal from the generation's
// cursor. adoptOwner re-cursors to the resume boundary's suffix, which
// is what makes migration and failover lossless — whatever the old
// owner did or did not consume, the new owner receives every entry at
// or past its boundary before it is resumed (awaitInjectSync gates the
// resume). Same-tick duplicate delivery is idempotent, so a cross-
// generation re-send of an entry the export already captured is
// harmless.
func (c *Coordinator) runForwarder(r *rec) {
	defer c.wg.Done()
	retry := newReusableTimer()
	defer retry.Disarm()
	var up *server.StreamClient
	upGen := -1
	defer func() {
		if up != nil {
			up.Close()
		}
	}()
	for {
		c.mu.Lock()
		for !r.ended && !c.stopping() && r.fwdAbs >= r.jBase+len(r.journal) {
			c.cond.Wait()
		}
		if r.ended || c.stopping() {
			c.mu.Unlock()
			return
		}
		gen := r.gen
		start := r.fwdAbs - r.jBase
		if start < 0 {
			// Defensive: a trim may never pass the cursor, but clamp so a
			// future invariant slip re-sends (idempotent) instead of
			// panicking.
			start = 0
			r.fwdAbs = r.jBase
		}
		batch := append([]spikeio.Event(nil), r.journal[start:]...)
		var addr, sid string
		if n := c.nodes[r.nodeID]; n != nil && !n.dead {
			addr, sid = n.streamAddr, r.nodeSessionID
		}
		c.mu.Unlock()

		if up != nil && upGen != gen {
			up.Close()
			up = nil
		}
		if up == nil {
			if addr == "" {
				if !c.fwdPause(retry) {
					return
				}
				continue
			}
			cl, err := server.DialStream(addr, sid, server.StreamFlagInject)
			if err != nil {
				if !c.fwdPause(retry) {
					return
				}
				continue
			}
			up, upGen = cl, gen
		}
		if err := up.Send(batch); err != nil {
			up.Close()
			up = nil
			if !c.fwdPause(retry) {
				return
			}
			continue
		}
		c.mu.Lock()
		// Only credit the send if ownership held: a generation bump
		// mid-send re-cursored fwdAbs, and the new owner must get the
		// suffix again.
		if r.gen == gen {
			r.fwdAbs += len(batch)
			r.fwdSent += uint64(len(batch))
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	}
}

// aliveNodesLocked lists nodes with fresh heartbeats. Callers hold mu.
func (c *Coordinator) aliveNodesLocked() []*node {
	lapse := time.Duration(c.opts.LapseFactor) * c.opts.HeartbeatInterval
	out := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if !n.dead && time.Since(n.lastSeen) <= lapse {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// monitor is the coordinator's periodic sweep: detect dead nodes and
// restore their sessions, and trigger rebalancing on sustained
// imbalance.
func (c *Coordinator) monitor() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		c.sweepDead()
		c.maybeRebalance()
	}
}

// sweepDead declares lapsed nodes dead and restores their sessions.
func (c *Coordinator) sweepDead() {
	lapse := time.Duration(c.opts.LapseFactor) * c.opts.HeartbeatInterval
	c.mu.Lock()
	var dead []*node
	for _, n := range c.nodes {
		if !n.dead && time.Since(n.lastSeen) > lapse {
			n.dead = true
			dead = append(dead, n)
		}
	}
	var orphans []*rec
	for _, n := range dead {
		for _, r := range c.recs {
			if r.nodeID == n.id && !r.ended && !r.migrating {
				orphans = append(orphans, r)
			}
		}
	}
	c.mu.Unlock()
	for _, n := range dead {
		c.logf("node %s heartbeats lapsed (> %v); declaring dead", n.id, lapse)
	}
	for _, r := range orphans {
		go c.restore(r, "node heartbeats lapsed")
	}
}

// maybeRebalance migrates one session from the hottest to the coolest
// node when the utilization spread stays above the threshold for the
// configured number of rounds.
func (c *Coordinator) maybeRebalance() {
	if c.opts.RebalanceThreshold <= 0 {
		return
	}
	c.mu.Lock()
	alive := c.aliveNodesLocked()
	if len(alive) < 2 {
		c.imbalanceFor = 0
		c.mu.Unlock()
		return
	}
	var hot, cool *node
	for _, n := range alive {
		if n.draining {
			continue
		}
		if hot == nil || n.used/n.capacity > hot.used/hot.capacity {
			hot = n
		}
		if cool == nil || n.used/n.capacity < cool.used/cool.capacity {
			cool = n
		}
	}
	if hot == nil || cool == nil || hot == cool ||
		hot.used/hot.capacity-cool.used/cool.capacity < c.opts.RebalanceThreshold {
		c.imbalanceFor = 0
		c.mu.Unlock()
		return
	}
	c.imbalanceFor++
	if c.imbalanceFor < c.opts.RebalanceRounds {
		c.mu.Unlock()
		return
	}
	c.imbalanceFor = 0
	// Move the cheapest migratable session off the hot node — the
	// smallest step that closes the gap without thrashing.
	var pick *rec
	for _, r := range c.recs {
		if r.nodeID != hot.id || r.ended || r.migrating {
			continue
		}
		if pick == nil || r.clusterID < pick.clusterID {
			pick = r
		}
	}
	hotID, coolID := hot.id, cool.id
	c.mu.Unlock()
	if pick == nil {
		return
	}
	c.logf("rebalancing: moving %s from %s to %s", pick.clusterID, hotID, coolID)
	if _, err := c.Migrate(pick.clusterID, coolID); err != nil {
		c.logf("rebalance of %s failed: %v", pick.clusterID, err)
	}
}

// DrainNode migrates every session off a node (rolling-restart
// support) and marks it out of placement. It returns the sessions
// moved and any that could not be.
func (c *Coordinator) DrainNode(nodeID string) (moved, stuck []string, err error) {
	c.mu.Lock()
	n := c.nodes[nodeID]
	if n == nil {
		c.mu.Unlock()
		return nil, nil, fmt.Errorf("cluster: unknown node %q", nodeID)
	}
	n.draining = true
	var ids []string
	for id, r := range c.recs {
		if r.nodeID == nodeID && !r.ended {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	c.mu.Unlock()
	for _, id := range ids {
		if _, err := c.Migrate(id, ""); err != nil {
			c.logf("drain of %s: session %s stuck: %v", nodeID, id, err)
			stuck = append(stuck, id)
			continue
		}
		moved = append(moved, id)
	}
	return moved, stuck, nil
}

// Deregister removes a node from the registry (after its daemon shut
// down cleanly). Sessions still recorded against it are restored by
// the ordinary missing-owner path if any were left behind.
func (c *Coordinator) Deregister(nodeID string) {
	c.mu.Lock()
	delete(c.nodes, nodeID)
	c.mu.Unlock()
}

// sessionStatusLocked builds the status document. Callers hold mu.
func (r *rec) statusLocked() SessionStatus {
	return SessionStatus{
		ClusterID:     r.clusterID,
		Node:          r.nodeID,
		Generation:    r.gen,
		Migrations:    r.migrations,
		Restores:      r.restores,
		CommittedTick: r.committedTick,
		ModelHash:     r.modelHash,
		Ended:         r.ended,
		EndState:      r.endState,
	}
}

// getRec looks a cluster session up.
func (c *Coordinator) getRec(id string) (*rec, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.recs[id]
	if !ok {
		return nil, fmt.Errorf("cluster: no such session %q", id)
	}
	return r, nil
}

// ownerClient returns the current owner's client and node session id.
func (c *Coordinator) ownerClient(r *rec) (*nodeClient, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[r.nodeID]
	if n == nil {
		return nil, "", fmt.Errorf("cluster: session %s owner %s not registered", r.clusterID, r.nodeID)
	}
	return n.client, r.nodeSessionID, nil
}
