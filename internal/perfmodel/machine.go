// Package perfmodel projects Compass workloads onto Blue Gene hardware.
//
// The paper's evaluation (§VI–VII) reports wall-clock times measured on
// 1–16 racks of Blue Gene/Q and 1–4 racks of Blue Gene/P — machines this
// repository cannot run on. The reproduction therefore splits every
// scaling experiment into two faithful halves:
//
//  1. Workload: how much work each phase does per node and per tick —
//     neuron updates, axon and synaptic events, spike counts, message
//     counts, bytes. These are measured exactly by the functional
//     simulator (internal/compass) or computed analytically from the
//     CoCoMac network structure; they are scale-accurate by construction.
//  2. Machine: how long that work takes — per-operation costs, message
//     overheads, reduce-scatter and barrier scaling. These constants are
//     calibrated so the model reproduces the paper's published wall-clock
//     numbers at the paper's own operating points (388× real time at 256M
//     cores; 324 s → 47 s → 37 s strong scaling; 2.1× PGAS advantage on
//     Blue Gene/P), and the calibration is pinned by tests.
//
// The *shapes* of the reproduced figures — who wins, where curves bend —
// come from half 1, which is real; half 2 only anchors absolute scale.
// The per-operation constants are effective costs including memory
// stalls and load imbalance, not microarchitectural claims.
package perfmodel

import (
	"fmt"
	"math"

	"github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/torus"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// Machine describes one parallel platform: topology, per-op effective
// costs (seconds, per hardware thread), and communication parameters.
type Machine struct {
	Name string

	// NodesPerRack and the torus dimensionality of the interconnect.
	NodesPerRack int
	TorusDims    int

	// HWThreadsPerNode bounds useful threads per rank.
	HWThreadsPerNode int

	// Per-operation effective costs in seconds per hardware thread.
	CAxonCheck   float64 // per axon scanned in the Synapse phase
	CAxonEvent   float64 // per axon with a pending spike
	CSynEvent    float64 // per crossbar delivery into a neuron
	CNeuronUpd   float64 // per neuron integrate-leak-threshold update
	CFire        float64 // per emitted spike
	CSpikeAgg    float64 // per remote spike aggregated (master thread)
	CDeliver     float64 // per spike delivered into an axon buffer
	FalseSharing float64 // fractional compute penalty per extra thread

	// Two-sided messaging costs.
	MsgSendOverhead float64 // per message, sender side
	MsgRecvOverhead float64 // per message, receiver side
	CCritical       float64 // per message spent inside the critical section
	BytePerSecond   float64 // injection bandwidth per node

	// Collectives: ReduceScatter(P) = RSAlpha·log2(P) + RSBeta·P;
	// Barrier(P) = BarAlpha·log2(P).
	RSAlpha  float64
	RSBeta   float64
	BarAlpha float64

	// One-sided put overhead per put (PGAS).
	PutOverhead float64
}

// BlueGeneQ returns the Blue Gene/Q model: 1024 nodes per rack, 16
// application cores × 4 hardware threads per node, 5-D torus with 2 GB/s
// links (§VI-A). Effective costs are calibrated to the §VI wall-clock
// reports.
func BlueGeneQ() Machine {
	return Machine{
		Name:             "BlueGene/Q",
		NodesPerRack:     1024,
		TorusDims:        5,
		HWThreadsPerNode: 64,
		CAxonCheck:       1.07e-6,
		CAxonEvent:       2.0e-6,
		CSynEvent:        0.51e-6,
		CNeuronUpd:       1.41e-6,
		CFire:            3.7e-6,
		CSpikeAgg:        0.3e-6,
		CDeliver:         0.5e-6,
		FalseSharing:     0.004,
		MsgSendOverhead:  10e-6,
		MsgRecvOverhead:  8e-6,
		CCritical:        4e-6,
		BytePerSecond:    2e9,
		RSAlpha:          0,
		RSBeta:           2.05e-6,
		BarAlpha:         1.5e-6,
		PutOverhead:      3e-6,
	}
}

// BlueGeneP returns the Blue Gene/P model: 1024 nodes per rack, 4 CPUs
// per node at 850 MHz, 3-D torus with 425 MB/s links (§VII). The PGAS
// path has no reduce-scatter and uses the fast DCMF barrier; costs are
// calibrated to Figure 7 (81K cores in real time under PGAS, MPI 2.1×
// slower on four racks).
func BlueGeneP() Machine {
	return Machine{
		Name:             "BlueGene/P",
		NodesPerRack:     1024,
		TorusDims:        3,
		HWThreadsPerNode: 4,
		CAxonCheck:       0.26e-6,
		CAxonEvent:       0.8e-6,
		CSynEvent:        0.15e-6,
		CNeuronUpd:       0.33e-6,
		CFire:            1.0e-6,
		CSpikeAgg:        0.15e-6,
		CDeliver:         0.25e-6,
		FalseSharing:     0.006,
		MsgSendOverhead:  12e-6,
		MsgRecvOverhead:  10e-6,
		CCritical:        6e-6,
		BytePerSecond:    425e6,
		RSAlpha:          0,
		RSBeta:           0.25e-6,
		BarAlpha:         3e-6,
		PutOverhead:      2e-6,
	}
}

// ReduceScatterTime returns the modelled cost of the per-tick
// MPI_Reduce_scatter over nodes ranks.
func (m *Machine) ReduceScatterTime(nodes int) float64 {
	if nodes <= 1 {
		return 0
	}
	return m.RSAlpha*math.Log2(float64(nodes)) + m.RSBeta*float64(nodes)
}

// BarrierTime returns the modelled cost of a global barrier over nodes
// ranks (tree/collective-network barrier: logarithmic).
func (m *Machine) BarrierTime(nodes int) float64 {
	if nodes <= 1 {
		return 0
	}
	return m.BarAlpha * math.Log2(float64(nodes))
}

// Torus returns the interconnect topology for a given node count.
func (m *Machine) Torus(nodes int) (*torus.Topology, error) {
	return torus.Balanced(nodes, m.TorusDims)
}

// NodeWork is the per-node per-tick workload of the critical-path node.
type NodeWork struct {
	Cores          float64
	AxonEvents     float64
	SynEvents      float64
	NeuronUpdates  float64
	Firings        float64
	LocalSpikes    float64
	RemoteSpikes   float64
	MsgsSent       float64
	MsgsRecv       float64
	BytesSent      float64
	SpikesReceived float64
}

// Workload is a complete per-tick workload description for a projection.
type Workload struct {
	// Nodes is the rank/node count of the run.
	Nodes int
	// Max is the critical-path node's per-tick work.
	Max NodeWork
	// TotalMessagesPerTick and TotalRemoteSpikesPerTick aggregate over
	// all nodes (the Figure 4(b) quantities).
	TotalMessagesPerTick     float64
	TotalRemoteSpikesPerTick float64
}

// PhaseTimes is the modelled per-tick wall-clock broken down by the main
// loop phases, mirroring Figures 4(a) and 5.
type PhaseTimes struct {
	Synapse float64
	Neuron  float64
	Network float64
}

// Total returns the per-tick total.
func (p PhaseTimes) Total() float64 { return p.Synapse + p.Neuron + p.Network }

// Options ablates Compass's communication design choices so their
// contribution to the paper's results can be isolated.
type Options struct {
	// NoAggregation sends every spike as its own message instead of one
	// aggregated message per destination per tick (§III's aggregation).
	NoAggregation bool
	// NoOverlap serializes the reduce-scatter after local spike delivery
	// instead of overlapping them (§III's overlap).
	NoOverlap bool
}

// Project models the per-tick wall-clock of a Compass run with the given
// per-rank thread count and transport.
func Project(m Machine, w Workload, threads int, transport compass.Transport) (PhaseTimes, error) {
	return ProjectWithOptions(m, w, threads, transport, Options{})
}

// ProjectWithOptions is Project with design-choice ablations applied.
func ProjectWithOptions(m Machine, w Workload, threads int, transport compass.Transport, opts Options) (PhaseTimes, error) {
	if threads < 1 {
		return PhaseTimes{}, fmt.Errorf("perfmodel: %d threads", threads)
	}
	if w.Nodes < 1 {
		return PhaseTimes{}, fmt.Errorf("perfmodel: %d nodes", w.Nodes)
	}
	if threads > m.HWThreadsPerNode {
		threads = m.HWThreadsPerNode
	}
	th := float64(threads)
	// Shared-memory contention grows with the thread count (§VI-D: false
	// sharing penalties offset the reduce-scatter savings of wider nodes).
	contention := 1 + m.FalseSharing*(th-1)

	synapse := (w.Max.Cores*truenorth.CoreSize*m.CAxonCheck +
		w.Max.AxonEvents*m.CAxonEvent +
		w.Max.SynEvents*m.CSynEvent) / th * contention

	neuron := (w.Max.NeuronUpdates*m.CNeuronUpd+w.Max.Firings*m.CFire)/th*contention +
		w.Max.RemoteSpikes*m.CSpikeAgg // master-thread aggregation, serial

	deliver := (w.Max.LocalSpikes + w.Max.SpikesReceived) * m.CDeliver / th * contention

	msgsSent, msgsRecv := w.Max.MsgsSent, w.Max.MsgsRecv
	if opts.NoAggregation {
		// Every remote spike pays the full per-message overhead.
		msgsSent, msgsRecv = w.Max.RemoteSpikes, w.Max.SpikesReceived
	}

	var network float64
	switch transport {
	case compass.TransportMPI:
		send := msgsSent*m.MsgSendOverhead + w.Max.BytesSent/m.BytePerSecond
		// The reduce-scatter overlaps with local delivery (§III): the
		// master runs the collective while other threads deliver local
		// spikes, so the phase pays the maximum of the two, not the sum.
		localDeliver := w.Max.LocalSpikes * m.CDeliver / th * contention
		overlap := math.Max(m.ReduceScatterTime(w.Nodes), localDeliver)
		if opts.NoOverlap {
			overlap = m.ReduceScatterTime(w.Nodes) + localDeliver
		}
		// Receives serialize in the critical section; delivery of the
		// received payload parallelizes.
		recv := msgsRecv * (m.MsgRecvOverhead + m.CCritical)
		remoteDeliver := w.Max.SpikesReceived * m.CDeliver / th * contention
		network = send + overlap + recv + remoteDeliver
	case compass.TransportPGAS:
		puts := msgsSent*m.PutOverhead + w.Max.BytesSent/m.BytePerSecond
		network = puts + m.BarrierTime(w.Nodes) + deliver
	case compass.TransportShmem:
		// The shmem transport is a host-only fast path for in-process
		// runs; it has no Blue Gene analogue to project.
		return PhaseTimes{}, fmt.Errorf("perfmodel: shmem transport has no machine-model projection")
	default:
		return PhaseTimes{}, fmt.Errorf("perfmodel: unknown transport %v", transport)
	}
	return PhaseTimes{Synapse: synapse, Neuron: neuron, Network: network}, nil
}

// WorkloadFromStats derives a workload from functional-simulator
// measurements: the critical-path node is the per-rank maximum of each
// quantity, normalized per tick.
func WorkloadFromStats(stats *compass.RunStats) Workload {
	w := Workload{Nodes: stats.Ranks}
	if stats.Ticks == 0 {
		return w
	}
	ticks := float64(stats.Ticks)
	for _, rs := range stats.PerRank {
		w.Max.Cores = math.Max(w.Max.Cores, float64(rs.CoresOwned))
		w.Max.AxonEvents = math.Max(w.Max.AxonEvents, float64(rs.AxonEvents)/ticks)
		w.Max.SynEvents = math.Max(w.Max.SynEvents, float64(rs.SynapticEvents)/ticks)
		w.Max.NeuronUpdates = math.Max(w.Max.NeuronUpdates, float64(rs.NeuronUpdates)/ticks)
		w.Max.Firings = math.Max(w.Max.Firings, float64(rs.Firings)/ticks)
		w.Max.LocalSpikes = math.Max(w.Max.LocalSpikes, float64(rs.LocalSpikes)/ticks)
		w.Max.RemoteSpikes = math.Max(w.Max.RemoteSpikes, float64(rs.RemoteSpikes)/ticks)
		w.Max.MsgsSent = math.Max(w.Max.MsgsSent, float64(rs.MessagesSent)/ticks)
		w.Max.BytesSent = math.Max(w.Max.BytesSent, float64(rs.RemoteSpikes)/ticks*truenorth.SpikeWireBytes)
	}
	// Symmetric traffic assumption for the receive side: the busiest
	// receiver handles about what the busiest sender emits.
	w.Max.MsgsRecv = w.Max.MsgsSent
	w.Max.SpikesReceived = w.Max.RemoteSpikes
	w.TotalMessagesPerTick = float64(stats.Messages) / ticks
	w.TotalRemoteSpikesPerTick = float64(stats.RemoteSpikes) / ticks
	return w
}
