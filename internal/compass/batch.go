package compass

import (
	"context"
	"fmt"
	"math/bits"
	"runtime/pprof"
	"strconv"
	"time"

	"github.com/cognitive-sim/compass/internal/truenorth"
	"github.com/cognitive-sim/compass/internal/workpool"
)

// This file is the batched multi-session execution engine: many
// sessions of ONE immutable image advance under a single tick loop. The
// kernel sweep iterates cores in the outer loop and session lanes in an
// inner struct-of-arrays pass (truenorth.CoreLanes lays each core's
// per-lane potentials, delay rings, and PRNG streams out contiguously),
// so the image's crossbar planes and delay bitmasks are loaded once per
// core per tick instead of once per session, and the whole group pays
// one Network-phase exchange per tick instead of one per session.
//
// The determinism contract is absolute: every lane's spike trace and
// checkpoint is byte-identical to the same session run solo under the
// same decomposition, for any batch membership and any join/leave
// schedule. The contract holds structurally: each lane owns private
// per-core state and a private per-core PRNG stream; the within-lane
// event order per core per tick is produced by the exact same Core
// methods the solo path calls; and spikes are routed to their lane by a
// Lane tag that rides the spike record's formerly-reserved byte, so
// every transport (MPI, PGAS, shmem) carries batched traffic unchanged.
//
// Lanes may sit at different absolute ticks (a session that joins
// mid-run resumes from its checkpoint): sweep k advances lane s through
// its own tick laneStart[s]+k, while the transports see the shared
// monotone sweep index. Sessions join and leave only at run boundaries
// — a batch group runs a bounded window, members collect their per-lane
// results, and the next window is formed from whoever is waiting.

// BatchLane describes one session lane of a batched run. The shared
// Config carries everything decomposition-wide (ranks, threads,
// transport, placement); the lane carries everything session-specific.
type BatchLane struct {
	// StartFrom resumes this lane from a checkpoint; nil starts at tick
	// 0. Lanes may start at different ticks.
	StartFrom *truenorth.Checkpoint
	// InputSource optionally streams external spikes into this lane,
	// polled once per sweep at the lane's own tick.
	InputSource InputSource
	// OutputSink optionally observes this lane's fired spikes live, per
	// rank and per lane-tick, exactly as in a solo run.
	OutputSink OutputSink
	// Telemetry optionally attributes this lane's counters to a
	// session-labeled bundle (built for at least Ranks shards). Phase
	// wall-clock is a group-level quantity and is not attributed per
	// lane; see BatchResult.SweepSeconds.
	Telemetry *Telemetry
}

// BatchResult is the outcome of one batched run window.
type BatchResult struct {
	// Lanes holds one RunStats per lane, index-aligned with the input:
	// traces, checkpoints, and every counter attributed per lane, with
	// the same meaning as a solo run of that session.
	Lanes []*RunStats
	// SweepSeconds is the mean wall-clock per sweep (one tick of every
	// lane), measured around the whole window.
	SweepSeconds float64
}

// RunBatch advances every lane ticks ticks under one shared tick loop.
// See RunBatchContext.
func RunBatch(img *truenorth.Image, cfg Config, ticks int, lanes []BatchLane) (*BatchResult, error) {
	return RunBatchContext(context.Background(), img, cfg, ticks, lanes)
}

// RunBatchContext is the batched analogue of RunImageContext: it
// advances every lane exactly ticks ticks (lane s from its own
// StartFrom tick) with one kernel sweep and one transport exchange per
// tick for the whole group. Per-session fields of Config (StartFrom,
// InputSource, OutputSink, Telemetry) must be nil — they move to the
// lanes; fault injection and the per-tick/phase recorders are solo-run
// instruments and are rejected. Config.RecordTrace and
// Config.ReturnState apply to every lane.
func RunBatchContext(ctx context.Context, img *truenorth.Image, cfg Config, ticks int, lanes []BatchLane) (*BatchResult, error) {
	if err := cfg.ValidateImage(img); err != nil {
		return nil, err
	}
	if ticks < 0 {
		return nil, fmt.Errorf("compass: negative tick count %d", ticks)
	}
	if len(lanes) < 1 || len(lanes) > truenorth.MaxLanes {
		return nil, fmt.Errorf("compass: %d batch lanes outside [1,%d]", len(lanes), truenorth.MaxLanes)
	}
	switch {
	case cfg.StartFrom != nil:
		return nil, fmt.Errorf("compass: batched runs take StartFrom per lane, not in Config")
	case cfg.InputSource != nil || cfg.OutputSink != nil || cfg.Telemetry != nil:
		return nil, fmt.Errorf("compass: batched runs take InputSource, OutputSink, and Telemetry per lane, not in Config")
	case cfg.Faults != nil:
		return nil, fmt.Errorf("compass: fault injection is not supported in batched execution")
	case cfg.RecordPerTick || cfg.MeasurePhases:
		return nil, fmt.Errorf("compass: per-tick and per-phase recording are solo-run instruments; use BatchResult.SweepSeconds")
	}
	for s, lane := range lanes {
		if lane.StartFrom != nil {
			if err := img.ValidateCheckpoint(lane.StartFrom); err != nil {
				return nil, fmt.Errorf("compass: lane %d: %w", s, err)
			}
		}
		if lane.Telemetry != nil && lane.Telemetry.Registry().Shards() < cfg.Ranks {
			return nil, fmt.Errorf("compass: lane %d telemetry built for %d shards, run has %d ranks",
				s, lane.Telemetry.Registry().Shards(), cfg.Ranks)
		}
	}

	backend, err := newBackend(cfg.Transport, nil, nil)
	if err != nil {
		return nil, err
	}
	placement := cfg.placement(img.NumCores())
	ranks := make([]*batchRank, cfg.Ranks)
	for r := range ranks {
		br, err := newBatchRank(r, img, cfg, lanes, placement, backend.RawSpikes())
		if err != nil {
			return nil, err
		}
		ranks[r] = br
	}
	// Restore per-lane checkpoints across every rank's core groups.
	for s, lane := range lanes {
		if lane.StartFrom == nil {
			continue
		}
		for _, br := range ranks {
			for _, cl := range br.cores {
				if err := cl.Lane(s).SetState(lane.StartFrom.States[cl.ID()]); err != nil {
					return nil, err
				}
			}
		}
	}

	t0 := time.Now()
	runErr := backend.Run(cfg.Ranks, func(rank int, ep Endpoint) error {
		br := ranks[rank]
		br.ep = ep
		return br.loop(ctx, ticks)
	})
	if runErr != nil {
		return nil, runErr
	}
	out := gatherBatch(img, cfg, ticks, ranks)
	if ticks > 0 {
		out.SweepSeconds = time.Since(t0).Seconds() / float64(ticks)
	}
	return out, nil
}

// batchRank is one rank's state of a batched run: the lane-dimensioned
// analogue of rankState, implementing the same Delivery surface so
// every transport backend drives it unchanged.
type batchRank struct {
	rank    int
	ranks   int
	threads int
	nLanes  int
	cfg     Config
	lanes   []BatchLane

	// laneStart[s] is lane s's absolute start tick; sweep k advances
	// lane s through tick laneStart[s]+k.
	laneStart []uint64

	ep  Endpoint
	raw bool

	pool *workpool.Pool

	// cores are the rank's owned core groups (all lanes of each core,
	// contiguous), ascending ID; threadCores partitions them round-robin
	// exactly like the solo path partitions cores.
	cores       []*truenorth.CoreLanes
	threadCores [][]*truenorth.CoreLanes

	// localCore resolves spike targets owned by this rank, dense by
	// CoreID (nil entries for cores on other ranks).
	localCore []*truenorth.CoreLanes

	placement []int

	// inputsByTick[s] is lane s's private model-input schedule (each
	// lane consumes its own ticks).
	inputsByTick []map[uint64][]truenorth.InputSpike

	// Outbox accumulation, identical shapes to the solo path; spike
	// targets carry their lane in SpikeTarget.Lane.
	threadRemote    [][][]byte
	threadRemoteRaw [][][]truenorth.SpikeTarget
	out             Outbox
	threadLocal     [][]truenorth.SpikeTarget

	// threadDestLanes[tid][dest] is the current tick's bitmask of lanes
	// that sent at least one remote spike to dest — the per-lane message
	// attribution: a lane is charged one message per (tick, dest) pair
	// it contributed to, which is exactly the solo session's message
	// count for the same spikes and placement.
	threadDestLanes [][]uint64

	// per-tick per-thread per-lane spike counters, folded into the
	// cumulative lane counters at the end of each sweep.
	threadLaneLocal  [][]uint64
	threadLaneRemote [][]uint64

	// traces[s][tid] and threadSink[s][tid] accumulate lane s's spike
	// events; events record the neuron's own target (lane 0), so traces
	// are byte-identical to solo runs.
	traces     [][][]truenorth.SpikeEvent
	threadSink [][][]truenorth.SpikeEvent
	sinkBatch  []truenorth.SpikeEvent

	// cumulative per-thread per-lane compute counters.
	threadQuiescent  [][]uint64
	threadSynSkips   [][]uint64
	threadKernelHits [][]uint64
	threadScalarHits [][]uint64

	// cumulative per-lane traffic totals.
	laneLocal  []uint64
	laneRemote []uint64
	laneMsgs   []uint64
	lanePeers  [][]bool

	// per-lane input hygiene: stale model inputs purged at start (lanes
	// resuming mid-schedule) and streamed spikes addressing cores
	// outside the model (counted once, on rank 0, as in solo runs).
	laneStale       []uint64
	laneStreamDrops []uint64

	ticksRun int
}

// newBatchRank instantiates rank r's batched state: every owned core
// gets one contiguous CoreLanes group with nLanes session lanes.
func newBatchRank(r int, img *truenorth.Image, cfg Config, lanes []BatchLane, placement []int, raw bool) (*batchRank, error) {
	nLanes := len(lanes)
	br := &batchRank{
		rank:      r,
		ranks:     cfg.Ranks,
		threads:   cfg.ThreadsPerRank,
		nLanes:    nLanes,
		cfg:       cfg,
		lanes:     lanes,
		laneStart: make([]uint64, nLanes),
		raw:       raw,
		placement: placement,
		localCore: make([]*truenorth.CoreLanes, img.NumCores()),
	}
	for s, lane := range lanes {
		if lane.StartFrom != nil {
			br.laneStart[s] = lane.StartFrom.Tick
		}
	}
	for i := 0; i < img.NumCores(); i++ {
		if placement[i] != r {
			continue
		}
		cl, err := img.NewCoreLanes(i, nLanes)
		if err != nil {
			return nil, err
		}
		if cfg.ForceScalar {
			cl.ForceScalar()
		}
		br.cores = append(br.cores, cl)
		br.localCore[cl.ID()] = cl
	}
	br.threadCores = make([][]*truenorth.CoreLanes, cfg.ThreadsPerRank)
	for i, cl := range br.cores {
		tid := i % cfg.ThreadsPerRank
		br.threadCores[tid] = append(br.threadCores[tid], cl)
	}
	br.inputsByTick = make([]map[uint64][]truenorth.InputSpike, nLanes)
	for s := range br.inputsByTick {
		br.inputsByTick[s] = make(map[uint64][]truenorth.InputSpike)
		for _, in := range img.Inputs() {
			if placement[in.Core] == r {
				br.inputsByTick[s][in.Tick] = append(br.inputsByTick[s][in.Tick], in)
			}
		}
	}
	if raw {
		br.threadRemoteRaw = make([][][]truenorth.SpikeTarget, cfg.ThreadsPerRank)
		for tid := range br.threadRemoteRaw {
			br.threadRemoteRaw[tid] = make([][]truenorth.SpikeTarget, cfg.Ranks)
		}
		br.out.Targets = make([][]truenorth.SpikeTarget, cfg.Ranks)
	} else {
		br.threadRemote = make([][][]byte, cfg.ThreadsPerRank)
		for tid := range br.threadRemote {
			br.threadRemote[tid] = make([][]byte, cfg.Ranks)
		}
		br.out.Encoded = make([][]byte, cfg.Ranks)
	}
	br.out.Counts = make([]int64, cfg.Ranks)
	br.threadLocal = make([][]truenorth.SpikeTarget, cfg.ThreadsPerRank)
	br.threadDestLanes = make([][]uint64, cfg.ThreadsPerRank)
	br.threadLaneLocal = make([][]uint64, cfg.ThreadsPerRank)
	br.threadLaneRemote = make([][]uint64, cfg.ThreadsPerRank)
	br.threadQuiescent = make([][]uint64, cfg.ThreadsPerRank)
	br.threadSynSkips = make([][]uint64, cfg.ThreadsPerRank)
	br.threadKernelHits = make([][]uint64, cfg.ThreadsPerRank)
	br.threadScalarHits = make([][]uint64, cfg.ThreadsPerRank)
	for tid := 0; tid < cfg.ThreadsPerRank; tid++ {
		br.threadDestLanes[tid] = make([]uint64, cfg.Ranks)
		br.threadLaneLocal[tid] = make([]uint64, nLanes)
		br.threadLaneRemote[tid] = make([]uint64, nLanes)
		br.threadQuiescent[tid] = make([]uint64, nLanes)
		br.threadSynSkips[tid] = make([]uint64, nLanes)
		br.threadKernelHits[tid] = make([]uint64, nLanes)
		br.threadScalarHits[tid] = make([]uint64, nLanes)
	}
	if cfg.RecordTrace {
		br.traces = make([][][]truenorth.SpikeEvent, nLanes)
		for s := range br.traces {
			br.traces[s] = make([][]truenorth.SpikeEvent, cfg.ThreadsPerRank)
		}
	}
	for _, lane := range lanes {
		if lane.OutputSink != nil {
			br.threadSink = make([][][]truenorth.SpikeEvent, nLanes)
			for s := range br.threadSink {
				br.threadSink[s] = make([][]truenorth.SpikeEvent, cfg.ThreadsPerRank)
			}
			break
		}
	}
	br.laneLocal = make([]uint64, nLanes)
	br.laneRemote = make([]uint64, nLanes)
	br.laneMsgs = make([]uint64, nLanes)
	br.lanePeers = make([][]bool, nLanes)
	for s := range br.lanePeers {
		br.lanePeers[s] = make([]bool, cfg.Ranks)
	}
	br.laneStale = make([]uint64, nLanes)
	br.laneStreamDrops = make([]uint64, nLanes)
	return br, nil
}

// loop runs the rank's batched main loop for ticks sweeps.
func (br *batchRank) loop(ctx context.Context, ticks int) error {
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("compass_rank", strconv.Itoa(br.rank), "compass_worker", "0")))
	br.ticksRun = ticks
	pool, release := newWorkerPool(br.rank, br.threads, br.cfg.Workers)
	br.pool = pool
	defer release()
	defer br.pool.Stop()
	defer br.flushTelemetry()
	br.purgeStaleInputs()
	done := ctx.Done()
	for k := 0; k < ticks; k++ {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		if err := br.sweep(uint64(k)); err != nil {
			return fmt.Errorf("compass: rank %d batch sweep %d: %w", br.rank, k, err)
		}
	}
	return nil
}

// purgeStaleInputs drops, per lane, model inputs scheduled strictly
// before the lane's start tick — the batched analogue of the solo
// path's resume hygiene, counted identically into DroppedInputs.
func (br *batchRank) purgeStaleInputs() {
	for s := range br.inputsByTick {
		start := br.laneStart[s]
		if start == 0 {
			continue
		}
		for tick, ins := range br.inputsByTick[s] {
			if tick < start {
				br.laneStale[s] += uint64(len(ins))
				delete(br.inputsByTick[s], tick)
			}
		}
	}
}

// sweep executes sweep k: every lane's tick laneStart[lane]+k — inputs,
// then the core-outer/lane-inner compute pass, then one shared Network
// phase for the whole group.
func (br *batchRank) sweep(k uint64) error {
	// Inputs, per lane at the lane's own tick: model-scheduled first,
	// then the lane's streamed source, mirroring the solo tick exactly.
	for s := 0; s < br.nLanes; s++ {
		lt := br.laneStart[s] + k
		for _, in := range br.inputsByTick[s][lt] {
			br.localCore[in.Core].Lane(s).InjectRaw(int(in.Axon), lt)
		}
		delete(br.inputsByTick[s], lt)
		if src := br.lanes[s].InputSource; src != nil {
			for _, in := range src.SpikesFor(lt) {
				if int(in.Core) >= len(br.localCore) {
					if br.rank == 0 {
						br.laneStreamDrops[s]++
					}
					continue
				}
				if cl := br.localCore[in.Core]; cl != nil {
					cl.Lane(s).InjectRaw(int(in.Axon), lt)
				}
			}
		}
	}

	// Compute phase: cores outer, lanes inner. Each thread walks its
	// core groups once; within a group the lanes' potentials, rings, and
	// PRNG streams are contiguous, so the shared crossbar planes and
	// kernel stay hot across all sessions of the core. Per-lane
	// quiescence and Synapse-skip decisions are identical to solo runs
	// (they depend only on the lane's own state and the shared config).
	counting := false
	for _, lane := range br.lanes {
		if lane.Telemetry != nil {
			counting = true
			break
		}
	}
	br.pool.Run(func(tid int) {
		for _, cl := range br.threadCores[tid] {
			for s := 0; s < br.nLanes; s++ {
				core := cl.Lane(s)
				lt := br.laneStart[s] + k
				if core.QuiescentAt(lt) {
					br.threadQuiescent[tid][s]++
					continue
				}
				if core.HasPendingSpikes(lt) {
					core.SynapsePhase(lt)
					if counting {
						if core.KernelActive() {
							br.threadKernelHits[tid][s]++
						} else {
							br.threadScalarHits[tid][s]++
						}
					}
				} else {
					br.threadSynSkips[tid][s]++
				}
				lane := uint8(s)
				core.NeuronPhase(func(sp truenorth.Spike) {
					// Trace and sink events record the neuron's own
					// target (Lane 0) so recorded output is
					// byte-identical to a solo run; only the routed copy
					// carries the lane tag.
					if br.traces != nil {
						br.traces[s][tid] = append(br.traces[s][tid],
							truenorth.SpikeEvent{FireTick: lt, Target: sp.Target})
					}
					if br.threadSink != nil && br.lanes[s].OutputSink != nil {
						br.threadSink[s][tid] = append(br.threadSink[s][tid],
							truenorth.SpikeEvent{FireTick: lt, Target: sp.Target})
					}
					tgt := sp.Target
					tgt.Lane = lane
					dest := br.placement[tgt.Core]
					switch {
					case dest == br.rank:
						br.threadLocal[tid] = append(br.threadLocal[tid], tgt)
						br.threadLaneLocal[tid][s]++
					case br.raw:
						br.threadRemoteRaw[tid][dest] = append(br.threadRemoteRaw[tid][dest], tgt)
						br.threadDestLanes[tid][dest] |= 1 << lane
						br.threadLaneRemote[tid][s]++
					default:
						br.threadRemote[tid][dest] = appendSpike(br.threadRemote[tid][dest], tgt)
						br.threadDestLanes[tid][dest] |= 1 << lane
						br.threadLaneRemote[tid][s]++
					}
				})
			}
		}
	})

	// Live egress, per lane: merge the lane's per-thread events in tid
	// order (the same order a solo rank emits) and hand them to the
	// lane's sink at the lane's own tick.
	if br.threadSink != nil {
		for s := 0; s < br.nLanes; s++ {
			sink := br.lanes[s].OutputSink
			if sink == nil {
				continue
			}
			batch := br.sinkBatch[:0]
			for tid := range br.threadSink[s] {
				batch = append(batch, br.threadSink[s][tid]...)
				br.threadSink[s][tid] = br.threadSink[s][tid][:0]
			}
			br.sinkBatch = batch
			if len(batch) > 0 {
				sink.Emit(br.rank, br.laneStart[s]+k, batch)
			}
		}
	}

	// Thread-aggregate remote buffers into one message per destination
	// for the WHOLE group — the amortization the batch exists for — and
	// attribute messages per lane from the destination lane masks.
	for dest := 0; dest < br.ranks; dest++ {
		br.out.Counts[dest] = 0
		var n int
		if br.raw {
			buf := br.out.Targets[dest][:0]
			for tid := 0; tid < br.threads; tid++ {
				buf = append(buf, br.threadRemoteRaw[tid][dest]...)
				br.threadRemoteRaw[tid][dest] = br.threadRemoteRaw[tid][dest][:0]
			}
			br.out.Targets[dest] = buf
			n = len(buf)
		} else {
			buf := br.out.Encoded[dest][:0]
			for tid := 0; tid < br.threads; tid++ {
				buf = append(buf, br.threadRemote[tid][dest]...)
				br.threadRemote[tid][dest] = br.threadRemote[tid][dest][:0]
			}
			br.out.Encoded[dest] = buf
			n = len(buf) / spikeRecordBytes
		}
		var mask uint64
		for tid := 0; tid < br.threads; tid++ {
			mask |= br.threadDestLanes[tid][dest]
			br.threadDestLanes[tid][dest] = 0
		}
		if n > 0 {
			br.out.Counts[dest] = 1
			for m := mask; m != 0; m &= m - 1 {
				s := bits.TrailingZeros64(m)
				br.laneMsgs[s]++
				br.lanePeers[s][dest] = true
			}
		}
	}
	for tid := 0; tid < br.threads; tid++ {
		for s := 0; s < br.nLanes; s++ {
			br.laneLocal[s] += br.threadLaneLocal[tid][s]
			br.laneRemote[s] += br.threadLaneRemote[tid][s]
			br.threadLaneLocal[tid][s] = 0
			br.threadLaneRemote[tid][s] = 0
		}
	}

	// One Network phase for every lane: the transports exchange the
	// group's aggregated spikes keyed by the shared sweep index; lane
	// resolution happens at delivery.
	if err := br.ep.Exchange(k, &br.out, br); err != nil {
		return err
	}
	for tid := range br.threadLocal {
		br.threadLocal[tid] = br.threadLocal[tid][:0]
	}
	return nil
}

// flushTelemetry publishes every lane's cumulative counters to its
// session-labeled bundle, once, at end of run — the lane attribution
// that keeps /metrics per-session while the group shares one loop.
func (br *batchRank) flushTelemetry() {
	var kernelCores, scalarCores int
	for _, cl := range br.cores {
		if cl.Lane(0).KernelActive() {
			kernelCores++
		} else {
			scalarCores++
		}
	}
	for s, lane := range br.lanes {
		tel := lane.Telemetry
		if tel == nil {
			continue
		}
		tel.setCorePaths(br.rank, kernelCores, scalarCores)
		var kh, sh, sk, q uint64
		for tid := 0; tid < br.threads; tid++ {
			kh += br.threadKernelHits[tid][s]
			sh += br.threadScalarHits[tid][s]
			sk += br.threadSynSkips[tid][s]
			q += br.threadQuiescent[tid][s]
		}
		dropped := br.laneStale[s] + br.laneStreamDrops[s]
		var firings uint64
		for _, cl := range br.cores {
			_, _, f := cl.Lane(s).Stats()
			firings += f
			dropped += cl.Lane(s).DroppedInjects()
		}
		tel.computeCounts(br.rank, kh, sh, sk, q, dropped)
		tel.tickCounts(br.rank, br.laneMsgs[s], br.laneRemote[s]*truenorth.SpikeWireBytes,
			br.laneLocal[s], br.laneRemote[s], firings)
	}
}

// Threads returns the rank's worker thread count (Delivery surface).
func (br *batchRank) Threads() int { return br.threads }

// Parallel runs fn on every thread ID concurrently and waits.
func (br *batchRank) Parallel(fn func(tid int)) { br.pool.Run(fn) }

// DeliverLocal delivers the local spike buffers of source threads whose
// index ≡ part (mod parts), resolving each spike to its lane.
func (br *batchRank) DeliverLocal(t uint64, part, parts int) error {
	for tid := part; tid < br.threads; tid += parts {
		for _, target := range br.threadLocal[tid] {
			if err := br.deliverLane(t, target); err != nil {
				return err
			}
		}
	}
	return nil
}

// DeliverEncoded delivers every spike in a wire-encoded payload.
func (br *batchRank) DeliverEncoded(t uint64, data []byte) error {
	return decodeSpikes(data, func(target truenorth.SpikeTarget) error {
		return br.deliverLane(t, target)
	})
}

// DeliverTargets delivers a raw spike list.
func (br *batchRank) DeliverTargets(t uint64, targets []truenorth.SpikeTarget) error {
	for _, target := range targets {
		if err := br.deliverLane(t, target); err != nil {
			return err
		}
	}
	return nil
}

// deliverLane schedules one spike on its lane's core at the lane's own
// tick: the transports carry the shared sweep index t, and the lane tag
// inside the record selects which session's delay ring receives the
// spike.
func (br *batchRank) deliverLane(t uint64, target truenorth.SpikeTarget) error {
	if int(target.Core) >= len(br.localCore) {
		return fmt.Errorf("compass: received spike for core %d outside model of %d cores", target.Core, len(br.localCore))
	}
	cl := br.localCore[target.Core]
	if cl == nil {
		return fmt.Errorf("compass: received spike for core %d not owned by rank %d", target.Core, br.rank)
	}
	if int(target.Lane) >= br.nLanes {
		return fmt.Errorf("compass: received spike for lane %d of a %d-lane batch", target.Lane, br.nLanes)
	}
	lt := br.laneStart[target.Lane] + t
	return cl.Lane(int(target.Lane)).ScheduleSpikeShared(int(target.Axon), lt+uint64(target.Delay), lt)
}

// laneRankStats summarizes one lane on this rank after the run, with
// field-for-field solo semantics.
func (br *batchRank) laneRankStats(s int) RankStats {
	rs := RankStats{
		Rank:         br.rank,
		CoresOwned:   len(br.cores),
		LocalSpikes:  br.laneLocal[s],
		RemoteSpikes: br.laneRemote[s],
		MessagesSent: br.laneMsgs[s],
	}
	for _, p := range br.lanePeers[s] {
		if p {
			rs.PeerRanks++
		}
	}
	rs.DroppedInputs = br.laneStale[s] + br.laneStreamDrops[s]
	enabled := uint64(0)
	for _, cl := range br.cores {
		core := cl.Lane(s)
		a, syn, f := core.Stats()
		rs.AxonEvents += a
		rs.SynapticEvents += syn
		rs.Firings += f
		rs.DroppedInputs += core.DroppedInjects()
		cfg := cl.Config()
		for j := range cfg.Neurons {
			if cfg.Neurons[j].Enabled {
				enabled++
			}
		}
	}
	for tid := 0; tid < br.threads; tid++ {
		rs.QuiescentCoreTicks += br.threadQuiescent[tid][s]
		rs.SynapseSkips += br.threadSynSkips[tid][s]
	}
	rs.NeuronUpdates = enabled * uint64(br.ticksRun)
	return rs
}

// gatherBatch merges per-rank results into one RunStats per lane.
func gatherBatch(img *truenorth.Image, cfg Config, ticks int, ranks []*batchRank) *BatchResult {
	nLanes := ranks[0].nLanes
	res := &BatchResult{Lanes: make([]*RunStats, nLanes)}
	for s := 0; s < nLanes; s++ {
		out := &RunStats{
			Ticks:    ticks,
			Ranks:    cfg.Ranks,
			Threads:  cfg.ThreadsPerRank,
			NumCores: img.NumCores(),
		}
		for _, br := range ranks {
			rs := br.laneRankStats(s)
			out.PerRank = append(out.PerRank, rs)
			out.TotalSpikes += rs.Firings
			out.LocalSpikes += rs.LocalSpikes
			out.RemoteSpikes += rs.RemoteSpikes
			out.Messages += rs.MessagesSent
			out.AxonEvents += rs.AxonEvents
			out.SynapticEvents += rs.SynapticEvents
			out.NeuronUpdates += rs.NeuronUpdates
			out.QuiescentCoreTicks += rs.QuiescentCoreTicks
			out.SynapseSkips += rs.SynapseSkips
			out.DroppedInputs += rs.DroppedInputs
			if cfg.RecordTrace {
				for _, tr := range br.traces[s] {
					out.Trace = append(out.Trace, tr...)
				}
			}
		}
		out.WireBytes = out.RemoteSpikes * truenorth.SpikeWireBytes
		if cfg.RecordTrace {
			truenorth.SortSpikeEvents(out.Trace)
		}
		if cfg.ReturnState {
			cp := &truenorth.Checkpoint{
				Tick:   ranks[0].laneStart[s] + uint64(ticks),
				States: make([]truenorth.CoreState, img.NumCores()),
			}
			for _, br := range ranks {
				for _, cl := range br.cores {
					cp.States[cl.ID()] = cl.Lane(s).State()
				}
			}
			out.Final = cp
		}
		res.Lanes[s] = out
	}
	return res
}
