package server

import (
	"bytes"
	"io"
	"testing"
	"time"

	sim "github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/modelcache"
	"github.com/cognitive-sim/compass/internal/spikeio"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// waitTicks polls until the session has simulated at least n ticks.
func waitTicks(t *testing.T, s *Session, n uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for s.Info().TicksDone < n {
		if time.Now().After(deadline) {
			t.Fatalf("session %s stuck at %d of %d ticks", s.ID, s.Info().TicksDone, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchedSessionsBitIdentical is the serving-side determinism
// table: same-model sessions share one batched tick loop (same batch
// group in Info), join mid-run at chunk boundaries, pause and resume
// individually — and every one of them drains to a final checkpoint
// bit-identical to an uninterrupted solo run, on every transport.
func TestBatchedSessionsBitIdentical(t *testing.T) {
	model := testModel(6, 77)
	img, err := truenorth.NewImage(model)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range sim.Transports() {
		t.Run(tr.String(), func(t *testing.T) {
			srv := startTestServer(t, ManagerOptions{
				CapacitySecondsPerTick: 1e9,
				ChunkTicks:             10,
			})
			mgr := srv.Manager()
			cfg := sim.Config{Ranks: 2, ThreadsPerRank: 2, Transport: tr}

			a, err := mgr.Create(CreateParams{Name: "a", Image: img, Cfg: cfg, Ticks: 60})
			if err != nil {
				t.Fatal(err)
			}
			c, err := mgr.Create(CreateParams{Name: "c", Image: img, Cfg: cfg, Ticks: 60})
			if err != nil {
				t.Fatal(err)
			}
			// b joins mid-run: a and c are already several chunks in when
			// its first window runs.
			waitTicks(t, a, 10)
			b, err := mgr.Create(CreateParams{Name: "b", Image: img, Cfg: cfg, Ticks: 45})
			if err != nil {
				t.Fatal(err)
			}
			// c pauses at a chunk boundary mid-run, then resumes: the
			// group keeps advancing a and b while c is parked.
			if err := c.Pause(); err != nil {
				t.Fatal(err)
			}
			c.WaitState(30*time.Second, func(st State) bool { return st == StatePaused || st.Terminal() })
			waitTicks(t, b, 10)
			if err := c.Resume(); err != nil {
				t.Fatal(err)
			}

			for _, s := range []*Session{a, b, c} {
				if !s.WaitState(60*time.Second, func(st State) bool { return st == StateDone }) {
					t.Fatalf("session %s state %s, want done (err %v)", s.Name, s.State(), s.Err())
				}
			}
			ga, gb, gc := a.Info().BatchGroup, b.Info().BatchGroup, c.Info().BatchGroup
			if ga == "" || ga != gb || ga != gc {
				t.Fatalf("sessions not grouped: a=%q b=%q c=%q", ga, gb, gc)
			}

			want60 := ckptBytes(t, refFinal(t, model, cfg, 60))
			want45 := ckptBytes(t, refFinal(t, model, cfg, 45))
			if !bytes.Equal(ckptBytes(t, a.Checkpoint()), want60) {
				t.Error("session a: batched checkpoint differs from solo run")
			}
			if !bytes.Equal(ckptBytes(t, b.Checkpoint()), want45) {
				t.Error("session b (mid-run join): batched checkpoint differs from solo run")
			}
			if !bytes.Equal(ckptBytes(t, c.Checkpoint()), want60) {
				t.Error("session c (pause/resume): batched checkpoint differs from solo run")
			}

			// The batch instruments saw the windows: occupancy is back to
			// zero and the sweep histogram recorded observations.
			snap := mgr.MetricsSnapshot()
			if v := snap.Value("compassd_batch_occupancy"); v != 0 {
				t.Errorf("batch occupancy %v after all sessions done, want 0", v)
			}
			var sweeps uint64
			for _, mtr := range snap.Metrics {
				if mtr.Name == "compassd_batch_sweep_seconds" {
					sweeps += mtr.Count
				}
			}
			if sweeps == 0 {
				t.Error("batch sweep histogram recorded no windows")
			}
		})
	}
}

// TestBatchedStreamInjection: two sessions of one image share a batched
// loop while one of them receives its entire input live over the CSTR
// stream plane and both broadcast egress — and both match their solo
// references exactly. This is TestStreamInjectionEquivalence with the
// lane actually batched alongside a sibling session.
func TestBatchedStreamInjection(t *testing.T) {
	srv := startTestServer(t, ManagerOptions{
		CapacitySecondsPerTick: 1e9,
		ChunkTicks:             10,
	})
	mgr := srv.Manager()

	const ticks = 60
	ref := testModel(4, 11)
	streamed := &truenorth.Model{Seed: ref.Seed, Cores: ref.Cores}
	img, err := truenorth.NewImage(streamed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Ranks: 2, ThreadsPerRank: 2, Transport: sim.TransportShmem}

	target, err := mgr.Create(CreateParams{
		Name: "target", Image: img, Cfg: cfg, Ticks: ticks, StartPaused: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := mgr.Create(CreateParams{
		Name: "sibling", Image: img, Cfg: cfg, Ticks: ticks,
	})
	if err != nil {
		t.Fatal(err)
	}
	if target.Info().BatchGroup == "" || target.Info().BatchGroup != sibling.Info().BatchGroup {
		t.Fatalf("target %q and sibling %q not in one batch group",
			target.Info().BatchGroup, sibling.Info().BatchGroup)
	}

	c, err := DialStream(srv.StreamAddr(), target.ID, StreamFlagInject|StreamFlagSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	inject := make([]spikeio.Event, len(ref.Inputs))
	for i, in := range ref.Inputs {
		inject[i] = spikeio.Event{Tick: in.Tick, Core: in.Core, Axon: in.Axon}
	}
	if err := c.Send(inject); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for target.Info().Injected != uint64(len(inject)) {
		if time.Now().After(deadline) {
			t.Fatalf("injected %d of %d spikes", target.Info().Injected, len(inject))
		}
		time.Sleep(time.Millisecond)
	}
	if err := target.Resume(); err != nil {
		t.Fatal(err)
	}
	var received []spikeio.Event
	for {
		frame, err := c.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		received = append(received, frame...)
	}
	for _, s := range []*Session{target, sibling} {
		if !s.WaitState(60*time.Second, func(st State) bool { return st == StateDone }) {
			t.Fatalf("%s state %s, want done (err %v)", s.Name, s.State(), s.Err())
		}
	}
	if drops := target.Info().StreamDrops; drops != 0 {
		t.Fatalf("stream dropped %d records; equivalence check needs a lossless run", drops)
	}

	refCfg := cfg
	refCfg.RecordTrace = true
	refCfg.ReturnState = true
	stats, err := sim.Run(ref, refCfg, ticks)
	if err != nil {
		t.Fatal(err)
	}
	want := traceToWire(stats.Trace)
	sortWire(want)
	sortWire(received)
	if len(received) != len(want) {
		t.Fatalf("streamed lane fired %d spikes, solo reference fired %d", len(received), len(want))
	}
	for i := range want {
		if received[i] != want[i] {
			t.Fatalf("event %d: streamed %+v, solo %+v", i, received[i], want[i])
		}
	}
	if !bytes.Equal(ckptBytes(t, target.Checkpoint()), ckptBytes(t, stats.Final)) {
		t.Fatal("streamed lane's final checkpoint differs from its solo reference")
	}
	if !bytes.Equal(ckptBytes(t, sibling.Checkpoint()), ckptBytes(t, refFinal(t, streamed, cfg, ticks))) {
		t.Fatal("sibling lane's final checkpoint differs from its solo reference")
	}
}

// TestDisableBatch: with batching off, same-image sessions run their
// own loops (no batch group in Info) and still finish correctly.
func TestDisableBatch(t *testing.T) {
	model := testModel(4, 9)
	img, err := truenorth.NewImage(model)
	if err != nil {
		t.Fatal(err)
	}
	srv := startTestServer(t, ManagerOptions{
		CapacitySecondsPerTick: 1e9,
		ChunkTicks:             10,
		DisableBatch:           true,
	})
	mgr := srv.Manager()
	cfg := sim.Config{Ranks: 1, ThreadsPerRank: 1, Transport: sim.TransportShmem}
	a, err := mgr.Create(CreateParams{Image: img, Cfg: cfg, Ticks: 30})
	if err != nil {
		t.Fatal(err)
	}
	b, err := mgr.Create(CreateParams{Image: img, Cfg: cfg, Ticks: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Session{a, b} {
		if !s.WaitState(60*time.Second, func(st State) bool { return st == StateDone }) {
			t.Fatalf("state %s, want done (err %v)", s.State(), s.Err())
		}
		if g := s.Info().BatchGroup; g != "" {
			t.Fatalf("batch group %q with batching disabled", g)
		}
	}
	if !bytes.Equal(ckptBytes(t, a.Checkpoint()), ckptBytes(t, refFinal(t, model, cfg, 30))) {
		t.Fatal("unbatched checkpoint differs from reference")
	}
}

// TestImagePinnedWhileResident: the manager pins a session's model
// cache entry for as long as any running session holds the image, and
// releases the pin when the last one exits.
func TestImagePinnedWhileResident(t *testing.T) {
	srv := startTestServer(t, ManagerOptions{CapacitySecondsPerTick: 1e9, ChunkTicks: 10})
	mgr := srv.Manager()
	cache := mgr.ModelCache()
	model := testModel(4, 5)
	e, _, err := cache.GetOrBuild("pinned-model", func() (*modelcache.Entry, error) {
		img, err := truenorth.NewImage(model)
		if err != nil {
			return nil, err
		}
		return &modelcache.Entry{Image: img}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Ranks: 1, ThreadsPerRank: 1, Transport: sim.TransportShmem}
	a, err := mgr.Create(CreateParams{Image: e.Image, CacheKey: e.Key, Cfg: cfg, Ticks: 30, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := mgr.Create(CreateParams{Image: e.Image, CacheKey: e.Key, Cfg: cfg, Ticks: 30})
	if err != nil {
		t.Fatal(err)
	}
	if n := cache.Pinned(); n != 1 {
		t.Fatalf("%d pinned entries with two sessions sharing one image, want 1", n)
	}
	if err := a.Resume(); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Session{a, b} {
		if !s.WaitState(60*time.Second, func(st State) bool { return st == StateDone }) {
			t.Fatalf("state %s, want done (err %v)", s.State(), s.Err())
		}
		s.Wait()
	}
	if n := cache.Pinned(); n != 0 {
		t.Fatalf("%d pinned entries after all sessions exited, want 0", n)
	}
}
