// Package compass is a Go reproduction of Compass, IBM's scalable
// simulator for the TrueNorth cognitive-computing architecture
// (Preissl et al., "Compass: A scalable simulator for an architecture
// for Cognitive Computing", SC 2012).
//
// The package is a facade over the implementation packages:
//
//   - the TrueNorth architecture model (256-axon × 256-neuron cores with
//     binary synaptic crossbars, axonal delay buffers, and digital
//     integrate-leak-and-fire neurons),
//   - the Compass parallel simulator (ranks × threads with the paper's
//     Synapse/Neuron/Network phases over simulated MPI or PGAS
//     transports),
//   - the Parallel Compass Compiler (CoreObject descriptions expanded to
//     explicit models with IPFP-balanced, negotiated wiring),
//   - the CoCoMac macaque network generator, the corelet library of
//     functional primitives, and the calibrated Blue Gene performance
//     model used to regenerate the paper's figures.
//
// Quick start:
//
//	net := compass.GenerateCoCoMac(2012)
//	spec, _ := net.ToSpec(512, 200)
//	res, _ := compass.Compile(spec, 8)
//	stats, _ := compass.Run(res.Model, compass.Config{
//	    Ranks: res.Ranks, ThreadsPerRank: 2, RankOf: res.RankOf,
//	}, 200)
//	fmt.Println(stats.TotalSpikes, stats.AvgFiringRateHz())
package compass

import (
	"context"
	"io"

	"github.com/cognitive-sim/compass/internal/cocomac"
	sim "github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/corelets"
	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/faults"
	"github.com/cognitive-sim/compass/internal/pcc"
	"github.com/cognitive-sim/compass/internal/power"
	"github.com/cognitive-sim/compass/internal/spikeio"
	"github.com/cognitive-sim/compass/internal/telemetry"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// Architecture types (TrueNorth cores, neurons, models).
type (
	// CoreID identifies a core globally within a model.
	CoreID = truenorth.CoreID
	// CoreConfig is the pure-data configuration of one neurosynaptic core.
	CoreConfig = truenorth.CoreConfig
	// NeuronParams configures one integrate-leak-and-fire neuron.
	NeuronParams = truenorth.NeuronParams
	// SpikeTarget addresses a neuron's output axon.
	SpikeTarget = truenorth.SpikeTarget
	// Spike is a spike in flight on the inter-core network.
	Spike = truenorth.Spike
	// SpikeEvent is one delivered spike in a simulation trace.
	SpikeEvent = truenorth.SpikeEvent
	// InputSpike is an external stimulus spike.
	InputSpike = truenorth.InputSpike
	// Model is a fully instantiated network of TrueNorth cores.
	Model = truenorth.Model
	// Image is the immutable, content-addressed frozen form of a Model:
	// validated once, Synapse kernels prebuilt, shareable copy-on-write
	// by any number of concurrent simulation sessions.
	Image = truenorth.Image
	// SerialSim is the single-threaded reference simulator.
	SerialSim = truenorth.SerialSim
	// Checkpoint is a decomposition-portable simulation state snapshot.
	Checkpoint = truenorth.Checkpoint
	// CoreState is the dynamic state of one core at a tick boundary.
	CoreState = truenorth.CoreState
)

// Architecture constants.
const (
	// CoreSize is the number of axons and neurons per core (256).
	CoreSize = truenorth.CoreSize
	// NumAxonTypes is the number of axon types (4).
	NumAxonTypes = truenorth.NumAxonTypes
	// MaxDelay is the largest axonal delay in ticks (15).
	MaxDelay = truenorth.MaxDelay
	// SpikeWireBytes is the modelled wire size of one spike (20 B, §VI-B).
	SpikeWireBytes = truenorth.SpikeWireBytes
)

// NewSerialSim builds the serial reference simulator for a model.
func NewSerialSim(m *Model) (*SerialSim, error) { return truenorth.NewSerialSim(m) }

// NewImage validates and freezes a model into an immutable image. The
// image shares the model's core configurations (do not mutate them
// afterwards) and carries everything per-session runtime state does
// not: connectivity, weights, delays, neuron parameters, and prebuilt
// Synapse kernels.
func NewImage(m *Model) (*Image, error) { return truenorth.NewImage(m) }

// Parallel simulator types.
type (
	// Config describes a parallel simulation run (ranks, threads,
	// transport, placement).
	Config = sim.Config
	// Transport selects the Network-phase backend (MPI, PGAS, or shmem).
	Transport = sim.Transport
	// RunStats summarizes a parallel run.
	RunStats = sim.RunStats
	// TickStats aggregates one tick.
	TickStats = sim.TickStats
	// RankStats aggregates one rank.
	RankStats = sim.RankStats
	// PhaseSeconds is measured wall-clock per main-loop phase.
	PhaseSeconds = sim.PhaseSeconds
	// Imbalance summarizes per-rank load imbalance as max/mean ratios.
	Imbalance = sim.Imbalance
	// Telemetry is a run-scoped instrument bundle: sharded metrics plus a
	// per-phase span tracer. Attach one via Config.Telemetry, then scrape
	// Registry() (Prometheus text or JSON snapshot) and Tracer() (Chrome
	// trace-event JSON, Perfetto-openable) after the run.
	Telemetry = sim.Telemetry
	// MetricsSnapshot is a merged point-in-time view of a telemetry
	// registry.
	MetricsSnapshot = telemetry.Snapshot
	// Metric is one merged series in a metrics snapshot.
	Metric = telemetry.Metric
	// MetricLabel is one name/value dimension of a metric series.
	MetricLabel = telemetry.Label
	// InputSource streams external input spikes into a running simulation
	// at tick boundaries (see Config.InputSource).
	InputSource = sim.InputSource
	// OutputSink observes fired spikes live, per rank and per tick (see
	// Config.OutputSink).
	OutputSink = sim.OutputSink
	// BatchLane is one session's per-lane wiring in a batched run: its
	// start checkpoint, live input source, output sink, and telemetry.
	BatchLane = sim.BatchLane
	// BatchResult is the outcome of a batched run: one RunStats per lane
	// plus the mean wall-clock per shared sweep.
	BatchResult = sim.BatchResult
	// ReshapePlan describes the core→rank partition a paused run should
	// resume on (see Config.Reshape); internal/reshape computes
	// telemetry-driven plans.
	ReshapePlan = sim.ReshapePlan
)

// NewTelemetry builds a telemetry bundle sharded for a run with the
// given rank count. The same bundle must not be shared by concurrent
// runs; its per-rank metric shards would interleave.
func NewTelemetry(ranks int) *Telemetry { return sim.NewTelemetry(ranks) }

// NewTelemetryWithLabels builds a telemetry bundle whose every series
// carries the given base labels — the server labels each session's
// bundle with session="<id>" so merged scrapes stay one valid
// Prometheus exposition.
func NewTelemetryWithLabels(ranks int, base ...MetricLabel) *Telemetry {
	return sim.NewTelemetryWithLabels(ranks, base...)
}

// Fault injection types (see DESIGN.md §5d). Attach an injector via
// Config.Faults: survivable faults (drop, dup, delay, stall) are
// absorbed with bit-identical spike output, fatal faults (crash, drop
// past the retry budget) fail the run with an error naming the rank and
// tick — never a hang.
type (
	// FaultInjector decides deterministic fault injection for one run.
	FaultInjector = faults.Injector
	// FaultRule arms one fault class at a set of decision points.
	FaultRule = faults.Rule
	// FaultClass is one injectable fault kind.
	FaultClass = faults.Class
	// CrashError is the error an injected rank crash returns.
	CrashError = faults.CrashError
	// FaultSummary is an injector's cumulative activity.
	FaultSummary = faults.Summary
)

// Fault classes and selector wildcard.
const (
	// FaultDrop discards an outgoing message; the sender retries with
	// backoff and fails the rank when the retry budget is exhausted.
	FaultDrop = faults.Drop
	// FaultDuplicate publishes a message twice; the receiver dedups.
	FaultDuplicate = faults.Duplicate
	// FaultDelay holds a message for K delay quanta within its tick.
	FaultDelay = faults.Delay
	// FaultStall sleeps the rank for K delay quanta at Exchange entry.
	FaultStall = faults.Stall
	// FaultCrash fails the rank with an error naming it and the tick.
	FaultCrash = faults.Crash
	// FaultAny matches every rank, tick, or destination in a rule.
	FaultAny = faults.Any
)

// ErrMessageDropped marks a message drop that outlived the sender's
// retry budget (match with errors.Is).
var ErrMessageDropped = faults.ErrDropped

// NewFaultInjector builds an injector from explicit rules. Rule
// selector fields use FaultAny (-1) as the wildcard.
func NewFaultInjector(seed uint64, rules ...FaultRule) (*FaultInjector, error) {
	return faults.New(seed, rules...)
}

// ParseFaults builds an injector from the CLI fault grammar, e.g.
// "drop;dup" or "crash:rank=1,tick=50" (see the README's Fault
// injection section).
func ParseFaults(spec string, seed uint64) (*FaultInjector, error) {
	return faults.Parse(spec, seed)
}

// Transports.
const (
	// TransportMPI is the two-sided implementation with per-destination
	// aggregation and a reduce-scatter per tick (§III).
	TransportMPI = sim.TransportMPI
	// TransportPGAS is the one-sided implementation with direct puts and
	// a single global barrier per tick (§VII).
	TransportPGAS = sim.TransportPGAS
	// TransportShmem is the zero-copy in-process implementation that
	// swaps raw spike buffers directly between rank states.
	TransportShmem = sim.TransportShmem
)

// ParseTransport maps a transport flag name ("mpi", "pgas", "shmem") to
// its constant.
func ParseTransport(s string) (Transport, error) { return sim.ParseTransport(s) }

// Transports lists every built-in transport.
func Transports() []Transport { return sim.Transports() }

// Run simulates ticks ticks of model m under cfg. The spike output is
// identical for every (ranks, threads, transport) decomposition.
func Run(m *Model, cfg Config, ticks int) (*RunStats, error) { return sim.Run(m, cfg, ticks) }

// RunContext is Run with cooperative cancellation: every rank checks
// ctx at its tick boundary, and a cancelled run returns ctx.Err() on
// every transport via the same abort path that contains rank faults —
// no rank is left blocked in the Network phase.
func RunContext(ctx context.Context, m *Model, cfg Config, ticks int) (*RunStats, error) {
	return sim.RunContext(ctx, m, cfg, ticks)
}

// RunImage simulates against an immutable image. Any number of RunImage
// calls may share one image concurrently — per-session state (membrane
// potentials, delay rings, PRNG streams) is instantiated privately, and
// the spike output is bit-identical to Run on the image's model.
func RunImage(img *Image, cfg Config, ticks int) (*RunStats, error) {
	return sim.RunImage(img, cfg, ticks)
}

// RunImageContext is RunImage with cooperative cancellation.
func RunImageContext(ctx context.Context, img *Image, cfg Config, ticks int) (*RunStats, error) {
	return sim.RunImageContext(ctx, img, cfg, ticks)
}

// RunBatch advances several sessions of one image together: a single
// tick loop sweeps every core once per tick with the session lanes
// iterated innermost, so each core's crossbar is loaded once per tick
// no matter how many sessions are resident. Every lane's trace, stats,
// and final checkpoint are bit-identical to a solo RunImage of that
// lane. Lanes may start from different checkpoints (ticks run relative
// to each lane's own start tick).
func RunBatch(img *Image, cfg Config, ticks int, lanes []BatchLane) (*BatchResult, error) {
	return sim.RunBatch(img, cfg, ticks, lanes)
}

// RunBatchContext is RunBatch with cooperative cancellation.
func RunBatchContext(ctx context.Context, img *Image, cfg Config, ticks int, lanes []BatchLane) (*BatchResult, error) {
	return sim.RunBatchContext(ctx, img, cfg, ticks, lanes)
}

// Compiler and description types.
type (
	// NetworkSpec is the compact CoreObject network description.
	NetworkSpec = coreobject.NetworkSpec
	// RegionSpec declares one functional region.
	RegionSpec = coreobject.RegionSpec
	// NeuronProto is a per-region neuron prototype.
	NeuronProto = coreobject.NeuronProto
	// Connection is a directed white-matter edge between regions.
	Connection = coreobject.Connection
	// InputSpec attaches an external stimulus to a region.
	InputSpec = coreobject.InputSpec
	// CompileResult is the output of the Parallel Compass Compiler.
	CompileResult = pcc.Result
)

// Compile expands a CoreObject description into an explicit model using
// the Parallel Compass Compiler on the given number of ranks.
func Compile(spec *NetworkSpec, ranks int) (*CompileResult, error) { return pcc.Compile(spec, ranks) }

// DefaultProto returns a reasonable neuron prototype for new regions.
func DefaultProto() NeuronProto { return coreobject.DefaultProto() }

// DecodeSpec reads and validates a CoreObject JSON document.
func DecodeSpec(r io.Reader) (*NetworkSpec, error) { return coreobject.DecodeSpec(r) }

// WriteModel serializes an explicit model in the binary format.
func WriteModel(w io.Writer, m *Model) error { return coreobject.WriteModel(w, m) }

// ReadModel deserializes an explicit binary model.
func ReadModel(r io.Reader) (*Model, error) { return coreobject.ReadModel(r) }

// WriteCheckpoint serializes a simulation checkpoint.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error { return coreobject.WriteCheckpoint(w, cp) }

// ReadCheckpoint deserializes a simulation checkpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) { return coreobject.ReadCheckpoint(r) }

// NewSerialSimAt builds a serial simulator resuming from a checkpoint.
func NewSerialSimAt(m *Model, cp *Checkpoint) (*SerialSim, error) {
	return truenorth.NewSerialSimAt(m, cp)
}

// CoCoMac macaque network types.
type (
	// CoCoMacNetwork is the generated macaque model network of §V.
	CoCoMacNetwork = cocomac.Network
	// CoCoMacRegion is one region of the reduced network.
	CoCoMacRegion = cocomac.Region
)

// GenerateCoCoMac builds the synthetic CoCoMac-statistics macaque
// network from a seed: 102 reduced regions, 77 reporting connections,
// Paxinos-style volumes, and a balanced connection matrix.
func GenerateCoCoMac(seed uint64) *CoCoMacNetwork { return cocomac.Generate(seed) }

// Corelet library types.
type (
	// CoreletBuilder constructs models from functional primitives.
	CoreletBuilder = corelets.Builder
	// InPort is a corelet's input axon set.
	InPort = corelets.InPort
	// OutPort is a corelet's output neuron set.
	OutPort = corelets.OutPort
	// Probe decodes probed corelet outputs from spike traces.
	Probe = corelets.Probe
	// WTAStage is an n-channel winner-take-all corelet.
	WTAStage = corelets.WTA
)

// NewCoreletBuilder returns an empty corelet builder.
func NewCoreletBuilder(seed uint64) *CoreletBuilder { return corelets.NewBuilder(seed) }

// Spike recording and analysis types.
type (
	// SpikeWriter streams spike records to a writer (CSPK format).
	SpikeWriter = spikeio.Writer
	// RecordedSpike is one recorded spike delivery.
	RecordedSpike = spikeio.Event
)

// NewSpikeWriter opens a spike stream on w.
func NewSpikeWriter(w io.Writer) (*SpikeWriter, error) { return spikeio.NewWriter(w) }

// ReadSpikes parses a recorded spike stream.
func ReadSpikes(r io.Reader) ([]RecordedSpike, error) { return spikeio.ReadAll(r) }

// Power estimation types.
type (
	// PowerProfile holds per-operation hardware energy constants.
	PowerProfile = power.Profile
	// PowerEstimate is an energy/power breakdown for a workload.
	PowerEstimate = power.Estimate
)

// TrueNorthPowerProfile returns the 45 nm neurosynaptic-core energy
// profile derived from the paper's cited hardware.
func TrueNorthPowerProfile() PowerProfile { return power.TrueNorth45nm() }

// EstimatePower estimates TrueNorth hardware power for the workload a
// simulation measured, assuming real-time (1 ms tick) operation.
func EstimatePower(p PowerProfile, stats *RunStats) (PowerEstimate, error) {
	return power.FromStats(p, stats)
}
