package truenorth

import (
	"testing"

	"github.com/cognitive-sim/compass/internal/prng"
)

// imageTestModel builds a small model mixing kernel-eligible
// deterministic cores, stochastic (scalar-path) cores, and passive
// cores, with recurrent wiring and external drive.
func imageTestModel(nCores int, seed uint64) *Model {
	r := prng.New(seed)
	m := &Model{Seed: seed}
	for k := 0; k < nCores; k++ {
		cfg := &CoreConfig{ID: CoreID(k)}
		for a := 0; a < CoreSize; a++ {
			cfg.AxonTypes[a] = uint8(r.Intn(NumAxonTypes))
			for s := 0; s < 6; s++ {
				cfg.SetSynapse(a, r.Intn(CoreSize), true)
			}
		}
		for j := 0; j < CoreSize; j++ {
			p := NeuronParams{
				Weights:   [NumAxonTypes]int16{2, 1, 3, -1},
				Leak:      -1,
				Threshold: int32(3 + r.Intn(6)),
				Reset:     0,
				Floor:     -32,
				Target: SpikeTarget{
					Core:  CoreID(r.Intn(nCores)),
					Axon:  uint16(r.Intn(CoreSize)),
					Delay: uint8(1 + r.Intn(3)),
				},
				Enabled: true,
			}
			if k%3 == 1 {
				// Stochastic cores exercise the scalar path and the PRNG
				// draw-order contract through shared images.
				p.StochasticWeight = [NumAxonTypes]bool{false, true, false, false}
				p.StochasticLeak = true
			}
			if k%3 == 2 {
				// Passive cores exercise the quiescence flags.
				p.Leak = 0
			}
			cfg.Neurons[j] = p
		}
		m.Cores = append(m.Cores, cfg)
	}
	for tick := uint64(0); tick < 20; tick++ {
		for a := 0; a < 48; a++ {
			m.Inputs = append(m.Inputs, InputSpike{
				Tick: tick,
				Core: CoreID(int(tick) % nCores),
				Axon: uint16(r.Intn(CoreSize)),
			})
		}
	}
	return m
}

// runSerial steps a serial sim n ticks and returns its final snapshot.
func runSerial(t *testing.T, s *SerialSim, n int) *Checkpoint {
	t.Helper()
	if err := s.Run(n); err != nil {
		t.Fatal(err)
	}
	return s.Snapshot()
}

// TestImageCoreEquivalence: a core instantiated from an image is
// bit-identical in behaviour to one built privately by NewCore — same
// kernel decision, same dynamics, same final state.
func TestImageCoreEquivalence(t *testing.T) {
	m := imageTestModel(6, 99)
	img, err := NewImage(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Cores {
		private := NewCore(m.Cores[i], m.Seed)
		shared := img.NewCore(i)
		if private.KernelActive() != shared.KernelActive() {
			t.Fatalf("core %d kernel decision differs: private=%v shared=%v",
				i, private.KernelActive(), shared.KernelActive())
		}
		// Drive both with the same spikes for a few ticks.
		for tick := uint64(0); tick < 8; tick++ {
			private.InjectRaw(i%CoreSize, tick)
			shared.InjectRaw(i%CoreSize, tick)
			var a, b []Spike
			private.Tick(tick, func(s Spike) { a = append(a, s) })
			shared.Tick(tick, func(s Spike) { b = append(b, s) })
			if len(a) != len(b) {
				t.Fatalf("core %d tick %d fired %d vs %d", i, tick, len(a), len(b))
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("core %d tick %d spike %d differs", i, tick, k)
				}
			}
		}
		sa, sb := private.State(), shared.State()
		if sa != sb {
			t.Fatalf("core %d final state differs between private and shared instantiation", i)
		}
	}
}

// TestImageSerialEquivalence: full serial runs on private cores vs
// image-instantiated cores produce identical checkpoints.
func TestImageSerialEquivalence(t *testing.T) {
	m := imageTestModel(5, 7)
	img, err := NewImage(m)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSerialSim(m)
	if err != nil {
		t.Fatal(err)
	}
	refCP := runSerial(t, ref, 25)

	// Rebuild a serial sim whose cores come from the image.
	sim2, err := NewSerialSim(img.Model())
	if err != nil {
		t.Fatal(err)
	}
	for i := range img.cores {
		sim2.cores[i] = img.NewCore(i)
	}
	cp2 := runSerial(t, sim2, 25)
	if refCP.Tick != cp2.Tick {
		t.Fatalf("ticks differ: %d vs %d", refCP.Tick, cp2.Tick)
	}
	for i := range refCP.States {
		if refCP.States[i] != cp2.States[i] {
			t.Fatalf("core %d state differs after shared-image run", i)
		}
	}
}

// TestInitialCheckpoint: the image's cheap tick-0 checkpoint equals the
// snapshot of a freshly instantiated simulator.
func TestInitialCheckpoint(t *testing.T) {
	m := imageTestModel(4, 3)
	img, err := NewImage(m)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewSerialSim(m)
	if err != nil {
		t.Fatal(err)
	}
	want := ss.Snapshot()
	got := img.InitialCheckpoint()
	if got.Tick != want.Tick || len(got.States) != len(want.States) {
		t.Fatalf("shape differs: tick %d/%d, states %d/%d", got.Tick, want.Tick, len(got.States), len(want.States))
	}
	for i := range want.States {
		if got.States[i] != want.States[i] {
			t.Fatalf("core %d initial state differs", i)
		}
	}
	if err := img.ValidateCheckpoint(got); err != nil {
		t.Fatal(err)
	}
}

// TestImageHash: the content address is stable, differs across content,
// and ignores nothing that matters.
func TestImageHash(t *testing.T) {
	a1, err := NewImage(imageTestModel(3, 11))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewImage(imageTestModel(3, 11))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Hash() != a2.Hash() {
		t.Fatal("identical models hash differently")
	}
	if a1.Hash() != a1.Hash() {
		t.Fatal("hash is unstable across calls")
	}
	b, err := NewImage(imageTestModel(3, 12))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Hash() == b.Hash() {
		t.Fatal("different models share a hash")
	}
	if len(a1.Hash()) != 64 {
		t.Fatalf("hash %q is not hex sha256", a1.Hash())
	}
}

// TestImageBytes: the immutable half dominates the per-session half,
// which is the whole point of sharing it.
func TestImageBytes(t *testing.T) {
	img, err := NewImage(imageTestModel(4, 5))
	if err != nil {
		t.Fatal(err)
	}
	ib, sb := img.ImageBytes(), img.StateBytes()
	if ib <= 0 || sb <= 0 {
		t.Fatalf("byte accounting returned %d/%d", ib, sb)
	}
	if ib <= sb {
		t.Fatalf("image bytes %d not larger than per-session state bytes %d", ib, sb)
	}
	// The config alone is ~16.5 KB/core; state is ~1.6 KB/core.
	if perCore := sb / int64(img.NumCores()); perCore > 4096 {
		t.Fatalf("per-session state is %d bytes/core; the split is not lightweight", perCore)
	}
}

// TestValidateCheckpointMismatch: shape mismatches are rejected.
func TestValidateCheckpointMismatch(t *testing.T) {
	img, err := NewImage(imageTestModel(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := img.ValidateCheckpoint(&Checkpoint{States: make([]CoreState, 2)}); err == nil {
		t.Fatal("short checkpoint accepted")
	}
	cp := img.InitialCheckpoint()
	cp.States[1].ID = 7
	if err := img.ValidateCheckpoint(cp); err == nil {
		t.Fatal("misnumbered checkpoint accepted")
	}
}

// TestNewImageInvalid: NewImage rejects what Model.Validate rejects.
func TestNewImageInvalid(t *testing.T) {
	m := imageTestModel(2, 1)
	m.Cores[1].ID = 5
	if _, err := NewImage(m); err == nil {
		t.Fatal("invalid model accepted")
	}
}
