package truenorth

import (
	"math"
	"testing"
	"testing/quick"
)

// testNeuron returns an enabled neuron with simple deterministic dynamics:
// weight 1 for every axon type, no leak, threshold th, reset 0.
func testNeuron(th int32, target SpikeTarget) NeuronParams {
	return NeuronParams{
		Weights:   [NumAxonTypes]int16{1, 1, 1, 1},
		Threshold: th,
		Reset:     0,
		Floor:     -1 << 20,
		Target:    target,
		Enabled:   true,
	}
}

func defaultTarget() SpikeTarget { return SpikeTarget{Core: 0, Axon: 0, Delay: 1} }

func TestNeuronParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*NeuronParams)
		ok   bool
	}{
		{"valid", func(p *NeuronParams) {}, true},
		{"disabled ignores everything", func(p *NeuronParams) { p.Enabled = false; p.Threshold = -5 }, true},
		{"zero threshold", func(p *NeuronParams) { p.Threshold = 0 }, false},
		{"negative threshold", func(p *NeuronParams) { p.Threshold = -1 }, false},
		{"floor above reset", func(p *NeuronParams) { p.Floor = 10; p.Reset = 0 }, false},
		{"axon out of range", func(p *NeuronParams) { p.Target.Axon = CoreSize }, false},
		{"zero delay", func(p *NeuronParams) { p.Target.Delay = 0 }, false},
		{"delay too large", func(p *NeuronParams) { p.Target.Delay = MaxDelay + 1 }, false},
		{"max delay ok", func(p *NeuronParams) { p.Target.Delay = MaxDelay }, true},
	}
	for _, tc := range cases {
		p := testNeuron(1, defaultTarget())
		tc.mod(&p)
		err := p.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestCrossbarRoundtrip(t *testing.T) {
	var cfg CoreConfig
	cfg.SetSynapse(3, 200, true)
	cfg.SetSynapse(3, 201, true)
	cfg.SetSynapse(255, 0, true)
	if !cfg.Synapse(3, 200) || !cfg.Synapse(3, 201) || !cfg.Synapse(255, 0) {
		t.Fatal("set bits not readable")
	}
	if cfg.Synapse(3, 202) || cfg.Synapse(4, 200) {
		t.Fatal("unset bits readable")
	}
	cfg.SetSynapse(3, 200, false)
	if cfg.Synapse(3, 200) {
		t.Fatal("cleared bit still set")
	}
	if got := cfg.SynapseCount(); got != 2 {
		t.Fatalf("SynapseCount = %d, want 2", got)
	}
}

func TestQuickCrossbarRoundtrip(t *testing.T) {
	f := func(axonRaw, neuronRaw uint8) bool {
		axon, neuron := int(axonRaw), int(neuronRaw)
		var cfg CoreConfig
		cfg.SetSynapse(axon, neuron, true)
		if !cfg.Synapse(axon, neuron) || cfg.SynapseCount() != 1 {
			return false
		}
		cfg.SetSynapse(axon, neuron, false)
		return !cfg.Synapse(axon, neuron) && cfg.SynapseCount() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoreConfigValidate(t *testing.T) {
	cfg := &CoreConfig{ID: 0}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("empty core invalid: %v", err)
	}
	cfg.AxonTypes[7] = NumAxonTypes
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad axon type accepted")
	}
	cfg.AxonTypes[7] = 0
	cfg.Neurons[9] = testNeuron(0, defaultTarget()) // threshold 0 invalid
	cfg.Neurons[9].Threshold = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad neuron accepted")
	}
}

func TestScheduleSpikeWindow(t *testing.T) {
	cfg := &CoreConfig{ID: 0}
	c := NewCore(cfg, 1)
	if err := c.ScheduleSpike(0, 100, 100); err == nil {
		t.Fatal("same-tick delivery accepted")
	}
	if err := c.ScheduleSpike(0, 99, 100); err == nil {
		t.Fatal("past delivery accepted")
	}
	if err := c.ScheduleSpike(0, 100+MaxDelay+1, 100); err == nil {
		t.Fatal("beyond-window delivery accepted")
	}
	if err := c.ScheduleSpike(-1, 101, 100); err == nil {
		t.Fatal("negative axon accepted")
	}
	if err := c.ScheduleSpike(CoreSize, 101, 100); err == nil {
		t.Fatal("overflow axon accepted")
	}
	if err := c.ScheduleSpike(5, 101, 100); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if !c.PendingSpike(5, 101) {
		t.Fatal("scheduled spike not pending at delivery tick")
	}
	if c.PendingSpike(5, 102) || c.PendingSpike(5, 100) {
		t.Fatal("spike pending at wrong tick")
	}
}

func TestQuickScheduleDeliveryTickExact(t *testing.T) {
	f := func(axonRaw uint8, nowRaw uint32, delayRaw uint8) bool {
		axon := int(axonRaw)
		now := uint64(nowRaw)
		delay := uint64(delayRaw%MaxDelay) + 1
		cfg := &CoreConfig{ID: 0}
		c := NewCore(cfg, 1)
		if err := c.ScheduleSpike(axon, now+delay, now); err != nil {
			return false
		}
		// Pending exactly at now+delay, at no other tick in the window.
		for d := uint64(1); d <= MaxDelay; d++ {
			want := d == delay
			if c.PendingSpike(axon, now+d) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSynapsePhaseIntegratesByAxonType(t *testing.T) {
	cfg := &CoreConfig{ID: 0}
	cfg.AxonTypes[0] = 2 // axon 0 has type 2
	cfg.SetSynapse(0, 10, true)
	cfg.SetSynapse(0, 11, true)
	n := testNeuron(1000, defaultTarget())
	n.Weights = [NumAxonTypes]int16{1, 2, 7, 9}
	cfg.Neurons[10] = n
	cfg.Neurons[11] = n
	cfg.Neurons[12] = n // not connected

	c := NewCore(cfg, 1)
	if err := c.ScheduleSpike(0, 5, 4); err != nil {
		t.Fatal(err)
	}
	c.SynapsePhase(5)
	if got := c.Potential(10); got != 7 {
		t.Fatalf("neuron 10 potential = %d, want 7 (weight for axon type 2)", got)
	}
	if got := c.Potential(11); got != 7 {
		t.Fatalf("neuron 11 potential = %d, want 7", got)
	}
	if got := c.Potential(12); got != 0 {
		t.Fatalf("unconnected neuron potential = %d, want 0", got)
	}
	axonEvents, synEvents, _ := c.Stats()
	if axonEvents != 1 || synEvents != 2 {
		t.Fatalf("stats = (%d axon, %d syn), want (1, 2)", axonEvents, synEvents)
	}
	// The spike must have been consumed: re-running the same slot is a no-op.
	c.SynapsePhase(5)
	if got := c.Potential(10); got != 7 {
		t.Fatalf("spike delivered twice: potential %d", got)
	}
}

func TestSynapsePhaseSkipsDisabledNeurons(t *testing.T) {
	cfg := &CoreConfig{ID: 0}
	cfg.SetSynapse(0, 10, true)
	// Neuron 10 left disabled (zero value).
	c := NewCore(cfg, 1)
	if err := c.ScheduleSpike(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	c.SynapsePhase(1)
	if got := c.Potential(10); got != 0 {
		t.Fatalf("disabled neuron integrated: potential %d", got)
	}
	_, synEvents, _ := c.Stats()
	if synEvents != 0 {
		t.Fatalf("disabled neuron counted %d synaptic events", synEvents)
	}
}

func TestStochasticWeightRateAndSign(t *testing.T) {
	for _, tc := range []struct {
		weight int16
		want   float64
		dir    int32
	}{
		{64, 64.0 / 256, 1},
		{-128, 128.0 / 256, -1},
	} {
		cfg := &CoreConfig{ID: 0}
		cfg.SetSynapse(0, 0, true)
		n := testNeuron(1<<30, defaultTarget())
		n.Weights[0] = tc.weight
		n.StochasticWeight[0] = true
		cfg.Neurons[0] = n
		c := NewCore(cfg, 77)
		const trials = 20000
		for i := 0; i < trials; i++ {
			tick := uint64(i)
			if err := c.ScheduleSpike(0, tick+1, tick); err != nil {
				t.Fatal(err)
			}
			c.SynapsePhase(tick + 1)
		}
		moved := float64(c.Potential(0)) * float64(tc.dir)
		rate := moved / trials
		if math.Abs(rate-tc.want) > 0.02 {
			t.Fatalf("stochastic weight %d: empirical rate %.3f, want %.3f", tc.weight, rate, tc.want)
		}
	}
}

func TestNeuronPhaseLeakFloorThresholdReset(t *testing.T) {
	cfg := &CoreConfig{ID: 0}
	n := testNeuron(10, SpikeTarget{Core: 0, Axon: 3, Delay: 2})
	n.Leak = -4
	n.Floor = -6
	n.Reset = 1
	cfg.Neurons[0] = n
	c := NewCore(cfg, 1)

	// Leak pulls the potential down each tick and clamps at the floor.
	c.NeuronPhase(func(Spike) { t.Fatal("unexpected spike") })
	if got := c.Potential(0); got != -4 {
		t.Fatalf("after one leak potential = %d, want -4", got)
	}
	c.NeuronPhase(func(Spike) { t.Fatal("unexpected spike") })
	if got := c.Potential(0); got != -6 {
		t.Fatalf("floor not applied: potential = %d, want -6", got)
	}

	// Push above threshold; neuron must fire exactly once and reset.
	c.SetPotential(0, 14) // 14 - 4 = 10 >= threshold
	var fired []Spike
	c.NeuronPhase(func(s Spike) { fired = append(fired, s) })
	if len(fired) != 1 {
		t.Fatalf("fired %d times, want 1", len(fired))
	}
	if fired[0].Target != (SpikeTarget{Core: 0, Axon: 3, Delay: 2}) {
		t.Fatalf("spike target = %+v", fired[0].Target)
	}
	if got := c.Potential(0); got != 1 {
		t.Fatalf("potential after reset = %d, want 1", got)
	}
	_, _, firings := c.Stats()
	if firings != 1 {
		t.Fatalf("firings = %d, want 1", firings)
	}
}

func TestStochasticLeakRate(t *testing.T) {
	cfg := &CoreConfig{ID: 0}
	n := testNeuron(1<<30, defaultTarget())
	n.Leak = 128 // +1 with probability 0.5
	n.StochasticLeak = true
	cfg.Neurons[0] = n
	c := NewCore(cfg, 5)
	const ticks = 20000
	for i := 0; i < ticks; i++ {
		c.NeuronPhase(func(Spike) {})
	}
	rate := float64(c.Potential(0)) / ticks
	if math.Abs(rate-0.5) > 0.02 {
		t.Fatalf("stochastic leak empirical rate %.3f, want 0.5", rate)
	}
}

func TestTickPeriodicOscillator(t *testing.T) {
	// A neuron with leak +1 and threshold 5 fires every 5 ticks.
	cfg := &CoreConfig{ID: 0}
	n := testNeuron(5, defaultTarget())
	n.Leak = 1
	cfg.Neurons[0] = n
	c := NewCore(cfg, 1)
	fires := 0
	for t0 := uint64(0); t0 < 50; t0++ {
		c.Tick(t0, func(Spike) { fires++ })
	}
	if fires != 10 {
		t.Fatalf("oscillator fired %d times in 50 ticks, want 10", fires)
	}
}

func TestCoreDeterminismAcrossInstances(t *testing.T) {
	build := func() *Core {
		cfg := &CoreConfig{ID: 42}
		for j := 0; j < CoreSize; j++ {
			n := testNeuron(3, defaultTarget())
			n.Leak = 64
			n.StochasticLeak = true
			cfg.Neurons[j] = n
		}
		return NewCore(cfg, 2024)
	}
	a, b := build(), build()
	for t0 := uint64(0); t0 < 100; t0++ {
		var fa, fb int
		a.Tick(t0, func(Spike) { fa++ })
		b.Tick(t0, func(Spike) { fb++ })
		if fa != fb {
			t.Fatalf("tick %d: instance A fired %d, B fired %d", t0, fa, fb)
		}
	}
	for j := 0; j < CoreSize; j++ {
		if a.Potential(j) != b.Potential(j) {
			t.Fatalf("neuron %d potentials diverged: %d vs %d", j, a.Potential(j), b.Potential(j))
		}
	}
}

func TestCoreStateRoundtrip(t *testing.T) {
	cfg := &CoreConfig{ID: 3}
	for j := 0; j < CoreSize; j++ {
		n := testNeuron(1<<30, defaultTarget())
		n.Leak = 64
		n.StochasticLeak = true
		cfg.Neurons[j] = n
	}
	a := NewCore(cfg, 9)
	for t0 := uint64(0); t0 < 20; t0++ {
		_ = a.ScheduleSpike(int(t0)%CoreSize, t0+3, t0)
		a.Tick(t0, func(Spike) {})
	}
	st := a.State()
	if st.ID != 3 {
		t.Fatalf("state ID %d", st.ID)
	}

	// Continue A, and continue a restored clone B: they must stay in
	// lockstep through stochastic dynamics.
	b := NewCore(cfg, 12345) // different seed; state restore must override
	if err := b.SetState(st); err != nil {
		t.Fatal(err)
	}
	for t0 := uint64(20); t0 < 60; t0++ {
		var fa, fb int
		a.Tick(t0, func(Spike) { fa++ })
		b.Tick(t0, func(Spike) { fb++ })
		if fa != fb {
			t.Fatalf("tick %d: original fired %d, restored %d", t0, fa, fb)
		}
	}
	for j := 0; j < CoreSize; j++ {
		if a.Potential(j) != b.Potential(j) {
			t.Fatalf("neuron %d potentials diverged after restore", j)
		}
	}
}

func TestSetStateWrongCore(t *testing.T) {
	a := NewCore(&CoreConfig{ID: 1}, 1)
	b := NewCore(&CoreConfig{ID: 2}, 1)
	if err := b.SetState(a.State()); err == nil {
		t.Fatal("cross-core state restore accepted")
	}
}

func TestSetStateResetsCounters(t *testing.T) {
	cfg := &CoreConfig{ID: 0}
	cfg.SetSynapse(0, 0, true)
	cfg.Neurons[0] = testNeuron(1, defaultTarget())
	c := NewCore(cfg, 1)
	_ = c.ScheduleSpike(0, 1, 0)
	c.Tick(1, func(Spike) {})
	if _, _, f := c.Stats(); f != 1 {
		t.Fatalf("firings = %d", f)
	}
	if err := c.SetState(c.State()); err != nil {
		t.Fatal(err)
	}
	if a, s, f := c.Stats(); a != 0 || s != 0 || f != 0 {
		t.Fatalf("counters not reset: (%d, %d, %d)", a, s, f)
	}
}

func TestSerialSimAtValidation(t *testing.T) {
	m := chainModel(3, 1)
	sim, err := NewSerialSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(5); err != nil {
		t.Fatal(err)
	}
	cp := sim.Snapshot()
	if cp.Tick != 5 || len(cp.States) != 3 {
		t.Fatalf("snapshot: %+v", cp)
	}
	// Mismatched model.
	other := chainModel(4, 1)
	if _, err := NewSerialSimAt(other, cp); err == nil {
		t.Fatal("checkpoint for wrong model accepted")
	}
	// Valid restore resumes at the right tick.
	resumed, err := NewSerialSimAt(m, cp)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Tick() != 5 {
		t.Fatalf("resumed tick %d", resumed.Tick())
	}
}
