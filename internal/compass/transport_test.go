package compass

import (
	"reflect"
	"testing"

	"github.com/cognitive-sim/compass/internal/truenorth"
)

// aggregates is the transport-independent summary of a run: every
// quantity a backend could plausibly skew. Byte-identical equality of
// this struct across transports is the Transport-interface contract.
type aggregates struct {
	TotalSpikes    uint64
	LocalSpikes    uint64
	RemoteSpikes   uint64
	Messages       uint64
	WireBytes      uint64
	AxonEvents     uint64
	SynapticEvents uint64
	NeuronUpdates  uint64
}

func aggregatesOf(s *RunStats) aggregates {
	return aggregates{
		TotalSpikes:    s.TotalSpikes,
		LocalSpikes:    s.LocalSpikes,
		RemoteSpikes:   s.RemoteSpikes,
		Messages:       s.Messages,
		WireBytes:      s.WireBytes,
		AxonEvents:     s.AxonEvents,
		SynapticEvents: s.SynapticEvents,
		NeuronUpdates:  s.NeuronUpdates,
	}
}

// TestCrossTransportEquivalence runs the same model and seed under every
// transport at several (ranks, threads) decompositions and requires
// byte-identical RunStats aggregates and sorted spike traces. This is
// the acceptance test for the pluggable transport layer: a backend that
// drops, duplicates, or reorders spikes across ticks fails here.
func TestCrossTransportEquivalence(t *testing.T) {
	m := randomModel(8, 0xBEEF)
	const ticks = 40
	serial, serialSpikes := serialTrace(t, m, ticks)
	if serialSpikes == 0 {
		t.Fatal("model silent; test vacuous")
	}

	decomps := []struct {
		ranks, threads int
	}{
		{1, 1},
		{1, 4},
		{2, 1},
		{3, 2},
		{4, 2},
		{8, 3},
	}
	for _, dc := range decomps {
		var ref *RunStats
		var refName string
		for _, tr := range Transports() {
			cfg := Config{
				Ranks:          dc.ranks,
				ThreadsPerRank: dc.threads,
				Transport:      tr,
				RecordTrace:    true,
				RecordPerTick:  true,
			}
			stats, err := Run(m, cfg, ticks)
			if err != nil {
				t.Fatalf("%dr%dt-%s: %v", dc.ranks, dc.threads, tr, err)
			}
			name := tr.String()
			if !reflect.DeepEqual(stats.Trace, serial) {
				t.Errorf("%dr%dt-%s: trace differs from serial reference", dc.ranks, dc.threads, name)
				continue
			}
			if ref == nil {
				ref, refName = stats, name
				continue
			}
			if got, want := aggregatesOf(stats), aggregatesOf(ref); got != want {
				t.Errorf("%dr%dt: %s aggregates %+v != %s aggregates %+v",
					dc.ranks, dc.threads, name, got, refName, want)
			}
			if !reflect.DeepEqual(stats.PerTick, ref.PerTick) {
				t.Errorf("%dr%dt: %s per-tick stats differ from %s", dc.ranks, dc.threads, name, refName)
			}
		}
	}
}

// TestShmemBuffersReusedAcrossTicks drives the shmem swap protocol for
// long enough that every buffer cycles through both epoch parities many
// times, with a fresh MPI run as the oracle. A bug in the zero-copy swap
// (a sender mutating a slice the receiver still reads, or a stale
// segment resurfacing) shows up as a trace or count divergence.
func TestShmemBuffersReusedAcrossTicks(t *testing.T) {
	m := randomModel(6, 0x5EED)
	const ticks = 120
	want, err := Run(m, Config{Ranks: 3, ThreadsPerRank: 2, Transport: TransportMPI, RecordTrace: true}, ticks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(m, Config{Ranks: 3, ThreadsPerRank: 2, Transport: TransportShmem, RecordTrace: true}, ticks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Trace, want.Trace) {
		t.Fatalf("shmem trace diverged after %d ticks of buffer reuse", ticks)
	}
	if aggregatesOf(got) != aggregatesOf(want) {
		t.Fatalf("shmem aggregates %+v, want %+v", aggregatesOf(got), aggregatesOf(want))
	}
}

// TestShmemAbortUnblocksBarrier: when one rank fails mid-tick, the
// shared-memory barrier must release the other ranks with an error
// instead of deadlocking them (the failure mode the pure-PGAS runtime
// documents and cannot avoid).
func TestShmemAbortUnblocksBarrier(t *testing.T) {
	s := newShmemSpace(2)
	done := make(chan error, 1)
	go func() { done <- s.barrier() }()
	s.abort()
	if err := <-done; err == nil {
		t.Fatal("aborted barrier returned nil")
	}
	if err := s.barrier(); err == nil {
		t.Fatal("barrier after abort returned nil")
	}
}

// TestBackendSelection checks the one-time setup switch: each transport
// constant maps to a backend whose name round-trips, and the per-tick
// path never sees the enum again (compile-time: Exchange takes only the
// Endpoint interface).
func TestBackendSelection(t *testing.T) {
	for _, tr := range Transports() {
		b, err := newBackend(tr, nil, nil)
		if err != nil {
			t.Fatalf("newBackend(%v): %v", tr, err)
		}
		if b.Name() != tr.String() {
			t.Errorf("backend name %q for transport %q", b.Name(), tr.String())
		}
	}
	if _, err := newBackend(Transport(42), nil, nil); err == nil {
		t.Fatal("unknown transport got a backend")
	}
	if !(shmemBackend{}).RawSpikes() {
		t.Fatal("shmem must take raw spikes")
	}
	if (mpiBackend{}).RawSpikes() || (pgasBackend{}).RawSpikes() {
		t.Fatal("wire transports must take encoded spikes")
	}
}

// TestOutboxModeAllocation: the rank state allocates only the buffer
// family its transport needs.
func TestOutboxModeAllocation(t *testing.T) {
	m := randomModel(4, 3)
	img, err := truenorth.NewImage(m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ranks: 2, ThreadsPerRank: 1}
	pl := cfg.placement(len(m.Cores))
	enc := newRankState(0, img, cfg, pl, false)
	if enc.out.Encoded == nil || enc.out.Targets != nil || enc.threadRemote == nil || enc.threadRemoteRaw != nil {
		t.Fatal("encoded-mode rank state allocated raw buffers")
	}
	raw := newRankState(0, img, cfg, pl, true)
	if raw.out.Targets == nil || raw.out.Encoded != nil || raw.threadRemoteRaw == nil || raw.threadRemote != nil {
		t.Fatal("raw-mode rank state allocated encoded buffers")
	}
}

// TestDenseCoreIndex: the dense CoreID-keyed slice must resolve exactly
// the owned cores and reject out-of-range or unowned targets.
func TestDenseCoreIndex(t *testing.T) {
	m := randomModel(6, 21)
	img, err := truenorth.NewImage(m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ranks: 3, ThreadsPerRank: 1}
	pl := cfg.placement(len(m.Cores))
	st := newRankState(1, img, cfg, pl, false)
	owned := 0
	for id, core := range st.localCore {
		if core == nil {
			continue
		}
		owned++
		if pl[id] != 1 {
			t.Fatalf("core %d indexed on rank 1 but placed on rank %d", id, pl[id])
		}
		if int(core.ID()) != id {
			t.Fatalf("core %d indexed under id %d", core.ID(), id)
		}
	}
	if owned != len(st.cores) {
		t.Fatalf("dense index holds %d cores, rank owns %d", owned, len(st.cores))
	}
	if err := st.deliverRemote(0, truenorth.SpikeTarget{Core: truenorth.CoreID(len(m.Cores)), Axon: 0, Delay: 1}); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	if err := st.deliverRemote(0, truenorth.SpikeTarget{Core: 0, Axon: 0, Delay: 1}); err == nil {
		t.Fatal("unowned core accepted")
	}
}
