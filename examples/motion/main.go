// Motion: direction-selective motion detection on TrueNorth cores — the
// corelet composition behind the paper's optic-flow and spatio-temporal
// feature extraction applications (§I).
//
// The circuit is a spiking Reichardt detector array over a 1-D strip of
// photoreceptor inputs. For every adjacent pixel pair (i, i+1) there are
// two coincidence (AND) gates:
//
//	rightward: delay(pixel i) AND pixel i+1
//	leftward:  pixel i AND delay(pixel i+1)
//
// A stimulus sweeping rightward at one pixel per Δ ticks makes the
// delayed left-pixel signal coincide with the fresh right-pixel signal,
// so the rightward detectors fire and the leftward ones stay silent —
// and vice versa. Splitters fan each pixel out to its detector pairs,
// and delays ride on the neuron-to-axon connections.
package main

import (
	"fmt"
	"log"

	"github.com/cognitive-sim/compass/internal/corelets"
	"github.com/cognitive-sim/compass/internal/spikecode"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

const (
	pixels = 16
	// sweepDelta is the stimulus speed: one pixel per sweepDelta ticks.
	// The detector delay is matched to it.
	sweepDelta = 3
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildDetector wires the full array and returns the pixel input port
// and probes for the right- and left-selective outputs.
func buildDetector(b *corelets.Builder) (corelets.InPort, *corelets.Probe, *corelets.Probe, error) {
	// Each pixel fans out to 4 branches: (as delayed left input,
	// as fresh right input) × (rightward, leftward detectors).
	pixelIn, pixelOut, err := b.Splitter(pixels, 4)
	if err != nil {
		return nil, nil, nil, err
	}
	branch := func(br, i int) corelets.OutPort {
		return corelets.OutPort{pixelOut[br*pixels+i]}
	}

	pairs := pixels - 1
	rightIn, rightOut, err := b.Gate(pairs, 2, 2) // AND gates
	if err != nil {
		return nil, nil, nil, err
	}
	leftIn, leftOut, err := b.Gate(pairs, 2, 2)
	if err != nil {
		return nil, nil, nil, err
	}
	// Gate g's inputs are port indices 2g (first) and 2g+1 (second).
	for g := 0; g < pairs; g++ {
		// Rightward: pixel g delayed by sweepDelta+1, pixel g+1 fresh.
		if err := b.Connect(branch(0, g), corelets.InPort{rightIn[2*g]}, sweepDelta+1); err != nil {
			return nil, nil, nil, err
		}
		if err := b.Connect(branch(1, g+1), corelets.InPort{rightIn[2*g+1]}, 1); err != nil {
			return nil, nil, nil, err
		}
		// Leftward: pixel g+1 delayed, pixel g fresh.
		if err := b.Connect(branch(2, g+1), corelets.InPort{leftIn[2*g]}, sweepDelta+1); err != nil {
			return nil, nil, nil, err
		}
		if err := b.Connect(branch(3, g), corelets.InPort{leftIn[2*g+1]}, 1); err != nil {
			return nil, nil, nil, err
		}
	}
	rightProbe, err := b.Probe(rightOut)
	if err != nil {
		return nil, nil, nil, err
	}
	leftProbe, err := b.Probe(leftOut)
	if err != nil {
		return nil, nil, nil, err
	}
	return pixelIn, rightProbe, leftProbe, nil
}

// sweep injects a bar sweeping across the strip; dir is +1 (rightward)
// or -1 (leftward). Returns the tick after the sweep finishes.
func sweep(b *corelets.Builder, in corelets.InPort, start uint64, dir int) (uint64, error) {
	pos := 0
	if dir < 0 {
		pos = pixels - 1
	}
	t := start
	for k := 0; k < pixels; k++ {
		if err := b.Stimulate(in, pos, t); err != nil {
			return 0, err
		}
		pos += dir
		t += sweepDelta
	}
	return t + 8, nil
}

func run() error {
	b := corelets.NewBuilder(11)
	in, rightProbe, leftProbe, err := buildDetector(b)
	if err != nil {
		return err
	}

	// One rightward sweep, a gap, then one leftward sweep.
	afterRight, err := sweep(b, in, 0, +1)
	if err != nil {
		return err
	}
	afterLeft, err := sweep(b, in, afterRight, -1)
	if err != nil {
		return err
	}

	m, err := b.Build()
	if err != nil {
		return err
	}
	fmt.Printf("Reichardt array: %d pixels, %d detector pairs on %d TrueNorth cores\n",
		pixels, pixels-1, b.NumCores())

	sim, err := truenorth.NewSerialSim(m)
	if err != nil {
		return err
	}
	// The two detector populations are two output lines of the shared
	// decode helpers: collect line events, then count per sweep window.
	const rightLine, leftLine = 0, 1
	var events []spikecode.LineEvent
	sim.OnSpike = func(tick uint64, s truenorth.Spike) {
		if _, ok := rightProbe.Index(s.Target); ok {
			events = append(events, spikecode.LineEvent{Line: rightLine, Tick: tick})
		}
		if _, ok := leftProbe.Index(s.Target); ok {
			events = append(events, spikecode.LineEvent{Line: leftLine, Tick: tick})
		}
	}
	if err := sim.Run(int(afterLeft) + 8); err != nil {
		return err
	}

	during := spikecode.CountWindows(events, 2, []spikecode.Window{
		{Start: 0, End: afterRight},
		{Start: afterRight, End: afterLeft + 8},
	})
	fmt.Printf("\nrightward sweep: %2d rightward detections, %2d leftward\n", during[0][rightLine], during[0][leftLine])
	fmt.Printf("leftward  sweep: %2d rightward detections, %2d leftward\n", during[1][rightLine], during[1][leftLine])

	if spikecode.Argmax(during[0]) != rightLine {
		return fmt.Errorf("rightward sweep not detected as rightward")
	}
	if spikecode.Argmax(during[1]) != leftLine {
		return fmt.Errorf("leftward sweep not detected as leftward")
	}
	fmt.Println("\ndirection selectivity confirmed: the array distinguishes motion direction from spike timing alone.")
	return nil
}
