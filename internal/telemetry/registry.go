// Package telemetry is the simulator's observability layer: a
// worker-sharded metrics registry (counters, gauges, and fixed-bucket
// histograms, merged on scrape) plus a span tracer whose output opens in
// Perfetto / chrome://tracing.
//
// The design goals mirror what the paper's evaluation needed (§VI):
// per-phase time breakdowns, messages and spikes per tick, and per-rank
// load imbalance — measured without perturbing the hot path being
// measured. Three properties deliver that:
//
//   - Sharding: every metric owns one cell block per shard (the
//     simulator uses one shard per rank), so concurrent updates from
//     different workers never contend on a cache line. Cell blocks are
//     padded to at least a cache line.
//   - Zero allocation after registration: handles are plain indices
//     into preallocated atomic cell blocks; Add/Set/Observe allocate
//     nothing and take no locks.
//   - Merge on scrape: shards are only combined when a Snapshot is
//     taken (counters and histogram buckets sum, gauges sum their last
//     set values), so the read side pays the aggregation cost, not the
//     simulation loop.
//
// Snapshots export through three sinks: WriteJSON (machine-readable
// snapshot), WritePrometheus (text exposition format), and the Tracer's
// WriteChromeTrace (trace-event JSON, one complete event per span).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one constant name=value pair attached to a metric at
// registration. Metrics with the same name but different labels are
// distinct series (e.g. compass_phase_seconds{phase="synapse"}).
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Kind discriminates the metric types.
type Kind int

const (
	// KindCounter is a monotonically increasing sum across shards.
	KindCounter Kind = iota
	// KindGauge holds one float64 per shard; shards sum on scrape.
	KindGauge
	// KindHistogram counts observations into fixed buckets per shard;
	// buckets, counts, and sums merge on scrape.
	KindHistogram
)

// String names the kind as Prometheus spells it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// minCells pads every shard's cell block to a full cache line (8 × 8 B)
// so two shards of the same metric — or of two small metrics allocated
// back to back — never share a line.
const minCells = 8

// metric is one registered series: its identity plus one atomic cell
// block per shard.
//
// Cell layout by kind:
//
//	counter:   cell[0] = uint64 value
//	gauge:     cell[0] = math.Float64bits of the last Set
//	histogram: cell[0..len(bounds)] = per-bucket counts (the last is
//	           the +Inf bucket), cell[len(bounds)+1] = observation
//	           count, cell[len(bounds)+2] = Float64bits of the sum,
//	           accumulated by CAS.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   Kind
	bounds []float64 // histogram upper bounds, ascending, finite

	shards [][]atomic.Uint64
}

func (m *metric) histCells() int { return len(m.bounds) + 3 }

// Registry holds every registered metric. Registration takes a lock and
// may allocate; the update paths on the returned handles never do.
type Registry struct {
	shards int

	mu      sync.Mutex
	metrics []*metric
	byKey   map[string]*metric
}

// New creates a registry with the given shard count (the simulator
// passes its rank count). Shard indices passed to handle methods must be
// in [0, shards).
func New(shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	return &Registry{shards: shards, byKey: make(map[string]*metric)}
}

// Shards returns the registry's shard count.
func (r *Registry) Shards() int { return r.shards }

// seriesKey uniquely identifies a (name, labels) series.
func seriesKey(name string, labels []Label) string {
	key := name
	for _, l := range labels {
		key += "\x00" + l.Key + "\x01" + l.Value
	}
	return key
}

// register returns the existing metric for (name, labels) or creates
// it. Re-registering with a different kind or bucket layout panics:
// that is a programming error, not a runtime condition.
func (r *Registry) register(kind Kind, name, help string, bounds []float64, labels []Label) *metric {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, kind, m.kind))
		}
		if kind == KindHistogram && len(m.bounds) != len(bounds) {
			panic(fmt.Sprintf("telemetry: histogram %s re-registered with %d buckets (was %d)", name, len(bounds), len(m.bounds)))
		}
		return m
	}
	m := &metric{
		name:   name,
		help:   help,
		labels: append([]Label(nil), labels...),
		kind:   kind,
	}
	cells := 1
	if kind == KindHistogram {
		m.bounds = append([]float64(nil), bounds...)
		if !sort.Float64sAreSorted(m.bounds) {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not ascending", name))
		}
		for _, b := range m.bounds {
			if math.IsInf(b, 0) || math.IsNaN(b) {
				panic(fmt.Sprintf("telemetry: histogram %s has non-finite bound %v (+Inf is implicit)", name, b))
			}
		}
		cells = m.histCells()
	}
	if cells < minCells {
		cells = minCells
	}
	m.shards = make([][]atomic.Uint64, r.shards)
	for s := range m.shards {
		m.shards[s] = make([]atomic.Uint64, cells)
	}
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or fetches) a counter series and returns its
// handle. Counter names should end in _total per Prometheus convention.
func (r *Registry) Counter(name, help string, labels ...Label) Counter {
	return Counter{m: r.register(KindCounter, name, help, nil, labels)}
}

// Gauge registers (or fetches) a gauge series and returns its handle.
func (r *Registry) Gauge(name, help string, labels ...Label) Gauge {
	return Gauge{m: r.register(KindGauge, name, help, nil, labels)}
}

// Histogram registers (or fetches) a fixed-bucket histogram series.
// bounds are the ascending finite bucket upper limits; an implicit +Inf
// bucket catches everything above the last bound.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) Histogram {
	return Histogram{m: r.register(KindHistogram, name, help, bounds, labels)}
}

// Counter is a handle to one counter series. The zero Counter is a
// valid no-op (updates are dropped), so optional instrumentation can
// hold unregistered handles.
type Counter struct{ m *metric }

// Add increments the shard's cell by delta.
func (c Counter) Add(shard int, delta uint64) {
	if c.m == nil {
		return
	}
	c.m.shards[shard][0].Add(delta)
}

// Inc increments the shard's cell by one.
func (c Counter) Inc(shard int) { c.Add(shard, 1) }

// Gauge is a handle to one gauge series. The zero Gauge is a no-op.
type Gauge struct{ m *metric }

// Set stores v as the shard's current value.
func (g Gauge) Set(shard int, v float64) {
	if g.m == nil {
		return
	}
	g.m.shards[shard][0].Store(math.Float64bits(v))
}

// Histogram is a handle to one histogram series. The zero Histogram is
// a no-op.
type Histogram struct{ m *metric }

// Observe records v into the shard's buckets. The bucket scan is linear
// — bucket lists are short (tens) and the scan is branch-predictable,
// which beats binary search at this size.
func (h Histogram) Observe(shard int, v float64) {
	if h.m == nil {
		return
	}
	cells := h.m.shards[shard]
	idx := len(h.m.bounds) // +Inf bucket
	for i, b := range h.m.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	cells[idx].Add(1)
	cells[len(h.m.bounds)+1].Add(1)
	addFloat(&cells[len(h.m.bounds)+2], v)
}

// addFloat accumulates a float64 into an atomic cell holding float bits.
func addFloat(cell *atomic.Uint64, v float64) {
	for {
		old := cell.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if cell.CompareAndSwap(old, next) {
			return
		}
	}
}
