package cluster

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"

	sim "github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/server"
)

// Placement uses the same cost function as single-node admission —
// server.EstimateCostPerTick over the calibrated Blue Gene performance
// model — extended cluster-wide: a session's modelled seconds/tick is
// charged against the candidate node's capacity budget. Affinity comes
// first: nodes already holding the session's model image resident are
// preferred (the image is shared copy-on-write and same-model sessions
// join one batched tick loop), then the least-utilized candidate wins.

// estimateCores guesses the session's core count from its source
// without compiling: the cocomac request's core parameter, the spec's
// region sum, or the binary model header's numCores field. Placement
// only needs the right order of magnitude for the cost model.
func estimateCores(src *server.SourceSpec) int {
	switch src.Kind {
	case "cocomac":
		if src.Cores > 0 {
			return src.Cores
		}
		return 128
	case "spec":
		var spec coreobject.NetworkSpec
		if err := json.Unmarshal(src.Spec, &spec); err == nil {
			if n := spec.TotalCores(); n > 0 {
				return n
			}
		}
	case "model":
		raw, err := base64.StdEncoding.DecodeString(src.ModelBase64)
		// Header: "CMPM" | u32 version | u64 seed | u64 numCores | ...
		if err == nil && len(raw) >= 24 && bytes.Equal(raw[:4], []byte("CMPM")) {
			if n := binary.LittleEndian.Uint64(raw[16:24]); n > 0 && n < 1<<28 {
				return int(n)
			}
		}
	}
	return 128
}

// requestCost prices a create request for placement.
func requestCost(req *server.CreateRequest) float64 {
	ranks, threads := req.Ranks, req.Threads
	if ranks <= 0 {
		ranks = 1
	}
	if threads <= 0 {
		threads = 1
	}
	transport := sim.TransportShmem
	if req.Transport != "" {
		if t, err := sim.ParseTransport(req.Transport); err == nil {
			transport = t
		}
	}
	return server.EstimateCostPerTick(estimateCores(&req.Source), ranks, threads, transport)
}

// exportCost prices an export document (migration/restore placement).
func exportCost(doc *server.ExportDoc) float64 {
	transport := sim.TransportShmem
	if doc.Transport != "" {
		if t, err := sim.ParseTransport(doc.Transport); err == nil {
			transport = t
		}
	}
	cores := checkpointCores(doc.CheckpointBase64)
	if cores <= 0 {
		cores = 128
	}
	ranks, threads := doc.Ranks, doc.Threads
	if ranks <= 0 {
		ranks = 1
	}
	if threads <= 0 {
		threads = 1
	}
	return server.EstimateCostPerTick(cores, ranks, threads, transport)
}

// checkpointCores reads numCores from a base64 CMPC header without
// materializing the checkpoint.
func checkpointCores(ckptBase64 string) int {
	// Header: "CMPC" | u32 version | u64 tick | u64 numCores. 24 header
	// bytes need 32 base64 characters.
	take := 32
	if len(ckptBase64) < take {
		take = len(ckptBase64)
	}
	raw, err := base64.StdEncoding.WithPadding(base64.NoPadding).DecodeString(ckptBase64[:take&^3])
	if err != nil || len(raw) < 24 || !bytes.Equal(raw[:4], []byte("CMPC")) {
		return 0
	}
	if n := binary.LittleEndian.Uint64(raw[16:24]); n > 0 && n < 1<<28 {
		return int(n)
	}
	return 0
}

// place picks the node for a session of the given modelled cost,
// preferring nodes with the model already resident, then the lowest
// relative utilization. Nodes in exclude, draining, or whose whole
// capacity the session exceeds are skipped. When no node has headroom
// right now, the least-utilized eligible node still wins — its
// admission queue holds the session FIFO, mirroring single-node
// behavior.
func (c *Coordinator) place(cost float64, modelHash string, exclude map[string]bool) (*node, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	alive := c.aliveNodesLocked()
	type cand struct {
		n        *node
		affinity bool
		util     float64
		headroom bool
	}
	var cands []cand
	for _, n := range alive {
		if n.draining || exclude[n.id] {
			continue
		}
		if cost > n.capacity {
			continue // would be rejected outright
		}
		cands = append(cands, cand{
			n:        n,
			affinity: modelHash != "" && n.resident[modelHash],
			util:     n.used / n.capacity,
			headroom: n.used+cost <= n.capacity,
		})
	}
	if len(cands) == 0 {
		return nil, "", fmt.Errorf("cluster: no eligible node for session costing %.3g s/tick", cost)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].affinity != cands[j].affinity {
			return cands[i].affinity
		}
		if cands[i].headroom != cands[j].headroom {
			return cands[i].headroom
		}
		return cands[i].util < cands[j].util
	})
	best := cands[0]
	reason := "least-utilized"
	switch {
	case best.affinity:
		reason = "model-affinity"
	case !best.headroom:
		reason = "queued"
	}
	return best.n, reason, nil
}
