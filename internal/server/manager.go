package server

import (
	"context"
	"errors"
	"fmt"
	"sync"

	sim "github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/perfmodel"
	"github.com/cognitive-sim/compass/internal/telemetry"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// ErrOverCapacity marks a session whose modelled cost exceeds the
// server's entire configured capacity: no amount of queueing will ever
// admit it.
var ErrOverCapacity = errors.New("server: session cost exceeds configured capacity")

// ErrNotFound marks an unknown session id.
var ErrNotFound = errors.New("server: no such session")

// EstimateCostPerTick prices one session in modelled seconds per
// simulated tick using the calibrated Blue Gene/Q performance model
// (internal/perfmodel) with the §VII synthetic workload assumptions
// (10 Hz firing, 75% node-local traffic, 25% crossbar density). The
// shmem transport has no machine-model projection, so it is priced as
// MPI — the decompositions do the same compute, they differ only in the
// Network phase's host mechanics.
func EstimateCostPerTick(cores, ranks, threads int, transport sim.Transport) float64 {
	if cores < 1 || ranks < 1 || threads < 1 {
		return 0
	}
	coresPerNode := (cores + ranks - 1) / ranks
	w, err := perfmodel.SyntheticUniform(ranks, coresPerNode, 10, 0.75, 0.25)
	if err != nil {
		return 0
	}
	if transport == sim.TransportShmem {
		transport = sim.TransportMPI
	}
	pt, err := perfmodel.Project(perfmodel.BlueGeneQ(), w, threads, transport)
	if err != nil {
		return 0
	}
	return pt.Total()
}

// ManagerOptions configures admission control and session defaults.
type ManagerOptions struct {
	// CapacitySecondsPerTick is the admission budget: the sum of the
	// modelled per-tick cost of all concurrently running sessions stays
	// at or below it. Sessions costing more than the whole budget are
	// rejected; sessions that merely don't fit right now are queued
	// FIFO. Zero means 1.0 modelled seconds/tick.
	CapacitySecondsPerTick float64
	// MaxRunning caps concurrently running sessions regardless of cost.
	// Zero means 16.
	MaxRunning int
	// ChunkTicks is the default per-chunk tick count: the granularity at
	// which pause, checkpoint, and drain resolve. Zero means 25.
	ChunkTicks int
	// SubscriberQueue is the per-subscriber egress ring capacity in
	// records. Zero means 65536.
	SubscriberQueue int
}

func (o *ManagerOptions) withDefaults() ManagerOptions {
	out := *o
	if out.CapacitySecondsPerTick <= 0 {
		out.CapacitySecondsPerTick = 1.0
	}
	if out.MaxRunning <= 0 {
		out.MaxRunning = 16
	}
	if out.ChunkTicks <= 0 {
		out.ChunkTicks = 25
	}
	if out.SubscriberQueue <= 0 {
		out.SubscriberQueue = 65536
	}
	return out
}

// Manager owns every session: creation with admission control, FIFO
// queueing, lookup, and the server-level metrics registry that /metrics
// merges with each session's labeled registry.
type Manager struct {
	opts ManagerOptions
	reg  *telemetry.Registry

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string
	queue    []*Session
	used     float64
	running  int
	nextID   int

	mCreated   telemetry.Counter
	mRejected  telemetry.Counter
	mCompleted telemetry.Counter
	gRunning   telemetry.Gauge
	gQueued    telemetry.Gauge
	gUsed      telemetry.Gauge
}

// NewManager builds a manager with the given admission options.
func NewManager(opts ManagerOptions) *Manager {
	reg := telemetry.New(1)
	m := &Manager{
		opts:     opts.withDefaults(),
		reg:      reg,
		sessions: make(map[string]*Session),
		mCreated: reg.Counter("compassd_sessions_created_total",
			"sessions admitted (running or queued)"),
		mRejected: reg.Counter("compassd_sessions_rejected_total",
			"sessions rejected by admission control"),
		mCompleted: reg.Counter("compassd_sessions_completed_total",
			"sessions that reached a terminal state"),
		gRunning: reg.Gauge("compassd_sessions_running",
			"sessions currently running or paused"),
		gQueued: reg.Gauge("compassd_sessions_queued",
			"sessions waiting for capacity"),
		gUsed: reg.Gauge("compassd_capacity_used_seconds_per_tick",
			"modelled per-tick cost of all running sessions"),
	}
	return m
}

// Registry returns the server-level metrics registry.
func (m *Manager) Registry() *telemetry.Registry { return m.reg }

// CreateParams describes one session to admit.
type CreateParams struct {
	// Name is an optional human label.
	Name string
	// Model is the instantiated network the session simulates.
	Model *truenorth.Model
	// Cfg is the decomposition (ranks, threads, transport, placement).
	Cfg sim.Config
	// Ticks is the number of ticks to simulate (from StartFrom's tick
	// when resuming, from tick 0 otherwise).
	Ticks uint64
	// ChunkTicks overrides the manager's default chunk size when > 0.
	ChunkTicks int
	// StartFrom optionally resumes the session from a checkpoint (e.g.
	// one written by a previous daemon's graceful shutdown).
	StartFrom *truenorth.Checkpoint
	// StartPaused parks the session at tick 0 (or StartFrom's tick)
	// before any chunk runs, so clients can attach streams and observe
	// the run from its very first spike. Resume releases it.
	StartPaused bool
}

// Create admits a new session. The session starts immediately when
// capacity allows, otherwise it queues FIFO. Create returns
// ErrOverCapacity when the session could never run.
func (m *Manager) Create(p CreateParams) (*Session, error) {
	if err := p.Cfg.Validate(p.Model); err != nil {
		return nil, err
	}
	cost := EstimateCostPerTick(len(p.Model.Cores), p.Cfg.Ranks, p.Cfg.ThreadsPerRank, p.Cfg.Transport)
	if cost > m.opts.CapacitySecondsPerTick {
		m.mRejected.Inc(0)
		return nil, fmt.Errorf("%w: %.3gs/tick modelled vs %.3gs/tick budget",
			ErrOverCapacity, cost, m.opts.CapacitySecondsPerTick)
	}

	m.mu.Lock()
	m.nextID++
	id := fmt.Sprintf("s%06d", m.nextID)
	m.mu.Unlock()

	chunk := p.ChunkTicks
	if chunk <= 0 {
		chunk = m.opts.ChunkTicks
	}
	s, err := newSession(id, p.Name, p.Model, p.Cfg, p.Ticks, chunk, cost, m.opts.SubscriberQueue, m.release)
	if err != nil {
		return nil, err
	}
	if p.StartFrom != nil {
		if err := p.StartFrom.Validate(p.Model); err != nil {
			return nil, fmt.Errorf("server: start checkpoint: %w", err)
		}
		s.cp = p.StartFrom
	}
	if p.StartPaused {
		// The runner has not launched yet, so this is race-free: it
		// parks at the loop top before simulating anything.
		s.pauseReq = true
	}
	drops := m.reg.Counter("compassd_stream_dropped_records_total",
		"egress records evicted by drop-oldest backpressure, per session",
		telemetry.Label{Key: "session", Value: id})
	s.sink.onDrop = func(n uint64) { drops.Add(0, n) }

	m.mu.Lock()
	m.sessions[id] = s
	m.order = append(m.order, id)
	m.mCreated.Inc(0)
	if m.running < m.opts.MaxRunning && m.used+cost <= m.opts.CapacitySecondsPerTick {
		m.startLocked(s)
	} else {
		m.queue = append(m.queue, s)
	}
	m.refreshGaugesLocked()
	m.mu.Unlock()
	return s, nil
}

// startLocked charges capacity and launches the runner. Callers hold mu.
func (m *Manager) startLocked(s *Session) {
	m.used += s.cost
	m.running++
	s.start()
}

// release returns a finished session's capacity and starts queued
// sessions that now fit. It is the session runner's exit callback.
func (m *Manager) release(s *Session) {
	m.mu.Lock()
	m.used -= s.cost
	if m.used < 0 {
		m.used = 0
	}
	m.running--
	m.mCompleted.Inc(0)
	m.promoteLocked()
	m.refreshGaugesLocked()
	m.mu.Unlock()
}

// promoteLocked starts queued sessions in FIFO order while capacity
// lasts, skipping sessions that were stopped while queued.
func (m *Manager) promoteLocked() {
	keep := m.queue[:0]
	for _, s := range m.queue {
		if s.State().Terminal() {
			continue
		}
		if m.running < m.opts.MaxRunning && m.used+s.cost <= m.opts.CapacitySecondsPerTick {
			m.startLocked(s)
			continue
		}
		keep = append(keep, s)
	}
	for i := len(keep); i < len(m.queue); i++ {
		m.queue[i] = nil
	}
	m.queue = keep
}

func (m *Manager) refreshGaugesLocked() {
	m.gRunning.Set(0, float64(m.running))
	m.gQueued.Set(0, float64(len(m.queue)))
	m.gUsed.Set(0, m.used)
}

// Get looks a session up by id.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return s, nil
}

// List returns every session's status in creation order.
func (m *Manager) List() []Info {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]Info, 0, len(ids))
	for _, id := range ids {
		if s, err := m.Get(id); err == nil {
			out = append(out, s.Info())
		}
	}
	return out
}

// Stop cancels a session. Queued sessions cancel in place; running
// sessions unwind at the next tick boundary via context cancellation.
func (m *Manager) Stop(id string) error {
	s, err := m.Get(id)
	if err != nil {
		return err
	}
	if s.abortQueued(StateCancelled, context.Canceled) {
		m.mu.Lock()
		m.promoteLocked()
		m.refreshGaugesLocked()
		m.mu.Unlock()
		return nil
	}
	s.Stop()
	return nil
}

// Remove stops a session and deletes it from the index once its runner
// has exited.
func (m *Manager) Remove(id string) error {
	if err := m.Stop(id); err != nil {
		return err
	}
	s, err := m.Get(id)
	if err != nil {
		return err
	}
	s.Wait()
	m.mu.Lock()
	delete(m.sessions, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.refreshGaugesLocked()
	m.mu.Unlock()
	return nil
}

// DrainAll parks every session at its next chunk boundary and waits for
// all runners to exit; used by graceful shutdown. It returns every
// non-failed session that holds a checkpoint, paired with its id.
func (m *Manager) DrainAll() []*Session {
	m.mu.Lock()
	all := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	for _, s := range all {
		s.Drain()
	}
	out := make([]*Session, 0, len(all))
	for _, s := range all {
		s.Wait()
		if st := s.State(); st == StateDrained || st == StatePaused || st == StateDone {
			out = append(out, s)
		}
	}
	return out
}

// MetricsSnapshot merges the server-level registry with every
// session's labeled registry into one snapshot; WritePrometheus on the
// result is a single valid exposition because HELP/TYPE lines dedup by
// metric name.
func (m *Manager) MetricsSnapshot() *telemetry.Snapshot {
	snap := m.reg.Snapshot()
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	for _, id := range ids {
		s, err := m.Get(id)
		if err != nil {
			continue
		}
		if sub := s.tel.Registry().Snapshot(); sub != nil {
			snap.Metrics = append(snap.Metrics, sub.Metrics...)
		}
	}
	return snap
}

// Counts returns (running, queued, total) session counts.
func (m *Manager) Counts() (running, queued, total int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running, len(m.queue), len(m.sessions)
}
