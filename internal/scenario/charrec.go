package scenario

import (
	"github.com/cognitive-sim/compass/internal/corelets"
	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/spikecode"
	"github.com/cognitive-sim/compass/internal/spikeio"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// The charrec scenario promotes the examples/charrec demo to a served
// task: a single-core template matcher classifies noisy 5×7 digit
// glyphs streamed in as one-hot volleys over the paired on/off axon
// lines. Each step the environment draws a digit and a pixel-noise
// level, presents the corrupted glyph, and scores the matcher's vote.

const (
	charrecWindow   = 8
	charrecGuard    = 4
	charrecMaxFlips = 3 // flips drawn uniformly from [0, charrecMaxFlips)
)

type charrecTask struct {
	wiring *Wiring
	rng    *prng.Stream

	glyphs [][]bool
	want   int // the digit presented by the latest Emit

	score   Score
	latency float64
	decided int
}

func newCharrec(seed uint64) (Task, error) {
	glyphs := make([][]bool, 10)
	templates := make([][]bool, 10)
	thresholds := make([]int32, 10)
	for d := 0; d < 10; d++ {
		bits, ok := spikecode.Glyph(rune('0' + d))
		if !ok {
			panic("scenario: digit glyph missing from font")
		}
		glyphs[d] = bits
		templates[d] = bits
		th := int32(spikecode.Popcount(bits)) - 2
		if th < 1 {
			th = 1
		}
		thresholds[d] = th
	}
	b := corelets.NewBuilder(seed)
	in, out, err := b.TemplateMatcherThresholds(spikecode.GlyphBits, templates, thresholds)
	if err != nil {
		return nil, err
	}
	b.Pacemaker(1)
	probe, err := b.Probe(out)
	if err != nil {
		return nil, err
	}
	model, err := b.Build()
	if err != nil {
		return nil, err
	}
	lines := make([]spikecode.Line, len(in))
	for i, ax := range in {
		// The matcher's mismatch penalty rides the paired off axon.
		lines[i] = spikecode.PairedLine(ax.Core, ax.Axon)
	}
	return &charrecTask{
		wiring: &Wiring{
			Model: model,
			In:    lines,
			OutIndex: func(core truenorth.CoreID, axon uint16) (int, bool) {
				return probe.Index(truenorth.SpikeTarget{Core: core, Axon: axon})
			},
			NumOut:  10,
			Encoder: &spikecode.OneHot{Lines: lines},
			Decoder: spikecode.Vote{},
		},
		rng:    prng.New(prng.Mix64(seed ^ 0xc4a77ec)),
		glyphs: glyphs,
	}, nil
}

func (c *charrecTask) Wiring() *Wiring { return c.wiring }

func (c *charrecTask) Reset(ep int) { c.score.Episodes = ep + 1 }

func (c *charrecTask) Emit(step int, start uint64) ([]spikeio.Event, error) {
	c.want = c.rng.Intn(10)
	flips := c.rng.Intn(charrecMaxFlips)
	pattern := spikecode.FlipPixels(c.glyphs[c.want], flips, c.rng)
	obs := spikecode.BitsToObs(pattern)
	return c.wiring.Encoder.Encode(nil, obs, start+1, 1, c.rng)
}

func (c *charrecTask) Feedback(step int, d spikecode.Decision) {
	c.score.Steps++
	if d.Action < 0 {
		return
	}
	c.decided++
	c.latency += float64(d.FirstTick)
	if d.Action == c.want {
		c.score.Correct++
		c.score.Reward++
	}
}

func (c *charrecTask) Score() Score {
	s := c.score
	if c.decided > 0 {
		s.MeanLatencyTicks = c.latency / float64(c.decided)
	}
	s.Extra = map[string]float64{"decided_steps": float64(c.decided)}
	return s
}

func init() {
	Register(&Spec{
		Name:        "charrec",
		Description: "noisy 5×7 digit recognition on a one-core template matcher (the examples/charrec network, served)",
		Episodes:    2,
		Steps:       25,
		WindowTicks: charrecWindow,
		GuardTicks:  charrecGuard,
		New:         newCharrec,
	})
}
