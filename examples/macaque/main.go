// Macaque: the paper's flagship workload end to end — generate the
// CoCoMac macaque network (§V), compile it with the Parallel Compass
// Compiler (§IV), simulate it with Compass (§III), and report activity
// per brain region.
//
// This is the host-scale version of the runs behind Figures 4 and 5:
// the same code path, with 512 TrueNorth cores instead of 256 million.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/cognitive-sim/compass/internal/cocomac"
	"github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/pcc"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		totalCores = 512
		ranks      = 8
		ticks      = 200
	)

	// 1. The macaque network: 102 regions, 77 reporting connections,
	// volumes from a synthetic Paxinos-style atlas, connection matrix
	// balanced by iterative proportional fitting.
	net := cocomac.Generate(2012)
	fmt.Printf("CoCoMac network: %d regions (%d connected), %d reduced pathways\n",
		len(net.Regions), cocomac.ConnectedRegions, net.ReducedEdgeCount())

	spec, err := net.ToSpec(totalCores, ticks)
	if err != nil {
		return err
	}

	// 2. Parallel compilation: region-aware placement, white-matter axon
	// negotiation, gray matter wired locally.
	t0 := time.Now()
	res, err := pcc.Compile(spec, ranks)
	if err != nil {
		return err
	}
	fmt.Printf("PCC: compiled %d cores (%d neurons, %d synapses) on %d ranks in %v; %d IPFP sweeps\n",
		res.Model.NumCores(), res.Model.NumNeurons(), res.Model.NumSynapses(),
		res.Ranks, time.Since(t0).Round(time.Millisecond), res.BalanceIterations)

	// 3. Simulation under the visual (LGN) drive the spec attaches.
	regionFirings := make(map[int]uint64)
	// Count per-region activity through a traced run.
	cfg := compass.Config{
		Ranks:          res.Ranks,
		ThreadsPerRank: 2,
		RankOf:         res.RankOf,
		RecordTrace:    true,
	}
	t1 := time.Now()
	stats, err := compass.Run(res.Model, cfg, ticks)
	if err != nil {
		return err
	}
	fmt.Printf("Compass: %d ticks on %d ranks in %v — %d spikes (%.1f Hz mean), %d messages\n",
		stats.Ticks, stats.Ranks, time.Since(t1).Round(time.Millisecond),
		stats.TotalSpikes, stats.AvgFiringRateHz(), stats.Messages)

	for _, ev := range stats.Trace {
		regionFirings[res.RegionOfCore[ev.Target.Core]]++
	}

	// 4. The ten most active regions by incoming spike traffic.
	type regionAct struct {
		name  string
		count uint64
	}
	var acts []regionAct
	for ri, c := range regionFirings {
		acts = append(acts, regionAct{spec.Regions[ri].Name, c})
	}
	sort.Slice(acts, func(a, b int) bool { return acts[a].count > acts[b].count })
	fmt.Println("\nmost active regions (spikes received over the run):")
	for i, a := range acts {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-6s %8d\n", a.name, a.count)
	}
	fmt.Printf("\nwhite matter: %.1f spikes/tick crossed ranks in %.1f messages/tick (%.1f spikes per message)\n",
		stats.SpikesPerTick(), stats.MessagesPerTick(),
		float64(stats.RemoteSpikes)/float64(max64(stats.Messages, 1)))
	fmt.Printf("modelled wire payload: %.2f KB/tick at %d B/spike\n",
		stats.WireBytesPerTick()/1e3, truenorth.SpikeWireBytes)
	return nil
}

func max64(v, lo uint64) uint64 {
	if v < lo {
		return lo
	}
	return v
}
