package scenario

import (
	"fmt"

	"github.com/cognitive-sim/compass/internal/corelets"
	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/spikecode"
	"github.com/cognitive-sim/compass/internal/spikeio"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// The k-armed bandit scenario: the network is the action-selection
// stage of a reinforcement learner. Each decision step rate-codes the
// agent's current value estimates onto one relay line per arm, the
// relay's spike race is decoded by majority vote, and the chosen arm
// draws a Bernoulli reward from the (hidden, per-episode shuffled) true
// arm probabilities. The Q-update closes the loop: better-valued arms
// get hotter drive next step, so reward accrues as the race learns to
// favor the best arm — while the rate code keeps exploring.

const (
	banditArms     = 4
	banditWindow   = 16
	banditGuard    = 4
	banditDrive    = 10 // drive ticks per step, [start+1, start+11)
	banditLearn    = 0.25
	banditBaseRate = 0.10
	banditGainRate = 0.70
	banditJitter   = 0.20
)

// banditTruth is the fixed reward-probability multiset, shuffled across
// arms at every episode reset.
var banditTruth = [banditArms]float64{0.9, 0.6, 0.4, 0.2}

type banditTask struct {
	wiring *Wiring
	rng    *prng.Stream

	trueP [banditArms]float64
	best  int
	q     [banditArms]float64

	score   Score
	latency float64 // summed decision latency, decided steps only
	decided int
}

func newBandit(seed uint64) (Task, error) {
	b := corelets.NewBuilder(seed)
	in, out := b.Relay(banditArms)
	b.Pacemaker(1)
	probe, err := b.Probe(out)
	if err != nil {
		return nil, err
	}
	model, err := b.Build()
	if err != nil {
		return nil, err
	}
	lines := make([]spikecode.Line, banditArms)
	for i, ax := range in {
		lines[i] = spikecode.SingleLine(ax.Core, ax.Axon)
	}
	return &banditTask{
		wiring: &Wiring{
			Model: model,
			In:    lines,
			OutIndex: func(core truenorth.CoreID, axon uint16) (int, bool) {
				return probe.Index(truenorth.SpikeTarget{Core: core, Axon: axon})
			},
			NumOut:  banditArms,
			Encoder: &spikecode.Rate{Lines: lines},
			Decoder: spikecode.Vote{},
		},
		rng: prng.New(prng.Mix64(seed ^ 0xbad17)),
	}, nil
}

func (b *banditTask) Wiring() *Wiring { return b.wiring }

func (b *banditTask) Reset(ep int) {
	b.trueP = banditTruth
	b.rng.Shuffle(banditArms, func(i, j int) {
		b.trueP[i], b.trueP[j] = b.trueP[j], b.trueP[i]
	})
	b.best = 0
	for i, p := range b.trueP {
		if p > b.trueP[b.best] {
			b.best = i
		}
	}
	for i := range b.q {
		b.q[i] = 0.5
	}
	b.score.Episodes = ep + 1
}

func (b *banditTask) Emit(step int, start uint64) ([]spikeio.Event, error) {
	// Normalize the value estimates into drive rates with a floor (so
	// every arm keeps exploring) and per-step jitter. The jitter draws
	// happen unconditionally, one per arm, to keep the rng stream
	// position a function of step count alone.
	lo, hi := b.q[0], b.q[0]
	for _, q := range b.q[1:] {
		if q < lo {
			lo = q
		}
		if q > hi {
			hi = q
		}
	}
	span := hi - lo
	obs := make([]float64, banditArms)
	for i, q := range b.q {
		norm := 0.5
		if span > 1e-9 {
			norm = (q - lo) / span
		}
		obs[i] = banditBaseRate + banditGainRate*norm + banditJitter*b.rng.Float64()
	}
	return b.wiring.Encoder.Encode(nil, obs, start+1, banditDrive, b.rng)
}

func (b *banditTask) Feedback(step int, d spikecode.Decision) {
	b.score.Steps++
	// One reward draw per step regardless of outcome, for the same
	// stream-position invariance as the jitter draws.
	u := b.rng.Float64()
	if d.Action < 0 {
		return
	}
	b.decided++
	b.latency += float64(d.FirstTick)
	if u < b.trueP[d.Action] {
		b.score.Reward++
		b.q[d.Action] += banditLearn * (1 - b.q[d.Action])
	} else {
		b.q[d.Action] += banditLearn * (0 - b.q[d.Action])
	}
	if d.Action == b.best {
		b.score.Correct++
	}
}

func (b *banditTask) Score() Score {
	s := b.score
	if b.decided > 0 {
		s.MeanLatencyTicks = b.latency / float64(b.decided)
	}
	s.Extra = map[string]float64{"decided_steps": float64(b.decided)}
	return s
}

func init() {
	Register(&Spec{
		Name:        "bandit",
		Description: fmt.Sprintf("%d-armed bandit: rate-coded value race over a relay, vote decode, Bernoulli rewards", banditArms),
		Episodes:    3,
		Steps:       20,
		WindowTicks: banditWindow,
		GuardTicks:  banditGuard,
		New:         newBandit,
	})
}
