package pcc

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// randomSpec builds a random but valid network description: 2–6 regions
// with random sizes, a strongly-connected random edge set (every region
// reachable so axon marginals stay feasible), and a stimulus on the
// first region.
func randomSpec(seed uint64) *coreobject.NetworkSpec {
	r := prng.New(seed)
	nRegions := 2 + r.Intn(5)
	spec := &coreobject.NetworkSpec{Name: fmt.Sprintf("prop-%d", seed), Seed: seed}
	for i := 0; i < nRegions; i++ {
		proto := coreobject.DefaultProto()
		proto.SynapseDensity = 0.02 + 0.2*r.Float64()
		proto.InhibitoryFraction = 0.3 * r.Float64()
		spec.Regions = append(spec.Regions, coreobject.RegionSpec{
			Name:         fmt.Sprintf("R%d", i),
			Cores:        1 + r.Intn(6),
			GrayFraction: 0.1 + 0.5*r.Float64(),
			Proto:        proto,
		})
	}
	// A ring guarantees every region has in and out pathways; extra
	// random edges add density.
	for i := 0; i < nRegions; i++ {
		spec.Connections = append(spec.Connections, coreobject.Connection{
			Src: spec.Regions[i].Name, Dst: spec.Regions[(i+1)%nRegions].Name,
			Weight: 0.2 + r.Float64(),
		})
	}
	for e := 0; e < nRegions; e++ {
		i, j := r.Intn(nRegions), r.Intn(nRegions)
		if i == j {
			continue
		}
		spec.Connections = append(spec.Connections, coreobject.Connection{
			Src: spec.Regions[i].Name, Dst: spec.Regions[j].Name,
			Weight: 0.2 + r.Float64(),
		})
	}
	spec.Inputs = []coreobject.InputSpec{{
		Region: "R0", Cores: 1, Axons: 1 + r.Intn(64),
		Rate: 0.1, StartTick: 0, EndTick: 20,
	}}
	return spec
}

// checkWiring verifies the §IV realizability contract on a compiled
// model.
func checkWiring(spec *coreobject.NetworkSpec, res *Result) error {
	m := res.Model
	if err := m.Validate(); err != nil {
		return err
	}
	allowed := make(map[[2]int]bool)
	for _, c := range spec.Connections {
		allowed[[2]int{spec.Region(c.Src), spec.Region(c.Dst)}] = true
	}
	type ca struct {
		core truenorth.CoreID
		axon uint16
	}
	used := make(map[ca]bool)
	for id, cfg := range m.Cores {
		srcRegion := res.RegionOfCore[id]
		srcRank := res.RankOf[id]
		for j := range cfg.Neurons {
			n := &cfg.Neurons[j]
			if !n.Enabled {
				continue
			}
			key := ca{n.Target.Core, n.Target.Axon}
			if used[key] {
				return fmt.Errorf("axon (%d,%d) used twice", key.core, key.axon)
			}
			used[key] = true
			dstRegion := res.RegionOfCore[n.Target.Core]
			dstRank := res.RankOf[n.Target.Core]
			if srcRegion == dstRegion {
				if srcRank != dstRank {
					return fmt.Errorf("gray edge of region %d crosses ranks %d->%d", srcRegion, srcRank, dstRank)
				}
			} else if !allowed[[2]int{srcRegion, dstRegion}] {
				return fmt.Errorf("undeclared pathway region %d -> %d", srcRegion, dstRegion)
			}
		}
	}
	return nil
}

// TestQuickCompileInvariants: for random specs and rank counts, the
// compiled model always satisfies the wiring contract.
func TestQuickCompileInvariants(t *testing.T) {
	f := func(seedRaw uint32, ranksRaw uint8) bool {
		spec := randomSpec(uint64(seedRaw))
		total := spec.TotalCores()
		ranks := 1 + int(ranksRaw)%8
		if ranks > total {
			ranks = total
		}
		res, err := Compile(spec, ranks)
		if err != nil {
			t.Logf("seed %d ranks %d: compile failed: %v", seedRaw, ranks, err)
			return false
		}
		if err := checkWiring(spec, res); err != nil {
			t.Logf("seed %d ranks %d: %v", seedRaw, ranks, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCompiledModelsSimulate: every compiled model runs identically
// under serial and parallel simulation.
func TestQuickCompiledModelsSimulate(t *testing.T) {
	f := func(seedRaw uint16) bool {
		spec := randomSpec(uint64(seedRaw) ^ 0xABCD)
		ranks := 2
		if spec.TotalCores() < 2 {
			ranks = 1
		}
		res, err := Compile(spec, ranks)
		if err != nil {
			return false
		}
		ref, err := truenorth.NewSerialSim(res.Model)
		if err != nil {
			return false
		}
		if err := ref.Run(25); err != nil {
			return false
		}
		stats, err := compassRun(res, 25)
		if err != nil {
			t.Logf("seed %d: %v", seedRaw, err)
			return false
		}
		return stats == ref.TotalSpikes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// compassRun simulates a compiled model in parallel and returns the
// total spike count.
func compassRun(res *Result, ticks int) (uint64, error) {
	stats, err := compass.Run(res.Model, compass.Config{
		Ranks:          res.Ranks,
		ThreadsPerRank: 2,
		RankOf:         res.RankOf,
	}, ticks)
	if err != nil {
		return 0, err
	}
	return stats.TotalSpikes, nil
}
