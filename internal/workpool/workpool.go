// Package workpool provides the shared worker-team primitives behind
// Compass's parallel phases: a persistent Pool of goroutines dispatched
// once per phase (the simulator's per-rank thread team, mirroring the
// paper's OpenMP threads), a bounded deterministic parallel-for
// (ForEach) used by the compiler's per-core instantiation, the image
// builder's kernel construction, and IPFP sweep scaling, and a Limiter
// that bounds the total workers a whole daemon spawns across any number
// of concurrent sessions and builds.
//
// All primitives are deterministic by construction as long as the work
// items are independent: every item runs exactly once with the same
// inputs regardless of worker count, so any computation whose items do
// not communicate produces bit-identical results serial or parallel.
package workpool

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// Pool is a persistent team of goroutines that lives for a whole run,
// replacing per-phase goroutine spawning. The pool decouples the
// logical thread count (how many tids each Run covers) from the worker
// count (how many goroutines execute them): Run hands out tids from an
// atomic counter, so every tid runs exactly once per dispatch whether
// the pool was granted its full worker complement or had to share a
// daemon-wide budget (see Limiter). The caller always executes as one
// worker; workers beyond the first block on their own channel between
// dispatches.
type Pool struct {
	threads int
	work    []chan task
}

// task is one parallel phase dispatched to every worker.
type task struct {
	fn   func(tid int)
	next *atomic.Int64
	wg   *sync.WaitGroup
}

// New starts a full-width pool: threads logical threads served by
// threads workers (the caller plus threads-1 goroutines). It returns
// nil when one thread needs no pool (every method is nil-safe). label,
// when non-nil, returns pprof label key/value pairs for worker w, so
// CPU profiles of a run break down by owner and worker.
func New(threads int, label func(w int) []string) *Pool {
	return NewSized(threads, threads, label)
}

// NewSized starts a pool covering threads logical thread IDs with at
// most workers executing goroutines (the caller counts as one, so
// workers-1 goroutines are spawned). workers above threads is clamped;
// threads <= 1 returns nil. A pool granted fewer workers than threads
// still runs every tid on each dispatch — tids are multiplexed over the
// available workers — so shrinking a daemon-wide worker budget never
// changes results, only parallelism.
func NewSized(threads, workers int, label func(w int) []string) *Pool {
	if threads <= 1 {
		return nil
	}
	if workers > threads {
		workers = threads
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pool{threads: threads, work: make([]chan task, workers-1)}
	for i := range p.work {
		ch := make(chan task, 1)
		p.work[i] = ch
		go func(w int) {
			if label != nil {
				pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
					pprof.Labels(label(w)...)))
			}
			for t := range ch {
				runTids(t.fn, t.next, p.threads)
				t.wg.Done()
			}
		}(i + 1)
	}
	return p
}

// runTids pulls logical thread IDs from the shared counter until every
// tid of the dispatch has been claimed.
func runTids(fn func(tid int), next *atomic.Int64, threads int) {
	for {
		tid := next.Add(1) - 1
		if tid >= int64(threads) {
			return
		}
		fn(int(tid))
	}
}

// Run executes fn(tid) exactly once for every tid in [0, threads)
// across the pool's workers and returns when all are done. The caller
// participates as a worker. A nil pool runs fn(0) on the caller.
func (p *Pool) Run(fn func(tid int)) {
	if p == nil {
		fn(0)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(len(p.work))
	for _, ch := range p.work {
		ch <- task{fn: fn, next: &next, wg: &wg}
	}
	runTids(fn, &next, p.threads)
	wg.Wait()
}

// Stop terminates the workers; the pool must not be used afterwards.
func (p *Pool) Stop() {
	if p == nil {
		return
	}
	for _, ch := range p.work {
		close(ch)
	}
}

// ForEach runs fn(i) for every i in [0, n) across up to workers
// goroutines, partitioning the index space into contiguous blocks, and
// returns when every call is done. workers <= 1 (or n <= 1) runs on the
// caller. fn must treat items as independent; under that contract the
// results are identical for every worker count.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Limiter bounds the total extra workers in flight across everything
// that shares it — image builds, compiler ranks, and session runner
// pools all drawing from one daemon-wide budget, so K concurrent
// sessions no longer spawn K x GOMAXPROCS goroutines. A caller's own
// goroutine never needs a slot (work always proceeds, a starved
// acquisition just runs serially), so the limiter can never deadlock.
// A nil *Limiter is valid and grants every request in full.
type Limiter struct {
	slots chan struct{}
}

// NewLimiter builds a limiter with n grantable extra-worker slots.
// n <= 0 returns nil (unlimited).
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		return nil
	}
	l := &Limiter{slots: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		l.slots <- struct{}{}
	}
	return l
}

// AcquireUpTo grabs up to want extra-worker slots without blocking and
// returns the number granted (possibly 0). Pair every grant with
// Release.
func (l *Limiter) AcquireUpTo(want int) int {
	if want <= 0 {
		return 0
	}
	if l == nil {
		return want
	}
	got := 0
	for got < want {
		select {
		case <-l.slots:
			got++
		default:
			return got
		}
	}
	return got
}

// Release returns n slots granted by AcquireUpTo.
func (l *Limiter) Release(n int) {
	if l == nil {
		return
	}
	for i := 0; i < n; i++ {
		l.slots <- struct{}{}
	}
}

// ForEachLimited is ForEach with the worker count negotiated through a
// shared limiter: the caller always runs, and up to want-1 extra
// workers join if the budget allows. A nil limiter is unlimited.
func ForEachLimited(lim *Limiter, want, n int, fn func(i int)) {
	if want > n {
		want = n
	}
	extra := lim.AcquireUpTo(want - 1)
	ForEach(1+extra, n, fn)
	lim.Release(extra)
}
