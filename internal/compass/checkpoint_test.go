package compass

import (
	"reflect"
	"testing"

	"github.com/cognitive-sim/compass/internal/truenorth"
)

// TestCheckpointResumeMatchesStraightRun: a run split in two by a
// checkpoint must produce exactly the trace of the unbroken run. The
// model uses stochastic neurons, so this also proves PRNG state restores
// bit-exactly.
func TestCheckpointResumeMatchesStraightRun(t *testing.T) {
	m := stochasticModel(6, 0xCAFE)
	const half = 20

	// Straight run, tracing only the second half.
	straight, err := Run(m, Config{Ranks: 3, ThreadsPerRank: 2, RecordTrace: true}, 2*half)
	if err != nil {
		t.Fatal(err)
	}
	var want []truenorth.SpikeEvent
	for _, ev := range straight.Trace {
		if ev.FireTick >= half {
			want = append(want, ev)
		}
	}

	// First half with state capture, under the shmem transport — the
	// checkpoint must restore under any other transport.
	first, err := Run(m, Config{Ranks: 3, ThreadsPerRank: 2, Transport: TransportShmem, ReturnState: true}, half)
	if err != nil {
		t.Fatal(err)
	}
	if first.Final == nil || first.Final.Tick != half {
		t.Fatalf("missing or mistimed checkpoint: %+v", first.Final)
	}

	// Resume under a different decomposition and transport.
	second, err := Run(m, Config{
		Ranks: 5, ThreadsPerRank: 1, Transport: TransportPGAS,
		StartFrom: first.Final, RecordTrace: true,
	}, half)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second.Trace, want) {
		t.Fatalf("resumed trace differs: %d events vs %d expected", len(second.Trace), len(want))
	}
}

// TestCheckpointSerialParallelPortability: serial snapshot restores into
// the parallel simulator and vice versa.
func TestCheckpointSerialParallelPortability(t *testing.T) {
	m := stochasticModel(4, 0xD00D)
	const half = 15

	// Serial first half.
	sim, err := truenorth.NewSerialSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(half); err != nil {
		t.Fatal(err)
	}
	cp := sim.Snapshot()

	// Serial second half (reference).
	ref, err := truenorth.NewSerialSimAt(m, cp)
	if err != nil {
		t.Fatal(err)
	}
	var want []truenorth.SpikeEvent
	ref.OnSpike = func(tick uint64, s truenorth.Spike) {
		want = append(want, truenorth.SpikeEvent{FireTick: tick, Target: s.Target})
	}
	if err := ref.Run(half); err != nil {
		t.Fatal(err)
	}
	truenorth.SortSpikeEvents(want)

	// Parallel second half from the same serial checkpoint.
	par, err := Run(m, Config{Ranks: 4, ThreadsPerRank: 2, StartFrom: cp, RecordTrace: true}, half)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.Trace, want) {
		t.Fatalf("parallel resume differs from serial resume: %d vs %d events", len(par.Trace), len(want))
	}

	// And back: parallel state capture restores into a serial simulator.
	parWithState, err := Run(m, Config{Ranks: 2, ThreadsPerRank: 2, ReturnState: true}, half)
	if err != nil {
		t.Fatal(err)
	}
	serial2, err := truenorth.NewSerialSimAt(m, parWithState.Final)
	if err != nil {
		t.Fatal(err)
	}
	var got []truenorth.SpikeEvent
	serial2.OnSpike = func(tick uint64, s truenorth.Spike) {
		got = append(got, truenorth.SpikeEvent{FireTick: tick, Target: s.Target})
	}
	if err := serial2.Run(half); err != nil {
		t.Fatal(err)
	}
	truenorth.SortSpikeEvents(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("serial resume from parallel state differs: %d vs %d events", len(got), len(want))
	}
}

func TestCheckpointValidation(t *testing.T) {
	m := stochasticModel(3, 1)
	cp := &truenorth.Checkpoint{Tick: 5, States: make([]truenorth.CoreState, 2)}
	if _, err := Run(m, Config{Ranks: 1, ThreadsPerRank: 1, StartFrom: cp}, 5); err == nil {
		t.Fatal("short checkpoint accepted")
	}
	cp = &truenorth.Checkpoint{Tick: 5, States: make([]truenorth.CoreState, 3)}
	cp.States[1].ID = 7
	for i := range cp.States {
		cp.States[i].RNG = [4]uint64{1, 0, 0, 0}
	}
	if _, err := Run(m, Config{Ranks: 1, ThreadsPerRank: 1, StartFrom: cp}, 5); err == nil {
		t.Fatal("misnumbered checkpoint accepted")
	}
	// All-zero PRNG state must be rejected.
	cp = &truenorth.Checkpoint{Tick: 0, States: make([]truenorth.CoreState, 3)}
	for i := range cp.States {
		cp.States[i].ID = truenorth.CoreID(i)
	}
	if _, err := Run(m, Config{Ranks: 1, ThreadsPerRank: 1, StartFrom: cp}, 5); err == nil {
		t.Fatal("zero PRNG state accepted")
	}
}

func TestPerTickStatsWithCheckpointStart(t *testing.T) {
	m := stochasticModel(3, 2)
	first, err := Run(m, Config{Ranks: 1, ThreadsPerRank: 1, ReturnState: true}, 10)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(m, Config{
		Ranks: 2, ThreadsPerRank: 1,
		StartFrom: first.Final, RecordPerTick: true,
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.PerTick) != 8 {
		t.Fatalf("resumed run PerTick has %d entries, want 8", len(second.PerTick))
	}
	var sum uint64
	for _, ts := range second.PerTick {
		sum += ts.Firings
	}
	if sum != second.TotalSpikes {
		t.Fatalf("per-tick firings %d != total %d after resume", sum, second.TotalSpikes)
	}
}
