package modelcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// testModel builds a tiny valid model whose content varies with tag.
func testModel(t *testing.T, tag uint64) *truenorth.Model {
	t.Helper()
	cfg := &truenorth.CoreConfig{}
	cfg.SetSynapse(0, 0, true)
	cfg.Neurons[0] = truenorth.NeuronParams{
		Weights:   [truenorth.NumAxonTypes]int16{1, 0, 0, 0},
		Threshold: 1,
		Target:    truenorth.SpikeTarget{Core: 0, Axon: 0, Delay: 1},
		Enabled:   true,
	}
	return &truenorth.Model{Seed: tag, Cores: []*truenorth.CoreConfig{cfg}}
}

func testEntry(t *testing.T, tag uint64) *Entry {
	t.Helper()
	img, err := truenorth.NewImage(testModel(t, tag))
	if err != nil {
		t.Fatal(err)
	}
	return &Entry{Image: img, Ranks: 1}
}

// TestSingleflight: N concurrent GetOrBuild calls for one key run the
// build exactly once and all receive the same entry. Run under -race
// this also verifies the cache's locking.
func TestSingleflight(t *testing.T) {
	c := New(0)
	const n = 32
	var builds atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	entries := make([]*Entry, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := c.GetOrBuild("k", func() (*Entry, error) {
				builds.Add(1)
				<-release // hold the build open so every goroutine joins it
				return testEntry(t, 1), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	// Wait until one build is in flight, then release it.
	for c.Stats().Misses == 0 {
	}
	close(release)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1", got)
	}
	for i := 1; i < n; i++ {
		if entries[i] != entries[0] {
			t.Fatalf("goroutine %d got a different entry", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("stats hits=%d misses=%d, want %d/1", st.Hits, st.Misses, n-1)
	}
}

// TestBuildErrorNotCached: a failed build propagates to every joined
// caller and leaves nothing resident, so the next call rebuilds.
func TestBuildErrorNotCached(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	if _, _, err := c.GetOrBuild("k", func() (*Entry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed build left a resident entry")
	}
	e, hit, err := c.GetOrBuild("k", func() (*Entry, error) { return testEntry(t, 1), nil })
	if err != nil || hit || e == nil {
		t.Fatalf("rebuild after failure: e=%v hit=%v err=%v", e, hit, err)
	}
}

// TestLRUEviction: inserting beyond the byte budget evicts the least
// recently used entries, and a touched entry survives over a stale one.
func TestLRUEviction(t *testing.T) {
	one := testEntry(t, 1)
	per := one.ResidentBytes()
	c := New(2 * per) // room for two entries
	get := func(key string, tag uint64) *Entry {
		e, _, err := c.GetOrBuild(key, func() (*Entry, error) { return testEntry(t, tag), nil })
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	get("a", 1)
	get("b", 2)
	get("a", 1) // touch a: b becomes LRU
	get("c", 3) // evicts b
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("evictions=%d entries=%d, want 1/2", st.Evictions, st.Entries)
	}
	if st.ResidentBytes > 2*per {
		t.Fatalf("resident %d bytes exceeds budget %d", st.ResidentBytes, 2*per)
	}
	if _, hit, _ := c.GetOrBuild("a", func() (*Entry, error) { return testEntry(t, 1), nil }); !hit {
		t.Fatal("touched entry a was evicted")
	}
	if _, hit, _ := c.GetOrBuild("b", func() (*Entry, error) { return testEntry(t, 2), nil }); hit {
		t.Fatal("stale entry b survived eviction")
	}
}

// TestOversizedEntryNotCached: an entry larger than the whole budget is
// returned to the caller but never admitted to the resident set.
func TestOversizedEntryNotCached(t *testing.T) {
	c := New(1) // 1 byte: nothing fits
	e, hit, err := c.GetOrBuild("big", func() (*Entry, error) { return testEntry(t, 1), nil })
	if err != nil || hit || e == nil {
		t.Fatalf("oversized build: e=%v hit=%v err=%v", e, hit, err)
	}
	if c.Len() != 0 || c.Stats().ResidentBytes != 0 {
		t.Fatal("oversized entry was admitted")
	}
}

// TestHooks: hit/miss/evict/resident hooks fire for the matching events.
func TestHooks(t *testing.T) {
	one := testEntry(t, 1)
	c := New(one.ResidentBytes())
	var hits, misses, evicts atomic.Int64
	var resident atomic.Int64
	c.SetHooks(Hooks{
		Hit:      func() { hits.Add(1) },
		Miss:     func() { misses.Add(1) },
		Evict:    func() { evicts.Add(1) },
		Resident: func(b int64) { resident.Store(b) },
	})
	c.GetOrBuild("a", func() (*Entry, error) { return testEntry(t, 1), nil })
	c.GetOrBuild("a", func() (*Entry, error) { return testEntry(t, 1), nil })
	c.GetOrBuild("b", func() (*Entry, error) { return testEntry(t, 2), nil }) // evicts a
	if hits.Load() != 1 || misses.Load() != 2 || evicts.Load() != 1 {
		t.Fatalf("hooks hits=%d misses=%d evicts=%d, want 1/2/1", hits.Load(), misses.Load(), evicts.Load())
	}
	if resident.Load() != c.Stats().ResidentBytes {
		t.Fatalf("resident hook %d, stats %d", resident.Load(), c.Stats().ResidentBytes)
	}
}

// TestSpecKey: equal specs share a key; seed, shape, or ranks changes
// produce distinct keys, and formatting does not enter the key.
func TestSpecKey(t *testing.T) {
	spec := func(seed uint64, cores int) *coreobject.NetworkSpec {
		return &coreobject.NetworkSpec{
			Seed: seed,
			Regions: []coreobject.RegionSpec{{
				Name:         "r",
				Cores:        cores,
				GrayFraction: 1,
				Proto: coreobject.NeuronProto{
					Weights:      [truenorth.NumAxonTypes]int16{1, 1, 1, 1},
					ThresholdMin: 1, ThresholdMax: 1,
					DelayMin: 1, DelayMax: 1,
					SynapseDensity: 0.1,
				},
			}},
		}
	}
	k1, err := SpecKey(spec(1, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := SpecKey(spec(1, 4), 2)
	if k1 != k2 {
		t.Fatal("equal specs got different keys")
	}
	for name, other := range map[string]string{
		"seed":  mustKey(t, spec(2, 4), 2),
		"cores": mustKey(t, spec(1, 8), 2),
		"ranks": mustKey(t, spec(1, 4), 4),
	} {
		if other == k1 {
			t.Fatalf("%s change did not change the key", name)
		}
	}
}

func mustKey(t *testing.T, spec *coreobject.NetworkSpec, ranks int) string {
	t.Helper()
	k, err := SpecKey(spec, ranks)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestModelKey: distinct bytes, distinct keys.
func TestModelKey(t *testing.T) {
	if ModelKey([]byte("a")) == ModelKey([]byte("b")) {
		t.Fatal("distinct model bytes share a key")
	}
	if ModelKey([]byte("a")) != ModelKey([]byte("a")) {
		t.Fatal("equal model bytes differ")
	}
}

// TestDistinctKeysDistinctEntries: different keys never alias.
func TestDistinctKeysDistinctEntries(t *testing.T) {
	c := New(0)
	var es []*Entry
	for i := 0; i < 4; i++ {
		e, _, err := c.GetOrBuild(fmt.Sprint(i), func() (*Entry, error) { return testEntry(t, uint64(i)), nil })
		if err != nil {
			t.Fatal(err)
		}
		es = append(es, e)
	}
	for i := 1; i < len(es); i++ {
		if es[i] == es[0] {
			t.Fatal("distinct keys aliased one entry")
		}
	}
	if c.Len() != 4 {
		t.Fatalf("resident entries %d, want 4", c.Len())
	}
}

// TestPinDefersEviction: a pinned entry survives LRU pressure that
// would otherwise evict it, and the deferred eviction lands the moment
// the last pin is released — so a resident session's image can never be
// dropped and rebuilt while in use.
func TestPinDefersEviction(t *testing.T) {
	one := testEntry(t, 1)
	per := one.ResidentBytes()
	c := New(2 * per) // room for two entries
	var evicts int
	c.SetHooks(Hooks{Evict: func() { evicts++ }})
	get := func(key string, tag uint64) {
		if _, _, err := c.GetOrBuild(key, func() (*Entry, error) { return testEntry(t, tag), nil }); err != nil {
			t.Fatal(err)
		}
	}
	get("a", 1)
	if !c.Pin("a") {
		t.Fatal("pinning a resident entry failed")
	}
	c.Pin("a") // pins nest: a second holder of the same image
	get("b", 2)
	get("c", 3) // over budget; a is LRU but pinned, so b evicts instead
	if _, hit, _ := c.GetOrBuild("a", func() (*Entry, error) { return testEntry(t, 1), nil }); !hit {
		t.Fatal("pinned entry a was evicted under pressure")
	}
	if _, hit, _ := c.GetOrBuild("b", func() (*Entry, error) { return testEntry(t, 2), nil }); hit {
		t.Fatal("unpinned entry b survived while the budget was exceeded")
	}
	// b's probe above rebuilt it, so the set is over budget again with a
	// still pinned. One unpin keeps the pin held; the second releases the
	// deferred eviction.
	c.Unpin("a")
	if _, hit, _ := c.GetOrBuild("a", func() (*Entry, error) { return testEntry(t, 1), nil }); !hit {
		t.Fatal("entry a evicted while still pinned once")
	}
	c.Unpin("a")
	if c.Pinned() != 0 {
		t.Fatalf("%d entries still pinned after final unpin", c.Pinned())
	}
	st := c.Stats()
	if st.ResidentBytes > 2*per {
		t.Fatalf("resident %d bytes exceeds budget %d after unpin", st.ResidentBytes, 2*per)
	}
	if evicts != int(st.Evictions) {
		t.Fatalf("evict hook fired %d times, stats say %d", evicts, st.Evictions)
	}
	if c.Pin("zzz") {
		t.Fatal("pinning an absent key must report false")
	}
}
