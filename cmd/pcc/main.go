// Command pcc runs the Parallel Compass Compiler standalone: it expands
// a CoreObject network description into an explicit model, reports
// compilation statistics, and optionally writes the explicit binary
// model for the set-up time comparison of §IV of the paper.
//
// Examples:
//
//	pcc -spec network.json -ranks 8
//	pcc -cocomac-cores 512 -ranks 8 -out model.bin -compare-io
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/cognitive-sim/compass/internal/cocomac"
	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/pcc"
)

func main() {
	var (
		specPath     = flag.String("spec", "", "CoreObject network description (JSON)")
		cocomacCores = flag.Int("cocomac-cores", 0, "compile the built-in CoCoMac network at this scale")
		seed         = flag.Uint64("seed", 2012, "CoCoMac network seed")
		ranks        = flag.Int("ranks", 8, "compiler ranks")
		ticks        = flag.Int("ticks", 100, "stimulus window for the built-in network")
		outPath      = flag.String("out", "", "write the explicit binary model here")
		compareIO    = flag.Bool("compare-io", false, "time the write+read of the explicit model against compilation")
	)
	flag.Parse()
	if err := run(*specPath, *cocomacCores, *seed, *ranks, *ticks, *outPath, *compareIO); err != nil {
		fmt.Fprintln(os.Stderr, "pcc:", err)
		os.Exit(1)
	}
}

func run(specPath string, cocomacCores int, seed uint64, ranks, ticks int, outPath string, compareIO bool) error {
	var spec *coreobject.NetworkSpec
	switch {
	case specPath != "" && cocomacCores > 0:
		return fmt.Errorf("select only one of -spec and -cocomac-cores")
	case specPath != "":
		f, err := os.Open(specPath)
		if err != nil {
			return err
		}
		s, err := coreobject.DecodeSpec(f)
		f.Close()
		if err != nil {
			return err
		}
		spec = s
	case cocomacCores > 0:
		net := cocomac.Generate(seed)
		s, err := net.ToSpec(cocomacCores, uint64(ticks))
		if err != nil {
			return err
		}
		spec = s
	default:
		return fmt.Errorf("select one of -spec or -cocomac-cores")
	}

	start := time.Now()
	res, err := pcc.Compile(spec, ranks)
	if err != nil {
		return err
	}
	compileTime := time.Since(start)
	m := res.Model
	fmt.Printf("compiled %q: %d cores, %d neurons, %d synapses on %d ranks in %v\n",
		spec.Name, m.NumCores(), m.NumNeurons(), m.NumSynapses(), res.Ranks, compileTime.Round(time.Millisecond))
	fmt.Printf("balancing: %d IPFP sweeps; negotiation: %d grant messages, %.2f MB\n",
		res.BalanceIterations, res.GrantMessages, float64(res.GrantBytes)/1e6)

	wired, enabled := 0, 0
	for _, cfg := range m.Cores {
		for j := range cfg.Neurons {
			if cfg.Neurons[j].Enabled {
				enabled++
				wired++
			}
		}
	}
	fmt.Printf("wired neurons: %d of %d (%.1f%%); %d input spikes generated\n",
		enabled, m.NumNeurons(), 100*float64(enabled)/float64(m.NumNeurons()), len(m.Inputs))

	if outPath != "" || compareIO {
		path := outPath
		if path == "" {
			f, err := os.CreateTemp("", "compass-model-*.bin")
			if err != nil {
				return err
			}
			path = f.Name()
			f.Close()
			defer os.Remove(path)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		t0 := time.Now()
		if err := coreobject.WriteModel(f, m); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		writeTime := time.Since(t0)
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("explicit model: %.2f MB written to %s in %v\n", float64(fi.Size())/1e6, path, writeTime.Round(time.Millisecond))
		if compareIO {
			g, err := os.Open(path)
			if err != nil {
				return err
			}
			t1 := time.Now()
			if _, err := coreobject.ReadModel(g); err != nil {
				g.Close()
				return err
			}
			readTime := time.Since(t1)
			g.Close()
			explicit := writeTime + readTime
			fmt.Printf("set-up comparison: compile %v vs explicit write+read %v (%.1fx)\n",
				compileTime.Round(time.Millisecond), explicit.Round(time.Millisecond),
				float64(explicit)/float64(compileTime))
		}
	}
	return nil
}
