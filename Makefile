# Developer entry points. `make check` is the pre-commit gate; `race`
# exercises the persistent worker pool and the shmem buffer swapping
# under the race detector on every change.

GO ?= go

.PHONY: build test race vet check bench bench-transport

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the simulator core and both communication runtimes: the
# worker pool, the MPI mailboxes, the PGAS windows, and the shmem
# zero-copy slice swapping all run under -race here.
race:
	$(GO) test -race ./internal/compass/... ./internal/mpi/... ./internal/pgas/...

vet:
	$(GO) vet ./...

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate BENCH_transport.json, the per-transport Network-phase
# throughput record (shmem must stay >= mpi on this workload).
bench-transport:
	BENCH_TRANSPORT_OUT=BENCH_transport.json $(GO) test -run TestTransportBenchArtifact -count=1 -v .
