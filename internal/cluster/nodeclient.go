package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/cognitive-sim/compass/internal/server"
)

// nodeClient speaks a compassd node's control plane. It is deliberately
// thin: the coordinator's correctness never depends on a node call
// succeeding — every mutation is idempotent or retried by a later
// monitor round.
type nodeClient struct {
	addr string
	hc   *http.Client
}

func newNodeClient(httpAddr string, timeout time.Duration) *nodeClient {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &nodeClient{addr: httpAddr, hc: &http.Client{Timeout: timeout}}
}

// doJSON issues one request and decodes a JSON response into out (when
// non-nil). Non-2xx responses surface the node's error envelope.
func (n *nodeClient) doJSON(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, "http://"+n.addr+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env struct {
			Error string `json:"error"`
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(raw, &env) == nil && env.Error != "" {
			return fmt.Errorf("cluster: node %s: %s", n.addr, env.Error)
		}
		return fmt.Errorf("cluster: node %s: %s", n.addr, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (n *nodeClient) createSession(req *server.CreateRequest) (*server.Info, error) {
	var info server.Info
	if err := n.doJSON(http.MethodPost, "/v1/sessions", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

func (n *nodeClient) importSession(req *server.ImportRequest) (*server.Info, error) {
	var info server.Info
	if err := n.doJSON(http.MethodPost, "/v1/sessions/import", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

func (n *nodeClient) exportSession(id string) (*server.ExportDoc, error) {
	var doc server.ExportDoc
	if err := n.doJSON(http.MethodPost, "/v1/sessions/"+id+"/export", nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

func (n *nodeClient) sessionInfo(id string) (*server.Info, error) {
	var info server.Info
	if err := n.doJSON(http.MethodGet, "/v1/sessions/"+id, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// lifecycle posts pause/resume/stop and returns the settled info.
func (n *nodeClient) lifecycle(id, verb string) (*server.Info, error) {
	var info server.Info
	if err := n.doJSON(http.MethodPost, "/v1/sessions/"+id+"/"+verb, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// step grants the session a tick budget and returns the settled info
// (the node holds the request open until the budget resolves).
func (n *nodeClient) step(id string, req *server.StepRequest) (*server.Info, error) {
	var info server.Info
	if err := n.doJSON(http.MethodPost, "/v1/sessions/"+id+"/step", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// scenarioReport folds a closed-loop progress report into the owning
// node's per-scenario telemetry.
func (n *nodeClient) scenarioReport(id string, req *server.ScenarioReportRequest) (*server.Info, error) {
	var info server.Info
	if err := n.doJSON(http.MethodPost, "/v1/sessions/"+id+"/scenario-report", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

func (n *nodeClient) deleteSession(id string) error {
	return n.doJSON(http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

func (n *nodeClient) checkpoint(id string) ([]byte, error) {
	resp, err := n.hc.Get("http://" + n.addr + "/v1/sessions/" + id + "/checkpoint")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: node %s checkpoint: %s: %s", n.addr, resp.Status, bytes.TrimSpace(raw))
	}
	return io.ReadAll(resp.Body)
}
