package compass

import (
	"reflect"
	"testing"
	"testing/quick"

	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// randomModel builds a deterministic pseudo-random model with nCores
// cores, stochastic-free dynamics (so every run is bit-identical), random
// inter-core wiring, and input drive on core 0.
func randomModel(nCores int, seed uint64) *truenorth.Model {
	r := prng.New(seed)
	m := &truenorth.Model{Seed: seed}
	for k := 0; k < nCores; k++ {
		cfg := &truenorth.CoreConfig{ID: truenorth.CoreID(k)}
		for a := 0; a < truenorth.CoreSize; a++ {
			cfg.AxonTypes[a] = uint8(r.Intn(truenorth.NumAxonTypes))
			// ~8 synapses per axon row.
			for s := 0; s < 8; s++ {
				cfg.SetSynapse(a, r.Intn(truenorth.CoreSize), true)
			}
		}
		for j := 0; j < truenorth.CoreSize; j++ {
			cfg.Neurons[j] = truenorth.NeuronParams{
				Weights:   [truenorth.NumAxonTypes]int16{2, 1, 3, -1},
				Leak:      -1,
				Threshold: int32(3 + r.Intn(6)),
				Reset:     0,
				Floor:     -32,
				Target: truenorth.SpikeTarget{
					Core:  truenorth.CoreID(r.Intn(nCores)),
					Axon:  uint16(r.Intn(truenorth.CoreSize)),
					Delay: uint8(1 + r.Intn(3)),
				},
				Enabled: true,
			}
		}
		m.Cores = append(m.Cores, cfg)
	}
	// Sustained external drive so activity persists.
	for tick := uint64(0); tick < 30; tick++ {
		for a := 0; a < 64; a++ {
			m.Inputs = append(m.Inputs, truenorth.InputSpike{
				Tick: tick,
				Core: truenorth.CoreID(int(tick) % nCores),
				Axon: uint16(r.Intn(truenorth.CoreSize)),
			})
		}
	}
	return m
}

// serialTrace runs the reference simulator and returns its sorted trace.
func serialTrace(t *testing.T, m *truenorth.Model, ticks int) ([]truenorth.SpikeEvent, uint64) {
	t.Helper()
	sim, err := truenorth.NewSerialSim(m)
	if err != nil {
		t.Fatal(err)
	}
	var trace []truenorth.SpikeEvent
	sim.OnSpike = func(tick uint64, s truenorth.Spike) {
		trace = append(trace, truenorth.SpikeEvent{FireTick: tick, Target: s.Target})
	}
	if err := sim.Run(ticks); err != nil {
		t.Fatal(err)
	}
	truenorth.SortSpikeEvents(trace)
	return trace, sim.TotalSpikes()
}

func TestConfigValidate(t *testing.T) {
	m := randomModel(4, 1)
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"ok", Config{Ranks: 2, ThreadsPerRank: 2}, true},
		{"zero ranks", Config{Ranks: 0, ThreadsPerRank: 1}, false},
		{"zero threads", Config{Ranks: 1, ThreadsPerRank: 0}, false},
		{"more ranks than cores", Config{Ranks: 9, ThreadsPerRank: 1}, false},
		{"bad transport", Config{Ranks: 1, ThreadsPerRank: 1, Transport: Transport(7)}, false},
		{"short placement", Config{Ranks: 2, ThreadsPerRank: 1, RankOf: []int{0}}, false},
		{"placement out of range", Config{Ranks: 2, ThreadsPerRank: 1, RankOf: []int{0, 1, 2, 0}}, false},
		{"valid placement", Config{Ranks: 2, ThreadsPerRank: 1, RankOf: []int{1, 0, 1, 0}}, true},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate(m)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestDefaultPlacementBalanced(t *testing.T) {
	cfg := Config{Ranks: 3, ThreadsPerRank: 1}
	p := cfg.placement(10)
	counts := make([]int, 3)
	for _, r := range p {
		counts[r]++
	}
	if counts[0] != 4 || counts[1] != 3 || counts[2] != 3 {
		t.Fatalf("placement counts %v", counts)
	}
	// Blocks must be contiguous.
	for i := 1; i < len(p); i++ {
		if p[i] < p[i-1] {
			t.Fatalf("placement not contiguous: %v", p)
		}
	}
}

func TestParallelMatchesSerialSingleRank(t *testing.T) {
	m := randomModel(6, 42)
	const ticks = 50
	want, wantSpikes := serialTrace(t, m, ticks)

	stats, err := Run(m, Config{Ranks: 1, ThreadsPerRank: 1, RecordTrace: true}, ticks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalSpikes != wantSpikes {
		t.Fatalf("parallel spikes %d, serial %d", stats.TotalSpikes, wantSpikes)
	}
	if !reflect.DeepEqual(stats.Trace, want) {
		t.Fatalf("trace mismatch: parallel %d events, serial %d", len(stats.Trace), len(want))
	}
}

// TestDecompositionInvariance is the repository's core correctness
// property: the spike trace is identical for every rank count, thread
// count, transport, and placement.
func TestDecompositionInvariance(t *testing.T) {
	m := randomModel(8, 7)
	const ticks = 40
	want, wantSpikes := serialTrace(t, m, ticks)
	if wantSpikes == 0 {
		t.Fatal("test model produced no spikes; test is vacuous")
	}

	r := prng.New(99)
	scattered := make([]int, 8)
	for i := range scattered {
		scattered[i] = r.Intn(3)
	}
	// Ensure every rank owns at least one core.
	scattered[0], scattered[1], scattered[2] = 0, 1, 2

	cases := []struct {
		name string
		cfg  Config
	}{
		{"1r1t-mpi", Config{Ranks: 1, ThreadsPerRank: 1, Transport: TransportMPI}},
		{"1r4t-mpi", Config{Ranks: 1, ThreadsPerRank: 4, Transport: TransportMPI}},
		{"2r1t-mpi", Config{Ranks: 2, ThreadsPerRank: 1, Transport: TransportMPI}},
		{"4r2t-mpi", Config{Ranks: 4, ThreadsPerRank: 2, Transport: TransportMPI}},
		{"8r3t-mpi", Config{Ranks: 8, ThreadsPerRank: 3, Transport: TransportMPI}},
		{"1r1t-pgas", Config{Ranks: 1, ThreadsPerRank: 1, Transport: TransportPGAS}},
		{"3r2t-pgas", Config{Ranks: 3, ThreadsPerRank: 2, Transport: TransportPGAS}},
		{"8r2t-pgas", Config{Ranks: 8, ThreadsPerRank: 2, Transport: TransportPGAS}},
		{"1r1t-shmem", Config{Ranks: 1, ThreadsPerRank: 1, Transport: TransportShmem}},
		{"4r2t-shmem", Config{Ranks: 4, ThreadsPerRank: 2, Transport: TransportShmem}},
		{"8r3t-shmem", Config{Ranks: 8, ThreadsPerRank: 3, Transport: TransportShmem}},
		{"scattered-mpi", Config{Ranks: 3, ThreadsPerRank: 2, Transport: TransportMPI, RankOf: scattered}},
		{"scattered-pgas", Config{Ranks: 3, ThreadsPerRank: 2, Transport: TransportPGAS, RankOf: scattered}},
		{"scattered-shmem", Config{Ranks: 3, ThreadsPerRank: 2, Transport: TransportShmem, RankOf: scattered}},
	}
	for _, tc := range cases {
		tc.cfg.RecordTrace = true
		stats, err := Run(m, tc.cfg, ticks)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if stats.TotalSpikes != wantSpikes {
			t.Errorf("%s: %d spikes, want %d", tc.name, stats.TotalSpikes, wantSpikes)
			continue
		}
		if !reflect.DeepEqual(stats.Trace, want) {
			t.Errorf("%s: trace differs from serial reference", tc.name)
		}
	}
}

func TestQuickDecompositionInvariance(t *testing.T) {
	// Property form over random models, decompositions, and transports.
	f := func(seed uint64, ranksRaw, threadsRaw, transportRaw uint8) bool {
		nCores := 6
		ranks := int(ranksRaw%4) + 1
		threads := int(threadsRaw%3) + 1
		transport := Transports()[int(transportRaw)%3]
		m := randomModel(nCores, seed)
		const ticks = 15
		ref, err := truenorth.NewSerialSim(m)
		if err != nil {
			return false
		}
		var want []truenorth.SpikeEvent
		ref.OnSpike = func(tick uint64, s truenorth.Spike) {
			want = append(want, truenorth.SpikeEvent{FireTick: tick, Target: s.Target})
		}
		if err := ref.Run(ticks); err != nil {
			return false
		}
		truenorth.SortSpikeEvents(want)
		stats, err := Run(m, Config{
			Ranks: ranks, ThreadsPerRank: threads,
			Transport: transport, RecordTrace: true,
		}, ticks)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(stats.Trace, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsConsistency(t *testing.T) {
	m := randomModel(6, 5)
	const ticks = 30
	stats, err := Run(m, Config{Ranks: 3, ThreadsPerRank: 2, RecordPerTick: true}, ticks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalSpikes != stats.LocalSpikes+stats.RemoteSpikes {
		t.Fatalf("spikes %d != local %d + remote %d", stats.TotalSpikes, stats.LocalSpikes, stats.RemoteSpikes)
	}
	if len(stats.PerTick) != ticks {
		t.Fatalf("PerTick has %d entries", len(stats.PerTick))
	}
	var tickFire, tickMsgs, tickRemote uint64
	for _, ts := range stats.PerTick {
		tickFire += ts.Firings
		tickMsgs += ts.Messages
		tickRemote += ts.RemoteSpikes
	}
	if tickFire != stats.TotalSpikes {
		t.Fatalf("per-tick firings %d != total %d", tickFire, stats.TotalSpikes)
	}
	if tickMsgs != stats.Messages {
		t.Fatalf("per-tick messages %d != total %d", tickMsgs, stats.Messages)
	}
	if tickRemote != stats.RemoteSpikes {
		t.Fatalf("per-tick remote %d != total %d", tickRemote, stats.RemoteSpikes)
	}
	if stats.WireBytes != stats.RemoteSpikes*truenorth.SpikeWireBytes {
		t.Fatalf("wire bytes %d for %d remote spikes", stats.WireBytes, stats.RemoteSpikes)
	}
	// Per-rank totals must agree with global totals.
	var rankFire, rankMsgs uint64
	cores := 0
	for _, rs := range stats.PerRank {
		rankFire += rs.Firings
		rankMsgs += rs.MessagesSent
		cores += rs.CoresOwned
	}
	if rankFire != stats.TotalSpikes || rankMsgs != stats.Messages || cores != stats.NumCores {
		t.Fatalf("per-rank totals disagree: fire %d msgs %d cores %d", rankFire, rankMsgs, cores)
	}
	// Message cap: at most ranks×(ranks-1) per tick.
	maxMsgs := uint64(ticks * 3 * 2)
	if stats.Messages > maxMsgs {
		t.Fatalf("messages %d exceed cap %d", stats.Messages, maxMsgs)
	}
}

func TestSingleRankHasNoRemoteTraffic(t *testing.T) {
	m := randomModel(4, 9)
	stats, err := Run(m, Config{Ranks: 1, ThreadsPerRank: 2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemoteSpikes != 0 || stats.Messages != 0 {
		t.Fatalf("single-rank run produced remote traffic: %d spikes, %d messages", stats.RemoteSpikes, stats.Messages)
	}
	if stats.LocalSpikes != stats.TotalSpikes {
		t.Fatal("local spikes must equal total on one rank")
	}
}

func TestDerivedMetrics(t *testing.T) {
	m := randomModel(4, 11)
	const ticks = 25
	stats, err := Run(m, Config{Ranks: 2, ThreadsPerRank: 1}, ticks)
	if err != nil {
		t.Fatal(err)
	}
	wantHz := float64(stats.TotalSpikes) / float64(4*truenorth.CoreSize) / ticks * 1000
	if got := stats.AvgFiringRateHz(); got != wantHz {
		t.Fatalf("AvgFiringRateHz = %v, want %v", got, wantHz)
	}
	if got := stats.MessagesPerTick(); got != float64(stats.Messages)/ticks {
		t.Fatalf("MessagesPerTick = %v", got)
	}
	if got := stats.SpikesPerTick(); got != float64(stats.RemoteSpikes)/ticks {
		t.Fatalf("SpikesPerTick = %v", got)
	}
	if got := stats.WireBytesPerTick(); got != float64(stats.WireBytes)/ticks {
		t.Fatalf("WireBytesPerTick = %v", got)
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	m := randomModel(4, 1)
	if _, err := Run(m, Config{Ranks: 0, ThreadsPerRank: 1}, 5); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := Run(m, Config{Ranks: 1, ThreadsPerRank: 1}, -1); err == nil {
		t.Fatal("negative ticks accepted")
	}
	bad := randomModel(4, 1)
	bad.Cores[0].Neurons[0].Threshold = 0
	if _, err := Run(bad, Config{Ranks: 1, ThreadsPerRank: 1}, 5); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestZeroTicksRun(t *testing.T) {
	m := randomModel(4, 1)
	stats, err := Run(m, Config{Ranks: 2, ThreadsPerRank: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalSpikes != 0 || stats.Ticks != 0 {
		t.Fatalf("zero-tick run: %+v", stats)
	}
}

func TestTransportString(t *testing.T) {
	if TransportMPI.String() != "mpi" || TransportPGAS.String() != "pgas" ||
		TransportShmem.String() != "shmem" || Transport(9).String() != "unknown" {
		t.Fatal("transport names wrong")
	}
}

func TestParseTransport(t *testing.T) {
	for _, tr := range Transports() {
		got, err := ParseTransport(tr.String())
		if err != nil || got != tr {
			t.Fatalf("ParseTransport(%q) = %v, %v", tr.String(), got, err)
		}
	}
	if _, err := ParseTransport("carrier-pigeon"); err == nil {
		t.Fatal("unknown transport name accepted")
	}
}

func BenchmarkSimMPI4Ranks(b *testing.B) {
	m := randomModel(16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, Config{Ranks: 4, ThreadsPerRank: 2, Transport: TransportMPI}, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimPGAS4Ranks(b *testing.B) {
	m := randomModel(16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, Config{Ranks: 4, ThreadsPerRank: 2, Transport: TransportPGAS}, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLoadImbalance(t *testing.T) {
	m := randomModel(6, 5)
	stats, err := Run(m, Config{Ranks: 3, ThreadsPerRank: 1}, 30)
	if err != nil {
		t.Fatal(err)
	}
	imb := stats.LoadImbalance()
	// 6 cores over 3 ranks is perfectly balanced.
	if imb.Cores != 1 {
		t.Fatalf("core imbalance %v, want 1", imb.Cores)
	}
	// Ratios are max/mean: always >= 1 and <= ranks.
	for name, v := range map[string]float64{
		"compute": imb.Compute, "firings": imb.Firings, "sends": imb.Sends,
	} {
		if v < 1 || v > 3 {
			t.Fatalf("%s imbalance %v outside [1, ranks]", name, v)
		}
	}
	// Skewed placement: one rank owns 4 of 6 cores.
	skew, err := Run(m, Config{
		Ranks: 2, ThreadsPerRank: 1,
		RankOf: []int{0, 0, 0, 0, 1, 1},
	}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got := skew.LoadImbalance().Cores; got <= 1.3 {
		t.Fatalf("skewed placement imbalance %v, want > 1.3", got)
	}
	// Empty stats degrade gracefully.
	if (&RunStats{}).LoadImbalance() != (Imbalance{}) {
		t.Fatal("empty stats imbalance not zero")
	}
}

func TestMeasurePhases(t *testing.T) {
	m := randomModel(6, 13)
	stats, err := Run(m, Config{Ranks: 2, ThreadsPerRank: 1, MeasurePhases: true}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PhaseSeconds.Synapse <= 0 {
		t.Fatalf("synapse phase time %v", stats.PhaseSeconds.Synapse)
	}
	if stats.PhaseSeconds.Neuron <= 0 {
		t.Fatalf("neuron phase time %v", stats.PhaseSeconds.Neuron)
	}
	if stats.PhaseSeconds.Network <= 0 {
		t.Fatalf("network phase time %v", stats.PhaseSeconds.Network)
	}
	// The deprecated fused accessor equals the sum of the split fields.
	if got, want := stats.PhaseSeconds.SynapseNeuron(), stats.PhaseSeconds.Synapse+stats.PhaseSeconds.Neuron; got != want {
		t.Fatalf("SynapseNeuron() = %v, want %v", got, want)
	}
	// Without the flag, phase times stay zero.
	plain, err := Run(m, Config{Ranks: 2, ThreadsPerRank: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if plain.PhaseSeconds != (PhaseSeconds{}) {
		t.Fatalf("unmeasured run has phase times: %+v", plain.PhaseSeconds)
	}
}
