// Command clustersmoke is the end-to-end smoke test for cluster-mode
// compassd: it spawns a coordinator and three daemon processes, creates
// sessions through the cluster control plane with a stream-proxy client
// attached, live-migrates one session between daemons, SIGKILLs the
// node owning another to force heartbeat-lapse failover, and verifies
// both sessions' spike traces and final checkpoints are byte-identical
// to solo reference runs on a standalone daemon.
//
// It exits non-zero on the first failed expectation. All output also
// goes to -log for CI artifact upload.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/cognitive-sim/compass/internal/cluster"
	"github.com/cognitive-sim/compass/internal/server"
	"github.com/cognitive-sim/compass/internal/spikeio"
)

var (
	compassd = flag.String("compassd", "", "path to the compassd binary (required)")
	workDir  = flag.String("dir", "cluster-smoke", "working directory for addr files and logs")
	logPath  = flag.String("log", "", "also write output to this file (default <dir>/cluster-smoke.log)")
)

type proc struct {
	name       string
	cmd        *exec.Cmd
	httpAddr   string
	streamAddr string
}

// model is the shared session shape: a seeded CoCoMac network, paced by
// a wall-clock stall fault so cluster events can fire mid-run. Stalls
// never change spike output, and migration/failover imports strip fault
// rules anyway, so the unfaulted solo reference must match bit-for-bit.
func model(name, faults string) map[string]any {
	return map[string]any{
		"name":         name,
		"source":       map[string]any{"kind": "cocomac", "cores": 96, "seed": 11},
		"ranks":        2,
		"threads":      2,
		"transport":    "shmem",
		"ticks":        300,
		"chunk_ticks":  25,
		"start_paused": true,
		"faults":       faults,
	}
}

// injected is sent while each session is parked at tick 0: one spike
// before the first cluster event, one after it (carried across the
// ownership change by the coordinator's inject journal).
var injected = []spikeio.Event{
	{Tick: 40, Core: 0, Axon: 1},
	{Tick: 220, Core: 1, Axon: 2},
}

func main() {
	flag.Parse()
	if *compassd == "" {
		log.Fatal("clustersmoke: -compassd is required")
	}
	if err := os.MkdirAll(*workDir, 0o755); err != nil {
		log.Fatal(err)
	}
	lp := *logPath
	if lp == "" {
		lp = filepath.Join(*workDir, "cluster-smoke.log")
	}
	lf, err := os.Create(lp)
	if err != nil {
		log.Fatal(err)
	}
	defer lf.Close()
	out := io.MultiWriter(os.Stdout, lf)
	log.SetOutput(out)
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	// Solo references on a standalone daemon, faults stripped: the
	// cluster runs must reproduce these byte-for-byte.
	solo := startProc(out, "solo", "-listen", "127.0.0.1:0", "-stream-listen", "127.0.0.1:0")
	refMigEvents, refMigCkpt := runReference(solo, model("ref-migrate", ""))
	refKillEvents, refKillCkpt := runReference(solo, model("ref-kill", ""))
	stopProc(solo, syscall.SIGTERM)
	log.Printf("solo references: %d and %d egress records", len(refMigEvents), len(refKillEvents))

	// The fleet: one coordinator, three daemons. A short heartbeat makes
	// the kill-failover drill take ~2s instead of ~8s.
	coord := startProc(out, "coord", "-coordinator",
		"-listen", "127.0.0.1:0", "-stream-listen", "127.0.0.1:0",
		"-heartbeat", "500ms", "-lapse-factor", "4")
	nodes := make(map[string]*proc, 3)
	for _, name := range []string{"n1", "n2", "n3"} {
		p := startProc(out, name,
			"-listen", "127.0.0.1:0", "-stream-listen", "127.0.0.1:0",
			"-join", coord.httpAddr, "-node-id", name)
		nodes[name] = p
	}
	waitNodes(coord.httpAddr, 3)
	log.Printf("cluster up: coordinator %s + 3 nodes", coord.httpAddr)

	// Drill 1: live migration. Pause mid-run, move to an explicit
	// target, resume; the trace and final checkpoint must match the
	// unmigrated reference.
	mig := createCluster(coord.httpAddr, model("smoke-migrate", "stall:rank=0,k=6"))
	log.Printf("session %s placed on %s", mig.ClusterID, mig.Node)
	migEvents, migCkpt, migFinal := driveCluster(coord, mig.ClusterID, 400*time.Millisecond, func() {
		postOK(coord.httpAddr, "/v1/cluster/sessions/"+mig.ClusterID+"/pause")
		target := otherNode(coord.httpAddr, mig.Node)
		st := migrate(coord.httpAddr, mig.ClusterID, target)
		if st.Node == mig.Node {
			log.Fatalf("migration stayed on %s", mig.Node)
		}
		log.Printf("session %s migrated %s -> %s at committed tick %d",
			mig.ClusterID, mig.Node, st.Node, st.CommittedTick)
		postOK(coord.httpAddr, "/v1/cluster/sessions/"+mig.ClusterID+"/resume")
	})
	if migFinal.Migrations != 1 || migFinal.EndState != "done" {
		log.Fatalf("migrated session final status: %+v", migFinal)
	}
	compareRun("migration", migEvents, refMigEvents, migCkpt, refMigCkpt)

	// Drill 2: chaos kill. SIGKILL the owner daemon mid-run; the
	// heartbeat lapse declares it dead and the session is restored from
	// its last pushed boundary on a surviving node — still
	// byte-identical, because uncommitted egress was held back by the
	// proxy and replayed ticks reproduce it exactly.
	kill := createCluster(coord.httpAddr, model("smoke-kill", "stall:rank=0,k=6"))
	log.Printf("session %s placed on %s", kill.ClusterID, kill.Node)
	// The settle spans several chunk boundaries (a 25-tick chunk of this
	// model takes ~1.5s) so the agent has pushed checkpoints and the
	// failover restores from a boundary rather than recreating from
	// tick 0.
	killEvents, killCkpt, killFinal := driveCluster(coord, kill.ClusterID, 4*time.Second, func() {
		owner := nodes[kill.Node]
		if owner == nil {
			log.Fatalf("session owner %q is not a spawned node", kill.Node)
		}
		log.Printf("SIGKILL node %s (pid %d)", kill.Node, owner.cmd.Process.Pid)
		stopProc(owner, syscall.SIGKILL)
	})
	if killFinal.Restores < 1 || killFinal.EndState != "done" {
		log.Fatalf("killed session final status: %+v", killFinal)
	}
	if killFinal.Node == kill.Node {
		log.Fatalf("session was not restored off its killed home %s", kill.Node)
	}
	log.Printf("session %s restored on %s after %d restore(s)",
		kill.ClusterID, killFinal.Node, killFinal.Restores)
	compareRun("kill-failover", killEvents, refKillEvents, killCkpt, refKillCkpt)

	for name, p := range nodes {
		if name != kill.Node {
			stopProc(p, syscall.SIGTERM)
		}
	}
	stopProc(coord, syscall.SIGTERM)
	log.Printf("cluster-smoke PASS")
}

// runReference drives one session on the standalone daemon: inject
// while parked, resume, collect the full egress trace, download the
// final checkpoint.
func runReference(d *proc, req map[string]any) ([]spikeio.Event, []byte) {
	info := createSession(d.httpAddr, req)
	sc, err := server.DialStream(d.streamAddr, info.ID, server.StreamFlagInject|server.StreamFlagSubscribe)
	if err != nil {
		log.Fatalf("dial solo stream: %v", err)
	}
	defer sc.Close()
	if err := sc.Send(injected); err != nil {
		log.Fatalf("solo inject: %v", err)
	}
	results := make(chan streamResult, 1)
	go collect(sc, results)
	postOK(d.httpAddr, "/v1/sessions/"+info.ID+"/resume")
	res := waitStream(results)
	return res.events, getBytes(d.httpAddr, "/v1/sessions/"+info.ID+"/checkpoint")
}

// driveCluster drives one cluster session through the coordinator: a
// stream-proxy client attaches first, spikes are injected while the
// session is parked, mid runs once the session is underway, and the
// trace, final checkpoint, and final status are returned after EOF.
func driveCluster(coord *proc, id string, settle time.Duration, mid func()) ([]spikeio.Event, []byte, *cluster.SessionStatus) {
	sc, err := server.DialStream(coord.streamAddr, id, server.StreamFlagInject|server.StreamFlagSubscribe)
	if err != nil {
		log.Fatalf("dial proxy stream: %v", err)
	}
	defer sc.Close()
	if err := sc.Send(injected); err != nil {
		log.Fatalf("proxy inject: %v", err)
	}
	results := make(chan streamResult, 1)
	go collect(sc, results)
	postOK(coord.httpAddr, "/v1/cluster/sessions/"+id+"/resume")

	time.Sleep(settle)
	mid()

	res := waitStream(results)
	final := waitEnded(coord.httpAddr, id, 60*time.Second)
	ckpt := getBytes(coord.httpAddr, "/v1/cluster/sessions/"+id+"/checkpoint")
	return res.events, ckpt, final
}

func compareRun(label string, got, want []spikeio.Event, gotCkpt, wantCkpt []byte) {
	sortEvents(got)
	sortEvents(want)
	if len(got) != len(want) {
		log.Fatalf("%s: trace has %d records, reference %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			log.Fatalf("%s: trace diverges at record %d: %+v vs %+v", label, i, got[i], want[i])
		}
	}
	if !bytes.Equal(gotCkpt, wantCkpt) {
		log.Fatalf("%s: final checkpoint differs (%d vs %d bytes)", label, len(gotCkpt), len(wantCkpt))
	}
	log.Printf("%s: %d egress records and %d-byte checkpoint match the solo reference",
		label, len(got), len(gotCkpt))
}

type streamResult struct {
	events []spikeio.Event
	err    error
}

func collect(sc *server.StreamClient, results chan<- streamResult) {
	var events []spikeio.Event
	for {
		frame, err := sc.Recv()
		if err != nil {
			if err == io.EOF {
				err = nil
			}
			results <- streamResult{events: events, err: err}
			return
		}
		events = append(events, frame...)
	}
}

func waitStream(results <-chan streamResult) streamResult {
	select {
	case res := <-results:
		if res.err != nil {
			log.Fatalf("stream error: %v", res.err)
		}
		return res
	case <-time.After(120 * time.Second):
		log.Fatal("stream never reached EOF")
		return streamResult{}
	}
}

func sortEvents(evs []spikeio.Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		if a.Core != b.Core {
			return a.Core < b.Core
		}
		return a.Axon < b.Axon
	})
}

// ---- process management ----------------------------------------------

func startProc(out io.Writer, name string, args ...string) *proc {
	dir := filepath.Join(*workDir, name)
	addrFile := filepath.Join(dir, "addrs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	os.Remove(addrFile)
	args = append(args, "-addr-file", addrFile, "-checkpoint-dir", filepath.Join(dir, "checkpoints"))
	cmd := exec.Command(*compassd, args...)
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		log.Fatalf("start %s: %v", name, err)
	}
	p := &proc{name: name, cmd: cmd}
	deadline := time.Now().Add(15 * time.Second)
	for {
		raw, err := os.ReadFile(addrFile)
		if err == nil {
			for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
				if v, ok := strings.CutPrefix(line, "http="); ok {
					p.httpAddr = v
				}
				if v, ok := strings.CutPrefix(line, "stream="); ok {
					p.streamAddr = v
				}
			}
			if p.httpAddr != "" && p.streamAddr != "" {
				return p
			}
		}
		if time.Now().After(deadline) {
			log.Fatalf("%s did not write %s", name, addrFile)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func stopProc(p *proc, sig syscall.Signal) {
	if err := p.cmd.Process.Signal(sig); err != nil {
		log.Fatalf("signal %s: %v", p.name, err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if sig == syscall.SIGTERM && err != nil {
			log.Fatalf("%s exited with error: %v", p.name, err)
		}
	case <-time.After(60 * time.Second):
		p.cmd.Process.Kill()
		log.Fatalf("%s did not exit within 60s of signal %v", p.name, sig)
	}
}

// ---- HTTP helpers -----------------------------------------------------

func waitNodes(addr string, want int) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		var nodes struct {
			Nodes []cluster.NodeStatus `json:"nodes"`
		}
		getJSON(addr, "/v1/cluster/nodes", &nodes)
		alive := 0
		for _, n := range nodes.Nodes {
			if n.Alive {
				alive++
			}
		}
		if alive >= want {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("only %d/%d nodes registered alive", alive, want)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func otherNode(addr, not string) string {
	var nodes struct {
		Nodes []cluster.NodeStatus `json:"nodes"`
	}
	getJSON(addr, "/v1/cluster/nodes", &nodes)
	ids := make([]string, 0, len(nodes.Nodes))
	for _, n := range nodes.Nodes {
		if n.Alive && n.ID != not {
			ids = append(ids, n.ID)
		}
	}
	sort.Strings(ids)
	if len(ids) == 0 {
		log.Fatalf("no alive node other than %s", not)
	}
	return ids[0]
}

func createCluster(addr string, req map[string]any) *cluster.SessionStatus {
	var st cluster.SessionStatus
	postJSON(addr, "/v1/cluster/sessions", req, &st, http.StatusCreated)
	return &st
}

func createSession(addr string, req map[string]any) server.Info {
	var info server.Info
	postJSON(addr, "/v1/sessions", req, &info, http.StatusCreated)
	return info
}

func migrate(addr, id, target string) *cluster.SessionStatus {
	var st cluster.SessionStatus
	postJSON(addr, "/v1/cluster/sessions/"+id+"/migrate",
		map[string]any{"target": target}, &st, http.StatusOK)
	return &st
}

func waitEnded(addr, id string, timeout time.Duration) *cluster.SessionStatus {
	deadline := time.Now().Add(timeout)
	for {
		var st cluster.SessionStatus
		getJSON(addr, "/v1/cluster/sessions/"+id, &st)
		if st.Ended {
			return &st
		}
		if time.Now().After(deadline) {
			log.Fatalf("session %s did not end within %v (node %s, state %q)",
				id, timeout, st.Node, st.EndState)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func postJSON(addr, path string, req any, into any, wantStatus int) {
	body, _ := json.Marshal(req)
	resp, err := http.Post("http://"+addr+path, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, msg)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			log.Fatalf("POST %s: decode: %v", path, err)
		}
	}
}

func postOK(addr, path string) {
	postJSON(addr, path, nil, nil, http.StatusOK)
}

func getJSON(addr, path string, into any) {
	raw := getBytes(addr, path)
	if err := json.Unmarshal(raw, into); err != nil {
		log.Fatalf("GET %s: decode: %v", path, err)
	}
}

func getBytes(addr, path string) []byte {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		log.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, msg)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("GET %s: %v", path, err)
	}
	return raw
}
