package coreobject

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/cognitive-sim/compass/internal/truenorth"
)

// The checkpoint binary format: magic "CMPC" | uint32 version |
// uint64 tick | uint64 numCores | (v2+) uint16 hashLen | hashLen model
// hash bytes | per-core state records. Everything is little-endian. A
// record is: uint32 id | 256×int32 potentials | 256×uint32 axon
// buffers | 4×uint64 PRNG state.
//
// Version 2 added the model-hash field so a checkpoint names the image
// content address (truenorth.Image.Hash) it was taken against; resuming
// against a different model fails with a clear mismatch error instead
// of restoring wrong state. Version 1 files (no hash) remain readable.
const (
	checkpointMagic      = "CMPC"
	checkpointVersionV1  = 1
	checkpointVersion    = 2
	checkpointMaxHashLen = 1024
)

// CheckpointRecordBytes is the wire size of one core's state.
const CheckpointRecordBytes = 4 + truenorth.CoreSize*4 + truenorth.CoreSize*4 + 4*8

// WriteCheckpoint serializes a simulation checkpoint.
func WriteCheckpoint(w io.Writer, cp *truenorth.Checkpoint) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	if len(cp.ModelHash) > checkpointMaxHashLen {
		return fmt.Errorf("coreobject: checkpoint model hash of %d bytes exceeds limit", len(cp.ModelHash))
	}
	hdr := make([]byte, 4+8+8+2)
	binary.LittleEndian.PutUint32(hdr[0:], checkpointVersion)
	binary.LittleEndian.PutUint64(hdr[4:], cp.Tick)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(cp.States)))
	binary.LittleEndian.PutUint16(hdr[20:], uint16(len(cp.ModelHash)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if _, err := bw.WriteString(cp.ModelHash); err != nil {
		return err
	}
	buf := make([]byte, CheckpointRecordBytes)
	for i := range cp.States {
		s := &cp.States[i]
		off := 0
		binary.LittleEndian.PutUint32(buf[off:], uint32(s.ID))
		off += 4
		for _, v := range s.Potentials {
			binary.LittleEndian.PutUint32(buf[off:], uint32(v))
			off += 4
		}
		for _, v := range s.AxonBuf {
			binary.LittleEndian.PutUint32(buf[off:], v)
			off += 4
		}
		for _, v := range s.RNG {
			binary.LittleEndian.PutUint64(buf[off:], v)
			off += 8
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*truenorth.Checkpoint, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magicBuf := make([]byte, 4)
	if _, err := io.ReadFull(br, magicBuf); err != nil {
		return nil, fmt.Errorf("coreobject: read checkpoint magic: %w", err)
	}
	if string(magicBuf) != checkpointMagic {
		return nil, fmt.Errorf("coreobject: bad checkpoint magic %q", magicBuf)
	}
	hdr := make([]byte, 4+8+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("coreobject: read checkpoint header: %w", err)
	}
	version := binary.LittleEndian.Uint32(hdr[0:])
	if version != checkpointVersionV1 && version != checkpointVersion {
		return nil, fmt.Errorf("coreobject: unsupported checkpoint version %d (this build reads versions %d-%d)",
			version, checkpointVersionV1, checkpointVersion)
	}
	cp := &truenorth.Checkpoint{Tick: binary.LittleEndian.Uint64(hdr[4:])}
	numCores := binary.LittleEndian.Uint64(hdr[12:])
	if version >= 2 {
		var hashLenBuf [2]byte
		if _, err := io.ReadFull(br, hashLenBuf[:]); err != nil {
			return nil, fmt.Errorf("coreobject: read checkpoint hash length: %w", err)
		}
		hashLen := binary.LittleEndian.Uint16(hashLenBuf[:])
		if hashLen > checkpointMaxHashLen {
			return nil, fmt.Errorf("coreobject: implausible checkpoint hash length %d", hashLen)
		}
		if hashLen > 0 {
			hashBuf := make([]byte, hashLen)
			if _, err := io.ReadFull(br, hashBuf); err != nil {
				return nil, fmt.Errorf("coreobject: read checkpoint model hash: %w", err)
			}
			cp.ModelHash = string(hashBuf)
		}
	}
	const maxCores = 1 << 28
	if numCores > maxCores {
		return nil, fmt.Errorf("coreobject: implausible checkpoint core count %d", numCores)
	}
	cp.States = make([]truenorth.CoreState, numCores)
	buf := make([]byte, CheckpointRecordBytes)
	for i := uint64(0); i < numCores; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("coreobject: read checkpoint core %d: %w", i, err)
		}
		s := &cp.States[i]
		off := 0
		s.ID = truenorth.CoreID(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		for j := range s.Potentials {
			s.Potentials[j] = int32(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
		for j := range s.AxonBuf {
			s.AxonBuf[j] = binary.LittleEndian.Uint32(buf[off:])
			off += 4
		}
		for j := range s.RNG {
			s.RNG[j] = binary.LittleEndian.Uint64(buf[off:])
			off += 8
		}
		if int(s.ID) != int(i) {
			return nil, fmt.Errorf("coreobject: checkpoint core %d has ID %d", i, s.ID)
		}
	}
	return cp, nil
}
