package truenorth

import (
	"testing"
)

// chainModel builds nCores cores where core k neuron 0 targets core
// (k+1)%nCores axon 0 with the given delay, axon 0 drives neuron 0 with
// weight 1, and threshold 1 — so a single injected spike circulates
// forever around the ring.
func chainModel(nCores int, delay uint8) *Model {
	m := &Model{Seed: 7}
	for k := 0; k < nCores; k++ {
		cfg := &CoreConfig{ID: CoreID(k)}
		cfg.SetSynapse(0, 0, true)
		n := testNeuron(1, SpikeTarget{Core: CoreID((k + 1) % nCores), Axon: 0, Delay: delay})
		cfg.Neurons[0] = n
		m.Cores = append(m.Cores, cfg)
	}
	return m
}

func TestModelValidate(t *testing.T) {
	m := chainModel(3, 1)
	if err := m.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}

	bad := chainModel(3, 1)
	bad.Cores[1].ID = 5
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched core ID accepted")
	}

	bad = chainModel(3, 1)
	bad.Cores[0].Neurons[0].Target.Core = 99
	if err := bad.Validate(); err == nil {
		t.Fatal("dangling neuron target accepted")
	}

	bad = chainModel(3, 1)
	bad.Inputs = append(bad.Inputs, InputSpike{Tick: 0, Core: 50, Axon: 0})
	if err := bad.Validate(); err == nil {
		t.Fatal("dangling input accepted")
	}

	bad = chainModel(3, 1)
	bad.Inputs = append(bad.Inputs, InputSpike{Tick: 0, Core: 0, Axon: CoreSize})
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range input axon accepted")
	}

	bad = chainModel(3, 1)
	bad.Cores[2] = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil core accepted")
	}
}

func TestModelCounts(t *testing.T) {
	m := chainModel(4, 1)
	if m.NumCores() != 4 {
		t.Fatalf("NumCores = %d", m.NumCores())
	}
	if m.NumNeurons() != 4*CoreSize {
		t.Fatalf("NumNeurons = %d", m.NumNeurons())
	}
	if m.NumSynapses() != 4 {
		t.Fatalf("NumSynapses = %d, want 4", m.NumSynapses())
	}
}

func TestSerialSimRingCirculation(t *testing.T) {
	// One spike injected into core 0 at tick 0 circulates a 4-core ring
	// with delay 1: the neuron on core k fires at ticks k, k+4, k+8, ...
	// hmm — with delay 1 the spike fires core 0 at t=0, arrives core 1 at
	// t=1, fires there at t=1, etc. Over 40 ticks that is 40 firings.
	m := chainModel(4, 1)
	m.Inputs = []InputSpike{{Tick: 0, Core: 0, Axon: 0}}
	sim, err := NewSerialSim(m)
	if err != nil {
		t.Fatal(err)
	}
	var events []SpikeEvent
	sim.OnSpike = func(tick uint64, s Spike) {
		events = append(events, SpikeEvent{FireTick: tick, Target: s.Target})
	}
	if err := sim.Run(40); err != nil {
		t.Fatal(err)
	}
	if sim.TotalSpikes() != 40 {
		t.Fatalf("TotalSpikes = %d, want 40", sim.TotalSpikes())
	}
	// Firing at tick t must come from core t%4, targeting core (t+1)%4.
	for _, ev := range events {
		if want := CoreID((ev.FireTick + 1) % 4); ev.Target.Core != want {
			t.Fatalf("tick %d spike targets core %d, want %d", ev.FireTick, ev.Target.Core, want)
		}
	}
}

func TestSerialSimDelayStretchesPeriod(t *testing.T) {
	// With delay 3 in a 2-core ring, each hop takes 3 ticks: firings land
	// at ticks 0, 3, 6, ... so 10 firings in 30 ticks.
	m := chainModel(2, 3)
	m.Inputs = []InputSpike{{Tick: 0, Core: 0, Axon: 0}}
	sim, err := NewSerialSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(30); err != nil {
		t.Fatal(err)
	}
	if sim.TotalSpikes() != 10 {
		t.Fatalf("TotalSpikes = %d, want 10", sim.TotalSpikes())
	}
}

func TestSerialSimNoInputNoSpikes(t *testing.T) {
	m := chainModel(4, 1)
	sim, err := NewSerialSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(20); err != nil {
		t.Fatal(err)
	}
	if sim.TotalSpikes() != 0 {
		t.Fatalf("quiescent network fired %d spikes", sim.TotalSpikes())
	}
}

func TestSerialSimInjectValidation(t *testing.T) {
	m := chainModel(2, 1)
	sim, err := NewSerialSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(0, 0, MaxDelay+1); err == nil {
		t.Fatal("inject beyond window accepted")
	}
	if err := sim.Inject(9, 0, 0); err == nil {
		t.Fatal("inject to missing core accepted")
	}
	if err := sim.Inject(0, CoreSize, 0); err == nil {
		t.Fatal("inject to bad axon accepted")
	}
	if err := sim.Inject(0, 0, 2); err != nil {
		t.Fatalf("valid inject rejected: %v", err)
	}
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if sim.TotalSpikes() == 0 {
		t.Fatal("injected spike produced no activity")
	}
}

func TestSerialSimRejectsInvalidModel(t *testing.T) {
	m := chainModel(2, 1)
	m.Cores[0].Neurons[0].Threshold = 0
	if _, err := NewSerialSim(m); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestSortSpikeEvents(t *testing.T) {
	ev := []SpikeEvent{
		{FireTick: 2, Target: SpikeTarget{Core: 0, Axon: 0, Delay: 1}},
		{FireTick: 1, Target: SpikeTarget{Core: 1, Axon: 5, Delay: 2}},
		{FireTick: 1, Target: SpikeTarget{Core: 1, Axon: 4, Delay: 2}},
		{FireTick: 1, Target: SpikeTarget{Core: 0, Axon: 9, Delay: 3}},
	}
	SortSpikeEvents(ev)
	if ev[0].Target.Core != 0 || ev[0].FireTick != 1 {
		t.Fatalf("sort order wrong: %+v", ev)
	}
	if ev[1].Target.Axon != 4 || ev[2].Target.Axon != 5 {
		t.Fatalf("axon tiebreak wrong: %+v", ev)
	}
	if ev[3].FireTick != 2 {
		t.Fatalf("tick ordering wrong: %+v", ev)
	}
}

func BenchmarkCoreTickDense(b *testing.B) {
	// Fully wired core with every axon spiking each tick: worst-case
	// Synapse phase (65536 synaptic events per tick).
	cfg := &CoreConfig{ID: 0}
	for i := 0; i < CoreSize; i++ {
		for j := 0; j < CoreSize; j++ {
			cfg.SetSynapse(i, j, true)
		}
		n := testNeuron(1<<30, defaultTarget())
		cfg.Neurons[i] = n
	}
	c := NewCore(cfg, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick := uint64(i)
		for a := 0; a < CoreSize; a++ {
			_ = c.ScheduleSpike(a, tick+1, tick)
		}
		c.Tick(tick+1, func(Spike) {})
	}
}

func BenchmarkCoreTickSparse(b *testing.B) {
	// Typical biological operating point: ~26 synapses per axon row
	// (10% density), one axon in eight spiking per tick.
	cfg := &CoreConfig{ID: 0}
	for i := 0; i < CoreSize; i++ {
		for j := i; j < i+26; j++ {
			cfg.SetSynapse(i, j%CoreSize, true)
		}
		cfg.Neurons[i] = testNeuron(1<<30, defaultTarget())
	}
	c := NewCore(cfg, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick := uint64(i)
		for a := 0; a < CoreSize; a += 8 {
			_ = c.ScheduleSpike(a, tick+1, tick)
		}
		c.Tick(tick+1, func(Spike) {})
	}
}
