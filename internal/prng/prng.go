// Package prng provides the deterministic pseudo-random number generators
// used throughout the Compass simulator.
//
// TrueNorth hardware incorporates pseudo-random number generators with
// configurable seeds so that stochastic neuron behaviour is exactly
// reproducible; Compass must match the hardware bit for bit (the paper
// calls Compass "the key contract between our hardware architects and
// software algorithm/application designers"). Every source of randomness
// in this repository therefore flows through this package: each simulated
// neurosynaptic core owns an independent Stream seeded from the model
// seed and the core's global ID, which makes simulation output invariant
// under any partitioning of cores across ranks and threads.
//
// The generator is SplitMix64 for seeding and xoshiro256** for the
// stream. Both are tiny, fast, allocation-free, and well studied. The
// actual TrueNorth hardware PRNG is an LFSR; any fixed deterministic
// generator preserves the property that matters for the simulator —
// reproducibility under a configurable seed — so we use a generator with
// better statistical quality.
package prng

import (
	"errors"
	"math"
	"math/bits"
)

// SplitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand seeds into full generator states; it is also a
// perfectly serviceable standalone generator for non-critical mixing.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes x through one SplitMix64 round. It is used to derive
// per-core seeds from (model seed, core ID) pairs.
func Mix64(x uint64) uint64 {
	return SplitMix64(&x)
}

// Stream is a deterministic xoshiro256** generator. The zero value is not
// a valid stream; construct one with New.
type Stream struct {
	s [4]uint64
}

// New returns a Stream seeded from seed via SplitMix64 expansion, per the
// generator authors' recommendation. Distinct seeds give independent
// streams for all practical purposes.
func New(seed uint64) *Stream {
	var st Stream
	st.Reseed(seed)
	return &st
}

// NewCoreStream derives the stream for a particular core of a model:
// distinct (modelSeed, coreID) pairs map to distinct stream seeds, so the
// stream a core sees does not depend on which rank or thread simulates it.
func NewCoreStream(modelSeed, coreID uint64) *Stream {
	return New(Mix64(modelSeed) ^ Mix64(coreID*0x9e3779b97f4a7c15+0x6a09e667f3bcc909))
}

// State returns the stream's internal state for checkpointing.
func (r *Stream) State() [4]uint64 { return r.s }

// SetState restores a state captured with State. It rejects the all-zero
// state, on which xoshiro256** is degenerate.
func (r *Stream) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errors.New("prng: all-zero state is invalid")
	}
	r.s = s
	return nil
}

// Reseed resets the stream to the state derived from seed.
func (r *Stream) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro256** is ill-defined on the all-zero state; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway so Reseed is total.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Stream) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly random bits.
func (r *Stream) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which is unbiased.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n called with n == 0")
	}
	// Lemire's method: multiply a 64-bit random value by n and keep the
	// high word, rejecting the small biased region of the low word.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// DrawMask reports whether the low mask bits of the next random word are
// all below value; TrueNorth's stochastic weight and leak modes compare an
// 8-bit PRNG draw against an 8-bit magnitude, which this reproduces when
// called as DrawMask(magnitude, 8).
func (r *Stream) DrawMask(value uint32, bitWidth uint) bool {
	draw := uint32(r.Uint64()) & ((1 << bitWidth) - 1)
	return draw < value
}

// Perm fills out with a uniform permutation of [0, len(out)) using the
// Fisher–Yates shuffle.
func (r *Stream) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Shuffle applies a Fisher–Yates shuffle to n elements using swap.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method. Used by the synthetic connectome generator for
// log-normal region volumes.
func (r *Stream) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
