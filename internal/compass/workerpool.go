package compass

import (
	"strconv"

	"github.com/cognitive-sim/compass/internal/workpool"
)

// newWorkerPool starts the persistent per-rank worker team (see
// internal/workpool). Thread 0 runs on the caller (the rank goroutine),
// mirroring the paper's OpenMP master thread. Every worker goroutine
// carries pprof labels (compass_rank, compass_worker) so CPU profiles
// of a run break down by rank and worker — the profiler-side view of
// the telemetry layer's load-imbalance metrics.
func newWorkerPool(rank, threads int) *workpool.Pool {
	rankLabel := strconv.Itoa(rank)
	return workpool.New(threads, func(tid int) []string {
		return []string{"compass_rank", rankLabel, "compass_worker", strconv.Itoa(tid)}
	})
}
