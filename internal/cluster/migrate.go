package cluster

import (
	"fmt"
	"sync"
	"time"

	"github.com/cognitive-sim/compass/internal/server"
)

// The migration protocol (planned move of a live session A→B):
//
//  1. Export on A: POST /v1/sessions/{id}/export pauses the session at
//     its next chunk boundary and returns the portable document —
//     hash-stamped checkpoint, pending stream spikes, decomposition,
//     remaining ticks. Every spike record A emitted has a tick below
//     the boundary, so the proxy's committed horizon (== the boundary)
//     releases all of A's egress and nothing is lost or duplicated.
//  2. Import on B (start-paused): B resolves the model by content hash
//     — resident image, wire pull from A (GET /v1/models/{hash}), or
//     rebuild from the original source — then validates the checkpoint
//     against it and recreates the session parked at the boundary.
//  3. Re-attach: if a stream proxy client is following the session,
//     the coordinator waits for the proxy to re-dial B before any
//     resumed tick can fire, so egress from the first post-boundary
//     tick onward is observed.
//  4. Delete on A (the paused remnant's subscriber queues drain and
//     its egress stream closes cleanly), then resume on B.
//
// Both planned migration and failover re-cursor the coordinator's
// inject forwarder to the boundary (adoptOwner) and then wait for it to
// catch up (awaitInjectSync) before resuming: a spike injected through
// the proxy around the export snapshot may have reached only the doomed
// owner — or nobody — and the journal is the one copy guaranteed to
// survive. Re-sending the whole suffix is safe because same-tick
// duplicate delivery is idempotent; the catch-up barrier matters
// because a spike delivered after the destination passed its stamped
// tick would land late, at the wrong tick, breaking bit-identity.
//
// Failover replaces step 1 with the last *pushed* boundary document
// (the node agent pushes one per chunk) and skips the source cleanup
// (the owner is gone). Replay from an older
// boundary re-emits records the proxy already held above its committed
// horizon; those are dropped at the ownership change, so subscribers
// still see each record exactly once. Determinism makes the replayed
// ticks bit-identical to the lost ones.

// CreateSession places a new session on the cluster and returns its
// status (with the owner's live info).
func (c *Coordinator) CreateSession(req *server.CreateRequest) (*SessionStatus, error) {
	cost := requestCost(req)
	// Affinity: if an earlier session with the same source resolved to
	// a model hash, prefer nodes holding that image.
	hash := c.knownHashForSource(req)
	n, reason, err := c.place(cost, hash, nil)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.next++
	clusterID := fmt.Sprintf("c%06d", c.next)
	c.mu.Unlock()

	fwd := *req
	fwd.Placement = fmt.Sprintf("coordinator:%s:%s", reason, n.id)
	info, err := n.client.createSession(&fwd)
	if err != nil {
		return nil, err
	}
	r := &rec{
		clusterID:     clusterID,
		req:           *req,
		nodeID:        n.id,
		nodeSessionID: info.ID,
		placedAt:      time.Now(),
		modelHash:     info.ModelHash,
		userPaused:    req.StartPaused,
	}
	c.mu.Lock()
	c.recs[clusterID] = r
	n.resident[info.ModelHash] = true
	st := r.statusLocked()
	c.mu.Unlock()
	st.Info = info
	c.logf("session %s placed on %s (%s, %.3g s/tick)", clusterID, n.id, reason, cost)
	return &st, nil
}

// knownHashForSource returns the model hash an identical source
// resolved to earlier, for placement affinity ("" when unknown).
func (c *Coordinator) knownHashForSource(req *server.CreateRequest) string {
	key := sourceKey(&req.Source, req.Ranks)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.recs {
		if r.modelHash != "" && sourceKey(&r.req.Source, r.req.Ranks) == key {
			return r.modelHash
		}
	}
	return ""
}

// sourceKey canonicalizes a source for affinity matching. The compiled
// image hash depends on the source document and the compiler rank
// count, so both participate.
func sourceKey(src *server.SourceSpec, ranks int) string {
	return fmt.Sprintf("%s|%d|%d|%d|%d|%s|%d",
		src.Kind, src.Seed, src.Cores, src.InputTicks, len(src.Spec), src.ModelBase64, ranks)
}

// Migrate moves a live session to target (or a placement-chosen node)
// and returns the updated status. The session must currently have a
// reachable owner; failover handles the unreachable case.
func (c *Coordinator) Migrate(clusterID, target string) (*SessionStatus, error) {
	r, err := c.getRec(clusterID)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if r.ended {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: session %s already ended (%s)", clusterID, r.endState)
	}
	if r.migrating {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: session %s is already migrating", clusterID)
	}
	r.migrating = true
	src := c.nodes[r.nodeID]
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		r.migrating = false
		c.cond.Broadcast()
		c.mu.Unlock()
	}()
	if src == nil {
		return nil, fmt.Errorf("cluster: session %s owner %s not registered", clusterID, r.nodeID)
	}

	// 1. Export (pauses at the next chunk boundary).
	doc, err := src.client.exportSession(r.nodeSessionID)
	if err != nil {
		return nil, fmt.Errorf("cluster: export %s from %s: %w", clusterID, r.nodeID, err)
	}

	// 2. Place and import start-paused.
	exclude := map[string]bool{r.nodeID: true}
	var dst *node
	var reason string
	if target != "" {
		c.mu.Lock()
		dst = c.nodes[target]
		c.mu.Unlock()
		if dst == nil {
			resumeErr := resumeBestEffort(src.client, r.nodeSessionID)
			return nil, fmt.Errorf("cluster: unknown target node %q%s", target, resumeErr)
		}
		reason = "requested"
	} else {
		dst, reason, err = c.place(exportCost(doc), doc.ModelHash, exclude)
		if err != nil {
			resumeErr := resumeBestEffort(src.client, r.nodeSessionID)
			return nil, fmt.Errorf("%w%s", err, resumeErr)
		}
	}
	info, err := c.importOn(dst, r, doc, src.httpAddr,
		fmt.Sprintf("migrated:%s:%s->%s", reason, r.nodeID, dst.id))
	if err != nil {
		resumeErr := resumeBestEffort(src.client, r.nodeSessionID)
		return nil, fmt.Errorf("cluster: import %s on %s: %w%s", clusterID, dst.id, err, resumeErr)
	}

	// 3. Hand ownership over, delete the source remnant, and wait for
	// the proxy to follow. The remnant is paused at the boundary with
	// every emitted record already in its subscriber queues; deleting it
	// drains those queues to the proxy and closes its egress stream with
	// a clean EOF — which is exactly what lets the proxy finish reading
	// the old owner promptly and re-dial the new one.
	oldSessionID := r.nodeSessionID
	srcID := r.nodeID
	c.adoptOwner(r, dst, info, doc.Tick, len(doc.PendingSpikes))
	if err := src.client.deleteSession(oldSessionID); err != nil {
		c.logf("migrate %s: source cleanup on %s failed: %v", clusterID, srcID, err)
	}
	c.awaitInjectSync(r, 10*time.Second)
	c.waitProxyAttach(r, 10*time.Second)

	// 4. Resume on the destination.
	if !r.userPaused {
		if _, err := dst.client.lifecycle(info.ID, "resume"); err != nil {
			return nil, fmt.Errorf("cluster: resume %s on %s: %w", clusterID, dst.id, err)
		}
	}
	c.mu.Lock()
	r.migrations++
	st := r.statusLocked()
	c.mu.Unlock()
	st.Info = info
	c.logf("session %s migrated to %s at boundary tick %d", clusterID, dst.id, doc.Tick)
	return &st, nil
}

// awaitInjectSync blocks until the inject forwarder has delivered every
// journal entry present at call time to the current owner, and the
// owner has consumed them all (its injected-spike counter covers the
// import's pending list plus everything forwarded this generation).
// Running a session past this barrier — after a migration resume or a
// user resume — before it holds would let it pass a journaled spike's
// stamped tick and deliver the spike late, at the wrong tick, breaking
// bit-identity with an unmigrated run.
func (c *Coordinator) awaitInjectSync(r *rec, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	c.mu.Lock()
	if !r.fwdStarted && len(r.journal) == 0 {
		// Nothing was ever proxied in; the import's own synchronous
		// injection already covers the pending list.
		c.mu.Unlock()
		return
	}
	target := r.jBase + len(r.journal)
	gen := r.gen
	for r.fwdAbs < target && r.gen == gen && !r.ended {
		if time.Now().After(deadline) {
			c.mu.Unlock()
			c.logf("session %s: inject forward not confirmed before deadline", r.clusterID)
			return
		}
		waitCondDeadline(c.cond, deadline)
	}
	want := uint64(r.genPending) + r.fwdSent
	var nc *nodeClient
	var sid, owner string
	if n := c.nodes[r.nodeID]; n != nil && !n.dead {
		nc, sid, owner = n.client, r.nodeSessionID, n.id
	}
	c.mu.Unlock()
	if nc == nil {
		return
	}
	for time.Now().Before(deadline) {
		info, err := nc.sessionInfo(sid)
		if err == nil && info.Injected >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.logf("session %s: inject sync with %s not confirmed before deadline", r.clusterID, owner)
}

// resumeBestEffort un-parks a session after a failed migration so the
// export's pause doesn't strand it; its error (if any) is folded into
// the returned suffix for the caller's message.
func resumeBestEffort(nc *nodeClient, id string) string {
	if _, err := nc.lifecycle(id, "resume"); err != nil {
		return fmt.Sprintf(" (and resume after abort failed: %v)", err)
	}
	return ""
}

// importOn ships an export document to a node, always start-paused:
// journaled injects the document missed arrive via the forwarder before
// the resume (adoptOwner re-cursors it; awaitInjectSync gates).
func (c *Coordinator) importOn(dst *node, r *rec, doc *server.ExportDoc, peerHTTP, placement string) (*server.Info, error) {
	req := &server.ImportRequest{
		Export:       *doc,
		PeerHTTPAddr: peerHTTP,
		Source:       &r.req.Source,
		Name:         r.req.Name,
		Placement:    placement,
		StartPaused:  true,
	}
	return dst.client.importSession(req)
}

// adoptOwner atomically rebinds a record to its new owner; basePending
// is the pending-spike count the owner's import injected (the inject
// barrier's baseline for this generation).
func (c *Coordinator) adoptOwner(r *rec, dst *node, info *server.Info, boundaryTick uint64, basePending int) {
	c.mu.Lock()
	r.nodeID = dst.id
	r.nodeSessionID = info.ID
	r.gen++
	r.placedAt = time.Now()
	r.misses = 0
	if r.modelHash == "" {
		r.modelHash = info.ModelHash
	}
	if boundaryTick > r.committedTick {
		r.committedTick = boundaryTick
	}
	// Re-cursor the inject forwarder: every journal entry at or past the
	// boundary must reach the new owner (whatever the old one consumed
	// is superseded by the boundary checkpoint), and the migration
	// barrier counts this generation's deliveries from zero.
	idx := len(r.journal)
	for i, ev := range r.journal {
		if ev.Tick >= boundaryTick {
			idx = i
			break
		}
	}
	r.fwdAbs = r.jBase + idx
	r.fwdSent = 0
	r.genPending = basePending
	dst.resident[info.ModelHash] = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// waitProxyAttach blocks until the stream proxy (if any client is
// following this session) has attached to the current generation, so
// no egress from the resumed run can slip past an unattached proxy.
func (c *Coordinator) waitProxyAttach(r *rec, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	c.mu.Lock()
	defer c.mu.Unlock()
	for r.proxyRefs > 0 && r.attachedGen < r.gen {
		if time.Now().After(deadline) {
			c.logf("session %s: proxy did not re-attach within %v; resuming anyway", r.clusterID, timeout)
			return
		}
		waitCondDeadline(c.cond, deadline)
	}
}

// waitCondDeadline waits on cond with a deadline via a broadcast timer.
func waitCondDeadline(cond *sync.Cond, deadline time.Time) {
	t := time.AfterFunc(time.Until(deadline), cond.Broadcast)
	defer t.Stop()
	cond.Wait()
}

// restore re-hosts a session whose owner died (or whose run was killed
// by an injected crash fault) from its last pushed boundary document.
func (c *Coordinator) restore(r *rec, cause string) {
	c.mu.Lock()
	if r.ended || r.migrating {
		c.mu.Unlock()
		return
	}
	if r.restores >= c.opts.MaxRestores {
		c.mu.Unlock()
		c.endSession(r, "failed", fmt.Sprintf("restore cap (%d) reached: %s", c.opts.MaxRestores, cause))
		return
	}
	r.migrating = true // hold the record against concurrent movers
	r.restores++
	doc := r.lastExport
	deadNode := r.nodeID
	oldSessionID := r.nodeSessionID
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		r.migrating = false
		c.cond.Broadcast()
		c.mu.Unlock()
	}()

	if doc == nil {
		// The session never completed a chunk: recreate it from the
		// original request (faults stripped — the crash that killed it
		// must not replay) on a fresh node.
		c.restoreFresh(r, deadNode, cause)
		return
	}
	exclude := map[string]bool{deadNode: true}
	dst, _, err := c.place(exportCost(doc), doc.ModelHash, exclude)
	if err != nil {
		c.logf("restore %s: no node available: %v", r.clusterID, err)
		c.endSession(r, "failed", fmt.Sprintf("restore: %v", err))
		return
	}
	// The model peer: any alive node with the image resident (the dead
	// owner is useless). The source fallback covers the cold case.
	peer := c.peerWithModel(doc.ModelHash, dst.id)
	info, err := c.importOn(dst, r, doc, peer,
		fmt.Sprintf("failover:%s:%s->%s", cause, deadNode, dst.id))
	if err != nil {
		c.logf("restore %s on %s failed: %v", r.clusterID, dst.id, err)
		c.endSession(r, "failed", fmt.Sprintf("restore import: %v", err))
		return
	}
	c.adoptOwner(r, dst, info, doc.Tick, len(doc.PendingSpikes))
	c.awaitInjectSync(r, 10*time.Second)
	c.waitProxyAttach(r, 10*time.Second)
	if !r.userPaused {
		if _, err := dst.client.lifecycle(info.ID, "resume"); err != nil {
			c.logf("restore %s: resume on %s failed: %v", r.clusterID, dst.id, err)
		}
	}
	// Best-effort cleanup of a crash-faulted remnant (its daemon may
	// still be alive even though the session failed).
	c.mu.Lock()
	dead := c.nodes[deadNode]
	c.mu.Unlock()
	if dead != nil && !dead.dead {
		if err := dead.client.deleteSession(oldSessionID); err != nil {
			c.logf("restore %s: remnant cleanup on %s failed: %v", r.clusterID, deadNode, err)
		}
	}
	c.logf("session %s restored on %s from boundary tick %d (%s)", r.clusterID, dst.id, doc.Tick, cause)
}

// restoreFresh recreates a never-ran session from its original request
// with fault injection stripped.
func (c *Coordinator) restoreFresh(r *rec, deadNode, cause string) {
	req := r.req
	req.Faults = ""
	req.FaultSeed = 0
	req.StartPaused = true
	req.Placement = fmt.Sprintf("failover:fresh:%s:%s", cause, deadNode)
	dst, _, err := c.place(requestCost(&req), r.modelHash, map[string]bool{deadNode: true})
	if err != nil {
		c.endSession(r, "failed", fmt.Sprintf("restore: %v", err))
		return
	}
	info, err := dst.client.createSession(&req)
	if err != nil {
		c.endSession(r, "failed", fmt.Sprintf("restore create: %v", err))
		return
	}
	c.adoptOwner(r, dst, info, 0, 0)
	// A fresh recreate carries no export document, so the journal is the
	// only copy of everything ever injected; the boundary-0 re-cursor
	// makes the forwarder deliver all of it before the resume.
	c.awaitInjectSync(r, 10*time.Second)
	c.waitProxyAttach(r, 10*time.Second)
	if !r.userPaused {
		if _, err := dst.client.lifecycle(info.ID, "resume"); err != nil {
			c.logf("restore %s: resume on %s failed: %v", r.clusterID, dst.id, err)
		}
	}
	c.logf("session %s recreated on %s from tick 0 (%s)", r.clusterID, dst.id, cause)
}

// peerWithModel finds an alive node (other than skip) holding the
// model resident, for wire pulls ("" when none).
func (c *Coordinator) peerWithModel(hash, skip string) string {
	if hash == "" {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.aliveNodesLocked() {
		if n.id != skip && n.resident[hash] {
			return n.httpAddr
		}
	}
	return ""
}
