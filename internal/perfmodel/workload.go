package perfmodel

import (
	"fmt"
	"math"

	"github.com/cognitive-sim/compass/internal/cocomac"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// DefaultWhiteActivity is the fraction of mean firing activity carried
// by white-matter (inter-region) pathways. The paper reports ≈22M
// inter-process spikes per tick at 256M cores and 8.1 Hz (§VI-B); with
// 531M total firings per tick and a 60% long-range connectivity share,
// that implies long-range projection neurons fire at ≈7% of the mean
// rate — cortical activity concentrates in local loops. This constant is
// calibrated to reproduce the 22M figure and is pinned by test.
const DefaultWhiteActivity = 0.069

// AnalyticCoCoMac computes the per-tick workload of a CoCoMac model at
// arbitrary scale — including the paper's 256M-core runs — from the
// network structure alone.
//
// Every node of a region is statistically identical, so the model works
// region by region: firing at firingHz spreads the region's white matter
// over its outgoing pathways in proportion to the balanced connection
// matrix, and the expected message count per link follows the paper's
// §VI-B observation that links become thinner with scale: a node sends a
// message to a peer only on ticks when at least one spike crosses that
// link, so a link carrying Poisson(λ) spikes per tick produces
// 1−exp(−λ) messages per tick. That is the mechanism behind the
// sub-linear message growth of Figure 4(b).
func AnalyticCoCoMac(net *cocomac.Network, nodes, coresPerNode int, firingHz, synapseDensity float64) (Workload, error) {
	if nodes < 1 || coresPerNode < 1 {
		return Workload{}, fmt.Errorf("perfmodel: invalid nodes=%d coresPerNode=%d", nodes, coresPerNode)
	}
	if firingHz < 0 || synapseDensity < 0 || synapseDensity > 1 {
		return Workload{}, fmt.Errorf("perfmodel: invalid firingHz=%v density=%v", firingHz, synapseDensity)
	}
	res, err := net.BalancedMatrix()
	if err != nil {
		return Workload{}, err
	}
	vol := net.Volumes()
	var volSum float64
	for _, v := range vol {
		volSum += v
	}
	k := cocomac.ConnectedRegions
	totalCores := float64(nodes * coresPerNode)

	// Region shares: cores and (fractional) node counts.
	regionNodes := make([]float64, k)
	for i := 0; i < k; i++ {
		regionNodes[i] = totalCores * vol[i] / volSum / float64(coresPerNode)
		if regionNodes[i] < 1e-9 {
			regionNodes[i] = 1e-9
		}
	}

	w := Workload{Nodes: nodes}
	perNodeFire := float64(coresPerNode) * truenorth.CoreSize * firingHz / 1000

	// pathSpikes(s, j) is the expected white-matter spike flow per source
	// node of region s toward region j, per tick: firing activity routed
	// according to the balanced matrix entry's share of the source's
	// volume, attenuated by the white-matter activity factor. Deriving
	// flows from the balanced matrix (rather than the raw class gray
	// fractions) keeps every node's incoming message count bounded by its
	// incoming spike count — the balanced column sums guarantee it.
	pathSpikes := func(s, j int) float64 {
		return perNodeFire * DefaultWhiteActivity * res.Matrix[s][j] / vol[s]
	}

	for i := 0; i < k; i++ {
		var nw NodeWork
		nw.Cores = float64(coresPerNode)
		nw.Firings = perNodeFire
		for j := 0; j < k; j++ {
			if j != i {
				nw.RemoteSpikes += pathSpikes(i, j)
			}
		}
		nw.LocalSpikes = perNodeFire - nw.RemoteSpikes
		// Spikes received balance spikes sent in steady state; each
		// arriving spike is one axon event feeding density×256 synapses.
		nw.SpikesReceived = perNodeFire
		nw.AxonEvents = perNodeFire
		nw.SynEvents = perNodeFire * synapseDensity * truenorth.CoreSize
		nw.NeuronUpdates = float64(coresPerNode) * truenorth.CoreSize
		nw.BytesSent = nw.RemoteSpikes * truenorth.SpikeWireBytes

		// Outgoing messages: each pathway's flow spreads diffusely over
		// the target region's nodes; a link carries a message on a tick
		// only if at least one spike crosses it.
		for j := 0; j < k; j++ {
			if j == i || res.Matrix[i][j] == 0 {
				continue
			}
			lambda := pathSpikes(i, j) / regionNodes[j]
			nw.MsgsSent += regionNodes[j] * (1 - math.Exp(-lambda))
		}
		// Incoming messages: from every source region's nodes.
		for s := 0; s < k; s++ {
			if s == i || res.Matrix[s][i] == 0 {
				continue
			}
			lambda := pathSpikes(s, i) / regionNodes[i]
			nw.MsgsRecv += regionNodes[s] * (1 - math.Exp(-lambda))
		}

		// Critical path: take the element-wise maximum over regions.
		w.Max = maxNodeWork(w.Max, nw)
		w.TotalMessagesPerTick += regionNodes[i] * nw.MsgsSent
		w.TotalRemoteSpikesPerTick += regionNodes[i] * nw.RemoteSpikes
	}
	return w, nil
}

// SyntheticUniform computes the workload of the §VII real-time benchmark
// network: every core fires at firingHz, localFrac of each node's spikes
// stay on the node, and the remainder spreads uniformly over all other
// nodes (the paper uses 75% node-local, 25% remote at 10 Hz).
func SyntheticUniform(nodes, coresPerNode int, firingHz, localFrac, synapseDensity float64) (Workload, error) {
	if nodes < 1 || coresPerNode < 1 {
		return Workload{}, fmt.Errorf("perfmodel: invalid nodes=%d coresPerNode=%d", nodes, coresPerNode)
	}
	if localFrac < 0 || localFrac > 1 {
		return Workload{}, fmt.Errorf("perfmodel: local fraction %v", localFrac)
	}
	perNodeFire := float64(coresPerNode) * truenorth.CoreSize * firingHz / 1000
	var nw NodeWork
	nw.Cores = float64(coresPerNode)
	nw.Firings = perNodeFire
	nw.LocalSpikes = perNodeFire * localFrac
	nw.RemoteSpikes = perNodeFire * (1 - localFrac)
	nw.SpikesReceived = perNodeFire
	nw.AxonEvents = perNodeFire
	nw.SynEvents = perNodeFire * synapseDensity * truenorth.CoreSize
	nw.NeuronUpdates = float64(coresPerNode) * truenorth.CoreSize
	nw.BytesSent = nw.RemoteSpikes * truenorth.SpikeWireBytes
	if nodes > 1 {
		lambda := nw.RemoteSpikes / float64(nodes-1)
		nw.MsgsSent = float64(nodes-1) * (1 - math.Exp(-lambda))
		nw.MsgsRecv = nw.MsgsSent
	}
	w := Workload{
		Nodes:                    nodes,
		Max:                      nw,
		TotalMessagesPerTick:     float64(nodes) * nw.MsgsSent,
		TotalRemoteSpikesPerTick: float64(nodes) * nw.RemoteSpikes,
	}
	return w, nil
}

// maxNodeWork returns the element-wise maximum.
func maxNodeWork(a, b NodeWork) NodeWork {
	return NodeWork{
		Cores:          math.Max(a.Cores, b.Cores),
		AxonEvents:     math.Max(a.AxonEvents, b.AxonEvents),
		SynEvents:      math.Max(a.SynEvents, b.SynEvents),
		NeuronUpdates:  math.Max(a.NeuronUpdates, b.NeuronUpdates),
		Firings:        math.Max(a.Firings, b.Firings),
		LocalSpikes:    math.Max(a.LocalSpikes, b.LocalSpikes),
		RemoteSpikes:   math.Max(a.RemoteSpikes, b.RemoteSpikes),
		MsgsSent:       math.Max(a.MsgsSent, b.MsgsSent),
		MsgsRecv:       math.Max(a.MsgsRecv, b.MsgsRecv),
		BytesSent:      math.Max(a.BytesSent, b.BytesSent),
		SpikesReceived: math.Max(a.SpikesReceived, b.SpikesReceived),
	}
}
