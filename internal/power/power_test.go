package power

import (
	"math"
	"strings"
	"testing"

	"github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

func TestFromRatesChipScale(t *testing.T) {
	// A 4096-core TrueNorth chip at the paper's 8.1 Hz operating point
	// and 10% crossbar density must land in the tens-of-milliwatts range
	// the TrueNorth programme targeted.
	p := TrueNorth45nm()
	est, err := FromRates(p, 4096, 8.1, 0.10, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if est.TotalW < 0.02 || est.TotalW > 0.3 {
		t.Fatalf("4096-core chip at 8.1 Hz: %.3g W outside the ultra-low-power band", est.TotalW)
	}
	// Energy per spike should be within a factor of a few of the cited
	// 45 pJ figure.
	if est.EnergyPerSpikeJ < 10e-12 || est.EnergyPerSpikeJ > 200e-12 {
		t.Fatalf("energy per spike %.3g J outside band around 45 pJ", est.EnergyPerSpikeJ)
	}
}

func TestFromRatesZeroActivityIsStaticOnly(t *testing.T) {
	p := TrueNorth45nm()
	est, err := FromRates(p, 1024, 0, 0.10, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Only the per-tick neuron updates and leakage remain.
	if est.SynapticJ != 0 || est.SpikeGenJ != 0 || est.NetworkJ != 0 {
		t.Fatalf("silent chip has dynamic spike energy: %+v", est)
	}
	if est.StaticW != 1024*p.CoreLeakageW {
		t.Fatalf("static power %.3g", est.StaticW)
	}
}

func TestFromRatesScalesLinearly(t *testing.T) {
	p := TrueNorth45nm()
	a, err := FromRates(p, 1000, 10, 0.1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromRates(p, 2000, 10, 0.1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.TotalW/a.TotalW-2) > 1e-9 {
		t.Fatalf("power not linear in cores: %.6g vs %.6g", a.TotalW, b.TotalW)
	}
}

func TestFromRatesRemoteSpikesCostMore(t *testing.T) {
	p := TrueNorth45nm()
	local, _ := FromRates(p, 100, 10, 0.1, 0)
	remote, _ := FromRates(p, 100, 10, 0.1, 1)
	if remote.NetworkJ <= local.NetworkJ {
		t.Fatalf("remote routing not costlier: %.3g vs %.3g", remote.NetworkJ, local.NetworkJ)
	}
}

func TestFromRatesValidation(t *testing.T) {
	p := TrueNorth45nm()
	if _, err := FromRates(p, 0, 10, 0.1, 0.2); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := FromRates(p, 10, -1, 0.1, 0.2); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := FromRates(p, 10, 10, 1.5, 0.2); err == nil {
		t.Fatal("bad density accepted")
	}
	if _, err := FromRates(p, 10, 10, 0.1, 2); err == nil {
		t.Fatal("bad remote fraction accepted")
	}
}

func TestFromStatsAgainstSimulation(t *testing.T) {
	// Build a small live model, run it, and check the estimate is
	// positive, internally consistent, and consistent with FromRates at
	// the measured operating point.
	m := &truenorth.Model{Seed: 5}
	for k := 0; k < 4; k++ {
		cfg := &truenorth.CoreConfig{ID: truenorth.CoreID(k)}
		for a := 0; a < truenorth.CoreSize; a++ {
			for s := 0; s < 26; s++ {
				cfg.SetSynapse(a, (a*7+s*3)%truenorth.CoreSize, true)
			}
		}
		for j := 0; j < truenorth.CoreSize; j++ {
			cfg.Neurons[j] = truenorth.NeuronParams{
				Weights:   [truenorth.NumAxonTypes]int16{1, 1, 1, 1},
				Leak:      1,
				Threshold: 100,
				Floor:     0,
				Target: truenorth.SpikeTarget{
					Core:  truenorth.CoreID((k + j) % 4),
					Axon:  uint16(j),
					Delay: 1,
				},
				Enabled: true,
			}
		}
		m.Cores = append(m.Cores, cfg)
	}
	stats, err := compass.Run(m, compass.Config{Ranks: 2, ThreadsPerRank: 1}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalSpikes == 0 {
		t.Fatal("test model silent")
	}
	p := TrueNorth45nm()
	est, err := FromStats(p, stats)
	if err != nil {
		t.Fatal(err)
	}
	if est.TotalW <= 0 || est.PerTickJ <= 0 {
		t.Fatalf("degenerate estimate: %+v", est)
	}
	if math.Abs(est.PerTickJ-(est.SynapticJ+est.NeuronJ+est.SpikeGenJ+est.NetworkJ)) > 1e-18 {
		t.Fatal("per-tick energy does not sum")
	}
	if est.StaticW != 4*p.CoreLeakageW {
		t.Fatalf("static power %.3g", est.StaticW)
	}
	// Cross-check with the analytic path at the measured rate.
	hz := stats.AvgFiringRateHz()
	remoteFrac := float64(stats.RemoteSpikes) / float64(stats.TotalSpikes)
	ref, err := FromRates(p, 4, hz, 26.0/truenorth.CoreSize, remoteFrac)
	if err != nil {
		t.Fatal(err)
	}
	if est.TotalW < ref.TotalW/2 || est.TotalW > ref.TotalW*2 {
		t.Fatalf("stats estimate %.3g W vs analytic %.3g W disagree >2x", est.TotalW, ref.TotalW)
	}
}

func TestFromStatsZeroTicks(t *testing.T) {
	if _, err := FromStats(TrueNorth45nm(), &compass.RunStats{}); err == nil {
		t.Fatal("zero-tick run accepted")
	}
}

func TestEstimateString(t *testing.T) {
	est, err := FromRates(TrueNorth45nm(), 16, 10, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s := est.String()
	if !strings.Contains(s, "16 cores") || !strings.Contains(s, "W total") {
		t.Fatalf("String() = %q", s)
	}
}
