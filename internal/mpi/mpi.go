// Package mpi is a message-passing runtime implemented in pure Go that
// provides the MPI primitives Compass is written against.
//
// The paper's Compass runs one MPI process per Blue Gene node and
// communicates through MPICH2. This repository has no MPI and no
// multi-node machine, so the runtime here supplies the same semantics in
// process: every rank is a goroutine, point-to-point messages are
// delivered in FIFO order per (source, destination) pair with tag
// matching, and the collectives Compass uses (Barrier, Reduce-scatter,
// Allreduce, Alltoall, Gather) synchronize all ranks of the world. The
// simulator's communication *algorithm* — aggregation into one message
// per destination per tick, reduce-scatter to learn incoming message
// counts, probe/receive loops — runs unchanged on top of this runtime,
// which is what makes its message and byte counts faithful to the paper's
// at any model scale.
//
// The runtime also counts every message and byte sent, because Figure 4(b)
// of the paper reports exactly those quantities.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// AnySource matches messages from every rank in Recv and Probe.
const AnySource = -1

// AnyTag matches messages with every tag in Recv and Probe.
const AnyTag = -1

// ErrAborted is returned from blocking operations when another rank
// failed and the world was torn down.
var ErrAborted = errors.New("mpi: world aborted")

// envelope is one in-flight point-to-point message.
type envelope struct {
	src  int
	tag  int
	data []byte
	seq  uint64
}

// mailbox is the per-rank incoming message queue.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []envelope
}

// World is a communicator spanning a fixed set of ranks.
type World struct {
	size  int
	boxes []*mailbox
	seq   atomic.Uint64

	aborted atomic.Bool

	// collective state
	cmu      sync.Mutex
	ccond    *sync.Cond
	cgen     uint64
	carrived int
	cvecs    [][]int64
	cresults [][]int64

	// traffic accounting
	msgsSent  atomic.Uint64
	bytesSent atomic.Uint64
}

// NewWorld creates a world with size ranks.
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: world size %d < 1", size))
	}
	w := &World{
		size:     size,
		boxes:    make([]*mailbox, size),
		cvecs:    make([][]int64, size),
		cresults: make([][]int64, size),
	}
	for i := range w.boxes {
		b := &mailbox{}
		b.cond = sync.NewCond(&b.mu)
		w.boxes[i] = b
	}
	w.ccond = sync.NewCond(&w.cmu)
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Stats returns the total messages and payload bytes sent so far.
func (w *World) Stats() (messages, bytes uint64) {
	return w.msgsSent.Load(), w.bytesSent.Load()
}

// ResetStats zeroes the traffic counters.
func (w *World) ResetStats() {
	w.msgsSent.Store(0)
	w.bytesSent.Store(0)
}

// abort marks the world failed and wakes every blocked rank.
func (w *World) abort() {
	w.aborted.Store(true)
	for _, b := range w.boxes {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
	w.cmu.Lock()
	w.ccond.Broadcast()
	w.cmu.Unlock()
}

// Comm is one rank's handle to the world.
type Comm struct {
	w    *World
	rank int
}

// Comm returns the handle for rank r.
func (w *World) Comm(r int) *Comm {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("mpi: rank %d outside world of size %d", r, w.size))
	}
	return &Comm{w: w, rank: r}
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Isend sends data to rank dst with the given tag. The send is
// non-blocking and buffered; data is copied, so the caller may reuse the
// slice immediately. Self-sends are permitted.
func (c *Comm) Isend(dst, tag int, data []byte) error {
	if dst < 0 || dst >= c.w.size {
		return fmt.Errorf("mpi: send to rank %d outside world of size %d", dst, c.w.size)
	}
	if c.w.aborted.Load() {
		return ErrAborted
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	env := envelope{src: c.rank, tag: tag, data: cp, seq: c.w.seq.Add(1)}
	b := c.w.boxes[dst]
	b.mu.Lock()
	b.q = append(b.q, env)
	b.cond.Broadcast()
	b.mu.Unlock()
	c.w.msgsSent.Add(1)
	c.w.bytesSent.Add(uint64(len(data)))
	return nil
}

// match reports whether env satisfies the (src, tag) selector.
func match(env *envelope, src, tag int) bool {
	return (src == AnySource || env.src == src) && (tag == AnyTag || env.tag == tag)
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload and actual source. Messages between a fixed (source,
// destination) pair are received in the order they were sent.
func (c *Comm) Recv(src, tag int) (data []byte, from int, err error) {
	b := c.w.boxes[c.rank]
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if c.w.aborted.Load() {
			return nil, 0, ErrAborted
		}
		if i := b.findLocked(src, tag); i >= 0 {
			env := b.q[i]
			b.q = append(b.q[:i], b.q[i+1:]...)
			return env.data, env.src, nil
		}
		b.cond.Wait()
	}
}

// findLocked returns the queue index of the earliest-sent matching
// message, or -1. The caller holds the mailbox lock.
func (b *mailbox) findLocked(src, tag int) int {
	best := -1
	for i := range b.q {
		if match(&b.q[i], src, tag) {
			if best == -1 || b.q[i].seq < b.q[best].seq {
				best = i
			}
		}
	}
	return best
}

// Iprobe reports without blocking whether a message matching (src, tag)
// is available, and if so its source and payload size.
func (c *Comm) Iprobe(src, tag int) (ok bool, from, nbytes int) {
	b := c.w.boxes[c.rank]
	b.mu.Lock()
	defer b.mu.Unlock()
	if i := b.findLocked(src, tag); i >= 0 {
		return true, b.q[i].src, len(b.q[i].data)
	}
	return false, 0, 0
}

// Probe blocks until a message matching (src, tag) is available and
// returns its source and payload size without consuming it.
func (c *Comm) Probe(src, tag int) (from, nbytes int, err error) {
	b := c.w.boxes[c.rank]
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if c.w.aborted.Load() {
			return 0, 0, ErrAborted
		}
		if i := b.findLocked(src, tag); i >= 0 {
			return b.q[i].src, len(b.q[i].data), nil
		}
		b.cond.Wait()
	}
}

// PendingMessages returns the number of messages queued for this rank.
func (c *Comm) PendingMessages() int {
	b := c.w.boxes[c.rank]
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.q)
}

// collective runs one step of the world's generic collective machinery:
// every rank contributes a vector; when the last rank arrives, combine is
// called once (under the collective lock) with all contributions, filling
// the per-rank results; every rank then returns its own result slot.
// Contribution vectors may be nil for data-free collectives (Barrier).
func (c *Comm) collective(contrib []int64, combine func(vecs, results [][]int64)) ([]int64, error) {
	w := c.w
	w.cmu.Lock()
	defer w.cmu.Unlock()
	if w.aborted.Load() {
		return nil, ErrAborted
	}
	gen := w.cgen
	w.cvecs[c.rank] = contrib
	w.carrived++
	if w.carrived == w.size {
		if combine != nil {
			combine(w.cvecs, w.cresults)
		}
		w.carrived = 0
		w.cgen++
		w.ccond.Broadcast()
	} else {
		for gen == w.cgen {
			w.ccond.Wait()
			if w.aborted.Load() {
				return nil, ErrAborted
			}
		}
	}
	res := w.cresults[c.rank]
	return res, nil
}

// Barrier blocks until every rank in the world has entered it.
func (c *Comm) Barrier() error {
	_, err := c.collective(nil, nil)
	return err
}

// ReduceScatterSum implements the MPI_Reduce_scatter pattern Compass uses
// to learn how many point-to-point messages to expect: every rank
// contributes a vector of length Size() whose element d is the count it
// is sending to rank d; the call returns, at each rank, the sum over all
// ranks of that rank's element — the number of incoming messages.
func (c *Comm) ReduceScatterSum(counts []int64) (int64, error) {
	if len(counts) != c.w.size {
		return 0, fmt.Errorf("mpi: ReduceScatterSum vector length %d != world size %d", len(counts), c.w.size)
	}
	res, err := c.collective(counts, func(vecs, results [][]int64) {
		for r := range results {
			sum := int64(0)
			for _, v := range vecs {
				sum += v[r]
			}
			results[r] = []int64{sum}
		}
	})
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// AllreduceSum returns, at every rank, the element-wise sum of vals over
// all ranks.
func (c *Comm) AllreduceSum(vals []int64) ([]int64, error) {
	n := len(vals)
	res, err := c.collective(vals, func(vecs, results [][]int64) {
		sum := make([]int64, n)
		for _, v := range vecs {
			for i, x := range v {
				sum[i] += x
			}
		}
		for r := range results {
			results[r] = sum
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// AllreduceMax returns, at every rank, the element-wise maximum of vals
// over all ranks.
func (c *Comm) AllreduceMax(vals []int64) ([]int64, error) {
	n := len(vals)
	res, err := c.collective(vals, func(vecs, results [][]int64) {
		max := make([]int64, n)
		copy(max, vecs[0])
		for _, v := range vecs[1:] {
			for i, x := range v {
				if x > max[i] {
					max[i] = x
				}
			}
		}
		for r := range results {
			results[r] = max
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Bcast distributes root's vector to every rank.
func (c *Comm) Bcast(root int, vals []int64) ([]int64, error) {
	if root < 0 || root >= c.w.size {
		return nil, fmt.Errorf("mpi: Bcast root %d outside world of size %d", root, c.w.size)
	}
	var contrib []int64
	if c.rank == root {
		contrib = vals
	}
	res, err := c.collective(contrib, func(vecs, results [][]int64) {
		for r := range results {
			results[r] = vecs[root]
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Gather collects every rank's vector at root, concatenated in rank
// order; non-root ranks receive nil.
func (c *Comm) Gather(root int, vals []int64) ([]int64, error) {
	if root < 0 || root >= c.w.size {
		return nil, fmt.Errorf("mpi: Gather root %d outside world of size %d", root, c.w.size)
	}
	res, err := c.collective(vals, func(vecs, results [][]int64) {
		var all []int64
		for _, v := range vecs {
			all = append(all, v...)
		}
		for r := range results {
			if r == root {
				results[r] = all
			} else {
				results[r] = nil
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Alltoall exchanges one int64 with every rank: element d of the
// contribution goes to rank d, and element s of the result came from rank
// s. Compass's compiler uses this to negotiate white-matter connection
// counts between region processes.
func (c *Comm) Alltoall(vals []int64) ([]int64, error) {
	if len(vals) != c.w.size {
		return nil, fmt.Errorf("mpi: Alltoall vector length %d != world size %d", len(vals), c.w.size)
	}
	res, err := c.collective(vals, func(vecs, results [][]int64) {
		for r := range results {
			out := make([]int64, len(vecs))
			for s, v := range vecs {
				out[s] = v[r]
			}
			results[r] = out
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Run launches fn on every rank of a fresh world of the given size and
// waits for all ranks to finish. The first non-nil error aborts the world
// (unblocking every rank) and is returned.
func Run(size int, fn func(c *Comm) error) error {
	w := NewWorld(size)
	return w.Run(fn)
}

// Run launches fn on every rank of this world and waits for completion.
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					w.abort()
				}
			}()
			if err := fn(w.Comm(rank)); err != nil {
				errs[rank] = err
				w.abort()
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrAborted) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
