package compass

import (
	"fmt"
	"time"

	"github.com/cognitive-sim/compass/internal/faults"
)

// This file holds the fault-injection glue every backend shares: the
// Exchange-entry consult (rank stall, rank crash) and the per-message
// send resolution with retry-with-backoff. Backends call these at their
// natural points — faultEnter at the top of Exchange, resolveSend once
// per outgoing aggregated message — and apply the returned plan with
// transport-specific mechanics (tag-carrying async sends under MPI,
// framed puts under PGAS, copy-counted segment swaps under shmem).

// faultRetryBackoff is the first retry's wall-clock backoff after an
// injected drop; each further retry doubles it.
const faultRetryBackoff = 100 * time.Microsecond

// faultEnter runs the rank-scoped fault classes at Exchange entry: an
// injected stall sleeps the rank, an injected crash fails it with an
// error naming the rank and tick.
func faultEnter(inj *faults.Injector, tel *Telemetry, rank int, t uint64) error {
	if !inj.Active() {
		return nil
	}
	if d := inj.Stall(rank, t); d > 0 {
		tel.faultInjected(rank, faults.Stall)
		time.Sleep(d)
	}
	if err := inj.Crash(rank, t); err != nil {
		tel.faultInjected(rank, faults.Crash)
		return err
	}
	return nil
}

// sendPlan is the fault-resolved fate of one outgoing message.
type sendPlan struct {
	// copies is 1 normally, 2 under an injected duplicate.
	copies int
	// delay is the wall-clock hold before publication (injected delay).
	delay time.Duration
}

// resolveSend consults the injector for the message rank is about to
// publish to dest at tick t, retrying injected drops with exponential
// backoff until the injector lets the send through or the attempt budget
// runs out — at which point the drop is fatal and the rank fails with an
// error naming the endpoints and the tick.
func resolveSend(inj *faults.Injector, tel *Telemetry, rank int, t uint64, dest int) (sendPlan, error) {
	plan := sendPlan{copies: 1}
	if !inj.Active() {
		return plan, nil
	}
	backoff := faultRetryBackoff
	for attempt := 0; ; attempt++ {
		act, d := inj.Send(rank, t, dest, attempt)
		switch act {
		case faults.ActDrop:
			tel.faultInjected(rank, faults.Drop)
			if attempt+1 >= inj.SendAttempts() {
				return plan, fmt.Errorf("compass: message rank %d -> %d at tick %d dropped after %d attempts: %w",
					rank, dest, t, attempt+1, faults.ErrDropped)
			}
			tel.faultRetry(rank)
			time.Sleep(backoff)
			backoff *= 2
		case faults.ActDuplicate:
			tel.faultInjected(rank, faults.Duplicate)
			plan.copies = 2
			return plan, nil
		case faults.ActDelay:
			tel.faultInjected(rank, faults.Delay)
			plan.delay = d
			return plan, nil
		default:
			return plan, nil
		}
	}
}
