// Command cocomac generates and inspects the synthetic CoCoMac macaque
// network of §V of the paper: 102 reduced regions (77 reporting
// connections), Paxinos-style volumes with median imputation, and the
// balanced connection matrix. With -fig3 it prints the Figure 3 region
// allocation table; with -spec it emits a CoreObject description ready
// for the compiler.
//
// Examples:
//
//	cocomac -fig3 -cores 4096
//	cocomac -spec -cores 512 -ticks 100 > cocomac512.json
//	cocomac -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/cognitive-sim/compass/internal/cocomac"
	"github.com/cognitive-sim/compass/internal/experiments"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 2012, "connectome seed")
		cores   = flag.Int("cores", 4096, "total TrueNorth cores for allocations / specs")
		ticks   = flag.Uint64("ticks", 100, "stimulus window for emitted specs")
		fig3    = flag.Bool("fig3", false, "print the Figure 3 region allocation table")
		spec    = flag.Bool("spec", false, "emit a CoreObject JSON description on stdout")
		stats   = flag.Bool("stats", false, "print network statistics")
		balance = flag.Bool("balance", false, "print matrix balancing diagnostics")
	)
	flag.Parse()
	if err := run(*seed, *cores, *ticks, *fig3, *spec, *stats, *balance); err != nil {
		fmt.Fprintln(os.Stderr, "cocomac:", err)
		os.Exit(1)
	}
}

func run(seed uint64, cores int, ticks uint64, fig3, spec, stats, balanceFlag bool) error {
	net := cocomac.Generate(seed)
	if !fig3 && !spec && !stats && !balanceFlag {
		stats = true
	}

	if stats {
		fmt.Printf("synthetic CoCoMac network (seed %d)\n", seed)
		fmt.Printf("  full network: %d regions, %d directed edges\n", cocomac.FullRegions, net.FullEdgeCount())
		fmt.Printf("  reduced network: %d regions, %d reporting connections\n", len(net.Regions), cocomac.ConnectedRegions)
		fmt.Printf("  reduced edges among connected regions: %d\n", net.ReducedEdgeCount())
		imputed := 0
		byClass := map[cocomac.Class]int{}
		for _, r := range net.Regions {
			byClass[r.Class]++
			if r.VolumeImputed {
				imputed++
			}
		}
		fmt.Printf("  classes: %d cortical, %d thalamic, %d basal ganglia\n",
			byClass[cocomac.Cortical], byClass[cocomac.Thalamic], byClass[cocomac.BasalGanglia])
		fmt.Printf("  volumes imputed with class medians: %d (paper: 5 cortical + 8 thalamic)\n", imputed)
	}

	if balanceFlag {
		res, err := net.BalancedMatrix()
		if err != nil {
			return err
		}
		fmt.Printf("balancing: converged in %d IPFP sweeps, residual %.2g\n", res.Iterations, res.Residual)
	}

	if fig3 {
		tabs, err := experiments.Fig3()
		if err != nil {
			return err
		}
		// Re-run at the requested core budget when it differs from the
		// experiment default.
		if cores != 4096 {
			rows, err := net.CoreAllocations(cores)
			if err != nil {
				return err
			}
			fmt.Printf("region allocations for a %d-core model:\n", cores)
			fmt.Printf("%-6s  %-13s  %8s  %8s  %4s\n", "region", "class", "paxinos", "balanced", "deg")
			for _, r := range rows {
				fmt.Printf("%-6s  %-13s  %8d  %8d  %4d\n", r.Name, r.Class.String(), r.PaxinosCores, r.BalancedCores, r.OutDegree)
			}
			return nil
		}
		for _, t := range tabs {
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
		}
	}

	if spec {
		s, err := net.ToSpec(cores, ticks)
		if err != nil {
			return err
		}
		return s.Encode(os.Stdout)
	}
	return nil
}
