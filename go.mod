module github.com/cognitive-sim/compass

go 1.23
