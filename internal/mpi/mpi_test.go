package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPointToPointBasic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Isend(1, 7, []byte("hello"))
		}
		data, from, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if from != 0 || string(data) != "hello" {
			return fmt.Errorf("got %q from %d", data, from)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBufferReusableImmediately(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte{1, 2, 3}
			if err := c.Isend(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // must not corrupt the in-flight message
			return nil
		}
		data, _, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if data[0] != 1 {
			return fmt.Errorf("message corrupted by sender reuse: %v", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPairwiseFIFOOrdering(t *testing.T) {
	const n = 100
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Isend(1, 0, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			data, _, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			if data[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order: %d", i, data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Isend(1, 5, []byte("five")); err != nil {
				return err
			}
			return c.Isend(1, 9, []byte("nine"))
		}
		// Receive the tag-9 message first even though tag 5 arrived first.
		data, _, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		if string(data) != "nine" {
			return fmt.Errorf("tag 9 recv got %q", data)
		}
		data, _, err = c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(data) != "five" {
			return fmt.Errorf("tag 5 recv got %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceRecv(t *testing.T) {
	const world = 8
	err := Run(world, func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Isend(0, 1, []byte{byte(c.Rank())})
		}
		seen := make(map[int]bool)
		for i := 0; i < world-1; i++ {
			data, from, err := c.Recv(AnySource, 1)
			if err != nil {
				return err
			}
			if int(data[0]) != from {
				return fmt.Errorf("payload %d from rank %d", data[0], from)
			}
			if seen[from] {
				return fmt.Errorf("duplicate message from %d", from)
			}
			seen[from] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if err := c.Isend(0, 3, []byte("me")); err != nil {
			return err
		}
		data, from, err := c.Recv(0, 3)
		if err != nil {
			return err
		}
		if from != 0 || string(data) != "me" {
			return fmt.Errorf("self-send got %q from %d", data, from)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendInvalidRank(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Isend(5, 0, nil); err == nil {
				return errors.New("send to invalid rank accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobeAndProbe(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Isend(1, 4, []byte("abcd"))
		}
		if ok, _, _ := c.Iprobe(AnySource, AnyTag); ok {
			return errors.New("Iprobe true before any send")
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		from, n, err := c.Probe(0, 4)
		if err != nil {
			return err
		}
		if from != 0 || n != 4 {
			return fmt.Errorf("Probe = (%d, %d)", from, n)
		}
		// Probe must not consume: the message is still receivable, and
		// Iprobe agrees.
		ok, from2, n2 := c.Iprobe(0, 4)
		if !ok || from2 != 0 || n2 != 4 {
			return fmt.Errorf("Iprobe after Probe = (%v, %d, %d)", ok, from2, n2)
		}
		data, _, err := c.Recv(0, 4)
		if err != nil {
			return err
		}
		if !bytes.Equal(data, []byte("abcd")) {
			return fmt.Errorf("Recv got %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const world = 16
	var before, violations atomic.Int64
	err := Run(world, func(c *Comm) error {
		before.Add(1)
		if err := c.Barrier(); err != nil {
			return err
		}
		if before.Load() != world {
			violations.Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if violations.Load() != 0 {
		t.Fatalf("%d ranks passed the barrier before all arrived", violations.Load())
	}
}

func TestRepeatedBarriers(t *testing.T) {
	err := Run(7, func(c *Comm) error {
		for i := 0; i < 200; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterSum(t *testing.T) {
	// Rank s contributes counts[d] = s*10 + d. The result at rank d must
	// be sum over s of (s*10 + d) = 10*(0+..+size-1) + size*d.
	const world = 6
	err := Run(world, func(c *Comm) error {
		counts := make([]int64, world)
		for d := range counts {
			counts[d] = int64(c.Rank()*10 + d)
		}
		got, err := c.ReduceScatterSum(counts)
		if err != nil {
			return err
		}
		want := int64(10*(world*(world-1)/2) + world*c.Rank())
		if got != want {
			return fmt.Errorf("rank %d: ReduceScatterSum = %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterSumLengthCheck(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.ReduceScatterSum([]int64{1}); err == nil {
				return errors.New("short vector accepted")
			}
		}
		// Rank 1 must still contribute a real vector or rank 0's early
		// error return would deadlock... but rank 0 errors before entering
		// the collective, so both ranks return without meeting.
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSumAndMax(t *testing.T) {
	const world = 5
	err := Run(world, func(c *Comm) error {
		r := int64(c.Rank())
		sum, err := c.AllreduceSum([]int64{r, 1})
		if err != nil {
			return err
		}
		if sum[0] != world*(world-1)/2 || sum[1] != world {
			return fmt.Errorf("AllreduceSum = %v", sum)
		}
		max, err := c.AllreduceMax([]int64{r, -r})
		if err != nil {
			return err
		}
		if max[0] != world-1 || max[1] != 0 {
			return fmt.Errorf("AllreduceMax = %v", max)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const world = 4
	err := Run(world, func(c *Comm) error {
		vals := make([]int64, world)
		for d := range vals {
			vals[d] = int64(c.Rank()*100 + d)
		}
		got, err := c.Alltoall(vals)
		if err != nil {
			return err
		}
		for s := range got {
			want := int64(s*100 + c.Rank())
			if got[s] != want {
				return fmt.Errorf("rank %d: Alltoall[%d] = %d, want %d", c.Rank(), s, got[s], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorAbortsBlockedRanks(t *testing.T) {
	sentinel := errors.New("rank 0 failed")
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			return sentinel
		}
		// These ranks block forever waiting for a message that never
		// comes; the abort must unblock them.
		_, _, err := c.Recv(0, 0)
		return err
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run returned %v, want sentinel", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return c.Barrier()
	})
	if err == nil {
		t.Fatal("panicking rank produced nil error")
	}
}

func TestTrafficCounters(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Isend(1, 0, make([]byte, 100)); err != nil {
				return err
			}
			return c.Isend(1, 0, make([]byte, 50))
		}
		for i := 0; i < 2; i++ {
			if _, _, err := c.Recv(0, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, b := w.Stats()
	if msgs != 2 || b != 150 {
		t.Fatalf("Stats = (%d, %d), want (2, 150)", msgs, b)
	}
	w.ResetStats()
	msgs, b = w.Stats()
	if msgs != 0 || b != 0 {
		t.Fatalf("after reset Stats = (%d, %d)", msgs, b)
	}
}

func TestPendingMessages(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				if err := c.Isend(1, 0, nil); err != nil {
					return err
				}
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if n := c.PendingMessages(); n != 3 {
			return fmt.Errorf("PendingMessages = %d, want 3", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: the reduce-scatter + point-to-point pattern Compass relies on
// always delivers exactly the announced number of messages, for arbitrary
// sparse communication patterns.
func TestQuickSparseExchangePattern(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		size := int(sizeRaw%6) + 2
		// Deterministic pseudo-random sparse pattern from the seed.
		send := make([][]bool, size)
		s := seed
		next := func() uint64 { s ^= s << 13; s ^= s >> 7; s ^= s << 17; return s }
		for i := range send {
			send[i] = make([]bool, size)
			for j := range send[i] {
				send[i][j] = next()%3 == 0
			}
		}
		ok := true
		err := Run(size, func(c *Comm) error {
			counts := make([]int64, size)
			for d := 0; d < size; d++ {
				if send[c.Rank()][d] {
					counts[d] = 1
					if err := c.Isend(d, 1, []byte{byte(c.Rank())}); err != nil {
						return err
					}
				}
			}
			expect, err := c.ReduceScatterSum(counts)
			if err != nil {
				return err
			}
			for i := int64(0); i < expect; i++ {
				data, from, err := c.Recv(AnySource, 1)
				if err != nil {
					return err
				}
				if int(data[0]) != from || !send[from][c.Rank()] {
					return fmt.Errorf("unexpected message from %d", from)
				}
			}
			// Nothing must remain queued.
			if err := c.Barrier(); err != nil {
				return err
			}
			if n := c.PendingMessages(); n != 0 {
				return fmt.Errorf("%d stray messages", n)
			}
			return nil
		})
		if err != nil {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPointToPoint(b *testing.B) {
	w := NewWorld(2)
	payload := make([]byte, 256)
	done := make(chan error, 1)
	go func() {
		c := w.Comm(1)
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Recv(0, 0); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	c := w.Comm(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Isend(1, 0, payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBarrier8(b *testing.B) {
	w := NewWorld(8)
	err := w.Run(func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	const world = 5
	err := Run(world, func(c *Comm) error {
		var vals []int64
		if c.Rank() == 2 {
			vals = []int64{7, 8, 9}
		}
		got, err := c.Bcast(2, vals)
		if err != nil {
			return err
		}
		if len(got) != 3 || got[0] != 7 || got[2] != 9 {
			return fmt.Errorf("rank %d: Bcast = %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Bcast(9, nil); err == nil {
				return errors.New("bad root accepted")
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	const world = 4
	err := Run(world, func(c *Comm) error {
		got, err := c.Gather(1, []int64{int64(c.Rank()) * 10, int64(c.Rank())*10 + 1})
		if err != nil {
			return err
		}
		if c.Rank() != 1 {
			if got != nil {
				return fmt.Errorf("non-root rank %d received %v", c.Rank(), got)
			}
			return nil
		}
		want := []int64{0, 1, 10, 11, 20, 21, 30, 31}
		if len(got) != len(want) {
			return fmt.Errorf("root got %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("root got %v, want %v", got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Gather(-1, nil); err == nil {
				return errors.New("bad root accepted")
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
