// Package compass implements the Compass parallel simulator for networks
// of TrueNorth neurosynaptic cores — the paper's primary contribution.
//
// Compass partitions the cores of a model across ranks (the paper's MPI
// processes, one per Blue Gene/Q node) and, within each rank, across
// threads (the paper's OpenMP threads). Each simulated tick executes
// three phases (Listing 1 of the paper):
//
//   - Synapse phase: threads propagate every pending axon spike across
//     the crossbars of their cores.
//   - Neuron phase: threads integrate, leak, and fire every neuron,
//     aggregating spikes bound for remote ranks into per-destination
//     buffers so each pair of ranks exchanges at most one message per
//     tick.
//   - Network phase: pluggable behind the Transport interface (see
//     transport.go). With the MPI transport, the master thread issues a
//     Reduce-scatter to learn how many messages to expect while the other
//     threads deliver process-local spikes (overlapping communication
//     with computation, §III), then all threads take turns receiving
//     messages inside a critical section and deliver the contained spikes
//     outside it. With the PGAS transport, spikes are instead deposited
//     directly into globally addressable buffers with one-sided puts and
//     a single global barrier replaces the Reduce-scatter (§VII). The
//     shmem transport exploits the fact that ranks share one process: it
//     swaps raw per-destination spike slices directly between rank
//     states, skipping wire encoding and decoding entirely.
//
// The simulator is bit-faithful to the serial reference in
// internal/truenorth for every decomposition: the multiset of spikes
// produced is identical across rank counts, thread counts, and the MPI,
// PGAS, and shmem transports. That invariance is what lets Compass serve
// as "the key contract between hardware architects and software
// designers".
package compass

import (
	"fmt"

	"github.com/cognitive-sim/compass/internal/faults"
	"github.com/cognitive-sim/compass/internal/truenorth"
	"github.com/cognitive-sim/compass/internal/workpool"
)

// Transport selects the Network-phase communication model.
type Transport int

const (
	// TransportMPI is the two-sided message-passing implementation with
	// per-destination aggregation and a Reduce-scatter per tick (§III).
	TransportMPI Transport = iota
	// TransportPGAS is the one-sided implementation with direct puts into
	// remote spike windows and a single global barrier per tick (§VII).
	TransportPGAS
	// TransportShmem is the zero-copy in-process implementation: raw
	// per-destination spike slices are swapped directly between rank
	// states around a barrier, with no wire encoding or decoding. It has
	// no hardware analogue in the paper; it is the fast path when all
	// ranks share one process (which in this simulator they always do).
	TransportShmem
)

// String names the transport.
func (t Transport) String() string {
	switch t {
	case TransportMPI:
		return "mpi"
	case TransportPGAS:
		return "pgas"
	case TransportShmem:
		return "shmem"
	default:
		return "unknown"
	}
}

// ParseTransport maps a transport name to its constant.
func ParseTransport(s string) (Transport, error) {
	switch s {
	case "mpi":
		return TransportMPI, nil
	case "pgas":
		return TransportPGAS, nil
	case "shmem":
		return TransportShmem, nil
	default:
		return 0, fmt.Errorf("compass: unknown transport %q (want mpi, pgas, or shmem)", s)
	}
}

// Transports lists every built-in transport, in flag-name order.
func Transports() []Transport {
	return []Transport{TransportMPI, TransportPGAS, TransportShmem}
}

// Config describes a parallel simulation run.
type Config struct {
	// Ranks is the number of simulated MPI processes (Blue Gene nodes).
	Ranks int
	// ThreadsPerRank is the number of worker threads per rank; the paper
	// runs 32 OpenMP threads per process on Blue Gene/Q.
	ThreadsPerRank int
	// Transport selects the Network-phase backend (MPI, PGAS, or shmem).
	Transport Transport
	// RankOf optionally places core i on rank RankOf[i]; when nil, cores
	// are partitioned into contiguous uniform blocks. The Parallel
	// Compass Compiler supplies region-aware placements.
	RankOf []int
	// RecordTrace collects every spike into RunStats.Trace (tick, target);
	// used by equivalence tests. Expensive on large runs.
	RecordTrace bool
	// RecordPerTick collects per-tick statistics into RunStats.PerTick.
	RecordPerTick bool
	// StartFrom resumes the simulation from a checkpoint instead of the
	// initial state. Checkpoints are decomposition-portable: one taken
	// under any (ranks, threads, transport) restores under any other.
	StartFrom *truenorth.Checkpoint
	// ReturnState captures the final state into RunStats.Final.
	ReturnState bool
	// MeasurePhases accumulates wall-clock per main-loop phase into
	// RunStats.PhaseSeconds (the host-measured analogue of Figure 4(a)'s
	// per-phase breakdown).
	MeasurePhases bool
	// Telemetry optionally attaches a run-scoped instrument bundle: the
	// sharded metrics registry, per-phase span timers, and the Perfetto
	// trace recorder (see telemetry.go). A non-nil Telemetry implies
	// phase measurement; RunStats.PhaseSeconds is populated either way.
	// The bundle must have been built for at least Ranks shards.
	Telemetry *Telemetry
	// Faults optionally attaches a deterministic fault injector that the
	// transport backends consult at their send and drain points and at
	// Exchange entry (see internal/faults). Survivable faults (drop,
	// dup, delay, stall) are absorbed by retry and receiver-side
	// deduplication, leaving spike output bit-identical; fatal faults
	// (crash, drop past the retry budget) fail the run with an error
	// naming the rank and tick, never a hang.
	Faults *faults.Injector
	// ForceScalar pins every core to the scalar Synapse path and
	// disables quiescent-core skipping. Output is bit-identical either
	// way; the flag exists so the kernel benchmark and conformance tests
	// can measure and verify the fast path against the reference.
	ForceScalar bool
	// InputSource optionally streams external input spikes into the run:
	// every rank polls it once per tick boundary and injects the spikes
	// it owns. Model-scheduled inputs (Model.Inputs) are applied first.
	InputSource InputSource
	// OutputSink optionally observes every fired spike live, per rank and
	// per tick, before the tick's Network phase. Sessions use it for
	// streaming spike egress; nil costs nothing.
	OutputSink OutputSink
	// Workers optionally bounds this run's extra worker goroutines
	// through a shared daemon-wide budget: each rank's thread team
	// acquires up to ThreadsPerRank-1 slots and multiplexes its logical
	// threads over whatever it was granted. Results are bit-identical for
	// any grant. Nil means unlimited (every rank gets its full team).
	Workers *workpool.Limiter
}

// InputSource feeds externally streamed input spikes into a running
// simulation at tick boundaries — the live analogue of Model.Inputs.
type InputSource interface {
	// SpikesFor returns the batch of external spikes to apply at tick t.
	// Every rank calls it once per tick and must observe the same batch
	// for the same t; because neighbouring ranks can be one tick apart,
	// implementations must keep the batches of adjacent ticks stable once
	// first returned. A spike's Tick field is source bookkeeping only —
	// delivery is at tick t. Each rank injects the spikes whose target
	// core it owns; spikes addressing cores outside the model or axons
	// out of range are dropped and counted in RunStats.DroppedInputs.
	SpikesFor(t uint64) []truenorth.InputSpike
}

// OutputSink receives the simulation's fired spikes live. Emit is called
// by each rank once per tick that fired at least one spike, concurrently
// across ranks; events is reused by the caller and must not be retained
// after Emit returns.
type OutputSink interface {
	Emit(rank int, t uint64, events []truenorth.SpikeEvent)
}

// Validate checks the configuration against a model.
func (c *Config) Validate(m *truenorth.Model) error {
	return c.validateCores(len(m.Cores))
}

// ValidateImage checks the configuration against an immutable image.
func (c *Config) ValidateImage(img *truenorth.Image) error {
	return c.validateCores(img.NumCores())
}

// validateCores is the model-independent configuration check shared by
// Validate and ValidateImage.
func (c *Config) validateCores(numCores int) error {
	if c.Ranks < 1 {
		return fmt.Errorf("compass: %d ranks", c.Ranks)
	}
	if c.ThreadsPerRank < 1 {
		return fmt.Errorf("compass: %d threads per rank", c.ThreadsPerRank)
	}
	if c.Transport != TransportMPI && c.Transport != TransportPGAS && c.Transport != TransportShmem {
		return fmt.Errorf("compass: unknown transport %d", c.Transport)
	}
	if numCores == 0 {
		return fmt.Errorf("compass: model has no cores")
	}
	if c.Ranks > numCores {
		return fmt.Errorf("compass: %d ranks for %d cores", c.Ranks, numCores)
	}
	if c.Telemetry != nil && c.Telemetry.Registry().Shards() < c.Ranks {
		return fmt.Errorf("compass: telemetry built for %d shards, run has %d ranks",
			c.Telemetry.Registry().Shards(), c.Ranks)
	}
	if c.RankOf != nil {
		if len(c.RankOf) != numCores {
			return fmt.Errorf("compass: placement covers %d of %d cores", len(c.RankOf), numCores)
		}
		for i, r := range c.RankOf {
			if r < 0 || r >= c.Ranks {
				return fmt.Errorf("compass: core %d placed on rank %d of %d", i, r, c.Ranks)
			}
		}
	}
	return nil
}

// placement returns the rank of every core, materializing the default
// contiguous block partition when no explicit placement is given.
func (c *Config) placement(numCores int) []int {
	if c.RankOf != nil {
		return c.RankOf
	}
	out := make([]int, numCores)
	per := numCores / c.Ranks
	rem := numCores % c.Ranks
	idx := 0
	for r := 0; r < c.Ranks; r++ {
		n := per
		if r < rem {
			n++
		}
		for k := 0; k < n; k++ {
			out[idx] = r
			idx++
		}
	}
	return out
}
