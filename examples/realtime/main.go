// Realtime: the §VII experiment at host scale — the synthetic benchmark
// network (75% of connections node-local, neurons firing at ~10 Hz) run
// under both the MPI and the PGAS transports, plus the calibrated Blue
// Gene/P projection that reproduces Figure 7's conclusion: one-sided
// PGAS communication sustains soft real time at core counts where
// two-sided MPI does not.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/experiments"
	"github.com/cognitive-sim/compass/internal/perfmodel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		ranks        = 8
		coresPerRank = 16
		ticks        = 500
	)
	model, err := experiments.SyntheticModel(ranks, coresPerRank, 0.75, 10, 2024)
	if err != nil {
		return err
	}
	fmt.Printf("synthetic network: %d cores on %d ranks, 75%% rank-local connectivity, ~10 Hz\n\n",
		model.NumCores(), ranks)

	// Functional runs under every transport: identical spikes, different
	// communication structure (shmem is the host-only zero-copy path).
	for _, tr := range compass.Transports() {
		t0 := time.Now()
		stats, err := compass.Run(model, compass.Config{
			Ranks: ranks, ThreadsPerRank: 2, Transport: tr,
		}, ticks)
		if err != nil {
			return err
		}
		elapsed := time.Since(t0)
		fmt.Printf("%-4s: %6d spikes (%.1f Hz), %5.1f remote spikes/tick, %5.1f msgs|puts/tick, wall %v (%.2f ms/tick)\n",
			tr, stats.TotalSpikes, stats.AvgFiringRateHz(), stats.SpikesPerTick(),
			stats.MessagesPerTick(), elapsed.Round(time.Millisecond),
			elapsed.Seconds()*1000/float64(ticks))
	}

	// Projection at paper scale: 81K cores over four Blue Gene/P racks.
	fmt.Println("\nprojected on Blue Gene/P (81,920 cores, 1000 ticks):")
	machine := perfmodel.BlueGeneP()
	for _, racks := range []int{1, 2, 4} {
		nodes := racks * 1024
		w, err := perfmodel.SyntheticUniform(nodes, 81920/nodes, 10, 0.75, 0.10)
		if err != nil {
			return err
		}
		pgasT, err := perfmodel.Project(machine, w, 4, compass.TransportPGAS)
		if err != nil {
			return err
		}
		mpiT, err := perfmodel.Project(machine, w, 4, compass.TransportMPI)
		if err != nil {
			return err
		}
		rt := ""
		if pgasT.Total() <= 0.00125 {
			rt = "  <- soft real time"
		}
		fmt.Printf("  %d rack(s): PGAS %.2f s, MPI %.2f s (%.1fx)%s\n",
			racks, pgasT.Total()*1000, mpiT.Total()*1000, mpiT.Total()/pgasT.Total(), rt)
	}
	fmt.Println("\npaper: PGAS simulated 81K cores in 1 s per 1000 ticks on 4 racks; MPI took 2.1x as long.")
	return nil
}
