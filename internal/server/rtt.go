package server

import (
	"sort"
	"sync"
	"time"

	"github.com/cognitive-sim/compass/internal/telemetry"
)

// rttTracker measures a session's inject→first-egress round trip: the
// wall-clock time from a stream inject landing in the session's source
// to the next egress emission from the tick loop. One marker is
// outstanding at a time — a new inject only arms the clock when the
// previous round trip has resolved — so bursts of frames measure the
// loop's service latency rather than their own queueing.
//
// Samples feed the per-session compassd_stream_rtt_seconds histogram on
// /metrics and a bounded in-memory reservoir from which Info reports
// p50/p99.
type rttTracker struct {
	mu      sync.Mutex
	armed   bool
	t0      time.Time
	hist    telemetry.Histogram
	count   uint64
	samples []float64 // ring of recent round trips, seconds
	next    int
}

// rttSampleCap bounds the in-memory percentile reservoir per session.
const rttSampleCap = 512

// rttBounds are the histogram bucket boundaries in seconds: 10µs to 10s
// on a log scale, covering in-process loops through cluster proxies.
var rttBounds = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10,
}

func newRTTTracker(hist telemetry.Histogram) *rttTracker {
	return &rttTracker{hist: hist}
}

// noteInject arms the round-trip clock if no marker is outstanding.
func (r *rttTracker) noteInject() {
	r.mu.Lock()
	if !r.armed {
		r.armed = true
		r.t0 = time.Now()
	}
	r.mu.Unlock()
}

// noteEgress resolves an outstanding marker into one sample.
func (r *rttTracker) noteEgress() {
	r.mu.Lock()
	if !r.armed {
		r.mu.Unlock()
		return
	}
	d := time.Since(r.t0).Seconds()
	r.armed = false
	r.count++
	if len(r.samples) < rttSampleCap {
		r.samples = append(r.samples, d)
	} else {
		r.samples[r.next] = d
		r.next = (r.next + 1) % rttSampleCap
	}
	r.mu.Unlock()
	r.hist.Observe(0, d)
}

// RTTStats is the Info JSON view of the tracker.
type RTTStats struct {
	Count      uint64  `json:"count"`
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// stats snapshots percentile estimates over the recent-sample ring.
func (r *rttTracker) stats() RTTStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RTTStats{Count: r.count}
	if len(r.samples) == 0 {
		return st
	}
	sorted := append([]float64(nil), r.samples...)
	sort.Float64s(sorted)
	st.P50Seconds = percentile(sorted, 0.50)
	st.P99Seconds = percentile(sorted, 0.99)
	return st
}

// percentile reads the q-quantile from an ascending slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
