package scenario

import (
	"fmt"
	"reflect"
	"sort"
	"sync"

	"github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/spikeio"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// Replay re-executes a completed run offline and pins the determinism
// claim: the recorded inject stream is scheduled as Model.Inputs of a
// direct compass.Run (no daemon, no stream plane, any decomposition),
// the task is rebuilt from the same seed, and the replay must
// regenerate the identical inject bytes window by window and arrive at
// the identical score. A mismatch means the live serving path altered
// the closed loop — exactly what the subsystem promises never happens.
func Replay(spec *Spec, res *Result, cfg compass.Config) error {
	task, err := spec.New(res.Seed)
	if err != nil {
		return err
	}
	w := task.Wiring()

	model := w.Model
	model.Inputs = model.Inputs[:0]
	for _, ev := range res.Injected {
		model.Inputs = append(model.Inputs, truenorth.InputSpike{Tick: ev.Tick, Core: ev.Core, Axon: ev.Axon})
	}

	if cfg.Ranks == 0 {
		cfg.Ranks = 1
	}
	if cfg.ThreadsPerRank == 0 {
		cfg.ThreadsPerRank = 1
	}
	sink := &captureSink{}
	cfg.OutputSink = sink
	total := uint64(res.Episodes) * uint64(res.Steps) * spec.WindowTicks
	if _, err := compass.Run(model, cfg, int(total)); err != nil {
		return fmt.Errorf("scenario: replay run: %w", err)
	}
	egress := sink.sorted()

	// Walk the episode loop exactly as the engine did, checking that the
	// rebuilt task regenerates each window's inject bytes before feeding
	// it the decision decoded from the offline egress.
	injected := res.Injected
	cursor := uint64(0)
	low := 0
	for ep := 0; ep < res.Episodes; ep++ {
		task.Reset(ep)
		for st := 0; st < res.Steps; st++ {
			start := cursor
			events, err := task.Emit(st, start)
			if err != nil {
				return fmt.Errorf("scenario: replay emit ep %d step %d: %w", ep, st, err)
			}
			if len(events) > len(injected) {
				return fmt.Errorf("scenario: replay ep %d step %d: emits %d events, only %d recorded remain", ep, st, len(events), len(injected))
			}
			for i, ev := range events {
				if injected[i] != ev {
					return fmt.Errorf("scenario: replay ep %d step %d: inject record %d = %+v, recorded %+v", ep, st, i, ev, injected[i])
				}
			}
			injected = injected[len(events):]

			end := spec.DecideEnd(start)
			for low < len(egress) && egress[low].Tick < start {
				low++
			}
			hi := low
			for hi < len(egress) && egress[hi].Tick < end {
				hi++
			}
			d := decideWindow(w, egress[low:hi], start, end)
			if d.Action >= 0 {
				d.FirstTick -= start
			}
			task.Feedback(st, d)
			cursor += spec.WindowTicks
		}
	}
	if len(injected) != 0 {
		return fmt.Errorf("scenario: replay left %d recorded inject records unaccounted for", len(injected))
	}
	got := task.Score()
	if !reflect.DeepEqual(got, res.Score) {
		return fmt.Errorf("scenario: replay score %+v, live score %+v", got, res.Score)
	}
	return nil
}

// captureSink collects every fired spike from a direct run; Emit is
// called concurrently across ranks.
type captureSink struct {
	mu     sync.Mutex
	events []spikeio.Event
}

func (c *captureSink) Emit(rank int, t uint64, events []truenorth.SpikeEvent) {
	c.mu.Lock()
	for _, ev := range events {
		c.events = append(c.events, spikeio.Event{Tick: ev.FireTick, Core: ev.Target.Core, Axon: ev.Target.Axon})
	}
	c.mu.Unlock()
}

func (c *captureSink) sorted() []spikeio.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Slice(c.events, func(a, b int) bool {
		if c.events[a].Tick != c.events[b].Tick {
			return c.events[a].Tick < c.events[b].Tick
		}
		if c.events[a].Core != c.events[b].Core {
			return c.events[a].Core < c.events[b].Core
		}
		return c.events[a].Axon < c.events[b].Axon
	})
	return c.events
}
