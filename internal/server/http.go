package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/cognitive-sim/compass/internal/cocomac"
	sim "github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/faults"
	"github.com/cognitive-sim/compass/internal/modelcache"
	"github.com/cognitive-sim/compass/internal/pcc"
	"github.com/cognitive-sim/compass/internal/telemetry"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// CreateRequest is the POST /v1/sessions body.
type CreateRequest struct {
	Name   string     `json:"name,omitempty"`
	Source SourceSpec `json:"source"`
	// Ranks, Threads, Transport pick the decomposition; Transport
	// defaults to "shmem", Ranks and Threads to 1.
	Ranks     int    `json:"ranks,omitempty"`
	Threads   int    `json:"threads,omitempty"`
	Transport string `json:"transport,omitempty"`
	// Ticks is the number of ticks to simulate.
	Ticks uint64 `json:"ticks"`
	// ChunkTicks overrides the server's pause/checkpoint granularity.
	ChunkTicks int `json:"chunk_ticks,omitempty"`
	// CheckpointBase64 optionally resumes from a binary checkpoint (the
	// format WriteCheckpoint produces, e.g. a drained session's file).
	CheckpointBase64 string `json:"checkpoint_base64,omitempty"`
	// StartPaused creates the session parked before its first tick so
	// stream clients can attach before any spike fires; release it with
	// POST /v1/sessions/{id}/resume.
	StartPaused bool `json:"start_paused,omitempty"`
	// Faults optionally arms deterministic fault injection for the
	// session (the cmd/compass -faults grammar, e.g.
	// "crash:rank=1:tick=50"); FaultSeed seeds its probabilistic rules.
	// Chaos drills use this to kill a daemon mid-run and assert cluster
	// failover restores the session bit-identically elsewhere.
	Faults    string `json:"faults,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Placement records how the session landed on this daemon; direct
	// creates leave it empty ("local"), coordinators stamp their
	// decision string.
	Placement string `json:"placement,omitempty"`
	// Scenario labels the closed-loop workload that will drive the
	// session (a scenario registry name); reported in Info and used to
	// key per-scenario telemetry.
	Scenario string `json:"scenario,omitempty"`
}

// StepRequest is the POST /v1/sessions/{id}/step body: grant the
// session a budget of exactly Ticks further ticks, then park. The
// response is the session's Info after the budget resolves.
type StepRequest struct {
	Ticks uint64 `json:"ticks"`
	// MinInjected, when set, is the step's inject barrier: the daemon
	// holds the grant until the session has ingested at least this many
	// streamed spikes, so stimuli sent (on the separate stream
	// connection) before the step was asked are guaranteed to land in
	// the granted ticks. Lock-step clients pass their cumulative sent
	// record count.
	MinInjected uint64 `json:"min_injected,omitempty"`
}

// ScenarioReportRequest is the POST /v1/sessions/{id}/scenario-report
// body: a closed-loop client folding episode progress into the daemon's
// per-scenario telemetry. Scenario defaults to the session's label.
type ScenarioReportRequest struct {
	Scenario string  `json:"scenario,omitempty"`
	Episodes uint64  `json:"episodes"`
	Steps    uint64  `json:"steps"`
	Reward   float64 `json:"reward"`
}

// SourceSpec selects where the session's model comes from.
type SourceSpec struct {
	// Kind is "cocomac" (built-in macaque network), "spec" (inline
	// CoreObject JSON, compiled by the PCC), or "model" (binary model,
	// base64).
	Kind string `json:"kind"`
	// Seed and Cores shape the generated CoCoMac network; InputTicks is
	// the duration of its generated thalamic stimulus.
	Seed       uint64 `json:"seed,omitempty"`
	Cores      int    `json:"cores,omitempty"`
	InputTicks uint64 `json:"input_ticks,omitempty"`
	// Spec is the inline CoreObject network description.
	Spec json.RawMessage `json:"spec,omitempty"`
	// ModelBase64 is a binary model (the format WriteModel produces).
	ModelBase64 string `json:"model_base64,omitempty"`
}

// buildImage materializes the request's model image through the
// manager's content-addressed cache: two requests that would compile
// identically (same spec document and ranks, or same model bytes) share
// one immutable image, and concurrent identical requests deduplicate to
// a single compilation.
func (srv *Server) buildImage(src SourceSpec, ranks int) (*modelcache.Entry, error) {
	cache := srv.mgr.ModelCache()
	compile := func(spec *coreobject.NetworkSpec) (*modelcache.Entry, error) {
		key, err := modelcache.SpecKey(spec, ranks)
		if err != nil {
			return nil, err
		}
		e, _, err := cache.GetOrBuild(key, func() (*modelcache.Entry, error) {
			res, err := pcc.CompileLimited(spec, ranks, srv.mgr.Limiter())
			if err != nil {
				return nil, fmt.Errorf("server: compile: %w", err)
			}
			return &modelcache.Entry{Image: res.Image, RankOf: res.RankOf, Ranks: res.Ranks}, nil
		})
		return e, err
	}
	switch src.Kind {
	case "cocomac":
		cores := src.Cores
		if cores <= 0 {
			cores = 128
		}
		inputTicks := src.InputTicks
		if inputTicks == 0 {
			inputTicks = 1_000_000 // effectively unbounded stimulus
		}
		net := cocomac.Generate(src.Seed)
		spec, err := net.ToSpec(cores, inputTicks)
		if err != nil {
			return nil, fmt.Errorf("server: cocomac: %w", err)
		}
		return compile(spec)
	case "spec":
		if len(src.Spec) == 0 {
			return nil, errors.New("server: source kind \"spec\" needs a spec document")
		}
		spec, err := coreobject.DecodeSpec(bytes.NewReader(src.Spec))
		if err != nil {
			return nil, fmt.Errorf("server: spec: %w", err)
		}
		return compile(spec)
	case "model":
		raw, err := base64.StdEncoding.DecodeString(src.ModelBase64)
		if err != nil {
			return nil, fmt.Errorf("server: model_base64: %w", err)
		}
		// Binary models carry no placement and their key is independent
		// of the requested ranks, so Ranks stays 0 ("no compiler info").
		e, _, err := cache.GetOrBuild(modelcache.ModelKey(raw), func() (*modelcache.Entry, error) {
			m, err := coreobject.ReadModel(bytes.NewReader(raw))
			if err != nil {
				return nil, fmt.Errorf("server: model: %w", err)
			}
			img, err := truenorth.NewImageLimited(m, srv.mgr.Limiter())
			if err != nil {
				return nil, fmt.Errorf("server: model: %w", err)
			}
			return &modelcache.Entry{Image: img}, nil
		})
		return e, err
	default:
		return nil, fmt.Errorf("server: unknown source kind %q (want cocomac, spec, or model)", src.Kind)
	}
}

// sessionFromRequest validates a create request into manager params.
func (srv *Server) sessionFromRequest(req *CreateRequest) (CreateParams, error) {
	if req.Ticks == 0 {
		return CreateParams{}, errors.New("server: ticks must be positive")
	}
	ranks := req.Ranks
	if ranks <= 0 {
		ranks = 1
	}
	threads := req.Threads
	if threads <= 0 {
		threads = 1
	}
	transport := sim.TransportShmem
	if req.Transport != "" {
		var err error
		transport, err = sim.ParseTransport(req.Transport)
		if err != nil {
			return CreateParams{}, err
		}
	}
	e, err := srv.buildImage(req.Source, ranks)
	if err != nil {
		return CreateParams{}, err
	}
	rankOf := e.RankOf
	if e.Ranks > 0 && e.Ranks < ranks {
		ranks = e.Ranks // the compiler dropped coreless trailing ranks
	} else if ranks > e.Image.NumCores() {
		ranks = e.Image.NumCores()
		rankOf = nil
	}
	p := CreateParams{
		Name:     req.Name,
		Image:    e.Image,
		CacheKey: e.Key,
		Cfg: sim.Config{
			Ranks:          ranks,
			ThreadsPerRank: threads,
			Transport:      transport,
			RankOf:         rankOf,
		},
		Ticks:       req.Ticks,
		ChunkTicks:  req.ChunkTicks,
		StartPaused: req.StartPaused,
		Placement:   req.Placement,
		Scenario:    req.Scenario,
	}
	if req.Faults != "" {
		inj, err := faults.Parse(req.Faults, req.FaultSeed)
		if err != nil {
			return CreateParams{}, fmt.Errorf("server: faults: %w", err)
		}
		p.Cfg.Faults = inj
	}
	if req.CheckpointBase64 != "" {
		raw, err := base64.StdEncoding.DecodeString(req.CheckpointBase64)
		if err != nil {
			return CreateParams{}, fmt.Errorf("server: checkpoint_base64: %w", err)
		}
		cp, err := coreobject.ReadCheckpoint(bytes.NewReader(raw))
		if err != nil {
			return CreateParams{}, fmt.Errorf("server: checkpoint: %w", err)
		}
		p.StartFrom = cp
	}
	return p, nil
}

// httpError is the JSON error envelope.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handler builds the control-plane mux.
func (srv *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		running, queued, total := srv.mgr.Counts()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":           "ok",
			"uptime_seconds":   int64(time.Since(srv.started).Seconds()),
			"stream_addr":      srv.StreamAddr(),
			"node":             srv.NodeID(),
			"advertise_http":   srv.AdvertiseHTTPAddr(),
			"advertise_stream": srv.AdvertiseStreamAddr(),
			"capacity": map[string]any{
				"used_seconds_per_tick":  srv.mgr.UsedCapacity(),
				"total_seconds_per_tick": srv.mgr.Capacity(),
				"memory_used_bytes":      srv.mgr.MemoryUsed(),
				"memory_budget_bytes":    srv.mgr.MemoryBudget(),
			},
			"resident_models": srv.mgr.ResidentImageHashes(),
			"sessions":        map[string]int{"running": running, "queued": queued, "total": total},
		})
	})
	mux.Handle("GET /metrics", MetricsHandler(srv.mgr.MetricsSnapshot))

	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req CreateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("server: decode request: %w", err))
			return
		}
		p, err := srv.sessionFromRequest(&req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		s, err := srv.mgr.Create(p)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrOverCapacity) {
				code = http.StatusTooManyRequests
			}
			httpError(w, code, err)
			return
		}
		writeJSON(w, http.StatusCreated, s.Info())
	})

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": srv.mgr.List()})
	})

	withSession := func(fn func(http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			s, err := srv.mgr.Get(r.PathValue("id"))
			if err != nil {
				httpError(w, http.StatusNotFound, err)
				return
			}
			fn(w, r, s)
		}
	}

	mux.HandleFunc("GET /v1/sessions/{id}", withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		writeJSON(w, http.StatusOK, s.Info())
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/pause", withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		if err := s.Pause(); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		// Pause resolves at the next chunk boundary; wait briefly so the
		// common case returns the settled state.
		s.WaitState(5*time.Second, func(st State) bool { return st != StateRunning })
		writeJSON(w, http.StatusOK, s.Info())
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/resume", withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		if err := s.Resume(); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, s.Info())
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/step", withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		var req StepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("server: decode step: %w", err))
			return
		}
		if req.MinInjected > 0 {
			if err := s.WaitInjected(req.MinInjected, 30*time.Second); err != nil {
				httpError(w, http.StatusGatewayTimeout, err)
				return
			}
		}
		if err := s.StepTicks(req.Ticks); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		// The budget resolves at a chunk boundary (paused) or run end
		// (terminal); wait so the caller observes the settled state and
		// can read the window's egress knowing the ticks have simulated.
		s.WaitState(60*time.Second, func(st State) bool {
			return st == StatePaused || st.Terminal()
		})
		writeJSON(w, http.StatusOK, s.Info())
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/scenario-report", withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		var req ScenarioReportRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("server: decode scenario report: %w", err))
			return
		}
		name := req.Scenario
		if name == "" {
			name = s.Scenario()
		}
		if name == "" {
			httpError(w, http.StatusBadRequest, errors.New("server: session has no scenario label and none was given"))
			return
		}
		srv.mgr.ScenarioReport(name, req.Episodes, req.Steps, req.Reward)
		writeJSON(w, http.StatusOK, s.Info())
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/stop", withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		if err := srv.mgr.Stop(s.ID); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		s.WaitState(5*time.Second, func(st State) bool { return st.Terminal() })
		writeJSON(w, http.StatusOK, s.Info())
	}))
	mux.HandleFunc("GET /v1/sessions/{id}/checkpoint", withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		cp := s.ExportCheckpoint()
		var buf bytes.Buffer
		if err := coreobject.WriteCheckpoint(&buf, cp); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Compass-Checkpoint-Tick", fmt.Sprint(cp.Tick))
		w.Write(buf.Bytes())
	}))
	mux.HandleFunc("DELETE /v1/sessions/{id}", withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		if err := srv.mgr.Remove(s.ID); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))

	// Migration surface: export a parked session, import one exported
	// elsewhere, and serve models by content hash so importing nodes
	// pull only what they don't hold. See DESIGN.md §5h.
	mux.HandleFunc("POST /v1/sessions/{id}/export", withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		if err := parkForExport(s, 30*time.Second); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		doc, err := buildExportDoc(s)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, doc)
	}))
	mux.HandleFunc("POST /v1/sessions/import", func(w http.ResponseWriter, r *http.Request) {
		var req ImportRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("server: decode import: %w", err))
			return
		}
		s, err := srv.importSession(&req)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrOverCapacity) {
				code = http.StatusTooManyRequests
			}
			httpError(w, code, err)
			return
		}
		writeJSON(w, http.StatusCreated, s.Info())
	})
	mux.HandleFunc("GET /v1/models/{hash}", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		img, _, ok := srv.mgr.FindImageByHash(hash)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("server: model %.12s… not resident", hash))
			return
		}
		var buf bytes.Buffer
		if err := coreobject.WriteModel(&buf, img.Model()); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Compass-Model-Hash", hash)
		w.Write(buf.Bytes())
	})
	return mux
}

// MetricsHandler serves GET /metrics as Prometheus text exposition from
// the given snapshot source. It is shared between compassd and
// cmd/compass's -metrics-listen flag.
func MetricsHandler(snap func() *telemetry.Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := snap()
		if s == nil {
			http.Error(w, "no metrics registry attached", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WritePrometheus(w)
	})
}

// LiveMux builds a minimal /metrics + /healthz mux around a snapshot
// source — the handler cmd/compass mounts for -metrics-listen so a
// one-shot run can be scraped while it executes.
func LiveMux(snap func() *telemetry.Snapshot) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", MetricsHandler(snap))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	return mux
}
