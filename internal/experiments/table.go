// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI–VII): weak scaling (Fig. 4a), messaging analysis
// (Fig. 4b), strong scaling (Fig. 5), thread scaling (Fig. 6), the PGAS
// versus MPI real-time comparison (Fig. 7), the CoCoMac region
// allocation map (Fig. 3), the headline scale table (§I/§VI-B), the PCC
// in-situ compilation comparison (§IV), and the process-versus-thread
// tradeoff (§VI-D).
//
// Each experiment combines two layers. The measured layer runs the real
// functional simulator and compiler on this host at reduced scale, where
// workload statistics (spikes, messages, bytes) are exact. The projected
// layer feeds analytic paper-scale workloads through the calibrated Blue
// Gene machine model in internal/perfmodel. Shapes come from the
// measured/analytic workloads; absolute wall-clock anchors come from the
// calibration pinned in perfmodel's tests.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one reproduced table or figure, rendered as aligned text.
type Table struct {
	// ID is the experiment identifier ("fig4a", "headline", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the data, one string per column.
	Rows [][]string
	// Notes carries paper-versus-reproduction commentary printed after
	// the table.
	Notes []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
		_, err := io.WriteString(w, sb.String())
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Markdown writes the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "> %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as RFC-4180 CSV with a leading comment line
// carrying the ID and title, for downstream plotting.
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Experiment pairs an ID with its generator.
type Experiment struct {
	ID   string
	Name string
	Run  func() ([]*Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig3", "CoCoMac region core allocations", Fig3},
		{"fig4a", "Weak scaling, total and per-phase time", Fig4a},
		{"fig4b", "Messaging and data transfer analysis", Fig4b},
		{"fig5", "Strong scaling", Fig5},
		{"fig6", "OpenMP thread scaling", Fig6},
		{"fig7", "PGAS vs MPI real-time simulation", Fig7},
		{"headline", "Headline scale (256M cores, 388x real time)", Headline},
		{"pcc", "PCC in-situ compilation vs explicit model files", PCCSetup},
		{"tradeoff", "MPI processes vs OpenMP threads tradeoff", Tradeoff},
		{"ablation", "Communication design-choice ablations", Ablation},
		{"power", "TrueNorth hardware power estimation", Power},
		{"c2", "Compass vs the C2 baseline simulator", C2Comparison},
		{"kernel", "Bit-parallel Synapse kernel vs scalar reference", KernelComparison},
		{"admit", "Model-cache admission: cold vs cached", AdmitComparison},
	}
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fmtMS formats seconds as milliseconds.
func fmtMS(sec float64) string { return fmt.Sprintf("%.1f", sec*1000) }

// fmtF formats a float with one decimal.
func fmtF(v float64) string { return fmt.Sprintf("%.1f", v) }

// fmtI formats an integer with thousands grouping.
func fmtI(v int) string {
	s := fmt.Sprintf("%d", v)
	if v < 0 {
		return s
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}
