package compass_test

// One benchmark per table and figure of the paper's evaluation. Each
// regenerates the corresponding experiment (measured host-scale runs of
// the functional simulator plus paper-scale projections through the
// calibrated Blue Gene machine model) and reports domain-specific
// metrics alongside wall-clock. Run with:
//
//	go test -bench=. -benchmem
//
// The same tables print via `go run ./cmd/benchsuite`.

import (
	"strconv"
	"testing"

	compass "github.com/cognitive-sim/compass"
	"github.com/cognitive-sim/compass/internal/experiments"
)

// runExperiment executes an experiment driver b.N times.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		tabs, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(tabs) == 0 || len(tabs[0].Rows) == 0 {
			b.Fatal("experiment produced no data")
		}
	}
}

// BenchmarkFig3RegionAllocations regenerates the Figure 3 macaque region
// allocation table (Paxinos vs balanced core counts for 77 regions).
func BenchmarkFig3RegionAllocations(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4aWeakScaling regenerates Figure 4(a): weak scaling with
// total and per-phase times, projected on 1–16 Blue Gene/Q racks plus
// measured host-scale runs.
func BenchmarkFig4aWeakScaling(b *testing.B) { runExperiment(b, "fig4a") }

// BenchmarkFig4bMessaging regenerates Figure 4(b): MPI message count and
// white-matter spike count per tick versus CPU count.
func BenchmarkFig4bMessaging(b *testing.B) { runExperiment(b, "fig4b") }

// BenchmarkFig5StrongScaling regenerates Figure 5: a fixed 32M-core
// model over 1–16 racks (paper: 324 s → 47 s → 37 s for 500 ticks).
func BenchmarkFig5StrongScaling(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6ThreadScaling regenerates Figure 6: OpenMP thread scaling
// at 1 MPI process per node.
func BenchmarkFig6ThreadScaling(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7PGASRealTime regenerates Figure 7: PGAS vs MPI real-time
// simulation on Blue Gene/P (paper: 81K cores real-time under PGAS, MPI
// 2.1× slower), including functional runs of both transports.
func BenchmarkFig7PGASRealTime(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkHeadlineScale regenerates the §I/§VI-B headline table
// (256M cores, 65B neurons, 16T synapses, 388× real time).
func BenchmarkHeadlineScale(b *testing.B) { runExperiment(b, "headline") }

// BenchmarkPCCSetupTime regenerates the §IV set-up comparison: parallel
// in-situ compilation vs writing and reading the explicit model.
func BenchmarkPCCSetupTime(b *testing.B) { runExperiment(b, "pcc") }

// BenchmarkTradeoffProcsThreads regenerates the §VI-D processes-versus-
// threads tradeoff table.
func BenchmarkTradeoffProcsThreads(b *testing.B) { runExperiment(b, "tradeoff") }

// BenchmarkAblations regenerates the communication design-choice
// ablation table (spike aggregation, reduce-scatter overlap).
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkSimulatorThroughput measures the functional simulator's
// core-ticks per second on the CoCoMac workload at several rank counts —
// the host-scale analogue of the paper's time-to-solution metric.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run("ranks="+strconv.Itoa(ranks), func(b *testing.B) {
			net := compass.GenerateCoCoMac(2012)
			spec, err := net.ToSpec(154, 1<<16)
			if err != nil {
				b.Fatal(err)
			}
			res, err := compass.Compile(spec, ranks)
			if err != nil {
				b.Fatal(err)
			}
			const ticks = 50
			b.ResetTimer()
			totalSpikes := uint64(0)
			for i := 0; i < b.N; i++ {
				stats, err := compass.Run(res.Model, compass.Config{
					Ranks:          res.Ranks,
					ThreadsPerRank: 2,
					RankOf:         res.RankOf,
				}, ticks)
				if err != nil {
					b.Fatal(err)
				}
				totalSpikes += stats.TotalSpikes
			}
			b.ReportMetric(float64(res.Model.NumCores())*ticks*float64(b.N)/b.Elapsed().Seconds(), "core-ticks/s")
			b.ReportMetric(float64(totalSpikes)/float64(b.N)/ticks, "spikes/tick")
		})
	}
}

// BenchmarkTransports compares the MPI and PGAS transports of the
// functional simulator on the §VII synthetic workload.
func BenchmarkTransports(b *testing.B) {
	model, err := experiments.SyntheticModel(8, 8, 0.75, 10, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, tr := range []compass.Transport{compass.TransportMPI, compass.TransportPGAS} {
		b.Run(tr.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := compass.Run(model, compass.Config{
					Ranks: 8, ThreadsPerRank: 2, Transport: tr,
				}, 50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileCoCoMac measures Parallel Compass Compiler throughput
// on the macaque network.
func BenchmarkCompileCoCoMac(b *testing.B) {
	net := compass.GenerateCoCoMac(2012)
	spec, err := net.ToSpec(308, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := compass.Compile(spec, 8)
		if err != nil {
			b.Fatal(err)
		}
		if res.Model.NumCores() != 308 {
			b.Fatal("wrong model size")
		}
	}
	b.ReportMetric(308*float64(b.N)/b.Elapsed().Seconds(), "cores-compiled/s")
}
