package compass

import (
	"fmt"
	"time"

	"github.com/cognitive-sim/compass/internal/faults"
	"github.com/cognitive-sim/compass/internal/telemetry"
)

// This file binds the generic telemetry layer (internal/telemetry) to
// the simulator: the fixed instrument set every run exports, the phase
// vocabulary, and the nil-check-cheap accessor methods the hot path
// calls. Every method on *Telemetry and *transportProbe is a no-op on a
// nil receiver, so instrumented code needs no conditionals beyond the
// single nil test the method itself performs.
//
// Metric names, with their paper provenance, are listed in the README's
// Observability section.

// Phase identifies one instrumented section of the per-tick loop. The
// first three are the paper's Listing 1 phases (Synapse and Neuron now
// measured separately); the net* sub-phases decompose the Network phase
// per transport.
type Phase int

const (
	// PhaseSynapse is crossbar propagation of pending axon spikes.
	PhaseSynapse Phase = iota
	// PhaseNeuron is integrate/leak/fire plus per-destination spike
	// aggregation.
	PhaseNeuron
	// PhaseNetwork is the whole transport Exchange.
	PhaseNetwork
	// PhaseNetSend covers publishing outgoing spikes (sends, puts, or
	// slice swaps) overlapped with local delivery.
	PhaseNetSend
	// PhaseNetBarrier is the tick-closing collective (PGAS and shmem).
	PhaseNetBarrier
	// PhaseNetDrain is receiving and delivering incoming spikes.
	PhaseNetDrain
	numPhases
)

// String names the phase as it appears in metric labels and traces.
func (p Phase) String() string {
	switch p {
	case PhaseSynapse:
		return "synapse"
	case PhaseNeuron:
		return "neuron"
	case PhaseNetwork:
		return "network"
	case PhaseNetSend:
		return "net_send"
	case PhaseNetBarrier:
		return "net_barrier"
	case PhaseNetDrain:
		return "net_drain"
	default:
		return "unknown"
	}
}

// phaseBounds are the per-tick phase-duration histogram buckets, in
// seconds: 1 µs to 1 s in a 1-2.5-5 ladder. Host-scale ticks land in
// the middle decades; the tails catch degenerate and GC-hit ticks.
var phaseBounds = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1,
}

// Telemetry is one run's instrument bundle: a sharded registry (one
// shard per rank) plus a span tracer, with every simulator instrument
// pre-registered so the per-tick path allocates nothing. A nil
// *Telemetry disables all instrumentation at the cost of one nil check
// per call site.
type Telemetry struct {
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	base   []telemetry.Label

	phase [numPhases]telemetry.Histogram

	messages     telemetry.Counter
	wireBytes    telemetry.Counter
	localSpikes  telemetry.Counter
	remoteSpikes telemetry.Counter
	firings      telemetry.Counter

	kernelCores    telemetry.Gauge
	scalarCores    telemetry.Gauge
	kernelDispatch telemetry.Counter
	scalarDispatch telemetry.Counter
	synapseSkips   telemetry.Counter
	quiescentTicks telemetry.Counter
	droppedInputs  telemetry.Counter

	faultsInjectedBy [faults.NumClasses]telemetry.Counter
	faultRetries     telemetry.Counter
	faultDedups      telemetry.Counter
	faultAborts      telemetry.Counter
}

// NewTelemetry creates the instrument bundle for a run with the given
// rank count. Attach it via Config.Telemetry; after the run, scrape
// Registry() for metrics and Tracer() for the trace.
func NewTelemetry(ranks int) *Telemetry {
	return NewTelemetryWithLabels(ranks)
}

// NewTelemetryWithLabels creates the instrument bundle with base labels
// attached to every series — the server labels each session's bundle
// with session="<id>" so many sessions' snapshots merge into one valid
// Prometheus exposition.
func NewTelemetryWithLabels(ranks int, base ...telemetry.Label) *Telemetry {
	reg := telemetry.New(ranks)
	tr := telemetry.NewTracer(ranks)
	t := &Telemetry{reg: reg, tracer: tr, base: append([]telemetry.Label(nil), base...)}
	lbl := func(extra ...telemetry.Label) []telemetry.Label {
		return append(append([]telemetry.Label(nil), t.base...), extra...)
	}
	for p := Phase(0); p < numPhases; p++ {
		t.phase[p] = reg.Histogram("compass_phase_seconds",
			"per-tick wall-clock of one main-loop phase on one rank (Fig. 4a breakdown)",
			phaseBounds, lbl(telemetry.Label{Key: "phase", Value: p.String()})...)
	}
	t.messages = reg.Counter("compass_messages_total",
		"aggregated inter-rank messages sent (Fig. 4b)", lbl()...)
	t.wireBytes = reg.Counter("compass_wire_bytes_total",
		"modelled network payload: remote spikes x 20 B/spike (paper sec. VI-B)", lbl()...)
	t.localSpikes = reg.Counter("compass_spikes_total",
		"spikes delivered, by locality", lbl(telemetry.Label{Key: "kind", Value: "local"})...)
	t.remoteSpikes = reg.Counter("compass_spikes_total",
		"spikes delivered, by locality", lbl(telemetry.Label{Key: "kind", Value: "remote"})...)
	t.firings = reg.Counter("compass_firings_total",
		"neuron firings across all ranks", lbl()...)
	t.kernelCores = reg.Gauge("compass_cores",
		"cores placed, by Synapse-phase path", lbl(telemetry.Label{Key: "path", Value: "kernel"})...)
	t.scalarCores = reg.Gauge("compass_cores",
		"cores placed, by Synapse-phase path", lbl(telemetry.Label{Key: "path", Value: "scalar"})...)
	t.kernelDispatch = reg.Counter("compass_synapse_dispatch_total",
		"Synapse phases executed, by path", lbl(telemetry.Label{Key: "path", Value: "kernel"})...)
	t.scalarDispatch = reg.Counter("compass_synapse_dispatch_total",
		"Synapse phases executed, by path", lbl(telemetry.Label{Key: "path", Value: "scalar"})...)
	t.synapseSkips = reg.Counter("compass_synapse_skips_total",
		"Synapse phases skipped on active cores with no pending spikes", lbl()...)
	t.quiescentTicks = reg.Counter("compass_quiescent_core_ticks_total",
		"core-ticks skipped entirely by quiescent-core detection", lbl()...)
	t.droppedInputs = reg.Counter("compass_dropped_inputs_total",
		"external input spikes dropped: out-of-range axons or cores, or stale entries before a resumed run's start tick", lbl()...)
	for _, c := range faults.Classes() {
		t.faultsInjectedBy[c] = reg.Counter("compass_faults_injected_total",
			"transport faults fired by the injector, by class",
			lbl(telemetry.Label{Key: "class", Value: c.String()})...)
	}
	t.faultRetries = reg.Counter("compass_fault_retries_total",
		"message send retries after an injected drop", lbl()...)
	t.faultDedups = reg.Counter("compass_fault_dedups_total",
		"duplicate messages discarded at receivers", lbl()...)
	t.faultAborts = reg.Counter("compass_fault_aborts_total",
		"abort broadcasts initiated by a failing rank", lbl()...)
	for r := 0; r < ranks; r++ {
		tr.SetProcessName(r, fmt.Sprintf("rank %d", r))
		for p := Phase(0); p < numPhases; p++ {
			tr.SetThreadName(r, int(p), p.String())
		}
	}
	return t
}

// Registry returns the underlying metrics registry (scrape via
// Snapshot). Nil-safe.
func (t *Telemetry) Registry() *telemetry.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Tracer returns the underlying span tracer (export via
// WriteChromeTrace). Nil-safe.
func (t *Telemetry) Tracer() *telemetry.Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// phaseSpan records one completed phase section: a histogram
// observation and one trace span on the rank's process row, with the
// phase as the lane.
func (t *Telemetry) phaseSpan(rank int, p Phase, tick uint64, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.phase[p].Observe(rank, dur.Seconds())
	t.tracer.Span(rank, p.String(), "phase", rank, int(p), tick, start, dur)
}

// tickCounts accumulates one tick's rank-level traffic totals.
func (t *Telemetry) tickCounts(rank int, msgs, wireBytes, local, remote, firings uint64) {
	if t == nil {
		return
	}
	t.messages.Add(rank, msgs)
	t.wireBytes.Add(rank, wireBytes)
	t.localSpikes.Add(rank, local)
	t.remoteSpikes.Add(rank, remote)
	t.firings.Add(rank, firings)
}

// setCorePaths records the rank's setup-time Synapse-path split.
func (t *Telemetry) setCorePaths(rank int, kernel, scalar int) {
	if t == nil {
		return
	}
	t.kernelCores.Set(rank, float64(kernel))
	t.scalarCores.Set(rank, float64(scalar))
}

// computeCounts accumulates the rank's cumulative compute-phase
// counters (called once at end of run with run totals).
func (t *Telemetry) computeCounts(rank int, kernelDispatch, scalarDispatch, skips, quiescent, dropped uint64) {
	if t == nil {
		return
	}
	t.kernelDispatch.Add(rank, kernelDispatch)
	t.scalarDispatch.Add(rank, scalarDispatch)
	t.synapseSkips.Add(rank, skips)
	t.quiescentTicks.Add(rank, quiescent)
	t.droppedInputs.Add(rank, dropped)
}

// faultInjected counts one fired fault of class c on the rank.
func (t *Telemetry) faultInjected(rank int, c faults.Class) {
	if t == nil {
		return
	}
	t.faultsInjectedBy[c].Add(rank, 1)
}

// faultRetry counts one send retry after an injected drop.
func (t *Telemetry) faultRetry(rank int) {
	if t == nil {
		return
	}
	t.faultRetries.Add(rank, 1)
}

// faultDedup counts n duplicate messages discarded by the rank.
func (t *Telemetry) faultDedup(rank int, n uint64) {
	if t == nil || n == 0 {
		return
	}
	t.faultDedups.Add(rank, n)
}

// faultAbort counts one abort broadcast initiated by the rank.
func (t *Telemetry) faultAbort(rank int) {
	if t == nil {
		return
	}
	t.faultAborts.Add(rank, 1)
}

// transportProbe is the instrument set a transport endpoint drives:
// messages and payload bytes published, the per-tick incoming queue
// depth, and the Network sub-phase spans. One probe per transport name;
// rank is passed per call as the shard. A nil probe is a no-op.
type transportProbe struct {
	tel        *Telemetry
	messages   telemetry.Counter
	bytes      telemetry.Counter
	queueDepth telemetry.Gauge
}

// transportProbe builds (or fetches — registration is idempotent) the
// per-transport instrument set. Nil-safe: a nil Telemetry yields a nil
// probe, and every probe method accepts a nil receiver.
func (t *Telemetry) transportProbe(transport string) *transportProbe {
	if t == nil {
		return nil
	}
	lbl := append(append([]telemetry.Label(nil), t.base...),
		telemetry.Label{Key: "transport", Value: transport})
	return &transportProbe{
		tel: t,
		messages: t.reg.Counter("compass_transport_messages_total",
			"messages (or one-sided puts, or zero-copy segment swaps) published by the transport", lbl...),
		bytes: t.reg.Counter("compass_transport_payload_bytes_total",
			"payload bytes published by the transport (raw transports report the modelled 20 B/spike)", lbl...),
		queueDepth: t.reg.Gauge("compass_transport_queue_depth",
			"incoming messages or segments pending delivery at the last tick", lbl...),
	}
}

// sent counts published traffic for the rank.
func (p *transportProbe) sent(rank int, msgs, bytes uint64) {
	if p == nil {
		return
	}
	p.messages.Add(rank, msgs)
	p.bytes.Add(rank, bytes)
}

// depth records the rank's incoming queue depth for the tick.
func (p *transportProbe) depth(rank int, depth float64) {
	if p == nil {
		return
	}
	p.queueDepth.Set(rank, depth)
}

// span records one Network sub-phase section ending now.
func (p *transportProbe) span(rank int, ph Phase, tick uint64, start time.Time) {
	if p == nil {
		return
	}
	p.tel.phaseSpan(rank, ph, tick, start, time.Since(start))
}
