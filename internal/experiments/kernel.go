package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// DenseDeterministicModel builds the bit-parallel kernel benchmark
// workload: nCores cores whose crossbar rows each carry density·256 set
// bits, purely deterministic mixed-type weights (so every core takes the
// kernel path), and leak-driven oscillators with staggered thresholds
// that keep most axons busy every tick. It is the Synapse-phase stress
// complement to SyntheticModel, whose sparse rows stress the Network
// phase instead.
func DenseDeterministicModel(nCores int, density float64, seed uint64) (*truenorth.Model, error) {
	if nCores < 1 {
		return nil, fmt.Errorf("experiments: invalid nCores=%d", nCores)
	}
	if density <= 0 || density > 1 {
		return nil, fmt.Errorf("experiments: invalid density=%v", density)
	}
	perRow := int(density*truenorth.CoreSize + 0.5)
	if perRow < 1 {
		perRow = 1
	}
	m := &truenorth.Model{Seed: seed}
	r := prng.New(seed ^ 0x6b65726e) // "kern"
	cols := make([]int, truenorth.CoreSize)
	for k := 0; k < nCores; k++ {
		cfg := &truenorth.CoreConfig{ID: truenorth.CoreID(k)}
		for a := 0; a < truenorth.CoreSize; a++ {
			cfg.AxonTypes[a] = uint8(r.Intn(truenorth.NumAxonTypes))
			r.Perm(cols)
			for _, j := range cols[:perRow] {
				cfg.SetSynapse(a, j, true)
			}
		}
		for j := 0; j < truenorth.CoreSize; j++ {
			cfg.Neurons[j] = truenorth.NeuronParams{
				// Mixed-sign, non-uniform weights exercise the kernel's
				// per-axon-type split rather than its uniform shortcut.
				Weights:   [truenorth.NumAxonTypes]int16{3, 1, 2, -2},
				Leak:      1,
				Threshold: int32(3 + r.Intn(6)),
				Reset:     0,
				Floor:     -32,
				Target: truenorth.SpikeTarget{
					Core:  truenorth.CoreID(r.Intn(nCores)),
					Axon:  uint16(r.Intn(truenorth.CoreSize)),
					Delay: uint8(1 + r.Intn(3)),
				},
				Enabled: true,
			}
		}
		m.Cores = append(m.Cores, cfg)
	}
	return m, nil
}

// KernelComparison measures the functional simulator's tick throughput
// on the dense deterministic workload under the bit-parallel Synapse
// kernel and under the forced scalar reference path. Both runs produce
// bit-identical spike output; only speed differs.
func KernelComparison() ([]*Table, error) {
	const (
		nCores  = 32
		density = 0.30
		ranks   = 2
		threads = 2
		ticks   = 120
		reps    = 3
	)
	model, err := DenseDeterministicModel(nCores, density, 9)
	if err != nil {
		return nil, err
	}
	type res struct {
		best   float64
		spikes uint64
		syn    uint64
	}
	measure := func(force bool) (res, error) {
		out := res{best: math.Inf(1)}
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			stats, err := compass.Run(model, compass.Config{
				Ranks: ranks, ThreadsPerRank: threads,
				Transport: compass.TransportShmem, ForceScalar: force,
			}, ticks)
			if err != nil {
				return out, err
			}
			if sec := time.Since(t0).Seconds(); sec < out.best {
				out.best = sec
			}
			out.spikes = stats.TotalSpikes
			out.syn = stats.SynapticEvents
		}
		return out, nil
	}
	kern, err := measure(false)
	if err != nil {
		return nil, err
	}
	scal, err := measure(true)
	if err != nil {
		return nil, err
	}
	if kern.spikes != scal.spikes || kern.syn != scal.syn {
		return nil, fmt.Errorf("experiments: kernel output diverges from scalar (%d/%d spikes, %d/%d events)",
			kern.spikes, scal.spikes, kern.syn, scal.syn)
	}
	row := func(name string, r res) []string {
		return []string{
			name,
			fmt.Sprintf("%.1f", float64(ticks)/r.best),
			fmtI(int(float64(nCores) * ticks / r.best)),
			fmtI(int(r.syn) / ticks),
			fmt.Sprintf("%.2fx", scal.best/r.best),
		}
	}
	tab := &Table{
		ID:    "kernel",
		Title: fmt.Sprintf("Bit-parallel Synapse kernel vs scalar reference (%d cores, %.0f%% crossbar density)", nCores, density*100),
		Header: []string{
			"path", "ticks/s", "core-ticks/s", "syn events/tick", "speedup",
		},
		Rows: [][]string{
			row("kernel", kern),
			row("scalar", scal),
		},
		Notes: []string{
			"both paths produce bit-identical spike output; deterministic cores take the kernel, stochastic cores always use the scalar path",
		},
	}
	return []*Table{tab}, nil
}
