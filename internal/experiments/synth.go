package experiments

import (
	"fmt"

	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// SyntheticModel builds the §VII real-time benchmark network: ranks ×
// coresPerRank cores in which localFrac of each core's neurons target
// cores on the same rank (under the default block placement) and the
// rest target a uniformly random remote rank. Neurons fire periodically
// at approximately targetHz through a constant leak against a staggered
// threshold, giving the paper's "all neurons fire on average at 10 Hz"
// behaviour without external stimulus.
func SyntheticModel(ranks, coresPerRank int, localFrac, targetHz float64, seed uint64) (*truenorth.Model, error) {
	if ranks < 1 || coresPerRank < 1 {
		return nil, fmt.Errorf("experiments: invalid ranks=%d coresPerRank=%d", ranks, coresPerRank)
	}
	if localFrac < 0 || localFrac > 1 || targetHz <= 0 {
		return nil, fmt.Errorf("experiments: invalid localFrac=%v targetHz=%v", localFrac, targetHz)
	}
	nCores := ranks * coresPerRank
	// Period in ticks for the mean threshold: 1000/targetHz with leak 1.
	meanPeriod := int(1000/targetHz + 0.5)
	if meanPeriod < 4 {
		meanPeriod = 4
	}
	m := &truenorth.Model{Seed: seed}
	r := prng.New(seed ^ 0x73796e7468) // "synth"
	for k := 0; k < nCores; k++ {
		cfg := &truenorth.CoreConfig{ID: truenorth.CoreID(k)}
		myRank := k / coresPerRank
		for a := 0; a < truenorth.CoreSize; a++ {
			// Sparse crossbar so delivered spikes do modest synaptic work.
			for s := 0; s < 8; s++ {
				cfg.SetSynapse(a, r.Intn(truenorth.CoreSize), true)
			}
		}
		for j := 0; j < truenorth.CoreSize; j++ {
			var targetCore int
			if r.Bernoulli(localFrac) || ranks == 1 {
				targetCore = myRank*coresPerRank + r.Intn(coresPerRank)
			} else {
				rr := r.Intn(ranks - 1)
				if rr >= myRank {
					rr++
				}
				targetCore = rr*coresPerRank + r.Intn(coresPerRank)
			}
			// Threshold staggered ±50% around the mean period so firing
			// phases decorrelate; leak +1 per tick drives the oscillation.
			th := meanPeriod/2 + r.Intn(meanPeriod)
			if th < 1 {
				th = 1
			}
			cfg.Neurons[j] = truenorth.NeuronParams{
				// Delivered spikes nudge the oscillators without
				// dominating them.
				Weights:   [truenorth.NumAxonTypes]int16{1, 1, 1, 1},
				Leak:      1,
				Threshold: int32(th),
				Reset:     0,
				Floor:     -16,
				Target: truenorth.SpikeTarget{
					Core:  truenorth.CoreID(targetCore),
					Axon:  uint16(r.Intn(truenorth.CoreSize)),
					Delay: uint8(1 + r.Intn(3)),
				},
				Enabled: true,
			}
		}
		m.Cores = append(m.Cores, cfg)
	}
	return m, nil
}
