// Package server hosts many concurrent Compass simulation sessions
// behind a long-running daemon (cmd/compassd): an HTTP+JSON control
// plane for the session lifecycle, a length-prefixed binary stream
// plane for live spike injection and egress, admission control that
// prices sessions with the calibrated Blue Gene performance model, and
// graceful shutdown that drains every session to a checkpoint file.
//
// The paper frames Compass as a platform for "hypotheses testing,
// verification, and iteration", not just batch scaling runs; serving
// interactive sessions with streaming spike I/O is that mode of use.
// See DESIGN.md §5e for the architecture and the wire protocol.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	sim "github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/reshape"
	"github.com/cognitive-sim/compass/internal/telemetry"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// State is one node of the session lifecycle state machine:
//
//	queued ─→ running ⇄ paused
//	   │         │ │ \
//	   │         │ │  └──→ drained   (graceful shutdown, checkpoint kept)
//	   │         │ └─────→ done      (all ticks simulated)
//	   │         ├───────→ cancelled (client stop / context cancel)
//	   └─────────┴───────→ failed    (simulation error)
//
// drained, done, cancelled, and failed are terminal. Checkpoints are
// taken at chunk boundaries, so paused and drained sessions always hold
// a resumable state.
type State int

const (
	// StateQueued means admission control accepted the session but is
	// holding it until capacity frees.
	StateQueued State = iota
	// StateRunning means the runner goroutine is simulating a chunk.
	StateRunning
	// StatePaused means the runner is parked at a chunk boundary.
	StatePaused
	// StateDone means every requested tick was simulated.
	StateDone
	// StateDrained means graceful shutdown parked the session at a chunk
	// boundary with its checkpoint captured.
	StateDrained
	// StateCancelled means the session's context was cancelled (client
	// stop or server shutdown without drain).
	StateCancelled
	// StateFailed means the simulation returned an error.
	StateFailed
)

// String names the state as the HTTP API spells it.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateDone:
		return "done"
	case StateDrained:
		return "drained"
	case StateCancelled:
		return "cancelled"
	case StateFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateDrained, StateCancelled, StateFailed:
		return true
	}
	return false
}

// Totals accumulates a session's simulation statistics across chunks.
type Totals struct {
	Spikes        uint64 `json:"spikes"`
	Firings       uint64 `json:"firings"`
	Messages      uint64 `json:"messages"`
	DroppedInputs uint64 `json:"dropped_inputs"`
}

// Session is one hosted simulation: a model, its run configuration, the
// streaming I/O endpoints, and a runner goroutine that simulates in
// chunks of ChunkTicks so pause, checkpoint, and drain all resolve at
// the next chunk boundary.
type Session struct {
	ID   string
	Name string

	img        *truenorth.Image // immutable, possibly shared with other sessions
	model      *truenorth.Model // view over the image's shared configuration
	cfg        sim.Config       // base decomposition; per-chunk fields set by the runner
	ticksTotal uint64
	chunk      int
	cost       float64 // modelled seconds per tick, from admission control

	source *streamSource
	sink   *broadcastSink
	tel    *sim.Telemetry

	// cacheKey is the model cache key the session's image came from (""
	// when the image was built privately); the manager pins the entry
	// while any session holds the image resident.
	cacheKey string

	// scenario labels the workload driving this session (the scenario
	// engine's registry name); empty for plain sessions. rtt measures
	// the session's inject→first-egress round trip (see rtt.go).
	scenario string
	rtt      *rttTracker

	// node is the hosting daemon's instance ID (set by the manager);
	// placement records how the session landed here ("local" for direct
	// creates, a coordinator decision string for cluster placements).
	node      string
	placement string

	// onBoundary, when non-nil, is invoked after every successfully
	// completed chunk with the session parked at its new boundary — the
	// cluster agent uses it to push boundary checkpoints to the
	// coordinator so failover always has a recent consistent state.
	onBoundary func(*Session)

	// group, when non-nil, routes the session's chunks through a shared
	// batched tick loop with every same-keyed running session; set by
	// the manager before the runner starts. batchLane is the session's
	// lane index in its most recent window.
	group     *batchGroup
	batchLane int

	// reshapePolicy decides, at every chunk boundary, whether the chunk's
	// measured imbalance warrants repartitioning; onReshape tells the
	// manager an applied reshape changed the decomposition (metrics,
	// batch regrouping); gImbalance publishes each chunk's Compute
	// imbalance. See reshape.go.
	reshapePolicy reshape.Policy
	onReshape     func(*Session, sim.Config)
	gImbalance    *telemetry.Gauge

	// inputTicks is the sorted multiset of model-scheduled input ticks,
	// used to correct per-chunk DroppedInputs: every resumed chunk
	// re-purges model inputs before its start tick, which would otherwise
	// recount inputs already delivered by earlier chunks as dropped.
	inputTicks []uint64

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	onExit func(*Session)

	mu           sync.Mutex
	cond         *sync.Cond
	state        State
	pauseReq     bool
	drainReq     bool
	stepBudget   uint64 // ticks granted by StepTicks; 0 means free-running
	started      bool
	ticksDone    uint64
	cp           *truenorth.Checkpoint
	totals       Totals
	runErr       error
	created      time.Time
	sinceReshape int
	reshapes     []ReshapeEvent
}

// newSession builds a session in StateQueued against an immutable model
// image (possibly shared with other sessions). The initial checkpoint
// comes from the image directly — no simulator is instantiated — so
// admission of a cached model costs milliseconds, and even a session
// drained before its first chunk has a resumable (tick 0) state.
func newSession(id, name string, img *truenorth.Image, cfg sim.Config, ticks uint64, chunk int, cost float64, subQueue int, onExit func(*Session)) (*Session, error) {
	if chunk < 1 {
		chunk = 1
	}
	inputs := img.Inputs()
	ticksIn := make([]uint64, len(inputs))
	for i, in := range inputs {
		ticksIn[i] = in.Tick
	}
	sort.Slice(ticksIn, func(a, b int) bool { return ticksIn[a] < ticksIn[b] })
	ctx, cancel := context.WithCancel(context.Background())
	s := &Session{
		ID:         id,
		Name:       name,
		img:        img,
		model:      img.Model(),
		cfg:        cfg,
		ticksTotal: ticks,
		chunk:      chunk,
		cost:       cost,
		source:     newStreamSource(),
		sink:       newBroadcastSink(subQueue),
		tel:        sim.NewTelemetryWithLabels(cfg.Ranks, telemetry.Label{Key: "session", Value: id}),
		inputTicks: ticksIn,
		ctx:        ctx,
		cancel:     cancel,
		done:       make(chan struct{}),
		onExit:     onExit,
		state:      StateQueued,
		cp:         img.InitialCheckpoint(),
		created:    time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// beginStart claims the exclusive right to launch the runner. It
// returns false when the runner already launched or the session was
// terminalized while queued — Stop on a queued session (abortQueued)
// races promotion, and a promotion that loses the race must not charge
// capacity for a runner that will never run to release it.
func (s *Session) beginStart() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.state.Terminal() {
		return false
	}
	s.started = true
	return true
}

// run is the session runner: it simulates in chunks, consulting the
// control flags at every chunk boundary. Each chunk resumes from the
// previous chunk's checkpoint with the session's streaming hooks and
// labeled telemetry attached.
func (s *Session) run() {
	defer close(s.done)
	defer s.sink.closeAll()
	defer func() {
		if s.onExit != nil {
			s.onExit(s)
		}
	}()
	for {
		s.mu.Lock()
		for s.pauseReq && !s.drainReq && s.ctx.Err() == nil {
			s.state = StatePaused
			s.cond.Broadcast()
			s.cond.Wait()
		}
		switch {
		case s.ctx.Err() != nil:
			s.finishLocked(StateCancelled, s.ctx.Err())
			s.mu.Unlock()
			return
		case s.drainReq:
			s.finishLocked(StateDrained, nil)
			s.mu.Unlock()
			return
		case s.ticksDone >= s.ticksTotal:
			s.finishLocked(StateDone, nil)
			s.mu.Unlock()
			return
		}
		n := uint64(s.chunk)
		if rem := s.ticksTotal - s.ticksDone; n > rem {
			n = rem
		}
		if s.stepBudget > 0 && n > s.stepBudget {
			n = s.stepBudget
		}
		group := s.group
		startTick := s.cp.Tick
		cp := s.cp
		base := s.cfg
		s.state = StateRunning
		s.cond.Broadcast()
		s.mu.Unlock()

		var stats *sim.RunStats
		var err error
		var lane int
		if group != nil {
			// Batched path: the chunk rides a shared window with every
			// same-model session; the group may trim the window to the
			// shortest member chunk, so the ticks actually run come back
			// in stats.Ticks and the remainder rides the next window.
			stats, lane, _, err = group.exec(s.ctx, sim.BatchLane{
				StartFrom:   cp,
				InputSource: s.source,
				OutputSink:  s.sink,
				Telemetry:   s.tel,
			}, int(n))
		} else {
			cfg := base
			cfg.StartFrom = cp
			cfg.ReturnState = true
			cfg.InputSource = s.source
			cfg.OutputSink = s.sink
			cfg.Telemetry = s.tel
			stats, err = sim.RunImageContext(s.ctx, s.img, cfg, int(n))
		}

		s.mu.Lock()
		s.batchLane = lane
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.finishLocked(StateCancelled, err)
			} else {
				s.finishLocked(StateFailed, err)
			}
			s.mu.Unlock()
			return
		}
		s.cp = stats.Final
		s.ticksDone += uint64(stats.Ticks)
		// Burn the step budget by the ticks actually simulated (a batched
		// window may trim the chunk); when it hits zero the runner parks at
		// this boundary until the next StepTicks or Resume.
		if s.stepBudget > 0 {
			if ran := uint64(stats.Ticks); ran >= s.stepBudget {
				s.stepBudget = 0
				// Park at the boundary — unless the run is complete, in
				// which case the loop should fall through to StateDone.
				if s.ticksDone < s.ticksTotal {
					s.pauseReq = true
				}
			} else {
				s.stepBudget -= ran
			}
		}
		s.totals.Spikes += stats.TotalSpikes
		for _, rs := range stats.PerRank {
			s.totals.Firings += rs.Firings
		}
		s.totals.Messages += stats.Messages
		// Per-chunk resume re-purges model inputs scheduled before the
		// chunk's start tick; subtract that recount so only genuinely
		// dropped inputs (bad axon/core, true staleness, stream drops)
		// accumulate.
		stale := uint64(sort.Search(len(s.inputTicks), func(i int) bool {
			return s.inputTicks[i] >= startTick
		}))
		dropped := stats.DroppedInputs
		if dropped >= stale {
			dropped -= stale
		} else {
			dropped = 0
		}
		s.totals.DroppedInputs += dropped
		hook := s.onBoundary
		s.mu.Unlock()
		// The runner is the only writer of s.cp, so the checkpoint is
		// stable for the duration of the hook.
		if hook != nil {
			hook(s)
		}
		s.maybeReshape(stats)
	}
}

// finishLocked moves the session to a terminal state. Callers hold mu.
func (s *Session) finishLocked(st State, err error) {
	if !s.state.Terminal() {
		s.state = st
		s.runErr = err
	}
	s.cond.Broadcast()
}

// Pause requests a pause at the next chunk boundary.
func (s *Session) Pause() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state.Terminal() {
		return fmt.Errorf("server: session %s is %s", s.ID, s.state)
	}
	s.pauseReq = true
	return nil
}

// Resume releases a paused session and clears any outstanding step
// budget: an explicit resume means free-running from here on.
func (s *Session) Resume() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state.Terminal() {
		return fmt.Errorf("server: session %s is %s", s.ID, s.state)
	}
	s.pauseReq = false
	s.stepBudget = 0
	s.cond.Broadcast()
	return nil
}

// StepTicks grants the runner a budget of n further ticks and releases
// it; the runner simulates chunks until the budget is spent, then parks
// at that boundary (StatePaused). Repeated calls accumulate. Combined
// with StartPaused sessions this gives closed-loop clients lock-step
// control: inject inputs for a window, step exactly the window, read
// the egress, decide, repeat. Chunk trimming by a batched window is
// respected — the budget burns by ticks actually simulated.
// WaitInjected blocks until the session has ingested at least min
// streamed spikes. It is the step protocol's inject barrier: a stream
// Send and a control-plane step race over separate connections, so a
// lock-step client passes its cumulative sent count and the daemon
// holds the step until ingestion catches up — the granted ticks are
// then guaranteed to see every spike sent before the step was asked.
func (s *Session) WaitInjected(min uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		got := s.source.injected()
		if got >= min {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server: session %s ingested %d of %d expected streamed spikes", s.ID, got, min)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func (s *Session) StepTicks(n uint64) error {
	if n == 0 {
		return errors.New("server: step requires ticks >= 1")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state.Terminal() {
		return fmt.Errorf("server: session %s is %s", s.ID, s.state)
	}
	s.stepBudget += n
	s.pauseReq = false
	s.cond.Broadcast()
	return nil
}

// Stop cancels the session: a running chunk unwinds at its next tick
// boundary via compass.RunContext and every rank returns ctx.Err().
func (s *Session) Stop() {
	s.cancel()
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Drain asks the runner to park at the next chunk boundary with its
// checkpoint captured (StateDrained), without cancelling mid-chunk
// work. Used by graceful shutdown. A session that never started drains
// immediately at its initial snapshot.
func (s *Session) Drain() {
	if s.abortQueued(StateDrained, nil) {
		return
	}
	s.mu.Lock()
	s.drainReq = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// abortQueued resolves a session whose runner never launched (still
// queued) directly to a terminal state. It reports whether it acted; a
// started or already-terminal session is left untouched.
func (s *Session) abortQueued(st State, err error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.state.Terminal() {
		return false
	}
	s.finishLocked(st, err)
	close(s.done)
	return true
}

// Wait blocks until the runner exits (or, for never-started sessions,
// until Drain or Stop resolves them).
func (s *Session) Wait() { <-s.done }

// WaitState blocks until the session reaches a state for which ok
// returns true, or until the timeout elapses.
func (s *Session) WaitState(timeout time.Duration, ok func(State) bool) bool {
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	for !ok(s.state) {
		if time.Now().After(deadline) {
			return false
		}
		waitCond(s.cond, deadline)
	}
	return true
}

// waitCond waits on c with a deadline by arming a timer that broadcasts.
func waitCond(c *sync.Cond, deadline time.Time) {
	t := time.AfterFunc(time.Until(deadline), c.Broadcast)
	defer t.Stop()
	c.Wait()
}

// Checkpoint returns the session's latest chunk-boundary checkpoint.
// The snapshot is only guaranteed stable when the runner is parked
// (paused, drained, or terminal); a running session's checkpoint is the
// boundary before its in-flight chunk.
func (s *Session) Checkpoint() *truenorth.Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp
}

// ExportCheckpoint returns the latest boundary checkpoint shallow-
// copied and stamped with the session's model content hash — the form
// every serialization boundary (checkpoint files, HTTP export) ships,
// so restores verify provenance. In-memory checkpoints stay unstamped;
// the copy leaves the runner's state untouched.
func (s *Session) ExportCheckpoint() *truenorth.Checkpoint {
	cp := s.Checkpoint()
	if cp == nil {
		return nil
	}
	out := *cp
	if out.ModelHash == "" {
		out.ModelHash = s.img.Hash()
	}
	return &out
}

// Err returns the terminal error, if any.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runErr
}

// State returns the current lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Model returns the session's model (shared, read-only once built).
func (s *Session) Model() *truenorth.Model { return s.model }

// Image returns the session's immutable model image.
func (s *Session) Image() *truenorth.Image { return s.img }

// Cfg returns a copy of the session's base decomposition (the current
// one when the session has reshaped).
func (s *Session) Cfg() sim.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// TicksTotal returns the requested tick count; TicksDone the ticks
// simulated so far by this session (excluding any pre-resume history).
func (s *Session) TicksTotal() uint64 { return s.ticksTotal }

// TicksDone returns the ticks simulated so far by this session.
func (s *Session) TicksDone() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticksDone
}

// ChunkTicks returns the session's chunk granularity.
func (s *Session) ChunkTicks() int { return s.chunk }

// CacheKey returns the model cache key the session's image came from
// ("" when the image was built privately).
func (s *Session) CacheKey() string { return s.cacheKey }

// Scenario returns the session's scenario label ("" for plain
// sessions). Set once at creation, so no lock is needed.
func (s *Session) Scenario() string { return s.scenario }

// PendingStreamSpikes snapshots the streamed input spikes that have
// been accepted but not yet frozen into a tick batch. With the session
// parked at a chunk boundary this is exactly the injected state a
// migration must carry: everything consumed before the boundary is in
// the checkpoint, everything else is here.
func (s *Session) PendingStreamSpikes() []truenorth.InputSpike {
	return s.source.pendingSnapshot()
}

// InjectSpikes queues streamed input spikes directly (the programmatic
// twin of the stream plane's inject frames); migration imports use it
// to restore a source session's pending spikes.
func (s *Session) InjectSpikes(spikes []truenorth.InputSpike) {
	s.source.injectSpikes(spikes)
}

// Info is the session's JSON status document.
type Info struct {
	ID          string  `json:"id"`
	Name        string  `json:"name,omitempty"`
	State       string  `json:"state"`
	Transport   string  `json:"transport"`
	Ranks       int     `json:"ranks"`
	Threads     int     `json:"threads"`
	Cores       int     `json:"cores"`
	TicksTotal  uint64  `json:"ticks_total"`
	TicksDone   uint64  `json:"ticks_done"`
	CostPerTick float64 `json:"modelled_seconds_per_tick"`
	// Node is the hosting daemon's instance ID; Placement records how
	// the session landed there ("local" for direct creates, the
	// coordinator's decision string for cluster placements).
	Node      string `json:"node,omitempty"`
	Placement string `json:"placement,omitempty"`
	// ModelHash is the content address of the session's immutable model
	// image; sessions sharing an image report the same hash.
	ModelHash string `json:"model_hash"`
	// ImageBytes is the resident size of the (possibly shared) image;
	// StateBytes is this session's private runtime state.
	ImageBytes int64 `json:"image_bytes"`
	StateBytes int64 `json:"state_bytes"`
	// BatchGroup identifies the shared batched tick loop the session's
	// chunks ride (empty when the session runs its own loop); BatchLane
	// is the session's lane index in its most recent window.
	BatchGroup string `json:"batch_group,omitempty"`
	BatchLane  int    `json:"batch_lane,omitempty"`
	// Reshapes lists every elastic repartition applied at a chunk
	// boundary, oldest first (empty when the session never reshaped).
	Reshapes    []ReshapeEvent `json:"reshapes,omitempty"`
	Totals      Totals         `json:"totals"`
	Injected    uint64         `json:"injected_spikes"`
	Subscribers int            `json:"subscribers"`
	StreamDrops uint64         `json:"stream_dropped_records"`
	// Scenario labels the closed-loop workload driving the session
	// (empty for plain sessions); StreamRTT summarizes the session's
	// inject→first-egress round trips.
	Scenario  string    `json:"scenario,omitempty"`
	StreamRTT *RTTStats `json:"stream_rtt,omitempty"`
	Error     string    `json:"error,omitempty"`
	CreatedAt string    `json:"created_at"`
}

// Info snapshots the session's status.
func (s *Session) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := Info{
		ID:          s.ID,
		Name:        s.Name,
		State:       s.state.String(),
		Transport:   s.cfg.Transport.String(),
		Ranks:       s.cfg.Ranks,
		Threads:     s.cfg.ThreadsPerRank,
		Cores:       s.img.NumCores(),
		TicksTotal:  s.ticksTotal,
		TicksDone:   s.ticksDone,
		CostPerTick: s.cost,
		Node:        s.node,
		Placement:   s.placement,
		ModelHash:   s.img.Hash(),
		ImageBytes:  s.img.ImageBytes(),
		StateBytes:  s.img.StateBytes(),
		Totals:      s.totals,
		Injected:    s.source.injected(),
		BatchLane:   s.batchLane,
		Subscribers: s.sink.count(),
		StreamDrops: s.sink.dropped(),
		CreatedAt:   s.created.UTC().Format(time.RFC3339),
	}
	if s.group != nil {
		info.BatchGroup = s.group.key
	}
	info.Scenario = s.scenario
	if s.rtt != nil {
		st := s.rtt.stats()
		info.StreamRTT = &st
	}
	info.Reshapes = append([]ReshapeEvent(nil), s.reshapes...)
	if s.runErr != nil {
		info.Error = s.runErr.Error()
	}
	return info
}
