// Package balance implements matrix balancing by the iterative
// proportional fitting procedure (IPFP), known in linear algebra as the
// Sinkhorn–Knopp algorithm.
//
// The Parallel Compass Compiler needs a realizability guarantee: every
// white-matter connection request from a source region must be satisfied
// by an available axon in the target region, and every gray-matter
// request by local axons. The paper (§IV–V) obtains this by normalizing
// the region-to-region connection matrix so that each row sum and column
// sum equals the region's (volume-derived) capacity — a generalization of
// doubly stochastic scaling. IPFP achieves that by alternately scaling
// rows and columns; for a nonnegative matrix whose zero pattern admits a
// solution, the iteration converges and, crucially, never introduces a
// connection where the anatomical matrix had none (multiplicative scaling
// preserves zeros).
package balance

import (
	"errors"
	"fmt"
	"math"

	"github.com/cognitive-sim/compass/internal/workpool"
)

// ErrNotConverged is returned when the iteration fails to reach the
// tolerance within the iteration budget; the matrix's zero pattern may
// not support the prescribed marginals.
var ErrNotConverged = errors.New("balance: IPFP did not converge")

// Result carries the balanced matrix and convergence diagnostics.
type Result struct {
	// Matrix is the balanced matrix (a fresh allocation; the input is not
	// modified).
	Matrix [][]float64
	// Iterations is the number of row+column sweeps performed.
	Iterations int
	// Residual is the final maximum relative marginal deviation.
	Residual float64
}

// Options tunes the iteration.
type Options struct {
	// Tol is the maximum relative deviation of any row or column sum from
	// its target at convergence. Zero means 1e-9.
	Tol float64
	// MaxIter bounds the number of sweeps. Zero means 10000.
	MaxIter int
	// Workers parallelizes each sweep across rows (row scaling) and
	// columns (column accumulation and scaling). Results are bit-identical
	// for any worker count: every row is scaled independently, and every
	// column sum accumulates in ascending row order regardless of which
	// worker owns the column. Zero or one means serial.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.MaxIter == 0 {
		o.MaxIter = 10000
	}
	return o
}

// clone copies a rectangular matrix.
func clone(a [][]float64) [][]float64 {
	out := make([][]float64, len(a))
	for i := range a {
		out[i] = make([]float64, len(a[i]))
		copy(out[i], a[i])
	}
	return out
}

// validate checks shape and sign constraints and the marginal consistency
// condition sum(rowSums) == sum(colSums).
func validate(a [][]float64, rowSums, colSums []float64) error {
	n := len(a)
	if n == 0 {
		return errors.New("balance: empty matrix")
	}
	m := len(a[0])
	for i := range a {
		if len(a[i]) != m {
			return fmt.Errorf("balance: ragged matrix: row %d has %d columns, want %d", i, len(a[i]), m)
		}
		for j, v := range a[i] {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("balance: entry (%d,%d) = %v is not finite nonnegative", i, j, v)
			}
		}
	}
	if len(rowSums) != n || len(colSums) != m {
		return fmt.Errorf("balance: marginal lengths (%d,%d) do not match matrix (%d,%d)", len(rowSums), len(colSums), n, m)
	}
	var rt, ct float64
	for i, v := range rowSums {
		if v < 0 {
			return fmt.Errorf("balance: row target %d is negative", i)
		}
		rt += v
	}
	for j, v := range colSums {
		if v < 0 {
			return fmt.Errorf("balance: column target %d is negative", j)
		}
		ct += v
	}
	if rt == 0 && ct == 0 {
		return errors.New("balance: all marginal targets are zero")
	}
	if math.Abs(rt-ct) > 1e-6*math.Max(rt, ct) {
		return fmt.Errorf("balance: row targets sum to %g but column targets sum to %g", rt, ct)
	}
	// A row with a positive target must have at least one positive entry.
	for i, target := range rowSums {
		if target == 0 {
			continue
		}
		ok := false
		for _, v := range a[i] {
			if v > 0 {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("balance: row %d has target %g but no positive entries", i, target)
		}
	}
	for j, target := range colSums {
		if target == 0 {
			continue
		}
		ok := false
		for i := range a {
			if a[i][j] > 0 {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("balance: column %d has target %g but no positive entries", j, target)
		}
	}
	return nil
}

// IPFP balances a nonnegative matrix so that row i sums to rowSums[i] and
// column j sums to colSums[j]. The zero pattern of a is preserved. It
// returns ErrNotConverged (wrapped with the final residual) if the
// iteration budget is exhausted, which typically indicates that the zero
// pattern cannot support the prescribed marginals.
func IPFP(a [][]float64, rowSums, colSums []float64, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := validate(a, rowSums, colSums); err != nil {
		return nil, err
	}
	m := clone(a)
	n, cols := len(m), len(m[0])

	for iter := 1; iter <= opts.MaxIter; iter++ {
		// Row scaling: rows are independent, so they fan out over the
		// workers; each row's sum accumulates left-to-right as in the
		// serial sweep.
		workpool.ForEach(opts.Workers, n, func(i int) {
			sum := 0.0
			for _, v := range m[i] {
				sum += v
			}
			switch {
			case sum > 0:
				f := rowSums[i] / sum
				for j := range m[i] {
					m[i][j] *= f
				}
			case rowSums[i] == 0:
				for j := range m[i] {
					m[i][j] = 0
				}
			}
		})
		// Column scaling: each worker owns whole columns, accumulating its
		// column sums in ascending row order — the same float summation
		// order as the serial sweep — then scales them in place.
		workpool.ForEach(opts.Workers, cols, func(j int) {
			acc := 0.0
			for i := 0; i < n; i++ {
				acc += m[i][j]
			}
			switch {
			case acc > 0:
				f := colSums[j] / acc
				for i := 0; i < n; i++ {
					m[i][j] *= f
				}
			case colSums[j] == 0:
				for i := 0; i < n; i++ {
					m[i][j] = 0
				}
			}
		})
		r := Residual(m, rowSums, colSums)
		if r <= opts.Tol {
			return &Result{Matrix: m, Iterations: iter, Residual: r}, nil
		}
	}
	r := Residual(m, rowSums, colSums)
	return &Result{Matrix: m, Iterations: opts.MaxIter, Residual: r},
		fmt.Errorf("%w: residual %g after %d iterations", ErrNotConverged, r, opts.MaxIter)
}

// DoublyStochastic balances a square nonnegative matrix to unit row and
// column sums (the Sinkhorn theorem setting).
func DoublyStochastic(a [][]float64, opts Options) (*Result, error) {
	n := len(a)
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	return IPFP(a, ones, ones, opts)
}

// Residual returns the maximum relative deviation of any row or column
// sum of m from its target. Deviations on zero targets are measured
// absolutely.
func Residual(m [][]float64, rowSums, colSums []float64) float64 {
	worst := 0.0
	rel := func(sum, target float64) float64 {
		d := math.Abs(sum - target)
		if target > 0 {
			d /= target
		}
		return d
	}
	colAcc := make([]float64, len(colSums))
	for i := range m {
		sum := 0.0
		for j, v := range m[i] {
			sum += v
			colAcc[j] += v
		}
		if d := rel(sum, rowSums[i]); d > worst {
			worst = d
		}
	}
	for j, sum := range colAcc {
		if d := rel(sum, colSums[j]); d > worst {
			worst = d
		}
	}
	return worst
}

// RoundToInteger converts a balanced real matrix into an integer matrix
// whose row sums equal round(rowSums) exactly, using largest-remainder
// apportionment per row. Column sums are approximated (they differ from
// their targets by at most the rounding slack), which is the tolerance
// the compiler accepts when converting balanced connection weights into
// whole neuron-to-axon bundle counts.
func RoundToInteger(m [][]float64, rowSums []float64) [][]int {
	out := make([][]int, len(m))
	for i := range m {
		row := m[i]
		target := int(math.Round(rowSums[i]))
		out[i] = apportionRow(row, target)
	}
	return out
}

// Apportion distributes target units over weights proportionally using
// the largest-remainder method, and guarantees the sum invariant
// sum(out) == max(target, 0) for every nonnegative weight vector with at
// least one entry. Entries with zero weight receive nothing unless every
// weight is zero, in which case the units spread uniformly (reshape
// feeds telemetry counters that can legitimately be all zero — an
// all-zero row must still account for every unit). The result is
// deterministic: ties break on the lowest index.
func Apportion(weights []float64, target int) []int {
	return apportionRow(weights, target)
}

// apportionRow distributes target units over a row proportionally to the
// row's weights using the largest-remainder method. See Apportion for
// the sum invariant and the all-zero-weights convention.
func apportionRow(weights []float64, target int) []int {
	out := make([]int, len(weights))
	if target <= 0 || len(weights) == 0 {
		return out
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		// No weight signal at all: spread uniformly so the row still
		// sums to target (returning all zeros here would silently drop
		// target units).
		per, rem := target/len(out), target%len(out)
		for j := range out {
			out[j] = per
			if j < rem {
				out[j]++
			}
		}
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, len(weights))
	assigned := 0
	for j, w := range weights {
		exact := float64(target) * w / total
		fl := math.Floor(exact)
		out[j] = int(fl)
		assigned += int(fl)
		if w > 0 {
			rems = append(rems, rem{j, exact - fl})
		}
	}
	// Float rounding can overshoot: when target*w/total rounds up to an
	// exact integer, its floor keeps the spurious unit and the floors can
	// sum past target. Reclaim deterministically from the smallest
	// remainders (they gained the most from rounding up).
	for assigned > target {
		worst := -1
		for k := range rems {
			if out[rems[k].idx] == 0 {
				continue
			}
			if worst == -1 || rems[k].frac < rems[worst].frac {
				worst = k
			}
		}
		if worst == -1 {
			break
		}
		out[rems[worst].idx]--
		rems[worst].frac = 1
		assigned--
	}
	// Hand out the remaining units to the largest fractional parts;
	// stable tie-break on index keeps the result deterministic.
	for assigned < target {
		best := -1
		for k := range rems {
			if best == -1 || rems[k].frac > rems[best].frac {
				best = k
			}
		}
		if best == -1 {
			break
		}
		out[rems[best].idx]++
		rems[best].frac = -1
		assigned++
		if assigned < target {
			alive := false
			for k := range rems {
				if rems[k].frac >= 0 {
					alive = true
					break
				}
			}
			if !alive {
				// All remainders consumed; start another round.
				for k := range rems {
					rems[k].frac = 0.5
				}
			}
		}
	}
	return out
}
