// Command spikes analyzes recorded spike traces (CSPK files written by
// `compass -record` or the spikeio package): summary statistics, rate
// time series, per-core rates, ASCII rasters, and inter-spike-interval
// statistics for a chosen target.
//
// Examples:
//
//	compass -cocomac-cores 154 -ranks 4 -ticks 200 -record run.cspk
//	spikes -in run.cspk -summary -rates -bin 10
//	spikes -in run.cspk -raster -cores 154 -ticks 200
//	spikes -in run.cspk -isi-core 3 -isi-axon 17
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/cognitive-sim/compass/internal/spikeio"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

func main() {
	var (
		in      = flag.String("in", "", "CSPK spike trace to analyze")
		summary = flag.Bool("summary", true, "print summary statistics")
		rates   = flag.Bool("rates", false, "print the rate time series")
		raster  = flag.Bool("raster", false, "print an ASCII raster")
		bin     = flag.Int("bin", 10, "ticks per bin for -rates and -raster")
		cores   = flag.Int("cores", 0, "core count (0 = infer from trace)")
		ticks   = flag.Int("ticks", 0, "tick count (0 = infer from trace)")
		maxRows = flag.Int("max-rows", 24, "raster rows")
		isiCore = flag.Int("isi-core", -1, "report ISI statistics for this target core")
		isiAxon = flag.Int("isi-axon", 0, "target axon for -isi-core")
	)
	flag.Parse()
	if err := run(*in, *summary, *rates, *raster, *bin, *cores, *ticks, *maxRows, *isiCore, *isiAxon); err != nil {
		fmt.Fprintln(os.Stderr, "spikes:", err)
		os.Exit(1)
	}
}

func run(in string, summary, rates, raster bool, bin, cores, ticks, maxRows, isiCore, isiAxon int) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := spikeio.ReadAll(f)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		fmt.Println("trace is empty")
		return nil
	}

	maxTick, maxCore := uint64(0), truenorth.CoreID(0)
	for _, ev := range events {
		if ev.Tick > maxTick {
			maxTick = ev.Tick
		}
		if ev.Core > maxCore {
			maxCore = ev.Core
		}
	}
	if ticks == 0 {
		ticks = int(maxTick) + 1
	}
	if cores == 0 {
		cores = int(maxCore) + 1
	}

	if summary {
		fmt.Printf("trace: %d spikes over %d ticks, %d cores addressed\n", len(events), ticks, cores)
		hz := float64(len(events)) / float64(cores) / truenorth.CoreSize / float64(ticks) * 1000
		fmt.Printf("mean rate: %.2f Hz per neuron (1 ms ticks)\n", hz)
		perCore, err := spikeio.PerCoreRates(events, cores, ticks)
		if err != nil {
			return err
		}
		sorted := append([]float64(nil), perCore...)
		sort.Float64s(sorted)
		fmt.Printf("per-core rate: min %.2f, median %.2f, max %.2f Hz\n",
			sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1])
	}

	if rates {
		series, err := spikeio.RateSeries(events, ticks, bin)
		if err != nil {
			return err
		}
		fmt.Printf("\nspikes per %d-tick bin:\n", bin)
		for i, c := range series {
			fmt.Printf("%6d..%-6d %d\n", i*bin, (i+1)*bin-1, c)
		}
	}

	if raster {
		art, err := spikeio.Raster(events, cores, ticks, bin, maxRows)
		if err != nil {
			return err
		}
		fmt.Printf("\nraster (%d-tick bins):\n%s", bin, art)
	}

	if isiCore >= 0 {
		st := spikeio.ISI(events, truenorth.CoreID(isiCore), uint16(isiAxon))
		if st.Intervals == 0 {
			fmt.Printf("\nISI (%d,%d): fewer than two spikes\n", isiCore, isiAxon)
		} else {
			fmt.Printf("\nISI (%d,%d): %d intervals, mean %.2f ticks, CV %.3f\n",
				isiCore, isiAxon, st.Intervals, st.Mean, st.CV)
		}
	}
	return nil
}
