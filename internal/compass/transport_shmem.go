package compass

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cognitive-sim/compass/internal/faults"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// shmemBackend is the zero-copy in-process transport: ranks share one
// address space (they always do in this simulator), so the Network phase
// can swap per-destination spike slices directly between rank states —
// no wire encoding, no decode, no payload copy, no per-message buffering.
// It is the pluggability proof for the Transport interface and the fast
// path for the common single-process run.
//
// The window layout follows package pgas: win[dst][parity][src] is
// written only by src before the tick's barrier and drained only by dst
// after it, with double-buffered epoch parity so a writer reuses a
// parity slot only two epochs later — by which time the owner's delivery
// has finished (the intervening barrier is the happens-before edge).
// Unlike pgas, the "window" holds raw []SpikeTarget slices and Exchange
// *swaps* them: the destination keeps the sender's buffer to drain, and
// the sender takes back the slice the destination drained two epochs ago
// as its next (already warm) send buffer. Steady-state ticks allocate
// nothing and copy no spike bytes.
//
// An injected duplicate cannot literally be a second copy without
// breaking the zero-copy discipline, so the segment carries a copy
// count instead: the sender marks the swap as two copies, the drain
// delivers the targets once and counts the surplus as a dedup — the
// same observable behaviour the wire transports get from receiver-side
// deduplication.
type shmemBackend struct {
	probe *transportProbe
	tel   *Telemetry
	inj   *faults.Injector
}

func (shmemBackend) Name() string    { return "shmem" }
func (shmemBackend) RawSpikes() bool { return true }

func (b shmemBackend) Run(ranks int, fn func(rank int, ep Endpoint) error) error {
	s := newShmemSpace(ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	wg.Add(ranks)
	for r := 0; r < ranks; r++ {
		go func(rank int) {
			defer wg.Done()
			ep := &shmemEndpoint{s: s, rank: rank, probe: b.probe, tel: b.tel, inj: b.inj}
			err := fn(rank, ep)
			if cerr := ep.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				if !errors.Is(err, errShmemAborted) {
					b.tel.faultAbort(rank)
				}
				s.abort()
			}
			errs[rank] = err
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, errShmemAborted) {
			return err
		}
	}
	return firstErr(errs)
}

// errShmemAborted unblocks the barrier when another rank fails.
var errShmemAborted = errors.New("compass: shmem transport aborted")

// shmemSeg is one (src, dst, parity) window slot: the swapped-in spike
// slice plus the injected-duplicate copy count (0 or 1 extra copies; only
// ever non-zero when a fault injector is attached).
type shmemSeg struct {
	targets []truenorth.SpikeTarget
	copies  uint32
}

// shmemSpace is the shared spike window plus a sense-reversing barrier.
type shmemSpace struct {
	size int

	// win[dst][parity][src] is the segment deposited by src for dst
	// during epochs of that parity.
	win [][2][]shmemSeg

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	gen     uint64
	aborted bool
}

func newShmemSpace(size int) *shmemSpace {
	s := &shmemSpace{size: size, win: make([][2][]shmemSeg, size)}
	for d := range s.win {
		s.win[d][0] = make([]shmemSeg, size)
		s.win[d][1] = make([]shmemSeg, size)
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// barrier blocks until every rank has entered it, or fails fast if the
// space was aborted (so one rank's error cannot deadlock the others).
func (s *shmemSpace) barrier() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aborted {
		return errShmemAborted
	}
	gen := s.gen
	s.arrived++
	if s.arrived == s.size {
		s.arrived = 0
		s.gen++
		s.cond.Broadcast()
		return nil
	}
	for gen == s.gen {
		s.cond.Wait()
		if s.aborted {
			return errShmemAborted
		}
	}
	return nil
}

// abort marks the space failed and releases every rank blocked in the
// barrier.
func (s *shmemSpace) abort() {
	s.mu.Lock()
	s.aborted = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// shmemEndpoint is one rank's view of the shared window.
type shmemEndpoint struct {
	s       *shmemSpace
	rank    int
	probe   *transportProbe
	tel     *Telemetry
	inj     *faults.Injector
	epoch   uint64
	nextSeg atomic.Int64
	errs    []error
}

func (ep *shmemEndpoint) Close() error { return nil }

func (ep *shmemEndpoint) Exchange(t uint64, out *Outbox, d Delivery) error {
	if err := faultEnter(ep.inj, ep.tel, ep.rank, t); err != nil {
		ep.s.abort()
		return err
	}
	threads := d.Threads()
	errs := errScratch(&ep.errs, threads)
	parity := ep.epoch & 1
	injected := ep.inj.Active()

	var sendStart time.Time
	if ep.probe != nil {
		sendStart = time.Now()
	}

	// Publish: swap this tick's per-destination raw spike slices into the
	// destination windows. The slice taken back in return is the buffer
	// the destination finished draining two epochs ago, truncated — the
	// zero-copy analogue of a send-buffer pool. An injected delay holds
	// the rank before the swap (the epoch closes at the barrier, so the
	// publication still lands inside the tick); an injected duplicate
	// marks the segment's copy count for the drain to deduplicate.
	var swaps, spikes uint64
	for dest := 0; dest < ep.s.size; dest++ {
		if out.Counts[dest] == 0 {
			continue
		}
		copies := uint32(1)
		if injected {
			plan, err := resolveSend(ep.inj, ep.tel, ep.rank, t, dest)
			if err != nil {
				ep.s.abort()
				return err
			}
			if plan.delay > 0 {
				time.Sleep(plan.delay)
			}
			copies = uint32(plan.copies)
		}
		swaps++
		spikes += uint64(len(out.Targets[dest]))
		w := &ep.s.win[dest][parity][ep.rank]
		out.Targets[dest], w.targets = w.targets[:0], out.Targets[dest]
		w.copies = copies
	}
	if ep.probe != nil {
		// No bytes cross a wire here; report the modeled payload the spikes
		// would occupy in the encoded transports, so cross-transport wire
		// volume stays comparable.
		ep.probe.sent(ep.rank, swaps, spikes*truenorth.SpikeWireBytes)
	}

	// There is no collective to overlap with, so every thread goes
	// straight to local delivery.
	d.Parallel(func(tid int) {
		errs[tid] = d.DeliverLocal(t, tid, threads)
	})
	localErr := firstErr(errs)
	if localErr != nil {
		ep.s.abort()
		return localErr
	}

	var barrierStart time.Time
	if ep.probe != nil {
		ep.probe.span(ep.rank, PhaseNetSend, t, sendStart)
		barrierStart = time.Now()
	}

	if err := ep.s.barrier(); err != nil {
		return err
	}

	var drainStart time.Time
	if ep.probe != nil {
		ep.probe.span(ep.rank, PhaseNetBarrier, t, barrierStart)
		drainStart = time.Now()
	}

	// Drain: deliver every source segment of the epoch the barrier just
	// closed, segments claimed by atomic counter across threads. A copy
	// count above one is an injected duplicate, delivered once and
	// counted — the multiset handed to the cores stays identical.
	window := ep.s.win[ep.rank][parity]
	ep.nextSeg.Store(0)
	var dups atomic.Uint64
	d.Parallel(func(tid int) {
		for {
			i := int(ep.nextSeg.Add(1)) - 1
			if i >= len(window) {
				return
			}
			if len(window[i].targets) == 0 {
				continue
			}
			if window[i].copies > 1 {
				dups.Add(uint64(window[i].copies - 1))
			}
			if err := d.DeliverTargets(t, window[i].targets); err != nil {
				errs[tid] = err
				return
			}
		}
	})
	if n := dups.Load(); n > 0 {
		ep.inj.Dedup(n)
		ep.tel.faultDedup(ep.rank, n)
	}
	if ep.probe != nil {
		var depth int
		for _, seg := range window {
			if len(seg.targets) != 0 {
				depth++
			}
		}
		ep.probe.span(ep.rank, PhaseNetDrain, t, drainStart)
		ep.probe.depth(ep.rank, float64(depth))
	}
	// Truncate the drained segments so their writers can swap them back
	// as fresh send buffers at this parity's next epoch.
	for src := range window {
		window[src].targets = window[src].targets[:0]
		window[src].copies = 0
	}
	ep.epoch++
	if err := firstErr(errs); err != nil {
		ep.s.abort()
		return err
	}
	return nil
}
