package compass

import (
	"fmt"

	"github.com/cognitive-sim/compass/internal/truenorth"
)

// Elastic repartitioning: a paused run can resume on a different
// core→rank partition — and optionally a different rank count — from
// its latest checkpoint. This file is the compass-side entry point; the
// plan computation (telemetry-driven, cost-weighted) lives in
// internal/reshape, and the serving policy that triggers it at chunk
// boundaries lives in internal/server.
//
// Nothing about the running decomposition survives a reshape by
// accident: RunImageContext rebuilds every rank's endpoints, worker
// pool, dense CoreID-indexed core lookup, and outbox buffers from
// (image, Config, StartFrom) on every call, and checkpoints are
// decomposition-portable (Checkpoint.States is indexed by global
// CoreID, so restoring under any rank count is the same States[ID]
// lookup — the "remap" is the identity). Determinism across a reshape
// is therefore the simulator's existing cross-decomposition contract:
// the spike output is bit-identical for any (ranks, threads, transport)
// split, so chunk N+1 on the new partition produces exactly the spikes
// chunk N+1 on the old partition would have.

// ReshapePlan describes the partition a paused run should resume on.
type ReshapePlan struct {
	// Ranks is the new rank count; it must not exceed the model's core
	// count.
	Ranks int
	// RankOf places core i on rank RankOf[i] (one entry per core, values
	// in [0, Ranks)). Ranks may end up owning no cores; idle ranks are
	// legal and reported by Imbalance.IdleRanks.
	RankOf []int
}

// Reshape returns a copy of the config rebuilt onto the plan's
// partition, validated against img. The caller resumes by passing the
// new config (with StartFrom set to the boundary checkpoint) to the
// next Run call, which instantiates endpoints, worker pools, and the
// dense core lookup for the new partition. A Telemetry bundle built for
// fewer shards than the new rank count is dropped from the copy — the
// caller must attach one sized for the new decomposition.
func (c Config) Reshape(img *truenorth.Image, p ReshapePlan) (Config, error) {
	out := c
	out.Ranks = p.Ranks
	if p.RankOf != nil {
		out.RankOf = append([]int(nil), p.RankOf...)
	} else {
		out.RankOf = nil
	}
	if out.Telemetry != nil && out.Telemetry.Registry().Shards() < out.Ranks {
		out.Telemetry = nil
	}
	if err := out.ValidateImage(img); err != nil {
		return Config{}, fmt.Errorf("compass: reshape plan invalid: %w", err)
	}
	return out, nil
}

// Placement returns the rank of every core under this config — the
// explicit RankOf when set, the default contiguous block partition
// otherwise — always as a fresh slice the caller may keep.
func (c Config) Placement(numCores int) []int {
	return append([]int(nil), c.placement(numCores)...)
}
