package compass

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cognitive-sim/compass/internal/faults"
	"github.com/cognitive-sim/compass/internal/mpi"
)

// mpiBackend is the two-sided Network phase of Listing 1 (§III): one
// aggregated message per destination per tick, a Reduce-scatter to learn
// the incoming message count overlapped with local spike delivery, and a
// critical section around message receipt (thread-unsafe MPI).
//
// Failure propagation rides on the mpi runtime's world abort: the first
// rank whose body errors tears the world down, releasing every peer
// blocked in Recv or a collective with mpi.ErrAborted within the tick.
type mpiBackend struct {
	probe *transportProbe
	tel   *Telemetry
	inj   *faults.Injector
}

func (mpiBackend) Name() string    { return "mpi" }
func (mpiBackend) RawSpikes() bool { return false }

func (b mpiBackend) Run(ranks int, fn func(rank int, ep Endpoint) error) error {
	return mpi.Run(ranks, func(c *mpi.Comm) error {
		ep := &mpiEndpoint{comm: c, rank: c.Rank(), probe: b.probe, tel: b.tel, inj: b.inj}
		err := fn(c.Rank(), ep)
		if cerr := ep.Close(); err == nil {
			err = cerr
		}
		if err != nil && !errors.Is(err, mpi.ErrAborted) {
			b.tel.faultAbort(c.Rank())
		}
		return err
	})
}

// mpiTagModulus bounds the per-tick message tag: tag = tick mod modulus.
// A raw int(tick) tag would grow without bound and silently truncate on
// uint64 → int conversion. The modulus keeps matching correct because the
// per-tick Reduce-scatter is a world collective: no rank can enter tick
// t+1 before every rank has entered tick t's collective, so the only
// point-to-point messages in flight at any moment carry tags from two
// adjacent ticks. Any modulus ≥ 3 therefore never aliases a live tag;
// 1024 leaves generous slack and stays far inside the int tag space.
// TestMPITagSkewBound documents the bound this argument rests on.
const mpiTagModulus = 1024

// mpiEndpoint is one rank's two-sided transport connection. The receive
// mutex reproduces the thread-unsafe-MPI critical section of §III, and
// the error scratch is pooled across ticks. When a fault injector is
// attached, cnts/plans hold the fault-adjusted contribution vector and
// per-destination send plans, and seenTick deduplicates by source under
// the one-message-per-(src,tick) contract (guarded by recvMu).
type mpiEndpoint struct {
	comm      *mpi.Comm
	rank      int
	probe     *transportProbe
	tel       *Telemetry
	inj       *faults.Injector
	recvMu    sync.Mutex
	remaining atomic.Int64
	errs      []error
	cnts      []int64
	plans     []sendPlan
	seenTick  []uint64
}

func (ep *mpiEndpoint) Close() error { return nil }

// planSends resolves this tick's outgoing messages against the fault
// injector and returns the fault-adjusted contribution vector (an
// injected duplicate counts twice so the Reduce-scatter tells the
// receiver to expect — and then deduplicate — both copies).
func (ep *mpiEndpoint) planSends(t uint64, out *Outbox) ([]int64, error) {
	if ep.cnts == nil {
		ep.cnts = make([]int64, len(out.Counts))
		ep.plans = make([]sendPlan, len(out.Counts))
	}
	copy(ep.cnts, out.Counts)
	for dest := range out.Encoded {
		if out.Counts[dest] == 0 {
			continue
		}
		plan, err := resolveSend(ep.inj, ep.tel, ep.rank, t, dest)
		if err != nil {
			return nil, err
		}
		ep.plans[dest] = plan
		ep.cnts[dest] = int64(plan.copies)
	}
	return ep.cnts, nil
}

// sendOne publishes one planned message. A delayed send copies the
// payload (the outbox buffer is reused next tick) and publishes from a
// timer goroutine with the origin tick's tag, so the receiver absorbs
// the latency inside its tick-t drain.
func (ep *mpiEndpoint) sendOne(dest, tag int, payload []byte, plan sendPlan) error {
	for c := 0; c < plan.copies; c++ {
		if plan.delay > 0 {
			data := append([]byte(nil), payload...)
			go func() {
				time.Sleep(plan.delay)
				// A send racing a world abort returns ErrAborted; the
				// run is already failing, so the error has no consumer.
				_ = ep.comm.Isend(dest, tag, data)
			}()
			continue
		}
		if err := ep.comm.Isend(dest, tag, payload); err != nil {
			return err
		}
	}
	return nil
}

func (ep *mpiEndpoint) Exchange(t uint64, out *Outbox, d Delivery) error {
	if err := faultEnter(ep.inj, ep.tel, ep.rank, t); err != nil {
		return err
	}
	threads := d.Threads()
	errs := errScratch(&ep.errs, threads)
	tag := int(t % mpiTagModulus)
	var sendStart time.Time
	if ep.probe != nil {
		sendStart = time.Now()
		var msgs, bytes uint64
		for dest, n := range out.Counts {
			if n != 0 {
				msgs++
				bytes += uint64(len(out.Encoded[dest]))
			}
		}
		ep.probe.sent(ep.rank, msgs, bytes)
	}
	var expect int64
	d.Parallel(func(tid int) {
		if tid == 0 {
			counts := out.Counts
			if ep.inj.Active() {
				var err error
				if counts, err = ep.planSends(t, out); err != nil {
					errs[tid] = err
					return
				}
				for dest := range out.Encoded {
					if out.Counts[dest] == 0 {
						continue
					}
					if err := ep.sendOne(dest, tag, out.Encoded[dest], ep.plans[dest]); err != nil {
						errs[tid] = err
						return
					}
				}
			} else {
				for dest := range out.Encoded {
					if out.Counts[dest] != 0 {
						if err := ep.comm.Isend(dest, tag, out.Encoded[dest]); err != nil {
							errs[tid] = err
							return
						}
					}
				}
			}
			n, err := ep.comm.ReduceScatterSum(counts)
			if err != nil {
				errs[tid] = err
				return
			}
			expect = n
			if threads == 1 {
				errs[tid] = d.DeliverLocal(t, 0, 1)
			}
		} else {
			// Non-master threads overlap local delivery with the
			// master's collective.
			errs[tid] = d.DeliverLocal(t, tid-1, threads-1)
		}
	})
	if err := firstErr(errs); err != nil {
		return err
	}
	var drainStart time.Time
	if ep.probe != nil {
		ep.probe.span(ep.rank, PhaseNetSend, t, sendStart)
		ep.probe.depth(ep.rank, float64(expect))
		drainStart = time.Now()
	}

	// All threads take turns receiving inside the critical section and
	// deliver the received spikes outside it. Under fault injection the
	// critical section also deduplicates by source: each rank sends at
	// most one aggregated message per destination per tick, so a second
	// arrival from the same source is an injected duplicate.
	dedup := ep.inj.Active()
	if dedup && ep.seenTick == nil {
		ep.seenTick = make([]uint64, ep.comm.Size())
	}
	ep.remaining.Store(expect)
	d.Parallel(func(tid int) {
		for {
			if ep.remaining.Add(-1) < 0 {
				return
			}
			ep.recvMu.Lock()
			data, src, err := ep.comm.Recv(mpi.AnySource, tag)
			duplicate := false
			if err == nil && dedup {
				if ep.seenTick[src] == t+1 {
					duplicate = true
				} else {
					ep.seenTick[src] = t + 1
				}
			}
			ep.recvMu.Unlock()
			if err != nil {
				errs[tid] = err
				return
			}
			if duplicate {
				ep.inj.Dedup(1)
				ep.tel.faultDedup(ep.rank, 1)
				continue
			}
			if err := d.DeliverEncoded(t, data); err != nil {
				errs[tid] = err
				return
			}
		}
	})
	if ep.probe != nil {
		ep.probe.span(ep.rank, PhaseNetDrain, t, drainStart)
	}
	return firstErr(errs)
}
