package c2

import (
	"testing"

	"github.com/cognitive-sim/compass/internal/cocomac"
	"github.com/cognitive-sim/compass/internal/pcc"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// collisionFreeModel builds a deterministic model in which every axon
// has exactly one source (neuron j of core c targets axon j of core
// (c+1)%n), so the synapse-centric expansion is exactly equivalent.
func collisionFreeModel(nCores int) *truenorth.Model {
	m := &truenorth.Model{Seed: 4}
	for c := 0; c < nCores; c++ {
		cfg := &truenorth.CoreConfig{ID: truenorth.CoreID(c)}
		for a := 0; a < truenorth.CoreSize; a++ {
			cfg.AxonTypes[a] = uint8(a % truenorth.NumAxonTypes)
			// Sparse deterministic crossbar.
			for s := 0; s < 5; s++ {
				cfg.SetSynapse(a, (a*11+s*31+c)%truenorth.CoreSize, true)
			}
		}
		for j := 0; j < truenorth.CoreSize; j++ {
			cfg.Neurons[j] = truenorth.NeuronParams{
				Weights:   [truenorth.NumAxonTypes]int16{2, 1, 3, -1},
				Leak:      -1,
				Threshold: int32(3 + (j % 5)),
				Reset:     0,
				Floor:     -8,
				Target: truenorth.SpikeTarget{
					Core:  truenorth.CoreID((c + 1) % nCores),
					Axon:  uint16(j),
					Delay: uint8(1 + j%3),
				},
				Enabled: true,
			}
		}
		m.Cores = append(m.Cores, cfg)
	}
	for t := uint64(0); t < 20; t++ {
		for a := 0; a < 48; a++ {
			m.Inputs = append(m.Inputs, truenorth.InputSpike{
				Tick: t, Core: truenorth.CoreID(int(t) % nCores), Axon: uint16((a*5 + int(t)) % truenorth.CoreSize),
			})
		}
	}
	return m
}

func TestEquivalenceWithReferenceHandBuilt(t *testing.T) {
	m := collisionFreeModel(4)
	ref, err := truenorth.NewSerialSim(m)
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 40
	refPerTick := make([]int, ticks)
	ref.OnSpike = func(tick uint64, _ truenorth.Spike) { refPerTick[tick]++ }
	if err := ref.Run(ticks); err != nil {
		t.Fatal(err)
	}
	if ref.TotalSpikes() == 0 {
		t.Fatal("reference silent; test vacuous")
	}

	sim, err := FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	c2PerTick := make([]int, ticks)
	sim.OnSpike = func(tick uint64, _ uint32) { c2PerTick[tick]++ }
	sim.Run(ticks)

	if sim.TotalSpikes() != ref.TotalSpikes() {
		t.Fatalf("C2 baseline fired %d spikes, reference %d", sim.TotalSpikes(), ref.TotalSpikes())
	}
	for tk := 0; tk < ticks; tk++ {
		if c2PerTick[tk] != refPerTick[tk] {
			t.Fatalf("tick %d: C2 fired %d, reference %d", tk, c2PerTick[tk], refPerTick[tk])
		}
	}
}

func TestEquivalenceWithPCCCompiledModel(t *testing.T) {
	// PCC grants each axon to exactly one source neuron, which is the
	// collision-free condition; the synthetic CoCoMac prototypes use
	// deterministic weights and leaks, so the expansion is exact.
	net := cocomac.Generate(2012)
	spec, err := net.ToSpec(128, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pcc.Compile(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := truenorth.NewSerialSim(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(50); err != nil {
		t.Fatal(err)
	}
	sim, err := FromModel(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(50)
	if sim.TotalSpikes() != ref.TotalSpikes() {
		t.Fatalf("C2 baseline fired %d, reference %d on compiled CoCoMac model", sim.TotalSpikes(), ref.TotalSpikes())
	}
	if sim.TotalSpikes() == 0 {
		t.Fatal("compiled model silent")
	}
}

func TestRejectsStochasticModels(t *testing.T) {
	m := collisionFreeModel(2)
	m.Cores[0].Neurons[3].StochasticLeak = true
	if _, err := FromModel(m); err == nil {
		t.Fatal("stochastic leak accepted")
	}
	m = collisionFreeModel(2)
	m.Cores[1].Neurons[7].StochasticWeight[2] = true
	if _, err := FromModel(m); err == nil {
		t.Fatal("stochastic weight accepted")
	}
	bad := collisionFreeModel(2)
	bad.Cores[0].Neurons[0].Threshold = 0
	if _, err := FromModel(bad); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestMemoryAccounting(t *testing.T) {
	m := collisionFreeModel(4)
	sim, err := FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	impl, hist := sim.MemoryBytes()
	if impl != int64(sim.NumSynapses())*SynapseRecordBytes {
		t.Fatalf("impl memory %d for %d synapses", impl, sim.NumSynapses())
	}
	if hist != int64(sim.NumSynapses())*C2SynapseBytes {
		t.Fatalf("historical memory %d", hist)
	}
	// Compass stores the full crossbar bitmap regardless of density.
	if got := CompassMemoryBytes(m); got != 4*8192 {
		t.Fatalf("compass memory %d, want 32768", got)
	}
	// The §I claim: at full crossbar density the historical synapse
	// records need 32x the crossbar bitmap.
	full := &truenorth.Model{Seed: 1}
	cfg := &truenorth.CoreConfig{ID: 0}
	for a := 0; a < truenorth.CoreSize; a++ {
		for k := 0; k < truenorth.CoreSize; k++ {
			cfg.SetSynapse(a, k, true)
		}
	}
	for j := 0; j < truenorth.CoreSize; j++ {
		cfg.Neurons[j] = truenorth.NeuronParams{
			Weights:   [truenorth.NumAxonTypes]int16{1, 1, 1, 1},
			Threshold: 1 << 30,
			Target:    truenorth.SpikeTarget{Core: 0, Axon: uint16(j), Delay: 1},
			Enabled:   true,
		}
	}
	full.Cores = append(full.Cores, cfg)
	fsim, err := FromModel(full)
	if err != nil {
		t.Fatal(err)
	}
	_, fhist := fsim.MemoryBytes()
	ratio := float64(fhist) / float64(CompassMemoryBytes(full))
	if ratio != 32 {
		t.Fatalf("full-density storage ratio %.1f, want 32 (the paper's claim)", ratio)
	}
}

func TestDelayWheelTiming(t *testing.T) {
	// One neuron fires at tick 0 (threshold 1 via input) into a target
	// with delay 7; the target must fire exactly at tick 7.
	m := &truenorth.Model{Seed: 2}
	cfg := &truenorth.CoreConfig{ID: 0}
	cfg.SetSynapse(0, 0, true) // input axon 0 -> neuron 0
	cfg.SetSynapse(1, 1, true) // axon 1 -> neuron 1
	cfg.Neurons[0] = truenorth.NeuronParams{
		Weights: [truenorth.NumAxonTypes]int16{1, 1, 1, 1}, Threshold: 1, Floor: 0,
		Target: truenorth.SpikeTarget{Core: 0, Axon: 1, Delay: 7}, Enabled: true,
	}
	cfg.Neurons[1] = truenorth.NeuronParams{
		Weights: [truenorth.NumAxonTypes]int16{1, 1, 1, 1}, Threshold: 1, Floor: 0,
		Target: truenorth.SpikeTarget{Core: 0, Axon: 200, Delay: 1}, Enabled: true,
	}
	m.Cores = append(m.Cores, cfg)
	m.Inputs = []truenorth.InputSpike{{Tick: 0, Core: 0, Axon: 0}}

	sim, err := FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	fires := map[uint32]uint64{}
	sim.OnSpike = func(tick uint64, n uint32) { fires[n] = tick }
	sim.Run(12)
	if fires[0] != 0 {
		t.Fatalf("neuron 0 fired at %d, want 0", fires[0])
	}
	if got, ok := fires[1]; !ok || got != 7 {
		t.Fatalf("neuron 1 fired at %v (ok=%v), want 7", got, ok)
	}
}

func BenchmarkC2StepCoCoMac(b *testing.B) {
	net := cocomac.Generate(2012)
	spec, err := net.ToSpec(128, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	res, err := pcc.Compile(spec, 4)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := FromModel(res.Model)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}
