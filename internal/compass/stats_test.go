package compass

import (
	"testing"

	"github.com/cognitive-sim/compass/internal/truenorth"
)

// TestDerivedRatesZeroTicks checks that every per-tick rate degrades to
// zero (not NaN or Inf) on an empty run.
func TestDerivedRatesZeroTicks(t *testing.T) {
	s := &RunStats{NumCores: 4, TotalSpikes: 100, Messages: 7, RemoteSpikes: 3, WireBytes: 60}
	if got := s.AvgFiringRateHz(); got != 0 {
		t.Errorf("AvgFiringRateHz with zero ticks = %v, want 0", got)
	}
	if got := s.MessagesPerTick(); got != 0 {
		t.Errorf("MessagesPerTick with zero ticks = %v, want 0", got)
	}
	if got := s.SpikesPerTick(); got != 0 {
		t.Errorf("SpikesPerTick with zero ticks = %v, want 0", got)
	}
	if got := s.WireBytesPerTick(); got != 0 {
		t.Errorf("WireBytesPerTick with zero ticks = %v, want 0", got)
	}
}

// TestDerivedRatesZeroCores checks the firing-rate guard against an
// empty model (neurons == 0) even when ticks ran.
func TestDerivedRatesZeroCores(t *testing.T) {
	s := &RunStats{Ticks: 10, TotalSpikes: 5}
	if got := s.AvgFiringRateHz(); got != 0 {
		t.Errorf("AvgFiringRateHz with zero cores = %v, want 0", got)
	}
}

// TestDerivedRatesValues checks the rate arithmetic on hand-computed
// numbers, including the 1 ms tick → Hz conversion.
func TestDerivedRatesValues(t *testing.T) {
	s := &RunStats{
		Ticks: 100, NumCores: 2,
		TotalSpikes: 1024, RemoteSpikes: 300, Messages: 50,
		WireBytes: 300 * truenorth.SpikeWireBytes,
	}
	// 1024 spikes / (512 neurons × 100 ticks) × 1000 = 20 Hz.
	if got := s.AvgFiringRateHz(); got != 20 {
		t.Errorf("AvgFiringRateHz = %v, want 20", got)
	}
	if got := s.MessagesPerTick(); got != 0.5 {
		t.Errorf("MessagesPerTick = %v, want 0.5", got)
	}
	if got := s.SpikesPerTick(); got != 3 {
		t.Errorf("SpikesPerTick = %v, want 3", got)
	}
	if got := s.WireBytesPerTick(); got != 3*truenorth.SpikeWireBytes {
		t.Errorf("WireBytesPerTick = %v, want %v", got, 3*truenorth.SpikeWireBytes)
	}
}

// TestLoadImbalanceEdgeCases checks the imbalance ratios on degenerate
// and idle-rank cases: no ranks, one rank, all-idle, a known skew, and
// partitions with emptied ranks, whose means must cover occupied ranks
// only so an empty rank cannot mask a hotspot.
func TestLoadImbalanceEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		perRank []RankStats
		want    Imbalance
	}{
		{name: "empty PerRank", perRank: nil, want: Imbalance{}},
		{
			name:    "single rank is balanced by definition",
			perRank: []RankStats{{CoresOwned: 7, SynapticEvents: 9, Firings: 3, MessagesSent: 2}},
			want:    Imbalance{Cores: 1, Compute: 1, Firings: 1, Sends: 1},
		},
		{
			// All-zero activity must not divide by zero; the ratio
			// convention is 1 (balanced) when the mean is zero.
			name:    "all ranks idle",
			perRank: []RankStats{{}, {}},
			want:    Imbalance{Cores: 1, Compute: 1, Firings: 1, Sends: 1, IdleRanks: 2},
		},
		{
			// Known skew: cores 3 and 1 → max/mean = 3/2.
			name: "core skew without idle ranks",
			perRank: []RankStats{
				{CoresOwned: 3, SynapticEvents: 10, Firings: 4, MessagesSent: 6},
				{CoresOwned: 1, SynapticEvents: 10, Firings: 4, MessagesSent: 0},
			},
			want: Imbalance{Cores: 1.5, Compute: 1, Firings: 1, Sends: 2},
		},
		{
			// Two equally loaded occupied ranks plus two emptied ones:
			// the occupied pair is perfectly balanced, and the empties
			// must not deflate the mean into a phantom 2x ratio.
			name: "idle ranks excluded from the mean",
			perRank: []RankStats{
				{CoresOwned: 4, SynapticEvents: 10, Firings: 4, MessagesSent: 6},
				{CoresOwned: 4, SynapticEvents: 10, Firings: 4, MessagesSent: 6},
				{}, {},
			},
			want: Imbalance{Cores: 1, Compute: 1, Firings: 1, Sends: 1, IdleRanks: 2},
		},
		{
			// A genuine hotspot next to an idle rank: with the idle rank
			// excluded, compute is 16 vs mean (16+4+4)/3 = 8 → 2x.
			name: "hotspot visible despite idle rank",
			perRank: []RankStats{
				{CoresOwned: 2, SynapticEvents: 16, Firings: 8, MessagesSent: 4},
				{CoresOwned: 1, SynapticEvents: 4, Firings: 2, MessagesSent: 1},
				{CoresOwned: 1, SynapticEvents: 4, Firings: 2, MessagesSent: 1},
				{},
			},
			want: Imbalance{Cores: 1.5, Compute: 2, Firings: 2, Sends: 2, IdleRanks: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := (&RunStats{PerRank: tc.perRank}).LoadImbalance()
			if got != tc.want {
				t.Errorf("imbalance = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestPhaseSecondsDeprecatedSum checks the fused compute accessor kept
// for pre-split callers.
func TestPhaseSecondsDeprecatedSum(t *testing.T) {
	p := PhaseSeconds{Synapse: 0.25, Neuron: 0.5, Network: 2}
	if got := p.SynapseNeuron(); got != 0.75 {
		t.Errorf("SynapseNeuron() = %v, want 0.75", got)
	}
	if got := (PhaseSeconds{}).SynapseNeuron(); got != 0 {
		t.Errorf("zero SynapseNeuron() = %v, want 0", got)
	}
}
