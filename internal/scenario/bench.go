package scenario

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// BenchOptions parameterize a scenario throughput benchmark.
type BenchOptions struct {
	Scenario string
	Seed     uint64
	// Episodes and Steps override the spec defaults per session.
	Episodes int
	Steps    int
	// Concurrency lists the session counts to sweep (default 1, 4, 16).
	Concurrency []int
	Transport   string
}

// BenchPoint is one concurrency level's aggregate result.
type BenchPoint struct {
	Concurrency       int     `json:"concurrency"`
	Episodes          int     `json:"episodes"`
	Steps             int     `json:"steps"`
	ElapsedSeconds    float64 `json:"elapsed_seconds"`
	EpisodesPerSecond float64 `json:"episodes_per_second"`
	StepsPerSecond    float64 `json:"steps_per_second"`
	// RTT percentiles are client-observed inject→decision round trips
	// pooled across all concurrent sessions, in seconds.
	RTTp50Seconds float64 `json:"rtt_p50_seconds"`
	RTTp99Seconds float64 `json:"rtt_p99_seconds"`
}

// BenchReport is the full sweep, the BENCH_scenario.json artifact shape.
type BenchReport struct {
	Scenario string       `json:"scenario"`
	Seed     uint64       `json:"seed"`
	Target   string       `json:"target"`
	Cluster  bool         `json:"cluster"`
	Points   []BenchPoint `json:"points"`
}

// RunBench sweeps a scenario over concurrent session counts against a
// live serving surface and reports episode throughput and decision RTT
// percentiles per level.
func RunBench(addr string, opts BenchOptions) (*BenchReport, error) {
	spec, err := Get(opts.Scenario)
	if err != nil {
		return nil, err
	}
	levels := opts.Concurrency
	if len(levels) == 0 {
		levels = []int{1, 4, 16}
	}
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	report := &BenchReport{Scenario: spec.Name, Seed: opts.Seed, Target: addr, Cluster: c.Cluster()}
	for _, n := range levels {
		if n <= 0 {
			return nil, fmt.Errorf("scenario: bench concurrency %d", n)
		}
		results := make([]*Result, n)
		errs := make([]error, n)
		started := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = Run(c, spec, RunOptions{
					Episodes:  opts.Episodes,
					Steps:     opts.Steps,
					Seed:      opts.Seed + uint64(i),
					Transport: opts.Transport,
					Name:      fmt.Sprintf("bench-%s-c%d-%d", spec.Name, n, i),
				})
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(started).Seconds()
		var episodes, steps int
		var rtts []float64
		for i, r := range results {
			if errs[i] != nil {
				return nil, fmt.Errorf("scenario: bench c=%d session %d: %w", n, i, errs[i])
			}
			episodes += r.Episodes
			steps += r.Episodes * r.Steps
			rtts = append(rtts, r.StepRTTs...)
		}
		sort.Float64s(rtts)
		pt := BenchPoint{
			Concurrency:    n,
			Episodes:       episodes,
			Steps:          steps,
			ElapsedSeconds: elapsed,
			RTTp50Seconds:  quantile(rtts, 0.50),
			RTTp99Seconds:  quantile(rtts, 0.99),
		}
		if elapsed > 0 {
			pt.EpisodesPerSecond = float64(episodes) / elapsed
			pt.StepsPerSecond = float64(steps) / elapsed
		}
		report.Points = append(report.Points, pt)
	}
	return report, nil
}

// quantile reads the q-quantile of an already-sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
