package compass

import (
	"bytes"
	"sync"
	"testing"

	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// traceEqual compares two canonically sorted traces.
func traceEqual(a, b []truenorth.SpikeEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSharedImageCOWIsolation: two sessions running concurrently against
// ONE shared image must produce traces bit-identical to two sessions on
// privately built models — on every transport. Run under -race this is
// the copy-on-write isolation proof: any write into shared image state
// from either session would be a data race and a trace divergence.
func TestSharedImageCOWIsolation(t *testing.T) {
	const ticks = 40
	m := randomModel(8, 2024)
	img, err := truenorth.NewImage(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range Transports() {
		tr := tr
		t.Run(tr.String(), func(t *testing.T) {
			// Two different decompositions, so the sessions stress the
			// shared image from differently shaped runners.
			cfgA := Config{Ranks: 2, ThreadsPerRank: 2, Transport: tr, RecordTrace: true}
			cfgB := Config{Ranks: 4, ThreadsPerRank: 1, Transport: tr, RecordTrace: true}

			// Private baselines: each builds its own image from the model.
			privA, err := Run(m, cfgA, ticks)
			if err != nil {
				t.Fatal(err)
			}
			privB, err := Run(m, cfgB, ticks)
			if err != nil {
				t.Fatal(err)
			}

			// Shared: both sessions on one image, concurrently.
			var wg sync.WaitGroup
			var sharedA, sharedB *RunStats
			var errA, errB error
			wg.Add(2)
			go func() { defer wg.Done(); sharedA, errA = RunImage(img, cfgA, ticks) }()
			go func() { defer wg.Done(); sharedB, errB = RunImage(img, cfgB, ticks) }()
			wg.Wait()
			if errA != nil || errB != nil {
				t.Fatalf("shared runs failed: %v / %v", errA, errB)
			}
			if !traceEqual(privA.Trace, sharedA.Trace) {
				t.Fatalf("%s: session A trace differs between private and shared image", tr)
			}
			if !traceEqual(privB.Trace, sharedB.Trace) {
				t.Fatalf("%s: session B trace differs between private and shared image", tr)
			}
			if sharedA.TotalSpikes != privA.TotalSpikes || sharedB.TotalSpikes != privB.TotalSpikes {
				t.Fatalf("%s: spike totals differ under sharing", tr)
			}
		})
	}
}

// TestCheckpointAcrossImageBoundary: a checkpoint taken from a
// private-model run round-trips through the unchanged binary wire
// format and resumes on a shared image (and vice versa), matching the
// uninterrupted run bit-exactly.
func TestCheckpointAcrossImageBoundary(t *testing.T) {
	const half, full = 20, 40
	m := randomModel(6, 77)
	img, err := truenorth.NewImage(m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ranks: 3, ThreadsPerRank: 2, Transport: TransportShmem, RecordTrace: true}

	// Uninterrupted private-model reference.
	ref, err := Run(m, cfg, full)
	if err != nil {
		t.Fatal(err)
	}

	// Private first half, checkpoint through the wire format...
	cfgHalf := cfg
	cfgHalf.ReturnState = true
	first, err := Run(m, cfgHalf, half)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := coreobject.WriteCheckpoint(&buf, first.Final); err != nil {
		t.Fatal(err)
	}
	cp, err := coreobject.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// ...then resume the second half on the SHARED image.
	cfgResume := cfg
	cfgResume.StartFrom = cp
	second, err := RunImage(img, cfgResume, full-half)
	if err != nil {
		t.Fatal(err)
	}
	combined := append(append([]truenorth.SpikeEvent{}, first.Trace...), second.Trace...)
	truenorth.SortSpikeEvents(combined)
	if !traceEqual(ref.Trace, combined) {
		t.Fatal("private→shared checkpoint resume diverges from uninterrupted run")
	}

	// And the reverse direction: first half on the shared image,
	// resumed on a freshly built private image.
	firstShared, err := RunImage(img, cfgHalf, half)
	if err != nil {
		t.Fatal(err)
	}
	cfgResume2 := cfg
	cfgResume2.StartFrom = firstShared.Final
	secondPriv, err := Run(m, cfgResume2, full-half)
	if err != nil {
		t.Fatal(err)
	}
	combined2 := append(append([]truenorth.SpikeEvent{}, firstShared.Trace...), secondPriv.Trace...)
	truenorth.SortSpikeEvents(combined2)
	if !traceEqual(ref.Trace, combined2) {
		t.Fatal("shared→private checkpoint resume diverges from uninterrupted run")
	}
}
