package cluster

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/server"
	"github.com/cognitive-sim/compass/internal/spikeio"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// ---- harness ----------------------------------------------------------

// testModel mirrors internal/server's test helper: a deterministic
// network with sustained input drive so every run of the same seed is
// bit-identical.
func testModel(nCores int, seed uint64) *truenorth.Model {
	r := prng.New(seed)
	m := &truenorth.Model{Seed: seed}
	for k := 0; k < nCores; k++ {
		cfg := &truenorth.CoreConfig{ID: truenorth.CoreID(k)}
		for a := 0; a < truenorth.CoreSize; a++ {
			cfg.AxonTypes[a] = uint8(r.Intn(truenorth.NumAxonTypes))
			for s := 0; s < 8; s++ {
				cfg.SetSynapse(a, r.Intn(truenorth.CoreSize), true)
			}
		}
		for j := 0; j < truenorth.CoreSize; j++ {
			cfg.Neurons[j] = truenorth.NeuronParams{
				Weights:   [truenorth.NumAxonTypes]int16{2, 1, 3, -1},
				Leak:      -1,
				Threshold: int32(3 + r.Intn(6)),
				Reset:     0,
				Floor:     -32,
				Target: truenorth.SpikeTarget{
					Core:  truenorth.CoreID(r.Intn(nCores)),
					Axon:  uint16(r.Intn(truenorth.CoreSize)),
					Delay: uint8(1 + r.Intn(3)),
				},
				Enabled: true,
			}
		}
		m.Cores = append(m.Cores, cfg)
	}
	for tick := uint64(0); tick < 30; tick++ {
		for a := 0; a < 64; a++ {
			m.Inputs = append(m.Inputs, truenorth.InputSpike{
				Tick: tick,
				Core: truenorth.CoreID(int(tick) % nCores),
				Axon: uint16(r.Intn(truenorth.CoreSize)),
			})
		}
	}
	return m
}

func modelB64(t *testing.T, m *truenorth.Model) string {
	t.Helper()
	var buf bytes.Buffer
	if err := coreobject.WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes())
}

// modelRequest builds a start-paused CreateRequest for a binary model.
// The stall fault (wall-clock only; output is bit-identical) paces the
// run so lifecycle verbs land at early, predictable chunk boundaries.
func modelRequest(t *testing.T, m *truenorth.Model, transport string, ticks uint64, faults string) *server.CreateRequest {
	t.Helper()
	return &server.CreateRequest{
		Name:        "cluster-" + transport,
		Source:      server.SourceSpec{Kind: "model", ModelBase64: modelB64(t, m)},
		Ranks:       2,
		Threads:     2,
		Transport:   transport,
		Ticks:       ticks,
		ChunkTicks:  10,
		StartPaused: true,
		Faults:      faults,
	}
}

func startNode(t *testing.T, id string) *server.Server {
	t.Helper()
	srv := server.New(server.Options{
		HTTPAddr:   "127.0.0.1:0",
		StreamAddr: "127.0.0.1:0",
		NodeID:     id,
		Manager: server.ManagerOptions{
			CapacitySecondsPerTick: 1e9,
			MaxRunning:             32,
			ChunkTicks:             10,
		},
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// testLogger forwards coordinator logs to t.Logf until the test ends;
// stray background goroutines (restore attempts racing shutdown) then
// log into the void instead of panicking the test framework.
type testLogger struct {
	mu   sync.Mutex
	t    *testing.T
	done bool
}

func (l *testLogger) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.done {
		l.t.Logf(format, args...)
	}
}

func (l *testLogger) mute() {
	l.mu.Lock()
	l.done = true
	l.mu.Unlock()
}

type testCluster struct {
	t      *testing.T
	coord  *Coordinator
	nodes  map[string]*server.Server
	agents map[string]*Agent
	hc     *http.Client
}

func newTestCluster(t *testing.T, opts Options) *testCluster {
	t.Helper()
	if opts.HTTPAddr == "" {
		opts.HTTPAddr = "127.0.0.1:0"
	}
	if opts.StreamAddr == "" {
		opts.StreamAddr = "127.0.0.1:0"
	}
	if opts.HeartbeatInterval == 0 {
		opts.HeartbeatInterval = 50 * time.Millisecond
	}
	lg := &testLogger{t: t}
	opts.Logf = lg.logf
	t.Cleanup(lg.mute) // registered first: runs after every shutdown below
	c := NewCoordinator(opts)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	return &testCluster{
		t:      t,
		coord:  c,
		nodes:  make(map[string]*server.Server),
		agents: make(map[string]*Agent),
		hc:     &http.Client{Timeout: 60 * time.Second},
	}
}

func (tc *testCluster) addNode(id string) *server.Server {
	tc.t.Helper()
	srv := startNode(tc.t, id)
	a, err := StartAgent(tc.coord.HTTPAddr(), srv)
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.t.Cleanup(a.Stop)
	tc.nodes[id] = srv
	tc.agents[id] = a
	return srv
}

// doJSON issues one coordinator control-plane request.
func (tc *testCluster) doJSON(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, "http://"+tc.coord.HTTPAddr()+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := tc.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env struct {
			Error string `json:"error"`
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(raw, &env) == nil && env.Error != "" {
			return fmt.Errorf("%s %s: %s", method, path, env.Error)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (tc *testCluster) create(req *server.CreateRequest) SessionStatus {
	tc.t.Helper()
	var st SessionStatus
	if err := tc.doJSON(http.MethodPost, "/v1/cluster/sessions", req, &st); err != nil {
		tc.t.Fatal(err)
	}
	return st
}

func (tc *testCluster) verb(id, verb string) SessionStatus {
	tc.t.Helper()
	var st SessionStatus
	if err := tc.doJSON(http.MethodPost, "/v1/cluster/sessions/"+id+"/"+verb, nil, &st); err != nil {
		tc.t.Fatalf("%s %s: %v", verb, id, err)
	}
	return st
}

func (tc *testCluster) migrate(id, target string) SessionStatus {
	tc.t.Helper()
	var st SessionStatus
	if err := tc.doJSON(http.MethodPost, "/v1/cluster/sessions/"+id+"/migrate", &MigrateRequest{Target: target}, &st); err != nil {
		tc.t.Fatalf("migrate %s to %q: %v", id, target, err)
	}
	return st
}

func (tc *testCluster) status(id string) SessionStatus {
	tc.t.Helper()
	var st SessionStatus
	if err := tc.doJSON(http.MethodGet, "/v1/cluster/sessions/"+id, nil, &st); err != nil {
		tc.t.Fatal(err)
	}
	return st
}

func (tc *testCluster) checkpoint(id string) []byte {
	tc.t.Helper()
	resp, err := tc.hc.Get("http://" + tc.coord.HTTPAddr() + "/v1/cluster/sessions/" + id + "/checkpoint")
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		tc.t.Fatalf("checkpoint %s: %s (%v): %s", id, resp.Status, err, raw)
	}
	return raw
}

// waitEnded polls until the cluster session reaches a terminal record.
func (tc *testCluster) waitEnded(id string, timeout time.Duration) SessionStatus {
	tc.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := tc.status(id)
		if st.Ended {
			return st
		}
		if time.Now().After(deadline) {
			tc.t.Fatalf("session %s never ended: %+v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func sortEvents(events []spikeio.Event) {
	sort.Slice(events, func(a, b int) bool {
		if events[a].Tick != events[b].Tick {
			return events[a].Tick < events[b].Tick
		}
		if events[a].Core != events[b].Core {
			return events[a].Core < events[b].Core
		}
		return events[a].Axon < events[b].Axon
	})
}

type streamResult struct {
	events []spikeio.Event
	err    error
}

// collectStream drains a subscriber until EOF.
func collectStream(c *server.StreamClient, ch chan<- streamResult) {
	var out streamResult
	for {
		frame, err := c.Recv()
		if err == io.EOF {
			ch <- out
			return
		}
		if err != nil {
			out.err = err
			ch <- out
			return
		}
		out.events = append(out.events, frame...)
	}
}

// ---- the shared lifecycle script --------------------------------------

// sessionDriver abstracts one spike-streamed session so the identical
// lifecycle script can drive a cluster session (through the coordinator
// control plane and stream proxy) and a solo reference session (against
// a standalone daemon): the byte-identity comparison is only meaningful
// when both runs see the same verbs and the same injected spikes.
type sessionDriver interface {
	verb(verb string) *server.Info // pause blocks until parked
	streamEndpoint() (addr, id string)
	checkpoint() []byte
}

type clusterDriver struct {
	tc *testCluster
	id string
}

func (d *clusterDriver) verb(verb string) *server.Info {
	st := d.tc.verb(d.id, verb)
	return st.Info
}
func (d *clusterDriver) streamEndpoint() (string, string) {
	return d.tc.coord.StreamAddr(), d.id
}
func (d *clusterDriver) checkpoint() []byte { return d.tc.checkpoint(d.id) }

type soloDriver struct {
	t   *testing.T
	srv *server.Server
	nc  *nodeClient
	id  string
}

func newSoloDriver(t *testing.T, name string, req *server.CreateRequest) *soloDriver {
	t.Helper()
	srv := startNode(t, name)
	nc := newNodeClient(srv.HTTPAddr(), 60*time.Second)
	info, err := nc.createSession(req)
	if err != nil {
		t.Fatal(err)
	}
	return &soloDriver{t: t, srv: srv, nc: nc, id: info.ID}
}

func (d *soloDriver) verb(verb string) *server.Info {
	info, err := d.nc.lifecycle(d.id, verb)
	if err != nil {
		d.t.Fatalf("solo %s: %v", verb, err)
	}
	return info
}
func (d *soloDriver) streamEndpoint() (string, string) { return d.srv.StreamAddr(), d.id }
func (d *soloDriver) checkpoint() []byte {
	raw, err := d.nc.checkpoint(d.id)
	if err != nil {
		d.t.Fatal(err)
	}
	return raw
}

// script describes the lifecycle both runs share. Spikes are injected
// at fixed absolute ticks; the mid-run injection requires both runs to
// park strictly before tick 50, which the stall-fault pacing ensures.
type script struct {
	midrunPause time.Duration // 0: stay parked at tick 0 until mid()
	mid         func()        // runs while parked (migrations, failover setup)
}

var (
	preSpikes = []spikeio.Event{{Tick: 20, Core: 0, Axon: 1}, {Tick: 21, Core: 1, Axon: 2}}
	midSpikes = []spikeio.Event{{Tick: 50, Core: 2, Axon: 3}, {Tick: 51, Core: 0, Axon: 4}}
)

// drive runs the script and returns the sorted egress trace and the
// final checkpoint bytes.
func drive(t *testing.T, d sessionDriver, sc script) ([]spikeio.Event, []byte) {
	t.Helper()
	addr, id := d.streamEndpoint()
	stream, err := server.DialStream(addr, id, server.StreamFlagInject|server.StreamFlagSubscribe)
	if err != nil {
		t.Fatalf("dial stream %s at %s: %v", id, addr, err)
	}
	defer stream.Close()
	results := make(chan streamResult, 1)
	go collectStream(stream, results)

	// Inject while parked at tick 0: both spikes target future ticks.
	if err := stream.Send(preSpikes); err != nil {
		t.Fatal(err)
	}

	if sc.midrunPause > 0 {
		d.verb("resume")
		time.Sleep(sc.midrunPause)
		info := d.verb("pause")
		if info == nil || info.State != "paused" {
			t.Fatalf("mid-run pause did not settle: %+v", info)
		}
		if info.TicksDone >= midSpikes[0].Tick {
			t.Fatalf("pacing flake: parked at tick %d, want below %d (stall fault too weak for this machine)",
				info.TicksDone, midSpikes[0].Tick)
		}
		if err := stream.Send(midSpikes); err != nil {
			t.Fatal(err)
		}
	}
	if sc.mid != nil {
		sc.mid()
	}
	d.verb("resume")

	var res streamResult
	select {
	case res = <-results:
	case <-time.After(120 * time.Second):
		t.Fatal("stream never reached EOF")
	}
	if res.err != nil {
		t.Fatalf("stream error: %v", res.err)
	}
	sortEvents(res.events)
	return res.events, d.checkpoint()
}

func assertSameRun(t *testing.T, label string, gotEvents, wantEvents []spikeio.Event, gotCkpt, wantCkpt []byte) {
	t.Helper()
	if len(gotEvents) != len(wantEvents) {
		t.Fatalf("%s: trace has %d records, reference %d", label, len(gotEvents), len(wantEvents))
	}
	for i := range wantEvents {
		if gotEvents[i] != wantEvents[i] {
			t.Fatalf("%s: trace record %d = %+v, reference %+v", label, i, gotEvents[i], wantEvents[i])
		}
	}
	if !bytes.Equal(gotCkpt, wantCkpt) {
		t.Fatalf("%s: final checkpoint differs from reference (%d vs %d bytes): %s",
			label, len(gotCkpt), len(wantCkpt), diffCheckpoints(gotCkpt, wantCkpt))
	}
}

// diffCheckpoints decodes two checkpoint blobs and names the first
// divergent field, so a determinism failure points at the state that
// drifted instead of a raw byte offset.
func diffCheckpoints(got, want []byte) string {
	g, gerr := coreobject.ReadCheckpoint(bytes.NewReader(got))
	w, werr := coreobject.ReadCheckpoint(bytes.NewReader(want))
	if gerr != nil || werr != nil {
		return fmt.Sprintf("decode got=%v want=%v", gerr, werr)
	}
	if g.Tick != w.Tick {
		return fmt.Sprintf("tick %d vs %d", g.Tick, w.Tick)
	}
	if g.ModelHash != w.ModelHash {
		return fmt.Sprintf("model hash %q vs %q", g.ModelHash, w.ModelHash)
	}
	if len(g.States) != len(w.States) {
		return fmt.Sprintf("core count %d vs %d", len(g.States), len(w.States))
	}
	for i := range g.States {
		gc, wc := &g.States[i], &w.States[i]
		for j := range gc.Potentials {
			if gc.Potentials[j] != wc.Potentials[j] {
				return fmt.Sprintf("core %d potential[%d] %d vs %d", i, j, gc.Potentials[j], wc.Potentials[j])
			}
		}
		for j := range gc.AxonBuf {
			if gc.AxonBuf[j] != wc.AxonBuf[j] {
				return fmt.Sprintf("core %d axonbuf[%d] %#x vs %#x", i, j, gc.AxonBuf[j], wc.AxonBuf[j])
			}
		}
		for j := range gc.RNG {
			if gc.RNG[j] != wc.RNG[j] {
				return fmt.Sprintf("core %d rng[%d] %#x vs %#x", i, j, gc.RNG[j], wc.RNG[j])
			}
		}
	}
	return "no field-level difference found"
}

// ---- migration determinism --------------------------------------------

// TestMigrationDeterminism is the acceptance table: sessions created
// through the coordinator, streamed through the proxy, and migrated at
// a chunk boundary (including before the first tick, and twice in a
// row) must produce a spike trace and final checkpoint byte-identical
// to an unmigrated solo run — on all three transports, with spikes
// injected both before the run and mid-stream while parked.
func TestMigrationDeterminism(t *testing.T) {
	const pacing = "stall:rank=0,k=2" // ~1ms/tick until the migration strips it
	cases := []struct {
		name      string
		transport string
		fresh     bool // migrate while still parked at tick 0
		double    bool // migrate twice back to back
	}{
		{name: "mpi-midrun", transport: "mpi"},
		{name: "pgas-midrun", transport: "pgas"},
		{name: "shmem-midrun", transport: "shmem"},
		{name: "shmem-fresh-tick0", transport: "shmem", fresh: true},
		{name: "mpi-double", transport: "mpi", double: true},
	}
	for i, c := range cases {
		c := c
		seed := uint64(4200 + i)
		t.Run(c.name, func(t *testing.T) {
			m := testModel(4, seed)
			req := modelRequest(t, m, c.transport, 60, pacing)

			sc := script{midrunPause: 15 * time.Millisecond}
			if c.fresh {
				sc.midrunPause = 0
			}
			solo := newSoloDriver(t, "solo", req)
			wantEvents, wantCkpt := drive(t, solo, sc)

			tc := newTestCluster(t, Options{})
			tc.addNode("n1")
			tc.addNode("n2")
			if c.double {
				tc.addNode("n3")
			}
			st := tc.create(req)
			if st.Info == nil || st.Info.Placement == "" {
				t.Fatalf("cluster create returned no placement info: %+v", st)
			}
			csc := sc
			csc.mid = func() {
				before := tc.status(st.ClusterID)
				moved := tc.migrate(st.ClusterID, "")
				if moved.Node == before.Node {
					t.Fatalf("migration stayed on %s", before.Node)
				}
				if c.double {
					again := tc.migrate(st.ClusterID, "")
					if again.Node == moved.Node {
						t.Fatalf("second migration stayed on %s", moved.Node)
					}
				}
			}
			gotEvents, gotCkpt := drive(t, &clusterDriver{tc: tc, id: st.ClusterID}, csc)
			assertSameRun(t, c.name, gotEvents, wantEvents, gotCkpt, wantCkpt)

			final := tc.waitEnded(st.ClusterID, 30*time.Second)
			wantMigrations := 1
			if c.double {
				wantMigrations = 2
			}
			if final.EndState != "done" || final.Migrations != wantMigrations {
				t.Fatalf("final status: %+v, want done with %d migrations", final, wantMigrations)
			}
		})
	}
}

// TestBatchedLaneMigration migrates one of two same-model sessions
// sharing a batched tick loop; both its trace and its lane-mate's must
// stay byte-identical to solo references. Fault pacing would force the
// sessions out of the batch group (faulted runs execute solo), so both
// run unpaced and A migrates while still parked at tick 0 — the lane
// departure the group must absorb is the same either way.
func TestBatchedLaneMigration(t *testing.T) {
	m := testModel(4, 7700)
	reqA := modelRequest(t, m, "shmem", 60, "")
	reqB := modelRequest(t, m, "shmem", 60, "")
	reqB.Name = "lane-mate"

	soloA := newSoloDriver(t, "solo-a", reqA)
	wantA, wantCkptA := drive(t, soloA, script{})
	soloB := newSoloDriver(t, "solo-b", reqB)
	wantB, wantCkptB := drive(t, soloB, script{})

	tc := newTestCluster(t, Options{})
	tc.addNode("n1")
	tc.addNode("n2")
	stA := tc.create(reqA)
	stB := tc.create(reqB)
	if stA.Node != stB.Node {
		t.Fatalf("same-model sessions placed apart: %s vs %s", stA.Node, stB.Node)
	}
	if stA.Info.BatchGroup == "" || stA.Info.BatchGroup != stB.Info.BatchGroup {
		t.Fatalf("sessions not sharing a batch group: %q vs %q", stA.Info.BatchGroup, stB.Info.BatchGroup)
	}

	// B runs the plain script concurrently; A migrates out of the shared
	// lane before resuming.
	var wgB sync.WaitGroup
	var gotB []spikeio.Event
	var ckptB []byte
	wgB.Add(1)
	go func() {
		defer wgB.Done()
		gotB, ckptB = drive(t, &clusterDriver{tc: tc, id: stB.ClusterID}, script{})
	}()
	gotA, ckptA := drive(t, &clusterDriver{tc: tc, id: stA.ClusterID}, script{
		mid: func() {
			moved := tc.migrate(stA.ClusterID, "")
			if moved.Node == stA.Node {
				t.Errorf("migration stayed on %s", stA.Node)
			}
		},
	})
	wgB.Wait()

	assertSameRun(t, "migrated lane member", gotA, wantA, ckptA, wantCkptA)
	assertSameRun(t, "remaining lane member", gotB, wantB, ckptB, wantCkptB)
}

// ---- failover ---------------------------------------------------------

// TestFailoverCrashFault arms a deterministic crash fault (the chaos
// drill: one rank dies mid-run), lets the heartbeat path notice the
// failed session, and asserts the restored run's trace and final
// checkpoint are byte-identical to a fault-free solo run.
func TestFailoverCrashFault(t *testing.T) {
	m := testModel(4, 9100)
	soloReq := modelRequest(t, m, "mpi", 60, "stall:rank=0,k=2")
	solo := newSoloDriver(t, "solo", soloReq)
	wantEvents, wantCkpt := drive(t, solo, script{})

	tc := newTestCluster(t, Options{})
	tc.addNode("n1")
	tc.addNode("n2")
	req := modelRequest(t, m, "mpi", 60, "stall:rank=0,k=2;crash:rank=1,tick=30")
	st := tc.create(req)
	home := st.Node

	gotEvents, gotCkpt := drive(t, &clusterDriver{tc: tc, id: st.ClusterID}, script{})
	assertSameRun(t, "crash failover", gotEvents, wantEvents, gotCkpt, wantCkpt)

	final := tc.waitEnded(st.ClusterID, 30*time.Second)
	if final.EndState != "done" {
		t.Fatalf("end state %q, want done", final.EndState)
	}
	if final.Restores != 1 {
		t.Fatalf("restores = %d, want 1", final.Restores)
	}
	if final.Node == home {
		t.Fatalf("session was not restored off its crashed home %s", home)
	}
}

// TestFailoverNodeDeath silences a node's heartbeats without
// deregistering it (the daemon stays up — the nastier, split-brain
// shape of failure), waits for the lapse sweep to declare it dead, and
// asserts the session restored elsewhere still yields a byte-identical
// trace and checkpoint: late records from the presumed-dead node must
// not double-deliver.
func TestFailoverNodeDeath(t *testing.T) {
	const pacing = "stall:rank=0,k=10" // ~5ms/tick: the run outlives the lapse window
	m := testModel(4, 9300)
	req := modelRequest(t, m, "shmem", 60, pacing)
	solo := newSoloDriver(t, "solo", req)
	wantEvents, wantCkpt := drive(t, solo, script{})

	tc := newTestCluster(t, Options{
		HeartbeatInterval: 40 * time.Millisecond,
		LapseFactor:       3,
	})
	tc.addNode("n1")
	st := tc.create(req) // n1 is the only node: the session lands there
	tc.addNode("n2")     // the empty failover target

	stream, err := server.DialStream(tc.coord.StreamAddr(), st.ClusterID,
		server.StreamFlagInject|server.StreamFlagSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	results := make(chan streamResult, 1)
	go collectStream(stream, results)
	if err := stream.Send(preSpikes); err != nil {
		t.Fatal(err)
	}
	tc.verb(st.ClusterID, "resume")

	// Mid-run, stop the owner's heartbeat loop without deregistering:
	// the daemon (and the session) keeps running, but the coordinator
	// must declare the node dead and restore the session on n2.
	time.Sleep(60 * time.Millisecond)
	a := tc.agents["n1"]
	a.stopOnce.Do(func() { close(a.stop) })
	a.wg.Wait()

	var res streamResult
	select {
	case res = <-results:
	case <-time.After(120 * time.Second):
		t.Fatal("stream never reached EOF after node death")
	}
	if res.err != nil {
		t.Fatalf("stream error: %v", res.err)
	}
	sortEvents(res.events)
	gotCkpt := tc.checkpoint(st.ClusterID)
	assertSameRun(t, "node death failover", res.events, wantEvents, gotCkpt, wantCkpt)

	final := tc.waitEnded(st.ClusterID, 30*time.Second)
	if final.EndState != "done" {
		t.Fatalf("end state %q, want done", final.EndState)
	}
	if final.Restores < 1 {
		t.Fatalf("restores = %d, want >= 1", final.Restores)
	}
	if final.Node != "n2" {
		t.Fatalf("session ended on %s, want the failover target n2", final.Node)
	}
}

// ---- drain, placement, control-plane surface --------------------------

// TestDrainNode moves every session off a node via the drain endpoint
// (the SIGTERM rolling-restart path) and checks the node is excluded
// from subsequent placement.
func TestDrainNode(t *testing.T) {
	tc := newTestCluster(t, Options{})
	tc.addNode("n1")
	m := testModel(4, 5100)
	st1 := tc.create(modelRequest(t, m, "shmem", 40, ""))
	st2 := tc.create(modelRequest(t, testModel(4, 5200), "shmem", 40, ""))
	if st1.Node != "n1" || st2.Node != "n1" {
		t.Fatalf("sessions placed on %s/%s, want n1", st1.Node, st2.Node)
	}
	tc.addNode("n2")

	var out struct {
		Moved []string `json:"moved"`
		Stuck []string `json:"stuck"`
	}
	if err := tc.doJSON(http.MethodPost, "/v1/cluster/nodes/n1/drain", struct{}{}, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Moved) != 2 || len(out.Stuck) != 0 {
		t.Fatalf("drain moved %v, stuck %v; want both moved", out.Moved, out.Stuck)
	}
	for _, id := range []string{st1.ClusterID, st2.ClusterID} {
		if st := tc.status(id); st.Node != "n2" {
			t.Fatalf("session %s on %s after drain, want n2", id, st.Node)
		}
	}

	// The drained node must not receive new sessions.
	st3 := tc.create(modelRequest(t, testModel(4, 5300), "shmem", 40, ""))
	if st3.Node != "n2" {
		t.Fatalf("new session placed on draining node %s", st3.Node)
	}

	// The migrated sessions still run to completion (StartPaused held
	// them parked across the move).
	for _, id := range []string{st1.ClusterID, st2.ClusterID} {
		tc.verb(id, "resume")
		if st := tc.waitEnded(id, 60*time.Second); st.EndState != "done" {
			t.Fatalf("session %s ended %q, want done", id, st.EndState)
		}
	}
}

// TestPlacementAffinity checks that a session whose source resolved to
// an already-resident model image co-locates with it, while a
// different model lands on the emptier node.
func TestPlacementAffinity(t *testing.T) {
	tc := newTestCluster(t, Options{})
	tc.addNode("n1")
	tc.addNode("n2")
	m := testModel(4, 6100)

	st1 := tc.create(modelRequest(t, m, "shmem", 40, ""))
	// Same model: affinity should pin it to st1's node even though the
	// other node is emptier.
	st2 := tc.create(modelRequest(t, m, "shmem", 40, ""))
	if st2.Node != st1.Node {
		t.Fatalf("same-model session placed on %s, first on %s", st2.Node, st1.Node)
	}
	if st2.Info == nil || !strings.Contains(st2.Info.Placement, "model-affinity") {
		t.Fatalf("placement reason %q, want model-affinity", st2.Info.Placement)
	}

	// Let a heartbeat report the load so placement sees the imbalance,
	// then place a different model: least-utilized goes to the other node.
	time.Sleep(4 * tc.coord.opts.HeartbeatInterval)
	st3 := tc.create(modelRequest(t, testModel(4, 6200), "shmem", 40, ""))
	if st3.Node == st1.Node {
		t.Fatalf("different-model session stacked on loaded node %s", st3.Node)
	}
}

// TestControlPlaneSurface covers the coordinator HTTP surface and the
// stream proxy's handshake rejections.
func TestControlPlaneSurface(t *testing.T) {
	tc := newTestCluster(t, Options{})
	tc.addNode("n1")
	tc.addNode("n2")

	var hz struct {
		Status   string         `json:"status"`
		Role     string         `json:"role"`
		Nodes    map[string]int `json:"nodes"`
		Sessions map[string]int `json:"sessions"`
	}
	if err := tc.doJSON(http.MethodGet, "/healthz", nil, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Role != "coordinator" || hz.Nodes["total"] != 2 {
		t.Fatalf("healthz: %+v", hz)
	}

	var nodes struct {
		Nodes []NodeStatus `json:"nodes"`
	}
	if err := tc.doJSON(http.MethodGet, "/v1/cluster/nodes", nil, &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes.Nodes) != 2 || nodes.Nodes[0].ID != "n1" || !nodes.Nodes[0].Alive {
		t.Fatalf("node list: %+v", nodes.Nodes)
	}

	// A heartbeat from an unregistered node is a conflict: the sender
	// must re-register.
	err := tc.doJSON(http.MethodPost, "/v1/cluster/nodes/heartbeat", &Heartbeat{NodeID: "ghost"}, nil)
	if err == nil || !strings.Contains(err.Error(), "register") {
		t.Fatalf("ghost heartbeat: %v, want re-register error", err)
	}

	// Unknown session: 404 on status, migrate, and stream handshake.
	if err := tc.doJSON(http.MethodGet, "/v1/cluster/sessions/nope", nil, nil); err == nil {
		t.Fatal("unknown session status succeeded")
	}
	if err := tc.doJSON(http.MethodPost, "/v1/cluster/sessions/nope/migrate", nil, nil); err == nil {
		t.Fatal("unknown session migrate succeeded")
	}
	if _, err := server.DialStream(tc.coord.StreamAddr(), "nope", server.StreamFlagSubscribe); err == nil {
		t.Fatal("proxy accepted a handshake for an unknown session")
	}

	st := tc.create(modelRequest(t, testModel(4, 8100), "shmem", 30, ""))
	if got := tc.status(st.ClusterID); got.ClusterID != st.ClusterID || got.Node == "" {
		t.Fatalf("status: %+v", got)
	}
	var list struct {
		Sessions []SessionStatus `json:"sessions"`
	}
	if err := tc.doJSON(http.MethodGet, "/v1/cluster/sessions", nil, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 1 || list.Sessions[0].ClusterID != st.ClusterID {
		t.Fatalf("session list: %+v", list.Sessions)
	}

	// A handshake with neither inject nor subscribe is rejected.
	if _, err := server.DialStream(tc.coord.StreamAddr(), st.ClusterID, 0); err == nil {
		t.Fatal("proxy accepted a flagless handshake")
	}

	// Deleting through the cluster API removes the record and the
	// owner-side session.
	if err := tc.doJSON(http.MethodDelete, "/v1/cluster/sessions/"+st.ClusterID, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := tc.doJSON(http.MethodGet, "/v1/cluster/sessions/"+st.ClusterID, nil, nil); err == nil {
		t.Fatal("deleted session still listed")
	}
}
