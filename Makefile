# Developer entry points. `make check` is the pre-commit gate; `race`
# exercises the persistent worker pool and the shmem buffer swapping
# under the race detector on every change.

GO ?= go

.PHONY: build test race vet check bench bench-transport bench-kernel bench-admit bench-batch bench-reshape bench-scenario telemetry-smoke chaos-smoke race-transport serve-smoke cluster-smoke scenario-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the simulator core and both communication runtimes: the
# worker pool, the MPI mailboxes, the PGAS windows, the shmem zero-copy
# slice swapping, and the atomic spike-delivery bitmask all run under
# -race here.
race:
	$(GO) test -race ./internal/truenorth/... ./internal/compass/... ./internal/mpi/... ./internal/pgas/... ./internal/modelcache/... ./internal/server/... ./internal/cluster/... ./internal/reshape/... ./internal/spikecode/... ./internal/scenario/...

vet:
	$(GO) vet ./...

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate BENCH_transport.json, the per-transport Network-phase
# throughput record (shmem must stay >= mpi on this workload).
bench-transport:
	BENCH_TRANSPORT_OUT=BENCH_transport.json $(GO) test -run TestTransportBenchArtifact -count=1 -v .

# Regenerate BENCH_kernel.json, the Synapse-phase throughput record:
# the bit-parallel kernel must stay >= 1.5x the scalar reference on the
# dense deterministic workload.
bench-kernel:
	BENCH_KERNEL_OUT=BENCH_kernel.json $(GO) test -run TestKernelBenchArtifact -count=1 -v .

# Regenerate BENCH_admit.json, the model-cache admission record: cached
# admission must stay >= 10x faster than a cold PCC compile, N sessions
# sharing one image must stay cheaper than N private copies, and the
# image path must produce bit-identical traces on all three transports.
bench-admit:
	BENCH_ADMIT_OUT=BENCH_admit.json $(GO) test -run TestAdmitBenchArtifact -count=1 -v .

# Regenerate BENCH_batch.json, the multi-session serving record: the
# batched engine must stay >= 2x aggregate ticks/s over independent
# loops at 8 resident sessions of one model, with every lane's trace and
# final checkpoint bit-identical to a solo run.
bench-batch:
	BENCH_BATCH_OUT=BENCH_batch.json $(GO) test -run TestBatchBenchArtifact -count=1 -v .

# Regenerate BENCH_reshape.json, the elastic-repartitioning record: on a
# skewed placement of a compute-dominated synthetic workload, the
# telemetry-driven reshape plan must cut the measured Compute imbalance
# at least 2x, and the rebalanced chunk's throughput must recover.
bench-reshape:
	BENCH_RESHAPE_OUT=BENCH_reshape.json $(GO) test -run TestReshapeBenchArtifact -count=1 -v .

# Regenerate BENCH_scenario.json, the interactive serving record: the
# bandit scenario driven closed-loop (inject -> step -> decode over the
# stream plane) at 1/4/16 concurrent sessions, recording episodes/s and
# p50/p99 inject->decision round trips.
bench-scenario:
	BENCH_SCENARIO_OUT=BENCH_scenario.json $(GO) test -run TestScenarioBenchArtifact -count=1 -v .

# End-to-end telemetry smoke: run a small CoCoMac model with every
# export sink enabled, then validate the Prometheus exposition, the JSON
# snapshot, and the Chrome trace with the in-repo checker. Artifacts
# land in $(SMOKE_DIR) (CI uploads them).
# Chaos smoke: run the CoCoMac workload under every fault class on the
# CLI — survivable classes (retried drop, duplication, delay, stall)
# must complete, the crash class must fail with a clean error naming the
# rank and the tick — then the in-process chaos acceptance tests: the
# full transport x fault-class matrix with bit-identical-output checks,
# and the rank-failure propagation (no-hang) guards.
chaos-smoke:
	$(GO) run ./cmd/compass -cocomac-cores 128 -ranks 3 -threads 2 -ticks 20 -faults "drop"
	$(GO) run ./cmd/compass -cocomac-cores 128 -ranks 3 -threads 2 -ticks 20 -faults "dup"
	$(GO) run ./cmd/compass -cocomac-cores 128 -ranks 3 -threads 2 -ticks 20 -faults "delay:k=2"
	$(GO) run ./cmd/compass -cocomac-cores 128 -ranks 3 -threads 2 -ticks 20 -faults "stall:rank=1,k=1"
	$(GO) run ./cmd/compass -cocomac-cores 128 -ranks 3 -threads 2 -ticks 20 -transport pgas -faults "drop;dup"
	$(GO) run ./cmd/compass -cocomac-cores 128 -ranks 3 -threads 2 -ticks 20 -transport shmem -faults "drop;dup"
	$(GO) run ./cmd/compass -cocomac-cores 128 -ranks 3 -threads 2 -ticks 20 -faults "crash:rank=1,tick=5"; \
		test $$? -ne 0 || { echo "chaos-smoke: injected crash did not fail the run"; exit 1; }
	$(GO) test -run 'TestChaos|TestRankFailure|TestDropPast|TestFailedRun|TestSurvivable' -count=1 ./internal/compass/

# Race-check the fault-injection and failure-propagation paths: the
# chaos matrix, the abort broadcasts, and the faults package itself.
race-transport:
	$(GO) test -race -count=1 ./internal/faults/
	$(GO) test -race -count=1 \
		-run 'TestChaos|TestRankFailure|TestDropPast|TestFailedRun|TestSurvivable|TestCrossTransport|TestShmemAbort|TestRankError|TestAborted|TestErrorAborts' \
		./internal/compass/ ./internal/mpi/ ./internal/pgas/

# End-to-end serving smoke: build compassd, then drive it with the
# servesmoke client — session create/pause/resume/checkpoint over HTTP,
# live spike injection and egress over the stream plane, SIGTERM drain
# to checkpoint files, and a successor daemon resuming from them. All
# output (both daemons + client) lands in $(SERVE_DIR)/serve-smoke.log.
SERVE_DIR ?= serve-smoke
serve-smoke:
	mkdir -p $(SERVE_DIR)
	$(GO) build -o $(SERVE_DIR)/compassd ./cmd/compassd
	$(GO) run ./cmd/servesmoke -compassd $(SERVE_DIR)/compassd -dir $(SERVE_DIR)

# Cluster serving smoke: build compassd, then spawn a coordinator plus
# three nodes and run the clustersmoke drills — live migration between
# daemons and SIGKILL heartbeat-lapse failover, each verified
# byte-identical (spike trace + final checkpoint) against a solo
# reference run. All process output lands in
# $(CLUSTER_DIR)/cluster-smoke.log.
CLUSTER_DIR ?= cluster-smoke
cluster-smoke:
	mkdir -p $(CLUSTER_DIR)
	$(GO) build -o $(CLUSTER_DIR)/compassd ./cmd/compassd
	$(GO) run ./cmd/clustersmoke -compassd $(CLUSTER_DIR)/compassd -dir $(CLUSTER_DIR)

# Scenario smoke: build compassd, run every registered closed-loop
# scenario (bandit, stroop, charrec) against it through the episode
# engine, check the per-scenario counters and stream-RTT histogram on
# /metrics, pin determinism by replaying one run through compass.Run,
# then re-run a scenario through a coordinator + node and require a
# bit-identical inject stream and score. Output lands in
# $(SCENARIO_DIR)/scenario-smoke.log.
SCENARIO_DIR ?= scenario-smoke
scenario-smoke:
	mkdir -p $(SCENARIO_DIR)
	$(GO) build -o $(SCENARIO_DIR)/compassd ./cmd/compassd
	$(GO) run ./cmd/scenariosmoke -compassd $(SCENARIO_DIR)/compassd -dir $(SCENARIO_DIR)

SMOKE_DIR ?= telemetry-smoke
telemetry-smoke:
	mkdir -p $(SMOKE_DIR)
	$(GO) run ./cmd/compass -cocomac-cores 128 -ranks 3 -threads 2 -ticks 20 \
		-metrics $(SMOKE_DIR)/run -trace-out $(SMOKE_DIR)/trace.json \
		-stats-json $(SMOKE_DIR)/stats.json
	$(GO) run ./cmd/telemetrycheck -metrics $(SMOKE_DIR)/run.prom \
		-snapshot $(SMOKE_DIR)/run.json -trace $(SMOKE_DIR)/trace.json
