package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/cognitive-sim/compass/internal/spikeio"
)

// The stream plane's wire protocol. A client connects to the stream
// listener, sends one handshake, and then speaks length-prefixed frames
// of CSPK-shaped spike records (spikeio.RecordSize bytes each) in
// either or both directions:
//
//	handshake (client → server):
//	    "CSTR"  u8 version  u8 flags  u16le idLen  idLen×id bytes
//	reply (server → client):
//	    "CSOK"                         — accepted
//	    "CERR"  u16le msgLen  msg      — rejected, connection closes
//	frames (both directions, after acceptance):
//	    u32le recordCount  recordCount×14-byte records
//
// With StreamFlagInject set, client frames are queued for injection at
// the session's next tick boundary. With StreamFlagSubscribe set, the
// server pushes the session's fired spikes as frames; a slow consumer's
// queue evicts oldest-first and the evictions are counted in the
// session's stream_dropped_records (and compassd_stream_dropped_records_total).
// A zero-count frame is a no-op keepalive in either direction.
const (
	streamMagic   = "CSTR"
	streamOK      = "CSOK"
	streamErrTag  = "CERR"
	streamVersion = 1

	// StreamFlagInject requests client→session spike injection.
	StreamFlagInject byte = 1 << 0
	// StreamFlagSubscribe requests session→client spike egress.
	StreamFlagSubscribe byte = 1 << 1

	// maxFrameRecords bounds one frame (16 MiB of records) so a corrupt
	// length prefix cannot demand an absurd allocation.
	maxFrameRecords = 1 << 20

	// handshakeTimeout bounds how long an idle pre-handshake connection
	// may hold a goroutine.
	handshakeTimeout = 10 * time.Second

	// egressBatch is the writer's maximum records per frame.
	egressBatch = 4096
)

// serveStreamConn handles one data-plane connection end to end.
func (srv *Server) serveStreamConn(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	flags, id, err := readHandshake(conn)
	if err != nil {
		writeReject(conn, err)
		return
	}
	sess, err := srv.mgr.Get(id)
	if err != nil {
		writeReject(conn, err)
		return
	}
	if flags&(StreamFlagInject|StreamFlagSubscribe) == 0 {
		writeReject(conn, fmt.Errorf("server: handshake requests neither inject nor subscribe"))
		return
	}
	conn.SetReadDeadline(time.Time{})
	// Register the subscription before acknowledging the handshake, so a
	// client that attaches to a parked session and then resumes it is
	// guaranteed the subscriber existed before the first tick ran.
	var sub *subscriber
	if flags&StreamFlagSubscribe != 0 {
		sub = sess.sink.subscribe()
		defer sess.sink.unsubscribe(sub)
	}
	if _, err := conn.Write([]byte(streamOK)); err != nil {
		return
	}

	// The reader consumes inject frames (or just watches for the peer
	// closing the connection) on its own goroutine, so this goroutine is
	// free to react when the egress writer finishes.
	var violation bool
	readerDone := make(chan struct{})
	srv.wg.Add(1)
	go func() {
		defer srv.wg.Done()
		defer close(readerDone)
		violation = readIngest(conn, sess, flags&StreamFlagInject != 0)
	}()

	if sub == nil {
		<-readerDone
		return
	}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		writeEgress(conn, sub)
	}()

	select {
	case <-writerDone:
		// Egress exhausted: the session ended (or the write side broke).
		// Half-close our write side so the client reads a clean EOF
		// immediately, then drain the ingest reader under a deadline
		// before the full close, so inject frames already on the wire are
		// processed first (closing with unread data would send a reset
		// instead). A peer that never half-closes is cut off when the
		// deadline expires.
		if cw, ok := conn.(interface{ CloseWrite() error }); ok {
			cw.CloseWrite()
		}
		conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
		<-readerDone
		return
	case <-readerDone:
		if violation {
			// A misbehaving peer loses its stream immediately.
			sess.sink.unsubscribe(sub)
			<-writerDone
			return
		}
		// A clean half-close keeps egress flowing: the writer runs until
		// the session ends or the write side of the connection fails.
		<-writerDone
	}
}

// ReadStreamHandshake parses a client hello from a stream-plane
// connection. It is exported for the cluster coordinator's stream
// proxy, which terminates the same protocol and forwards frames to the
// session's current owner node.
func ReadStreamHandshake(r io.Reader) (flags byte, id string, err error) {
	return readHandshake(r)
}

// WriteStreamOK acknowledges a stream handshake.
func WriteStreamOK(w io.Writer) error {
	_, err := w.Write([]byte(streamOK))
	return err
}

// WriteStreamReject sends a CERR reply; the caller closes the
// connection after.
func WriteStreamReject(w io.Writer, err error) {
	writeReject(w, err)
}

// readHandshake parses the client hello.
func readHandshake(r io.Reader) (flags byte, id string, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, "", fmt.Errorf("server: handshake read: %w", err)
	}
	if string(hdr[:4]) != streamMagic {
		return 0, "", fmt.Errorf("server: bad handshake magic %q", hdr[:4])
	}
	if hdr[4] != streamVersion {
		return 0, "", fmt.Errorf("server: unsupported stream version %d", hdr[4])
	}
	flags = hdr[5]
	idLen := binary.LittleEndian.Uint16(hdr[6:])
	if idLen == 0 || idLen > 256 {
		return 0, "", fmt.Errorf("server: session id length %d out of range", idLen)
	}
	idBuf := make([]byte, idLen)
	if _, err := io.ReadFull(r, idBuf); err != nil {
		return 0, "", fmt.Errorf("server: handshake id read: %w", err)
	}
	return flags, string(idBuf), nil
}

// writeReject sends a CERR reply; the connection closes after.
func writeReject(w io.Writer, err error) {
	msg := err.Error()
	if len(msg) > 1<<15 {
		msg = msg[:1<<15]
	}
	buf := make([]byte, 4+2+len(msg))
	copy(buf, streamErrTag)
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(msg)))
	copy(buf[6:], msg)
	w.Write(buf)
}

// readIngest consumes frames until EOF or error, reporting whether the
// peer violated the protocol (an oversized frame, or a non-empty frame
// from a subscribe-only peer — violations forfeit the egress stream,
// while a clean half-close keeps it flowing).
func readIngest(r io.Reader, sess *Session, inject bool) (violation bool) {
	var lenBuf [4]byte
	recBuf := make([]byte, egressBatch*spikeio.RecordSize)
	events := make([]spikeio.Event, 0, egressBatch)
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return false // EOF: peer finished (or broke) the stream
		}
		count := binary.LittleEndian.Uint32(lenBuf[:])
		if count == 0 {
			continue // keepalive
		}
		if count > maxFrameRecords || !inject {
			return true
		}
		remaining := int(count)
		for remaining > 0 {
			n := remaining
			if n > egressBatch {
				n = egressBatch
			}
			chunk := recBuf[:n*spikeio.RecordSize]
			if _, err := io.ReadFull(r, chunk); err != nil {
				return false
			}
			events = events[:0]
			for i := 0; i < n; i++ {
				events = append(events, spikeio.DecodeRecord(chunk[i*spikeio.RecordSize:]))
			}
			sess.source.Inject(events)
			remaining -= n
		}
	}
}

// writeEgress drains the subscriber into frames until it closes (the
// connection dropped, the client unsubscribed, or the session ended)
// or the connection breaks.
func writeEgress(w io.Writer, sub *subscriber) {
	batch := make([]spikeio.Event, 0, egressBatch)
	buf := make([]byte, 4+egressBatch*spikeio.RecordSize)
	for {
		out := sub.next(batch)
		if out == nil {
			return
		}
		binary.LittleEndian.PutUint32(buf, uint32(len(out)))
		for i, ev := range out {
			spikeio.EncodeRecord(buf[4+i*spikeio.RecordSize:], ev)
		}
		if _, err := w.Write(buf[:4+len(out)*spikeio.RecordSize]); err != nil {
			return
		}
	}
}

// acceptStreams accepts data-plane connections until the listener
// closes.
func (srv *Server) acceptStreams(ln net.Listener) {
	defer srv.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		srv.wg.Add(1)
		go func() {
			defer srv.wg.Done()
			srv.serveStreamConn(conn)
		}()
	}
}
