// Package modelcache is the content-addressed store for compiled model
// images. The serving daemon consults it on every session create: a hit
// returns a shared immutable truenorth.Image in microseconds instead of
// re-running the Parallel Compass Compiler, and every session admitted
// against the same key shares one image copy-on-write.
//
// Keys address the *source* of a model — hash(CoreObject spec | binary
// model bytes, seed, ranks) — so two requests that would compile
// identically map to one entry. Concurrent identical builds are
// deduplicated by singleflight: the first caller compiles, every
// concurrent caller for the same key blocks on that one compilation and
// shares its result. Entries are evicted least-recently-used by
// resident bytes; eviction only drops the cache's reference, so images
// still held by running sessions stay alive until those sessions end.
package modelcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// Entry is one cached compilation: the immutable image plus the
// compiler's region-aware placement.
type Entry struct {
	// Key is the content address the entry was stored under.
	Key string
	// Image is the shared immutable model image.
	Image *truenorth.Image
	// RankOf is the PCC's region-aware core placement (nil for models
	// parsed from binary files, which carry no placement).
	RankOf []int
	// Ranks is the number of compiler ranks actually used.
	Ranks int
}

// ResidentBytes returns the entry's resident size: the shared image
// plus the placement slice.
func (e *Entry) ResidentBytes() int64 {
	n := e.Image.ImageBytes()
	n += int64(len(e.RankOf)) * 8
	return n
}

// Stats is a point-in-time cache counter snapshot.
type Stats struct {
	// Hits counts GetOrBuild calls served from a resident entry or by
	// joining an in-flight build; Misses counts calls that ran a build.
	Hits, Misses uint64
	// Evictions counts entries dropped by the LRU byte budget.
	Evictions uint64
	// ResidentBytes and Entries describe the current resident set.
	ResidentBytes int64
	Entries       int
}

// Hooks observe cache events, for wiring into a metrics registry. All
// callbacks may be nil and are invoked outside the cache lock.
type Hooks struct {
	Hit      func()
	Miss     func()
	Evict    func()
	Resident func(bytes int64)
}

// flight is one in-progress build that concurrent callers join.
type flight struct {
	done chan struct{}
	e    *Entry
	err  error
}

// Cache is the store. All methods are safe for concurrent use.
type Cache struct {
	maxBytes int64
	hooks    Hooks

	mu       sync.Mutex
	lru      *list.List // of *Entry; front = most recently used
	byKey    map[string]*list.Element
	inflight map[string]*flight
	pins     map[string]int // key -> pin count; pinned entries never evict
	stats    Stats
}

// New builds a cache bounded to maxBytes resident bytes. maxBytes <= 0
// means unbounded.
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		lru:      list.New(),
		byKey:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
		pins:     make(map[string]int),
	}
}

// SetHooks attaches event observers; call before the cache is shared.
func (c *Cache) SetHooks(h Hooks) { c.hooks = h }

// GetOrBuild returns the entry for key, running build at most once per
// key across all concurrent callers: the first caller for an absent key
// builds (outside the cache lock); every caller that arrives while that
// build is in flight blocks and shares its result. hit reports whether
// this caller was served without running build. A failed build caches
// nothing and returns the same error to every joined caller.
func (c *Cache) GetOrBuild(key string, build func() (*Entry, error)) (e *Entry, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		e = el.Value.(*Entry)
		c.mu.Unlock()
		if c.hooks.Hit != nil {
			c.hooks.Hit()
		}
		return e, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		c.mu.Lock()
		c.stats.Hits++
		c.mu.Unlock()
		if c.hooks.Hit != nil {
			c.hooks.Hit()
		}
		return f.e, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.stats.Misses++
	c.mu.Unlock()
	if c.hooks.Miss != nil {
		c.hooks.Miss()
	}

	e, err = build()

	c.mu.Lock()
	delete(c.inflight, key)
	evicted := 0
	if err == nil {
		e.Key = key
		f.e = e
		// An entry alone larger than the whole budget is returned but not
		// cached; inserting it would evict everything for one session.
		if b := e.ResidentBytes(); c.maxBytes <= 0 || b <= c.maxBytes {
			c.byKey[key] = c.lru.PushFront(e)
			c.stats.ResidentBytes += b
			evicted = c.evictLocked()
		}
	}
	f.err = err
	resident := c.stats.ResidentBytes
	c.mu.Unlock()
	close(f.done)
	for i := 0; i < evicted; i++ {
		if c.hooks.Evict != nil {
			c.hooks.Evict()
		}
	}
	if c.hooks.Resident != nil {
		c.hooks.Resident(resident)
	}
	return e, false, err
}

// Pin marks key's entry resident-for-sure: the LRU sweep skips pinned
// entries, so an image backing running or paused sessions is never
// dropped and rebuilt while in use. Pins nest (one per session);
// pinning an absent key is a no-op that reports false.
func (c *Cache) Pin(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; !ok {
		return false
	}
	c.pins[key]++
	return true
}

// Unpin releases one pin on key. When the last pin drops, the entry
// rejoins the ordinary LRU population and any eviction deferred by the
// pin is applied immediately, firing the usual hooks.
func (c *Cache) Unpin(key string) {
	c.mu.Lock()
	n, ok := c.pins[key]
	if !ok {
		c.mu.Unlock()
		return
	}
	if n > 1 {
		c.pins[key] = n - 1
		c.mu.Unlock()
		return
	}
	delete(c.pins, key)
	evicted := c.evictLocked()
	resident := c.stats.ResidentBytes
	c.mu.Unlock()
	for i := 0; i < evicted; i++ {
		if c.hooks.Evict != nil {
			c.hooks.Evict()
		}
	}
	if evicted > 0 && c.hooks.Resident != nil {
		c.hooks.Resident(resident)
	}
}

// ByImageHash finds a resident entry whose image has the given content
// address (truenorth.Image.Hash), or nil. Cache keys address a model's
// *source* (spec bytes, seed, ranks) while migration identifies models
// by their compiled image hash, so this scan bridges the two: a node
// asked to host a migrated session checks here before pulling the
// model over the wire. The hash is computed (and cached) per image
// outside the cache lock; a found entry is touched as used.
func (c *Cache) ByImageHash(hash string) *Entry {
	c.mu.Lock()
	entries := make([]*Entry, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(*Entry))
	}
	c.mu.Unlock()
	for _, e := range entries {
		if e.Image.Hash() != hash {
			continue
		}
		c.mu.Lock()
		if el, ok := c.byKey[e.Key]; ok {
			c.lru.MoveToFront(el)
		}
		c.mu.Unlock()
		return e
	}
	return nil
}

// Pinned returns the number of distinct pinned entries.
func (c *Cache) Pinned() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pins)
}

// evictLocked drops least-recently-used unpinned entries until the
// resident set fits the byte budget, returning the eviction count.
// Pinned entries are skipped (their eviction is deferred to Unpin); the
// sweep keeps at least one entry resident. Callers hold mu.
func (c *Cache) evictLocked() int {
	if c.maxBytes <= 0 {
		return 0
	}
	n := 0
	el := c.lru.Back()
	for c.stats.ResidentBytes > c.maxBytes && c.lru.Len() > 1 && el != nil {
		e := el.Value.(*Entry)
		prev := el.Prev()
		if c.pins[e.Key] == 0 {
			c.lru.Remove(el)
			delete(c.byKey, e.Key)
			c.stats.ResidentBytes -= e.ResidentBytes()
			c.stats.Evictions++
			n++
		}
		el = prev
	}
	return n
}

// Stats returns a counter snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// SpecKey content-addresses a compilation request: the canonical JSON
// encoding of the CoreObject spec (which carries the model seed) plus
// the requested rank count. Two byte-different spec documents that
// re-marshal identically — whitespace, field order — share a key.
func SpecKey(spec *coreobject.NetworkSpec, ranks int) (string, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("modelcache: marshal spec: %w", err)
	}
	h := sha256.New()
	h.Write([]byte("compass-spec\x00"))
	h.Write(raw)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(ranks))
	h.Write(b[:])
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ModelKey content-addresses a binary model document (the CMPM format
// WriteModel produces). Placement is not part of the key: binary models
// carry none.
func ModelKey(modelBytes []byte) string {
	h := sha256.New()
	h.Write([]byte("compass-model\x00"))
	h.Write(modelBytes)
	return hex.EncodeToString(h.Sum(nil))
}
