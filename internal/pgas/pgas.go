// Package pgas implements the Partitioned Global Address Space
// communication model that the paper's second Compass implementation uses
// (UPC over GASNet on Blue Gene/P, §VII).
//
// The PGAS model fits Compass's Network phase naturally: the source and
// ordering of spikes arriving at an axon within a tick do not affect the
// next tick's computation, so each rank can deposit spikes directly into
// a globally addressable buffer at the destination rank with a one-sided
// Put — no send buffering, no receive matching, no reduce-scatter to
// count incoming messages. A single low-latency global barrier per tick
// separates the write epoch from the read epoch.
//
// The space is laid out as one window per rank, each divided into one
// segment per (source rank, epoch parity). Only the source writes its
// segment and only the owner drains it, strictly on opposite sides of the
// barrier, so segment access needs no locks; the barrier provides the
// happens-before edge. Epochs alternate parity, giving the classic
// double-buffered one-barrier-per-tick protocol: a writer at tick t+2 can
// only reuse parity (t mod 2) after the tick t+1 barrier, which the owner
// can only pass after draining tick t.
package pgas

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrAborted is returned from Barrier when another rank failed and the
// space was torn down.
var ErrAborted = errors.New("pgas: space aborted")

// Space is a partitioned global address space shared by a fixed set of
// ranks.
type Space struct {
	size int

	// seg[dst][parity][src] is the append buffer written one-sidedly by
	// src for dst during epochs of that parity.
	seg [][2][][]byte

	// barrier state (central sense-reversing barrier). aborted fails the
	// barrier fast so one rank's error cannot strand its peers.
	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	gen     uint64
	aborted bool

	puts      atomic.Uint64
	bytesSent atomic.Uint64
}

// NewSpace creates a space for size ranks.
func NewSpace(size int) *Space {
	if size < 1 {
		panic(fmt.Sprintf("pgas: space size %d < 1", size))
	}
	s := &Space{
		size: size,
		seg:  make([][2][][]byte, size),
	}
	for d := range s.seg {
		s.seg[d][0] = make([][]byte, size)
		s.seg[d][1] = make([][]byte, size)
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Size returns the number of ranks sharing the space.
func (s *Space) Size() int { return s.size }

// Stats returns the cumulative one-sided put count and payload bytes.
func (s *Space) Stats() (puts, bytes uint64) {
	return s.puts.Load(), s.bytesSent.Load()
}

// ResetStats zeroes the traffic counters.
func (s *Space) ResetStats() {
	s.puts.Store(0)
	s.bytesSent.Store(0)
}

// Handle is one rank's view of the space.
type Handle struct {
	s     *Space
	rank  int
	epoch uint64
}

// Handle returns rank r's view. Each rank must use exactly one Handle.
func (s *Space) Handle(r int) *Handle {
	if r < 0 || r >= s.size {
		panic(fmt.Sprintf("pgas: rank %d outside space of size %d", r, s.size))
	}
	return &Handle{s: s, rank: r}
}

// Rank returns the handle's rank.
func (h *Handle) Rank() int { return h.rank }

// Epoch returns the handle's current epoch (ticks completed).
func (h *Handle) Epoch() uint64 { return h.epoch }

// Put appends data one-sidedly to dst's window for the current epoch.
// The data is copied. Put must only be called between the barriers that
// delimit the current epoch.
func (h *Handle) Put(dst int, data []byte) error {
	if dst < 0 || dst >= h.s.size {
		return fmt.Errorf("pgas: put to rank %d outside space of size %d", dst, h.s.size)
	}
	if len(data) == 0 {
		return nil
	}
	parity := h.epoch & 1
	seg := &h.s.seg[dst][parity][h.rank]
	*seg = append(*seg, data...)
	h.s.puts.Add(1)
	h.s.bytesSent.Add(uint64(len(data)))
	return nil
}

// Barrier blocks until every rank has entered it, then advances this
// handle's epoch. After Barrier returns nil, every Put issued by any
// rank during the finished epoch is visible to Drain at its destination.
// When the space has been aborted — by Abort, or by Run observing a rank
// error — Barrier returns ErrAborted instead of blocking, which is what
// keeps a failing rank from stranding its peers.
func (h *Handle) Barrier() error {
	s := h.s
	s.mu.Lock()
	if s.aborted {
		s.mu.Unlock()
		return ErrAborted
	}
	gen := s.gen
	s.arrived++
	if s.arrived == s.size {
		s.arrived = 0
		s.gen++
		s.cond.Broadcast()
	} else {
		for gen == s.gen {
			s.cond.Wait()
			if s.aborted {
				s.mu.Unlock()
				return ErrAborted
			}
		}
	}
	s.mu.Unlock()
	h.epoch++
	return nil
}

// Abort marks the space failed and releases every rank blocked in
// Barrier with ErrAborted. Run calls it on the first rank error;
// external supervisors may call it to cancel a run.
func (s *Space) Abort() {
	s.mu.Lock()
	s.aborted = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Drain calls fn once per source rank that deposited data for this rank
// during the epoch that the last Barrier closed, then clears those
// segments for reuse. It must be called after Barrier and before the
// next epoch's Puts could wrap around to the same parity (which the
// one-barrier-per-tick protocol guarantees structurally).
func (h *Handle) Drain(fn func(src int, data []byte)) {
	parity := (h.epoch - 1) & 1
	window := h.s.seg[h.rank][parity]
	for src := range window {
		if len(window[src]) > 0 {
			fn(src, window[src])
			window[src] = window[src][:0]
		}
	}
}

// PendingBytes reports the bytes currently deposited for this rank in the
// epoch that the last Barrier closed (diagnostic).
func (h *Handle) PendingBytes() int {
	parity := (h.epoch - 1) & 1
	n := 0
	for _, seg := range h.s.seg[h.rank][parity] {
		n += len(seg)
	}
	return n
}

// Run launches fn on every rank of a fresh space and waits for all
// ranks. The first rank error aborts the space, releasing every peer
// blocked in Barrier with ErrAborted, and is returned — secondary
// ErrAborted failures are suppressed so the causal error surfaces.
func Run(size int, fn func(h *Handle) error) error {
	s := NewSpace(size)
	return s.Run(fn)
}

// Run launches fn on every rank of this space and waits for completion.
func (s *Space) Run(fn func(h *Handle) error) error {
	errs := make([]error, s.size)
	var wg sync.WaitGroup
	wg.Add(s.size)
	for r := 0; r < s.size; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("pgas: rank %d panicked: %v", rank, p)
					s.Abort()
				}
			}()
			if err := fn(s.Handle(rank)); err != nil {
				errs[rank] = err
				s.Abort()
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrAborted) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
