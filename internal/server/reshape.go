package server

import (
	"fmt"

	sim "github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/reshape"
	"github.com/cognitive-sim/compass/internal/telemetry"
)

// Elastic repartitioning, serving side: every session runner evaluates
// its reshape policy at each chunk boundary against the chunk's own
// per-rank telemetry. When the Compute imbalance (max/mean synaptic
// events over occupied ranks) crosses the configured threshold, the
// runner swaps the session's decomposition for a cost-weighted plan
// from internal/reshape and resumes the next chunk from the boundary
// checkpoint on the new placement. The spike output is bit-identical
// either way (see internal/compass/reshape.go); only the wall-clock
// balance changes.

// ReshapeEvent records one applied repartition in the session's Info.
type ReshapeEvent struct {
	// Tick is the chunk boundary the reshape took effect at.
	Tick uint64 `json:"tick"`
	// FromRanks and ToRanks are the rank counts either side of the
	// reshape (equal for the automatic policy, which only moves cores).
	FromRanks int `json:"from_ranks"`
	ToRanks   int `json:"to_ranks"`
	// MovedCores counts cores whose rank assignment changed.
	MovedCores int `json:"moved_cores"`
	// ComputeBefore is the measured Compute imbalance that triggered the
	// reshape; ComputePredicted is the plan's projected imbalance under
	// the same loads.
	ComputeBefore    float64 `json:"compute_imbalance_before"`
	ComputePredicted float64 `json:"compute_imbalance_predicted"`
}

// maybeReshape runs on the session runner between chunks, with the
// session parked at its boundary checkpoint. It publishes the chunk's
// imbalance gauge and, when the policy fires and the planner actually
// improves the partition, swaps the session's decomposition in place.
func (s *Session) maybeReshape(stats *sim.RunStats) {
	imb := stats.LoadImbalance()
	if s.gImbalance != nil {
		s.gImbalance.Set(0, imb.Compute)
	}
	s.mu.Lock()
	s.sinceReshape++
	pol := s.reshapePolicy
	since := s.sinceReshape
	cfg := s.cfg
	skip := s.ticksDone >= s.ticksTotal // nothing left to rebalance for
	s.mu.Unlock()
	if skip || !pol.ShouldReshape(imb, since) {
		return
	}
	plan, err := reshape.Compute(cfg.Placement(s.img.NumCores()), reshape.LoadsFromStats(stats), 0)
	if err != nil || plan.MovedCores == 0 {
		return
	}
	newCfg, err := cfg.Reshape(s.img, plan.ReshapePlan)
	if err != nil {
		return
	}
	s.applyReshape(newCfg, ReshapeEvent{
		FromRanks:        plan.FromRanks,
		ToRanks:          plan.Ranks,
		MovedCores:       plan.MovedCores,
		ComputeBefore:    imb.Compute,
		ComputePredicted: plan.PredictedCompute,
	})
}

// Reshape applies an explicit repartition plan — possibly with a
// different rank count — to a parked session; the next chunk resumes
// from the boundary checkpoint on the new decomposition. The session
// must be paused or still queued so no chunk is in flight. Growing the
// rank count past the session's telemetry shard count rebuilds the
// per-session metrics registry, restarting its counters from zero. The
// admission cost is not re-priced.
func (s *Session) Reshape(p sim.ReshapePlan) error {
	s.mu.Lock()
	if s.state != StatePaused && s.state != StateQueued {
		st := s.state
		s.mu.Unlock()
		return fmt.Errorf("server: session %s is %s; reshape needs a paused or queued session", s.ID, st)
	}
	cfg := s.cfg
	s.mu.Unlock()

	newCfg, err := cfg.Reshape(s.img, p)
	if err != nil {
		return err
	}
	n := s.img.NumCores()
	moved := 0
	if oldP, newP := cfg.Placement(n), newCfg.Placement(n); true {
		for i := range oldP {
			if oldP[i] != newP[i] {
				moved++
			}
		}
	}
	if s.tel.Registry().Shards() < newCfg.Ranks {
		s.tel = sim.NewTelemetryWithLabels(newCfg.Ranks, telemetry.Label{Key: "session", Value: s.ID})
	}
	s.applyReshape(newCfg, ReshapeEvent{
		FromRanks:  cfg.Ranks,
		ToRanks:    newCfg.Ranks,
		MovedCores: moved,
	})
	return nil
}

// applyReshape installs the new decomposition, records the event, and
// notifies the manager so the session's batch group membership follows
// its new (decomposition-keyed) group.
func (s *Session) applyReshape(newCfg sim.Config, ev ReshapeEvent) {
	s.mu.Lock()
	ev.Tick = s.cp.Tick
	s.cfg = newCfg
	s.sinceReshape = 0
	s.reshapes = append(s.reshapes, ev)
	hook := s.onReshape
	s.mu.Unlock()
	if hook != nil {
		hook(s, newCfg)
	}
}

// setGroup swaps the session's batch group under the session lock (the
// runner and Info read s.group under it).
func (s *Session) setGroup(g *batchGroup) {
	s.mu.Lock()
	s.group = g
	s.mu.Unlock()
}

// noteReshape is the manager's reshape hook: it counts the event and
// moves the session to the batch group matching its new decomposition —
// the batch key hashes the placement, so a reshaped session can never
// keep sharing a tick loop keyed to its old layout.
func (m *Manager) noteReshape(s *Session, cfg sim.Config) {
	m.mReshapes.Inc(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	old := s.group
	if old == nil {
		return // solo session (batching disabled or faulted)
	}
	key := batchKey(s.img, cfg)
	if key == old.key {
		return
	}
	old.refs--
	if old.refs <= 0 {
		delete(m.groups, old.key)
	}
	g := m.groups[key]
	if g == nil {
		g = newBatchGroup(key, s.img, cfg)
		g.onWindow = func(lanes int) { m.batchWindow(lanes) }
		g.onWindowDone = func(lanes int, sweep float64) { m.batchWindowDone(lanes, sweep) }
		m.groups[key] = g
	}
	g.refs++
	s.setGroup(g)
}
