// Package cluster scales compassd from one daemon to a fleet: a
// coordinator tracks nodes through registration and heartbeats, places
// new sessions with the same calibrated performance model single-node
// admission uses (extended cluster-wide, with model-affinity so
// same-model sessions co-locate and share images and batch groups),
// and moves live sessions between nodes by checkpoint-based migration
// — the determinism contract makes a migrated run bit-identical to an
// unmigrated one. Migration is the one primitive behind three
// behaviors: explicit rebalancing on sustained load imbalance, rolling
// drains on SIGTERM, and failover when a node's heartbeats lapse,
// restored from the boundary checkpoints its agent pushed.
//
// See DESIGN.md §5h for the architecture and failure-mode analysis.
package cluster

import (
	"github.com/cognitive-sim/compass/internal/server"
)

// RegisterRequest announces a compassd node to the coordinator. A
// re-registration under the same NodeID replaces the previous entry
// (daemon restart); sessions the old incarnation hosted are restored
// elsewhere once their absence is noticed.
type RegisterRequest struct {
	NodeID string `json:"node_id"`
	// HTTPAddr and StreamAddr are the node's advertised planes.
	HTTPAddr   string `json:"http_addr"`
	StreamAddr string `json:"stream_addr"`
	// Capacity is the node's admission budget in modelled seconds per
	// tick; MemoryBudget its resident-byte budget (0 = unlimited).
	Capacity     float64 `json:"capacity_seconds_per_tick"`
	MemoryBudget int64   `json:"memory_budget_bytes,omitempty"`
}

// RegisterResponse tells the node how often to heartbeat.
type RegisterResponse struct {
	HeartbeatMillis int64 `json:"heartbeat_millis"`
}

// SessionPulse is one hosted session's state inside a heartbeat.
type SessionPulse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// Heartbeat is a node's periodic liveness and load report. Beyond
// liveness it carries the placement signals — used capacity, resident
// model hashes — and a pulse per hosted session so the coordinator
// notices terminal states (and crash-faulted sessions needing
// restoration) without polling.
type Heartbeat struct {
	NodeID   string         `json:"node_id"`
	Used     float64        `json:"used_seconds_per_tick"`
	MemUsed  int64          `json:"memory_used_bytes"`
	Resident []string       `json:"resident_models,omitempty"`
	Running  int            `json:"running"`
	Queued   int            `json:"queued"`
	Sessions []SessionPulse `json:"sessions,omitempty"`
}

// CheckpointPush is a node agent's per-chunk boundary report: the
// session's full export document, so the coordinator can restore the
// session on another node from this exact boundary if the node dies.
type CheckpointPush struct {
	NodeID        string           `json:"node_id"`
	NodeSessionID string           `json:"node_session_id"`
	Export        server.ExportDoc `json:"export"`
}

// MigrateRequest asks the coordinator to move a session; an empty
// Target lets placement choose.
type MigrateRequest struct {
	Target string `json:"target,omitempty"`
}

// SessionStatus is the coordinator's view of one cluster session.
type SessionStatus struct {
	ClusterID string `json:"cluster_id"`
	Node      string `json:"node"`
	// Generation counts ownership changes (migrations + restores).
	Generation int `json:"generation"`
	Migrations int `json:"migrations"`
	Restores   int `json:"restores"`
	// CommittedTick is the egress release horizon: every spike record
	// with a lower tick has a durable checkpoint behind it and has been
	// released to stream subscribers.
	CommittedTick uint64 `json:"committed_tick"`
	ModelHash     string `json:"model_hash,omitempty"`
	Ended         bool   `json:"ended"`
	EndState      string `json:"end_state,omitempty"`
	// Info is the owning node's live session document when reachable.
	Info *server.Info `json:"info,omitempty"`
}

// NodeStatus is the coordinator's view of one node.
type NodeStatus struct {
	ID           string   `json:"id"`
	HTTPAddr     string   `json:"http_addr"`
	StreamAddr   string   `json:"stream_addr"`
	Capacity     float64  `json:"capacity_seconds_per_tick"`
	Used         float64  `json:"used_seconds_per_tick"`
	MemoryBudget int64    `json:"memory_budget_bytes,omitempty"`
	MemUsed      int64    `json:"memory_used_bytes"`
	Running      int      `json:"running"`
	Queued       int      `json:"queued"`
	Sessions     int      `json:"cluster_sessions"`
	Resident     []string `json:"resident_models,omitempty"`
	Draining     bool     `json:"draining"`
	AgeSeconds   float64  `json:"last_heartbeat_age_seconds"`
	Alive        bool     `json:"alive"`
}
