// Package reshape computes elastic repartitioning plans: new core→rank
// partitions for a paused simulation, derived from the per-rank load
// telemetry of the chunk that just ran.
//
// The paper fixes the core→rank partition at setup and attributes part
// of its weak-scaling time growth to "computation and communication
// imbalances in the functional regions of the CoCoMac model" (§VI-B).
// This package closes that loop: RunStats.PerRank already measures each
// rank's Synapse-phase work (SynapticEvents) and Network-phase sends
// (MessagesSent) live, so when a chunk boundary's Imbalance crosses a
// threshold, a plan rebalances the measured cost across ranks — or a
// different rank count — and the session resumes from its boundary
// checkpoint on the new layout. Determinism is the simulator's existing
// cross-decomposition contract; any plan this package emits yields
// bit-identical spike output (see internal/compass/reshape.go).
//
// The partitioner is a greedy cost-weighted chain partition: each
// rank's measured cost is spread over its cores by largest-remainder
// apportionment (internal/balance), every core gets a baseline weight
// of one so quiescent regions still carry placement mass, and cores are
// walked in ID order into contiguous blocks of near-equal weight. The
// contiguous (chain) shape preserves the locality the default block
// partition and the PCC's region-aware placements both encode: cores
// with adjacent IDs belong to the same anatomical region, so keeping
// blocks contiguous keeps gray matter on-rank.
package reshape

import (
	"fmt"

	"github.com/cognitive-sim/compass/internal/balance"
	sim "github.com/cognitive-sim/compass/internal/compass"
)

// Load is one rank's measured cost over the last chunk: the Synapse
// critical path (SynapticEvents) and the Network-phase message count.
type Load struct {
	Cores          int
	SynapticEvents uint64
	MessagesSent   uint64
}

// cost folds a rank's load into one scalar. Synaptic events dominate
// the paper's compute phase; each message is charged a fixed overhead
// so communication hotspots count even on sparse models.
func (l Load) cost() uint64 {
	const perMessage = 16
	return l.SynapticEvents + perMessage*l.MessagesSent
}

// LoadsFromStats extracts per-rank loads from a finished chunk.
func LoadsFromStats(stats *sim.RunStats) []Load {
	out := make([]Load, len(stats.PerRank))
	for i, rs := range stats.PerRank {
		out[i] = Load{Cores: rs.CoresOwned, SynapticEvents: rs.SynapticEvents, MessagesSent: rs.MessagesSent}
	}
	return out
}

// Plan is a computed repartition with its diagnostics.
type Plan struct {
	sim.ReshapePlan
	// FromRanks is the partition's previous rank count.
	FromRanks int
	// MovedCores counts cores whose rank changed (0 means the plan is a
	// no-op and not worth a reshape).
	MovedCores int
	// PredictedCompute is the max/mean cost ratio of the new partition
	// over its occupied ranks, under the measured loads.
	PredictedCompute float64
	// IdleRanks counts ranks the new partition leaves without cores.
	IdleRanks int
}

// Compute builds a greedy cost-weighted plan: a new contiguous
// partition of the cores onto newRanks ranks (<= 0 keeps the current
// rank count) that balances the measured per-rank cost. placement is
// the current core→rank assignment (one entry per core); loads holds
// the measured telemetry for each current rank.
func Compute(placement []int, loads []Load, newRanks int) (*Plan, error) {
	n := len(placement)
	if n == 0 {
		return nil, fmt.Errorf("reshape: empty placement")
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("reshape: no per-rank loads")
	}
	if newRanks <= 0 {
		newRanks = len(loads)
	}
	if newRanks > n {
		return nil, fmt.Errorf("reshape: %d ranks for %d cores", newRanks, n)
	}

	// Per-core weights at rank granularity: the telemetry is per rank,
	// so each rank's measured cost is spread uniformly over its cores by
	// largest-remainder apportionment (exact — every cost unit lands on
	// some core, even when a rank's cost is zero), plus a baseline of 1
	// per core so fully quiescent regions still occupy balanced space.
	coresOf := make([][]int, len(loads))
	for i, r := range placement {
		if r < 0 || r >= len(loads) {
			return nil, fmt.Errorf("reshape: core %d on rank %d, have loads for %d ranks", i, r, len(loads))
		}
		coresOf[r] = append(coresOf[r], i)
	}
	weight := make([]float64, n)
	for r, ids := range coresOf {
		if len(ids) == 0 {
			continue
		}
		ones := make([]float64, len(ids))
		for k := range ones {
			ones[k] = 1
		}
		cost := loads[r].cost()
		// Clamp into float64-exact integer range; relative weight is all
		// that matters to the partition.
		if cost > 1<<52 {
			cost = 1 << 52
		}
		shares := balance.Apportion(ones, int(cost))
		for k, id := range ids {
			weight[id] = 1 + float64(shares[k])
		}
	}

	// Greedy chain partition: walk cores in ID order and drop each into
	// the block its weight's center of mass falls in — block r owns the
	// quota window [r*total/newRanks, (r+1)*total/newRanks). Midpoints
	// are strictly increasing, so the assignment is contiguous by
	// construction and deterministic for identical inputs; rounding by
	// the midpoint (rather than the running prefix) keeps a heavy core
	// that straddles a quota boundary from dragging its whole block over
	// quota.
	total := 0.0
	for _, w := range weight {
		total += w
	}
	rankOf := make([]int, n)
	blockSum := make([]float64, newRanks)
	prefix := 0.0
	for i := 0; i < n; i++ {
		r := int((prefix + weight[i]/2) * float64(newRanks) / total)
		if r >= newRanks {
			r = newRanks - 1
		}
		rankOf[i] = r
		blockSum[r] += weight[i]
		prefix += weight[i]
	}

	plan := &Plan{
		ReshapePlan: sim.ReshapePlan{Ranks: newRanks, RankOf: rankOf},
		FromRanks:   len(loads),
	}
	var max, sum float64
	occupied := 0
	for _, b := range blockSum {
		if b == 0 {
			plan.IdleRanks++
			continue
		}
		occupied++
		sum += b
		if b > max {
			max = b
		}
	}
	if occupied > 0 && sum > 0 {
		plan.PredictedCompute = max / (sum / float64(occupied))
	} else {
		plan.PredictedCompute = 1
	}
	if newRanks == len(loads) {
		for i := range rankOf {
			if rankOf[i] != placement[i] {
				plan.MovedCores++
			}
		}
	} else {
		plan.MovedCores = n
	}
	return plan, nil
}

// Policy decides when a session reshapes at a chunk boundary.
type Policy struct {
	// Threshold is the Compute imbalance ratio (max/mean synaptic events
	// over occupied ranks) at or above which a reshape triggers; <= 0
	// disables reshaping.
	Threshold float64
	// Interval is the minimum number of chunk boundaries between
	// consecutive reshapes (and before the first), letting telemetry
	// re-accumulate on the new partition before it is judged. Values
	// below 1 mean every boundary is eligible.
	Interval int
}

// ShouldReshape reports whether a boundary's measured imbalance
// warrants a reshape, given how many boundaries passed since the last
// one (or since the run started).
func (p Policy) ShouldReshape(imb sim.Imbalance, boundariesSince int) bool {
	if p.Threshold <= 0 {
		return false
	}
	interval := p.Interval
	if interval < 1 {
		interval = 1
	}
	return boundariesSince >= interval && imb.Compute >= p.Threshold
}
