package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"github.com/cognitive-sim/compass/internal/spikeio"
)

// StreamClient is a minimal data-plane client: it performs the CSTR
// handshake and exchanges record frames. Tests and cmd/servesmoke use
// it; it also documents the protocol from the client's side.
type StreamClient struct {
	conn net.Conn
	br   *bufio.Reader
}

// DialStream connects to a server's stream listener and binds to a
// session with the given flags (StreamFlagInject, StreamFlagSubscribe,
// or both).
func DialStream(addr, sessionID string, flags byte) (*StreamClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	hello := make([]byte, 8+len(sessionID))
	copy(hello, streamMagic)
	hello[4] = streamVersion
	hello[5] = flags
	binary.LittleEndian.PutUint16(hello[6:], uint16(len(sessionID)))
	copy(hello[8:], sessionID)
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	var reply [4]byte
	if _, err := io.ReadFull(br, reply[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: handshake reply: %w", err)
	}
	switch string(reply[:]) {
	case streamOK:
		return &StreamClient{conn: conn, br: br}, nil
	case streamErrTag:
		var lenBuf [2]byte
		msg := "handshake rejected"
		if _, err := io.ReadFull(br, lenBuf[:]); err == nil {
			buf := make([]byte, binary.LittleEndian.Uint16(lenBuf[:]))
			if _, err := io.ReadFull(br, buf); err == nil {
				msg = string(buf)
			}
		}
		conn.Close()
		return nil, fmt.Errorf("server: %s", msg)
	default:
		conn.Close()
		return nil, fmt.Errorf("server: bad handshake reply %q", reply[:])
	}
}

// Send writes one frame of spike records for injection.
func (c *StreamClient) Send(events []spikeio.Event) error {
	buf := make([]byte, 4+len(events)*spikeio.RecordSize)
	binary.LittleEndian.PutUint32(buf, uint32(len(events)))
	for i, ev := range events {
		spikeio.EncodeRecord(buf[4+i*spikeio.RecordSize:], ev)
	}
	_, err := c.conn.Write(buf)
	return err
}

// Recv reads one egress frame. It returns io.EOF once the server has
// closed the stream (session over) and all frames are consumed.
func (c *StreamClient) Recv() ([]spikeio.Event, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.br, lenBuf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return nil, err
	}
	count := binary.LittleEndian.Uint32(lenBuf[:])
	if count > maxFrameRecords {
		return nil, fmt.Errorf("server: frame of %d records exceeds limit", count)
	}
	out := make([]spikeio.Event, count)
	rec := make([]byte, spikeio.RecordSize)
	for i := range out {
		if _, err := io.ReadFull(c.br, rec); err != nil {
			return nil, fmt.Errorf("server: frame truncated at record %d: %w", i, err)
		}
		out[i] = spikeio.DecodeRecord(rec)
	}
	return out, nil
}

// CloseWrite half-closes the connection: the server sees end-of-inject
// while egress frames keep flowing. No-op error on non-TCP conns.
func (c *StreamClient) CloseWrite() error {
	if tc, ok := c.conn.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return fmt.Errorf("server: connection does not support half-close")
}

// Close tears the connection down.
func (c *StreamClient) Close() error { return c.conn.Close() }
