package truenorth

import (
	"testing"

	"github.com/cognitive-sim/compass/internal/prng"
)

// randomDeterministicConfig builds a randomized kernel-eligible core:
// random crossbar density (occasionally saturated), random axon types,
// mixed positive/negative/zero weights, random leak sign, and a mix of
// enabled and disabled neurons.
func randomDeterministicConfig(r *prng.Stream, id CoreID) *CoreConfig {
	cfg := &CoreConfig{ID: id}
	density := r.Float64()
	if r.Intn(8) == 0 {
		density = 1.0 // saturated crossbar
	}
	for a := 0; a < CoreSize; a++ {
		cfg.AxonTypes[a] = uint8(r.Intn(NumAxonTypes))
		for j := 0; j < CoreSize; j++ {
			if r.Float64() < density {
				cfg.SetSynapse(a, j, true)
			}
		}
	}
	for j := 0; j < CoreSize; j++ {
		if r.Intn(4) == 0 {
			continue // leave ~1/4 of neurons disabled
		}
		cfg.Neurons[j] = NeuronParams{
			Weights: [NumAxonTypes]int16{
				int16(r.Intn(11) - 5), int16(r.Intn(11) - 5),
				int16(r.Intn(11) - 5), int16(r.Intn(11) - 5),
			},
			Leak:      int16(r.Intn(5) - 2),
			Threshold: int32(1 + r.Intn(12)),
			Reset:     int32(r.Intn(3) - 1),
			Floor:     -32,
			Target: SpikeTarget{
				Core:  id,
				Axon:  uint16(r.Intn(CoreSize)),
				Delay: uint8(1 + r.Intn(MaxDelay)),
			},
			Enabled: true,
		}
	}
	return cfg
}

// driveCores schedules an identical random spike stream into both cores
// and ticks them in lockstep, failing on any divergence in potentials,
// firings, or statistics counters.
func driveCores(t *testing.T, fast, ref *Core, r *prng.Stream, ticks int) {
	t.Helper()
	for tick := uint64(0); tick < uint64(ticks); tick++ {
		nSpikes := r.Intn(64)
		for i := 0; i < nSpikes; i++ {
			axon := r.Intn(CoreSize)
			deliver := tick + 1 + uint64(r.Intn(MaxDelay))
			if err := fast.ScheduleSpike(axon, deliver, tick); err != nil {
				t.Fatal(err)
			}
			if err := ref.ScheduleSpike(axon, deliver, tick); err != nil {
				t.Fatal(err)
			}
		}
		var fastFired, refFired []SpikeTarget
		fast.Tick(tick, func(s Spike) { fastFired = append(fastFired, s.Target) })
		ref.Tick(tick, func(s Spike) { refFired = append(refFired, s.Target) })
		if len(fastFired) != len(refFired) {
			t.Fatalf("tick %d: kernel fired %d, scalar fired %d", tick, len(fastFired), len(refFired))
		}
		for i := range fastFired {
			if fastFired[i] != refFired[i] {
				t.Fatalf("tick %d: firing %d targets diverge: %+v vs %+v", tick, i, fastFired[i], refFired[i])
			}
		}
		for j := 0; j < CoreSize; j++ {
			if fast.Potential(j) != ref.Potential(j) {
				t.Fatalf("tick %d neuron %d: kernel potential %d, scalar %d",
					tick, j, fast.Potential(j), ref.Potential(j))
			}
		}
	}
	fa, fs, ff := fast.Stats()
	ra, rs, rf := ref.Stats()
	if fa != ra || fs != rs || ff != rf {
		t.Fatalf("stats diverge: kernel (%d, %d, %d), scalar (%d, %d, %d)", fa, fs, ff, ra, rs, rf)
	}
}

// TestKernelMatchesScalarRandomized is the kernel conformance property
// test: over randomized core configurations — all axon types, random
// and saturated crossbar densities, mixed enabled/disabled neurons,
// positive and negative weights and leaks, floors, and the full delay
// range — the bit-parallel kernel must produce potentials, firings, and
// statistics counters identical to the scalar reference path.
func TestKernelMatchesScalarRandomized(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		r := prng.New(seed * 0x9e3779b9)
		cfg := randomDeterministicConfig(r, CoreID(seed))
		fast := NewCore(cfg, 7)
		ref := NewCore(cfg, 7)
		ref.ForceScalar()
		if !fast.KernelActive() {
			t.Fatalf("seed %d: deterministic core did not get the kernel", seed)
		}
		if ref.KernelActive() {
			t.Fatal("ForceScalar left the kernel active")
		}
		driveCores(t, fast, ref, r, 40)
	}
}

// TestKernelSaturatedCrossbarAllAxonsPending pins the densest possible
// tick: every crossbar bit set and every axon pending. The kernel and
// scalar paths must agree, and the counters must equal the closed-form
// values.
func TestKernelSaturatedCrossbarAllAxonsPending(t *testing.T) {
	cfg := &CoreConfig{ID: 0}
	for a := 0; a < CoreSize; a++ {
		cfg.AxonTypes[a] = uint8(a % NumAxonTypes)
		for j := 0; j < CoreSize; j++ {
			cfg.SetSynapse(a, j, true)
		}
	}
	for j := 0; j < CoreSize; j++ {
		cfg.Neurons[j] = NeuronParams{
			Weights:   [NumAxonTypes]int16{1, 2, -1, 3},
			Threshold: 1 << 30,
			Floor:     -1 << 20,
			Target:    SpikeTarget{Core: 0, Axon: 0, Delay: 1},
			Enabled:   true,
		}
	}
	fast := NewCore(cfg, 3)
	ref := NewCore(cfg, 3)
	ref.ForceScalar()
	for _, c := range []*Core{fast, ref} {
		for a := 0; a < CoreSize; a++ {
			if err := c.ScheduleSpike(a, 1, 0); err != nil {
				t.Fatal(err)
			}
		}
		c.SynapsePhase(1)
	}
	// 64 axons of each type; Σ weights·64 = (1+2-1+3)·64 = 320.
	for j := 0; j < CoreSize; j++ {
		if fast.Potential(j) != 320 || ref.Potential(j) != 320 {
			t.Fatalf("neuron %d: kernel %d, scalar %d, want 320", j, fast.Potential(j), ref.Potential(j))
		}
	}
	fa, fs, _ := fast.Stats()
	if fa != CoreSize || fs != CoreSize*CoreSize {
		t.Fatalf("kernel stats (%d axon, %d syn), want (%d, %d)", fa, fs, CoreSize, CoreSize*CoreSize)
	}
	ra, rs, _ := ref.Stats()
	if ra != fa || rs != fs {
		t.Fatalf("scalar stats (%d, %d) diverge from kernel (%d, %d)", ra, rs, fa, fs)
	}
}

// TestKernelEligibility pins the fast-path selection rule: any
// stochastic weight or stochastic leak on an enabled neuron forces the
// scalar path; the same dynamics on a disabled neuron do not.
func TestKernelEligibility(t *testing.T) {
	base := func() *CoreConfig {
		cfg := &CoreConfig{ID: 0}
		cfg.Neurons[3] = NeuronParams{
			Weights: [NumAxonTypes]int16{1, 1, 1, 1}, Threshold: 4, Floor: -8,
			Target: SpikeTarget{Core: 0, Axon: 0, Delay: 1}, Enabled: true,
		}
		return cfg
	}
	cfg := base()
	if !KernelEligible(cfg) || !NewCore(cfg, 1).KernelActive() {
		t.Fatal("deterministic core not eligible")
	}
	cfg = base()
	cfg.Neurons[3].StochasticWeight[2] = true
	if KernelEligible(cfg) || NewCore(cfg, 1).KernelActive() {
		t.Fatal("stochastic weight accepted on the kernel path")
	}
	cfg = base()
	cfg.Neurons[3].StochasticLeak = true
	if KernelEligible(cfg) || NewCore(cfg, 1).KernelActive() {
		t.Fatal("stochastic leak accepted on the kernel path")
	}
	cfg = base()
	cfg.Neurons[9].StochasticLeak = true // disabled neuron: irrelevant
	if !KernelEligible(cfg) {
		t.Fatal("disabled stochastic neuron blocked the kernel")
	}
}

// TestQuiescentSkipExact verifies that skipping quiescent core-ticks is
// bit-exact: a passive core driven by a sparse spike stream must end in
// the same state whether or not quiet ticks are skipped.
func TestQuiescentSkipExact(t *testing.T) {
	cfg := &CoreConfig{ID: 0}
	r := prng.New(99)
	for a := 0; a < CoreSize; a++ {
		cfg.AxonTypes[a] = uint8(r.Intn(NumAxonTypes))
		for s := 0; s < 16; s++ {
			cfg.SetSynapse(a, r.Intn(CoreSize), true)
		}
	}
	for j := 0; j < CoreSize; j++ {
		cfg.Neurons[j] = NeuronParams{
			Weights:   [NumAxonTypes]int16{2, 3, 1, -1},
			Threshold: int32(4 + r.Intn(4)),
			Reset:     0,
			Floor:     -16,
			Target:    SpikeTarget{Core: 0, Axon: uint16(r.Intn(CoreSize)), Delay: 1},
			Enabled:   true,
		}
	}
	skip := NewCore(cfg, 5)
	full := NewCore(cfg, 5)
	full.ForceScalar()
	if !passiveConfig(cfg) {
		t.Fatal("config not passive")
	}
	skipped := 0
	for tick := uint64(0); tick < 200; tick++ {
		if tick%17 == 3 { // sparse drive
			axon := int(tick) % CoreSize
			skip.InjectRaw(axon, tick)
			full.InjectRaw(axon, tick)
		}
		var fs, ff int
		if skip.QuiescentAt(tick) {
			skipped++
		} else {
			skip.Tick(tick, func(Spike) { fs++ })
		}
		full.Tick(tick, func(Spike) { ff++ })
		if fs != ff {
			t.Fatalf("tick %d: skipping core fired %d, reference %d", tick, fs, ff)
		}
	}
	if skipped == 0 {
		t.Fatal("no ticks were skipped; quiescence detection inert")
	}
	for j := 0; j < CoreSize; j++ {
		if skip.Potential(j) != full.Potential(j) {
			t.Fatalf("neuron %d: skipping %d, reference %d", j, skip.Potential(j), full.Potential(j))
		}
	}
}

// TestQuiescentAtGating pins the settled-state machine: a passive core
// is not skippable before its first Neuron phase (arbitrary initial
// potentials may be above threshold), becomes skippable after it, and
// reverts on SetPotential, SetState, or a pending spike.
func TestQuiescentAtGating(t *testing.T) {
	cfg := &CoreConfig{ID: 0}
	cfg.Neurons[0] = NeuronParams{
		Weights: [NumAxonTypes]int16{1, 1, 1, 1}, Threshold: 2, Floor: -4,
		Target: SpikeTarget{Core: 0, Axon: 0, Delay: 1}, Enabled: true,
	}
	c := NewCore(cfg, 1)
	if c.QuiescentAt(0) {
		t.Fatal("unsettled core reported quiescent")
	}
	// A potential at threshold must fire on the first (non-skipped) tick.
	c.SetPotential(0, 2)
	fired := 0
	c.Tick(0, func(Spike) { fired++ })
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if !c.QuiescentAt(1) {
		t.Fatal("settled passive core not quiescent")
	}
	if err := c.ScheduleSpike(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if c.QuiescentAt(2) {
		t.Fatal("core with pending spike reported quiescent")
	}
	c.Tick(2, func(Spike) {})
	if !c.QuiescentAt(3) {
		t.Fatal("core not quiescent after consuming spike")
	}
	c.SetPotential(0, 5)
	if c.QuiescentAt(3) {
		t.Fatal("SetPotential did not unsettle the core")
	}
	c.Tick(3, func(Spike) {})
	st := c.State()
	if err := c.SetState(st); err != nil {
		t.Fatal(err)
	}
	if c.QuiescentAt(4) {
		t.Fatal("SetState did not unsettle the core")
	}
	// A leaky core is never passive.
	leaky := *cfg
	leaky.Neurons[0].Leak = 1
	lc := NewCore(&leaky, 1)
	lc.Tick(0, func(Spike) {})
	if lc.QuiescentAt(1) {
		t.Fatal("leaky core reported quiescent")
	}
}

// TestInjectRawBounds verifies malformed external spikes are dropped and
// counted instead of panicking.
func TestInjectRawBounds(t *testing.T) {
	c := NewCore(&CoreConfig{ID: 0}, 1)
	for _, axon := range []int{-1, CoreSize, CoreSize + 100} {
		if c.InjectRaw(axon, 0) {
			t.Fatalf("axon %d accepted", axon)
		}
	}
	if got := c.DroppedInjects(); got != 3 {
		t.Fatalf("DroppedInjects = %d, want 3", got)
	}
	if !c.InjectRaw(0, 0) {
		t.Fatal("valid inject rejected")
	}
	if !c.PendingSpike(0, 0) {
		t.Fatal("valid inject not pending")
	}
	if got := c.DroppedInjects(); got != 3 {
		t.Fatalf("valid inject counted as drop: %d", got)
	}
}

// TestStateRoundtripPreservesPending checks the slot-major ring survives
// the axon-major checkpoint encoding for every axon and delay slot.
func TestStateRoundtripPreservesPending(t *testing.T) {
	cfg := &CoreConfig{ID: 0}
	c := NewCore(cfg, 1)
	r := prng.New(42)
	type sched struct {
		axon int
		tick uint64
	}
	now := uint64(100)
	var want []sched
	for i := 0; i < 300; i++ {
		s := sched{axon: r.Intn(CoreSize), tick: now + 1 + uint64(r.Intn(MaxDelay))}
		if err := c.ScheduleSpike(s.axon, s.tick, now); err != nil {
			t.Fatal(err)
		}
		want = append(want, s)
	}
	restored := NewCore(cfg, 9)
	if err := restored.SetState(c.State()); err != nil {
		t.Fatal(err)
	}
	for _, s := range want {
		if !restored.PendingSpike(s.axon, s.tick) {
			t.Fatalf("spike (axon %d, tick %d) lost in roundtrip", s.axon, s.tick)
		}
	}
	// And nothing extra: the two cores agree on the whole window.
	for a := 0; a < CoreSize; a++ {
		for d := uint64(0); d <= MaxDelay; d++ {
			if c.PendingSpike(a, now+d) != restored.PendingSpike(a, now+d) {
				t.Fatalf("axon %d tick %d: pending mismatch after roundtrip", a, now+d)
			}
		}
	}
}
