package compass

import (
	"encoding/binary"
	"fmt"

	"github.com/cognitive-sim/compass/internal/truenorth"
)

// spikeRecordBytes is the encoded size of one spike on the simulated
// wire: target core (4), axon (2), delay (1), lane (1). The paper's
// bandwidth accounting uses truenorth.SpikeWireBytes (20 B) per spike,
// which includes the headers of the real Blue Gene messaging stack; the
// compact record here is only the in-memory representation. The lane
// byte (formerly reserved, always 0 outside batched execution) routes a
// spike to its session lane when several sessions of one model advance
// under a shared tick loop — batched runs reuse every transport
// unchanged because the lane rides inside the record.
const spikeRecordBytes = 8

// appendSpike encodes one spike onto buf.
func appendSpike(buf []byte, t truenorth.SpikeTarget) []byte {
	var rec [spikeRecordBytes]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(t.Core))
	binary.LittleEndian.PutUint16(rec[4:], t.Axon)
	rec[6] = t.Delay
	rec[7] = t.Lane
	return append(buf, rec[:]...)
}

// decodeSpikes iterates the spikes encoded in data.
func decodeSpikes(data []byte, fn func(truenorth.SpikeTarget) error) error {
	if len(data)%spikeRecordBytes != 0 {
		return fmt.Errorf("compass: spike payload of %d bytes is not a record multiple", len(data))
	}
	for off := 0; off < len(data); off += spikeRecordBytes {
		t := truenorth.SpikeTarget{
			Core:  truenorth.CoreID(binary.LittleEndian.Uint32(data[off:])),
			Axon:  binary.LittleEndian.Uint16(data[off+4:]),
			Delay: data[off+6],
			Lane:  data[off+7],
		}
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}
