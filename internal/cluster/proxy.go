package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/cognitive-sim/compass/internal/server"
	"github.com/cognitive-sim/compass/internal/spikeio"
)

// The stream proxy gives clients one stable spike-stream endpoint per
// cluster session, however many times the session moves. It speaks the
// same CSTR protocol as compassd (handshake with the *cluster* session
// id) and follows the session's ownership generation: on migration or
// failover it re-dials the new owner and keeps going.
//
// Exactly-once egress across failures comes from committed-tick
// gating: a record is released to the client only when its tick is
// below the session's committed horizon — the latest boundary whose
// checkpoint the coordinator holds. Records above the horizon are held;
// if the owner dies, they are dropped at the ownership change and the
// restored session replays them (bit-identically, by the determinism
// contract). The price is egress latency of one chunk; the payoff is a
// subscriber trace that is byte-identical to an unfailed run, crash or
// no crash.
//
// Inject frames are journaled, never forwarded inline: a per-session
// forwarder goroutine owned by the coordinator (see runForwarder)
// delivers the journal to the current owner, re-cursoring to the resume
// boundary at every ownership change. The client reader therefore never
// blocks on a slow or absent owner, and migration/failover wait for the
// forwarder to catch up before resuming — so every journaled spike
// reaches the live owner before its stamped tick fires. Same-tick
// duplicate delivery is idempotent (axon delivery ORs a bitmask), which
// makes cross-generation re-sends safe.

// proxyDialRetry paces re-dial attempts while an owner is unreachable.
// It is a variable only so the timer-reuse regression test can shorten
// it; production code treats it as a constant.
var proxyDialRetry = 150 * time.Millisecond

// proxyDrainTimeout bounds draining a previous owner's stream after an
// ownership change (a live source EOFs quickly once its remnant is
// deleted; a dead one never would).
const proxyDrainTimeout = 5 * time.Second

// genEvent is a buffered egress record tagged with the ownership
// generation that produced it, so post-failover cleanup can drop
// exactly the dead generation's uncommitted records.
type genEvent struct {
	ev  spikeio.Event
	gen int
}

// proxyConn is one client connection being served.
type proxyConn struct {
	c     *Coordinator
	r     *rec
	flags byte

	mu      sync.Mutex
	client  net.Conn
	pending []genEvent // records above the committed horizon
	closed  bool
}

// acceptProxy accepts stream-proxy connections until the listener
// closes.
func (c *Coordinator) acceptProxy(ln net.Listener) {
	defer c.wg.Done()
	var conns sync.Map
	defer func() {
		conns.Range(func(k, _ any) bool {
			k.(net.Conn).Close()
			return true
		})
	}()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-c.stop:
			ln.Close()
		case <-done:
		}
	}()
	var connWG sync.WaitGroup
	defer connWG.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Close live proxy conns so their goroutines unwind, then
			// wait (the deferred Range + Wait above).
			return
		}
		conns.Store(conn, struct{}{})
		connWG.Add(1)
		go func(conn net.Conn) {
			defer connWG.Done()
			defer conns.Delete(conn)
			c.serveProxyConn(conn)
		}(conn)
	}
}

// serveProxyConn handles one client stream end to end.
func (c *Coordinator) serveProxyConn(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	flags, id, err := server.ReadStreamHandshake(conn)
	if err != nil {
		server.WriteStreamReject(conn, err)
		return
	}
	r, err := c.getRec(id)
	if err != nil {
		server.WriteStreamReject(conn, err)
		return
	}
	if flags&(server.StreamFlagInject|server.StreamFlagSubscribe) == 0 {
		server.WriteStreamReject(conn, fmt.Errorf("cluster: handshake requests neither inject nor subscribe"))
		return
	}
	conn.SetReadDeadline(time.Time{})
	if err := server.WriteStreamOK(conn); err != nil {
		return
	}
	p := &proxyConn{c: c, r: r, flags: flags, client: conn}
	c.mu.Lock()
	r.proxyRefs++
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		r.proxyRefs--
		c.cond.Broadcast()
		c.mu.Unlock()
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
	}()
	p.run()
}

// snapshot reads the record's ownership state.
func (p *proxyConn) snapshot() (gen int, nodeStream, nodeSessionID string, committed uint64, ended bool) {
	c := p.c
	c.mu.Lock()
	defer c.mu.Unlock()
	r := p.r
	if n := c.nodes[r.nodeID]; n != nil {
		nodeStream = n.streamAddr
	}
	return r.gen, nodeStream, r.nodeSessionID, r.committedTick, r.ended
}

// run is the proxy connection's main loop: one iteration per ownership
// generation.
func (p *proxyConn) run() {
	// The client reader forwards inject frames (and notices the client
	// hanging up). It lives for the connection.
	clientGone := make(chan struct{})
	go p.readClient(clientGone)

	// The update watcher turns coordinator state changes (commit
	// horizon advanced, ownership changed, session ended) into channel
	// signals the generation loop can select on.
	update := make(chan struct{}, 1)
	go p.watchUpdates(update)

	for {
		select {
		case <-clientGone:
			return
		default:
		}
		gen, streamAddr, sessionID, _, ended := p.snapshot()
		if ended {
			p.flushPending(^uint64(0), -1)
			return
		}
		up, ok := p.dialUpstream(gen, streamAddr, sessionID, update, clientGone)
		if !ok {
			if p.isClosed() {
				return
			}
			continue // ownership changed while dialing; next generation
		}

		p.c.markAttached(p.r, gen)

		// Pump this generation: upstream records buffer as (gen, event)
		// and release as the horizon advances.
		recCh := make(chan []spikeio.Event, 4)
		go func() {
			defer close(recCh)
			for {
				events, err := up.Recv()
				if err != nil {
					return
				}
				if len(events) > 0 {
					recCh <- events
				}
			}
		}()

		genDone := false
		for !genDone {
			select {
			case events, ok := <-recCh:
				if !ok {
					// Upstream ended. If the session ended too this is the
					// natural EOF; flush everything and finish. Otherwise
					// wait for the coordinator to move the session.
					if _, _, _, _, end := p.snapshot(); end {
						p.flushPending(^uint64(0), -1)
						return
					}
					if !p.waitGenChange(gen, update, clientGone) {
						return
					}
					genDone = true
					continue
				}
				p.buffer(events, gen)
				if !p.flushCommitted() {
					return
				}
			case <-update:
				if !p.flushCommitted() {
					return
				}
				curGen, _, _, _, end := p.snapshot()
				if end {
					// Drain what the upstream already sent, then flush all.
					p.drainUpstream(up, recCh, gen)
					p.flushPending(^uint64(0), -1)
					return
				}
				if curGen != gen {
					// Ownership moved. Drain the old owner briefly (a live
					// source EOFs once its remnant is deleted), release
					// anything that became committed, then drop the dead
					// generation's uncommitted leftovers and follow.
					p.drainUpstream(up, recCh, gen)
					if !p.flushCommitted() {
						return
					}
					_, _, _, committed, _ := p.snapshot()
					p.dropGenAbove(gen, committed)
					genDone = true
				}
			case <-clientGone:
				up.Close()
				return
			}
		}
		up.Close()
	}
}

// dialUpstream connects to the generation's owner, retrying while the
// owner is unreachable and the generation unchanged. ok=false means
// the generation moved on (or the proxy is closing) and the caller
// should re-snapshot.
func (p *proxyConn) dialUpstream(gen int, streamAddr, sessionID string, update chan struct{}, clientGone chan struct{}) (*server.StreamClient, bool) {
	// One timer for the whole retry loop (not one per iteration, which
	// would leave each pass's timer pending until it fires); disarmed on
	// every non-timer exit so a cancelled dial loop leaves nothing armed.
	retry := newReusableTimer()
	defer retry.Disarm()
	for {
		if p.isClosed() {
			return nil, false
		}
		if curGen, _, _, _, ended := p.snapshot(); curGen != gen || ended {
			return nil, false
		}
		if streamAddr != "" {
			up, err := server.DialStream(streamAddr, sessionID, p.flags)
			if err == nil {
				return up, true
			}
		}
		select {
		case <-retry.Arm(proxyDialRetry):
			gen2, addr2, id2, _, ended := p.snapshot()
			if gen2 != gen || ended {
				return nil, false
			}
			streamAddr, sessionID = addr2, id2
		case <-update:
			// State changed; loop re-snapshots.
			retry.Disarm()
			gen2, addr2, id2, _, ended := p.snapshot()
			if gen2 != gen || ended {
				return nil, false
			}
			streamAddr, sessionID = addr2, id2
		case <-clientGone:
			return nil, false
		}
	}
}

// drainUpstream closes the old owner connection after a bounded drain,
// folding late frames into the buffer (they may have become committed
// by the ownership change's boundary).
func (p *proxyConn) drainUpstream(up *server.StreamClient, recCh chan []spikeio.Event, gen int) {
	// A stopped timer, not time.After: the usual exit is the upstream
	// EOF long before the 5 s deadline, and an After timer would stay
	// pending for the remainder on every ownership change.
	deadline := time.NewTimer(proxyDrainTimeout)
	defer deadline.Stop()
	for {
		select {
		case events, ok := <-recCh:
			if !ok {
				return
			}
			p.buffer(events, gen)
		case <-deadline.C:
			up.Close()
			for range recCh {
			}
			return
		}
	}
}

// waitGenChange blocks until the ownership generation moves past gen
// or the session ends; false means the proxy should shut down.
func (p *proxyConn) waitGenChange(gen int, update chan struct{}, clientGone chan struct{}) bool {
	for {
		curGen, _, _, _, ended := p.snapshot()
		if ended {
			p.flushPending(^uint64(0), -1)
			return false
		}
		if curGen != gen {
			_, _, _, committed, _ := p.snapshot()
			if !p.flushCommitted() {
				return false
			}
			p.dropGenAbove(gen, committed)
			return true
		}
		select {
		case <-update:
		case <-clientGone:
			return false
		}
	}
}

// watchUpdates translates coordinator condition broadcasts into a
// non-blocking signal channel.
func (p *proxyConn) watchUpdates(update chan struct{}) {
	c := p.c
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
		select {
		case update <- struct{}{}:
		default:
		}
		c.cond.Wait()
	}
}

// markAttached records that the proxy follows generation gen; the
// coordinator's migration path waits on this before resuming.
func (c *Coordinator) markAttached(r *rec, gen int) {
	c.mu.Lock()
	if gen > r.attachedGen {
		r.attachedGen = gen
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (p *proxyConn) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// buffer holds records until the commit horizon passes them.
func (p *proxyConn) buffer(events []spikeio.Event, gen int) {
	p.mu.Lock()
	for _, ev := range events {
		p.pending = append(p.pending, genEvent{ev: ev, gen: gen})
	}
	p.mu.Unlock()
}

// flushCommitted releases buffered records below the current horizon;
// false means the client write failed.
func (p *proxyConn) flushCommitted() bool {
	_, _, _, committed, ended := p.snapshot()
	if ended {
		committed = ^uint64(0)
	}
	return p.flushPending(committed, -1)
}

// flushPending writes every buffered record with tick below horizon to
// the client (all generations); gen >= 0 restricts to one generation.
// Subscribers get frames in arrival order — cross-rank record order
// within a tick was never guaranteed, only the record multiset is.
func (p *proxyConn) flushPending(horizon uint64, gen int) bool {
	if p.flags&server.StreamFlagSubscribe == 0 {
		p.mu.Lock()
		p.pending = nil
		p.mu.Unlock()
		return true
	}
	p.mu.Lock()
	var out []spikeio.Event
	keep := p.pending[:0]
	for _, ge := range p.pending {
		if ge.ev.Tick < horizon && (gen < 0 || ge.gen == gen) {
			out = append(out, ge.ev)
		} else {
			keep = append(keep, ge)
		}
	}
	for i := len(keep); i < len(p.pending); i++ {
		p.pending[i] = genEvent{}
	}
	p.pending = keep
	client := p.client
	p.mu.Unlock()
	if len(out) == 0 {
		return true
	}
	return writeFrames(client, out) == nil
}

// dropGenAbove discards a dead generation's uncommitted records — the
// restored session will replay them.
func (p *proxyConn) dropGenAbove(gen int, horizon uint64) {
	p.mu.Lock()
	keep := p.pending[:0]
	for _, ge := range p.pending {
		if ge.gen == gen && ge.ev.Tick >= horizon {
			continue
		}
		keep = append(keep, ge)
	}
	for i := len(keep); i < len(p.pending); i++ {
		p.pending[i] = genEvent{}
	}
	p.pending = keep
	p.mu.Unlock()
}

// readClient consumes the client's inject frames: journal only — the
// coordinator's forwarder goroutine is the sole delivery path to the
// owner, so this loop never blocks behind a slow or mid-migration
// upstream. A clean EOF at a frame boundary (half-close, or a
// subscriber that simply never writes) stops injection but keeps egress
// flowing, mirroring compassd's stream plane; clientGone fires only on
// protocol violations or mid-frame errors, which tear the connection
// down.
func (p *proxyConn) readClient(clientGone chan struct{}) {
	var lenBuf [4]byte
	rec := make([]byte, spikeio.RecordSize)
	inject := p.flags&server.StreamFlagInject != 0
	for {
		if _, err := io.ReadFull(p.client, lenBuf[:]); err != nil {
			if err != io.EOF {
				close(clientGone)
			}
			return
		}
		count := binary.LittleEndian.Uint32(lenBuf[:])
		if count == 0 {
			continue
		}
		if count > 1<<20 || !inject {
			close(clientGone)
			return
		}
		events := make([]spikeio.Event, 0, count)
		for i := uint32(0); i < count; i++ {
			if _, err := io.ReadFull(p.client, rec); err != nil {
				close(clientGone)
				return
			}
			events = append(events, spikeio.DecodeRecord(rec))
		}
		p.c.journalInject(p.r, events)
	}
}

// journalInject appends inject records to the session's journal and
// wakes (lazily starting) the forwarder that delivers them.
func (c *Coordinator) journalInject(r *rec, events []spikeio.Event) {
	c.mu.Lock()
	r.journal = append(r.journal, events...)
	c.startForwarderLocked(r)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// writeFrames encodes records into one or more frames on the client
// connection.
func writeFrames(w io.Writer, events []spikeio.Event) error {
	const maxBatch = 4096
	for len(events) > 0 {
		n := len(events)
		if n > maxBatch {
			n = maxBatch
		}
		buf := make([]byte, 4+n*spikeio.RecordSize)
		binary.LittleEndian.PutUint32(buf, uint32(n))
		for i, ev := range events[:n] {
			spikeio.EncodeRecord(buf[4+i*spikeio.RecordSize:], ev)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		events = events[n:]
	}
	return nil
}
