// Package c2 implements a C2-style baseline simulator for comparison
// with Compass, reproducing the architectural contrast the paper draws
// with its predecessor (§I):
//
//   - "the fundamental data structure is a neurosynaptic core instead of
//     a synapse; the synapse is simplified to a bit, resulting in 32×
//     less storage required for the synapse data structure as compared
//     to C2" — here every synapse is an explicit record carrying its
//     resolved target, weight, and delay, exactly the representation C2
//     (Ananthanarayanan et al., SC'07/SC'09) used for its
//     phenomenological cortical models;
//   - "C2 used a flat MPI programming model" — the baseline simulates
//     single-threaded per rank, with no intra-rank threading.
//
// The baseline consumes the same TrueNorth models as Compass by
// expanding each crossbar into synapse records (each set bit (axon,
// neuron) of a core becomes one record on the axon's source neuron).
// For models in which every axon has at most one source — which the
// Parallel Compass Compiler guarantees by construction, since it grants
// each axon to exactly one neuron — the baseline is spike-for-spike
// equivalent to the TrueNorth reference, which the tests verify. The
// point of the package is the storage and throughput comparison: the
// same network, synapse-centric versus core-centric.
package c2

import (
	"fmt"

	"github.com/cognitive-sim/compass/internal/truenorth"
)

// Synapse is one explicit synaptic record: the global target neuron, the
// resolved signed weight, and the axonal delay. C2 stored roughly four
// bytes per synapse; this implementation packs each record into eight
// (a 32-bit target does not fit the historical four-byte record), and
// MemoryBytes reports both its own footprint and the paper-equivalent
// four-byte accounting.
type Synapse struct {
	Target uint32
	Weight int16
	Delay  uint8
	_      uint8
}

// SynapseRecordBytes is this implementation's per-synapse storage.
const SynapseRecordBytes = 8

// C2SynapseBytes is the per-synapse storage of the historical C2
// simulator implied by the paper's 32× claim against one crossbar bit.
const C2SynapseBytes = 4

// neuron is the baseline's neuron state and parameters.
type neuron struct {
	v         int32
	leak      int16
	threshold int32
	reset     int32
	floor     int32
	enabled   bool
	syns      []Synapse
}

// delivery is a pending synaptic input.
type delivery struct {
	target uint32
	weight int16
}

// Sim is the C2-style simulator: a flat neuron array with per-neuron
// outgoing synapse lists and a delay wheel of pending deliveries.
type Sim struct {
	neurons []neuron
	// wheel[t % window] holds deliveries due at tick t.
	wheel [truenorth.MaxDelay + 1][]delivery
	// inputs are pre-resolved external deliveries by tick.
	inputs map[uint64][]delivery
	tick   uint64

	totalSpikes   uint64
	totalSynapses int

	// OnSpike observes every firing (tick, global neuron index).
	OnSpike func(tick uint64, neuron uint32)
}

// FromModel expands a TrueNorth model into the synapse-centric
// representation. Models using stochastic weights or leaks are rejected:
// C2's phenomenological neurons draw from different distributions, so no
// bit-equivalent expansion exists.
func FromModel(m *truenorth.Model) (*Sim, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	nCores := len(m.Cores)
	s := &Sim{
		neurons: make([]neuron, nCores*truenorth.CoreSize),
		inputs:  make(map[uint64][]delivery),
	}
	globalID := func(core truenorth.CoreID, j int) uint32 {
		return uint32(core)*truenorth.CoreSize + uint32(j)
	}
	for _, cfg := range m.Cores {
		for j := range cfg.Neurons {
			p := &cfg.Neurons[j]
			n := &s.neurons[globalID(cfg.ID, j)]
			n.leak = p.Leak
			n.threshold = p.Threshold
			n.reset = p.Reset
			n.floor = p.Floor
			n.enabled = p.Enabled
			if !p.Enabled {
				continue
			}
			if p.StochasticLeak {
				return nil, fmt.Errorf("c2: core %d neuron %d uses stochastic leak", cfg.ID, j)
			}
			for _, sw := range p.StochasticWeight {
				if sw {
					return nil, fmt.Errorf("c2: core %d neuron %d uses stochastic weights", cfg.ID, j)
				}
			}
			// The neuron's one output axon expands into one synapse per
			// set bit of the target axon's crossbar row, with the weight
			// resolved through the target neuron's axon-type table.
			tgtCore := m.Cores[p.Target.Core]
			at := tgtCore.AxonTypes[p.Target.Axon]
			for k := 0; k < truenorth.CoreSize; k++ {
				if !tgtCore.Synapse(int(p.Target.Axon), k) {
					continue
				}
				tn := &tgtCore.Neurons[k]
				if !tn.Enabled {
					continue
				}
				n.syns = append(n.syns, Synapse{
					Target: globalID(p.Target.Core, k),
					Weight: tn.Weights[at],
					Delay:  p.Target.Delay,
				})
				s.totalSynapses++
			}
		}
	}
	// External inputs resolve through the stimulated axon's crossbar.
	for _, in := range m.Inputs {
		cfg := m.Cores[in.Core]
		at := cfg.AxonTypes[in.Axon]
		for k := 0; k < truenorth.CoreSize; k++ {
			if !cfg.Synapse(int(in.Axon), k) || !cfg.Neurons[k].Enabled {
				continue
			}
			s.inputs[in.Tick] = append(s.inputs[in.Tick], delivery{
				target: globalID(in.Core, k),
				weight: cfg.Neurons[k].Weights[at],
			})
		}
	}
	return s, nil
}

// NumNeurons returns the flat neuron count.
func (s *Sim) NumNeurons() int { return len(s.neurons) }

// NumSynapses returns the expanded synapse record count.
func (s *Sim) NumSynapses() int { return s.totalSynapses }

// TotalSpikes returns cumulative firings.
func (s *Sim) TotalSpikes() uint64 { return s.totalSpikes }

// Tick returns the next tick to simulate.
func (s *Sim) Tick() uint64 { return s.tick }

// MemoryBytes returns the synapse-storage footprint of this
// implementation and the paper-equivalent historical C2 accounting.
func (s *Sim) MemoryBytes() (impl, historical int64) {
	return int64(s.totalSynapses) * SynapseRecordBytes,
		int64(s.totalSynapses) * C2SynapseBytes
}

// Step simulates one tick: apply due deliveries, then leak, floor,
// threshold, and fire, scheduling each firing neuron's synapse list onto
// the delay wheel.
func (s *Sim) Step() {
	t := s.tick
	slot := int(t % uint64(len(s.wheel)))
	for _, d := range s.wheel[slot] {
		n := &s.neurons[d.target]
		if n.enabled {
			n.v += int32(d.weight)
		}
	}
	s.wheel[slot] = s.wheel[slot][:0]
	for _, d := range s.inputs[t] {
		n := &s.neurons[d.target]
		if n.enabled {
			n.v += int32(d.weight)
		}
	}
	delete(s.inputs, t)

	for i := range s.neurons {
		n := &s.neurons[i]
		if !n.enabled {
			continue
		}
		v := n.v + int32(n.leak)
		if v < n.floor {
			v = n.floor
		}
		if v >= n.threshold {
			s.totalSpikes++
			if s.OnSpike != nil {
				s.OnSpike(t, uint32(i))
			}
			for _, syn := range n.syns {
				due := int((t + uint64(syn.Delay)) % uint64(len(s.wheel)))
				s.wheel[due] = append(s.wheel[due], delivery{target: syn.Target, weight: syn.Weight})
			}
			v = n.reset
		}
		n.v = v
	}
	s.tick++
}

// Run simulates n ticks.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// CompassMemoryBytes returns the synapse-storage footprint of the same
// model under Compass's core-centric representation: one bit per
// crossbar position, 8 KB per core, independent of how many bits are
// set.
func CompassMemoryBytes(m *truenorth.Model) int64 {
	return int64(len(m.Cores)) * truenorth.CoreSize * truenorth.CoreSize / 8
}
