package compass

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/cognitive-sim/compass/internal/mpi"
)

// mpiBackend is the two-sided Network phase of Listing 1 (§III): one
// aggregated message per destination per tick, a Reduce-scatter to learn
// the incoming message count overlapped with local spike delivery, and a
// critical section around message receipt (thread-unsafe MPI).
type mpiBackend struct {
	probe *transportProbe
}

func (mpiBackend) Name() string    { return "mpi" }
func (mpiBackend) RawSpikes() bool { return false }

func (b mpiBackend) Run(ranks int, fn func(rank int, ep Endpoint) error) error {
	return mpi.Run(ranks, func(c *mpi.Comm) error {
		ep := &mpiEndpoint{comm: c, rank: c.Rank(), probe: b.probe}
		err := fn(c.Rank(), ep)
		if cerr := ep.Close(); err == nil {
			err = cerr
		}
		return err
	})
}

// mpiTagModulus bounds the per-tick message tag: tag = tick mod modulus.
// A raw int(tick) tag would grow without bound and silently truncate on
// uint64 → int conversion. The modulus keeps matching correct because the
// per-tick Reduce-scatter is a world collective: no rank can enter tick
// t+1 before every rank has entered tick t's collective, so the only
// point-to-point messages in flight at any moment carry tags from two
// adjacent ticks. Any modulus ≥ 3 therefore never aliases a live tag;
// 1024 leaves generous slack and stays far inside the int tag space.
const mpiTagModulus = 1024

// mpiEndpoint is one rank's two-sided transport connection. The receive
// mutex reproduces the thread-unsafe-MPI critical section of §III, and
// the error scratch is pooled across ticks.
type mpiEndpoint struct {
	comm      *mpi.Comm
	rank      int
	probe     *transportProbe
	recvMu    sync.Mutex
	remaining atomic.Int64
	errs      []error
}

func (ep *mpiEndpoint) Close() error { return nil }

func (ep *mpiEndpoint) Exchange(t uint64, out *Outbox, d Delivery) error {
	threads := d.Threads()
	errs := errScratch(&ep.errs, threads)
	tag := int(t % mpiTagModulus)
	var sendStart time.Time
	if ep.probe != nil {
		sendStart = time.Now()
		var msgs, bytes uint64
		for dest, n := range out.Counts {
			if n != 0 {
				msgs++
				bytes += uint64(len(out.Encoded[dest]))
			}
		}
		ep.probe.sent(ep.rank, msgs, bytes)
	}
	var expect int64
	d.Parallel(func(tid int) {
		if tid == 0 {
			for dest := range out.Encoded {
				if out.Counts[dest] != 0 {
					if err := ep.comm.Isend(dest, tag, out.Encoded[dest]); err != nil {
						errs[tid] = err
						return
					}
				}
			}
			n, err := ep.comm.ReduceScatterSum(out.Counts)
			if err != nil {
				errs[tid] = err
				return
			}
			expect = n
			if threads == 1 {
				errs[tid] = d.DeliverLocal(t, 0, 1)
			}
		} else {
			// Non-master threads overlap local delivery with the
			// master's collective.
			errs[tid] = d.DeliverLocal(t, tid-1, threads-1)
		}
	})
	if err := firstErr(errs); err != nil {
		return err
	}
	var drainStart time.Time
	if ep.probe != nil {
		ep.probe.span(ep.rank, PhaseNetSend, t, sendStart)
		ep.probe.depth(ep.rank, float64(expect))
		drainStart = time.Now()
	}

	// All threads take turns receiving inside the critical section and
	// deliver the received spikes outside it.
	ep.remaining.Store(expect)
	d.Parallel(func(tid int) {
		for {
			if ep.remaining.Add(-1) < 0 {
				return
			}
			ep.recvMu.Lock()
			data, _, err := ep.comm.Recv(mpi.AnySource, tag)
			ep.recvMu.Unlock()
			if err != nil {
				errs[tid] = err
				return
			}
			if err := d.DeliverEncoded(t, data); err != nil {
				errs[tid] = err
				return
			}
		}
	})
	if ep.probe != nil {
		ep.probe.span(ep.rank, PhaseNetDrain, t, drainStart)
	}
	return firstErr(errs)
}
