// Package truenorth models the TrueNorth neurosynaptic core architecture
// that Compass simulates.
//
// TrueNorth is a non-von Neumann architecture built from neurosynaptic
// cores. Each core contains 256 axons (inputs), a 256×256 binary synaptic
// crossbar, and 256 digital integrate-leak-and-fire neurons. A buffer in
// front of every axon holds incoming spikes until their axonal delay has
// elapsed. Cores advance in 1 ms ticks of a slow 1000 Hz clock: during a
// tick a core first propagates every pending axon spike across its
// crossbar row into the connected neurons (Synapse phase), then each
// neuron integrates, leaks, and fires (Neuron phase), and finally every
// emitted spike travels the inter-core network to the axon buffer of its
// single target axon (Network phase). Synaptic and neuronal state never
// leave a core; only spikes do.
//
// This package is purely the architecture: core state, configuration, and
// single-core tick semantics. The parallel simulator that partitions
// cores over ranks and threads lives in internal/compass; the compiler
// that produces core configurations lives in internal/pcc.
package truenorth

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"github.com/cognitive-sim/compass/internal/prng"
)

const (
	// CoreSize is the number of axons and the number of neurons in a
	// neurosynaptic core; the crossbar is CoreSize×CoreSize.
	CoreSize = 256

	// NumAxonTypes is the number of distinct axon types; each neuron holds
	// one signed synaptic weight per axon type.
	NumAxonTypes = 4

	// MaxDelay is the largest axonal delay, in ticks, an axon buffer can
	// hold. Delays are in [1, MaxDelay]; the buffer is a ring of
	// MaxDelay+1 slots indexed by tick modulo the window.
	MaxDelay = 15

	// delayWindow is the ring size of an axon buffer.
	delayWindow = MaxDelay + 1

	// crossbarWords is the number of 64-bit words per crossbar row.
	crossbarWords = CoreSize / 64

	// SpikeWireBytes is the modelled size of one spike on the inter-core
	// network; the paper accounts 20 bytes per spike when computing
	// aggregate bandwidth (§VI-B).
	SpikeWireBytes = 20
)

// CoreID identifies a core globally within a model.
type CoreID uint32

// SpikeTarget is the destination of a neuron's output: one axon on one
// core, reached after Delay ticks (1 ≤ Delay ≤ MaxDelay).
type SpikeTarget struct {
	Core  CoreID
	Axon  uint16
	Delay uint8
}

// Spike is a spike in flight on the inter-core network during the tick in
// which its source neuron fired.
type Spike struct {
	Target SpikeTarget
}

// NeuronParams configures one digital integrate-leak-and-fire neuron.
// The dynamics per tick are:
//
//	for each axon i with a pending spike and crossbar bit (i,j) set:
//	    V += Weights[AxonType[i]]            (deterministic mode)
//	    V += sign(w)·[draw8 < |w|]           (stochastic mode)
//	V += Leak, or sign(Leak)·[draw8 < |Leak|] if StochasticLeak
//	if V < Floor: V = Floor
//	if V >= Threshold: fire; V = Reset
//
// All stochastic draws come from the owning core's deterministic PRNG in
// a fixed order, so behaviour is exactly reproducible for a given model
// seed regardless of how cores are partitioned across ranks and threads.
type NeuronParams struct {
	// Weights holds one signed synaptic weight per axon type.
	Weights [NumAxonTypes]int16
	// StochasticWeight selects, per axon type, stochastic integration: the
	// membrane moves by ±1 with probability |weight|/256.
	StochasticWeight [NumAxonTypes]bool
	// Leak is added to the membrane potential every tick (signed).
	Leak int16
	// StochasticLeak applies the leak as ±1 with probability |Leak|/256.
	StochasticLeak bool
	// Threshold is the firing threshold; the neuron fires when V >=
	// Threshold at the end of the Neuron phase. Must be >= 1 for an
	// enabled neuron.
	Threshold int32
	// Reset is the membrane potential assigned after a spike.
	Reset int32
	// Floor is the lower bound on the membrane potential.
	Floor int32
	// Target is the core/axon/delay this neuron's spikes are sent to.
	Target SpikeTarget
	// Enabled gates the neuron; disabled neurons never integrate or fire.
	Enabled bool
}

// Validate reports whether the parameters are self-consistent.
func (p *NeuronParams) Validate() error {
	if !p.Enabled {
		return nil
	}
	if p.Threshold < 1 {
		return fmt.Errorf("truenorth: enabled neuron has threshold %d < 1", p.Threshold)
	}
	if p.Floor > p.Reset {
		return fmt.Errorf("truenorth: floor %d above reset %d", p.Floor, p.Reset)
	}
	if int(p.Target.Axon) >= CoreSize {
		return fmt.Errorf("truenorth: target axon %d out of range", p.Target.Axon)
	}
	if p.Target.Delay < 1 || p.Target.Delay > MaxDelay {
		return fmt.Errorf("truenorth: target delay %d outside [1,%d]", p.Target.Delay, MaxDelay)
	}
	return nil
}

// CoreConfig is the pure-data configuration of one core: everything the
// Parallel Compass Compiler produces and the simulator instantiates. The
// crossbar is stored as CoreSize rows of CoreSize bits; row i bit j set
// means axon i drives neuron j.
type CoreConfig struct {
	ID        CoreID
	Crossbar  [CoreSize][crossbarWords]uint64
	AxonTypes [CoreSize]uint8
	Neurons   [CoreSize]NeuronParams
}

// SetSynapse sets or clears crossbar bit (axon, neuron).
func (c *CoreConfig) SetSynapse(axon, neuron int, on bool) {
	w, b := neuron/64, uint(neuron%64)
	if on {
		c.Crossbar[axon][w] |= 1 << b
	} else {
		c.Crossbar[axon][w] &^= 1 << b
	}
}

// Synapse reports crossbar bit (axon, neuron).
func (c *CoreConfig) Synapse(axon, neuron int) bool {
	return c.Crossbar[axon][neuron/64]>>(uint(neuron%64))&1 == 1
}

// SynapseCount returns the number of set crossbar bits.
func (c *CoreConfig) SynapseCount() int {
	n := 0
	for i := range c.Crossbar {
		for _, w := range c.Crossbar[i] {
			n += bits.OnesCount64(w)
		}
	}
	return n
}

// Validate checks every neuron and axon type in the configuration.
func (c *CoreConfig) Validate() error {
	for i, t := range c.AxonTypes {
		if int(t) >= NumAxonTypes {
			return fmt.Errorf("truenorth: core %d axon %d has type %d >= %d", c.ID, i, t, NumAxonTypes)
		}
	}
	for j := range c.Neurons {
		if err := c.Neurons[j].Validate(); err != nil {
			return fmt.Errorf("core %d neuron %d: %w", c.ID, j, err)
		}
	}
	return nil
}

// Core is the live simulation state of one neurosynaptic core.
type Core struct {
	cfg *CoreConfig

	// potential holds the membrane potential of every neuron.
	potential [CoreSize]int32

	// axonBuf is the delay ring: axonBuf[i] bit (t mod delayWindow) set
	// means axon i has a spike scheduled for delivery at tick t. Only the
	// low delayWindow bits are used; the element type is uint32 so the
	// parallel simulator's delivery threads can set bits with atomic OR.
	axonBuf [CoreSize]uint32

	// rng is this core's private deterministic random stream.
	rng *prng.Stream

	// Statistics, maintained across ticks.
	synapticEvents uint64 // crossbar deliveries into neurons
	axonEvents     uint64 // axons with a pending spike processed
	firings        uint64 // spikes emitted by neurons
}

// NewCore instantiates live state for cfg. The core's random stream is
// derived from (modelSeed, cfg.ID) so results do not depend on placement.
func NewCore(cfg *CoreConfig, modelSeed uint64) *Core {
	return &Core{
		cfg: cfg,
		rng: prng.NewCoreStream(modelSeed, uint64(cfg.ID)),
	}
}

// ID returns the core's global ID.
func (c *Core) ID() CoreID { return c.cfg.ID }

// Config returns the core's configuration.
func (c *Core) Config() *CoreConfig { return c.cfg }

// Potential returns neuron j's membrane potential.
func (c *Core) Potential(j int) int32 { return c.potential[j] }

// SetPotential sets neuron j's membrane potential (used for tests and for
// initializing biased populations).
func (c *Core) SetPotential(j int, v int32) { c.potential[j] = v }

// Stats returns cumulative (axon events, synaptic events, firings).
func (c *Core) Stats() (axonEvents, synapticEvents, firings uint64) {
	return c.axonEvents, c.synapticEvents, c.firings
}

// ScheduleSpike schedules a spike for delivery to axon at deliverTick.
// now is the current tick; the delay deliverTick-now must lie in
// [1, MaxDelay] or the spike would collide with the ring's live window.
func (c *Core) ScheduleSpike(axon int, deliverTick, now uint64) error {
	if axon < 0 || axon >= CoreSize {
		return fmt.Errorf("truenorth: axon %d out of range", axon)
	}
	if deliverTick <= now || deliverTick-now > MaxDelay {
		return fmt.Errorf("truenorth: delivery tick %d outside (%d, %d]", deliverTick, now, now+MaxDelay)
	}
	c.axonBuf[axon] |= 1 << (deliverTick % delayWindow)
	return nil
}

// ScheduleSpikeShared is ScheduleSpike with an atomic read-modify-write,
// safe for concurrent use by multiple delivery threads during the
// simulator's Network phase. Spike delivery is a commutative OR, so
// delivery order never affects results.
func (c *Core) ScheduleSpikeShared(axon int, deliverTick, now uint64) error {
	if axon < 0 || axon >= CoreSize {
		return fmt.Errorf("truenorth: axon %d out of range", axon)
	}
	if deliverTick <= now || deliverTick-now > MaxDelay {
		return fmt.Errorf("truenorth: delivery tick %d outside (%d, %d]", deliverTick, now, now+MaxDelay)
	}
	atomic.OrUint32(&c.axonBuf[axon], 1<<(deliverTick%delayWindow))
	return nil
}

// InjectRaw schedules a spike for delivery at tick t without the delay
// window check relative to a current tick; callers (the simulators'
// external-input paths) must only use it for t within the live window.
func (c *Core) InjectRaw(axon int, t uint64) {
	c.axonBuf[axon] |= 1 << (t % delayWindow)
}

// PendingSpike reports whether axon has a spike scheduled for tick t.
func (c *Core) PendingSpike(axon int, t uint64) bool {
	return c.axonBuf[axon]>>(t%delayWindow)&1 == 1
}

// SynapsePhase consumes every axon spike scheduled for tick t and
// propagates it across the crossbar into the connected neurons,
// integrating the per-axon-type weight (deterministically or
// stochastically) into each target neuron's membrane potential.
func (c *Core) SynapsePhase(t uint64) {
	slot := uint32(1) << (t % delayWindow)
	for axon := 0; axon < CoreSize; axon++ {
		if c.axonBuf[axon]&slot == 0 {
			continue
		}
		c.axonBuf[axon] &^= slot
		c.axonEvents++
		at := c.cfg.AxonTypes[axon]
		row := &c.cfg.Crossbar[axon]
		for w := 0; w < crossbarWords; w++ {
			word := row[w]
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				j := w*64 + b
				c.integrate(j, at)
			}
		}
	}
}

// integrate applies one synaptic event of axon type at to neuron j.
func (c *Core) integrate(j int, at uint8) {
	p := &c.cfg.Neurons[j]
	if !p.Enabled {
		return
	}
	c.synapticEvents++
	w := p.Weights[at]
	if p.StochasticWeight[at] {
		mag := w
		if mag < 0 {
			mag = -mag
		}
		if c.rng.DrawMask(uint32(mag), 8) {
			if w < 0 {
				c.potential[j]--
			} else if w > 0 {
				c.potential[j]++
			}
		}
	} else {
		c.potential[j] += int32(w)
	}
}

// NeuronPhase applies leak, floor, and threshold to every neuron; each
// firing neuron's spike is passed to emit and its potential reset. The
// emit callback receives fully addressed spikes ready for the Network
// phase.
func (c *Core) NeuronPhase(emit func(Spike)) {
	for j := 0; j < CoreSize; j++ {
		p := &c.cfg.Neurons[j]
		if !p.Enabled {
			continue
		}
		v := c.potential[j]
		if p.StochasticLeak {
			mag := p.Leak
			if mag < 0 {
				mag = -mag
			}
			if c.rng.DrawMask(uint32(mag), 8) {
				if p.Leak < 0 {
					v--
				} else if p.Leak > 0 {
					v++
				}
			}
		} else {
			v += int32(p.Leak)
		}
		if v < p.Floor {
			v = p.Floor
		}
		if v >= p.Threshold {
			c.firings++
			emit(Spike{Target: p.Target})
			v = p.Reset
		}
		c.potential[j] = v
	}
}

// CoreState is the complete dynamic state of a live core at a tick
// boundary — everything needed to checkpoint and resume a simulation
// bit-exactly: membrane potentials, the axon delay rings, and the
// private PRNG stream. Statistics counters are not part of the state;
// restoring resets them.
type CoreState struct {
	ID         CoreID
	Potentials [CoreSize]int32
	AxonBuf    [CoreSize]uint32
	RNG        [4]uint64
}

// State captures the core's dynamic state.
func (c *Core) State() CoreState {
	return CoreState{
		ID:         c.cfg.ID,
		Potentials: c.potential,
		AxonBuf:    c.axonBuf,
		RNG:        c.rng.State(),
	}
}

// SetState restores a state captured with State. The state must belong
// to this core (matching ID). Statistics counters reset to zero.
func (c *Core) SetState(s CoreState) error {
	if s.ID != c.cfg.ID {
		return fmt.Errorf("truenorth: state for core %d applied to core %d", s.ID, c.cfg.ID)
	}
	if err := c.rng.SetState(s.RNG); err != nil {
		return err
	}
	c.potential = s.Potentials
	c.axonBuf = s.AxonBuf
	c.axonEvents, c.synapticEvents, c.firings = 0, 0, 0
	return nil
}

// Tick runs the core's Synapse and Neuron phases for tick t. It is the
// single-core building block used by the serial reference simulator; the
// parallel simulator calls the phases separately so it can interleave
// communication.
func (c *Core) Tick(t uint64, emit func(Spike)) {
	c.SynapsePhase(t)
	c.NeuronPhase(emit)
}
