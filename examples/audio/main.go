// Audio: tone-pattern classification on TrueNorth cores — the paper's
// "audio classification" application family (§I).
//
// The stimulus is a synthetic cochlea output: spikes on 8 frequency
// channels over time. Three sound classes are presented — a rising
// chirp (low→high sweep), a falling chirp (high→low), and a steady
// chord (all channels at once). Each class has a dedicated detector
// built from one coincidence gate whose per-channel input delays
// compensate the class's temporal pattern: a rising chirp activates
// channel k at time k·Δ, so routing channel k through an axonal delay of
// (N−1−k)·Δ makes all eight spikes arrive at the gate in the same tick.
// Detection is therefore pure spike-time geometry — the same trick the
// motion example uses across space, here across frequency.
package main

import (
	"fmt"
	"log"

	"github.com/cognitive-sim/compass/internal/corelets"
	"github.com/cognitive-sim/compass/internal/spikecode"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

const (
	channels = 8
	// delta is the chirp's channel-to-channel delay in ticks.
	delta = 2
	// matchNeed is the coincidence threshold: 6 of 8 channels tolerate
	// noisy or missing components.
	matchNeed = 6
)

type class struct {
	name string
	// onset returns the tick offset at which the class activates
	// channel k.
	onset func(k int) uint64
	// lag returns the compensating axonal delay for channel k (+1 base
	// delay, so lags stay in [1, 15]).
	lag func(k int) uint8
}

func classes() []class {
	return []class{
		{
			name:  "rising chirp",
			onset: func(k int) uint64 { return uint64(k * delta) },
			lag:   func(k int) uint8 { return uint8((channels-1-k)*delta) + 1 },
		},
		{
			name:  "falling chirp",
			onset: func(k int) uint64 { return uint64((channels - 1 - k) * delta) },
			lag:   func(k int) uint8 { return uint8(k*delta) + 1 },
		},
		{
			name:  "steady chord",
			onset: func(int) uint64 { return 0 },
			lag:   func(int) uint8 { return 1 },
		},
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cls := classes()
	b := corelets.NewBuilder(21)

	// Each channel fans out to one branch per detector class.
	chanIn, chanOut, err := b.Splitter(channels, len(cls))
	if err != nil {
		return err
	}

	probes := make([]*corelets.Probe, len(cls))
	for d, c := range cls {
		gateIn, gateOut, err := b.Gate(1, channels, matchNeed)
		if err != nil {
			return err
		}
		for k := 0; k < channels; k++ {
			src := corelets.OutPort{chanOut[d*channels+k]}
			dst := corelets.InPort{gateIn[k]}
			if err := b.Connect(src, dst, c.lag(k)); err != nil {
				return err
			}
		}
		if probes[d], err = b.Probe(gateOut); err != nil {
			return err
		}
	}

	// Presentation schedule: each class once, separated widely enough
	// that delayed spikes cannot bleed between presentations.
	const gap = uint64(channels*delta + 20)
	presentAt := make([]uint64, len(cls))
	for i, c := range cls {
		start := uint64(i) * gap
		presentAt[i] = start
		for k := 0; k < channels; k++ {
			if err := b.Stimulate(chanIn, k, start+c.onset(k)); err != nil {
				return err
			}
		}
	}

	m, err := b.Build()
	if err != nil {
		return err
	}
	fmt.Printf("audio classifier: %d channels, %d classes on %d TrueNorth cores\n\n",
		channels, len(cls), b.NumCores())

	sim, err := truenorth.NewSerialSim(m)
	if err != nil {
		return err
	}
	// Each detector's probe is one output line of the shared decode
	// helpers: collect line events, then score per presentation window.
	var events []spikecode.LineEvent
	sim.OnSpike = func(tick uint64, s truenorth.Spike) {
		for d, p := range probes {
			if _, ok := p.Index(s.Target); ok {
				events = append(events, spikecode.LineEvent{Line: d, Tick: tick})
			}
		}
	}
	totalTicks := int(uint64(len(cls))*gap) + 8
	if err := sim.Run(totalTicks); err != nil {
		return err
	}

	windows := make([]spikecode.Window, len(cls))
	for i := range cls {
		windows[i] = spikecode.Window{Start: uint64(i) * gap, End: uint64(i+1) * gap}
	}
	detections := spikecode.CountWindows(events, len(cls), windows)

	correct := 0
	for i, c := range cls {
		fmt.Printf("presented %-13s ->", c.name)
		for d := range cls {
			fmt.Printf(" %s:%d", shortName(cls[d].name), detections[i][d])
		}
		winner := spikecode.Argmax(detections[i])
		if winner == i {
			fmt.Printf("   classified %q  ok\n", cls[winner].name)
			correct++
		} else {
			fmt.Printf("   MISCLASSIFIED\n")
		}
	}
	if correct != len(cls) {
		return fmt.Errorf("only %d/%d classes recognized", correct, len(cls))
	}
	fmt.Printf("\nall %d sound classes recognized from spike timing alone.\n", correct)
	return nil
}

func shortName(s string) string {
	switch s {
	case "rising chirp":
		return "rise"
	case "falling chirp":
		return "fall"
	default:
		return "chord"
	}
}
