package pgas

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestPutBarrierDrain(t *testing.T) {
	err := Run(3, func(h *Handle) error {
		// Every rank puts its rank byte to every other rank.
		for dst := 0; dst < 3; dst++ {
			if dst == h.Rank() {
				continue
			}
			if err := h.Put(dst, []byte{byte(h.Rank())}); err != nil {
				return err
			}
		}
		h.Barrier()
		got := make(map[int][]byte)
		h.Drain(func(src int, data []byte) {
			cp := make([]byte, len(data))
			copy(cp, data)
			got[src] = cp
		})
		for src := 0; src < 3; src++ {
			if src == h.Rank() {
				if _, ok := got[src]; ok {
					return fmt.Errorf("rank %d drained unexpected self data", h.Rank())
				}
				continue
			}
			if len(got[src]) != 1 || got[src][0] != byte(src) {
				return fmt.Errorf("rank %d drained %v from %d", h.Rank(), got[src], src)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutAppendsWithinEpoch(t *testing.T) {
	err := Run(2, func(h *Handle) error {
		if h.Rank() == 0 {
			if err := h.Put(1, []byte{1, 2}); err != nil {
				return err
			}
			if err := h.Put(1, []byte{3}); err != nil {
				return err
			}
		}
		h.Barrier()
		if h.Rank() == 1 {
			var all []byte
			h.Drain(func(src int, data []byte) { all = append(all, data...) })
			if len(all) != 3 || all[0] != 1 || all[2] != 3 {
				return fmt.Errorf("drained %v", all)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEmptyPutIsNoop(t *testing.T) {
	s := NewSpace(2)
	err := s.Run(func(h *Handle) error {
		if err := h.Put((h.Rank()+1)%2, nil); err != nil {
			return err
		}
		h.Barrier()
		h.Drain(func(int, []byte) { panic("drained empty put") })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	puts, bytes := s.Stats()
	if puts != 0 || bytes != 0 {
		t.Fatalf("empty puts counted: (%d, %d)", puts, bytes)
	}
}

func TestPutInvalidRank(t *testing.T) {
	s := NewSpace(2)
	h := s.Handle(0)
	if err := h.Put(7, []byte{1}); err == nil {
		t.Fatal("put to invalid rank accepted")
	}
	if err := h.Put(-1, []byte{1}); err == nil {
		t.Fatal("put to negative rank accepted")
	}
}

func TestDataCopiedOnPut(t *testing.T) {
	err := Run(2, func(h *Handle) error {
		if h.Rank() == 0 {
			buf := []byte{42}
			if err := h.Put(1, buf); err != nil {
				return err
			}
			buf[0] = 0
		}
		h.Barrier()
		if h.Rank() == 1 {
			ok := false
			h.Drain(func(src int, data []byte) { ok = data[0] == 42 })
			if !ok {
				return errors.New("put data aliased caller buffer")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoubleBufferingAcrossTicks(t *testing.T) {
	// Simulate the compass tick protocol for many ticks: each tick, rank 0
	// puts the tick number to rank 1; rank 1 must drain exactly that value
	// each tick — no loss, no duplication, no cross-tick bleed.
	const ticks = 64
	err := Run(2, func(h *Handle) error {
		for tick := 0; tick < ticks; tick++ {
			if h.Rank() == 0 {
				if err := h.Put(1, []byte{byte(tick)}); err != nil {
					return err
				}
			}
			h.Barrier()
			if h.Rank() == 1 {
				count := 0
				var got byte
				h.Drain(func(src int, data []byte) {
					count += len(data)
					got = data[0]
				})
				if count != 1 || got != byte(tick) {
					return fmt.Errorf("tick %d: drained count=%d value=%d", tick, count, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const world = 8
	var before, violations atomic.Int64
	err := Run(world, func(h *Handle) error {
		before.Add(1)
		h.Barrier()
		if before.Load() != world {
			violations.Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if violations.Load() != 0 {
		t.Fatalf("%d ranks passed the barrier early", violations.Load())
	}
}

func TestEpochAdvancesWithBarrier(t *testing.T) {
	err := Run(2, func(h *Handle) error {
		if h.Epoch() != 0 {
			return fmt.Errorf("initial epoch %d", h.Epoch())
		}
		h.Barrier()
		if h.Epoch() != 1 {
			return fmt.Errorf("epoch after barrier %d", h.Epoch())
		}
		h.Barrier()
		if h.Epoch() != 2 {
			return fmt.Errorf("epoch after two barriers %d", h.Epoch())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCount(t *testing.T) {
	s := NewSpace(2)
	err := s.Run(func(h *Handle) error {
		if h.Rank() == 0 {
			if err := h.Put(1, make([]byte, 10)); err != nil {
				return err
			}
			if err := h.Put(1, make([]byte, 5)); err != nil {
				return err
			}
		}
		h.Barrier()
		if h.Rank() == 1 {
			if n := h.PendingBytes(); n != 15 {
				return fmt.Errorf("PendingBytes = %d", n)
			}
			h.Drain(func(int, []byte) {})
			if n := h.PendingBytes(); n != 0 {
				return fmt.Errorf("PendingBytes after drain = %d", n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	puts, bytes := s.Stats()
	if puts != 2 || bytes != 15 {
		t.Fatalf("Stats = (%d, %d), want (2, 15)", puts, bytes)
	}
	s.ResetStats()
	puts, bytes = s.Stats()
	if puts != 0 || bytes != 0 {
		t.Fatalf("after reset Stats = (%d, %d)", puts, bytes)
	}
}

// Property: for arbitrary sparse put patterns run through the tick
// protocol, every byte put in an epoch is drained exactly once at the
// destination during that epoch.
func TestQuickConservationOfSpikes(t *testing.T) {
	f := func(seed uint64, sizeRaw, ticksRaw uint8) bool {
		size := int(sizeRaw%5) + 2
		ticks := int(ticksRaw%8) + 1
		var totalPut, totalDrained atomic.Int64
		st := seed
		next := func() uint64 { st ^= st << 13; st ^= st >> 7; st ^= st << 17; return st }
		// Precompute the pattern so every rank goroutine agrees on it.
		pattern := make([][][]int, ticks) // pattern[t][src][dst] = byte count
		for t := range pattern {
			pattern[t] = make([][]int, size)
			for src := range pattern[t] {
				pattern[t][src] = make([]int, size)
				for dst := range pattern[t][src] {
					if next()%2 == 0 {
						pattern[t][src][dst] = int(next()%16) + 1
					}
				}
			}
		}
		err := Run(size, func(h *Handle) error {
			for t := 0; t < ticks; t++ {
				for dst := 0; dst < size; dst++ {
					n := pattern[t][h.Rank()][dst]
					if n > 0 {
						if err := h.Put(dst, make([]byte, n)); err != nil {
							return err
						}
						totalPut.Add(int64(n))
					}
				}
				h.Barrier()
				want := 0
				for src := 0; src < size; src++ {
					want += pattern[t][src][h.Rank()]
				}
				got := 0
				h.Drain(func(src int, data []byte) { got += len(data) })
				if got != want {
					return fmt.Errorf("tick %d rank %d drained %d, want %d", t, h.Rank(), got, want)
				}
				totalDrained.Add(int64(got))
			}
			return nil
		})
		return err == nil && totalPut.Load() == totalDrained.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPutBarrierDrain4(b *testing.B) {
	s := NewSpace(4)
	payload := make([]byte, 64)
	err := s.Run(func(h *Handle) error {
		for i := 0; i < b.N; i++ {
			for dst := 0; dst < 4; dst++ {
				if dst != h.Rank() {
					if err := h.Put(dst, payload); err != nil {
						return err
					}
				}
			}
			h.Barrier()
			h.Drain(func(int, []byte) {})
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// TestRankErrorUnblocksBarrier is the regression test for the barrier
// deadlock: before Barrier grew an abort path, a rank that failed
// between barriers stranded every peer inside Barrier forever. Rank 1
// errors after five epochs while the other ranks keep ticking; Run must
// release them with ErrAborted and return rank 1's causal error within
// the watchdog window.
func TestRankErrorUnblocksBarrier(t *testing.T) {
	errRank1 := errors.New("rank 1 failed at tick 5")
	done := make(chan error, 1)
	go func() {
		done <- Run(3, func(h *Handle) error {
			for tick := 0; ; tick++ {
				if h.Rank() == 1 && tick == 5 {
					return errRank1
				}
				if err := h.Barrier(); err != nil {
					if !errors.Is(err, ErrAborted) {
						return fmt.Errorf("barrier returned %w, want ErrAborted", err)
					}
					return err
				}
			}
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, errRank1) {
			t.Fatalf("Run returned %v, want the causal rank-1 error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return: peers stranded in Barrier")
	}
}

// TestAbortedBarrierStaysAborted: every Barrier call after an abort must
// fail immediately — a rank arriving late cannot be allowed to park in a
// barrier that will never fill again.
func TestAbortedBarrierStaysAborted(t *testing.T) {
	s := NewSpace(2)
	s.Abort()
	h := s.Handle(0)
	for i := 0; i < 3; i++ {
		if err := h.Barrier(); !errors.Is(err, ErrAborted) {
			t.Fatalf("Barrier after abort returned %v", err)
		}
	}
	if h.Epoch() != 0 {
		t.Fatalf("aborted barrier advanced the epoch to %d", h.Epoch())
	}
}
