// Package spikeio records, stores, and analyzes spike trains from
// Compass simulations. The paper lists "studying TrueNorth dynamics" and
// "hypotheses testing, verification, and iteration regarding neural
// codes and function" among Compass's purposes; both start with getting
// spike rasters out of the simulator and into analyses.
//
// The on-disk format is a compact binary stream: a "CSPK" header
// followed by fixed 14-byte records (tick, core, axon), the same shape
// as the simulator's spike events. Analysis helpers compute rate series,
// per-core rates, inter-spike-interval statistics, and terminal rasters.
package spikeio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/cognitive-sim/compass/internal/truenorth"
)

const (
	magic      = "CSPK"
	version    = 1
	headerSize = 8  // magic + u32 version
	recordSize = 14 // tick u64 + core u32 + axon u16
)

// RecordSize is the fixed encoded size of one spike record, in bytes.
// The server's stream protocol frames batches of records of exactly
// this shape, so the constant is part of the wire contract.
const RecordSize = recordSize

// Event is one recorded spike delivery: the tick the source fired and
// the target it addressed.
type Event struct {
	Tick uint64
	Core truenorth.CoreID
	Axon uint16
}

// Writer streams spike records to an io.Writer.
type Writer struct {
	bw    *bufio.Writer
	count uint64
	err   error
}

// NewWriter writes the stream header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// EncodeRecord encodes one spike event into buf, which must hold at
// least RecordSize bytes. The layout is the stream's record shape:
// little-endian tick u64, core u32, axon u16.
func EncodeRecord(buf []byte, ev Event) {
	binary.LittleEndian.PutUint64(buf[0:], ev.Tick)
	binary.LittleEndian.PutUint32(buf[8:], uint32(ev.Core))
	binary.LittleEndian.PutUint16(buf[12:], ev.Axon)
}

// DecodeRecord decodes one spike event from buf, which must hold at
// least RecordSize bytes.
func DecodeRecord(buf []byte) Event {
	return Event{
		Tick: binary.LittleEndian.Uint64(buf[0:]),
		Core: truenorth.CoreID(binary.LittleEndian.Uint32(buf[8:])),
		Axon: binary.LittleEndian.Uint16(buf[12:]),
	}
}

// Record appends one spike.
func (w *Writer) Record(tick uint64, core truenorth.CoreID, axon uint16) {
	if w.err != nil {
		return
	}
	var rec [recordSize]byte
	EncodeRecord(rec[:], Event{Tick: tick, Core: core, Axon: axon})
	if _, err := w.bw.Write(rec[:]); err != nil {
		w.err = err
		return
	}
	w.count++
}

// Count returns the number of spikes recorded so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered records and reports any deferred write error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Read parses a spike stream, invoking fn per event. Corruption errors
// name the byte offset and record index where the stream broke: a
// header shorter than headerSize bytes, and a final record shorter than
// RecordSize bytes, are both truncation errors (wrapping
// io.ErrUnexpectedEOF), never a silently shortened result.
func Read(r io.Reader, fn func(Event) error) error {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, headerSize)
	if n, err := io.ReadFull(br, hdr); err != nil {
		if err == io.EOF && n == 0 {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("spikeio: header truncated at byte offset %d (want %d header bytes): %w",
			n, headerSize, err)
	}
	if string(hdr[:4]) != magic {
		return fmt.Errorf("spikeio: bad magic %q at byte offset 0", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return fmt.Errorf("spikeio: unsupported version %d at byte offset 4", v)
	}
	var rec [recordSize]byte
	for idx := uint64(0); ; idx++ {
		n, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			return nil // clean end on a record boundary
		}
		if err != nil {
			off := uint64(headerSize) + idx*recordSize
			return fmt.Errorf("spikeio: record %d truncated at byte offset %d (%d of %d record bytes present): %w",
				idx, off+uint64(n), n, recordSize, err)
		}
		if err := fn(DecodeRecord(rec[:])); err != nil {
			return err
		}
	}
}

// ReadAll parses a spike stream into a slice.
func ReadAll(r io.Reader) ([]Event, error) {
	var out []Event
	err := Read(r, func(ev Event) error {
		out = append(out, ev)
		return nil
	})
	return out, err
}

// RateSeries bins events by tick and returns spikes per bin over
// [0, ticks), with binTicks ticks per bin.
func RateSeries(events []Event, ticks int, binTicks int) ([]int, error) {
	if ticks < 1 || binTicks < 1 {
		return nil, fmt.Errorf("spikeio: invalid ticks=%d bin=%d", ticks, binTicks)
	}
	bins := (ticks + binTicks - 1) / binTicks
	out := make([]int, bins)
	for _, ev := range events {
		if ev.Tick < uint64(ticks) {
			out[int(ev.Tick)/binTicks]++
		}
	}
	return out, nil
}

// PerCoreRates returns mean firing rate in hertz per core over a run of
// the given length, assuming 1 ms ticks and CoreSize neurons per core.
func PerCoreRates(events []Event, numCores, ticks int) ([]float64, error) {
	if numCores < 1 || ticks < 1 {
		return nil, fmt.Errorf("spikeio: invalid numCores=%d ticks=%d", numCores, ticks)
	}
	counts := make([]float64, numCores)
	for _, ev := range events {
		if int(ev.Core) < numCores {
			counts[ev.Core]++
		}
	}
	for i := range counts {
		counts[i] = counts[i] / truenorth.CoreSize / float64(ticks) * 1000
	}
	return counts, nil
}

// ISIStats summarizes inter-spike intervals of one target (core, axon)
// stream: count, mean, and coefficient of variation. A CV near 1
// indicates Poisson-like irregularity; near 0, clock-like regularity.
type ISIStats struct {
	Intervals int
	Mean      float64
	CV        float64
}

// ISI computes interval statistics for the spikes addressed to one
// (core, axon) pair.
func ISI(events []Event, core truenorth.CoreID, axon uint16) ISIStats {
	var ticks []uint64
	for _, ev := range events {
		if ev.Core == core && ev.Axon == axon {
			ticks = append(ticks, ev.Tick)
		}
	}
	sort.Slice(ticks, func(a, b int) bool { return ticks[a] < ticks[b] })
	if len(ticks) < 2 {
		return ISIStats{}
	}
	var sum, sumsq float64
	n := 0
	for i := 1; i < len(ticks); i++ {
		d := float64(ticks[i] - ticks[i-1])
		sum += d
		sumsq += d * d
		n++
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	st := ISIStats{Intervals: n, Mean: mean}
	if mean > 0 {
		st.CV = math.Sqrt(variance) / mean
	}
	return st
}

// Raster renders an ASCII raster: one row per core (up to maxRows), one
// column per time bin, '.' for silence and increasingly dense glyphs for
// activity.
func Raster(events []Event, numCores, ticks, binTicks, maxRows int) (string, error) {
	if numCores < 1 || ticks < 1 || binTicks < 1 || maxRows < 1 {
		return "", fmt.Errorf("spikeio: invalid raster geometry")
	}
	rows := numCores
	if rows > maxRows {
		rows = maxRows
	}
	bins := (ticks + binTicks - 1) / binTicks
	grid := make([][]int, rows)
	for i := range grid {
		grid[i] = make([]int, bins)
	}
	peak := 0
	for _, ev := range events {
		if int(ev.Core) >= rows || ev.Tick >= uint64(ticks) {
			continue
		}
		c := &grid[ev.Core][int(ev.Tick)/binTicks]
		*c++
		if *c > peak {
			peak = *c
		}
	}
	glyphs := []byte{'.', ':', '+', '*', '#'}
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "core %3d |", i)
		for _, c := range grid[i] {
			g := 0
			if peak > 0 && c > 0 {
				g = 1 + c*(len(glyphs)-2)/peak
				if g >= len(glyphs) {
					g = len(glyphs) - 1
				}
			}
			sb.WriteByte(glyphs[g])
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}
