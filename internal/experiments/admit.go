package experiments

import (
	"fmt"
	"time"

	"github.com/cognitive-sim/compass/internal/cocomac"
	"github.com/cognitive-sim/compass/internal/modelcache"
	"github.com/cognitive-sim/compass/internal/pcc"
)

// AdmitComparison measures what the model cache buys a serving daemon:
// cold admission (compile the CoCoMac model through the PCC, freeze the
// image) versus cached admission (content-address lookup of the same
// request), and the resident footprint of N sessions sharing one image
// versus N sessions holding private copies.
func AdmitComparison() ([]*Table, error) {
	const (
		cores    = 512 // host-scale stand-in for the §VII CoCoMac workload
		ranks    = 8
		sessions = 8
	)
	net := cocomac.Generate(2012)
	spec, err := net.ToSpec(cores, 1000)
	if err != nil {
		return nil, err
	}
	cache := modelcache.New(0)
	key, err := modelcache.SpecKey(spec, ranks)
	if err != nil {
		return nil, err
	}
	build := func() (*modelcache.Entry, error) {
		res, err := pcc.Compile(spec, ranks)
		if err != nil {
			return nil, err
		}
		return &modelcache.Entry{Image: res.Image, RankOf: res.RankOf, Ranks: res.Ranks}, nil
	}

	t0 := time.Now()
	e, hit, err := cache.GetOrBuild(key, build)
	if err != nil {
		return nil, err
	}
	cold := time.Since(t0).Seconds()
	if hit {
		return nil, fmt.Errorf("experiments: first admission reported a cache hit")
	}
	t1 := time.Now()
	_, hit, err = cache.GetOrBuild(key, build)
	if err != nil {
		return nil, err
	}
	cached := time.Since(t1).Seconds()
	if !hit {
		return nil, fmt.Errorf("experiments: second admission missed the cache")
	}

	ib, sb := e.Image.ImageBytes(), e.Image.StateBytes()
	shared := ib + int64(sessions)*sb
	private := int64(sessions) * (ib + sb)

	lat := &Table{
		ID:     "admit",
		Title:  fmt.Sprintf("Model-cache admission latency (CoCoMac, %d cores, %d compiler ranks)", cores, ranks),
		Header: []string{"path", "latency ms", "speedup"},
		Rows: [][]string{
			{"cold (PCC compile)", fmtMS(cold), "1.0x"},
			{"cached (content address)", fmtMS(cached), fmt.Sprintf("%.0fx", cold/cached)},
		},
		Notes: []string{
			"cached admission returns the shared immutable image; per-session state is instantiated lazily at run start",
		},
	}
	mem := &Table{
		ID:     "admit",
		Title:  fmt.Sprintf("Resident bytes for %d concurrent sessions of one model", sessions),
		Header: []string{"mode", "image MB", "state MB", "total MB", "vs private"},
		Rows: [][]string{
			{"private images", fmt.Sprintf("%.1f", float64(int64(sessions)*ib)/1e6),
				fmt.Sprintf("%.1f", float64(int64(sessions)*sb)/1e6),
				fmt.Sprintf("%.1f", float64(private)/1e6), "1.00x"},
			{"shared image", fmt.Sprintf("%.1f", float64(ib)/1e6),
				fmt.Sprintf("%.1f", float64(int64(sessions)*sb)/1e6),
				fmt.Sprintf("%.1f", float64(shared)/1e6),
				fmt.Sprintf("%.2fx", float64(shared)/float64(private))},
		},
		Notes: []string{
			"the immutable image (crossbars, weights, kernels) dominates; per-session runtime state is membrane potentials + delay rings + PRNG",
		},
	}
	return []*Table{lat, mem}, nil
}
