package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"
)

// This file is the read side of the registry: merge-on-scrape snapshots
// and the JSON and Prometheus exposition sinks.

// Bucket is one cumulative histogram bucket: the count of observations
// at or below LE. The implicit +Inf bucket is not listed — Count covers
// it.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Metric is one series with its shards merged.
type Metric struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Kind   string  `json:"kind"`
	Labels []Label `json:"labels,omitempty"`

	// Value is the merged counter sum or gauge sum-of-shards.
	Value float64 `json:"value,omitempty"`

	// Histogram fields: cumulative finite buckets, total observation
	// count, and sum of observed values.
	Buckets []Bucket `json:"buckets,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
}

// Snapshot is a point-in-time merge of every registered series, in
// registration order.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot merges every metric's shards. It takes the registration lock
// only to copy the metric list; cell reads are atomic loads and may
// race benignly with concurrent updates (each cell is independently
// consistent).
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	snap := &Snapshot{Metrics: make([]Metric, 0, len(metrics))}
	for _, m := range metrics {
		out := Metric{Name: m.name, Help: m.help, Kind: m.kind.String(), Labels: m.labels}
		switch m.kind {
		case KindCounter:
			var total uint64
			for _, cells := range m.shards {
				total += cells[0].Load()
			}
			out.Value = float64(total)
		case KindGauge:
			for _, cells := range m.shards {
				out.Value += math.Float64frombits(cells[0].Load())
			}
		case KindHistogram:
			counts := make([]uint64, len(m.bounds)+1)
			for _, cells := range m.shards {
				for i := range counts {
					counts[i] += cells[i].Load()
				}
				out.Count += cells[len(m.bounds)+1].Load()
				out.Sum += math.Float64frombits(cells[len(m.bounds)+2].Load())
			}
			out.Buckets = make([]Bucket, len(m.bounds))
			cum := uint64(0)
			for i, b := range m.bounds {
				cum += counts[i]
				out.Buckets[i] = Bucket{LE: b, Count: cum}
			}
		}
		snap.Metrics = append(snap.Metrics, out)
	}
	return snap
}

// Find returns every series of the snapshot with the given name (one
// per label combination).
func (s *Snapshot) Find(name string) []Metric {
	var out []Metric
	for _, m := range s.Metrics {
		if m.Name == name {
			out = append(out, m)
		}
	}
	return out
}

// Value returns the merged value of the named counter or gauge series
// whose labels include every given label, or 0 when absent.
func (s *Snapshot) Value(name string, labels ...Label) float64 {
	for _, m := range s.Metrics {
		if m.Name != name || !labelsMatch(m.Labels, labels) {
			continue
		}
		return m.Value
	}
	return 0
}

func labelsMatch(have, want []Label) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if h == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE comments once per metric name,
// then one sample line per series, with histogram series expanded into
// cumulative _bucket{le=...} samples plus _sum and _count.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	seen := make(map[string]bool)
	for _, m := range s.Metrics {
		if !seen[m.Name] {
			seen[m.Name] = true
			if m.Help != "" {
				bw.WriteString("# HELP " + m.Name + " " + m.Help + "\n")
			}
			bw.WriteString("# TYPE " + m.Name + " " + m.Kind + "\n")
		}
		switch m.Kind {
		case "histogram":
			for _, b := range m.Buckets {
				bw.WriteString(m.Name + "_bucket" + labelString(m.Labels, formatFloat(b.LE)) +
					" " + strconv.FormatUint(b.Count, 10) + "\n")
			}
			bw.WriteString(m.Name + "_bucket" + labelString(m.Labels, "+Inf") +
				" " + strconv.FormatUint(m.Count, 10) + "\n")
			bw.WriteString(m.Name + "_sum" + labelString(m.Labels, "") + " " + formatFloat(m.Sum) + "\n")
			bw.WriteString(m.Name + "_count" + labelString(m.Labels, "") + " " + strconv.FormatUint(m.Count, 10) + "\n")
		default:
			bw.WriteString(m.Name + labelString(m.Labels, "") + " " + formatFloat(m.Value) + "\n")
		}
	}
	return bw.Flush()
}

// labelString renders {k="v",...}, appending le when non-empty; an
// empty label set with no le renders as nothing.
func labelString(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	out := "{"
	for i, l := range labels {
		if i > 0 {
			out += ","
		}
		out += l.Key + `="` + l.Value + `"`
	}
	if le != "" {
		if len(labels) > 0 {
			out += ","
		}
		out += `le="` + le + `"`
	}
	return out + "}"
}

// formatFloat renders floats the way Prometheus expects: shortest
// round-trip representation.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
