package cocomac

import (
	"fmt"
	"math"
	"sort"

	"github.com/cognitive-sim/compass/internal/balance"
	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// Region is one region of the reduced network.
type Region struct {
	// Name is the region acronym (e.g. "V1", "LGN").
	Name string
	// Class is the anatomical division.
	Class Class
	// Children is the number of full-network subregions merged into this
	// region.
	Children int
	// Volume is the relative Paxinos-derived volume; it sets the region's
	// share of neurons/cores.
	Volume float64
	// VolumeImputed records that Volume is the class median rather than an
	// atlas measurement.
	VolumeImputed bool
	// Connected records whether the region reports connections.
	Connected bool
}

// Network is the generated macaque model network.
type Network struct {
	// Seed reproduces the network exactly.
	Seed uint64
	// Regions holds the 102 reduced regions; the first ConnectedRegions
	// entries are the connected ones, in canonical order.
	Regions []Region
	// Adj is the ConnectedRegions×ConnectedRegions binary white-matter
	// adjacency (Adj[i][j] reports a pathway from region i to region j).
	Adj [][]bool
	// fullEdges is the number of directed edges in the underlying full
	// 383-region network.
	fullEdges int
}

// FullEdgeCount returns the directed edge count of the underlying full
// hierarchical network (6,602).
func (n *Network) FullEdgeCount() int { return n.fullEdges }

// ReducedEdgeCount returns the directed edge count among connected
// regions after the merge.
func (n *Network) ReducedEdgeCount() int {
	c := 0
	for i := range n.Adj {
		for j := range n.Adj[i] {
			if n.Adj[i][j] {
				c++
			}
		}
	}
	return c
}

// RegionIndex returns the index of the named region, or -1.
func (n *Network) RegionIndex(name string) int {
	for i := range n.Regions {
		if n.Regions[i].Name == name {
			return i
		}
	}
	return -1
}

// Generate builds the synthetic CoCoMac-statistics network from a seed.
func Generate(seed uint64) *Network {
	r := prng.New(seed)
	n := &Network{Seed: seed}

	// Assemble the 102 reduced regions: 77 connected then 25 isolated.
	for _, e := range connectedRegionNames {
		n.Regions = append(n.Regions, Region{Name: e.name, Class: e.class, Connected: true})
	}
	for _, e := range isolatedRegionNames {
		n.Regions = append(n.Regions, Region{Name: e.name, Class: e.class})
	}

	// Distribute the 383 full-network regions over the 102 parents: every
	// parent owns at least one child; the remaining children are spread
	// with a mild bias toward large visual and prefrontal areas, which is
	// where the anatomical literature subdivides most finely.
	extra := FullRegions - ReducedRegions
	for i := range n.Regions {
		n.Regions[i].Children = 1
	}
	for k := 0; k < extra; k++ {
		// Preferential attachment over current child counts.
		total := 0
		for i := range n.Regions {
			total += n.Regions[i].Children
		}
		pick := r.Intn(total)
		for i := range n.Regions {
			pick -= n.Regions[i].Children
			if pick < 0 {
				n.Regions[i].Children++
				break
			}
		}
	}

	// Volumes: log-normal per class, then impute the 13 missing volumes
	// with the class median.
	for i := range n.Regions {
		reg := &n.Regions[i]
		var mu, sigma float64
		switch reg.Class {
		case Cortical:
			mu, sigma = 0.0, 0.8
		case Thalamic:
			// Thalamic nuclei span a much wider size range than cortical
			// areas; the small tail is what the Figure 3 realizability
			// floor lifts above its raw atlas share.
			mu, sigma = -2.0, 1.2
		default:
			mu, sigma = -1.6, 1.1
		}
		reg.Volume = math.Exp(mu + sigma*r.NormFloat64())
	}
	imputeMedian(n.Regions, Cortical, imputedCortical)
	imputeMedian(n.Regions, Thalamic, imputedThalamic)

	// Generate exactly FullEdges directed child-level edges among children
	// of connected parents, then OR them up to parent level. Child edges
	// are drawn with preferential weights proportional to parent volume ×
	// child count, which yields the heavy-tailed degree distribution of
	// real connectomes. Intra-parent child edges are excluded: local
	// connectivity is modelled by the gray-matter fraction instead.
	n.Adj = make([][]bool, ConnectedRegions)
	for i := range n.Adj {
		n.Adj[i] = make([]bool, ConnectedRegions)
	}
	weights := make([]float64, ConnectedRegions)
	for i := 0; i < ConnectedRegions; i++ {
		weights[i] = n.Regions[i].Volume * float64(n.Regions[i].Children)
	}
	cum := make([]float64, ConnectedRegions)
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	drawRegion := func() int {
		x := r.Float64() * acc
		lo := sort.SearchFloat64s(cum, x)
		if lo >= ConnectedRegions {
			lo = ConnectedRegions - 1
		}
		return lo
	}
	type childEdge struct{ sp, sc, tp, tc int }
	seen := make(map[childEdge]bool, FullEdges)
	for len(seen) < FullEdges {
		sp := drawRegion()
		tp := drawRegion()
		if sp == tp {
			continue
		}
		e := childEdge{
			sp: sp, sc: r.Intn(n.Regions[sp].Children),
			tp: tp, tc: r.Intn(n.Regions[tp].Children),
		}
		if seen[e] {
			continue
		}
		seen[e] = true
		n.Adj[sp][tp] = true
	}
	n.fullEdges = len(seen)

	// Guarantee every connected region has at least one outgoing and one
	// incoming pathway (the 77 regions all "report connections").
	for i := 0; i < ConnectedRegions; i++ {
		hasOut, hasIn := false, false
		for j := 0; j < ConnectedRegions; j++ {
			hasOut = hasOut || n.Adj[i][j]
			hasIn = hasIn || n.Adj[j][i]
		}
		if !hasOut {
			j := drawRegion()
			for j == i {
				j = drawRegion()
			}
			n.Adj[i][j] = true
		}
		if !hasIn {
			j := drawRegion()
			for j == i {
				j = drawRegion()
			}
			n.Adj[j][i] = true
		}
	}
	return n
}

// imputeMedian sets the volume of the named regions of a class to the
// median volume of that class's measured regions.
func imputeMedian(regions []Region, class Class, names map[string]bool) {
	var measured []float64
	for i := range regions {
		if regions[i].Class == class && !names[regions[i].Name] {
			measured = append(measured, regions[i].Volume)
		}
	}
	sort.Float64s(measured)
	med := measured[len(measured)/2]
	if len(measured)%2 == 0 {
		med = (measured[len(measured)/2-1] + measured[len(measured)/2]) / 2
	}
	for i := range regions {
		if regions[i].Class == class && names[regions[i].Name] {
			regions[i].Volume = med
			regions[i].VolumeImputed = true
		}
	}
}

// StochasticMatrix builds the §V-C connection matrix over the connected
// regions: the diagonal carries the gray-matter fraction (0.40 cortical,
// 0.20 otherwise) and each white-matter edge carries weight proportional
// to the source region's volume share, scaled so every row sums to 1.
func (n *Network) StochasticMatrix() [][]float64 {
	k := ConnectedRegions
	m := make([][]float64, k)
	for i := 0; i < k; i++ {
		m[i] = make([]float64, k)
		gray := n.Regions[i].Class.GrayFraction()
		m[i][i] = gray
		deg := 0
		for j := 0; j < k; j++ {
			if n.Adj[i][j] {
				deg++
			}
		}
		if deg == 0 {
			m[i][i] = 1
			continue
		}
		// Distribute the white-matter budget over outgoing edges in
		// proportion to target volume (diffuse, volume-weighted targeting).
		var tv float64
		for j := 0; j < k; j++ {
			if n.Adj[i][j] {
				tv += n.Regions[j].Volume
			}
		}
		for j := 0; j < k; j++ {
			if n.Adj[i][j] {
				m[i][j] = (1 - gray) * n.Regions[j].Volume / tv
			}
		}
	}
	return m
}

// Volumes returns the volume vector of the connected regions.
func (n *Network) Volumes() []float64 {
	v := make([]float64, ConnectedRegions)
	for i := range v {
		v[i] = n.Regions[i].Volume
	}
	return v
}

// BalancedMatrix balances the stochastic matrix to row and column sums
// equal to the region volumes (the IPFP step of §IV–V), guaranteeing that
// all axon and neuron requests can be fulfilled in all regions.
func (n *Network) BalancedMatrix() (*balance.Result, error) {
	return balance.IPFP(n.StochasticMatrix(), n.Volumes(), n.Volumes(), balance.Options{Tol: 1e-9})
}

// AllocationRow is one row of the Figure 3 table: the raw Paxinos-derived
// core allocation of a region versus its allocation after balancing.
type AllocationRow struct {
	Name          string
	Class         Class
	PaxinosCores  int
	BalancedCores int
	OutDegree     int
	Imputed       bool
}

// CoreAllocations computes the Figure 3 comparison for a model with
// totalCores TrueNorth cores: "Paxinos" cores proportional to raw volume,
// "balanced" cores proportional to the balanced matrix row sums (which
// equal the volumes after IPFP normalization of the volume vector itself
// to the total). Every connected region receives at least one core.
func (n *Network) CoreAllocations(totalCores int) ([]AllocationRow, error) {
	if totalCores < ConnectedRegions {
		return nil, fmt.Errorf("cocomac: %d cores cannot cover %d regions", totalCores, ConnectedRegions)
	}
	res, err := n.BalancedMatrix()
	if err != nil {
		return nil, err
	}
	raw := n.Volumes()
	balancedRow := make([]float64, ConnectedRegions)
	for i, row := range res.Matrix {
		s := 0.0
		for _, v := range row {
			s += v
		}
		balancedRow[i] = s
	}
	// The Paxinos column is the raw proportional share (tiny regions can
	// round to zero cores); the balanced column is the realizable
	// allocation: balanced-matrix marginals with a floor of one core per
	// region so every region's axon and neuron requests can be satisfied.
	// In log space (as Figure 3 plots), the difference concentrates in
	// the smallest regions, which the floor lifts.
	pax := apportionCoresFloor(raw, totalCores, 0)
	bal := apportionCoresFloor(balancedRow, totalCores, 1)
	rows := make([]AllocationRow, ConnectedRegions)
	for i := range rows {
		deg := 0
		for j := range n.Adj[i] {
			if n.Adj[i][j] {
				deg++
			}
		}
		rows[i] = AllocationRow{
			Name:          n.Regions[i].Name,
			Class:         n.Regions[i].Class,
			PaxinosCores:  pax[i],
			BalancedCores: bal[i],
			OutDegree:     deg,
			Imputed:       n.Regions[i].VolumeImputed,
		}
	}
	return rows, nil
}

// apportionCoresFloor distributes total cores proportionally to weights
// with a per-region floor, using largest-remainder rounding.
func apportionCoresFloor(weights []float64, total, floor int) []int {
	k := len(weights)
	out := make([]int, k)
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	assigned := 0
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, k)
	for i, w := range weights {
		exact := float64(total) * w / sum
		if exact < float64(floor) {
			exact = float64(floor)
		}
		fl := math.Floor(exact)
		out[i] = int(fl)
		assigned += int(fl)
		rems = append(rems, rem{i, exact - fl})
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; assigned < total && i < len(rems); i++ {
		out[rems[i].idx]++
		assigned++
	}
	// Over-assignment from the one-core floor: trim the largest regions.
	for assigned > total {
		big := 0
		for i := range out {
			if out[i] > out[big] {
				big = i
			}
		}
		if out[big] <= 1 {
			break
		}
		out[big]--
		assigned--
	}
	return out
}

// ToSpec converts the network into a CoreObject description with
// totalCores cores distributed over the connected regions in proportion
// to balanced volume, per-class neuron prototypes, and a stimulus driving
// the LGN (the first stage of the thalamocortical visual stream, as in
// Figure 3 of the paper).
func (n *Network) ToSpec(totalCores int, ticks uint64) (*coreobject.NetworkSpec, error) {
	rows, err := n.CoreAllocations(totalCores)
	if err != nil {
		return nil, err
	}
	spec := &coreobject.NetworkSpec{
		Name: fmt.Sprintf("cocomac-%d", totalCores),
		Seed: n.Seed,
	}
	for i, row := range rows {
		proto := classProto(n.Regions[i].Class)
		spec.Regions = append(spec.Regions, coreobject.RegionSpec{
			Name:         row.Name,
			Cores:        row.BalancedCores,
			GrayFraction: n.Regions[i].Class.GrayFraction(),
			Proto:        proto,
		})
	}
	for i := 0; i < ConnectedRegions; i++ {
		for j := 0; j < ConnectedRegions; j++ {
			if n.Adj[i][j] {
				spec.Connections = append(spec.Connections, coreobject.Connection{
					Src: n.Regions[i].Name,
					Dst: n.Regions[j].Name,
					// Diffuse targeting proportional to target volume.
					Weight: n.Regions[j].Volume,
				})
			}
		}
	}
	lgn := "LGN"
	li := spec.Region(lgn)
	if li < 0 {
		return nil, fmt.Errorf("cocomac: network has no LGN region")
	}
	spec.Inputs = []coreobject.InputSpec{{
		Region:    lgn,
		Cores:     spec.Regions[li].Cores,
		Axons:     64,
		Rate:      0.05,
		StartTick: 0,
		EndTick:   ticks,
	}}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// classProto returns the neuron prototype for a region class, tuned so
// the network settles near the paper's ~8 Hz average firing rate under
// LGN drive.
func classProto(c Class) coreobject.NeuronProto {
	p := coreobject.DefaultProto()
	switch c {
	case Cortical:
		p.Weights = [truenorth.NumAxonTypes]int16{2, 2, 3, -6}
		p.ThresholdMin, p.ThresholdMax = 6, 16
		p.SynapseDensity = 0.10
		p.InhibitoryFraction = 0.25
	case Thalamic:
		p.Weights = [truenorth.NumAxonTypes]int16{3, 2, 3, -4}
		p.ThresholdMin, p.ThresholdMax = 4, 10
		p.SynapseDensity = 0.12
		p.InhibitoryFraction = 0.15
	case BasalGanglia:
		p.Weights = [truenorth.NumAxonTypes]int16{2, 2, 2, -5}
		p.ThresholdMin, p.ThresholdMax = 6, 14
		p.SynapseDensity = 0.08
		p.InhibitoryFraction = 0.25
	}
	p.Leak = -1
	p.Floor = -128
	p.DelayMin, p.DelayMax = 1, 3
	return p
}
