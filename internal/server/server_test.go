package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	sim "github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/spikeio"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// testModel mirrors internal/compass's randomModel helper: a
// deterministic stochastic-free network with sustained input drive, so
// every run of the same seed is bit-identical.
func testModel(nCores int, seed uint64) *truenorth.Model {
	r := prng.New(seed)
	m := &truenorth.Model{Seed: seed}
	for k := 0; k < nCores; k++ {
		cfg := &truenorth.CoreConfig{ID: truenorth.CoreID(k)}
		for a := 0; a < truenorth.CoreSize; a++ {
			cfg.AxonTypes[a] = uint8(r.Intn(truenorth.NumAxonTypes))
			for s := 0; s < 8; s++ {
				cfg.SetSynapse(a, r.Intn(truenorth.CoreSize), true)
			}
		}
		for j := 0; j < truenorth.CoreSize; j++ {
			cfg.Neurons[j] = truenorth.NeuronParams{
				Weights:   [truenorth.NumAxonTypes]int16{2, 1, 3, -1},
				Leak:      -1,
				Threshold: int32(3 + r.Intn(6)),
				Reset:     0,
				Floor:     -32,
				Target: truenorth.SpikeTarget{
					Core:  truenorth.CoreID(r.Intn(nCores)),
					Axon:  uint16(r.Intn(truenorth.CoreSize)),
					Delay: uint8(1 + r.Intn(3)),
				},
				Enabled: true,
			}
		}
		m.Cores = append(m.Cores, cfg)
	}
	for tick := uint64(0); tick < 30; tick++ {
		for a := 0; a < 64; a++ {
			m.Inputs = append(m.Inputs, truenorth.InputSpike{
				Tick: tick,
				Core: truenorth.CoreID(int(tick) % nCores),
				Axon: uint16(r.Intn(truenorth.CoreSize)),
			})
		}
	}
	return m
}

// ckptBytes serializes a checkpoint for bit-identity comparison.
func ckptBytes(t *testing.T, cp *truenorth.Checkpoint) []byte {
	t.Helper()
	if cp == nil {
		t.Fatal("nil checkpoint")
	}
	var buf bytes.Buffer
	if err := coreobject.WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// refFinal runs the simulation in one uninterrupted shot and returns
// the final checkpoint — the reference for resume-equivalence tests.
func refFinal(t *testing.T, m *truenorth.Model, cfg sim.Config, ticks int) *truenorth.Checkpoint {
	t.Helper()
	cfg.ReturnState = true
	stats, err := sim.Run(m, cfg, ticks)
	if err != nil {
		t.Fatal(err)
	}
	return stats.Final
}

func sortWire(events []spikeio.Event) {
	sort.Slice(events, func(a, b int) bool {
		if events[a].Tick != events[b].Tick {
			return events[a].Tick < events[b].Tick
		}
		if events[a].Core != events[b].Core {
			return events[a].Core < events[b].Core
		}
		return events[a].Axon < events[b].Axon
	})
}

func traceToWire(trace []truenorth.SpikeEvent) []spikeio.Event {
	out := make([]spikeio.Event, len(trace))
	for i, ev := range trace {
		out[i] = spikeio.Event{Tick: ev.FireTick, Core: ev.Target.Core, Axon: ev.Target.Axon}
	}
	return out
}

func startTestServer(t *testing.T, opts ManagerOptions) *Server {
	t.Helper()
	srv := New(Options{HTTPAddr: "127.0.0.1:0", StreamAddr: "127.0.0.1:0", Manager: opts})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(testContext(t, 30*time.Second)) })
	return srv
}

func testContext(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// TestConcurrentSessionsStreaming is the acceptance race test: at least
// eight sessions, spread across all three transports, run concurrently
// with live inject+subscribe streams attached to each.
func TestConcurrentSessionsStreaming(t *testing.T) {
	srv := startTestServer(t, ManagerOptions{
		CapacitySecondsPerTick: 1e9,
		MaxRunning:             32,
		ChunkTicks:             10,
	})
	transports := []sim.Transport{sim.TransportMPI, sim.TransportPGAS, sim.TransportShmem}
	const perTransport = 3 // 9 sessions total
	type outcome struct {
		id       string
		received uint64
		err      error
	}
	// Create every session parked, attach a stream to each, then release
	// them all so the whole fleet runs concurrently with live streams.
	var sessions []*Session
	for ti, tr := range transports {
		for i := 0; i < perTransport; i++ {
			m := testModel(4, uint64(100+ti*10+i))
			s, err := srv.Manager().Create(CreateParams{
				Name:        fmt.Sprintf("%s-%d", tr, i),
				Model:       m,
				Cfg:         sim.Config{Ranks: 2, ThreadsPerRank: 2, Transport: tr},
				Ticks:       60,
				StartPaused: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			sessions = append(sessions, s)
		}
	}
	results := make(chan outcome, len(sessions))
	var wg sync.WaitGroup
	for _, s := range sessions {
		c, err := DialStream(srv.StreamAddr(), s.ID, StreamFlagInject|StreamFlagSubscribe)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id string, c *StreamClient) {
			defer wg.Done()
			defer c.Close()
			out := outcome{id: id}
			defer func() { results <- out }()
			// Inject a few live spikes, then half-close: egress must
			// keep flowing afterwards.
			if err := c.Send([]spikeio.Event{
				{Tick: 40, Core: 0, Axon: 1},
				{Tick: 41, Core: 1, Axon: 2},
			}); err != nil {
				out.err = err
				return
			}
			if err := c.CloseWrite(); err != nil {
				out.err = err
				return
			}
			for {
				frame, err := c.Recv()
				if err == io.EOF {
					return
				}
				if err != nil {
					out.err = err
					return
				}
				out.received += uint64(len(frame))
			}
		}(s.ID, c)
	}
	for _, s := range sessions {
		if err := s.Resume(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(results)
	received := make(map[string]uint64)
	for out := range results {
		if out.err != nil {
			t.Errorf("session %s: stream error: %v", out.id, out.err)
		}
		received[out.id] = out.received
	}
	for _, s := range sessions {
		if !s.WaitState(60*time.Second, func(st State) bool { return st == StateDone }) {
			t.Errorf("session %s: state %s, want done (err %v)", s.ID, s.State(), s.Err())
			continue
		}
		info := s.Info()
		if info.Injected != 2 {
			t.Errorf("session %s: injected %d spikes, want 2", s.ID, info.Injected)
		}
		if info.Totals.Spikes == 0 {
			t.Errorf("session %s: fired no spikes", s.ID)
		}
		// The subscriber was attached before the first tick, so absent
		// drop-oldest eviction it must see every fired spike.
		if want := info.Totals.Spikes - info.StreamDrops; received[s.ID] != want {
			t.Errorf("session %s: subscriber received %d of %d spikes (%d dropped)",
				s.ID, received[s.ID], info.Totals.Spikes, info.StreamDrops)
		}
	}
}

// TestStreamInjectionEquivalence: spikes injected over the wire before
// the session starts produce the exact trace and bit-identical final
// state of the same spikes pre-scheduled in Model.Inputs.
func TestStreamInjectionEquivalence(t *testing.T) {
	srv := startTestServer(t, ManagerOptions{
		CapacitySecondsPerTick: 1e9,
		ChunkTicks:             10,
	})
	mgr := srv.Manager()

	const ticks = 60
	ref := testModel(4, 11)
	streamed := &truenorth.Model{Seed: ref.Seed, Cores: ref.Cores}
	cfg := sim.Config{Ranks: 2, ThreadsPerRank: 2, Transport: sim.TransportMPI}

	target, err := mgr.Create(CreateParams{
		Name: "target", Model: streamed, Cfg: cfg, Ticks: ticks, StartPaused: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	c, err := DialStream(srv.StreamAddr(), target.ID, StreamFlagInject|StreamFlagSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	inject := make([]spikeio.Event, len(ref.Inputs))
	for i, in := range ref.Inputs {
		inject[i] = spikeio.Event{Tick: in.Tick, Core: in.Core, Axon: in.Axon}
	}
	if err := c.Send(inject); err != nil {
		t.Fatal(err)
	}
	// The frame lands asynchronously; wait until the session has
	// accepted every spike before letting it run.
	deadline := time.Now().Add(10 * time.Second)
	for target.Info().Injected != uint64(len(inject)) {
		if time.Now().After(deadline) {
			t.Fatalf("injected %d of %d spikes", target.Info().Injected, len(inject))
		}
		time.Sleep(time.Millisecond)
	}

	if err := target.Resume(); err != nil {
		t.Fatal(err)
	}
	var received []spikeio.Event
	for {
		frame, err := c.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		received = append(received, frame...)
	}
	if !target.WaitState(60*time.Second, func(st State) bool { return st == StateDone }) {
		t.Fatalf("target state %s, want done (err %v)", target.State(), target.Err())
	}
	if drops := target.Info().StreamDrops; drops != 0 {
		t.Fatalf("stream dropped %d records; equivalence check needs a lossless run", drops)
	}

	refCfg := cfg
	refCfg.RecordTrace = true
	refCfg.ReturnState = true
	stats, err := sim.Run(ref, refCfg, ticks)
	if err != nil {
		t.Fatal(err)
	}
	want := traceToWire(stats.Trace)
	sortWire(want)
	sortWire(received)
	if len(received) != len(want) {
		t.Fatalf("streamed run fired %d spikes, scheduled fired %d", len(received), len(want))
	}
	for i := range want {
		if received[i] != want[i] {
			t.Fatalf("event %d: streamed %+v, scheduled %+v", i, received[i], want[i])
		}
	}
	if !bytes.Equal(ckptBytes(t, target.Checkpoint()), ckptBytes(t, stats.Final)) {
		t.Fatal("final checkpoint differs between streamed and scheduled runs")
	}
}

// TestCheckpointResumeEquivalence: a session resumed in a second
// session from the first one's checkpoint reaches a final state
// bit-identical to one uninterrupted run.
func TestCheckpointResumeEquivalence(t *testing.T) {
	mgr := NewManager(ManagerOptions{CapacitySecondsPerTick: 1e9, ChunkTicks: 10})
	m := testModel(4, 7)
	cfg := sim.Config{Ranks: 2, ThreadsPerRank: 2, Transport: sim.TransportShmem}

	first, err := mgr.Create(CreateParams{Model: m, Cfg: cfg, Ticks: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !first.WaitState(60*time.Second, func(st State) bool { return st == StateDone }) {
		t.Fatalf("first session state %s, want done (err %v)", first.State(), first.Err())
	}
	cp := first.Checkpoint()
	if cp.Tick != 20 {
		t.Fatalf("checkpoint tick %d, want 20", cp.Tick)
	}

	second, err := mgr.Create(CreateParams{Model: m, Cfg: cfg, Ticks: 40, StartFrom: cp})
	if err != nil {
		t.Fatal(err)
	}
	if !second.WaitState(60*time.Second, func(st State) bool { return st == StateDone }) {
		t.Fatalf("second session state %s, want done (err %v)", second.State(), second.Err())
	}
	final := second.Checkpoint()
	if final.Tick != 60 {
		t.Fatalf("final tick %d, want 60", final.Tick)
	}
	want := refFinal(t, m, cfg, 60)
	if !bytes.Equal(ckptBytes(t, final), ckptBytes(t, want)) {
		t.Fatal("resumed session's final state differs from uninterrupted run")
	}
	if di := second.Info().Totals.DroppedInputs; di != 0 {
		t.Fatalf("resume recounted %d purged model inputs as dropped", di)
	}
}

// TestPauseResumeStopLifecycle drives the control-plane state machine:
// pause parks at a chunk boundary, resume releases, stop cancels with
// context.Canceled surfaced as the session error.
func TestPauseResumeStopLifecycle(t *testing.T) {
	mgr := NewManager(ManagerOptions{CapacitySecondsPerTick: 1e9, ChunkTicks: 5})
	s, err := mgr.Create(CreateParams{
		Model: testModel(4, 13),
		Cfg:   sim.Config{Ranks: 2, ThreadsPerRank: 2, Transport: sim.TransportPGAS},
		Ticks: 1 << 40, // never finishes on its own
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	if !s.WaitState(60*time.Second, func(st State) bool { return st == StatePaused }) {
		t.Fatalf("state %s, want paused", s.State())
	}
	cp := s.Checkpoint()
	if cp == nil || cp.Tick%5 != 0 {
		t.Fatalf("paused checkpoint not at a chunk boundary: %+v", cp)
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	if !s.WaitState(60*time.Second, func(st State) bool { return st == StateRunning }) {
		t.Fatalf("state %s after resume, want running", s.State())
	}
	if err := mgr.Stop(s.ID); err != nil {
		t.Fatal(err)
	}
	if !s.WaitState(60*time.Second, func(st State) bool { return st == StateCancelled }) {
		t.Fatalf("state %s after stop, want cancelled", s.State())
	}
	if !errors.Is(s.Err(), context.Canceled) {
		t.Fatalf("session error %v, want context.Canceled", s.Err())
	}
	if err := s.Pause(); err == nil {
		t.Fatal("pause on a terminal session succeeded")
	}
}

// TestBackpressureDropAccounting: a subscriber that never drains its
// queue loses exactly (emitted - capacity) records to drop-oldest
// eviction, and the loss is counted in both the session status and the
// per-session Prometheus counter.
func TestBackpressureDropAccounting(t *testing.T) {
	const queueCap = 64
	mgr := NewManager(ManagerOptions{
		CapacitySecondsPerTick: 1e9,
		ChunkTicks:             10,
		SubscriberQueue:        queueCap,
	})
	s, err := mgr.Create(CreateParams{
		Model:       testModel(4, 17),
		Cfg:         sim.Config{Ranks: 2, ThreadsPerRank: 2, Transport: sim.TransportShmem},
		Ticks:       40,
		StartPaused: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe before the first tick, then never drain the queue.
	sub := s.sink.subscribe()
	_ = sub
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	if !s.WaitState(60*time.Second, func(st State) bool { return st == StateDone }) {
		t.Fatalf("state %s, want done (err %v)", s.State(), s.Err())
	}
	info := s.Info()
	if info.Totals.Spikes <= queueCap {
		t.Fatalf("only %d spikes fired; cannot overflow a %d-record queue", info.Totals.Spikes, queueCap)
	}
	wantDrops := info.Totals.Spikes - queueCap
	if info.StreamDrops != wantDrops {
		t.Fatalf("StreamDrops = %d, want %d (spikes %d, queue %d)",
			info.StreamDrops, wantDrops, info.Totals.Spikes, queueCap)
	}
	var buf bytes.Buffer
	mgr.MetricsSnapshot().WritePrometheus(&buf)
	text := buf.String()
	if !strings.Contains(text, "compassd_stream_dropped_records_total") ||
		!strings.Contains(text, s.ID) {
		t.Fatalf("metrics exposition missing per-session drop counter:\n%s", text)
	}
}

// TestAdmissionControl: sessions costing more than the whole budget are
// rejected outright; sessions that merely don't fit queue FIFO and
// promote when capacity frees.
func TestAdmissionControl(t *testing.T) {
	m := testModel(4, 5)
	cfg := sim.Config{Ranks: 2, ThreadsPerRank: 2, Transport: sim.TransportMPI}
	cost := EstimateCostPerTick(len(m.Cores), cfg.Ranks, cfg.ThreadsPerRank, cfg.Transport)
	if cost <= 0 {
		t.Fatalf("EstimateCostPerTick = %g, want > 0", cost)
	}

	// A budget below one session's cost rejects immediately.
	tight := NewManager(ManagerOptions{CapacitySecondsPerTick: cost / 2})
	if _, err := tight.Create(CreateParams{Model: m, Cfg: cfg, Ticks: 10}); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("err = %v, want ErrOverCapacity", err)
	}

	// A budget fitting one session queues the second.
	mgr := NewManager(ManagerOptions{CapacitySecondsPerTick: cost * 1.5, ChunkTicks: 10})
	first, err := mgr.Create(CreateParams{Model: m, Cfg: cfg, Ticks: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	second, err := mgr.Create(CreateParams{Model: testModel(4, 6), Cfg: cfg, Ticks: 20})
	if err != nil {
		t.Fatal(err)
	}
	if st := second.State(); st != StateQueued {
		t.Fatalf("second session state %s, want queued", st)
	}
	if running, queued, total := mgr.Counts(); running != 1 || queued != 1 || total != 2 {
		t.Fatalf("counts = (%d running, %d queued, %d total), want (1, 1, 2)", running, queued, total)
	}

	// Stopping a queued session cancels it in place.
	third, err := mgr.Create(CreateParams{Model: testModel(4, 8), Cfg: cfg, Ticks: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Stop(third.ID); err != nil {
		t.Fatal(err)
	}
	if st := third.State(); st != StateCancelled {
		t.Fatalf("stopped queued session state %s, want cancelled", st)
	}

	// Freeing the running session promotes the queued one.
	if err := mgr.Stop(first.ID); err != nil {
		t.Fatal(err)
	}
	if !second.WaitState(60*time.Second, func(st State) bool { return st == StateDone }) {
		t.Fatalf("promoted session state %s, want done (err %v)", second.State(), second.Err())
	}
}

// TestGracefulShutdownDrains: Shutdown parks every session at a chunk
// boundary, writes each checkpoint file, and a fresh session resumed
// from that file matches the uninterrupted run bit-for-bit.
func TestGracefulShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	srv := New(Options{
		HTTPAddr:      "127.0.0.1:0",
		StreamAddr:    "127.0.0.1:0",
		CheckpointDir: dir,
		Manager:       ManagerOptions{CapacitySecondsPerTick: 1e9, ChunkTicks: 10},
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	m := testModel(4, 21)
	cfg := sim.Config{Ranks: 2, ThreadsPerRank: 2, Transport: sim.TransportShmem}
	s, err := srv.Manager().Create(CreateParams{Name: "drainee", Model: m, Cfg: cfg, Ticks: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one chunk complete so the drained checkpoint is
	// mid-run, not the initial snapshot.
	deadline := time.Now().Add(30 * time.Second)
	for s.Info().TicksDone == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Shutdown(testContext(t, 30*time.Second)); err != nil {
		t.Fatal(err)
	}
	if st := s.State(); st != StateDrained {
		t.Fatalf("state %s after shutdown, want drained", st)
	}

	path := filepath.Join(dir, s.ID+".ckpt")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("drained checkpoint file: %v", err)
	}
	cp, err := coreobject.ReadCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Tick == 0 || cp.Tick%10 != 0 {
		t.Fatalf("drained checkpoint at tick %d, want a positive chunk boundary", cp.Tick)
	}

	// Resume in a fresh manager (a successor daemon) for 30 more ticks.
	mgr2 := NewManager(ManagerOptions{CapacitySecondsPerTick: 1e9, ChunkTicks: 10})
	resumed, err := mgr2.Create(CreateParams{Model: m, Cfg: cfg, Ticks: 30, StartFrom: cp})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.WaitState(60*time.Second, func(st State) bool { return st == StateDone }) {
		t.Fatalf("resumed state %s, want done (err %v)", resumed.State(), resumed.Err())
	}
	want := refFinal(t, m, cfg, int(cp.Tick)+30)
	if !bytes.Equal(ckptBytes(t, resumed.Checkpoint()), ckptBytes(t, want)) {
		t.Fatal("resumed-from-file final state differs from uninterrupted run")
	}
}

// TestHTTPAPI exercises the control plane end to end over real HTTP.
func TestHTTPAPI(t *testing.T) {
	srv := startTestServer(t, ManagerOptions{CapacitySecondsPerTick: 1e9, ChunkTicks: 10})
	base := "http://" + srv.HTTPAddr()

	// Encode a model for the "model" source kind.
	m := testModel(4, 33)
	var mbuf bytes.Buffer
	if err := coreobject.WriteModel(&mbuf, m); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{
		"name":      "http-session",
		"source":    map[string]any{"kind": "model", "model_base64": base64.StdEncoding.EncodeToString(mbuf.Bytes())},
		"ranks":     2,
		"threads":   2,
		"transport": "pgas",
		"ticks":     40,
	})
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("create: status %d: %s", resp.StatusCode, msg)
	}
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.ID == "" || info.Transport != "pgas" || info.Ranks != 2 {
		t.Fatalf("created session info %+v", info)
	}

	getJSON := func(path string, v any) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if v != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	var health struct {
		Status   string         `json:"status"`
		Sessions map[string]int `json:"sessions"`
	}
	if code := getJSON("/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: code %d, body %+v", code, health)
	}
	if health.Sessions["total"] != 1 {
		t.Fatalf("healthz sessions %+v, want total 1", health.Sessions)
	}
	var list struct {
		Sessions []Info `json:"sessions"`
	}
	if code := getJSON("/v1/sessions", &list); code != http.StatusOK || len(list.Sessions) != 1 || list.Sessions[0].ID != info.ID {
		t.Fatalf("list: code %d, body %+v", code, list)
	}

	// Poll status until the session finishes.
	deadline := time.Now().Add(60 * time.Second)
	for {
		var cur Info
		if code := getJSON("/v1/sessions/"+info.ID, &cur); code != http.StatusOK {
			t.Fatalf("status: code %d", code)
		} else if cur.State == "done" {
			break
		} else if cur.State == "failed" || cur.State == "cancelled" {
			t.Fatalf("session ended %s: %s", cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("session did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Download and parse the final checkpoint.
	resp, err = http.Get(base + "/v1/sessions/" + info.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Compass-Checkpoint-Tick"); got != "40" {
		t.Fatalf("checkpoint tick header %q, want 40", got)
	}
	cp, err := coreobject.ReadCheckpoint(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Tick != 40 {
		t.Fatalf("downloaded checkpoint tick %d, want 40", cp.Tick)
	}

	// Metrics exposition includes server counters and session labels.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "compassd_sessions_created_total") {
		t.Fatalf("metrics missing server counters:\n%s", text)
	}

	// Error paths: unknown id, bad body, unknown stream session.
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/sessions/nope/pause", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pause unknown: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d, want 400", resp.StatusCode)
	}
	if _, err := DialStream(srv.StreamAddr(), "nope", StreamFlagSubscribe); err == nil ||
		!strings.Contains(err.Error(), "no such session") {
		t.Fatalf("dial unknown session: err %v, want rejection naming the session", err)
	}

	// DELETE removes the session.
	req, _ = http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+info.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", resp.StatusCode)
	}
	if code := getJSON("/v1/sessions/"+info.ID, nil); code != http.StatusNotFound {
		t.Fatalf("status after delete: code %d, want 404", code)
	}
}

// TestWaitInjectedBarrier: the step barrier that makes closed-loop
// clients race-free. A stream Send travels on a different connection
// than the step POST, so the server must be able to hold a step until
// the client's cumulative inject count has been ingested.
func TestWaitInjectedBarrier(t *testing.T) {
	srv := startTestServer(t, ManagerOptions{
		CapacitySecondsPerTick: 1e9,
		ChunkTicks:             10,
	})
	s, err := srv.Manager().Create(CreateParams{
		Name:  "barrier",
		Model: &truenorth.Model{Seed: 3, Cores: testModel(2, 3).Cores},
		Cfg:   sim.Config{Ranks: 1, ThreadsPerRank: 1, Transport: sim.TransportShmem},
		Ticks: 100, StartPaused: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Nothing injected yet: a zero floor passes, a positive one times out.
	if err := s.WaitInjected(0, time.Second); err != nil {
		t.Fatalf("WaitInjected(0): %v", err)
	}
	if err := s.WaitInjected(3, 50*time.Millisecond); err == nil {
		t.Fatal("WaitInjected(3) succeeded with an empty stream")
	}

	c, err := DialStream(srv.StreamAddr(), s.ID, StreamFlagInject)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]spikeio.Event{{Tick: 5, Core: 0, Axon: 1}, {Tick: 6, Core: 1, Axon: 2}, {Tick: 7, Core: 0, Axon: 3}}); err != nil {
		t.Fatal(err)
	}
	// The frame is in flight on another connection; the barrier must
	// absorb the race.
	if err := s.WaitInjected(3, 10*time.Second); err != nil {
		t.Fatalf("WaitInjected(3) after send: %v", err)
	}
	if got := s.Info().Injected; got != 3 {
		t.Fatalf("info reports %d injected, want 3", got)
	}
}
