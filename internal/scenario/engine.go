package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/server"
	"github.com/cognitive-sim/compass/internal/spikeio"
)

// Client drives scenario sessions over a compassd control plane. It
// speaks both serving surfaces: a single daemon (/v1/sessions) and a
// cluster coordinator (/v1/cluster/sessions) — Dial probes /healthz and
// adapts to whichever answers, so every caller is cluster-transparent.
type Client struct {
	addr       string
	streamAddr string
	cluster    bool
	hc         *http.Client
}

// Dial probes a compassd or coordinator control plane and returns a
// client bound to it.
func Dial(addr string) (*Client, error) {
	c := &Client{addr: addr, hc: &http.Client{Timeout: 120 * time.Second}}
	var h struct {
		Role       string `json:"role"`
		StreamAddr string `json:"stream_addr"`
	}
	if err := c.doJSON(http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, fmt.Errorf("scenario: probe %s: %w", addr, err)
	}
	c.cluster = h.Role == "coordinator"
	c.streamAddr = h.StreamAddr
	if c.streamAddr == "" {
		return nil, fmt.Errorf("scenario: %s advertises no stream plane", addr)
	}
	return c, nil
}

// Cluster reports whether the client is bound to a coordinator.
func (c *Client) Cluster() bool { return c.cluster }

// StreamAddr returns the bound stream plane address.
func (c *Client) StreamAddr() string { return c.streamAddr }

func (c *Client) base() string {
	if c.cluster {
		return "/v1/cluster/sessions"
	}
	return "/v1/sessions"
}

func (c *Client) doJSON(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, "http://"+c.addr+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env struct {
			Error string `json:"error"`
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(raw, &env) == nil && env.Error != "" {
			return fmt.Errorf("scenario: %s: %s", c.addr, env.Error)
		}
		return fmt.Errorf("scenario: %s: %s", c.addr, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeSession reads both serving surfaces' session documents: a
// daemon returns server.Info inline, a coordinator wraps it in a
// SessionStatus with the cluster-stable ID.
func decodeSession(raw json.RawMessage) (string, *server.Info, error) {
	var env struct {
		ClusterID string       `json:"cluster_id"`
		Info      *server.Info `json:"info"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		return "", nil, err
	}
	if env.ClusterID != "" {
		return env.ClusterID, env.Info, nil
	}
	var info server.Info
	if err := json.Unmarshal(raw, &info); err != nil {
		return "", nil, err
	}
	return info.ID, &info, nil
}

// Create admits a scenario session and returns its (cluster-stable)
// session ID and initial info.
func (c *Client) Create(req *server.CreateRequest) (string, *server.Info, error) {
	var raw json.RawMessage
	if err := c.doJSON(http.MethodPost, c.base(), req, &raw); err != nil {
		return "", nil, err
	}
	return decodeSession(raw)
}

// Step grants the session exactly ticks further ticks and returns after
// they have simulated (the session parks at the boundary). minInjected,
// when nonzero, is the inject barrier: the daemon holds the grant until
// the session has ingested that many streamed spikes, closing the race
// between the stream connection and this control-plane call.
func (c *Client) Step(id string, ticks, minInjected uint64) (*server.Info, error) {
	var raw json.RawMessage
	req := server.StepRequest{Ticks: ticks, MinInjected: minInjected}
	if err := c.doJSON(http.MethodPost, c.base()+"/"+id+"/step", &req, &raw); err != nil {
		return nil, err
	}
	_, info, err := decodeSession(raw)
	return info, err
}

// Info fetches the session's status document.
func (c *Client) Info(id string) (*server.Info, error) {
	var raw json.RawMessage
	if err := c.doJSON(http.MethodGet, c.base()+"/"+id, nil, &raw); err != nil {
		return nil, err
	}
	_, info, err := decodeSession(raw)
	return info, err
}

// ScenarioReport folds episode progress into the serving daemon's
// per-scenario telemetry.
func (c *Client) ScenarioReport(id string, req *server.ScenarioReportRequest) error {
	return c.doJSON(http.MethodPost, c.base()+"/"+id+"/scenario-report", req, nil)
}

// Remove stops and deletes the session.
func (c *Client) Remove(id string) error {
	return c.doJSON(http.MethodDelete, c.base()+"/"+id, nil, nil)
}

// DialStream opens the session's spike stream with the given flags.
func (c *Client) DialStream(id string, flags byte) (*server.StreamClient, error) {
	return server.DialStream(c.streamAddr, id, flags)
}

// RunOptions parameterize one scenario run.
type RunOptions struct {
	// Episodes and Steps override the spec defaults when > 0.
	Episodes int
	Steps    int
	// Seed seeds the task, its encoders, and the model build.
	Seed uint64
	// Transport names the session's decomposition transport ("" =
	// server default). Ranks is pinned to 1: the engine's stepping
	// sentinel relies on single-rank egress being tick-ordered.
	Transport string
	// Name labels the session (defaults to "scenario-<name>").
	Name string
	// Report, when set, posts per-episode scenario reports to the
	// serving daemon's telemetry.
	Report bool
	// StepTimeout bounds the wait for one window's egress (default 60s).
	StepTimeout time.Duration
	// KeepSession leaves the session in place after the run (the smoke
	// tool reads its Info afterwards); by default the engine removes it.
	KeepSession bool
}

// Result is one completed scenario run.
type Result struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Episodes int    `json:"episodes"`
	Steps    int    `json:"steps"`
	Score    Score  `json:"score"`
	// InjectHash is the SHA-256 of the wire-encoded inject stream — the
	// determinism fingerprint (same seed ⇒ same hash, everywhere).
	InjectHash string `json:"inject_hash"`
	// Injected is the full recorded inject stream, in send order.
	Injected []spikeio.Event `json:"-"`
	// StepRTTs are the client-observed inject→decision round trips, one
	// per decision step, in seconds.
	StepRTTs []float64 `json:"-"`
	// Elapsed is the wall-clock for the whole run.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// SessionID is the session driven (cluster-stable through a
	// coordinator); Info its final status document when available.
	SessionID string       `json:"session_id"`
	Info      *server.Info `json:"info,omitempty"`
}

// RTTPercentile reads the q-quantile of the step round trips.
func (r *Result) RTTPercentile(q float64) float64 {
	if len(r.StepRTTs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), r.StepRTTs...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// HashEvents fingerprints a spike stream: the SHA-256 of its records in
// CSPK wire encoding, in order.
func HashEvents(events []spikeio.Event) string {
	h := sha256.New()
	var rec [spikeio.RecordSize]byte
	for _, ev := range events {
		spikeio.EncodeRecord(rec[:], ev)
		h.Write(rec[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Run executes a scenario against a live serving surface in lock-step:
// for every decision window it injects the task's stimulus, steps the
// session exactly WindowTicks, drains egress until the window's
// sentinel tick appears, decodes, and feeds the verdict back to the
// task. Determinism: with ranks=1 the egress stream is tick-ordered and
// the frozen-batch inject contract makes streamed spikes land exactly
// at their stamped ticks, so the spike-level trajectory equals a direct
// compass.Run over the same inject stream (Replay pins this).
func Run(c *Client, spec *Spec, opts RunOptions) (*Result, error) {
	task, err := spec.New(opts.Seed)
	if err != nil {
		return nil, err
	}
	w := task.Wiring()
	episodes := opts.Episodes
	if episodes <= 0 {
		episodes = spec.Episodes
	}
	steps := opts.Steps
	if steps <= 0 {
		steps = spec.Steps
	}
	name := opts.Name
	if name == "" {
		name = "scenario-" + spec.Name
	}
	stepTimeout := opts.StepTimeout
	if stepTimeout <= 0 {
		stepTimeout = 60 * time.Second
	}

	var modelBuf bytes.Buffer
	if err := coreobject.WriteModel(&modelBuf, w.Model); err != nil {
		return nil, fmt.Errorf("scenario: encode model: %w", err)
	}
	totalTicks := uint64(episodes) * uint64(steps) * spec.WindowTicks
	id, _, err := c.Create(&server.CreateRequest{
		Name:        name,
		Source:      server.SourceSpec{Kind: "model", ModelBase64: base64.StdEncoding.EncodeToString(modelBuf.Bytes())},
		Ranks:       1,
		Transport:   opts.Transport,
		Ticks:       totalTicks,
		ChunkTicks:  int(spec.WindowTicks),
		StartPaused: true,
		Scenario:    spec.Name,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Scenario: spec.Name, Seed: opts.Seed, Episodes: episodes, Steps: steps, SessionID: id}
	if !opts.KeepSession {
		defer c.Remove(id)
	}

	stream, err := c.DialStream(id, server.StreamFlagInject|server.StreamFlagSubscribe)
	if err != nil {
		return nil, fmt.Errorf("scenario: dial stream: %w", err)
	}
	defer stream.Close()

	// The reader goroutine drains egress into a channel so the sentinel
	// wait can time out instead of blocking forever on a wedged stream.
	batches := make(chan []spikeio.Event, 64)
	readErr := make(chan error, 1)
	go func() {
		defer close(batches)
		for {
			evs, err := stream.Recv()
			if err != nil {
				if err != io.EOF {
					readErr <- err
				}
				return
			}
			batches <- evs
		}
	}()

	started := time.Now()
	var egress []spikeio.Event
	cursor := uint64(0)
	for ep := 0; ep < episodes; ep++ {
		task.Reset(ep)
		before := task.Score()
		for st := 0; st < steps; st++ {
			start := cursor
			events, err := task.Emit(st, start)
			if err != nil {
				return nil, fmt.Errorf("scenario: %s episode %d step %d: %w", spec.Name, ep, st, err)
			}
			t0 := time.Now()
			if len(events) > 0 {
				if err := stream.Send(events); err != nil {
					return nil, fmt.Errorf("scenario: inject: %w", err)
				}
				res.Injected = append(res.Injected, events...)
			}
			if _, err := c.Step(id, spec.WindowTicks, uint64(len(res.Injected))); err != nil {
				return nil, fmt.Errorf("scenario: step: %w", err)
			}
			// Sentinel: with ranks=1 egress arrives in tick order and the
			// model's pacemaker fires every tick, so the first record at or
			// past the guard boundary proves the decode window is complete.
			sentinel := spec.DecideEnd(start)
			egress, err = drainUntil(batches, readErr, egress, sentinel, stepTimeout)
			if err != nil {
				return nil, fmt.Errorf("scenario: %s episode %d step %d: %w", spec.Name, ep, st, err)
			}
			res.StepRTTs = append(res.StepRTTs, time.Since(t0).Seconds())

			d := decideWindow(w, egress, start, sentinel)
			if d.Action >= 0 {
				d.FirstTick -= start // tasks see window-relative latency
			}
			task.Feedback(st, d)

			// Records below the next window's start are decided history.
			egress = trimBelow(egress, start+spec.WindowTicks)
			cursor += spec.WindowTicks
		}
		if opts.Report {
			after := task.Score()
			_ = c.ScenarioReport(id, &server.ScenarioReportRequest{
				Scenario: spec.Name,
				Episodes: 1,
				Steps:    uint64(steps),
				Reward:   after.Reward - before.Reward,
			})
		}
	}
	res.Score = task.Score()
	res.InjectHash = HashEvents(res.Injected)
	res.ElapsedSeconds = time.Since(started).Seconds()
	if info, err := c.Info(id); err == nil {
		res.Info = info
	}
	return res, nil
}

// drainUntil appends egress batches until a record with Tick >=
// sentinel arrives (tick order makes every earlier tick complete).
func drainUntil(batches <-chan []spikeio.Event, readErr <-chan error, buf []spikeio.Event, sentinel uint64, timeout time.Duration) ([]spikeio.Event, error) {
	for _, ev := range buf {
		if ev.Tick >= sentinel {
			return buf, nil
		}
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case evs, ok := <-batches:
			if !ok {
				select {
				case err := <-readErr:
					return buf, fmt.Errorf("egress stream failed: %w", err)
				default:
					return buf, fmt.Errorf("egress stream closed before tick %d arrived", sentinel)
				}
			}
			buf = append(buf, evs...)
			for _, ev := range evs {
				if ev.Tick >= sentinel {
					return buf, nil
				}
			}
		case <-deadline.C:
			return buf, fmt.Errorf("timed out after %v waiting for egress tick %d", timeout, sentinel)
		}
	}
}

// trimBelow drops records with Tick < floor, preserving order.
func trimBelow(events []spikeio.Event, floor uint64) []spikeio.Event {
	out := events[:0]
	for _, ev := range events {
		if ev.Tick >= floor {
			out = append(out, ev)
		}
	}
	return out
}
