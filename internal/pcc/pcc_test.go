package pcc

import (
	"testing"

	"github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// threeRegionSpec is a small functional network: a sensory region driven
// by external input feeding two downstream regions that also talk to
// each other.
func threeRegionSpec() *coreobject.NetworkSpec {
	protoIn := coreobject.DefaultProto()
	protoIn.Weights = [truenorth.NumAxonTypes]int16{2, 2, 4, 0}
	protoIn.ThresholdMin, protoIn.ThresholdMax = 2, 6
	proto := coreobject.DefaultProto()
	proto.Weights = [truenorth.NumAxonTypes]int16{2, 3, 2, -1}
	proto.Leak = -1
	return &coreobject.NetworkSpec{
		Name: "three-region",
		Seed: 20120101,
		Regions: []coreobject.RegionSpec{
			{Name: "S", Cores: 4, GrayFraction: 0.2, Proto: protoIn},
			{Name: "A", Cores: 6, GrayFraction: 0.4, Proto: proto},
			{Name: "B", Cores: 3, GrayFraction: 0.4, Proto: proto},
		},
		Connections: []coreobject.Connection{
			{Src: "S", Dst: "A", Weight: 2},
			{Src: "S", Dst: "B", Weight: 1},
			{Src: "A", Dst: "B", Weight: 1},
			{Src: "B", Dst: "A", Weight: 1},
			// Feedback into the sensory region, as corticothalamic
			// pathways provide anatomically; without any incoming white
			// matter a region's axon marginal is structurally unfillable.
			{Src: "A", Dst: "S", Weight: 0.5},
			{Src: "B", Dst: "S", Weight: 0.25},
		},
		Inputs: []coreobject.InputSpec{
			{Region: "S", Cores: 4, Axons: 32, Rate: 0.2, StartTick: 0, EndTick: 50},
		},
	}
}

func TestCompileBasics(t *testing.T) {
	spec := threeRegionSpec()
	res, err := Compile(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Model
	if m.NumCores() != spec.TotalCores() {
		t.Fatalf("model has %d cores, want %d", m.NumCores(), spec.TotalCores())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.RankOf) != m.NumCores() || len(res.RegionOfCore) != m.NumCores() {
		t.Fatal("placement/region maps have wrong length")
	}
	if res.BalanceIterations < 1 {
		t.Fatal("no balancing iterations recorded")
	}
	if len(m.Inputs) == 0 {
		t.Fatal("no input spikes generated")
	}
}

// TestCompileWiringInvariants verifies the §IV realizability contract:
// every granted axon is used exactly once, no core's axons are
// oversubscribed, gray matter never crosses ranks, and white matter only
// follows declared region connections.
func TestCompileWiringInvariants(t *testing.T) {
	spec := threeRegionSpec()
	res, err := Compile(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Model

	// Axon usage: each (core, axon) pair targeted at most once, and the
	// axon must have been configured (crossbar row non-empty).
	type ca struct {
		core truenorth.CoreID
		axon uint16
	}
	used := make(map[ca]int)
	for _, cfg := range m.Cores {
		for j := range cfg.Neurons {
			n := &cfg.Neurons[j]
			if !n.Enabled {
				continue
			}
			used[ca{n.Target.Core, n.Target.Axon}]++
		}
	}
	for k, cnt := range used {
		if cnt != 1 {
			t.Fatalf("axon (%d,%d) granted %d times", k.core, k.axon, cnt)
		}
	}

	// Region connectivity: an enabled neuron in region i may target
	// region i (gray, same rank only) or a region j with a declared
	// connection i->j.
	allowed := make(map[[2]int]bool)
	for _, c := range spec.Connections {
		allowed[[2]int{spec.Region(c.Src), spec.Region(c.Dst)}] = true
	}
	grayCount, whiteCount := 0, 0
	for id, cfg := range m.Cores {
		srcRegion := res.RegionOfCore[id]
		srcRank := res.RankOf[id]
		for j := range cfg.Neurons {
			n := &cfg.Neurons[j]
			if !n.Enabled {
				continue
			}
			dstRegion := res.RegionOfCore[n.Target.Core]
			dstRank := res.RankOf[n.Target.Core]
			if srcRank == dstRank {
				grayCount++
				continue
			}
			whiteCount++
			if srcRegion != dstRegion && !allowed[[2]int{srcRegion, dstRegion}] {
				t.Fatalf("white-matter edge region %d -> %d not declared", srcRegion, dstRegion)
			}
		}
	}
	if grayCount == 0 || whiteCount == 0 {
		t.Fatalf("degenerate wiring: %d gray, %d white", grayCount, whiteCount)
	}

	// Axon typing: input axons on stimulated cores are typed AxonTypeInput.
	for c := 0; c < 4; c++ {
		for a := 0; a < 32; a++ {
			if m.Cores[c].AxonTypes[a] != AxonTypeInput {
				t.Fatalf("core %d axon %d typed %d, want input", c, a, m.Cores[c].AxonTypes[a])
			}
		}
	}
}

func TestCompileGrayFractionApproximatelyHonored(t *testing.T) {
	spec := threeRegionSpec()
	res, err := Compile(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Region A (index 1) has gray fraction 0.4: roughly 40% of its wired
	// neurons should stay on their own rank (with 3 ranks and the default
	// proportional assignment each region sits on one rank, so rank-local
	// equals region-local).
	m := res.Model
	local, total := 0, 0
	for id, cfg := range m.Cores {
		if res.RegionOfCore[id] != 1 {
			continue
		}
		for j := range cfg.Neurons {
			n := &cfg.Neurons[j]
			if !n.Enabled {
				continue
			}
			total++
			if res.RankOf[n.Target.Core] == res.RankOf[id] {
				local++
			}
		}
	}
	if total == 0 {
		t.Fatal("region A has no wired neurons")
	}
	frac := float64(local) / float64(total)
	if frac < 0.3 || frac > 0.5 {
		t.Fatalf("region A local fraction %.3f, want ≈0.4", frac)
	}
}

func TestCompileDeterministic(t *testing.T) {
	spec := threeRegionSpec()
	a, err := Compile(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Model.Cores {
		if *a.Model.Cores[i] != *b.Model.Cores[i] {
			t.Fatalf("core %d differs across identical compilations", i)
		}
	}
	if len(a.Model.Inputs) != len(b.Model.Inputs) {
		t.Fatal("input counts differ across identical compilations")
	}
}

func TestCompilePackedMode(t *testing.T) {
	// Fewer ranks than regions: regions pack whole onto ranks.
	spec := threeRegionSpec()
	res, err := Compile(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks != 2 {
		t.Fatalf("Ranks = %d", res.Ranks)
	}
	// Every core of a region must sit on a single rank.
	regionRank := make(map[int]int)
	for id, region := range res.RegionOfCore {
		if r, ok := regionRank[region]; ok {
			if r != res.RankOf[id] {
				t.Fatalf("region %d split across ranks %d and %d", region, r, res.RankOf[id])
			}
		} else {
			regionRank[region] = res.RankOf[id]
		}
	}
}

func TestCompileSingleRank(t *testing.T) {
	spec := threeRegionSpec()
	res, err := Compile(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.RankOf {
		if r != 0 {
			t.Fatal("single-rank compile placed cores elsewhere")
		}
	}
}

func TestCompileMoreRanksThanUsable(t *testing.T) {
	// 13 cores, 13 ranks: every region gets as many ranks as cores.
	spec := threeRegionSpec()
	res, err := Compile(spec, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks > 13 || res.Ranks < 3 {
		t.Fatalf("Ranks = %d", res.Ranks)
	}
}

func TestCompileRejectsBadArgs(t *testing.T) {
	spec := threeRegionSpec()
	if _, err := Compile(spec, 0); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := Compile(spec, 1000); err == nil {
		t.Fatal("more ranks than cores accepted")
	}
	bad := threeRegionSpec()
	bad.Regions[0].Cores = 0
	if _, err := Compile(bad, 1); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestCompiledModelSimulates runs the compiled model end to end through
// both the serial reference and the parallel simulator, checking
// equivalence and live activity.
func TestCompiledModelSimulates(t *testing.T) {
	spec := threeRegionSpec()
	res, err := Compile(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 60
	ref, err := truenorth.NewSerialSim(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(ticks); err != nil {
		t.Fatal(err)
	}
	if ref.TotalSpikes() == 0 {
		t.Fatal("compiled model is silent under stimulus")
	}
	stats, err := compass.Run(res.Model, compass.Config{
		Ranks:          res.Ranks,
		ThreadsPerRank: 2,
		RankOf:         res.RankOf,
	}, ticks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalSpikes != ref.TotalSpikes() {
		t.Fatalf("parallel simulation of compiled model: %d spikes, serial %d", stats.TotalSpikes, ref.TotalSpikes())
	}
	if stats.RemoteSpikes == 0 {
		t.Fatal("compiled placement produced no white-matter traffic")
	}
}

func TestGrantTrafficCounted(t *testing.T) {
	spec := threeRegionSpec()
	res, err := Compile(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.GrantMessages == 0 || res.GrantBytes == 0 {
		t.Fatalf("no negotiation traffic recorded: %d msgs, %d bytes", res.GrantMessages, res.GrantBytes)
	}
}

func TestPlanBundleMarginals(t *testing.T) {
	spec := threeRegionSpec()
	for _, ranks := range []int{1, 2, 3, 5} {
		p, err := newPlan(spec, ranks, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Row sums ≤ neuron budget, column sums ≤ usable axon capacity.
		for r := 0; r < p.ranks; r++ {
			row, col := 0, 0
			for s := 0; s < p.ranks; s++ {
				row += p.bundleCount(r, s)
				col += p.bundleCount(s, r)
			}
			if row > p.usableByRank[r] {
				t.Fatalf("ranks=%d: rank %d row sum %d exceeds budget %d", ranks, r, row, p.usableByRank[r])
			}
			if col > p.usableByRank[r] {
				t.Fatalf("ranks=%d: rank %d column sum %d exceeds capacity %d", ranks, r, col, p.usableByRank[r])
			}
		}
	}
}

// TestCompileTopologyPreservedWhenPacked: with several regions per rank,
// wiring must still follow declared region connections — gray matter
// stays within its region (and rank), white matter only along declared
// edges — and inter-region traffic must exist across ranks.
func TestCompileTopologyPreservedWhenPacked(t *testing.T) {
	spec := threeRegionSpec()
	res, err := Compile(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	allowed := make(map[[2]int]bool)
	for _, c := range spec.Connections {
		allowed[[2]int{spec.Region(c.Src), spec.Region(c.Dst)}] = true
	}
	cross := 0
	for id, cfg := range res.Model.Cores {
		srcRegion := res.RegionOfCore[id]
		for j := range cfg.Neurons {
			n := &cfg.Neurons[j]
			if !n.Enabled {
				continue
			}
			dstRegion := res.RegionOfCore[n.Target.Core]
			if srcRegion == dstRegion {
				if res.RankOf[n.Target.Core] != res.RankOf[id] {
					t.Fatalf("gray edge of region %d crosses ranks", srcRegion)
				}
				continue
			}
			if !allowed[[2]int{srcRegion, dstRegion}] {
				t.Fatalf("undeclared white edge region %d -> %d", srcRegion, dstRegion)
			}
			if res.RankOf[n.Target.Core] != res.RankOf[id] {
				cross++
			}
		}
	}
	if cross == 0 {
		t.Fatal("no cross-rank white matter in packed mode")
	}
}

func TestRepairColumns(t *testing.T) {
	m := [][]int{
		{3, 1},
		{2, 0},
	}
	// Column 0 carries 5 against capacity 4; one unit must move to
	// column 1 (capacity 4, currently 1).
	if err := repairColumns(m, []int{4, 4}); err != nil {
		t.Fatal(err)
	}
	c0 := m[0][0] + m[1][0]
	c1 := m[0][1] + m[1][1]
	if c0 != 4 || c1 != 2 {
		t.Fatalf("repair result: columns (%d, %d)", c0, c1)
	}
	// Row sums preserved.
	if m[0][0]+m[0][1] != 4 || m[1][0]+m[1][1] != 2 {
		t.Fatalf("row sums changed: %v", m)
	}
}

func TestRepairColumnsInfeasible(t *testing.T) {
	m := [][]int{{5}}
	if err := repairColumns(m, []int{4}); err == nil {
		t.Fatal("infeasible repair accepted")
	}
}

func TestRepairRows(t *testing.T) {
	m := [][]int{
		{5, 0},
		{1, 1},
	}
	if err := repairRows(m, []int{4, 4}); err != nil {
		t.Fatal(err)
	}
	if m[0][0]+m[0][1] != 4 || m[1][0]+m[1][1] != 3 {
		t.Fatalf("row repair wrong: %v", m)
	}
	// Column sums preserved.
	if m[0][0]+m[1][0] != 6 || m[0][1]+m[1][1] != 1 {
		t.Fatalf("column sums changed: %v", m)
	}
}

func BenchmarkCompileThreeRegions(b *testing.B) {
	spec := threeRegionSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(spec, 3); err != nil {
			b.Fatal(err)
		}
	}
}
