package truenorth

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"
	"unsafe"

	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/workpool"
)

// Image is the immutable, seed-addressed half of a model: everything the
// Parallel Compass Compiler (or a binary model file) produces — crossbar
// connectivity, axon types, neuron parameters, axon routing, external
// stimuli — plus the derived read-only structures NewCore would otherwise
// rebuild per instantiation (the bit-parallel Synapse kernels and the
// passive-dynamics flags). An Image is referenced copy-on-write by any
// number of concurrently running simulations: instantiating a session
// allocates only the lightweight per-session runtime state (membrane
// potentials, pending-axon delay rings, PRNG state — exactly what a
// Checkpoint captures), while configurations and kernels are shared by
// pointer and never written after NewImage returns.
//
// Sharing is bit-exact: a core instantiated from an image is
// indistinguishable from one built by NewCore on a private model, because
// kernel eligibility, kernel contents, and passive flags are pure
// functions of the configuration, and all mutable state lives in the
// per-session Core. Two sessions on one image therefore produce the same
// traces as two sessions on private copies of the model.
type Image struct {
	seed   uint64
	cores  []*CoreConfig
	inputs []InputSpike

	// kernels[i] is core i's prebuilt bit-parallel Synapse kernel (nil
	// for scalar-path cores); passive[i] caches passiveConfig. Both are
	// immutable after NewImage and shared by every instantiation.
	kernels []*kernel
	passive []bool

	// hash is the lazily computed content address (see Hash).
	hashOnce sync.Once
	hash     string
}

// NewImage validates m and freezes it into an immutable image,
// precomputing every core's Synapse kernel and passive flag in parallel.
// The model's slices are retained, not copied: callers must not mutate m
// after handing it to NewImage.
func NewImage(m *Model) (*Image, error) {
	return NewImageLimited(m, nil)
}

// NewImageLimited is NewImage with the build's parallelism negotiated
// through a shared worker limiter, so a daemon freezing many images
// concurrently stays within one machine-wide worker budget instead of
// spawning GOMAXPROCS goroutines per build. A nil limiter is unlimited
// (identical to NewImage).
func NewImageLimited(m *Model, lim *workpool.Limiter) (*Image, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	img := &Image{
		seed:    m.Seed,
		cores:   m.Cores,
		inputs:  m.Inputs,
		kernels: make([]*kernel, len(m.Cores)),
		passive: make([]bool, len(m.Cores)),
	}
	workpool.ForEachLimited(lim, runtime.GOMAXPROCS(0), len(m.Cores), func(i int) {
		cfg := img.cores[i]
		if KernelEligible(cfg) {
			img.kernels[i] = buildKernel(cfg)
		}
		img.passive[i] = passiveConfig(cfg)
	})
	return img, nil
}

// Seed returns the model-wide PRNG seed.
func (img *Image) Seed() uint64 { return img.seed }

// NumCores returns the number of cores in the image.
func (img *Image) NumCores() int { return len(img.cores) }

// CoreConfig returns core i's configuration (shared, read-only).
func (img *Image) CoreConfig(i int) *CoreConfig { return img.cores[i] }

// Inputs returns the external stimuli (shared, read-only).
func (img *Image) Inputs() []InputSpike { return img.inputs }

// Model returns a Model view over the image's shared slices, for
// serialization and other read-only consumers. The view must not be
// mutated.
func (img *Image) Model() *Model {
	return &Model{Seed: img.seed, Cores: img.cores, Inputs: img.inputs}
}

// NewCore instantiates fresh runtime state for core i against the shared
// image: the configuration and kernel are referenced, not rebuilt, so
// instantiation costs only the mutable state. The result is bit-identical
// to NewCore(img.CoreConfig(i), img.Seed()).
func (img *Image) NewCore(i int) *Core {
	cfg := img.cores[i]
	return &Core{
		cfg:     cfg,
		rng:     prng.NewCoreStream(img.seed, uint64(cfg.ID)),
		kern:    img.kernels[i],
		passive: img.passive[i],
	}
}

// InitialCheckpoint returns the tick-0 state of a fresh session on this
// image — zero potentials, empty delay rings, and each core's PRNG at
// the start of its (seed, coreID) stream — without instantiating cores.
// It equals Snapshot of a just-built simulator.
func (img *Image) InitialCheckpoint() *Checkpoint {
	cp := &Checkpoint{States: make([]CoreState, len(img.cores))}
	for i, cfg := range img.cores {
		cp.States[i] = CoreState{
			ID:  cfg.ID,
			RNG: prng.NewCoreStream(img.seed, uint64(cfg.ID)).State(),
		}
	}
	return cp
}

// ValidateCheckpoint checks cp's shape against the image, and — when
// the checkpoint carries a model hash (checkpoint files and cross-node
// exports are stamped with one) — that the hash names this image, so a
// resume against the wrong model fails with a clear provenance error
// instead of silently restoring foreign state.
func (img *Image) ValidateCheckpoint(cp *Checkpoint) error {
	if cp.ModelHash != "" {
		if have := img.Hash(); cp.ModelHash != have {
			return fmt.Errorf("truenorth: checkpoint is from model %.12s…, this node has model %.12s…",
				cp.ModelHash, have)
		}
	}
	return cp.validateCores(len(img.cores))
}

// ImageBytes returns the resident size of the shared immutable half:
// core configurations, prebuilt kernels, and external stimuli. This is
// the portion charged once per resident image under memory-aware
// admission, no matter how many sessions share it.
func (img *Image) ImageBytes() int64 {
	total := int64(len(img.cores)) * int64(unsafe.Sizeof(CoreConfig{}))
	for _, k := range img.kernels {
		if k != nil {
			total += int64(unsafe.Sizeof(kernel{})) + int64(len(k.neurons))*2
		}
	}
	total += int64(len(img.inputs)) * int64(unsafe.Sizeof(InputSpike{}))
	return total
}

// StateBytes returns the resident size of one session's private runtime
// state on this image — the per-session, copy-on-write half (membrane
// potentials, delay rings, PRNG, counters), charged per session.
func (img *Image) StateBytes() int64 {
	return int64(len(img.cores)) * int64(unsafe.Sizeof(Core{}))
}

// Hash returns the image's content address: a hex SHA-256 over a
// canonical binary encoding of the seed, every core's configuration, and
// the external stimuli. Two images with equal hashes are functionally
// identical (same traces for the same run configuration). The digest is
// computed once, lazily, and cached.
func (img *Image) Hash() string {
	img.hashOnce.Do(func() {
		h := sha256.New()
		var scratch [8]byte
		put32 := func(v uint32) {
			binary.LittleEndian.PutUint32(scratch[:4], v)
			h.Write(scratch[:4])
		}
		put64 := func(v uint64) {
			binary.LittleEndian.PutUint64(scratch[:], v)
			h.Write(scratch[:])
		}
		h.Write([]byte("compass-image-v1\x00"))
		put64(img.seed)
		put64(uint64(len(img.cores)))
		for _, cfg := range img.cores {
			put32(uint32(cfg.ID))
			h.Write(cfg.AxonTypes[:])
			for a := range cfg.Crossbar {
				for _, w := range cfg.Crossbar[a] {
					put64(w)
				}
			}
			for j := range cfg.Neurons {
				p := &cfg.Neurons[j]
				var rec [36]byte
				for t := 0; t < NumAxonTypes; t++ {
					binary.LittleEndian.PutUint16(rec[t*2:], uint16(p.Weights[t]))
					if p.StochasticWeight[t] {
						rec[8+t] = 1
					}
				}
				binary.LittleEndian.PutUint16(rec[12:], uint16(p.Leak))
				if p.StochasticLeak {
					rec[14] = 1
				}
				if p.Enabled {
					rec[15] = 1
				}
				binary.LittleEndian.PutUint32(rec[16:], uint32(p.Threshold))
				binary.LittleEndian.PutUint32(rec[20:], uint32(p.Reset))
				binary.LittleEndian.PutUint32(rec[24:], uint32(p.Floor))
				binary.LittleEndian.PutUint32(rec[28:], uint32(p.Target.Core))
				binary.LittleEndian.PutUint16(rec[32:], p.Target.Axon)
				rec[34] = p.Target.Delay
				h.Write(rec[:])
			}
		}
		put64(uint64(len(img.inputs)))
		for _, in := range img.inputs {
			put64(in.Tick)
			put32(uint32(in.Core))
			put32(uint32(in.Axon))
		}
		img.hash = hex.EncodeToString(h.Sum(nil))
	})
	return img.hash
}

// validateCores checks ID/index agreement for a checkpoint against a
// core count; Checkpoint.Validate and Image.ValidateCheckpoint share it.
func (cp *Checkpoint) validateCores(numCores int) error {
	if len(cp.States) != numCores {
		return fmt.Errorf("truenorth: checkpoint has %d cores, model %d", len(cp.States), numCores)
	}
	for i, s := range cp.States {
		if int(s.ID) != i {
			return fmt.Errorf("truenorth: checkpoint state %d has ID %d", i, s.ID)
		}
	}
	return nil
}
