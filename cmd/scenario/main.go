// Command scenario drives registered closed-loop task environments
// (internal/scenario) against a live serving surface — a standalone
// compassd or a coordinator cluster; the target kind is autodetected
// from /healthz and cluster sessions are proxied transparently.
//
// Subcommands:
//
//	scenario list
//	scenario run -scenario bandit -addr 127.0.0.1:7180 -episodes 3 -seed 7
//	scenario bench -scenario charrec -addr 127.0.0.1:7180 -concurrency 1,4,16 -out BENCH_scenario.json
//
// `run -verify` additionally replays the recorded inject stream through
// compass.Run in-process and fails unless the live episode trajectory
// is reproduced bit-for-bit (the determinism pin).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  scenario list
  scenario run   -scenario NAME -addr HOST:PORT [-episodes N] [-steps N] [-seed S] [-transport T] [-verify] [-json]
  scenario bench -scenario NAME -addr HOST:PORT [-episodes N] [-seed S] [-concurrency 1,4,16] [-out FILE]`)
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, name := range scenario.Names() {
		spec, err := scenario.Get(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %s\n", spec.Name, spec.Description)
		fmt.Printf("%-10s defaults: %d episodes x %d steps, window %d ticks (guard %d)\n",
			"", spec.Episodes, spec.Steps, spec.WindowTicks, spec.GuardTicks)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		name      = fs.String("scenario", "", "registered scenario name (see `scenario list`)")
		addr      = fs.String("addr", "127.0.0.1:7180", "daemon or coordinator HTTP address")
		episodes  = fs.Int("episodes", 0, "episodes to run (0 = scenario default)")
		steps     = fs.Int("steps", 0, "decision steps per episode (0 = scenario default)")
		seed      = fs.Uint64("seed", 1, "task + model seed")
		transport = fs.String("transport", "", "session transport (mpi|pgas|shmem, empty = server default)")
		verify    = fs.Bool("verify", false, "replay the inject stream through compass.Run and pin the trajectory")
		asJSON    = fs.Bool("json", false, "print the full result as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("run: -scenario is required")
	}
	spec, err := scenario.Get(*name)
	if err != nil {
		return err
	}
	c, err := scenario.Dial(*addr)
	if err != nil {
		return err
	}
	target := "daemon"
	if c.Cluster() {
		target = "coordinator cluster"
	}
	fmt.Fprintf(os.Stderr, "scenario: running %s against %s at %s\n", spec.Name, target, *addr)

	res, err := scenario.Run(c, spec, scenario.RunOptions{
		Episodes:  *episodes,
		Steps:     *steps,
		Seed:      *seed,
		Transport: *transport,
		Report:    true,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		printResult(res)
	}
	if *verify {
		if err := scenario.Replay(spec, res, compass.Config{}); err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		fmt.Println("verify: replay through compass.Run reproduced the live trajectory bit-for-bit")
	}
	return nil
}

func printResult(res *scenario.Result) {
	s := res.Score
	fmt.Printf("%s seed=%d: %d episodes x %d steps in %.2fs (%.1f ep/s)\n",
		res.Scenario, res.Seed, res.Episodes, res.Steps, res.ElapsedSeconds,
		float64(res.Episodes)/res.ElapsedSeconds)
	fmt.Printf("  score: reward %.1f, %d/%d correct, mean decision latency %.2f ticks\n",
		s.Reward, s.Correct, s.Steps, s.MeanLatencyTicks)
	for k, v := range s.Extra {
		fmt.Printf("  %s: %.3f\n", k, v)
	}
	fmt.Printf("  rtt: p50 %s p99 %s\n",
		time.Duration(res.RTTPercentile(0.50)*float64(time.Second)).Round(time.Microsecond),
		time.Duration(res.RTTPercentile(0.99)*float64(time.Second)).Round(time.Microsecond))
	fmt.Printf("  inject: %d records, sha256 %s\n", len(res.Injected), res.InjectHash)
	fmt.Printf("  session: %s\n", res.SessionID)
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		name     = fs.String("scenario", "bandit", "registered scenario name")
		addr     = fs.String("addr", "127.0.0.1:7180", "daemon or coordinator HTTP address")
		episodes = fs.Int("episodes", 0, "episodes per session (0 = scenario default)")
		steps    = fs.Int("steps", 0, "steps per episode (0 = scenario default)")
		seed     = fs.Uint64("seed", 1, "base seed (session i uses seed+i)")
		levels   = fs.String("concurrency", "1,4,16", "comma-separated concurrent session counts")
		out      = fs.String("out", "", "write the report JSON to this file (default stdout only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	conc, err := parseLevels(*levels)
	if err != nil {
		return err
	}
	report, err := scenario.RunBench(*addr, scenario.BenchOptions{
		Scenario:    *name,
		Seed:        *seed,
		Episodes:    *episodes,
		Steps:       *steps,
		Concurrency: conc,
	})
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(raw))
	if *out != "" {
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scenario: wrote %s\n", *out)
	}
	return nil
}

func parseLevels(s string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bench: bad concurrency level %q", part)
		}
		levels = append(levels, n)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("bench: no concurrency levels")
	}
	return levels, nil
}
