package compass

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cognitive-sim/compass/internal/mpi"
	"github.com/cognitive-sim/compass/internal/pgas"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// Run simulates ticks ticks of model m under cfg and returns aggregated
// statistics. The spike output is identical for every (ranks, threads,
// transport) choice; only the communication behaviour differs.
func Run(m *truenorth.Model, cfg Config, ticks int) (*RunStats, error) {
	if err := cfg.Validate(m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if ticks < 0 {
		return nil, fmt.Errorf("compass: negative tick count %d", ticks)
	}

	placement := cfg.placement(len(m.Cores))
	states := make([]*rankState, cfg.Ranks)
	for r := range states {
		states[r] = newRankState(r, m, cfg, placement)
	}

	start := uint64(0)
	if cfg.StartFrom != nil {
		if err := cfg.StartFrom.Validate(m); err != nil {
			return nil, err
		}
		start = cfg.StartFrom.Tick
		for _, st := range states {
			for _, core := range st.cores {
				if err := core.SetState(cfg.StartFrom.States[core.ID()]); err != nil {
					return nil, err
				}
			}
		}
	}

	var runErr error
	switch cfg.Transport {
	case TransportMPI:
		runErr = mpi.Run(cfg.Ranks, func(c *mpi.Comm) error {
			st := states[c.Rank()]
			st.comm = c
			return st.loop(start, ticks)
		})
	case TransportPGAS:
		runErr = pgas.Run(cfg.Ranks, func(h *pgas.Handle) error {
			st := states[h.Rank()]
			st.pgas = h
			return st.loop(start, ticks)
		})
	}
	if runErr != nil {
		return nil, runErr
	}
	out := gather(m, cfg, ticks, states)
	if cfg.MeasurePhases {
		for _, st := range states {
			if st.computeSec > out.PhaseSeconds.SynapseNeuron {
				out.PhaseSeconds.SynapseNeuron = st.computeSec
			}
			if st.networkSec > out.PhaseSeconds.Network {
				out.PhaseSeconds.Network = st.networkSec
			}
		}
	}
	if cfg.ReturnState {
		cp := &truenorth.Checkpoint{
			Tick:   start + uint64(ticks),
			States: make([]truenorth.CoreState, len(m.Cores)),
		}
		for _, st := range states {
			for _, core := range st.cores {
				cp.States[core.ID()] = core.State()
			}
		}
		out.Final = cp
	}
	return out, nil
}

// gather merges per-rank results into the run summary.
func gather(m *truenorth.Model, cfg Config, ticks int, states []*rankState) *RunStats {
	out := &RunStats{
		Ticks:    ticks,
		Ranks:    cfg.Ranks,
		Threads:  cfg.ThreadsPerRank,
		NumCores: len(m.Cores),
	}
	if cfg.RecordPerTick {
		out.PerTick = make([]TickStats, ticks)
	}
	for _, st := range states {
		rs := st.finalRankStats()
		out.PerRank = append(out.PerRank, rs)
		out.TotalSpikes += rs.Firings
		out.LocalSpikes += rs.LocalSpikes
		out.RemoteSpikes += rs.RemoteSpikes
		out.Messages += rs.MessagesSent
		out.AxonEvents += rs.AxonEvents
		out.SynapticEvents += rs.SynapticEvents
		out.NeuronUpdates += rs.NeuronUpdates
		if cfg.RecordPerTick {
			for t := range st.perTick {
				out.PerTick[t].add(st.perTick[t])
			}
		}
		if cfg.RecordTrace {
			for _, tr := range st.traces {
				out.Trace = append(out.Trace, tr...)
			}
		}
	}
	out.WireBytes = out.RemoteSpikes * truenorth.SpikeWireBytes
	if cfg.RecordTrace {
		truenorth.SortSpikeEvents(out.Trace)
	}
	return out
}

// rankState is the per-rank simulation state.
type rankState struct {
	rank    int
	cfg     Config
	ranks   int
	threads int

	// comm is set for the MPI transport; pgas for the PGAS transport.
	comm *mpi.Comm
	pgas *pgas.Handle

	// cores owned by this rank, ascending ID; threadCores partitions them
	// round-robin over threads.
	cores       []*truenorth.Core
	threadCores [][]*truenorth.Core

	// coreByID resolves spike targets owned by this rank.
	coreByID map[truenorth.CoreID]*truenorth.Core

	// placement maps every core in the model to its rank.
	placement []int

	inputsByTick map[uint64][]truenorth.InputSpike

	// threadRemote[thread][dest] accumulates encoded spikes bound for
	// remote ranks during the Neuron phase; sendBuf[dest] is the
	// aggregated per-destination message (remoteBufAgg in Listing 1).
	threadRemote [][][]byte
	sendBuf      [][]byte
	sendCounts   []int64

	// threadLocal[thread] accumulates spikes bound for this rank.
	threadLocal [][]truenorth.SpikeTarget

	// traces[thread] accumulates spike events when tracing.
	traces [][]truenorth.SpikeEvent

	// per-thread firing counters for the current tick.
	threadFirings []uint64

	// cumulative statistics.
	localSpikes  uint64
	remoteSpikes uint64
	msgsSent     uint64
	peers        map[int]bool
	perTick      []TickStats

	// snapshots of core counters for per-tick deltas.
	prevAxonEvents uint64
	prevSynEvents  uint64

	// recvMu is the Network-phase critical section around message
	// receipt, reproducing the thread-unsafe-MPI structure of §III.
	recvMu    sync.Mutex
	remaining atomic.Int64

	// drained holds the PGAS segments pending parallel delivery.
	drained [][]byte
	nextSeg atomic.Int64

	ticksRun  int
	startTick uint64

	// measured per-phase wall-clock (seconds) when MeasurePhases is set.
	computeSec float64
	networkSec float64
}

// newRankState instantiates the cores placed on rank r.
func newRankState(r int, m *truenorth.Model, cfg Config, placement []int) *rankState {
	st := &rankState{
		rank:         r,
		cfg:          cfg,
		ranks:        cfg.Ranks,
		threads:      cfg.ThreadsPerRank,
		placement:    placement,
		coreByID:     make(map[truenorth.CoreID]*truenorth.Core),
		inputsByTick: make(map[uint64][]truenorth.InputSpike),
		peers:        make(map[int]bool),
	}
	for i, cfgCore := range m.Cores {
		if placement[i] != r {
			continue
		}
		core := truenorth.NewCore(cfgCore, m.Seed)
		st.cores = append(st.cores, core)
		st.coreByID[cfgCore.ID] = core
	}
	st.threadCores = make([][]*truenorth.Core, cfg.ThreadsPerRank)
	for i, core := range st.cores {
		tid := i % cfg.ThreadsPerRank
		st.threadCores[tid] = append(st.threadCores[tid], core)
	}
	for _, in := range m.Inputs {
		if placement[in.Core] == r {
			st.inputsByTick[in.Tick] = append(st.inputsByTick[in.Tick], in)
		}
	}
	st.threadRemote = make([][][]byte, cfg.ThreadsPerRank)
	for tid := range st.threadRemote {
		st.threadRemote[tid] = make([][]byte, cfg.Ranks)
	}
	st.threadLocal = make([][]truenorth.SpikeTarget, cfg.ThreadsPerRank)
	st.threadFirings = make([]uint64, cfg.ThreadsPerRank)
	st.sendBuf = make([][]byte, cfg.Ranks)
	st.sendCounts = make([]int64, cfg.Ranks)
	if cfg.RecordTrace {
		st.traces = make([][]truenorth.SpikeEvent, cfg.ThreadsPerRank)
	}
	return st
}

// parallel runs fn on every thread ID concurrently and waits.
func (st *rankState) parallel(fn func(tid int)) {
	if st.threads == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(st.threads)
	for tid := 0; tid < st.threads; tid++ {
		go func(id int) {
			defer wg.Done()
			fn(id)
		}(tid)
	}
	wg.Wait()
}

// loop runs the rank's main simulation loop for ticks ticks starting at
// absolute tick start.
func (st *rankState) loop(start uint64, ticks int) error {
	st.ticksRun = ticks
	st.startTick = start
	for t := start; t < start+uint64(ticks); t++ {
		if err := st.tick(t); err != nil {
			return fmt.Errorf("compass: rank %d tick %d: %w", st.rank, t, err)
		}
	}
	return nil
}

// tick executes one tick: inputs, Synapse and Neuron phases in parallel
// across threads, then the transport-specific Network phase.
func (st *rankState) tick(t uint64) error {
	for _, in := range st.inputsByTick[t] {
		st.coreByID[in.Core].InjectRaw(int(in.Axon), t)
	}
	delete(st.inputsByTick, t)

	var phaseStart time.Time
	if st.cfg.MeasurePhases {
		phaseStart = time.Now()
	}

	// Synapse + Neuron phases. Cores are independent within a tick, so
	// each thread runs both phases back to back over its cores.
	st.parallel(func(tid int) {
		fired := uint64(0)
		for _, core := range st.threadCores[tid] {
			core.SynapsePhase(t)
			core.NeuronPhase(func(s truenorth.Spike) {
				fired++
				dest := st.placement[s.Target.Core]
				if dest == st.rank {
					st.threadLocal[tid] = append(st.threadLocal[tid], s.Target)
				} else {
					st.threadRemote[tid][dest] = appendSpike(st.threadRemote[tid][dest], s.Target)
				}
				if st.cfg.RecordTrace {
					st.traces[tid] = append(st.traces[tid], truenorth.SpikeEvent{FireTick: t, Target: s.Target})
				}
			})
		}
		st.threadFirings[tid] = fired
	})

	// Thread-aggregate remote buffers into one message per destination
	// (threadAggregate in Listing 1).
	tickRemote := uint64(0)
	tickMsgs := uint64(0)
	for dest := 0; dest < st.ranks; dest++ {
		st.sendBuf[dest] = st.sendBuf[dest][:0]
		st.sendCounts[dest] = 0
		for tid := 0; tid < st.threads; tid++ {
			st.sendBuf[dest] = append(st.sendBuf[dest], st.threadRemote[tid][dest]...)
			st.threadRemote[tid][dest] = st.threadRemote[tid][dest][:0]
		}
		if n := len(st.sendBuf[dest]); n > 0 {
			st.sendCounts[dest] = 1
			tickRemote += uint64(n / spikeRecordBytes)
			tickMsgs++
			st.peers[dest] = true
		}
	}
	st.remoteSpikes += tickRemote
	st.msgsSent += tickMsgs
	tickLocal := uint64(0)
	for tid := range st.threadLocal {
		tickLocal += uint64(len(st.threadLocal[tid]))
	}
	st.localSpikes += tickLocal

	if st.cfg.MeasurePhases {
		now := time.Now()
		st.computeSec += now.Sub(phaseStart).Seconds()
		phaseStart = now
	}

	var err error
	switch st.cfg.Transport {
	case TransportMPI:
		err = st.networkMPI(t)
	case TransportPGAS:
		err = st.networkPGAS(t)
	}
	if err != nil {
		return err
	}
	if st.cfg.MeasurePhases {
		st.networkSec += time.Since(phaseStart).Seconds()
	}

	for tid := range st.threadLocal {
		st.threadLocal[tid] = st.threadLocal[tid][:0]
	}

	if st.cfg.RecordPerTick {
		st.recordTick(t, tickLocal, tickRemote, tickMsgs)
	}
	return nil
}

// networkMPI is the two-sided Network phase of Listing 1: send one
// aggregated message per destination, learn the incoming message count
// with a Reduce-scatter overlapped with local spike delivery, then
// receive messages in a critical section and deliver their spikes.
func (st *rankState) networkMPI(t uint64) error {
	tag := int(t)
	var expect int64
	errs := make([]error, st.threads)
	st.parallel(func(tid int) {
		if tid == 0 {
			for dest := 0; dest < st.ranks; dest++ {
				if st.sendCounts[dest] != 0 {
					if err := st.comm.Isend(dest, tag, st.sendBuf[dest]); err != nil {
						errs[tid] = err
						return
					}
				}
			}
			n, err := st.comm.ReduceScatterSum(st.sendCounts)
			if err != nil {
				errs[tid] = err
				return
			}
			expect = n
			if st.threads == 1 {
				errs[tid] = st.deliverLocalSlice(t, 0, 1)
			}
		} else {
			// Non-master threads overlap local delivery with the
			// master's collective.
			errs[tid] = st.deliverLocalSlice(t, tid-1, st.threads-1)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// All threads take turns receiving inside the critical section and
	// deliver the received spikes outside it.
	st.remaining.Store(expect)
	st.parallel(func(tid int) {
		for {
			if st.remaining.Add(-1) < 0 {
				return
			}
			st.recvMu.Lock()
			data, _, err := st.comm.Recv(mpi.AnySource, tag)
			st.recvMu.Unlock()
			if err != nil {
				errs[tid] = err
				return
			}
			if err := st.deliverEncoded(t, data); err != nil {
				errs[tid] = err
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// networkPGAS is the one-sided Network phase of §VII: deposit each
// aggregated spike buffer directly into the destination rank's window,
// deliver local spikes in parallel, synchronize with a single global
// barrier, then drain and deliver the window contents.
func (st *rankState) networkPGAS(t uint64) error {
	errs := make([]error, st.threads)
	st.parallel(func(tid int) {
		if tid == 0 {
			for dest := 0; dest < st.ranks; dest++ {
				if st.sendCounts[dest] != 0 {
					if err := st.pgas.Put(dest, st.sendBuf[dest]); err != nil {
						errs[tid] = err
						return
					}
				}
			}
			if st.threads == 1 {
				errs[tid] = st.deliverLocalSlice(t, 0, 1)
			}
		} else {
			errs[tid] = st.deliverLocalSlice(t, tid-1, st.threads-1)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	st.pgas.Barrier()

	st.drained = st.drained[:0]
	st.pgas.Drain(func(src int, data []byte) {
		seg := make([]byte, len(data))
		copy(seg, data)
		st.drained = append(st.drained, seg)
	})
	st.nextSeg.Store(0)
	st.parallel(func(tid int) {
		for {
			i := int(st.nextSeg.Add(1)) - 1
			if i >= len(st.drained) {
				return
			}
			if err := st.deliverEncoded(t, st.drained[i]); err != nil {
				errs[tid] = err
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// deliverLocalSlice delivers the local spike buffers of source threads
// whose index ≡ part (mod parts). Delivery uses the atomic schedule, so
// partitions may overlap in target cores.
func (st *rankState) deliverLocalSlice(t uint64, part, parts int) error {
	for tid := part; tid < st.threads; tid += parts {
		for _, target := range st.threadLocal[tid] {
			core := st.coreByID[target.Core]
			if core == nil {
				return fmt.Errorf("compass: local spike for core %d not owned by rank %d", target.Core, st.rank)
			}
			if err := core.ScheduleSpikeShared(int(target.Axon), t+uint64(target.Delay), t); err != nil {
				return err
			}
		}
	}
	return nil
}

// deliverEncoded delivers every spike in an encoded payload to this
// rank's cores.
func (st *rankState) deliverEncoded(t uint64, data []byte) error {
	return decodeSpikes(data, func(target truenorth.SpikeTarget) error {
		core := st.coreByID[target.Core]
		if core == nil {
			return fmt.Errorf("compass: received spike for core %d not owned by rank %d", target.Core, st.rank)
		}
		return core.ScheduleSpikeShared(int(target.Axon), t+uint64(target.Delay), t)
	})
}

// recordTick captures this tick's aggregates.
func (st *rankState) recordTick(t uint64, local, remote, msgs uint64) {
	var axon, syn, fired uint64
	for _, core := range st.cores {
		a, s, _ := core.Stats()
		axon += a
		syn += s
	}
	for _, f := range st.threadFirings {
		fired += f
	}
	ts := TickStats{
		AxonEvents:     axon - st.prevAxonEvents,
		SynapticEvents: syn - st.prevSynEvents,
		Firings:        fired,
		LocalSpikes:    local,
		RemoteSpikes:   remote,
		Messages:       msgs,
		WireBytes:      remote * truenorth.SpikeWireBytes,
	}
	st.prevAxonEvents = axon
	st.prevSynEvents = syn
	rel := t - st.startTick
	for len(st.perTick) <= int(rel) {
		st.perTick = append(st.perTick, TickStats{})
	}
	st.perTick[rel] = ts
}

// finalRankStats summarizes the rank after the run.
func (st *rankState) finalRankStats() RankStats {
	rs := RankStats{
		Rank:         st.rank,
		CoresOwned:   len(st.cores),
		LocalSpikes:  st.localSpikes,
		RemoteSpikes: st.remoteSpikes,
		MessagesSent: st.msgsSent,
		PeerRanks:    len(st.peers),
	}
	for _, core := range st.cores {
		a, s, f := core.Stats()
		rs.AxonEvents += a
		rs.SynapticEvents += s
		rs.Firings += f
	}
	// Every enabled neuron is updated once per tick.
	enabled := uint64(0)
	for _, core := range st.cores {
		cfg := core.Config()
		for j := range cfg.Neurons {
			if cfg.Neurons[j].Enabled {
				enabled++
			}
		}
	}
	rs.NeuronUpdates = enabled * uint64(st.ticksRun)
	return rs
}

// sortRanksByCores is a small helper used by diagnostics and tests.
func sortRanksByCores(stats []RankStats) {
	sort.Slice(stats, func(a, b int) bool { return stats[a].CoresOwned > stats[b].CoresOwned })
}
