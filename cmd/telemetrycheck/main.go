// Command telemetrycheck validates the artifacts the compass command
// emits under -metrics and -trace-out: the Prometheus text exposition,
// the JSON metrics snapshot, and the Chrome trace-event file. It is the
// CI smoke gate for the telemetry subsystem — no external Prometheus or
// Perfetto needed, just the format rules they rely on.
//
// Usage:
//
//	telemetrycheck -metrics run.prom -snapshot run.json -trace trace.json
//
// Any subset of the flags may be given; each named file is validated.
// Exit status is non-zero on the first violation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		promPath  = flag.String("metrics", "", "Prometheus text exposition file to validate")
		snapPath  = flag.String("snapshot", "", "JSON metrics snapshot file to validate")
		tracePath = flag.String("trace", "", "Chrome trace-event JSON file to validate")
	)
	flag.Parse()
	if *promPath == "" && *snapPath == "" && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "telemetrycheck: name at least one of -metrics, -snapshot, -trace")
		os.Exit(2)
	}
	checks := []struct {
		path string
		fn   func(string) error
	}{
		{*promPath, checkPrometheus},
		{*snapPath, checkSnapshot},
		{*tracePath, checkTrace},
	}
	for _, c := range checks {
		if c.path == "" {
			continue
		}
		if err := c.fn(c.path); err != nil {
			fmt.Fprintf(os.Stderr, "telemetrycheck: %s: %v\n", c.path, err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", c.path)
	}
}

// checkPrometheus validates the text exposition format shape: every
// non-comment line is `name{labels} value` or `name value`, every series
// name was declared by a preceding # TYPE, and histograms carry the
// mandatory +Inf bucket, _sum, and _count series.
func checkPrometheus(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	typed := map[string]string{} // metric family -> type
	families := map[string]bool{}
	histSeen := map[string]map[string]bool{} // family -> {inf, sum, count}
	samples := 0

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		switch {
		case text == "":
			continue
		case strings.HasPrefix(text, "# HELP "), strings.HasPrefix(text, "# TYPE "):
			fields := strings.Fields(text)
			if len(fields) < 4 {
				return fmt.Errorf("line %d: truncated comment %q", line, text)
			}
			if fields[1] == "TYPE" {
				typed[fields[2]] = fields[3]
			}
			continue
		case strings.HasPrefix(text, "#"):
			return fmt.Errorf("line %d: unknown comment form %q", line, text)
		}
		name := text
		if i := strings.IndexAny(text, "{ "); i >= 0 {
			name = text[:i]
		}
		rest := text[len(name):]
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return fmt.Errorf("line %d: unterminated label set", line)
			}
			rest = rest[end+1:]
		}
		value := strings.TrimSpace(rest)
		if value == "" {
			return fmt.Errorf("line %d: sample %q has no value", line, name)
		}
		family := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) {
				if t, ok := typed[strings.TrimSuffix(name, s)]; ok && t == "histogram" {
					family = strings.TrimSuffix(name, s)
					suffix = s
				}
			}
		}
		t, ok := typed[family]
		if !ok {
			return fmt.Errorf("line %d: series %q has no # TYPE declaration", line, name)
		}
		families[family] = true
		if t == "histogram" {
			seen := histSeen[family]
			if seen == nil {
				seen = map[string]bool{}
				histSeen[family] = seen
			}
			switch suffix {
			case "_bucket":
				if strings.Contains(text, `le="+Inf"`) {
					seen["inf"] = true
				}
			case "_sum":
				seen["sum"] = true
			case "_count":
				seen["count"] = true
			default:
				return fmt.Errorf("line %d: bare sample %q for histogram family", line, name)
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples")
	}
	for family, t := range typed {
		if t != "histogram" || !families[family] {
			continue
		}
		for _, part := range []string{"inf", "sum", "count"} {
			if !histSeen[family][part] {
				return fmt.Errorf("histogram %q is missing its %s series", family, part)
			}
		}
	}
	fmt.Printf("  %d samples, %d metric families\n", samples, len(typed))
	return nil
}

// checkSnapshot validates the JSON snapshot: a metrics array whose
// entries carry a name and kind, with cumulative bucket counts on
// histograms.
func checkSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Metrics []struct {
			Name    string `json:"name"`
			Kind    string `json:"kind"`
			Buckets []struct {
				LE    float64 `json:"le"`
				Count uint64  `json:"count"`
			} `json:"buckets"`
			Count uint64 `json:"count"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not a metrics snapshot: %w", err)
	}
	if len(doc.Metrics) == 0 {
		return fmt.Errorf("snapshot has no metrics")
	}
	for _, m := range doc.Metrics {
		if m.Name == "" || m.Kind == "" {
			return fmt.Errorf("metric with empty name or kind: %+v", m)
		}
		if m.Kind == "histogram" {
			prev := uint64(0)
			for _, b := range m.Buckets {
				if b.Count < prev {
					return fmt.Errorf("%s: bucket counts not cumulative", m.Name)
				}
				prev = b.Count
			}
			if prev > m.Count {
				return fmt.Errorf("%s: bucket count %d exceeds total %d", m.Name, prev, m.Count)
			}
		}
	}
	fmt.Printf("  %d metric series\n", len(doc.Metrics))
	return nil
}

// checkTrace validates the Chrome trace-event file: a traceEvents array
// where every complete ("X") event carries name/ts/dur/pid/tid and at
// least one span exists.
func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not a trace-event document: %w", err)
	}
	spans := 0
	for i, ev := range doc.TraceEvents {
		var ph string
		if raw, ok := ev["ph"]; !ok {
			return fmt.Errorf("event %d has no ph", i)
		} else if err := json.Unmarshal(raw, &ph); err != nil {
			return fmt.Errorf("event %d: bad ph: %w", i, err)
		}
		if ph != "X" {
			continue
		}
		for _, key := range []string{"name", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				return fmt.Errorf("X event %d is missing %q", i, key)
			}
		}
		spans++
	}
	if spans == 0 {
		return fmt.Errorf("trace has no complete (X) spans")
	}
	fmt.Printf("  %d events, %d spans\n", len(doc.TraceEvents), spans)
	return nil
}
