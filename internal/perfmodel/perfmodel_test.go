package perfmodel

import (
	"testing"

	"github.com/cognitive-sim/compass/internal/cocomac"
	"github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// Paper operating points (§VI, §VII).
const (
	coresPerNodeWeak = 16384
	firingHz         = 8.1
	density          = 0.10
)

func bgqWorkload(t *testing.T, nodes, coresPerNode int) Workload {
	t.Helper()
	net := cocomac.Generate(2012)
	w, err := AnalyticCoCoMac(net, nodes, coresPerNode, firingHz, density)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestCalibrationWeakScalingEndpoint pins the model to the paper's
// headline: 256M cores on 16 racks (16384 nodes × 16384 cores) simulate
// 500 ticks in 194 s — 388× slower than real time at 8.1 Hz.
func TestCalibrationWeakScalingEndpoint(t *testing.T) {
	w := bgqWorkload(t, 16384, coresPerNodeWeak)
	pt, err := Project(BlueGeneQ(), w, 32, compass.TransportMPI)
	if err != nil {
		t.Fatal(err)
	}
	slowdown := pt.Total() / 0.001 // ticks are 1 ms
	if slowdown < 290 || slowdown > 560 {
		t.Fatalf("modelled slowdown %.0f× outside the calibration band around the paper's 388×", slowdown)
	}
	// The Network phase must be a minor contributor at this point, as in
	// Figure 4(a).
	if pt.Network > pt.Synapse+pt.Neuron {
		t.Fatalf("Network phase %.3fs dominates compute %.3fs", pt.Network, pt.Synapse+pt.Neuron)
	}
}

// TestCalibrationWeakScalingFlat reproduces Figure 4(a): with cores per
// node fixed, total per-tick time is near-constant from 1 to 16 racks.
func TestCalibrationWeakScalingFlat(t *testing.T) {
	m := BlueGeneQ()
	var first, last float64
	for _, racks := range []int{1, 2, 4, 8, 16} {
		w := bgqWorkload(t, racks*1024, coresPerNodeWeak)
		pt, err := Project(m, w, 32, compass.TransportMPI)
		if err != nil {
			t.Fatal(err)
		}
		if first == 0 {
			first = pt.Total()
		}
		last = pt.Total()
	}
	if last < first {
		t.Fatalf("total time decreased under weak scaling: %.3f -> %.3f", first, last)
	}
	if last > 1.35*first {
		t.Fatalf("weak scaling not flat: %.3fs at 1 rack vs %.3fs at 16 racks", first, last)
	}
}

// TestCalibrationStrongScaling reproduces Figure 5: a fixed 32M-core
// model speeds up 6.9× on 8 racks and 8.8× on 16 racks relative to 1
// rack (imperfect at the largest scale because of the communication-
// intense phases).
func TestCalibrationStrongScaling(t *testing.T) {
	m := BlueGeneQ()
	const totalCores = 32 << 20
	times := map[int]float64{}
	for _, racks := range []int{1, 8, 16} {
		nodes := racks * 1024
		w := bgqWorkload(t, nodes, totalCores/nodes)
		pt, err := Project(m, w, 32, compass.TransportMPI)
		if err != nil {
			t.Fatal(err)
		}
		times[racks] = pt.Total()
	}
	s8 := times[1] / times[8]
	s16 := times[1] / times[16]
	if s8 < 5.0 || s8 > 8.0 {
		t.Fatalf("8-rack speedup %.2f outside band around paper's 6.9×", s8)
	}
	if s16 < 7.0 || s16 > 11.5 {
		t.Fatalf("16-rack speedup %.2f outside band around paper's 8.8×", s16)
	}
	if s16 >= 16 {
		t.Fatalf("16-rack speedup %.2f is implausibly perfect", s16)
	}
	if s16 <= s8 {
		t.Fatalf("speedup not monotone: %.2f at 8 racks, %.2f at 16", s8, s16)
	}
}

// TestCalibrationThreadScaling reproduces Figure 6: near-linear speedup
// in OpenMP threads, capped below perfect by the Network-phase critical
// section and shared-memory contention.
func TestCalibrationThreadScaling(t *testing.T) {
	m := BlueGeneQ()
	// 64M cores on 4 racks: 16384 cores per node.
	w := bgqWorkload(t, 4096, coresPerNodeWeak)
	var t1 float64
	prev := 0.0
	for _, threads := range []int{1, 2, 4, 8, 16, 32} {
		pt, err := Project(m, w, threads, compass.TransportMPI)
		if err != nil {
			t.Fatal(err)
		}
		total := pt.Total()
		if threads == 1 {
			t1 = total
		} else if total >= prev {
			t.Fatalf("no speedup from %d threads", threads)
		}
		prev = total
	}
	s32 := t1 / prev
	if s32 < 18 || s32 >= 32 {
		t.Fatalf("32-thread speedup %.1f outside the imperfect-but-near-linear band", s32)
	}
}

// TestCalibrationPGASRealTime reproduces Figure 7: 81K TrueNorth cores
// on four Blue Gene/P racks run in (soft) real time under PGAS, while the
// MPI implementation takes about 2.1× as long.
func TestCalibrationPGASRealTime(t *testing.T) {
	m := BlueGeneP()
	const nodes = 4096
	w, err := SyntheticUniform(nodes, 81920/nodes, 10, 0.75, density)
	if err != nil {
		t.Fatal(err)
	}
	pgasT, err := Project(m, w, 4, compass.TransportPGAS)
	if err != nil {
		t.Fatal(err)
	}
	mpiT, err := Project(m, w, 4, compass.TransportMPI)
	if err != nil {
		t.Fatal(err)
	}
	if pgasT.Total() < 0.0005 || pgasT.Total() > 0.0015 {
		t.Fatalf("PGAS per-tick %.4fms outside the soft real-time band", pgasT.Total()*1000)
	}
	ratio := mpiT.Total() / pgasT.Total()
	if ratio < 1.5 || ratio > 3.2 {
		t.Fatalf("MPI/PGAS ratio %.2f outside band around paper's 2.1×", ratio)
	}
}

// TestPGASAdvantageGrowsWithScale: the reduce-scatter grows with the
// communicator while the PGAS barrier grows only logarithmically, so the
// PGAS advantage widens from 1 to 4 racks (visible in Figure 7's gap).
func TestPGASAdvantageGrowsWithScale(t *testing.T) {
	m := BlueGeneP()
	prev := 0.0
	for _, racks := range []int{1, 2, 4} {
		nodes := racks * 1024
		w, err := SyntheticUniform(nodes, 81920/nodes, 10, 0.75, density)
		if err != nil {
			t.Fatal(err)
		}
		pgasT, _ := Project(m, w, 4, compass.TransportPGAS)
		mpiT, _ := Project(m, w, 4, compass.TransportMPI)
		ratio := mpiT.Total() / pgasT.Total()
		if ratio <= prev {
			t.Fatalf("PGAS advantage not growing: ratio %.2f at %d racks after %.2f", ratio, racks, prev)
		}
		prev = ratio
	}
}

// TestMessageGrowthMechanism reproduces the Figure 4(b) mechanism: with
// increasing model size "the white matter connections become thinner and
// therefore less frequented" — spikes per message fall monotonically, so
// message count grows far slower than the naive all-pairs peer count
// (which grows quadratically under weak scaling), while spike volume
// grows linearly with the model.
func TestMessageGrowthMechanism(t *testing.T) {
	net := cocomac.Generate(2012)
	var prevThickness float64
	var w1, w16 Workload
	for _, racks := range []int{1, 2, 4, 8, 16} {
		w, err := AnalyticCoCoMac(net, racks*1024, coresPerNodeWeak, firingHz, density)
		if err != nil {
			t.Fatal(err)
		}
		thickness := w.TotalRemoteSpikesPerTick / w.TotalMessagesPerTick
		if thickness < 1 {
			t.Fatalf("%d racks: %.3f spikes per message; aggregation broken", racks, thickness)
		}
		if prevThickness != 0 && thickness >= prevThickness {
			t.Fatalf("%d racks: links did not get thinner (%.2f -> %.2f spikes/msg)", racks, prevThickness, thickness)
		}
		prevThickness = thickness
		if racks == 1 {
			w1 = w
		}
		if racks == 16 {
			w16 = w
		}
	}
	msgGrowth := w16.TotalMessagesPerTick / w1.TotalMessagesPerTick
	if msgGrowth <= 1 {
		t.Fatalf("message count did not grow: %.2f", msgGrowth)
	}
	// Naive all-pairs peer growth over a 16× node scale-up is 256×; link
	// thinning must hold message growth far below that.
	if msgGrowth >= 100 {
		t.Fatalf("message growth %.1f× not held down by link thinning", msgGrowth)
	}
	spikeGrowth := w16.TotalRemoteSpikesPerTick / w1.TotalRemoteSpikesPerTick
	if spikeGrowth < 14 || spikeGrowth > 18 {
		t.Fatalf("spike growth %.2f×, want ≈16×", spikeGrowth)
	}
}

// TestHeadlineBandwidthBelowLink reproduces §VI-B: at 256M cores the
// aggregate spike payload per tick (≈22M spikes × 20 B) stays well below
// the 2 GB/s link bandwidth.
func TestHeadlineBandwidthBelowLink(t *testing.T) {
	w := bgqWorkload(t, 16384, coresPerNodeWeak)
	perNodeBytes := w.Max.BytesSent
	if perNodeBytes >= 2e9*0.001 {
		t.Fatalf("per-node per-tick payload %.0f B exceeds the 1 ms link budget", perNodeBytes)
	}
	total := w.TotalRemoteSpikesPerTick
	// The paper reports ≈22M spikes per tick; the calibrated white-matter
	// activity factor must land within a factor of two.
	if total < 11e6 || total > 44e6 {
		t.Fatalf("total remote spikes per tick %.3g outside band around paper's 22M", total)
	}
	// ≈0.44 GB per tick at 20 B per spike (§VI-B).
	gb := total * truenorth.SpikeWireBytes / 1e9
	if gb < 0.2 || gb > 0.9 {
		t.Fatalf("per-tick payload %.2f GB outside band around paper's 0.44 GB", gb)
	}
}

func TestCollectiveCosts(t *testing.T) {
	m := BlueGeneQ()
	if m.ReduceScatterTime(1) != 0 || m.BarrierTime(1) != 0 {
		t.Fatal("single-node collectives must be free")
	}
	if m.ReduceScatterTime(2048) <= m.ReduceScatterTime(1024) {
		t.Fatal("reduce-scatter not monotone")
	}
	if m.BarrierTime(4096) <= m.BarrierTime(1024) {
		t.Fatal("barrier not monotone")
	}
	// PGAS beats two-sided collectives at scale.
	if m.BarrierTime(16384) >= m.ReduceScatterTime(16384) {
		t.Fatal("barrier must be far cheaper than reduce-scatter at scale")
	}
}

func TestProjectValidation(t *testing.T) {
	m := BlueGeneQ()
	w := Workload{Nodes: 4, Max: NodeWork{Cores: 1}}
	if _, err := Project(m, w, 0, compass.TransportMPI); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := Project(m, Workload{}, 1, compass.TransportMPI); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := Project(m, w, 1, compass.Transport(9)); err == nil {
		t.Fatal("bad transport accepted")
	}
	// Thread counts above the hardware limit are clamped, not errors.
	a, err := Project(m, w, 64, compass.TransportMPI)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Project(m, w, 1000, compass.TransportMPI)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != b.Total() {
		t.Fatal("thread clamp not applied")
	}
}

func TestWorkloadValidation(t *testing.T) {
	net := cocomac.Generate(1)
	if _, err := AnalyticCoCoMac(net, 0, 1, 8, 0.1); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := AnalyticCoCoMac(net, 1, 1, -1, 0.1); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := AnalyticCoCoMac(net, 1, 1, 8, 1.5); err == nil {
		t.Fatal("bad density accepted")
	}
	if _, err := SyntheticUniform(0, 1, 8, 0.5, 0.1); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := SyntheticUniform(4, 1, 8, 1.5, 0.1); err == nil {
		t.Fatal("bad local fraction accepted")
	}
}

// TestWorkloadFromStats checks the measured-workload path against a real
// functional simulation.
func TestWorkloadFromStats(t *testing.T) {
	r := prng.New(3)
	m := &truenorth.Model{Seed: 3}
	const nCores = 8
	for k := 0; k < nCores; k++ {
		cfg := &truenorth.CoreConfig{ID: truenorth.CoreID(k)}
		for a := 0; a < truenorth.CoreSize; a++ {
			cfg.SetSynapse(a, r.Intn(truenorth.CoreSize), true)
		}
		for j := 0; j < truenorth.CoreSize; j++ {
			cfg.Neurons[j] = truenorth.NeuronParams{
				Weights:   [truenorth.NumAxonTypes]int16{3, 3, 3, 3},
				Leak:      1,
				Threshold: 40,
				Floor:     -8,
				Target: truenorth.SpikeTarget{
					Core:  truenorth.CoreID(r.Intn(nCores)),
					Axon:  uint16(r.Intn(truenorth.CoreSize)),
					Delay: 1,
				},
				Enabled: true,
			}
		}
		m.Cores = append(m.Cores, cfg)
	}
	const ticks = 20
	stats, err := compass.Run(m, compass.Config{Ranks: 4, ThreadsPerRank: 1}, ticks)
	if err != nil {
		t.Fatal(err)
	}
	w := WorkloadFromStats(stats)
	if w.Nodes != 4 {
		t.Fatalf("Nodes = %d", w.Nodes)
	}
	if w.Max.Cores != 2 {
		t.Fatalf("Max.Cores = %v, want 2", w.Max.Cores)
	}
	if w.Max.NeuronUpdates != 2*truenorth.CoreSize {
		t.Fatalf("Max.NeuronUpdates = %v", w.Max.NeuronUpdates)
	}
	if w.Max.Firings*float64(ticks)*4 < float64(stats.TotalSpikes) {
		t.Fatalf("max firings %.1f cannot cover total %d", w.Max.Firings, stats.TotalSpikes)
	}
	pt, err := Project(BlueGeneQ(), w, 16, compass.TransportMPI)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Total() <= 0 {
		t.Fatal("non-positive projected time")
	}
}

func TestWorkloadFromStatsZeroTicks(t *testing.T) {
	w := WorkloadFromStats(&compass.RunStats{Ranks: 2})
	if w.Nodes != 2 || w.Max.Firings != 0 {
		t.Fatalf("zero-tick workload: %+v", w)
	}
}

func BenchmarkAnalyticCoCoMac(b *testing.B) {
	net := cocomac.Generate(2012)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyticCoCoMac(net, 16384, coresPerNodeWeak, firingHz, density); err != nil {
			b.Fatal(err)
		}
	}
}
