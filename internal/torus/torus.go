// Package torus models the torus interconnects of the Blue Gene
// machines Compass ran on: the 5-D torus of Blue Gene/Q (10 bidirectional
// 2 GB/s links per node, §VI-A) and the 3-D torus of Blue Gene/P. The
// performance model uses it for hop distances, network diameter, average
// routing distance, and bisection width when projecting communication
// times.
package torus

import (
	"fmt"
	"sort"
)

// Topology is an N-dimensional torus of nodes.
type Topology struct {
	// Dims holds the extent of each torus dimension; the node count is
	// their product.
	Dims []int
}

// New builds a torus with the given dimensions.
func New(dims ...int) (*Topology, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("torus: no dimensions")
	}
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("torus: dimension %d < 1", d)
		}
	}
	out := &Topology{Dims: append([]int(nil), dims...)}
	return out, nil
}

// Balanced builds an approximately cubic torus of the given
// dimensionality containing at least nodes nodes (exactly nodes when
// nodes factors appropriately). It greedily splits the node count into
// near-equal factors, which matches how Blue Gene partitions are shaped.
func Balanced(nodes, dims int) (*Topology, error) {
	if nodes < 1 || dims < 1 {
		return nil, fmt.Errorf("torus: invalid nodes=%d dims=%d", nodes, dims)
	}
	out := make([]int, dims)
	for i := range out {
		out[i] = 1
	}
	remaining := nodes
	// Peel prime factors largest-first onto the currently smallest dim.
	for _, p := range primeFactors(remaining) {
		small := 0
		for i := range out {
			if out[i] < out[small] {
				small = i
			}
		}
		out[small] *= p
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return New(out...)
}

// primeFactors returns the prime factorization of n, descending.
func primeFactors(n int) []int {
	var out []int
	for p := 2; p*p <= n; p++ {
		for n%p == 0 {
			out = append(out, p)
			n /= p
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Nodes returns the total node count.
func (t *Topology) Nodes() int {
	n := 1
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// Coord converts a node rank (0..Nodes-1) into torus coordinates.
func (t *Topology) Coord(rank int) []int {
	out := make([]int, len(t.Dims))
	for i := len(t.Dims) - 1; i >= 0; i-- {
		out[i] = rank % t.Dims[i]
		rank /= t.Dims[i]
	}
	return out
}

// Rank converts torus coordinates back into a node rank.
func (t *Topology) Rank(coord []int) int {
	r := 0
	for i, c := range coord {
		r = r*t.Dims[i] + c
	}
	return r
}

// HopDistance returns the minimal hop count between two ranks with
// wraparound in every dimension.
func (t *Topology) HopDistance(a, b int) int {
	ca, cb := t.Coord(a), t.Coord(b)
	hops := 0
	for i := range t.Dims {
		d := ca[i] - cb[i]
		if d < 0 {
			d = -d
		}
		if w := t.Dims[i] - d; w < d {
			d = w
		}
		hops += d
	}
	return hops
}

// Diameter returns the maximum hop distance between any two nodes:
// sum of floor(dim/2).
func (t *Topology) Diameter() int {
	d := 0
	for _, dim := range t.Dims {
		d += dim / 2
	}
	return d
}

// AvgDistance returns the exact mean hop distance between two uniformly
// random nodes: per dimension the mean wraparound distance, summed.
func (t *Topology) AvgDistance() float64 {
	total := 0.0
	for _, dim := range t.Dims {
		// Mean circular distance on a ring of size n:
		// (1/n)·sum_{d=0}^{n-1} min(d, n-d) = n/4 for even n,
		// (n²-1)/(4n) for odd n.
		n := float64(dim)
		if dim%2 == 0 {
			total += n / 4
		} else {
			total += (n*n - 1) / (4 * n)
		}
	}
	return total
}

// BisectionLinks returns the number of links crossing the smallest
// bisection of the torus: cutting the largest dimension in half crosses
// 2×(nodes/largestDim) links (two cut planes from wraparound).
func (t *Topology) BisectionLinks() int {
	if t.Nodes() == 1 {
		return 0
	}
	largest := t.Dims[0]
	for _, d := range t.Dims {
		if d > largest {
			largest = d
		}
	}
	if largest == 1 {
		return 0
	}
	return 2 * t.Nodes() / largest
}

// LinksPerNode returns the number of bidirectional links per node
// (2 per torus dimension with extent > 1; a dimension of extent 2 still
// has two distinct links in Blue Gene hardware).
func (t *Topology) LinksPerNode() int {
	n := 0
	for _, d := range t.Dims {
		if d > 1 {
			n += 2
		}
	}
	return n
}

// BGQDims returns the canonical 5-D torus shape of an n-rack Blue Gene/Q
// system (1024 nodes per rack); shapes follow the machine's A×B×C×D×E
// partitioning with E fixed at 2.
func BGQDims(racks int) ([]int, error) {
	shapes := map[int][]int{
		1:  {4, 4, 4, 8, 2},
		2:  {4, 4, 8, 8, 2},
		4:  {4, 8, 8, 8, 2},
		8:  {8, 8, 8, 8, 2},
		16: {8, 8, 16, 8, 2},
	}
	if s, ok := shapes[racks]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("torus: no canonical BG/Q shape for %d racks", racks)
}

// BGPDims returns the 3-D torus shape of an n-rack Blue Gene/P system
// (1024 nodes per rack).
func BGPDims(racks int) ([]int, error) {
	shapes := map[int][]int{
		1: {8, 8, 16},
		2: {8, 16, 16},
		4: {16, 16, 16},
	}
	if s, ok := shapes[racks]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("torus: no canonical BG/P shape for %d racks", racks)
}
