package compass

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/cognitive-sim/compass/internal/cocomac"
	"github.com/cognitive-sim/compass/internal/faults"
	"github.com/cognitive-sim/compass/internal/pcc"
	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/telemetry"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// chaosDeadline bounds every chaos run. The acceptance bar for the fault
// layer is "bit-identical output or a clean error — never a hang", so no
// test in this file may block on Run without a watchdog.
const chaosDeadline = 60 * time.Second

// runWithDeadline runs Run on a watchdog: if the simulator has not
// returned within chaosDeadline the test fails immediately instead of
// hanging the suite — a deadlocked transport is exactly the bug class
// this file guards against.
func runWithDeadline(t *testing.T, m *truenorth.Model, cfg Config, ticks int) (*RunStats, error) {
	t.Helper()
	type result struct {
		stats *RunStats
		err   error
	}
	done := make(chan result, 1)
	go func() {
		stats, err := Run(m, cfg, ticks)
		done <- result{stats, err}
	}()
	select {
	case r := <-done:
		return r.stats, r.err
	case <-time.After(chaosDeadline):
		t.Fatalf("Run did not return within %v (transport hang)", chaosDeadline)
		return nil, nil
	}
}

// chaosInjector parses a fault spec and shrinks the wall-clock knobs so
// delays and stalls stay test-sized.
func chaosInjector(t *testing.T, spec string) *faults.Injector {
	t.Helper()
	inj, err := faults.Parse(spec, 1)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	inj.DelayQuantum = 50 * time.Microsecond
	return inj
}

// TestChaosMatrix is the acceptance table of the fault layer: every
// transport crossed with every fault class (plus a compound spec) either
// completes with spike output bit-identical to the serial reference
// (survivable faults are fully absorbed) or returns a non-nil error
// naming the failing rank and tick (fatal faults propagate cleanly).
// Either way Run returns before the watchdog fires.
func TestChaosMatrix(t *testing.T) {
	const ticks = 12
	m := randomModel(12, 0xFA17)
	want, wantTotal := serialTrace(t, m, ticks)

	cases := []struct {
		spec  string
		fatal bool
	}{
		{"drop", false},
		{"dup", false},
		{"delay:k=2", false},
		{"stall:rank=1,k=1", false},
		{"drop;dup", false},
		{"crash:rank=1,tick=5", true},
		{"drop:attempts=99", true},
	}
	for _, tr := range Transports() {
		for _, tc := range cases {
			t.Run(tr.String()+"/"+tc.spec, func(t *testing.T) {
				inj := chaosInjector(t, tc.spec)
				cfg := Config{
					Ranks: 3, ThreadsPerRank: 2, Transport: tr,
					RecordTrace: true, Faults: inj,
				}
				stats, err := runWithDeadline(t, m, cfg, ticks)
				if tc.fatal {
					if err == nil {
						t.Fatalf("fatal fault %q completed without error", tc.spec)
					}
					if !strings.Contains(err.Error(), "rank") || !strings.Contains(err.Error(), "tick") {
						t.Fatalf("fatal fault error does not name rank and tick: %v", err)
					}
					return
				}
				if err != nil {
					t.Fatalf("survivable fault %q failed the run: %v", tc.spec, err)
				}
				if stats.TotalSpikes != wantTotal {
					t.Fatalf("total spikes %d, want %d", stats.TotalSpikes, wantTotal)
				}
				if !reflect.DeepEqual(stats.Trace, want) {
					t.Fatalf("trace under %q differs from serial reference (%d vs %d events)",
						tc.spec, len(stats.Trace), len(want))
				}
				sum := inj.Summary()
				var fired uint64
				for _, n := range sum.Injected {
					fired += n
				}
				if fired == 0 {
					t.Fatalf("spec %q injected nothing — the case tested the fault-free path", tc.spec)
				}
			})
		}
	}
}

// TestRankFailureDoesNotHang is the regression test for the headline
// bug: rank 1 fails at tick 5 and every backend must propagate that
// failure to its peers and return — with the causal error, naming the
// rank and the tick — instead of stranding the other ranks in a
// receive, a barrier, or a collective.
func TestRankFailureDoesNotHang(t *testing.T) {
	m := randomModel(9, 0xDEAD)
	for _, tr := range Transports() {
		t.Run(tr.String(), func(t *testing.T) {
			inj := chaosInjector(t, "crash:rank=1,tick=5")
			cfg := Config{Ranks: 3, ThreadsPerRank: 2, Transport: tr, Faults: inj}
			_, err := runWithDeadline(t, m, cfg, 30)
			if err == nil {
				t.Fatal("run completed despite rank crash")
			}
			var crash *faults.CrashError
			if !errors.As(err, &crash) {
				t.Fatalf("error is not the injected crash: %v", err)
			}
			if crash.Rank != 1 || crash.Tick != 5 {
				t.Fatalf("crash names rank %d tick %d, want rank 1 tick 5", crash.Rank, crash.Tick)
			}
			if !strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "tick 5") {
				t.Fatalf("error text does not name rank and tick: %v", err)
			}
		})
	}
}

// TestDropPastRetryBudgetFails: a drop rule that outlives the retry
// budget must fail the run with an error wrapping faults.ErrDropped and
// counting every retry, on every transport.
func TestDropPastRetryBudgetFails(t *testing.T) {
	m := randomModel(9, 0xD04)
	for _, tr := range Transports() {
		t.Run(tr.String(), func(t *testing.T) {
			inj := chaosInjector(t, "drop:attempts=99")
			cfg := Config{Ranks: 3, ThreadsPerRank: 1, Transport: tr, Faults: inj}
			_, err := runWithDeadline(t, m, cfg, 10)
			if !errors.Is(err, faults.ErrDropped) {
				t.Fatalf("want ErrDropped, got %v", err)
			}
			if sum := inj.Summary(); sum.Retries == 0 {
				t.Fatal("no retries recorded before the budget failed")
			}
		})
	}
}

// TestFailedRunStillFlushesTelemetry: the cumulative compute counters
// are flushed on a deferred path, so a run killed mid-flight by an
// injected crash must still publish them — a post-mortem scrape that
// reads as "the rank never ran" would make every failure undiagnosable.
func TestFailedRunStillFlushesTelemetry(t *testing.T) {
	m := randomModel(9, 0x7E1)
	tel := NewTelemetry(3)
	inj := chaosInjector(t, "crash:rank=1,tick=3")
	cfg := Config{Ranks: 3, ThreadsPerRank: 2, Telemetry: tel, Faults: inj}
	_, err := runWithDeadline(t, m, cfg, 30)
	if err == nil {
		t.Fatal("run completed despite rank crash")
	}
	snap := tel.Registry().Snapshot()
	dispatch := snap.Value("compass_synapse_dispatch_total", telemetry.Label{Key: "path", Value: "kernel"}) +
		snap.Value("compass_synapse_dispatch_total", telemetry.Label{Key: "path", Value: "scalar"})
	skips := snap.Value("compass_synapse_skips_total")
	quiescent := snap.Value("compass_quiescent_core_ticks_total")
	if dispatch+skips+quiescent == 0 {
		t.Fatal("failed run flushed no compute counters — telemetry lost on the error path")
	}
	if got := snap.Value("compass_faults_injected_total",
		telemetry.Label{Key: "class", Value: "crash"}); got != 1 {
		t.Fatalf("crash injection count %v, want 1", got)
	}
	if snap.Value("compass_fault_aborts_total") < 1 {
		t.Fatal("no abort broadcast recorded")
	}
}

// TestSurvivableFaultTelemetry: the fault counters must mirror the
// injector's summary after a survivable chaos run.
func TestSurvivableFaultTelemetry(t *testing.T) {
	m := randomModel(12, 0x5E1)
	tel := NewTelemetry(3)
	inj := chaosInjector(t, "drop;dup")
	cfg := Config{Ranks: 3, ThreadsPerRank: 2, Telemetry: tel, Faults: inj}
	if _, err := runWithDeadline(t, m, cfg, 12); err != nil {
		t.Fatal(err)
	}
	sum := inj.Summary()
	snap := tel.Registry().Snapshot()
	for _, c := range []faults.Class{faults.Drop, faults.Duplicate} {
		got := snap.Value("compass_faults_injected_total",
			telemetry.Label{Key: "class", Value: c.String()})
		if uint64(got) != sum.Injected[c] {
			t.Errorf("telemetry %s injections %v, injector counted %d", c, got, sum.Injected[c])
		}
		if sum.Injected[c] == 0 {
			t.Errorf("spec injected no %s faults", c)
		}
	}
	if got := snap.Value("compass_fault_retries_total"); uint64(got) != sum.Retries {
		t.Errorf("telemetry retries %v, injector counted %d", got, sum.Retries)
	}
	if got := snap.Value("compass_fault_dedups_total"); uint64(got) != sum.Dedups {
		t.Errorf("telemetry dedups %v, injector counted %d", got, sum.Dedups)
	}
	if sum.Dedups != sum.Injected[faults.Duplicate] {
		t.Errorf("%d duplicates injected but %d deduplicated", sum.Injected[faults.Duplicate], sum.Dedups)
	}
}

// TestResumeDropsStaleInputs: resuming from a checkpoint must purge
// external input spikes scheduled before the start tick — they were
// already consumed by the checkpointed run — and account for them in
// DroppedInputs, while the resumed trace still matches the straight run.
func TestResumeDropsStaleInputs(t *testing.T) {
	m := randomModel(8, 0xBEEF)
	const half = 10

	straight, err := Run(m, Config{Ranks: 2, ThreadsPerRank: 2, RecordTrace: true}, 2*half)
	if err != nil {
		t.Fatal(err)
	}
	var want []truenorth.SpikeEvent
	for _, ev := range straight.Trace {
		if ev.FireTick >= half {
			want = append(want, ev)
		}
	}

	first, err := Run(m, Config{Ranks: 2, ThreadsPerRank: 2, ReturnState: true}, half)
	if err != nil {
		t.Fatal(err)
	}
	if first.DroppedInputs != 0 {
		t.Fatalf("fresh run dropped %d inputs", first.DroppedInputs)
	}

	second, err := Run(m, Config{
		Ranks: 3, ThreadsPerRank: 1, StartFrom: first.Final, RecordTrace: true,
	}, half)
	if err != nil {
		t.Fatal(err)
	}
	// randomModel drives 64 input spikes per tick; the checkpointed run
	// consumed ticks 0..9, so the resume must drop exactly those 640.
	if second.DroppedInputs != 64*half {
		t.Fatalf("resumed run dropped %d stale inputs, want %d", second.DroppedInputs, 64*half)
	}
	if !reflect.DeepEqual(second.Trace, want) {
		t.Fatalf("resumed trace differs after stale-input purge: %d vs %d events",
			len(second.Trace), len(want))
	}
}

// TestMPITagBleedAcrossModulus: the MPI tag is tick mod mpiTagModulus,
// which is only sound while rank skew stays under the modulus (the
// per-tick collective bounds it at one tick). This test runs the MPI
// transport well past the wraparound with fresh input drive on both
// sides of it — so wrapped tags carry real messages — while a stall
// injector skews rank 0's wall-clock every tick, and requires the trace
// to stay bit-identical to the serial reference: any tick bleed through
// an aliased tag would corrupt the spike multiset.
func TestMPITagBleedAcrossModulus(t *testing.T) {
	if testing.Short() {
		t.Skip("long run across the tag modulus")
	}
	const ticks = mpiTagModulus + 40
	m := randomModel(6, 0x7A9)
	r := prng.New(99)
	for tick := uint64(mpiTagModulus - 10); tick < mpiTagModulus+20; tick++ {
		for a := 0; a < 32; a++ {
			m.Inputs = append(m.Inputs, truenorth.InputSpike{
				Tick: tick,
				Core: truenorth.CoreID(int(tick) % 6),
				Axon: uint16(r.Intn(truenorth.CoreSize)),
			})
		}
	}
	want, wantTotal := serialTrace(t, m, ticks)

	inj, err := faults.New(1, faults.Rule{
		Class: faults.Stall, Rank: 0, Tick: faults.Any, Dest: faults.Any, K: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.DelayQuantum = 20 * time.Microsecond
	stats, err := runWithDeadline(t, m, Config{
		Ranks: 3, ThreadsPerRank: 2, Transport: TransportMPI,
		RecordTrace: true, Faults: inj,
	}, ticks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalSpikes != wantTotal {
		t.Fatalf("total spikes %d, want %d", stats.TotalSpikes, wantTotal)
	}
	if !reflect.DeepEqual(stats.Trace, want) {
		t.Fatalf("trace differs across the tag modulus: %d vs %d events", len(stats.Trace), len(want))
	}
}

// TestChaosCoCoMac runs the paper's CoCoMac workload under a compound
// survivable fault spec on every transport and requires the spike trace
// to match the fault-free baseline exactly — the chaos-smoke acceptance
// workload, in-process.
func TestChaosCoCoMac(t *testing.T) {
	const ticks = 10
	net := cocomac.Generate(7)
	spec, err := net.ToSpec(128, ticks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pcc.Compile(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Ranks: 3, ThreadsPerRank: 2, RankOf: res.RankOf, RecordTrace: true}
	baseline, err := runWithDeadline(t, res.Model, base, ticks)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range Transports() {
		t.Run(tr.String(), func(t *testing.T) {
			cfg := base
			cfg.Transport = tr
			cfg.Faults = chaosInjector(t, "drop;dup;delay:k=1")
			stats, err := runWithDeadline(t, res.Model, cfg, ticks)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stats.Trace, baseline.Trace) {
				t.Fatalf("CoCoMac trace under faults differs from baseline (%d vs %d events)",
					len(stats.Trace), len(baseline.Trace))
			}
		})
	}
}
