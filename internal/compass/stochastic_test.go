package compass

import (
	"reflect"
	"testing"

	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// stochasticModel builds a model exercising every stochastic mechanism:
// stochastic synaptic weights on two axon types and stochastic leak.
// Decomposition invariance for such a model proves that the per-core
// PRNG streams are consumed identically under every placement — the
// property that makes Compass usable as a hardware contract even for
// stochastic neuron configurations.
func stochasticModel(nCores int, seed uint64) *truenorth.Model {
	r := prng.New(seed)
	m := &truenorth.Model{Seed: seed}
	for k := 0; k < nCores; k++ {
		cfg := &truenorth.CoreConfig{ID: truenorth.CoreID(k)}
		for a := 0; a < truenorth.CoreSize; a++ {
			cfg.AxonTypes[a] = uint8(r.Intn(truenorth.NumAxonTypes))
			for s := 0; s < 6; s++ {
				cfg.SetSynapse(a, r.Intn(truenorth.CoreSize), true)
			}
		}
		for j := 0; j < truenorth.CoreSize; j++ {
			cfg.Neurons[j] = truenorth.NeuronParams{
				Weights:          [truenorth.NumAxonTypes]int16{128, -64, 192, 96},
				StochasticWeight: [truenorth.NumAxonTypes]bool{true, true, false, false},
				Leak:             64,
				StochasticLeak:   true,
				Threshold:        int32(2 + r.Intn(5)),
				Reset:            0,
				Floor:            -16,
				Target: truenorth.SpikeTarget{
					Core:  truenorth.CoreID(r.Intn(nCores)),
					Axon:  uint16(r.Intn(truenorth.CoreSize)),
					Delay: uint8(1 + r.Intn(truenorth.MaxDelay)),
				},
				Enabled: true,
			}
		}
		m.Cores = append(m.Cores, cfg)
	}
	for tick := uint64(0); tick < 10; tick++ {
		for a := 0; a < 32; a++ {
			m.Inputs = append(m.Inputs, truenorth.InputSpike{
				Tick: tick,
				Core: truenorth.CoreID(int(tick) % nCores),
				Axon: uint16(a * 7 % truenorth.CoreSize),
			})
		}
	}
	return m
}

func TestDecompositionInvarianceStochastic(t *testing.T) {
	m := stochasticModel(6, 0xFEED)
	const ticks = 30
	want, wantSpikes := serialTrace(t, m, ticks)
	if wantSpikes == 0 {
		t.Fatal("stochastic model silent; test vacuous")
	}
	for _, cfg := range []Config{
		{Ranks: 1, ThreadsPerRank: 3, Transport: TransportMPI},
		{Ranks: 3, ThreadsPerRank: 2, Transport: TransportMPI},
		{Ranks: 6, ThreadsPerRank: 2, Transport: TransportMPI},
		{Ranks: 2, ThreadsPerRank: 3, Transport: TransportPGAS},
		{Ranks: 5, ThreadsPerRank: 1, Transport: TransportPGAS},
		{Ranks: 4, ThreadsPerRank: 2, Transport: TransportShmem},
		{Ranks: 6, ThreadsPerRank: 1, Transport: TransportShmem},
	} {
		cfg.RecordTrace = true
		stats, err := Run(m, cfg, ticks)
		if err != nil {
			t.Fatalf("%dr%dt-%s: %v", cfg.Ranks, cfg.ThreadsPerRank, cfg.Transport, err)
		}
		if stats.TotalSpikes != wantSpikes {
			t.Errorf("%dr%dt-%s: %d spikes, want %d", cfg.Ranks, cfg.ThreadsPerRank, cfg.Transport, stats.TotalSpikes, wantSpikes)
			continue
		}
		if !reflect.DeepEqual(stats.Trace, want) {
			t.Errorf("%dr%dt-%s: stochastic trace differs from serial reference", cfg.Ranks, cfg.ThreadsPerRank, cfg.Transport)
		}
	}
}

// TestStochasticSeedSensitivity: different model seeds must give
// different stochastic traces (the PRNG is actually in the loop).
func TestStochasticSeedSensitivity(t *testing.T) {
	a := stochasticModel(4, 1)
	b := stochasticModel(4, 1)
	b.Seed = 2 // same wiring, different runtime streams
	ra, err := Run(a, Config{Ranks: 2, ThreadsPerRank: 1, RecordTrace: true}, 20)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b, Config{Ranks: 2, ThreadsPerRank: 1, RecordTrace: true}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ra.Trace, rb.Trace) {
		t.Fatal("different seeds produced identical stochastic traces")
	}
}
