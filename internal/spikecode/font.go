package spikecode

import "github.com/cognitive-sim/compass/internal/prng"

// The 5×7 dot-matrix digit font and its glyph helpers, shared by the
// charrec example and the charrec scenario.

// Glyph geometry.
const (
	GlyphW    = 5
	GlyphH    = 7
	GlyphBits = GlyphW * GlyphH
)

// font5x7 is a standard 5×7 dot-matrix digit font, one string per row.
var font5x7 = map[rune][]string{
	'0': {" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "},
	'1': {"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "},
	'2': {" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"},
	'3': {" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "},
	'4': {"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "},
	'5': {"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "},
	'6': {" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "},
	'7': {"#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   "},
	'8': {" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "},
	'9': {" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "},
}

// Glyph returns the row-major pixel bits of a font glyph; ok is false
// for characters outside the font.
func Glyph(r rune) (bits []bool, ok bool) {
	rows, ok := font5x7[r]
	if !ok {
		return nil, false
	}
	out := make([]bool, GlyphBits)
	for y, row := range rows {
		for x, c := range row {
			out[y*GlyphW+x] = c == '#'
		}
	}
	return out, true
}

// Popcount counts the set bits of a pattern.
func Popcount(p []bool) int {
	n := 0
	for _, b := range p {
		if b {
			n++
		}
	}
	return n
}

// FlipPixels returns a copy of p with n randomly chosen pixels toggled
// (positions drawn from rng; the same position may be drawn twice).
func FlipPixels(p []bool, n int, rng *prng.Stream) []bool {
	out := append([]bool(nil), p...)
	for i := 0; i < n; i++ {
		idx := rng.Intn(len(out))
		out[idx] = !out[idx]
	}
	return out
}

// BitsToObs widens a binary pattern to the float observation vector the
// OneHot encoder consumes.
func BitsToObs(p []bool) []float64 {
	out := make([]float64, len(p))
	for i, b := range p {
		if b {
			out[i] = 1
		}
	}
	return out
}
