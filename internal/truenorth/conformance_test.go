package truenorth

import (
	"fmt"
	"testing"
)

// The conformance suite enumerates TrueNorth's single-neuron behaviour
// matrix as table-driven scenarios: one axon spike volley into one
// neuron under every combination of weight sign, leak sign, floor
// interaction, threshold edge, and axonal delay bound. Compass is "the
// key contract between hardware architects and software designers"
// (§II); this file is the executable form of that contract at the
// single-neuron level. Each scenario states the membrane trajectory it
// expects, tick by tick.

type confCase struct {
	name string
	// configuration
	weight    int16
	axonType  uint8
	leak      int16
	threshold int32
	reset     int32
	floor     int32
	// spikesAt lists ticks at which the input axon receives a spike.
	spikesAt []uint64
	// run length and expectations
	ticks     int
	wantFires []uint64 // ticks at which the neuron must fire
	wantFinal int32    // membrane potential after the run
}

func runConformance(t *testing.T, tc confCase) {
	t.Helper()
	cfg := &CoreConfig{ID: 0}
	cfg.AxonTypes[0] = tc.axonType
	cfg.SetSynapse(0, 0, true)
	var w [NumAxonTypes]int16
	w[tc.axonType] = tc.weight
	cfg.Neurons[0] = NeuronParams{
		Weights:   w,
		Leak:      tc.leak,
		Threshold: tc.threshold,
		Reset:     tc.reset,
		Floor:     tc.floor,
		Target:    SpikeTarget{Core: 0, Axon: 255, Delay: 1}, // axon 255 has an empty row
		Enabled:   true,
	}
	m := &Model{Seed: 1, Cores: []*CoreConfig{cfg}}
	for _, tk := range tc.spikesAt {
		m.Inputs = append(m.Inputs, InputSpike{Tick: tk, Core: 0, Axon: 0})
	}
	sim, err := NewSerialSim(m)
	if err != nil {
		t.Fatalf("%s: %v", tc.name, err)
	}
	var fires []uint64
	sim.OnSpike = func(tick uint64, s Spike) { fires = append(fires, tick) }
	if err := sim.Run(tc.ticks); err != nil {
		t.Fatalf("%s: %v", tc.name, err)
	}
	if fmt.Sprint(fires) != fmt.Sprint(tc.wantFires) {
		t.Fatalf("%s: fired at %v, want %v", tc.name, fires, tc.wantFires)
	}
	if got := sim.Core(0).Potential(0); got != tc.wantFinal {
		t.Fatalf("%s: final potential %d, want %d", tc.name, got, tc.wantFinal)
	}
}

func TestConformanceSingleNeuron(t *testing.T) {
	cases := []confCase{
		{
			name:   "excitatory spike below threshold accumulates",
			weight: 3, threshold: 10, floor: -100,
			spikesAt: []uint64{0, 2}, ticks: 5,
			wantFires: nil, wantFinal: 6,
		},
		{
			name:   "threshold is inclusive (V >= alpha fires)",
			weight: 5, threshold: 10, floor: -100,
			spikesAt: []uint64{0, 1}, ticks: 3,
			wantFires: []uint64{1}, wantFinal: 0,
		},
		{
			name:   "reset value honored after firing",
			weight: 10, threshold: 10, reset: -3, floor: -100,
			spikesAt: []uint64{0}, ticks: 2,
			wantFires: []uint64{0}, wantFinal: -3,
		},
		{
			name:   "inhibitory weight drives toward floor",
			weight: -4, axonType: 3, threshold: 10, floor: -6,
			spikesAt: []uint64{0, 1, 2}, ticks: 4,
			wantFires: nil, wantFinal: -6,
		},
		{
			name:   "positive leak fires periodically without input",
			weight: 0, leak: 2, threshold: 6, floor: 0,
			ticks:     9, // fires when V reaches 6: ticks 2, 5, 8
			wantFires: []uint64{2, 5, 8}, wantFinal: 0,
		},
		{
			name:   "negative leak decays potential to floor",
			weight: 8, leak: -3, threshold: 100, floor: 0,
			spikesAt: []uint64{0}, ticks: 4,
			// t0: +8-3=5, t1: 2, t2: 0 (floored at -1->0), t3: 0
			wantFires: nil, wantFinal: 0,
		},
		{
			name:   "integration precedes leak precedes threshold",
			weight: 10, leak: -4, threshold: 6, floor: 0,
			spikesAt: []uint64{3}, ticks: 5,
			// t3: +10 -4 = 6 >= 6 -> fires at t3 exactly.
			wantFires: []uint64{3}, wantFinal: 0,
		},
		{
			name:   "same-tick spikes on one axon merge (binary buffer)",
			weight: 4, threshold: 100, floor: 0,
			spikesAt: []uint64{2, 2, 2}, ticks: 4,
			wantFires: nil, wantFinal: 4, // one merged delivery, not three
		},
		{
			name:   "zero weight leaves membrane untouched",
			weight: 0, threshold: 5, floor: 0,
			spikesAt: []uint64{0, 1, 2}, ticks: 4,
			wantFires: nil, wantFinal: 0,
		},
	}
	for _, tc := range cases {
		runConformance(t, tc)
	}
}

// TestConformanceDelays pins the delay semantics: a spike sent at tick t
// with delay d is integrated during the Synapse phase of tick t+d, for
// every legal d.
func TestConformanceDelays(t *testing.T) {
	for d := uint8(1); d <= MaxDelay; d++ {
		cfg := &CoreConfig{ID: 0}
		// Neuron 0 relays the input; neuron 1 records arrival.
		cfg.SetSynapse(0, 0, true)
		cfg.SetSynapse(1, 1, true)
		cfg.Neurons[0] = NeuronParams{
			Weights: [NumAxonTypes]int16{1, 1, 1, 1}, Threshold: 1, Floor: 0,
			Target: SpikeTarget{Core: 0, Axon: 1, Delay: d}, Enabled: true,
		}
		cfg.Neurons[1] = NeuronParams{
			Weights: [NumAxonTypes]int16{1, 1, 1, 1}, Threshold: 1, Floor: 0,
			Target: SpikeTarget{Core: 0, Axon: 255, Delay: 1}, Enabled: true,
		}
		m := &Model{Seed: 1, Cores: []*CoreConfig{cfg}}
		m.Inputs = []InputSpike{{Tick: 0, Core: 0, Axon: 0}}
		sim, err := NewSerialSim(m)
		if err != nil {
			t.Fatal(err)
		}
		var arrival []uint64
		sim.OnSpike = func(tick uint64, s Spike) {
			if s.Target.Axon == 255 {
				arrival = append(arrival, tick)
			}
		}
		if err := sim.Run(int(d) + 3); err != nil {
			t.Fatal(err)
		}
		if len(arrival) != 1 || arrival[0] != uint64(d) {
			t.Fatalf("delay %d: downstream fired at %v, want [%d]", d, arrival, d)
		}
	}
}

// TestConformanceAxonTypes pins that the weight applied is selected by
// the axon's type, per axon, for all four types.
func TestConformanceAxonTypes(t *testing.T) {
	weights := [NumAxonTypes]int16{1, 10, 100, -50}
	cfg := &CoreConfig{ID: 0}
	for at := 0; at < NumAxonTypes; at++ {
		cfg.AxonTypes[at] = uint8(at)
		cfg.SetSynapse(at, 0, true)
	}
	cfg.Neurons[0] = NeuronParams{
		Weights: weights, Threshold: 1 << 30, Floor: -1 << 20,
		Target: SpikeTarget{Core: 0, Axon: 255, Delay: 1}, Enabled: true,
	}
	m := &Model{Seed: 1, Cores: []*CoreConfig{cfg}}
	for at := 0; at < NumAxonTypes; at++ {
		m.Inputs = append(m.Inputs, InputSpike{Tick: uint64(at), Core: 0, Axon: uint16(at)})
	}
	sim, err := NewSerialSim(m)
	if err != nil {
		t.Fatal(err)
	}
	want := int32(0)
	for at := 0; at < NumAxonTypes; at++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		want += int32(weights[at])
		if got := sim.Core(0).Potential(0); got != want {
			t.Fatalf("after axon type %d: potential %d, want %d", at, got, want)
		}
	}
}
