package scenario

import (
	"fmt"

	"github.com/cognitive-sim/compass/internal/corelets"
	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/spikecode"
	"github.com/cognitive-sim/compass/internal/spikeio"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// The Stroop scenario is a cue-gated conflict task: name the ink color,
// ignore the word. A cue spike opens three color gates; the gated color
// evidence fans out onto three lanes of a winner-take-all channel,
// while the (task-irrelevant) word drives a single rival lane directly.
//
//	cue ──Splitter(1,3)──▶ Gate(3,2,AND) ──Splitter(3,6)──▶ WTA lanes 0-2
//	color ─────────────────────▲ (direct)                     (evidence 3)
//	word ──Splitter(3,2)────────────────────────────────────▶ WTA lane 3
//	                                                          (evidence 1)
//
// On a congruent trial (word matches ink) the first volley carries
// 4 units of evidence against a margin of 3 and the WTA answers at
// relative tick 5. On an incongruent trial the word's rival evidence
// spoils the first volley (3 vs 1+3), and the answer waits for a
// re-presentation volley at tick 8 — or tick 11 when the distractor
// word stochastically persists into the second volley. The decoded
// reaction-time split (congruent fast, incongruent slow, graded by
// distractor persistence) is the classic Stroop interference effect,
// produced here by crossbar arithmetic rather than by construction.

const (
	stroopColors  = 3
	stroopWindow  = 16
	stroopGuard   = 4
	stroopPersist = 0.5 // P(distractor word persists into volley 2)

	stroopCongruentRT = 5 // relative decision tick on congruent trials
)

type stroopTask struct {
	wiring   *Wiring
	cueEnc   *spikecode.OneHot
	colorEnc *spikecode.OneHot
	wordEnc  *spikecode.Population
	rng      *prng.Stream

	color int // ink color of the latest trial (the correct answer)
	word  int // distractor word of the latest trial

	score   Score
	latency float64
	decided int
	// Reaction-time split by congruency.
	congN, incongN   int
	congRT, incongRT float64
}

func newStroop(seed uint64) (Task, error) {
	b := corelets.NewBuilder(seed)

	cueIn, cueOut, err := b.Splitter(1, stroopColors)
	if err != nil {
		return nil, err
	}
	gateIn, gateOut, err := b.Gate(stroopColors, 2, 2)
	if err != nil {
		return nil, err
	}
	// Gate input 0 of each gate is the cue branch, input 1 the direct
	// color line.
	cueTargets := make(corelets.InPort, stroopColors)
	for g := 0; g < stroopColors; g++ {
		cueTargets[g] = gateIn[2*g]
	}
	if err := b.Connect(cueOut, cueTargets, 2); err != nil {
		return nil, err
	}

	wta, err := b.WinnerTakeAll(stroopColors, 4, 3)
	if err != nil {
		return nil, err
	}

	// Gated color evidence: each gate output fans out six ways — the
	// excitatory and paired inhibitory axons of the channel's three
	// color lanes.
	colorSplitIn, colorSplitOut, err := b.Splitter(stroopColors, 6)
	if err != nil {
		return nil, err
	}
	if err := b.Connect(gateOut, colorSplitIn, 1); err != nil {
		return nil, err
	}
	var evOut corelets.OutPort
	var evIn corelets.InPort
	for ch := 0; ch < stroopColors; ch++ {
		for br := 0; br < 6; br++ {
			lane, off := br, uint16(0)
			if br >= 3 {
				lane, off = br-3, 1 // the paired inhibitory axon
			}
			ax, err := wta.LaneAxon(ch, lane)
			if err != nil {
				return nil, err
			}
			evOut = append(evOut, colorSplitOut[br*stroopColors+ch])
			evIn = append(evIn, corelets.AxonRef{Core: ax.Core, Axon: ax.Axon + off})
		}
	}
	if err := b.Connect(evOut, evIn, 2); err != nil {
		return nil, err
	}

	// Word distractor: one unit of rival evidence per word, on lane 3.
	wordIn, wordOut, err := b.Splitter(stroopColors, 2)
	if err != nil {
		return nil, err
	}
	var wdOut corelets.OutPort
	var wdIn corelets.InPort
	for ch := 0; ch < stroopColors; ch++ {
		ax, err := wta.LaneAxon(ch, 3)
		if err != nil {
			return nil, err
		}
		wdOut = append(wdOut, wordOut[0*stroopColors+ch], wordOut[1*stroopColors+ch])
		wdIn = append(wdIn,
			corelets.AxonRef{Core: ax.Core, Axon: ax.Axon},
			corelets.AxonRef{Core: ax.Core, Axon: ax.Axon + 1},
		)
	}
	if err := b.Connect(wdOut, wdIn, 2); err != nil {
		return nil, err
	}

	b.Pacemaker(1)
	probe, err := b.Probe(wta.Out())
	if err != nil {
		return nil, err
	}
	model, err := b.Build()
	if err != nil {
		return nil, err
	}

	cueLine := []spikecode.Line{spikecode.SingleLine(cueIn[0].Core, cueIn[0].Axon)}
	colorLines := make([]spikecode.Line, stroopColors)
	wordLines := make([]spikecode.Line, stroopColors)
	wordChannels := make([][]spikecode.Line, stroopColors)
	for i := 0; i < stroopColors; i++ {
		colorLines[i] = spikecode.SingleLine(gateIn[2*i+1].Core, gateIn[2*i+1].Axon)
		wordLines[i] = spikecode.SingleLine(wordIn[i].Core, wordIn[i].Axon)
		wordChannels[i] = []spikecode.Line{wordLines[i]}
	}
	in := append(append(append([]spikecode.Line{}, cueLine...), colorLines...), wordLines...)

	wordEnc := &spikecode.Population{Channels: wordChannels}
	return &stroopTask{
		wiring: &Wiring{
			Model: model,
			In:    in,
			OutIndex: func(core truenorth.CoreID, axon uint16) (int, bool) {
				return probe.Index(truenorth.SpikeTarget{Core: core, Axon: axon})
			},
			NumOut:  stroopColors,
			Encoder: wordEnc,
			Decoder: spikecode.FirstSpike{},
		},
		cueEnc:   &spikecode.OneHot{Lines: cueLine},
		colorEnc: &spikecode.OneHot{Lines: colorLines},
		wordEnc:  wordEnc,
		rng:      prng.New(prng.Mix64(seed ^ 0x57700b)),
	}, nil
}

func (s *stroopTask) Wiring() *Wiring { return s.wiring }

func (s *stroopTask) Reset(ep int) { s.score.Episodes = ep + 1 }

// oneHotObs builds a one-hot observation vector of width n.
func oneHotObs(n, hot int) []float64 {
	obs := make([]float64, n)
	if hot >= 0 && hot < n {
		obs[hot] = 1
	}
	return obs
}

func (s *stroopTask) Emit(step int, start uint64) ([]spikeio.Event, error) {
	s.color = s.rng.Intn(stroopColors)
	s.word = s.rng.Intn(stroopColors)
	persist := s.rng.Float64() // drawn every step, used on volley 2

	var dst []spikeio.Event
	var err error
	cue := oneHotObs(1, 0)
	colorObs := oneHotObs(stroopColors, s.color)
	// Three presentations: cue at +0/+3/+6, color two ticks later. The
	// gated evidence volleys reach the WTA at relative ticks 5, 8, 11.
	for _, off := range []uint64{0, 3, 6} {
		if dst, err = s.cueEnc.Encode(dst, cue, start+off, 1, nil); err != nil {
			return nil, err
		}
		if dst, err = s.colorEnc.Encode(dst, colorObs, start+off+2, 1, nil); err != nil {
			return nil, err
		}
	}
	// The word rides volley 1 at full strength and persists into volley
	// 2 with probability stroopPersist (population-coded: the single
	// lane fires iff the strength rounds up). Volley 3 is clean.
	wordObs := make([]float64, stroopColors)
	wordObs[s.word] = 1
	if dst, err = s.wordEnc.Encode(dst, wordObs, start+3, 1, nil); err != nil {
		return nil, err
	}
	wordObs[s.word] = persist
	if dst, err = s.wordEnc.Encode(dst, wordObs, start+6, 1, nil); err != nil {
		return nil, err
	}
	return dst, nil
}

func (s *stroopTask) Feedback(step int, d spikecode.Decision) {
	s.score.Steps++
	congruent := s.word == s.color
	if d.Action < 0 {
		return
	}
	s.decided++
	s.latency += float64(d.FirstTick)
	if d.Action == s.color {
		s.score.Correct++
		s.score.Reward++
	}
	if congruent {
		s.congN++
		s.congRT += float64(d.FirstTick)
	} else {
		s.incongN++
		s.incongRT += float64(d.FirstTick)
	}
}

func (s *stroopTask) Score() Score {
	sc := s.score
	if s.decided > 0 {
		sc.MeanLatencyTicks = s.latency / float64(s.decided)
	}
	sc.Extra = map[string]float64{
		"decided_steps":     float64(s.decided),
		"congruent_steps":   float64(s.congN),
		"incongruent_steps": float64(s.incongN),
	}
	if s.congN > 0 {
		sc.Extra["congruent_mean_rt"] = s.congRT / float64(s.congN)
	}
	if s.incongN > 0 {
		sc.Extra["incongruent_mean_rt"] = s.incongRT / float64(s.incongN)
	}
	return sc
}

func init() {
	Register(&Spec{
		Name: "stroop",
		Description: fmt.Sprintf(
			"%d-color Stroop conflict task: cue-gated color evidence races a word distractor into a WTA; congruent trials answer at RT %d, incongruent trials wait out the interference",
			stroopColors, stroopCongruentRT),
		Episodes:    2,
		Steps:       20,
		WindowTicks: stroopWindow,
		GuardTicks:  stroopGuard,
		New:         newStroop,
	})
}
