// Package spikecode is the shared spike encoding/decoding layer between
// task environments and TrueNorth networks: it turns observation
// vectors into timed spike volleys on input lines and turns egress
// spike streams back into discrete decisions.
//
// The package grew out of the decode logic that examples/audio,
// examples/motion, and examples/charrec each hand-rolled (per-window
// spike counting, argmax votes, glyph fonts); internal/scenario builds
// its closed-loop episode engine on the same primitives.
//
// A Line is the unit of input addressing: the set of axons that must be
// spiked together to deliver one logical unit of drive. Single-axon
// corelet inputs (gates, relays, splitters) are one-target lines; the
// TemplateMatcher's paired on/off axons and the WTA's paired
// excitatory/inhibitory axons are two-target lines, so the pairing
// convention lives here once instead of in every caller.
//
// Everything is deterministic: encoders that need randomness consume an
// explicit prng.Stream in a fixed iteration order, so the same seed
// always produces the bit-identical spike stream — the property the
// scenario engine's replay pinning depends on.
package spikecode

import (
	"fmt"

	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/spikeio"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// Target addresses one axon in a built model.
type Target struct {
	Core truenorth.CoreID
	Axon uint16
}

// Line is the ordered set of axons spiked together to deliver one
// logical unit of input.
type Line []Target

// SingleLine builds a one-axon line (plain corelet inputs).
func SingleLine(core truenorth.CoreID, axon uint16) Line {
	return Line{{Core: core, Axon: axon}}
}

// PairedLine builds the two-axon line used by the TemplateMatcher
// (on/off axon pair) and the WTA (excitatory/inhibitory axon pair):
// axon carries the positive channel, axon+1 the paired complement.
func PairedLine(core truenorth.CoreID, axon uint16) Line {
	return Line{{Core: core, Axon: axon}, {Core: core, Axon: axon + 1}}
}

// AppendLine appends one spike per target of the line at tick t.
func AppendLine(dst []spikeio.Event, ln Line, t uint64) []spikeio.Event {
	for _, tg := range ln {
		dst = append(dst, spikeio.Event{Tick: t, Core: tg.Core, Axon: tg.Axon})
	}
	return dst
}

// Encoder turns one observation vector into spike events on a fixed set
// of input lines over the ticks [start, start+ticks). Implementations
// must be deterministic given (obs, start, ticks, rng state) and must
// consume rng in a fixed order independent of obs values, so encoded
// streams replay bit-identically.
type Encoder interface {
	Name() string
	Encode(dst []spikeio.Event, obs []float64, start, ticks uint64, rng *prng.Stream) ([]spikeio.Event, error)
}

// OneHot spikes line i on the first tick of the window iff obs[i] >=
// 0.5 — binary pattern volleys (glyphs, cue flags). It ignores rng.
type OneHot struct {
	Lines []Line
	// Repeat presents the volley on the first Repeat ticks of the window
	// (default 1).
	Repeat uint64
}

// Name implements Encoder.
func (e *OneHot) Name() string { return "onehot" }

// Encode implements Encoder.
func (e *OneHot) Encode(dst []spikeio.Event, obs []float64, start, ticks uint64, _ *prng.Stream) ([]spikeio.Event, error) {
	if len(obs) != len(e.Lines) {
		return dst, fmt.Errorf("spikecode: onehot: %d observations for %d lines", len(obs), len(e.Lines))
	}
	rep := e.Repeat
	if rep == 0 {
		rep = 1
	}
	if rep > ticks {
		rep = ticks
	}
	for r := uint64(0); r < rep; r++ {
		for i, v := range obs {
			if v >= 0.5 {
				dst = AppendLine(dst, e.Lines[i], start+r)
			}
		}
	}
	return dst, nil
}

// Rate Bernoulli-samples line i at probability clamp01(obs[i]) on every
// tick of the window — classic rate coding. The rng is consumed once
// per (tick, line) regardless of outcome, so the stream position after
// encoding depends only on the window shape, never on the values.
type Rate struct {
	Lines []Line
}

// Name implements Encoder.
func (e *Rate) Name() string { return "rate" }

// Encode implements Encoder.
func (e *Rate) Encode(dst []spikeio.Event, obs []float64, start, ticks uint64, rng *prng.Stream) ([]spikeio.Event, error) {
	if len(obs) != len(e.Lines) {
		return dst, fmt.Errorf("spikecode: rate: %d observations for %d lines", len(obs), len(e.Lines))
	}
	if rng == nil {
		return dst, fmt.Errorf("spikecode: rate encoding needs an rng")
	}
	for t := uint64(0); t < ticks; t++ {
		for i, v := range obs {
			u := rng.Uint64()
			p := clamp01(v)
			// Compare against a fixed-point threshold so the draw count
			// is value-independent.
			if p > 0 && float64(u>>11)/float64(1<<53) < p {
				dst = AppendLine(dst, e.Lines[i], start+t)
			}
		}
	}
	return dst, nil
}

// Population maps channel c's value to the number of active lanes:
// round(clamp01(obs[c]) * lanes) of the channel's lanes spike on the
// first tick of the window, lowest lane first — thermometer/population
// coding onto multi-lane evidence inputs (e.g. WTA channels).
type Population struct {
	// Channels[c] lists channel c's lanes in significance order.
	Channels [][]Line
}

// Name implements Encoder.
func (e *Population) Name() string { return "population" }

// Encode implements Encoder.
func (e *Population) Encode(dst []spikeio.Event, obs []float64, start, ticks uint64, _ *prng.Stream) ([]spikeio.Event, error) {
	if len(obs) != len(e.Channels) {
		return dst, fmt.Errorf("spikecode: population: %d observations for %d channels", len(obs), len(e.Channels))
	}
	_ = ticks
	for c, v := range obs {
		lanes := e.Channels[c]
		n := int(clamp01(v)*float64(len(lanes)) + 0.5)
		if n > len(lanes) {
			n = len(lanes)
		}
		for l := 0; l < n; l++ {
			dst = AppendLine(dst, lanes[l], start)
		}
	}
	return dst, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// LineEvent is one egress spike mapped onto an output line.
type LineEvent struct {
	Line int
	Tick uint64
}

// MapEvents filters raw egress records onto output lines via index
// (typically a corelets.Probe lookup) and appends them to dst.
func MapEvents(dst []LineEvent, events []spikeio.Event, index func(core truenorth.CoreID, axon uint16) (int, bool)) []LineEvent {
	for _, ev := range events {
		if i, ok := index(ev.Core, ev.Axon); ok {
			dst = append(dst, LineEvent{Line: i, Tick: ev.Tick})
		}
	}
	return dst
}

// Decision is a decoder's verdict for one decode window.
type Decision struct {
	// Action is the winning output line, or -1 when no line spiked in
	// the window.
	Action int
	// FirstTick is the tick of the earliest spike on the winning line
	// (the decision's latency anchor); meaningful only when Action >= 0.
	FirstTick uint64
	// Counts is the per-line spike count over the window.
	Counts []int
}

// Decoder turns the line events of one decode window [start, end) into
// a Decision. Implementations must be order-independent over the input
// slice: the verdict may depend only on the multiset of (line, tick)
// pairs, never on arrival order, so transport- and rank-induced
// reorderings cannot change a decision.
type Decoder interface {
	Name() string
	Decode(events []LineEvent, numLines int, start, end uint64) Decision
}

// Vote picks the line with the most spikes in the window; ties resolve
// to the lowest line index.
type Vote struct{}

// Name implements Decoder.
func (Vote) Name() string { return "vote" }

// Decode implements Decoder.
func (Vote) Decode(events []LineEvent, numLines int, start, end uint64) Decision {
	d := Decision{Action: -1, Counts: make([]int, numLines)}
	first := make([]uint64, numLines)
	for _, ev := range events {
		if ev.Tick < start || ev.Tick >= end || ev.Line < 0 || ev.Line >= numLines {
			continue
		}
		if d.Counts[ev.Line] == 0 || ev.Tick < first[ev.Line] {
			first[ev.Line] = ev.Tick
		}
		d.Counts[ev.Line]++
	}
	best := 0
	for i, n := range d.Counts {
		if n > best {
			best = n
			d.Action = i
		}
	}
	if d.Action >= 0 {
		d.FirstTick = first[d.Action]
	}
	return d
}

// FirstSpike picks the line whose first spike in the window is
// earliest; ties resolve to the lowest line index.
type FirstSpike struct{}

// Name implements Decoder.
func (FirstSpike) Name() string { return "first-spike" }

// Decode implements Decoder.
func (FirstSpike) Decode(events []LineEvent, numLines int, start, end uint64) Decision {
	d := Decision{Action: -1, Counts: make([]int, numLines)}
	first := make([]uint64, numLines)
	for _, ev := range events {
		if ev.Tick < start || ev.Tick >= end || ev.Line < 0 || ev.Line >= numLines {
			continue
		}
		if d.Counts[ev.Line] == 0 || ev.Tick < first[ev.Line] {
			first[ev.Line] = ev.Tick
		}
		d.Counts[ev.Line]++
	}
	for i, n := range d.Counts {
		if n == 0 {
			continue
		}
		if d.Action < 0 || first[i] < d.FirstTick {
			d.Action = i
			d.FirstTick = first[i]
		}
	}
	return d
}

// WindowedRate scores each line by its spike count over the trailing
// Bin ticks of the window ([end-Bin, end)) — a leaky-rate readout that
// ignores early transients; ties resolve to the lowest line index.
// Counts still reports full-window totals.
type WindowedRate struct {
	Bin uint64
}

// Name implements Decoder.
func (w WindowedRate) Name() string { return "windowed-rate" }

// Decode implements Decoder.
func (w WindowedRate) Decode(events []LineEvent, numLines int, start, end uint64) Decision {
	bin := w.Bin
	if bin == 0 || bin > end-start {
		bin = end - start
	}
	lo := end - bin
	d := Decision{Action: -1, Counts: make([]int, numLines)}
	tail := make([]int, numLines)
	first := make([]uint64, numLines)
	for _, ev := range events {
		if ev.Tick < start || ev.Tick >= end || ev.Line < 0 || ev.Line >= numLines {
			continue
		}
		if d.Counts[ev.Line] == 0 || ev.Tick < first[ev.Line] {
			first[ev.Line] = ev.Tick
		}
		d.Counts[ev.Line]++
		if ev.Tick >= lo {
			tail[ev.Line]++
		}
	}
	best := 0
	for i, n := range tail {
		if n > best {
			best = n
			d.Action = i
		}
	}
	if d.Action >= 0 {
		d.FirstTick = first[d.Action]
	}
	return d
}

// Window is a half-open tick interval [Start, End).
type Window struct {
	Start, End uint64
}

// CountWindows tallies per-line spike counts for each window — the
// presentation-scoring loop shared by the audio, motion, and charrec
// examples. Result is indexed [window][line].
func CountWindows(events []LineEvent, numLines int, windows []Window) [][]int {
	out := make([][]int, len(windows))
	for i := range out {
		out[i] = make([]int, numLines)
	}
	for _, ev := range events {
		if ev.Line < 0 || ev.Line >= numLines {
			continue
		}
		for i, w := range windows {
			if ev.Tick >= w.Start && ev.Tick < w.End {
				out[i][ev.Line]++
			}
		}
	}
	return out
}

// Argmax returns the index of the largest count, ties to the lowest
// index; -1 when every count is zero.
func Argmax(counts []int) int {
	best, arg := 0, -1
	for i, n := range counts {
		if n > best {
			best = n
			arg = i
		}
	}
	return arg
}
