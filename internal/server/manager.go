package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	sim "github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/modelcache"
	"github.com/cognitive-sim/compass/internal/perfmodel"
	"github.com/cognitive-sim/compass/internal/reshape"
	"github.com/cognitive-sim/compass/internal/telemetry"
	"github.com/cognitive-sim/compass/internal/truenorth"
	"github.com/cognitive-sim/compass/internal/workpool"
)

// ErrOverCapacity marks a session whose modelled cost exceeds the
// server's entire configured capacity: no amount of queueing will ever
// admit it.
var ErrOverCapacity = errors.New("server: session cost exceeds configured capacity")

// ErrNotFound marks an unknown session id.
var ErrNotFound = errors.New("server: no such session")

// EstimateCostPerTick prices one session in modelled seconds per
// simulated tick using the calibrated Blue Gene/Q performance model
// (internal/perfmodel) with the §VII synthetic workload assumptions
// (10 Hz firing, 75% node-local traffic, 25% crossbar density). The
// shmem transport has no machine-model projection, so it is priced as
// MPI — the decompositions do the same compute, they differ only in the
// Network phase's host mechanics.
func EstimateCostPerTick(cores, ranks, threads int, transport sim.Transport) float64 {
	if cores < 1 || ranks < 1 || threads < 1 {
		return 0
	}
	coresPerNode := (cores + ranks - 1) / ranks
	w, err := perfmodel.SyntheticUniform(ranks, coresPerNode, 10, 0.75, 0.25)
	if err != nil {
		return 0
	}
	if transport == sim.TransportShmem {
		transport = sim.TransportMPI
	}
	pt, err := perfmodel.Project(perfmodel.BlueGeneQ(), w, threads, transport)
	if err != nil {
		return 0
	}
	return pt.Total()
}

// ManagerOptions configures admission control and session defaults.
type ManagerOptions struct {
	// CapacitySecondsPerTick is the admission budget: the sum of the
	// modelled per-tick cost of all concurrently running sessions stays
	// at or below it. Sessions costing more than the whole budget are
	// rejected; sessions that merely don't fit right now are queued
	// FIFO. Zero means 1.0 modelled seconds/tick.
	CapacitySecondsPerTick float64
	// MaxRunning caps concurrently running sessions regardless of cost.
	// Zero means 16.
	MaxRunning int
	// ChunkTicks is the default per-chunk tick count: the granularity at
	// which pause, checkpoint, and drain resolve. Zero means 25.
	ChunkTicks int
	// SubscriberQueue is the per-subscriber egress ring capacity in
	// records. Zero means 65536.
	SubscriberQueue int
	// ModelCacheBytes bounds the content-addressed model image cache.
	// Zero means 2 GiB; negative means no resident cache (compilations
	// are still singleflight-deduplicated while in flight).
	ModelCacheBytes int64
	// MemoryBudgetBytes bounds the resident bytes of all concurrently
	// running sessions. Shared images are charged once per resident
	// image, not once per session; per-session runtime state is charged
	// per session. Sessions that could never fit are rejected; sessions
	// that merely don't fit right now queue FIFO. Zero means unlimited.
	MemoryBudgetBytes int64
	// DisableBatch turns off batched execution: every session runs its
	// own independent tick loop even when other resident sessions share
	// its model and decomposition.
	DisableBatch bool
	// MaxExtraWorkers bounds the daemon-wide pool of extra worker
	// goroutines shared by every image build, PCC compile, and session
	// rank team (each team keeps its calling goroutine and acquires up
	// to threads-1 extras from this budget). Zero means one budget of
	// GOMAXPROCS extras for the whole daemon; negative means unlimited
	// (the pre-batching behavior: every run sizes its own pools).
	MaxExtraWorkers int
	// ReshapeThreshold enables automatic elastic repartitioning: when a
	// chunk's Compute imbalance (max/mean synaptic events over occupied
	// ranks) reaches this ratio at a chunk boundary, the session's
	// placement is rebalanced from the chunk's own telemetry and the run
	// resumes on the new layout. Zero (the default) disables reshaping;
	// spike output is bit-identical either way.
	ReshapeThreshold float64
	// ReshapeInterval is the minimum number of chunk boundaries between
	// consecutive reshapes of one session (and before its first), so
	// telemetry re-accumulates on a new placement before it is judged
	// again. Values below 1 mean every boundary is eligible.
	ReshapeInterval int
}

func (o *ManagerOptions) withDefaults() ManagerOptions {
	out := *o
	if out.CapacitySecondsPerTick <= 0 {
		out.CapacitySecondsPerTick = 1.0
	}
	if out.MaxRunning <= 0 {
		out.MaxRunning = 16
	}
	if out.ChunkTicks <= 0 {
		out.ChunkTicks = 25
	}
	if out.SubscriberQueue <= 0 {
		out.SubscriberQueue = 65536
	}
	if out.ModelCacheBytes == 0 {
		out.ModelCacheBytes = 2 << 30
	}
	if out.ModelCacheBytes < 0 {
		// A 1-byte budget admits nothing resident but keeps the
		// singleflight dedup of concurrent identical builds.
		out.ModelCacheBytes = 1
	}
	return out
}

// Manager owns every session: creation with admission control, FIFO
// queueing, lookup, and the server-level metrics registry that /metrics
// merges with each session's labeled registry.
type Manager struct {
	opts  ManagerOptions
	reg   *telemetry.Registry
	cache *modelcache.Cache

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string
	queue    []*Session
	used     float64
	running  int
	nextID   int
	// images tracks every image held by at least one running session,
	// by pointer identity: N sessions sharing one image charge its bytes
	// once, while N private copies of the same model charge N times.
	images  map[*truenorth.Image]*imageRef
	memUsed int64

	// limiter is the daemon-wide shared worker budget handed to every
	// compile, image build, and simulation run (nil = unlimited).
	limiter *workpool.Limiter
	// node is the daemon's instance ID, stamped into every session's
	// Info; boundary is the per-chunk checkpoint hook handed to every
	// new session (the cluster agent's checkpoint-push path).
	node     string
	boundary func(*Session)
	// groups indexes the live batch groups by batch key; batchLanes is
	// the occupancy the gauge reports (lanes in flight across groups).
	groups     map[string]*batchGroup
	batchLanes int

	// Per-scenario metrics, lazily registered on the first report for a
	// scenario label (see ScenarioReport). Reward is a running sum
	// published through a gauge because rewards are fractional.
	scnEpisodes map[string]telemetry.Counter
	scnSteps    map[string]telemetry.Counter
	scnReward   map[string]telemetry.Gauge
	scnRewardV  map[string]float64

	mCreated   telemetry.Counter
	mRejected  telemetry.Counter
	mCompleted telemetry.Counter
	mReshapes  telemetry.Counter
	gRunning   telemetry.Gauge
	gQueued    telemetry.Gauge
	gUsed      telemetry.Gauge
	gMemUsed   telemetry.Gauge
	gBatchOcc  telemetry.Gauge
	hBatchSwp  telemetry.Histogram
}

// imageRef counts the running sessions sharing one resident image.
// cacheKey, when non-empty, names the model cache entry pinned while
// the image is resident.
type imageRef struct {
	refs     int
	bytes    int64
	cacheKey string
}

// NewManager builds a manager with the given admission options.
func NewManager(opts ManagerOptions) *Manager {
	reg := telemetry.New(1)
	m := &Manager{
		opts:        opts.withDefaults(),
		reg:         reg,
		sessions:    make(map[string]*Session),
		images:      make(map[*truenorth.Image]*imageRef),
		groups:      make(map[string]*batchGroup),
		scnEpisodes: make(map[string]telemetry.Counter),
		scnSteps:    make(map[string]telemetry.Counter),
		scnReward:   make(map[string]telemetry.Gauge),
		scnRewardV:  make(map[string]float64),
		mCreated: reg.Counter("compassd_sessions_created_total",
			"sessions admitted (running or queued)"),
		mRejected: reg.Counter("compassd_sessions_rejected_total",
			"sessions rejected by admission control"),
		mCompleted: reg.Counter("compassd_sessions_completed_total",
			"sessions that reached a terminal state"),
		mReshapes: reg.Counter("compassd_reshapes_total",
			"elastic repartitions applied at chunk boundaries"),
		gRunning: reg.Gauge("compassd_sessions_running",
			"sessions currently running or paused"),
		gQueued: reg.Gauge("compassd_sessions_queued",
			"sessions waiting for capacity"),
		gUsed: reg.Gauge("compassd_capacity_used_seconds_per_tick",
			"modelled per-tick cost of all running sessions"),
		gMemUsed: reg.Gauge("compassd_memory_used_bytes",
			"resident bytes of all running sessions (shared images charged once)"),
		gBatchOcc: reg.Gauge("compassd_batch_occupancy",
			"session lanes currently advancing inside shared batched tick loops"),
		hBatchSwp: reg.Histogram("compassd_batch_sweep_seconds",
			"mean wall-clock per batched sweep (one tick of every lane in a window)",
			[]float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1}),
	}
	switch extra := m.opts.MaxExtraWorkers; {
	case extra == 0:
		m.limiter = workpool.NewLimiter(runtime.GOMAXPROCS(0))
	case extra > 0:
		m.limiter = workpool.NewLimiter(extra)
	}
	m.cache = modelcache.New(m.opts.ModelCacheBytes)
	cacheHits := reg.Counter("compassd_model_cache_hits",
		"session creates served by a resident or in-flight model image")
	cacheMisses := reg.Counter("compassd_model_cache_misses",
		"session creates that compiled a model image")
	cacheEvictions := reg.Counter("compassd_model_cache_evictions",
		"model images evicted by the cache byte budget")
	cacheResident := reg.Gauge("compassd_model_cache_resident_bytes",
		"resident bytes of cached model images")
	m.cache.SetHooks(modelcache.Hooks{
		Hit:      func() { cacheHits.Inc(0) },
		Miss:     func() { cacheMisses.Inc(0) },
		Evict:    func() { cacheEvictions.Inc(0) },
		Resident: func(b int64) { cacheResident.Set(0, float64(b)) },
	})
	return m
}

// Registry returns the server-level metrics registry.
func (m *Manager) Registry() *telemetry.Registry { return m.reg }

// ModelCache returns the manager's content-addressed image cache.
func (m *Manager) ModelCache() *modelcache.Cache { return m.cache }

// Limiter returns the daemon-wide shared worker budget (nil when
// MaxExtraWorkers is negative, i.e. unlimited).
func (m *Manager) Limiter() *workpool.Limiter { return m.limiter }

// SetNode names the hosting daemon instance; every session created
// afterwards reports it in Info.Node.
func (m *Manager) SetNode(id string) {
	m.mu.Lock()
	m.node = id
	m.mu.Unlock()
}

// Node returns the daemon instance ID.
func (m *Manager) Node() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.node
}

// SetBoundaryHook installs a callback invoked by every session runner
// after each successfully completed chunk, with the session parked at
// its new boundary checkpoint. The cluster agent uses it to push
// boundary checkpoints to the coordinator. Install before creating
// sessions; the hook must not block indefinitely (it runs on the
// session's runner goroutine between chunks).
func (m *Manager) SetBoundaryHook(fn func(*Session)) {
	m.mu.Lock()
	m.boundary = fn
	m.mu.Unlock()
}

// UsedCapacity returns the summed modelled per-tick cost of running
// sessions (the admission gauge's value, for cluster heartbeats).
func (m *Manager) UsedCapacity() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Capacity returns the configured admission budget in modelled seconds
// per tick; MemoryBudget the configured resident-byte budget (0 means
// unlimited). Both feed cluster heartbeats and placement.
func (m *Manager) Capacity() float64 { return m.opts.CapacitySecondsPerTick }

// MemoryBudget returns the configured memory budget (0 = unlimited).
func (m *Manager) MemoryBudget() int64 { return m.opts.MemoryBudgetBytes }

// ResidentImageHashes lists the content hashes of every image held by
// at least one running or paused session — the coordinator's affinity
// signal for co-locating same-model sessions.
func (m *Manager) ResidentImageHashes() []string {
	m.mu.Lock()
	imgs := make([]*truenorth.Image, 0, len(m.images))
	for img := range m.images {
		imgs = append(imgs, img)
	}
	m.mu.Unlock()
	out := make([]string, 0, len(imgs))
	for _, img := range imgs {
		out = append(out, img.Hash())
	}
	return out
}

// FindImageByHash locates a resident image by content hash — first
// among images held by running sessions, then in the model cache — so
// a peer daemon can pull a model for migration without recompiling.
// The second result is the model cache key when the image came from
// the cache ("" otherwise); ok reports whether anything was found.
func (m *Manager) FindImageByHash(hash string) (img *truenorth.Image, cacheKey string, ok bool) {
	m.mu.Lock()
	candidates := make([]*truenorth.Image, 0, len(m.images))
	keys := make([]string, 0, len(m.images))
	for im, ref := range m.images {
		candidates = append(candidates, im)
		keys = append(keys, ref.cacheKey)
	}
	m.mu.Unlock()
	for i, im := range candidates {
		if im.Hash() == hash {
			return im, keys[i], true
		}
	}
	if e := m.cache.ByImageHash(hash); e != nil {
		return e.Image, e.Key, true
	}
	return nil, "", false
}

// CreateParams describes one session to admit.
type CreateParams struct {
	// Name is an optional human label.
	Name string
	// Image is the immutable model image the session simulates against.
	// Sessions created with the same Image pointer (e.g. from a model
	// cache hit) share it copy-on-write and are charged its bytes once.
	// When nil, one is built privately from Model.
	Image *truenorth.Image
	// Model is the instantiated network the session simulates. Ignored
	// when Image is set (the image carries the model).
	Model *truenorth.Model
	// Cfg is the decomposition (ranks, threads, transport, placement).
	Cfg sim.Config
	// Ticks is the number of ticks to simulate (from StartFrom's tick
	// when resuming, from tick 0 otherwise).
	Ticks uint64
	// ChunkTicks overrides the manager's default chunk size when > 0.
	ChunkTicks int
	// StartFrom optionally resumes the session from a checkpoint (e.g.
	// one written by a previous daemon's graceful shutdown).
	StartFrom *truenorth.Checkpoint
	// StartPaused parks the session at tick 0 (or StartFrom's tick)
	// before any chunk runs, so clients can attach streams and observe
	// the run from its very first spike. Resume releases it.
	StartPaused bool
	// CacheKey, when non-empty, names the model cache entry Image came
	// from; the manager pins the entry while any running session holds
	// the image resident, so the LRU can never evict an in-use image.
	CacheKey string
	// Placement records how the session landed on this daemon ("local"
	// when empty; the coordinator stamps its placement decision).
	Placement string
	// Scenario labels the closed-loop workload that will drive the
	// session (a scenario registry name). It is reported in Info and
	// keys the per-scenario telemetry fed by ScenarioReport.
	Scenario string
}

// Create admits a new session. The session starts immediately when
// capacity allows, otherwise it queues FIFO. Create returns
// ErrOverCapacity when the session could never run.
func (m *Manager) Create(p CreateParams) (*Session, error) {
	img := p.Image
	if img == nil {
		if p.Model == nil {
			return nil, errors.New("server: create needs an image or a model")
		}
		var err error
		img, err = truenorth.NewImage(p.Model)
		if err != nil {
			return nil, fmt.Errorf("server: session model invalid: %w", err)
		}
	}
	if err := p.Cfg.ValidateImage(img); err != nil {
		return nil, err
	}
	cost := EstimateCostPerTick(img.NumCores(), p.Cfg.Ranks, p.Cfg.ThreadsPerRank, p.Cfg.Transport)
	if cost > m.opts.CapacitySecondsPerTick {
		m.mRejected.Inc(0)
		return nil, fmt.Errorf("%w: %.3gs/tick modelled vs %.3gs/tick budget",
			ErrOverCapacity, cost, m.opts.CapacitySecondsPerTick)
	}
	if b := m.opts.MemoryBudgetBytes; b > 0 && img.ImageBytes()+img.StateBytes() > b {
		m.mRejected.Inc(0)
		return nil, fmt.Errorf("%w: %d bytes resident vs %d bytes budget",
			ErrOverCapacity, img.ImageBytes()+img.StateBytes(), b)
	}

	m.mu.Lock()
	m.nextID++
	id := fmt.Sprintf("s%06d", m.nextID)
	m.mu.Unlock()

	chunk := p.ChunkTicks
	if chunk <= 0 {
		chunk = m.opts.ChunkTicks
	}
	cfg := p.Cfg
	cfg.Workers = m.limiter
	s, err := newSession(id, p.Name, img, cfg, p.Ticks, chunk, cost, m.opts.SubscriberQueue, m.release)
	if err != nil {
		return nil, err
	}
	s.cacheKey = p.CacheKey
	m.mu.Lock()
	s.node = m.node
	s.onBoundary = m.boundary
	m.mu.Unlock()
	s.placement = p.Placement
	if s.placement == "" {
		s.placement = "local"
	}
	if p.StartFrom != nil {
		if err := img.ValidateCheckpoint(p.StartFrom); err != nil {
			return nil, fmt.Errorf("server: start checkpoint: %w", err)
		}
		s.cp = p.StartFrom
	}
	if p.StartPaused {
		// The runner has not launched yet, so this is race-free: it
		// parks at the loop top before simulating anything.
		s.pauseReq = true
	}
	drops := m.reg.Counter("compassd_stream_dropped_records_total",
		"egress records evicted by drop-oldest backpressure, per session",
		telemetry.Label{Key: "session", Value: id})
	s.sink.onDrop = func(n uint64) { drops.Add(0, n) }
	s.scenario = p.Scenario
	rtt := newRTTTracker(m.reg.Histogram("compassd_stream_rtt_seconds",
		"inject→first-egress round trip through the session's tick loop, per session",
		rttBounds, telemetry.Label{Key: "session", Value: id}))
	s.rtt = rtt
	s.source.onInject = rtt.noteInject
	s.sink.onEmit = rtt.noteEgress
	s.reshapePolicy = reshape.Policy{Threshold: m.opts.ReshapeThreshold, Interval: m.opts.ReshapeInterval}
	s.onReshape = m.noteReshape
	gImb := m.reg.Gauge("compassd_session_compute_imbalance",
		"latest chunk's Compute imbalance (max/mean synaptic events over occupied ranks), per session",
		telemetry.Label{Key: "session", Value: id})
	s.gImbalance = &gImb

	m.mu.Lock()
	m.sessions[id] = s
	m.order = append(m.order, id)
	m.mCreated.Inc(0)
	if m.canStartLocked(s) {
		m.startLocked(s)
	} else {
		m.queue = append(m.queue, s)
	}
	m.refreshGaugesLocked()
	m.mu.Unlock()
	return s, nil
}

// memNeedLocked prices a session's incremental memory: its private
// runtime state always, plus its image's bytes only when no running
// session already holds that image resident. Callers hold mu.
func (m *Manager) memNeedLocked(s *Session) int64 {
	need := s.img.StateBytes()
	if _, resident := m.images[s.img]; !resident {
		need += s.img.ImageBytes()
	}
	return need
}

// canStartLocked checks slot, compute, and memory admission. Callers
// hold mu.
func (m *Manager) canStartLocked(s *Session) bool {
	if m.running >= m.opts.MaxRunning || m.used+s.cost > m.opts.CapacitySecondsPerTick {
		return false
	}
	if b := m.opts.MemoryBudgetBytes; b > 0 && m.memUsed+m.memNeedLocked(s) > b {
		return false
	}
	return true
}

// startLocked charges capacity and memory and launches the runner.
// Image bytes are charged once per resident image — the second session
// sharing an image only pays for its private runtime state. The first
// session holding a cache-built image also pins its cache entry, and
// unless batching is disabled the session joins (or founds) the batch
// group for its (model hash, decomposition) so same-model sessions
// advance under one shared tick loop. Callers hold mu.
//
// The session's start claim is taken first: a queued session cancelled
// concurrently (abortQueued holds only the session lock) can reach a
// terminal state between a caller's state check and here, and charging
// it would leak capacity forever since its runner — the only path to
// release — never launches. startLocked reports whether it started the
// session; false means it was already terminal and nothing was charged.
func (m *Manager) startLocked(s *Session) bool {
	if !s.beginStart() {
		return false
	}
	m.used += s.cost
	m.running++
	ref := m.images[s.img]
	if ref == nil {
		ref = &imageRef{bytes: s.img.ImageBytes(), cacheKey: s.cacheKey}
		m.images[s.img] = ref
		m.memUsed += ref.bytes
		if ref.cacheKey != "" {
			m.cache.Pin(ref.cacheKey)
		}
	}
	ref.refs++
	m.memUsed += s.img.StateBytes()
	// Fault injection is a solo-run instrument: RunBatch rejects
	// cfg.Faults because per-rank fault decisions don't compose with a
	// shared kernel sweep, so faulted sessions keep their own tick loop.
	if !m.opts.DisableBatch && s.cfg.Faults == nil {
		key := batchKey(s.img, s.cfg)
		g := m.groups[key]
		if g == nil {
			g = newBatchGroup(key, s.img, s.cfg)
			g.onWindow = func(lanes int) { m.batchWindow(lanes) }
			g.onWindowDone = func(lanes int, sweep float64) { m.batchWindowDone(lanes, sweep) }
			m.groups[key] = g
		}
		g.refs++
		// Under the session lock: a queued session promoted here can have
		// its Info read concurrently.
		s.setGroup(g)
	}
	go s.run()
	return true
}

// batchWindow and batchWindowDone maintain the batch occupancy gauge
// and the per-sweep latency histogram; called from group window loops.
func (m *Manager) batchWindow(lanes int) {
	m.mu.Lock()
	m.batchLanes += lanes
	m.gBatchOcc.Set(0, float64(m.batchLanes))
	m.mu.Unlock()
}

func (m *Manager) batchWindowDone(lanes int, sweepSeconds float64) {
	m.mu.Lock()
	m.batchLanes -= lanes
	if m.batchLanes < 0 {
		m.batchLanes = 0
	}
	m.gBatchOcc.Set(0, float64(m.batchLanes))
	m.mu.Unlock()
	if sweepSeconds > 0 {
		m.hBatchSwp.Observe(0, sweepSeconds)
	}
}

// release returns a finished session's capacity and memory and starts
// queued sessions that now fit. It is the session runner's exit
// callback. The image charge is refunded only when the last session
// sharing the image exits.
func (m *Manager) release(s *Session) {
	m.mu.Lock()
	m.used -= s.cost
	if m.used < 0 {
		m.used = 0
	}
	m.running--
	m.memUsed -= s.img.StateBytes()
	if ref := m.images[s.img]; ref != nil {
		ref.refs--
		if ref.refs <= 0 {
			delete(m.images, s.img)
			m.memUsed -= ref.bytes
			if ref.cacheKey != "" {
				m.cache.Unpin(ref.cacheKey)
			}
		}
	}
	if g := s.group; g != nil {
		g.refs--
		if g.refs <= 0 {
			delete(m.groups, g.key)
		}
	}
	if m.memUsed < 0 {
		m.memUsed = 0
	}
	m.mCompleted.Inc(0)
	m.promoteLocked()
	m.refreshGaugesLocked()
	m.mu.Unlock()
}

// promoteLocked starts queued sessions in FIFO order while capacity
// lasts, skipping sessions that were stopped while queued. A false
// return from startLocked means the session terminalized after the
// capacity check; it is dropped from the queue with nothing charged.
func (m *Manager) promoteLocked() {
	keep := m.queue[:0]
	for _, s := range m.queue {
		if s.State().Terminal() {
			continue
		}
		if m.canStartLocked(s) {
			m.startLocked(s)
			continue
		}
		keep = append(keep, s)
	}
	for i := len(keep); i < len(m.queue); i++ {
		m.queue[i] = nil
	}
	m.queue = keep
}

func (m *Manager) refreshGaugesLocked() {
	m.gRunning.Set(0, float64(m.running))
	m.gQueued.Set(0, float64(len(m.queue)))
	m.gUsed.Set(0, m.used)
	m.gMemUsed.Set(0, float64(m.memUsed))
}

// MemoryUsed returns the resident bytes charged to running sessions.
func (m *Manager) MemoryUsed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.memUsed
}

// Get looks a session up by id.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return s, nil
}

// List returns every session's status in creation order.
func (m *Manager) List() []Info {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]Info, 0, len(ids))
	for _, id := range ids {
		if s, err := m.Get(id); err == nil {
			out = append(out, s.Info())
		}
	}
	return out
}

// Stop cancels a session. Queued sessions cancel in place; running
// sessions unwind at the next tick boundary via context cancellation.
func (m *Manager) Stop(id string) error {
	s, err := m.Get(id)
	if err != nil {
		return err
	}
	if s.abortQueued(StateCancelled, context.Canceled) {
		m.mu.Lock()
		m.promoteLocked()
		m.refreshGaugesLocked()
		m.mu.Unlock()
		return nil
	}
	s.Stop()
	return nil
}

// Remove stops a session and deletes it from the index once its runner
// has exited.
func (m *Manager) Remove(id string) error {
	if err := m.Stop(id); err != nil {
		return err
	}
	s, err := m.Get(id)
	if err != nil {
		return err
	}
	s.Wait()
	m.mu.Lock()
	delete(m.sessions, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.refreshGaugesLocked()
	m.mu.Unlock()
	return nil
}

// DrainAll parks every session at its next chunk boundary and waits for
// all runners to exit; used by graceful shutdown. It returns every
// non-failed session that holds a checkpoint, paired with its id.
func (m *Manager) DrainAll() []*Session {
	m.mu.Lock()
	all := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	for _, s := range all {
		s.Drain()
	}
	out := make([]*Session, 0, len(all))
	for _, s := range all {
		s.Wait()
		if st := s.State(); st == StateDrained || st == StatePaused || st == StateDone {
			out = append(out, s)
		}
	}
	return out
}

// MetricsSnapshot merges the server-level registry with every
// session's labeled registry into one snapshot; WritePrometheus on the
// result is a single valid exposition because HELP/TYPE lines dedup by
// metric name.
func (m *Manager) MetricsSnapshot() *telemetry.Snapshot {
	snap := m.reg.Snapshot()
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	for _, id := range ids {
		s, err := m.Get(id)
		if err != nil {
			continue
		}
		if sub := s.tel.Registry().Snapshot(); sub != nil {
			snap.Metrics = append(snap.Metrics, sub.Metrics...)
		}
	}
	return snap
}

// ScenarioReport folds one closed-loop progress report into the
// per-scenario telemetry: episode and step counters plus a running
// reward sum, all labeled by scenario name and lazily registered on a
// scenario's first report.
func (m *Manager) ScenarioReport(scenario string, episodes, steps uint64, reward float64) {
	if scenario == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ep, ok := m.scnEpisodes[scenario]
	if !ok {
		lbl := telemetry.Label{Key: "scenario", Value: scenario}
		ep = m.reg.Counter("compassd_scenario_episodes_total",
			"closed-loop scenario episodes completed, per scenario", lbl)
		m.scnEpisodes[scenario] = ep
		m.scnSteps[scenario] = m.reg.Counter("compassd_scenario_steps_total",
			"closed-loop scenario decision steps completed, per scenario", lbl)
		m.scnReward[scenario] = m.reg.Gauge("compassd_scenario_reward_total",
			"running sum of scenario reward, per scenario", lbl)
	}
	ep.Add(0, episodes)
	m.scnSteps[scenario].Add(0, steps)
	m.scnRewardV[scenario] += reward
	m.scnReward[scenario].Set(0, m.scnRewardV[scenario])
}

// Counts returns (running, queued, total) session counts.
func (m *Manager) Counts() (running, queued, total int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running, len(m.queue), len(m.sessions)
}
