// Package power estimates the energy and power of TrueNorth hardware
// executing a simulated workload — use case (e) of the paper's list of
// what Compass is indispensable for ("estimating power consumption").
//
// TrueNorth is event-driven: dynamic energy is spent per synaptic event,
// per neuron update, and per spike hop on the inter-core network, while
// static (leakage) power accrues per core regardless of activity. The
// 45 nm digital neurosynaptic core the paper builds on reports 45 pJ per
// spike [Merolla et al., CICC 2011], which covers the active-core cost
// of one spike's crossbar traversal; the profile below unbundles that
// into per-event constants and adds a leakage term consistent with the
// later TrueNorth chip publications (~65–70 mW for a 4096-core chip at
// biological activity). Constants are order-of-magnitude hardware
// estimates, not measurements; their role is to let Compass workloads
// be compared in energy terms, exactly as the paper intends.
package power

import (
	"fmt"

	"github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// Profile holds per-operation energy constants and leakage.
type Profile struct {
	Name string
	// SynapticEventJ is the energy of delivering one crossbar event into
	// a neuron (read the synapse bit, update the membrane).
	SynapticEventJ float64
	// NeuronUpdateJ is the per-tick integrate-leak-threshold cost of one
	// neuron, paid every tick for every neuron (the 1 kHz slow clock).
	NeuronUpdateJ float64
	// SpikeGenJ is the cost of generating one output spike.
	SpikeGenJ float64
	// SpikeHopJ is the network cost per spike per core-grid hop; local
	// (same-core) delivery pays one hop.
	SpikeHopJ float64
	// AvgHops is the mean hop count of inter-core spikes on the 2-D
	// core grid of a chip.
	AvgHops float64
	// CoreLeakageW is static power per core.
	CoreLeakageW float64
}

// TrueNorth45nm returns the 45 nm digital-core profile derived from the
// paper's cited hardware: 45 pJ active energy per spike unbundled as
// generation + average crossbar row (≈26 events at 10% density) +
// routing, with leakage set so a 4096-core chip idles near 30 mW.
func TrueNorth45nm() Profile {
	return Profile{
		Name:           "TrueNorth-45nm",
		SynapticEventJ: 1.2e-12,
		NeuronUpdateJ:  0.04e-12,
		SpikeGenJ:      8e-12,
		SpikeHopJ:      2e-12,
		AvgHops:        3,
		CoreLeakageW:   7e-6,
	}
}

// Estimate is the energy/power breakdown of a workload on hardware.
type Estimate struct {
	// Energy per simulated tick (J), split by source.
	SynapticJ float64
	NeuronJ   float64
	SpikeGenJ float64
	NetworkJ  float64
	PerTickJ  float64
	// Power assuming real-time operation (1 ms ticks).
	DynamicW float64
	StaticW  float64
	TotalW   float64
	// EnergyPerSpikeJ is total dynamic energy per emitted spike.
	EnergyPerSpikeJ float64
	Cores           int
	Ticks           int
}

// String summarizes the estimate.
func (e Estimate) String() string {
	return fmt.Sprintf("%d cores: %.3g W total (%.3g W dynamic + %.3g W static), %.3g J/spike",
		e.Cores, e.TotalW, e.DynamicW, e.StaticW, e.EnergyPerSpikeJ)
}

// FromStats estimates hardware power for the workload a Compass run
// measured. The simulator's statistics provide exact event counts; the
// estimate assumes the hardware would run the same workload in real
// time (one tick per millisecond), which is TrueNorth's design point.
func FromStats(p Profile, stats *compass.RunStats) (Estimate, error) {
	if stats.Ticks == 0 {
		return Estimate{}, fmt.Errorf("power: zero-tick run")
	}
	ticks := float64(stats.Ticks)
	est := Estimate{Cores: stats.NumCores, Ticks: stats.Ticks}
	est.SynapticJ = float64(stats.SynapticEvents) / ticks * p.SynapticEventJ
	est.NeuronJ = float64(stats.NeuronUpdates) / float64(stats.Ticks) * p.NeuronUpdateJ
	est.SpikeGenJ = float64(stats.TotalSpikes) / ticks * p.SpikeGenJ
	// Local spikes pay one hop; remote (inter-core-network) spikes pay
	// the average grid distance.
	hops := float64(stats.LocalSpikes)/ticks + float64(stats.RemoteSpikes)/ticks*p.AvgHops
	est.NetworkJ = hops * p.SpikeHopJ
	est.finish(p)
	if stats.TotalSpikes > 0 {
		est.EnergyPerSpikeJ = est.PerTickJ * ticks / float64(stats.TotalSpikes)
	}
	return est, nil
}

// FromRates estimates hardware power from an analytic operating point:
// cores, mean firing rate (Hz), crossbar density, and the fraction of
// spikes leaving their core.
func FromRates(p Profile, cores int, firingHz, density, remoteFrac float64) (Estimate, error) {
	if cores < 1 {
		return Estimate{}, fmt.Errorf("power: %d cores", cores)
	}
	if firingHz < 0 || density < 0 || density > 1 || remoteFrac < 0 || remoteFrac > 1 {
		return Estimate{}, fmt.Errorf("power: invalid rates (hz=%v density=%v remote=%v)", firingHz, density, remoteFrac)
	}
	neurons := float64(cores) * truenorth.CoreSize
	spikesPerTick := neurons * firingHz / 1000
	est := Estimate{Cores: cores, Ticks: 1}
	est.SynapticJ = spikesPerTick * density * truenorth.CoreSize * p.SynapticEventJ
	est.NeuronJ = neurons * p.NeuronUpdateJ
	est.SpikeGenJ = spikesPerTick * p.SpikeGenJ
	est.NetworkJ = (spikesPerTick*(1-remoteFrac) + spikesPerTick*remoteFrac*p.AvgHops) * p.SpikeHopJ
	est.finish(p)
	if spikesPerTick > 0 {
		est.EnergyPerSpikeJ = est.PerTickJ / spikesPerTick
	}
	return est, nil
}

// finish computes the aggregate fields.
func (e *Estimate) finish(p Profile) {
	e.PerTickJ = e.SynapticJ + e.NeuronJ + e.SpikeGenJ + e.NetworkJ
	e.DynamicW = e.PerTickJ / 0.001
	e.StaticW = float64(e.Cores) * p.CoreLeakageW
	e.TotalW = e.DynamicW + e.StaticW
}
