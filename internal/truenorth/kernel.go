package truenorth

import "math/bits"

// The bit-parallel Synapse kernel.
//
// The scalar Synapse phase walks every pending axon's crossbar row bit
// by bit and makes one integrate call per set bit — for a dense core
// that is tens of thousands of function calls per tick. For purely
// deterministic cores the per-event order is unobservable (integer
// addition commutes and no PRNG is consumed), so the same result can be
// computed neuron-major with word-wide operations:
//
//	ΔV[j] = Σ_type Weights[j][type] · popcount(pending[type] & column[j])
//
// where pending[type] is the tick's pending-axon bitmask restricted to
// axons of one type, and column[j] is the crossbar column of neuron j —
// the set of axons that drive it — as a 4-word bitmask. The kernel is
// built once at NewCore and is bit-identical to the scalar path,
// including the statistics counters and int32 wraparound behaviour
// (multiplication distributes over two's-complement addition).
//
// Cores with any stochastic weight or stochastic leak on an enabled
// neuron are not eligible: their PRNG draw order is defined by the
// scalar per-synapse walk and must be preserved for bit-exact
// reproducibility. Eligibility is decided once, at setup; PCC-compiled
// deterministic models — the common case — take the kernel everywhere.
type kernel struct {
	// typeMask[at][w] bit b set means axon w*64+b has axon type at. The
	// four masks partition the axon space, so restricting a pending mask
	// to one type is a word-wise AND.
	typeMask [NumAxonTypes][axonWords]uint64

	// cols is the column-major (neuron-major) crossbar view: cols[j][w]
	// bit b set means axon w*64+b drives neuron j.
	cols [CoreSize][axonWords]uint64

	// weights[j][at] is neuron j's weight for axon type at, widened to
	// the accumulator type once at setup.
	weights [CoreSize][NumAxonTypes]int32

	// uniform[j] is set when neuron j's four weights are equal; then the
	// per-type split collapses to uniformW[j] · popcount(pending & col).
	uniform  [CoreSize]bool
	uniformW [CoreSize]int32

	// neurons lists the enabled neurons with at least one incoming
	// synapse — the only ones the kernel must visit.
	neurons []uint16
}

// KernelEligible reports whether cfg's Synapse phase may run on the
// bit-parallel kernel: no enabled neuron uses stochastic weights or a
// stochastic leak. Stochastic cores keep the exact scalar path because
// its per-synapse PRNG draw order is part of the reproducibility
// contract.
func KernelEligible(cfg *CoreConfig) bool {
	for j := range cfg.Neurons {
		p := &cfg.Neurons[j]
		if !p.Enabled {
			continue
		}
		if p.StochasticLeak {
			return false
		}
		for _, s := range p.StochasticWeight {
			if s {
				return false
			}
		}
	}
	return true
}

// buildKernel derives the column planes, axon-type masks, and widened
// weights for an eligible configuration.
func buildKernel(cfg *CoreConfig) *kernel {
	k := &kernel{}
	for a := 0; a < CoreSize; a++ {
		aw, abit := a>>6, uint64(1)<<(uint(a)&63)
		k.typeMask[cfg.AxonTypes[a]][aw] |= abit
		row := &cfg.Crossbar[a]
		for w := 0; w < crossbarWords; w++ {
			word := row[w]
			for word != 0 {
				j := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				k.cols[j][aw] |= abit
			}
		}
	}
	for j := range cfg.Neurons {
		p := &cfg.Neurons[j]
		if !p.Enabled {
			continue
		}
		var connected uint64
		for _, w := range k.cols[j] {
			connected |= w
		}
		if connected == 0 {
			continue
		}
		uniform := true
		for at := 0; at < NumAxonTypes; at++ {
			k.weights[j][at] = int32(p.Weights[at])
			if p.Weights[at] != p.Weights[0] {
				uniform = false
			}
		}
		k.uniform[j] = uniform
		k.uniformW[j] = int32(p.Weights[0])
		k.neurons = append(k.neurons, uint16(j))
	}
	return k
}

// synapseKernel integrates one tick's pending axons into every connected
// neuron with word-wide AND+popcount, no per-synapse calls and no
// per-bit loops. slot is the tick's pending-axon summary; the caller
// clears it afterwards.
func (c *Core) synapseKernel(slot *[axonWords]uint64) {
	k := c.kern

	// Every pending axon is one axon event, exactly as the scalar walk
	// counts them.
	n := 0
	for _, w := range slot {
		n += bits.OnesCount64(w)
	}
	c.axonEvents += uint64(n)

	// Split the pending mask by axon type once per tick; each neuron
	// then costs a handful of word operations.
	var byType [NumAxonTypes][axonWords]uint64
	for at := range byType {
		tm := &k.typeMask[at]
		for w := range byType[at] {
			byType[at][w] = slot[w] & tm[w]
		}
	}

	events := uint64(0)
	for _, j := range k.neurons {
		col := &k.cols[j]
		hits := 0
		for w := 0; w < axonWords; w++ {
			hits += bits.OnesCount64(slot[w] & col[w])
		}
		if hits == 0 {
			continue
		}
		events += uint64(hits)
		if k.uniform[j] {
			c.potential[j] += k.uniformW[j] * int32(hits)
			continue
		}
		var delta int32
		for at := 0; at < NumAxonTypes; at++ {
			cnt := 0
			for w := 0; w < axonWords; w++ {
				cnt += bits.OnesCount64(byType[at][w] & col[w])
			}
			delta += k.weights[j][at] * int32(cnt)
		}
		c.potential[j] += delta
	}
	c.synapticEvents += events
}
