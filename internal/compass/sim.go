package compass

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"time"

	"github.com/cognitive-sim/compass/internal/truenorth"
	"github.com/cognitive-sim/compass/internal/workpool"
)

// Run simulates ticks ticks of model m under cfg and returns aggregated
// statistics. The spike output is identical for every (ranks, threads,
// transport) choice; only the communication behaviour differs.
func Run(m *truenorth.Model, cfg Config, ticks int) (*RunStats, error) {
	return RunContext(context.Background(), m, cfg, ticks)
}

// RunContext is Run with cooperative cancellation: every rank checks ctx
// at its tick boundaries, and the first cancelled rank aborts the
// transport so peers blocked in a collective, barrier, or receive unwind
// within one tick on every backend. A cancelled run returns ctx.Err()
// (the secondary transport-abort errors are suppressed by the same
// two-pass causal-error machinery that serves injected rank crashes);
// partial state is discarded, so callers that need resumability should
// checkpoint between bounded RunContext windows.
//
// RunContext freezes m into a private image and runs against it; callers
// that run the same model repeatedly (or concurrently) should build the
// image once with truenorth.NewImage and call RunImageContext, sharing
// the immutable half across runs.
func RunContext(ctx context.Context, m *truenorth.Model, cfg Config, ticks int) (*RunStats, error) {
	img, err := truenorth.NewImage(m)
	if err != nil {
		return nil, err
	}
	return RunImageContext(ctx, img, cfg, ticks)
}

// RunImage simulates ticks ticks against a prebuilt immutable image.
// Only per-session runtime state is allocated; the image's
// configurations and kernels are shared copy-on-write, so any number of
// RunImage calls may execute concurrently against one image and each
// produces output bit-identical to a run on a private model.
func RunImage(img *truenorth.Image, cfg Config, ticks int) (*RunStats, error) {
	return RunImageContext(context.Background(), img, cfg, ticks)
}

// RunImageContext is RunImage with cooperative cancellation.
func RunImageContext(ctx context.Context, img *truenorth.Image, cfg Config, ticks int) (*RunStats, error) {
	if err := cfg.ValidateImage(img); err != nil {
		return nil, err
	}
	if ticks < 0 {
		return nil, fmt.Errorf("compass: negative tick count %d", ticks)
	}

	// The transport is selected exactly once, here; every tick after this
	// goes through the Endpoint interface.
	backend, err := newBackend(cfg.Transport, cfg.Telemetry, cfg.Faults)
	if err != nil {
		return nil, err
	}

	placement := cfg.placement(img.NumCores())
	states := make([]*rankState, cfg.Ranks)
	for r := range states {
		states[r] = newRankState(r, img, cfg, placement, backend.RawSpikes())
	}

	start := uint64(0)
	if cfg.StartFrom != nil {
		if err := img.ValidateCheckpoint(cfg.StartFrom); err != nil {
			return nil, err
		}
		start = cfg.StartFrom.Tick
		for _, st := range states {
			for _, core := range st.cores {
				if err := core.SetState(cfg.StartFrom.States[core.ID()]); err != nil {
					return nil, err
				}
			}
		}
	}

	runErr := backend.Run(cfg.Ranks, func(rank int, ep Endpoint) error {
		st := states[rank]
		st.ep = ep
		return st.loop(ctx, start, ticks)
	})
	if runErr != nil {
		return nil, runErr
	}
	out := gather(img, cfg, ticks, states)
	if cfg.MeasurePhases || cfg.Telemetry != nil {
		for _, st := range states {
			if st.synapseSec > out.PhaseSeconds.Synapse {
				out.PhaseSeconds.Synapse = st.synapseSec
			}
			if st.neuronSec > out.PhaseSeconds.Neuron {
				out.PhaseSeconds.Neuron = st.neuronSec
			}
			if st.networkSec > out.PhaseSeconds.Network {
				out.PhaseSeconds.Network = st.networkSec
			}
		}
	}
	if cfg.ReturnState {
		cp := &truenorth.Checkpoint{
			Tick:   start + uint64(ticks),
			States: make([]truenorth.CoreState, img.NumCores()),
		}
		for _, st := range states {
			for _, core := range st.cores {
				cp.States[core.ID()] = core.State()
			}
		}
		out.Final = cp
	}
	return out, nil
}

// gather merges per-rank results into the run summary.
func gather(img *truenorth.Image, cfg Config, ticks int, states []*rankState) *RunStats {
	out := &RunStats{
		Ticks:    ticks,
		Ranks:    cfg.Ranks,
		Threads:  cfg.ThreadsPerRank,
		NumCores: img.NumCores(),
	}
	if cfg.RecordPerTick {
		out.PerTick = make([]TickStats, ticks)
	}
	for _, st := range states {
		rs := st.finalRankStats()
		out.PerRank = append(out.PerRank, rs)
		out.TotalSpikes += rs.Firings
		out.LocalSpikes += rs.LocalSpikes
		out.RemoteSpikes += rs.RemoteSpikes
		out.Messages += rs.MessagesSent
		out.AxonEvents += rs.AxonEvents
		out.SynapticEvents += rs.SynapticEvents
		out.NeuronUpdates += rs.NeuronUpdates
		out.QuiescentCoreTicks += rs.QuiescentCoreTicks
		out.SynapseSkips += rs.SynapseSkips
		out.DroppedInputs += rs.DroppedInputs
		if cfg.RecordPerTick {
			for t := range st.perTick {
				out.PerTick[t].add(st.perTick[t])
			}
		}
		if cfg.RecordTrace {
			for _, tr := range st.traces {
				out.Trace = append(out.Trace, tr...)
			}
		}
	}
	out.WireBytes = out.RemoteSpikes * truenorth.SpikeWireBytes
	if cfg.RecordTrace {
		truenorth.SortSpikeEvents(out.Trace)
	}
	return out
}

// rankState is the per-rank simulation state.
type rankState struct {
	rank    int
	cfg     Config
	ranks   int
	threads int

	// tel is the run's instrument bundle (nil when telemetry is off);
	// measure is true when phase wall-clock must be taken, either for
	// RunStats.PhaseSeconds or for telemetry spans.
	tel     *Telemetry
	measure bool

	// ep is this rank's transport endpoint; raw reports whether the
	// transport takes un-encoded spikes (Backend.RawSpikes).
	ep  Endpoint
	raw bool

	// pool is the persistent worker team behind Parallel; nil when the
	// rank runs single-threaded.
	pool *workpool.Pool

	// cores owned by this rank, ascending ID; threadCores partitions them
	// round-robin over threads. threadActive[tid] is rebuilt each tick
	// with the cores that actually have work (reused across ticks), so
	// the compute phase iterates active cores only.
	cores        []*truenorth.Core
	threadCores  [][]*truenorth.Core
	threadActive [][]*truenorth.Core

	// localCore resolves spike targets owned by this rank: a dense slice
	// keyed by CoreID (nil entries for cores on other ranks).
	localCore []*truenorth.Core

	// placement maps every core in the model to its rank.
	placement []int

	inputsByTick map[uint64][]truenorth.InputSpike

	// threadRemote[thread][dest] (encoded transports) or
	// threadRemoteRaw[thread][dest] (raw transports) accumulates spikes
	// bound for remote ranks during the Neuron phase; out holds the
	// aggregated per-destination message (remoteBufAgg in Listing 1).
	threadRemote    [][][]byte
	threadRemoteRaw [][][]truenorth.SpikeTarget
	out             Outbox

	// threadLocal[thread] accumulates spikes bound for this rank.
	threadLocal [][]truenorth.SpikeTarget

	// traces[thread] accumulates spike events when tracing.
	traces [][]truenorth.SpikeEvent

	// threadSink[thread] accumulates the current tick's fired spikes when
	// an OutputSink is attached; sinkBatch is the merged per-rank batch
	// handed to the sink, reused across ticks.
	threadSink [][]truenorth.SpikeEvent
	sinkBatch  []truenorth.SpikeEvent

	// streamDrops counts streamed input spikes addressing cores outside
	// the model (counted once, on rank 0, since every rank sees the same
	// streamed batch).
	streamDrops uint64

	// per-thread firing counters for the current tick.
	threadFirings []uint64

	// cumulative per-thread quiescence counters: core-ticks skipped
	// entirely and Synapse phases skipped for lack of pending spikes.
	threadQuiescent []uint64
	threadSynSkips  []uint64

	// per-thread Synapse-path dispatch counters (telemetry only) and
	// the current tick's per-thread Synapse wall-clock (nanoseconds,
	// written when measure is set).
	threadKernelHits []uint64
	threadScalarHits []uint64
	threadSynapseNS  []int64

	// cumulative statistics.
	localSpikes  uint64
	remoteSpikes uint64
	msgsSent     uint64
	peers        map[int]bool
	perTick      []TickStats

	// snapshots of core counters for per-tick deltas.
	prevAxonEvents uint64
	prevSynEvents  uint64

	ticksRun  int
	startTick uint64

	// staleInputs counts external input spikes dropped because they were
	// scheduled before a resumed run's start tick (see purgeStaleInputs).
	staleInputs uint64

	// measured per-phase wall-clock (seconds) when measure is set.
	// synapseSec is the per-tick maximum thread Synapse time summed over
	// ticks; neuronSec is the rest of each compute section, so their sum
	// is the compute section's wall-clock.
	synapseSec float64
	neuronSec  float64
	networkSec float64
}

// newRankState instantiates this rank's runtime state against the shared
// image: only cores placed on rank r get live (per-session) state; their
// configurations and kernels are referenced from the image.
func newRankState(r int, img *truenorth.Image, cfg Config, placement []int, raw bool) *rankState {
	st := &rankState{
		rank:         r,
		cfg:          cfg,
		ranks:        cfg.Ranks,
		threads:      cfg.ThreadsPerRank,
		tel:          cfg.Telemetry,
		measure:      cfg.MeasurePhases || cfg.Telemetry != nil,
		raw:          raw,
		placement:    placement,
		localCore:    make([]*truenorth.Core, img.NumCores()),
		inputsByTick: make(map[uint64][]truenorth.InputSpike),
		peers:        make(map[int]bool),
	}
	for i := 0; i < img.NumCores(); i++ {
		if placement[i] != r {
			continue
		}
		core := img.NewCore(i)
		if cfg.ForceScalar {
			core.ForceScalar()
		}
		st.cores = append(st.cores, core)
		st.localCore[core.ID()] = core
	}
	st.threadCores = make([][]*truenorth.Core, cfg.ThreadsPerRank)
	for i, core := range st.cores {
		tid := i % cfg.ThreadsPerRank
		st.threadCores[tid] = append(st.threadCores[tid], core)
	}
	for _, in := range img.Inputs() {
		if placement[in.Core] == r {
			st.inputsByTick[in.Tick] = append(st.inputsByTick[in.Tick], in)
		}
	}
	if raw {
		st.threadRemoteRaw = make([][][]truenorth.SpikeTarget, cfg.ThreadsPerRank)
		for tid := range st.threadRemoteRaw {
			st.threadRemoteRaw[tid] = make([][]truenorth.SpikeTarget, cfg.Ranks)
		}
		st.out.Targets = make([][]truenorth.SpikeTarget, cfg.Ranks)
	} else {
		st.threadRemote = make([][][]byte, cfg.ThreadsPerRank)
		for tid := range st.threadRemote {
			st.threadRemote[tid] = make([][]byte, cfg.Ranks)
		}
		st.out.Encoded = make([][]byte, cfg.Ranks)
	}
	st.out.Counts = make([]int64, cfg.Ranks)
	st.threadLocal = make([][]truenorth.SpikeTarget, cfg.ThreadsPerRank)
	st.threadFirings = make([]uint64, cfg.ThreadsPerRank)
	st.threadActive = make([][]*truenorth.Core, cfg.ThreadsPerRank)
	for tid := range st.threadActive {
		st.threadActive[tid] = make([]*truenorth.Core, 0, len(st.threadCores[tid]))
	}
	st.threadQuiescent = make([]uint64, cfg.ThreadsPerRank)
	st.threadSynSkips = make([]uint64, cfg.ThreadsPerRank)
	st.threadKernelHits = make([]uint64, cfg.ThreadsPerRank)
	st.threadScalarHits = make([]uint64, cfg.ThreadsPerRank)
	st.threadSynapseNS = make([]int64, cfg.ThreadsPerRank)
	if cfg.RecordTrace {
		st.traces = make([][]truenorth.SpikeEvent, cfg.ThreadsPerRank)
	}
	if cfg.OutputSink != nil {
		st.threadSink = make([][]truenorth.SpikeEvent, cfg.ThreadsPerRank)
	}
	if st.tel != nil {
		kernel := 0
		for _, core := range st.cores {
			if core.KernelActive() {
				kernel++
			}
		}
		st.tel.setCorePaths(r, kernel, len(st.cores)-kernel)
	}
	return st
}

// loop runs the rank's main simulation loop for ticks ticks starting at
// absolute tick start. The worker pool persists across all ticks.
func (st *rankState) loop(ctx context.Context, start uint64, ticks int) error {
	// Label the rank goroutine (worker 0) so CPU and goroutine profiles
	// attribute samples per rank; the pool labels workers 1..threads-1.
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("compass_rank", strconv.Itoa(st.rank), "compass_worker", "0")))
	st.ticksRun = ticks
	st.startTick = start
	pool, release := newWorkerPool(st.rank, st.threads, st.cfg.Workers)
	st.pool = pool
	defer release()
	defer st.pool.Stop()
	// Flush on every exit path: a run failing mid-tick (an injected crash,
	// a transport abort) must still publish the counters it accumulated,
	// or post-mortem telemetry reads as if the rank never ran.
	defer st.flushTelemetry()
	st.purgeStaleInputs(start)
	done := ctx.Done()
	for t := start; t < start+uint64(ticks); t++ {
		// Cancellation is checked only at tick boundaries, so a rank never
		// abandons a tick half-exchanged; the backend's abort broadcast
		// (triggered when this error reaches Backend.Run) releases peers
		// blocked inside the current tick's collective or barrier.
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		if err := st.tick(t); err != nil {
			return fmt.Errorf("compass: rank %d tick %d: %w", st.rank, t, err)
		}
	}
	return nil
}

// purgeStaleInputs drops external input spikes scheduled strictly before
// a resumed run's start tick. Without this, entries for ticks the
// checkpointed run already consumed would sit in inputsByTick forever —
// never injected, never freed — and a later resume window covering those
// ticks would double-inject them. The drops are counted into the rank's
// DroppedInputs alongside out-of-range axon drops.
func (st *rankState) purgeStaleInputs(start uint64) {
	if start == 0 {
		return
	}
	for tick, ins := range st.inputsByTick {
		if tick < start {
			st.staleInputs += uint64(len(ins))
			delete(st.inputsByTick, tick)
		}
	}
}

// flushTelemetry publishes the rank's cumulative compute-path counters
// once, at end of run (per-tick flushing would buy nothing: the
// registry is only scraped after Run returns).
func (st *rankState) flushTelemetry() {
	if st.tel == nil {
		return
	}
	var kernel, scalar, skips, quiescent uint64
	for tid := 0; tid < st.threads; tid++ {
		kernel += st.threadKernelHits[tid]
		scalar += st.threadScalarHits[tid]
		skips += st.threadSynSkips[tid]
		quiescent += st.threadQuiescent[tid]
	}
	dropped := st.staleInputs + st.streamDrops
	for _, core := range st.cores {
		dropped += core.DroppedInjects()
	}
	st.tel.computeCounts(st.rank, kernel, scalar, skips, quiescent, dropped)
}

// tick executes one tick: inputs, Synapse and Neuron phases in parallel
// across threads, then the Network phase through the transport endpoint.
func (st *rankState) tick(t uint64) error {
	for _, in := range st.inputsByTick[t] {
		st.localCore[in.Core].InjectRaw(int(in.Axon), t)
	}
	delete(st.inputsByTick, t)
	if st.cfg.InputSource != nil {
		// Streamed inputs: every rank polls the source for the same batch
		// and injects the spikes it owns (the spike's Tick field is the
		// source's bookkeeping; delivery is at this tick boundary). A spike
		// addressing a core outside the model is dropped and counted once,
		// on rank 0; out-of-range axons are dropped by InjectRaw on the
		// owning core.
		for _, in := range st.cfg.InputSource.SpikesFor(t) {
			if int(in.Core) >= len(st.localCore) {
				if st.rank == 0 {
					st.streamDrops++
				}
				continue
			}
			if core := st.localCore[in.Core]; core != nil {
				core.InjectRaw(int(in.Axon), t)
			}
		}
	}

	measure, counting := st.measure, st.tel != nil
	var computeStart time.Time
	if measure {
		computeStart = time.Now()
	}

	// Synapse + Neuron phases. Cores are independent within a tick, so
	// each thread runs both phases back to back over its cores. Each
	// thread first filters its cores down to the active list — quiescent
	// cores (passive dynamics, settled state, no spikes due) are skipped
	// outright — and the Synapse phase is skipped for active cores with
	// no pending spikes this tick. When measuring, each thread also
	// clocks its Synapse work so the two compute phases report
	// separately (Figure 4(a) plots them as distinct bars).
	st.Parallel(func(tid int) {
		fired := uint64(0)
		synapseNS := int64(0)
		active := st.threadActive[tid][:0]
		for _, core := range st.threadCores[tid] {
			if core.QuiescentAt(t) {
				st.threadQuiescent[tid]++
				continue
			}
			active = append(active, core)
		}
		st.threadActive[tid] = active
		for _, core := range active {
			if core.HasPendingSpikes(t) {
				if measure {
					s0 := time.Now()
					core.SynapsePhase(t)
					synapseNS += time.Since(s0).Nanoseconds()
				} else {
					core.SynapsePhase(t)
				}
				if counting {
					if core.KernelActive() {
						st.threadKernelHits[tid]++
					} else {
						st.threadScalarHits[tid]++
					}
				}
			} else {
				st.threadSynSkips[tid]++
			}
			core.NeuronPhase(func(s truenorth.Spike) {
				fired++
				dest := st.placement[s.Target.Core]
				switch {
				case dest == st.rank:
					st.threadLocal[tid] = append(st.threadLocal[tid], s.Target)
				case st.raw:
					st.threadRemoteRaw[tid][dest] = append(st.threadRemoteRaw[tid][dest], s.Target)
				default:
					st.threadRemote[tid][dest] = appendSpike(st.threadRemote[tid][dest], s.Target)
				}
				if st.cfg.RecordTrace {
					st.traces[tid] = append(st.traces[tid], truenorth.SpikeEvent{FireTick: t, Target: s.Target})
				}
				if st.threadSink != nil {
					st.threadSink[tid] = append(st.threadSink[tid], truenorth.SpikeEvent{FireTick: t, Target: s.Target})
				}
			})
		}
		st.threadFirings[tid] = fired
		if measure {
			st.threadSynapseNS[tid] = synapseNS
		}
	})

	// Live spike egress: hand the tick's fired spikes (all threads,
	// merged into a reused batch) to the attached sink before the Network
	// phase, so a subscriber observes tick t's output no later than the
	// simulation enters tick t+1.
	if st.threadSink != nil {
		batch := st.sinkBatch[:0]
		for tid := range st.threadSink {
			batch = append(batch, st.threadSink[tid]...)
			st.threadSink[tid] = st.threadSink[tid][:0]
		}
		st.sinkBatch = batch
		if len(batch) > 0 {
			st.cfg.OutputSink.Emit(st.rank, t, batch)
		}
	}

	// Thread-aggregate remote buffers into one message per destination
	// (threadAggregate in Listing 1). All outbox buffers are reused
	// across ticks.
	tickRemote := uint64(0)
	tickMsgs := uint64(0)
	for dest := 0; dest < st.ranks; dest++ {
		st.out.Counts[dest] = 0
		var n int
		if st.raw {
			buf := st.out.Targets[dest][:0]
			for tid := 0; tid < st.threads; tid++ {
				buf = append(buf, st.threadRemoteRaw[tid][dest]...)
				st.threadRemoteRaw[tid][dest] = st.threadRemoteRaw[tid][dest][:0]
			}
			st.out.Targets[dest] = buf
			n = len(buf)
		} else {
			buf := st.out.Encoded[dest][:0]
			for tid := 0; tid < st.threads; tid++ {
				buf = append(buf, st.threadRemote[tid][dest]...)
				st.threadRemote[tid][dest] = st.threadRemote[tid][dest][:0]
			}
			st.out.Encoded[dest] = buf
			n = len(buf) / spikeRecordBytes
		}
		if n > 0 {
			st.out.Counts[dest] = 1
			tickRemote += uint64(n)
			tickMsgs++
			st.peers[dest] = true
		}
	}
	st.remoteSpikes += tickRemote
	st.msgsSent += tickMsgs
	tickLocal := uint64(0)
	for tid := range st.threadLocal {
		tickLocal += uint64(len(st.threadLocal[tid]))
	}
	st.localSpikes += tickLocal

	if measure {
		// The compute section's wall-clock splits at the slowest
		// thread's Synapse time: that is the Synapse phase's critical
		// path, and everything after it — integrate/leak/fire plus the
		// aggregation above — is the Neuron phase. The two spans tile
		// the section, so Synapse+Neuron matches the old fused total.
		computeDur := time.Since(computeStart)
		var maxSynapse int64
		for _, ns := range st.threadSynapseNS {
			if ns > maxSynapse {
				maxSynapse = ns
			}
		}
		synapseDur := time.Duration(maxSynapse)
		if synapseDur > computeDur {
			synapseDur = computeDur
		}
		neuronDur := computeDur - synapseDur
		st.synapseSec += synapseDur.Seconds()
		st.neuronSec += neuronDur.Seconds()
		st.tel.phaseSpan(st.rank, PhaseSynapse, t, computeStart, synapseDur)
		st.tel.phaseSpan(st.rank, PhaseNeuron, t, computeStart.Add(synapseDur), neuronDur)
	}
	if counting {
		fired := uint64(0)
		for _, f := range st.threadFirings {
			fired += f
		}
		st.tel.tickCounts(st.rank, tickMsgs, tickRemote*truenorth.SpikeWireBytes,
			tickLocal, tickRemote, fired)
	}

	var networkStart time.Time
	if measure {
		networkStart = time.Now()
	}
	if err := st.ep.Exchange(t, &st.out, st); err != nil {
		return err
	}
	if measure {
		networkDur := time.Since(networkStart)
		st.networkSec += networkDur.Seconds()
		st.tel.phaseSpan(st.rank, PhaseNetwork, t, networkStart, networkDur)
	}

	for tid := range st.threadLocal {
		st.threadLocal[tid] = st.threadLocal[tid][:0]
	}

	if st.cfg.RecordPerTick {
		st.recordTick(t, tickLocal, tickRemote, tickMsgs)
	}
	return nil
}

// recordTick captures this tick's aggregates.
func (st *rankState) recordTick(t uint64, local, remote, msgs uint64) {
	var axon, syn, fired uint64
	for _, core := range st.cores {
		a, s, _ := core.Stats()
		axon += a
		syn += s
	}
	for _, f := range st.threadFirings {
		fired += f
	}
	ts := TickStats{
		AxonEvents:     axon - st.prevAxonEvents,
		SynapticEvents: syn - st.prevSynEvents,
		Firings:        fired,
		LocalSpikes:    local,
		RemoteSpikes:   remote,
		Messages:       msgs,
		WireBytes:      remote * truenorth.SpikeWireBytes,
	}
	st.prevAxonEvents = axon
	st.prevSynEvents = syn
	rel := t - st.startTick
	for len(st.perTick) <= int(rel) {
		st.perTick = append(st.perTick, TickStats{})
	}
	st.perTick[rel] = ts
}

// finalRankStats summarizes the rank after the run.
func (st *rankState) finalRankStats() RankStats {
	rs := RankStats{
		Rank:         st.rank,
		CoresOwned:   len(st.cores),
		LocalSpikes:  st.localSpikes,
		RemoteSpikes: st.remoteSpikes,
		MessagesSent: st.msgsSent,
		PeerRanks:    len(st.peers),
	}
	rs.DroppedInputs = st.staleInputs + st.streamDrops
	for _, core := range st.cores {
		a, s, f := core.Stats()
		rs.AxonEvents += a
		rs.SynapticEvents += s
		rs.Firings += f
		rs.DroppedInputs += core.DroppedInjects()
	}
	for tid := 0; tid < st.threads; tid++ {
		rs.QuiescentCoreTicks += st.threadQuiescent[tid]
		rs.SynapseSkips += st.threadSynSkips[tid]
	}
	// Every enabled neuron is updated once per tick.
	enabled := uint64(0)
	for _, core := range st.cores {
		cfg := core.Config()
		for j := range cfg.Neurons {
			if cfg.Neurons[j].Enabled {
				enabled++
			}
		}
	}
	rs.NeuronUpdates = enabled * uint64(st.ticksRun)
	return rs
}
