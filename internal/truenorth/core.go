// Package truenorth models the TrueNorth neurosynaptic core architecture
// that Compass simulates.
//
// TrueNorth is a non-von Neumann architecture built from neurosynaptic
// cores. Each core contains 256 axons (inputs), a 256×256 binary synaptic
// crossbar, and 256 digital integrate-leak-and-fire neurons. A buffer in
// front of every axon holds incoming spikes until their axonal delay has
// elapsed. Cores advance in 1 ms ticks of a slow 1000 Hz clock: during a
// tick a core first propagates every pending axon spike across its
// crossbar row into the connected neurons (Synapse phase), then each
// neuron integrates, leaks, and fires (Neuron phase), and finally every
// emitted spike travels the inter-core network to the axon buffer of its
// single target axon (Network phase). Synaptic and neuronal state never
// leave a core; only spikes do.
//
// This package is purely the architecture: core state, configuration, and
// single-core tick semantics. The parallel simulator that partitions
// cores over ranks and threads lives in internal/compass; the compiler
// that produces core configurations lives in internal/pcc.
package truenorth

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"github.com/cognitive-sim/compass/internal/prng"
)

const (
	// CoreSize is the number of axons and the number of neurons in a
	// neurosynaptic core; the crossbar is CoreSize×CoreSize.
	CoreSize = 256

	// NumAxonTypes is the number of distinct axon types; each neuron holds
	// one signed synaptic weight per axon type.
	NumAxonTypes = 4

	// MaxDelay is the largest axonal delay, in ticks, an axon buffer can
	// hold. Delays are in [1, MaxDelay]; the buffer is a ring of
	// MaxDelay+1 slots indexed by tick modulo the window.
	MaxDelay = 15

	// delayWindow is the ring size of an axon buffer.
	delayWindow = MaxDelay + 1

	// crossbarWords is the number of 64-bit words per crossbar row.
	crossbarWords = CoreSize / 64

	// axonWords is the number of 64-bit words in a per-slot pending-axon
	// bitmask (one bit per axon).
	axonWords = CoreSize / 64

	// SpikeWireBytes is the modelled size of one spike on the inter-core
	// network; the paper accounts 20 bytes per spike when computing
	// aggregate bandwidth (§VI-B).
	SpikeWireBytes = 20
)

// CoreID identifies a core globally within a model.
type CoreID uint32

// SpikeTarget is the destination of a neuron's output: one axon on one
// core, reached after Delay ticks (1 ≤ Delay ≤ MaxDelay).
type SpikeTarget struct {
	Core  CoreID
	Axon  uint16
	Delay uint8
	// Lane is the batch-session lane the spike belongs to when several
	// sessions of one model advance under a shared tick loop (see
	// CoreLanes and compass.RunBatch); it is always 0 outside batched
	// execution, in neuron configurations, and in recorded traces. The
	// field fills what was padding, so SpikeTarget stays 8 bytes.
	Lane uint8
}

// Spike is a spike in flight on the inter-core network during the tick in
// which its source neuron fired.
type Spike struct {
	Target SpikeTarget
}

// NeuronParams configures one digital integrate-leak-and-fire neuron.
// The dynamics per tick are:
//
//	for each axon i with a pending spike and crossbar bit (i,j) set:
//	    V += Weights[AxonType[i]]            (deterministic mode)
//	    V += sign(w)·[draw8 < |w|]           (stochastic mode)
//	V += Leak, or sign(Leak)·[draw8 < |Leak|] if StochasticLeak
//	if V < Floor: V = Floor
//	if V >= Threshold: fire; V = Reset
//
// All stochastic draws come from the owning core's deterministic PRNG in
// a fixed order, so behaviour is exactly reproducible for a given model
// seed regardless of how cores are partitioned across ranks and threads.
type NeuronParams struct {
	// Weights holds one signed synaptic weight per axon type.
	Weights [NumAxonTypes]int16
	// StochasticWeight selects, per axon type, stochastic integration: the
	// membrane moves by ±1 with probability |weight|/256.
	StochasticWeight [NumAxonTypes]bool
	// Leak is added to the membrane potential every tick (signed).
	Leak int16
	// StochasticLeak applies the leak as ±1 with probability |Leak|/256.
	StochasticLeak bool
	// Threshold is the firing threshold; the neuron fires when V >=
	// Threshold at the end of the Neuron phase. Must be >= 1 for an
	// enabled neuron.
	Threshold int32
	// Reset is the membrane potential assigned after a spike.
	Reset int32
	// Floor is the lower bound on the membrane potential.
	Floor int32
	// Target is the core/axon/delay this neuron's spikes are sent to.
	Target SpikeTarget
	// Enabled gates the neuron; disabled neurons never integrate or fire.
	Enabled bool
}

// Validate reports whether the parameters are self-consistent.
func (p *NeuronParams) Validate() error {
	if !p.Enabled {
		return nil
	}
	if p.Threshold < 1 {
		return fmt.Errorf("truenorth: enabled neuron has threshold %d < 1", p.Threshold)
	}
	if p.Floor > p.Reset {
		return fmt.Errorf("truenorth: floor %d above reset %d", p.Floor, p.Reset)
	}
	if int(p.Target.Axon) >= CoreSize {
		return fmt.Errorf("truenorth: target axon %d out of range", p.Target.Axon)
	}
	if p.Target.Delay < 1 || p.Target.Delay > MaxDelay {
		return fmt.Errorf("truenorth: target delay %d outside [1,%d]", p.Target.Delay, MaxDelay)
	}
	if p.Target.Lane != 0 {
		return fmt.Errorf("truenorth: target lane %d; lanes are assigned at batch run time, not in configurations", p.Target.Lane)
	}
	return nil
}

// CoreConfig is the pure-data configuration of one core: everything the
// Parallel Compass Compiler produces and the simulator instantiates. The
// crossbar is stored as CoreSize rows of CoreSize bits; row i bit j set
// means axon i drives neuron j.
type CoreConfig struct {
	ID        CoreID
	Crossbar  [CoreSize][crossbarWords]uint64
	AxonTypes [CoreSize]uint8
	Neurons   [CoreSize]NeuronParams
}

// SetSynapse sets or clears crossbar bit (axon, neuron).
func (c *CoreConfig) SetSynapse(axon, neuron int, on bool) {
	w, b := neuron/64, uint(neuron%64)
	if on {
		c.Crossbar[axon][w] |= 1 << b
	} else {
		c.Crossbar[axon][w] &^= 1 << b
	}
}

// Synapse reports crossbar bit (axon, neuron).
func (c *CoreConfig) Synapse(axon, neuron int) bool {
	return c.Crossbar[axon][neuron/64]>>(uint(neuron%64))&1 == 1
}

// SynapseCount returns the number of set crossbar bits.
func (c *CoreConfig) SynapseCount() int {
	n := 0
	for i := range c.Crossbar {
		for _, w := range c.Crossbar[i] {
			n += bits.OnesCount64(w)
		}
	}
	return n
}

// Validate checks every neuron and axon type in the configuration.
func (c *CoreConfig) Validate() error {
	for i, t := range c.AxonTypes {
		if int(t) >= NumAxonTypes {
			return fmt.Errorf("truenorth: core %d axon %d has type %d >= %d", c.ID, i, t, NumAxonTypes)
		}
	}
	for j := range c.Neurons {
		if err := c.Neurons[j].Validate(); err != nil {
			return fmt.Errorf("core %d neuron %d: %w", c.ID, j, err)
		}
	}
	return nil
}

// Core is the live simulation state of one neurosynaptic core.
type Core struct {
	cfg *CoreConfig

	// potential holds the membrane potential of every neuron.
	potential [CoreSize]int32

	// pending is the axon delay ring in slot-major form: pending[s][w]
	// bit b set means axon w*64+b has a spike scheduled for delivery at
	// ticks t with t%delayWindow == s. One slot is both the delivery
	// queue for its tick and the pending-axon summary the simulator's
	// quiescence check and the bit-parallel kernel read; the parallel
	// simulator's delivery threads set bits with atomic OR.
	pending [delayWindow][axonWords]uint64

	// rng is this core's private deterministic random stream.
	rng *prng.Stream

	// kern is the bit-parallel Synapse-phase fast path; nil for cores
	// with stochastic weights or leaks, which keep the scalar path so the
	// per-synapse PRNG draw order stays bit-exact (see kernel.go).
	kern *kernel

	// passive marks a core whose Neuron phase is a provable no-op on
	// ticks without synaptic input (see passiveConfig); settled becomes
	// true once a Neuron phase has run on the current dynamic state, so
	// arbitrary initial potentials are normalized before skipping.
	passive bool
	settled bool

	// Statistics, maintained across ticks.
	synapticEvents uint64 // crossbar deliveries into neurons
	axonEvents     uint64 // axons with a pending spike processed
	firings        uint64 // spikes emitted by neurons
	droppedInjects uint64 // out-of-range external spikes dropped
}

// NewCore instantiates live state for cfg. The core's random stream is
// derived from (modelSeed, cfg.ID) so results do not depend on placement.
// Purely deterministic cores get the bit-parallel Synapse kernel; cores
// with stochastic weights or leaks keep the scalar reference path.
func NewCore(cfg *CoreConfig, modelSeed uint64) *Core {
	c := &Core{
		cfg: cfg,
		rng: prng.NewCoreStream(modelSeed, uint64(cfg.ID)),
	}
	if KernelEligible(cfg) {
		c.kern = buildKernel(cfg)
	}
	c.passive = passiveConfig(cfg)
	return c
}

// ForceScalar disables the bit-parallel kernel and quiescent-core
// skipping for this core, pinning it to the scalar reference path. The
// output is identical either way; the hook exists for benchmarks and
// kernel-conformance tests.
func (c *Core) ForceScalar() {
	c.kern = nil
	c.passive = false
}

// KernelActive reports whether the core runs the bit-parallel Synapse
// kernel (as opposed to the scalar reference path).
func (c *Core) KernelActive() bool { return c.kern != nil }

// passiveConfig reports whether a Neuron phase with no synaptic input is
// a provable no-op for every enabled neuron: zero deterministic leak (no
// membrane movement and no PRNG draw) and Reset < Threshold (a neuron
// that fires leaves the phase below threshold, so it cannot fire again
// without input). For such cores a tick with no pending spikes can be
// skipped outright once the state has settled.
func passiveConfig(cfg *CoreConfig) bool {
	for j := range cfg.Neurons {
		p := &cfg.Neurons[j]
		if !p.Enabled {
			continue
		}
		if p.Leak != 0 || p.StochasticLeak || p.Reset >= p.Threshold {
			return false
		}
	}
	return true
}

// ID returns the core's global ID.
func (c *Core) ID() CoreID { return c.cfg.ID }

// Config returns the core's configuration.
func (c *Core) Config() *CoreConfig { return c.cfg }

// Potential returns neuron j's membrane potential.
func (c *Core) Potential(j int) int32 { return c.potential[j] }

// SetPotential sets neuron j's membrane potential (used for tests and for
// initializing biased populations).
func (c *Core) SetPotential(j int, v int32) {
	c.potential[j] = v
	c.settled = false
}

// Stats returns cumulative (axon events, synaptic events, firings).
func (c *Core) Stats() (axonEvents, synapticEvents, firings uint64) {
	return c.axonEvents, c.synapticEvents, c.firings
}

// DroppedInjects returns the number of external spikes dropped by
// InjectRaw for targeting an out-of-range axon.
func (c *Core) DroppedInjects() uint64 { return c.droppedInjects }

// ScheduleSpike schedules a spike for delivery to axon at deliverTick.
// now is the current tick; the delay deliverTick-now must lie in
// [1, MaxDelay] or the spike would collide with the ring's live window.
func (c *Core) ScheduleSpike(axon int, deliverTick, now uint64) error {
	if axon < 0 || axon >= CoreSize {
		return fmt.Errorf("truenorth: axon %d out of range", axon)
	}
	if deliverTick <= now || deliverTick-now > MaxDelay {
		return fmt.Errorf("truenorth: delivery tick %d outside (%d, %d]", deliverTick, now, now+MaxDelay)
	}
	c.pending[deliverTick%delayWindow][axon>>6] |= 1 << (uint(axon) & 63)
	return nil
}

// ScheduleSpikeShared is ScheduleSpike with an atomic read-modify-write,
// safe for concurrent use by multiple delivery threads during the
// simulator's Network phase. Spike delivery is a commutative OR, so
// delivery order never affects results.
func (c *Core) ScheduleSpikeShared(axon int, deliverTick, now uint64) error {
	if axon < 0 || axon >= CoreSize {
		return fmt.Errorf("truenorth: axon %d out of range", axon)
	}
	if deliverTick <= now || deliverTick-now > MaxDelay {
		return fmt.Errorf("truenorth: delivery tick %d outside (%d, %d]", deliverTick, now, now+MaxDelay)
	}
	atomic.OrUint64(&c.pending[deliverTick%delayWindow][axon>>6], 1<<(uint(axon)&63))
	return nil
}

// InjectRaw schedules a spike for delivery at tick t without the delay
// window check relative to a current tick; callers (the simulators'
// external-input paths) must only use it for t within the live window.
// An out-of-range axon — a malformed record in an external spike file —
// is dropped and counted rather than corrupting state; InjectRaw reports
// whether the spike was scheduled.
func (c *Core) InjectRaw(axon int, t uint64) bool {
	if axon < 0 || axon >= CoreSize {
		c.droppedInjects++
		return false
	}
	c.pending[t%delayWindow][axon>>6] |= 1 << (uint(axon) & 63)
	return true
}

// PendingSpike reports whether axon has a spike scheduled for tick t.
func (c *Core) PendingSpike(axon int, t uint64) bool {
	return c.pending[t%delayWindow][axon>>6]>>(uint(axon)&63)&1 == 1
}

// HasPendingSpikes reports whether any axon has a spike scheduled for
// tick t — a 4-word read of the slot's pending-axon summary. The
// simulator uses it to skip the Synapse phase of quiet cores outright.
func (c *Core) HasPendingSpikes(t uint64) bool {
	var any uint64
	for _, w := range c.pending[t%delayWindow] {
		any |= w
	}
	return any != 0
}

// QuiescentAt reports whether the core provably has nothing to do at
// tick t: the configuration is passive (no leak dynamics, reset below
// threshold), a Neuron phase has already run on the current dynamic
// state, and no axon spike is due this tick. Skipping both phases of
// such a core-tick is bit-exact — no potential moves, no neuron fires,
// and no PRNG draw is consumed.
func (c *Core) QuiescentAt(t uint64) bool {
	return c.passive && c.settled && !c.HasPendingSpikes(t)
}

// SynapsePhase consumes every axon spike scheduled for tick t and
// propagates it across the crossbar into the connected neurons,
// integrating the per-axon-type weight (deterministically or
// stochastically) into each target neuron's membrane potential.
// Deterministic cores take the bit-parallel kernel; stochastic cores
// take the scalar path, which preserves the per-synapse PRNG draw order.
func (c *Core) SynapsePhase(t uint64) {
	slot := &c.pending[t%delayWindow]
	var any uint64
	for _, w := range slot {
		any |= w
	}
	if any == 0 {
		return
	}
	if c.kern != nil {
		c.synapseKernel(slot)
	} else {
		c.synapseScalar(slot)
	}
	*slot = [axonWords]uint64{}
}

// synapseScalar is the per-synapse reference path: pending axons in
// ascending order, set crossbar bits in ascending order, one integrate
// call per synaptic event. This ordering defines the PRNG draw sequence
// for stochastic weights and must never change.
func (c *Core) synapseScalar(slot *[axonWords]uint64) {
	for sw := 0; sw < axonWords; sw++ {
		pend := slot[sw]
		for pend != 0 {
			axon := sw*64 + bits.TrailingZeros64(pend)
			pend &= pend - 1
			c.axonEvents++
			at := c.cfg.AxonTypes[axon]
			row := &c.cfg.Crossbar[axon]
			for w := 0; w < crossbarWords; w++ {
				word := row[w]
				for word != 0 {
					j := w*64 + bits.TrailingZeros64(word)
					word &= word - 1
					c.integrate(j, at)
				}
			}
		}
	}
}

// integrate applies one synaptic event of axon type at to neuron j.
func (c *Core) integrate(j int, at uint8) {
	p := &c.cfg.Neurons[j]
	if !p.Enabled {
		return
	}
	c.synapticEvents++
	w := p.Weights[at]
	if p.StochasticWeight[at] {
		c.potential[j] = c.stochasticStep(c.potential[j], w)
	} else {
		c.potential[j] += int32(w)
	}
}

// stochasticStep moves v by ±1 with probability |w|/256, consuming
// exactly one 8-bit PRNG draw regardless of w's value or sign. It is the
// single implementation of TrueNorth's stochastic weight and stochastic
// leak rule; the unconditional draw is part of the bit-exact
// reproducibility contract.
func (c *Core) stochasticStep(v int32, w int16) int32 {
	mag := w
	if mag < 0 {
		mag = -mag
	}
	if c.rng.DrawMask(uint32(mag), 8) {
		if w < 0 {
			return v - 1
		}
		if w > 0 {
			return v + 1
		}
	}
	return v
}

// NeuronPhase applies leak, floor, and threshold to every neuron; each
// firing neuron's spike is passed to emit and its potential reset. The
// emit callback receives fully addressed spikes ready for the Network
// phase.
func (c *Core) NeuronPhase(emit func(Spike)) {
	for j := 0; j < CoreSize; j++ {
		p := &c.cfg.Neurons[j]
		if !p.Enabled {
			continue
		}
		v := c.potential[j]
		if p.StochasticLeak {
			v = c.stochasticStep(v, p.Leak)
		} else {
			v += int32(p.Leak)
		}
		if v < p.Floor {
			v = p.Floor
		}
		if v >= p.Threshold {
			c.firings++
			emit(Spike{Target: p.Target})
			v = p.Reset
		}
		c.potential[j] = v
	}
	c.settled = true
}

// CoreState is the complete dynamic state of a live core at a tick
// boundary — everything needed to checkpoint and resume a simulation
// bit-exactly: membrane potentials, the axon delay rings, and the
// private PRNG stream. AxonBuf keeps the axon-major layout (one
// delay-slot bitmask per axon) for checkpoint-format stability even
// though the live core stores the ring slot-major; State and SetState
// convert. Statistics counters are not part of the state; restoring
// resets them.
type CoreState struct {
	ID         CoreID
	Potentials [CoreSize]int32
	AxonBuf    [CoreSize]uint32
	RNG        [4]uint64
}

// State captures the core's dynamic state.
func (c *Core) State() CoreState {
	st := CoreState{
		ID:         c.cfg.ID,
		Potentials: c.potential,
		RNG:        c.rng.State(),
	}
	for s := 0; s < delayWindow; s++ {
		for w := 0; w < axonWords; w++ {
			word := c.pending[s][w]
			for word != 0 {
				axon := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				st.AxonBuf[axon] |= 1 << uint(s)
			}
		}
	}
	return st
}

// SetState restores a state captured with State. The state must belong
// to this core (matching ID). Statistics counters reset to zero.
func (c *Core) SetState(s CoreState) error {
	if s.ID != c.cfg.ID {
		return fmt.Errorf("truenorth: state for core %d applied to core %d", s.ID, c.cfg.ID)
	}
	if err := c.rng.SetState(s.RNG); err != nil {
		return err
	}
	c.potential = s.Potentials
	c.pending = [delayWindow][axonWords]uint64{}
	for axon, buf := range s.AxonBuf {
		slots := buf & (1<<delayWindow - 1)
		for slots != 0 {
			slot := bits.TrailingZeros32(slots)
			slots &= slots - 1
			c.pending[slot][axon>>6] |= 1 << (uint(axon) & 63)
		}
	}
	c.settled = false
	c.axonEvents, c.synapticEvents, c.firings, c.droppedInjects = 0, 0, 0, 0
	return nil
}

// Tick runs the core's Synapse and Neuron phases for tick t. It is the
// single-core building block used by the serial reference simulator; the
// parallel simulator calls the phases separately so it can interleave
// communication.
func (c *Core) Tick(t uint64, emit func(Spike)) {
	c.SynapsePhase(t)
	c.NeuronPhase(emit)
}
