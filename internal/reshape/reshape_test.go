package reshape

import (
	"reflect"
	"testing"

	sim "github.com/cognitive-sim/compass/internal/compass"
)

func uniformLoads(ranks, coresPerRank int, events uint64) []Load {
	out := make([]Load, ranks)
	for i := range out {
		out[i] = Load{Cores: coresPerRank, SynapticEvents: events}
	}
	return out
}

func blockPlacement(cores, ranks int) []int {
	out := make([]int, cores)
	for i := range out {
		out[i] = i * ranks / cores
	}
	return out
}

// TestComputeUniformLoadsIsNoOp: when every rank measured the same cost,
// the plan must reproduce the block partition and move nothing.
func TestComputeUniformLoadsIsNoOp(t *testing.T) {
	placement := blockPlacement(8, 4)
	plan, err := Compute(placement, uniformLoads(4, 2, 1000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MovedCores != 0 {
		t.Errorf("uniform loads moved %d cores (rankOf %v)", plan.MovedCores, plan.RankOf)
	}
	if plan.Ranks != 4 || plan.FromRanks != 4 {
		t.Errorf("plan ranks %d from %d, want 4 from 4", plan.Ranks, plan.FromRanks)
	}
	if plan.IdleRanks != 0 {
		t.Errorf("uniform plan left %d idle ranks", plan.IdleRanks)
	}
	if plan.PredictedCompute > 1.01 {
		t.Errorf("uniform plan predicts imbalance %.3f, want ~1", plan.PredictedCompute)
	}
}

// TestComputeSkewRebalances: one hot rank must shed cores to its
// neighbours, and the predicted imbalance of the new partition must be
// far below the measured one.
func TestComputeSkewRebalances(t *testing.T) {
	// 8 cores on 4 ranks of 2; rank 0 carries 10x the work.
	placement := blockPlacement(8, 4)
	loads := []Load{
		{Cores: 2, SynapticEvents: 10000},
		{Cores: 2, SynapticEvents: 1000},
		{Cores: 2, SynapticEvents: 1000},
		{Cores: 2, SynapticEvents: 1000},
	}
	plan, err := Compute(placement, loads, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MovedCores == 0 {
		t.Fatal("skewed loads produced a no-op plan")
	}
	// Rank 0 must own fewer cores than before.
	owned := make([]int, 4)
	for _, r := range plan.RankOf {
		owned[r]++
	}
	if owned[0] >= 2 {
		t.Errorf("hot rank still owns %d cores: %v", owned[0], plan.RankOf)
	}
	// Measured imbalance: max 10000 vs mean 3250 ≈ 3.08. The plan can
	// split the two hot cores (5000+epsilon each) at best one per rank,
	// so predicted max/mean ≈ 5000/3250 ≈ 1.54.
	if plan.PredictedCompute > 1.7 {
		t.Errorf("rebalanced plan predicts %.2f, want < 1.7", plan.PredictedCompute)
	}
	// Contiguity: rank IDs must be non-decreasing in core order.
	for i := 1; i < len(plan.RankOf); i++ {
		if plan.RankOf[i] < plan.RankOf[i-1] {
			t.Fatalf("chain partition not contiguous: %v", plan.RankOf)
		}
	}
}

// TestComputeRankCountChange: a plan may grow or shrink the rank count;
// every rank index must stay in range and cores must all be placed.
func TestComputeRankCountChange(t *testing.T) {
	placement := blockPlacement(12, 3)
	for _, newRanks := range []int{1, 2, 6, 12} {
		plan, err := Compute(placement, uniformLoads(3, 4, 500), newRanks)
		if err != nil {
			t.Fatalf("newRanks=%d: %v", newRanks, err)
		}
		if plan.Ranks != newRanks || len(plan.RankOf) != 12 {
			t.Fatalf("newRanks=%d: got ranks %d, %d entries", newRanks, plan.Ranks, len(plan.RankOf))
		}
		if plan.MovedCores != 12 {
			t.Errorf("newRanks=%d: rank-count change reported %d moved cores, want all 12", newRanks, plan.MovedCores)
		}
		owned := make([]int, newRanks)
		for i, r := range plan.RankOf {
			if r < 0 || r >= newRanks {
				t.Fatalf("newRanks=%d: core %d on rank %d", newRanks, i, r)
			}
			owned[r]++
		}
		// Uniform loads onto a divisor rank count must balance exactly.
		if 12%newRanks == 0 {
			for r, n := range owned {
				if n != 12/newRanks {
					t.Errorf("newRanks=%d: rank %d owns %d cores, want %d (%v)", newRanks, r, n, 12/newRanks, plan.RankOf)
				}
			}
		}
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil, uniformLoads(1, 1, 1), 1); err == nil {
		t.Error("empty placement accepted")
	}
	if _, err := Compute([]int{0, 0}, nil, 1); err == nil {
		t.Error("empty loads accepted")
	}
	if _, err := Compute([]int{0, 5}, uniformLoads(2, 1, 1), 2); err == nil {
		t.Error("out-of-range placement accepted")
	}
	if _, err := Compute([]int{0, 0}, uniformLoads(1, 2, 1), 3); err == nil {
		t.Error("more ranks than cores accepted")
	}
}

func TestLoadsFromStats(t *testing.T) {
	stats := &sim.RunStats{PerRank: []sim.RankStats{
		{CoresOwned: 3, SynapticEvents: 70, MessagesSent: 5},
		{CoresOwned: 1, SynapticEvents: 10, MessagesSent: 2},
	}}
	got := LoadsFromStats(stats)
	want := []Load{
		{Cores: 3, SynapticEvents: 70, MessagesSent: 5},
		{Cores: 1, SynapticEvents: 10, MessagesSent: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LoadsFromStats = %+v, want %+v", got, want)
	}
}

func TestPolicyShouldReshape(t *testing.T) {
	hot := sim.Imbalance{Compute: 2.5}
	cool := sim.Imbalance{Compute: 1.1}
	cases := []struct {
		name  string
		p     Policy
		imb   sim.Imbalance
		since int
		want  bool
	}{
		{"disabled by zero threshold", Policy{Threshold: 0, Interval: 1}, hot, 10, false},
		{"disabled by negative threshold", Policy{Threshold: -1}, hot, 10, false},
		{"hot past interval", Policy{Threshold: 2, Interval: 1}, hot, 1, true},
		{"hot but inside interval", Policy{Threshold: 2, Interval: 4}, hot, 3, false},
		{"cool past interval", Policy{Threshold: 2, Interval: 1}, cool, 9, false},
		{"threshold is inclusive", Policy{Threshold: 2.5, Interval: 1}, hot, 1, true},
		{"interval below 1 normalizes", Policy{Threshold: 2, Interval: 0}, hot, 1, true},
		{"zero boundaries never fires", Policy{Threshold: 2, Interval: 0}, hot, 0, false},
	}
	for _, tc := range cases {
		if got := tc.p.ShouldReshape(tc.imb, tc.since); got != tc.want {
			t.Errorf("%s: ShouldReshape = %v, want %v", tc.name, got, tc.want)
		}
	}
}
