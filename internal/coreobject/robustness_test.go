package coreobject

import (
	"bytes"
	"strings"
	"testing"

	"github.com/cognitive-sim/compass/internal/prng"
)

// TestReadModelNeverPanicsOnCorruption flips random bytes and truncates
// the encoded model at random offsets: ReadModel must either return an
// error or a valid model, never panic. Model files travel between
// machines and versions; decoding robustness is table stakes.
func TestReadModelNeverPanicsOnCorruption(t *testing.T) {
	m := binaryTestModel()
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	r := prng.New(0xBADC0DE)

	check := func(data []byte, what string) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("ReadModel panicked on %s: %v", what, p)
			}
		}()
		got, err := ReadModel(bytes.NewReader(data))
		if err == nil {
			// Corruption that decodes must still be semantically valid.
			if verr := got.Validate(); verr != nil {
				t.Fatalf("ReadModel returned invalid model on %s: %v", what, verr)
			}
		}
	}

	for trial := 0; trial < 300; trial++ {
		data := append([]byte{}, clean...)
		flips := 1 + r.Intn(8)
		for f := 0; f < flips; f++ {
			i := r.Intn(len(data))
			data[i] ^= byte(1 + r.Intn(255))
		}
		check(data, "byte flips")
	}
	for trial := 0; trial < 100; trial++ {
		cut := r.Intn(len(clean) + 1)
		check(clean[:cut], "truncation")
	}
	for trial := 0; trial < 100; trial++ {
		data := make([]byte, r.Intn(512))
		for i := range data {
			data[i] = byte(r.Intn(256))
		}
		check(data, "random garbage")
	}
}

// TestDecodeSpecNeverPanicsOnGarbage mutates a valid JSON spec document.
func TestDecodeSpecNeverPanicsOnGarbage(t *testing.T) {
	spec := twoRegionSpec()
	var buf bytes.Buffer
	if err := spec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.String()
	r := prng.New(0xF00D)
	for trial := 0; trial < 200; trial++ {
		data := []byte(clean)
		for f := 0; f < 1+r.Intn(5); f++ {
			data[r.Intn(len(data))] = byte(32 + r.Intn(95))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("DecodeSpec panicked: %v", p)
				}
			}()
			got, err := DecodeSpec(strings.NewReader(string(data)))
			if err == nil {
				if verr := got.Validate(); verr != nil {
					t.Fatalf("DecodeSpec returned invalid spec: %v", verr)
				}
			}
		}()
	}
}
