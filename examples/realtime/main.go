// Realtime: soft real time for closed-loop serving — the paper's §VII
// question ("can Compass keep up with a 1 ms biological tick?") asked of
// the interactive path instead of the batch path.
//
// The program boots an in-process compassd, then drives every registered
// scenario through the shared episode engine (internal/scenario): each
// decision window is encoded to spikes, streamed over the CSTR plane,
// stepped, and decoded back into an action. TrueNorth's native tick is
// 1 ms, so a closed loop is soft real time when one decision window of W
// ticks round-trips in under W milliseconds. The engine's client-side
// RTT samples make that budget directly checkable.
//
// This used to be a hand-rolled CSTR loop; it is now a thin client of
// the scenario engine, and doubles as a runnable smoke target for the
// whole interactive serving path.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/cognitive-sim/compass/internal/scenario"
	"github.com/cognitive-sim/compass/internal/server"
)

// tickBudget is TrueNorth's biological tick: 1 ms of wall clock per
// simulated tick is the paper's soft real-time bar.
const tickBudget = time.Millisecond

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	srv := server.New(server.Options{
		HTTPAddr:   "127.0.0.1:0",
		StreamAddr: "127.0.0.1:0",
		NodeID:     "realtime-example",
		Manager: server.ManagerOptions{
			CapacitySecondsPerTick: 1e9,
			MaxRunning:             8,
		},
	})
	if err := srv.Start(); err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	c, err := scenario.Dial(srv.HTTPAddr())
	if err != nil {
		return err
	}
	fmt.Printf("compassd up at %s; driving %d scenarios closed-loop (budget: %v/tick)\n\n",
		srv.HTTPAddr(), len(scenario.Names()), tickBudget)

	allRT := true
	for _, name := range scenario.Names() {
		spec, err := scenario.Get(name)
		if err != nil {
			return err
		}
		res, err := scenario.Run(c, spec, scenario.RunOptions{
			Episodes: 2,
			Seed:     2026,
			Report:   true,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		budget := time.Duration(spec.WindowTicks) * tickBudget
		p50 := time.Duration(res.RTTPercentile(0.50) * float64(time.Second))
		p99 := time.Duration(res.RTTPercentile(0.99) * float64(time.Second))
		epsPerSec := float64(res.Episodes) / res.ElapsedSeconds
		rt := p99 <= budget
		verdict := "soft real time"
		if !rt {
			verdict = "OVER BUDGET"
			allRT = false
		}
		fmt.Printf("%-8s %2d episodes x %2d steps: %5.1f ep/s, reward %5.1f, %d/%d correct\n",
			name, res.Episodes, res.Steps, epsPerSec, res.Score.Reward,
			res.Score.Correct, res.Score.Steps)
		fmt.Printf("         window %2d ticks (budget %4v): RTT p50 %8v  p99 %8v  -> %s\n",
			spec.WindowTicks, budget, p50.Round(time.Microsecond), p99.Round(time.Microsecond), verdict)
	}

	if !allRT {
		return fmt.Errorf("closed loop missed the %v/tick soft real-time budget", tickBudget)
	}
	fmt.Println("\nevery scenario's decision loop fits inside the biological tick rate.")
	return nil
}
