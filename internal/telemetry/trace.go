package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer collects timing spans and exports them as Chrome trace-event
// JSON — the format Perfetto and chrome://tracing open directly. The
// simulator emits one span per rank × tick × phase, so a trace renders
// as one process row per rank with one lane per phase, which is the
// per-phase breakdown of the paper's Figure 4(a) made navigable.
//
// Spans are appended to per-shard buffers; a shard must only be written
// by one goroutine at a time (the simulator uses one shard per rank,
// written by the rank goroutine), so the hot path takes no locks. Name
// metadata (process and thread names) is registered at setup under a
// mutex.
type Tracer struct {
	epoch  time.Time
	shards [][]Span

	mu       sync.Mutex
	procName map[int]string
	laneName map[[2]int]string
}

// Span is one completed timed section.
type Span struct {
	// Name is the span's display name (the phase).
	Name string
	// Cat is the span's category.
	Cat string
	// Pid and Tid place the span on a process row and thread lane; the
	// simulator uses Pid = rank and Tid = phase lane.
	Pid, Tid int
	// Ts and Dur are nanoseconds since the tracer epoch and span length.
	Ts, Dur int64
	// Tick is the simulated tick the span belongs to.
	Tick uint64
}

// NewTracer creates a tracer with the given shard count; the epoch for
// span timestamps is the moment of creation.
func NewTracer(shards int) *Tracer {
	if shards < 1 {
		shards = 1
	}
	return &Tracer{
		epoch:    time.Now(),
		shards:   make([][]Span, shards),
		procName: make(map[int]string),
		laneName: make(map[[2]int]string),
	}
}

// Span records one completed section on the shard's buffer.
func (t *Tracer) Span(shard int, name, cat string, pid, tid int, tick uint64, start time.Time, dur time.Duration) {
	t.shards[shard] = append(t.shards[shard], Span{
		Name: name,
		Cat:  cat,
		Pid:  pid,
		Tid:  tid,
		Ts:   start.Sub(t.epoch).Nanoseconds(),
		Dur:  dur.Nanoseconds(),
		Tick: tick,
	})
}

// SetProcessName names a process row (e.g. "rank 2") in the exported
// trace. Setup-time only.
func (t *Tracer) SetProcessName(pid int, name string) {
	t.mu.Lock()
	t.procName[pid] = name
	t.mu.Unlock()
}

// SetThreadName names a thread lane within a process row. Setup-time
// only.
func (t *Tracer) SetThreadName(pid, tid int, name string) {
	t.mu.Lock()
	t.laneName[[2]int{pid, tid}] = name
	t.mu.Unlock()
}

// Spans returns every recorded span, sorted by start time.
func (t *Tracer) Spans() []Span {
	var out []Span
	for _, sh := range t.shards {
		out = append(out, sh...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ts != out[j].Ts {
			return out[i].Ts < out[j].Ts
		}
		if out[i].Pid != out[j].Pid {
			return out[i].Pid < out[j].Pid
		}
		return out[i].Tid < out[j].Tid
	})
	return out
}

// chromeEvent is one entry of the trace-event JSON array. Complete
// spans use ph "X"; name metadata uses ph "M".
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace-event format; both
// Perfetto and chrome://tracing accept it.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes every recorded span (plus registered process
// and thread names) as trace-event JSON. Timestamps and durations are
// microseconds, as the format requires.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(spans)+8)}

	t.mu.Lock()
	for pid, name := range t.procName {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name},
		})
	}
	for key, name := range t.laneName {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: key[0], Tid: key[1], Args: map[string]any{"name": name},
		})
	}
	t.mu.Unlock()
	// Metadata events carry no timestamp; sort them for stable output.
	meta := doc.TraceEvents
	sort.Slice(meta, func(i, j int) bool {
		if meta[i].Pid != meta[j].Pid {
			return meta[i].Pid < meta[j].Pid
		}
		if meta[i].Tid != meta[j].Tid {
			return meta[i].Tid < meta[j].Tid
		}
		return meta[i].Name < meta[j].Name
	})

	for _, s := range spans {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   float64(s.Ts) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Pid:  s.Pid,
			Tid:  s.Tid,
			Args: map[string]any{"tick": s.Tick},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
