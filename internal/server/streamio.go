package server

import (
	"sync"

	"github.com/cognitive-sim/compass/internal/spikeio"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// streamSource adapts network-injected spikes to compass.InputSource.
//
// The simulator's determinism contract requires every rank to observe
// the same batch for the same tick, while ranks — synchronized by the
// per-tick barrier — can be at most one tick apart. The source
// therefore freezes a batch the first time any rank asks for tick t:
// every queued spike stamped at or before t joins the batch (late
// arrivals deliver at the next boundary rather than vanishing), spikes
// stamped for future ticks stay queued until their tick freezes.
// Frozen batches are retained for one extra tick so a trailing rank
// re-reads the identical slice, then reclaimed.
type streamSource struct {
	mu      sync.Mutex
	pending []truenorth.InputSpike
	batches map[uint64][]truenorth.InputSpike
	frozen  uint64 // highest tick frozen so far + 1
	total   uint64 // spikes accepted from the network

	// onInject, when non-nil, observes every non-empty network inject
	// (the session's RTT tracker arms its clock here). Called outside mu.
	onInject func()
}

func newStreamSource() *streamSource {
	return &streamSource{batches: make(map[uint64][]truenorth.InputSpike)}
}

// Inject queues spikes received from a client. Safe for concurrent use
// with a running simulation.
func (s *streamSource) Inject(events []spikeio.Event) {
	s.mu.Lock()
	for _, ev := range events {
		s.pending = append(s.pending, truenorth.InputSpike{Tick: ev.Tick, Core: ev.Core, Axon: ev.Axon})
	}
	s.total += uint64(len(events))
	hook := s.onInject
	s.mu.Unlock()
	if hook != nil && len(events) > 0 {
		hook()
	}
}

// injectSpikes queues already-decoded input spikes (the migration
// import path; stream frames go through Inject).
func (s *streamSource) injectSpikes(spikes []truenorth.InputSpike) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, spikes...)
	s.total += uint64(len(spikes))
}

// pendingSnapshot copies the spikes accepted but not yet frozen into a
// tick batch. Stable only while the session is parked at a boundary
// (no rank is freezing batches); concurrent Inject calls are safe but
// land on whichever side of the snapshot the lock resolves.
func (s *streamSource) pendingSnapshot() []truenorth.InputSpike {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]truenorth.InputSpike, len(s.pending))
	copy(out, s.pending)
	return out
}

// injected returns the number of spikes accepted so far.
func (s *streamSource) injected() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// SpikesFor implements compass.InputSource.
func (s *streamSource) SpikesFor(t uint64) []truenorth.InputSpike {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.batches[t]; ok {
		return b
	}
	var batch []truenorth.InputSpike
	rest := s.pending[:0]
	for _, sp := range s.pending {
		if sp.Tick <= t {
			batch = append(batch, sp)
		} else {
			rest = append(rest, sp)
		}
	}
	// Zero the tail so dropped spikes don't pin the backing array.
	for i := len(rest); i < len(s.pending); i++ {
		s.pending[i] = truenorth.InputSpike{}
	}
	s.pending = rest
	s.batches[t] = batch
	if t >= 2 {
		delete(s.batches, t-2)
	}
	if t+1 > s.frozen {
		s.frozen = t + 1
	}
	return batch
}

// subscriber is one egress stream: a bounded ring of spike records with
// drop-oldest backpressure, drained by the connection's writer
// goroutine. Dropping the oldest keeps the stream current — a slow
// consumer sees the freshest window of activity, not an ever-older
// replay — and every dropped record is counted.
type subscriber struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buf     []spikeio.Event // ring buffer, capacity fixed at creation
	head    int
	n       int
	dropped uint64
	closed  bool
}

func newSubscriber(capacity int) *subscriber {
	if capacity < 1 {
		capacity = 1
	}
	sub := &subscriber{buf: make([]spikeio.Event, capacity)}
	sub.cond = sync.NewCond(&sub.mu)
	return sub
}

// push appends records, evicting the oldest on overflow; it returns
// the number of records evicted.
func (sub *subscriber) push(events []spikeio.Event) uint64 {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return 0
	}
	var evicted uint64
	for _, ev := range events {
		if sub.n == len(sub.buf) {
			sub.head = (sub.head + 1) % len(sub.buf)
			sub.n--
			sub.dropped++
			evicted++
		}
		sub.buf[(sub.head+sub.n)%len(sub.buf)] = ev
		sub.n++
	}
	sub.cond.Broadcast()
	return evicted
}

// next blocks until records are available or the subscriber closes,
// then drains up to cap(out) records into out and returns the batch.
// A nil return means the subscriber is closed and empty.
func (sub *subscriber) next(out []spikeio.Event) []spikeio.Event {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	for sub.n == 0 && !sub.closed {
		sub.cond.Wait()
	}
	if sub.n == 0 {
		return nil
	}
	take := sub.n
	if take > cap(out) {
		take = cap(out)
	}
	out = out[:take]
	for i := 0; i < take; i++ {
		out[i] = sub.buf[sub.head]
		sub.head = (sub.head + 1) % len(sub.buf)
		sub.n--
	}
	return out
}

// close wakes the writer; buffered records drain before the stream ends.
func (sub *subscriber) close() {
	sub.mu.Lock()
	sub.closed = true
	sub.cond.Broadcast()
	sub.mu.Unlock()
}

// broadcastSink adapts compass.OutputSink to a set of subscribers with
// independent bounded queues. Emit is called concurrently by every
// rank; conversion to the wire record shape happens once per call, the
// copy into each ring is the only per-subscriber cost.
type broadcastSink struct {
	mu       sync.Mutex
	subs     map[*subscriber]struct{}
	queueCap int
	closed   bool   // session over; late subscribers get a closed stream
	drops    uint64 // cumulative, including departed subscribers

	onDrop func(n uint64) // optional telemetry hook
	// onEmit, when non-nil, observes every non-empty egress emission
	// (the session's RTT tracker resolves its inject marker here). It
	// runs on the tick loop's Emit path regardless of subscribers, so
	// the round trip measures the simulation loop, not client drains.
	onEmit func()
}

func newBroadcastSink(queueCap int) *broadcastSink {
	if queueCap < 1 {
		queueCap = 4096
	}
	return &broadcastSink{subs: make(map[*subscriber]struct{}), queueCap: queueCap}
}

// subscribe registers a new egress queue. Subscribing to an ended
// session yields an immediately-closed stream (EOF) rather than one
// that would never terminate.
func (b *broadcastSink) subscribe() *subscriber {
	sub := newSubscriber(b.queueCap)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		sub.close()
		return sub
	}
	b.subs[sub] = struct{}{}
	b.mu.Unlock()
	return sub
}

// unsubscribe removes a subscriber, folding its drop count into the
// session total, and closes it.
func (b *broadcastSink) unsubscribe(sub *subscriber) {
	b.mu.Lock()
	if _, ok := b.subs[sub]; ok {
		delete(b.subs, sub)
		sub.mu.Lock()
		b.drops += sub.dropped
		sub.dropped = 0
		sub.mu.Unlock()
	}
	b.mu.Unlock()
	sub.close()
}

// closeAll closes every subscriber (end of session).
func (b *broadcastSink) closeAll() {
	b.mu.Lock()
	b.closed = true
	subs := make([]*subscriber, 0, len(b.subs))
	for sub := range b.subs {
		subs = append(subs, sub)
	}
	b.mu.Unlock()
	for _, sub := range subs {
		sub.close()
	}
}

// count returns the live subscriber count.
func (b *broadcastSink) count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// dropped returns the cumulative drop-oldest evictions across all
// subscribers, past and present.
func (b *broadcastSink) dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.drops
	for sub := range b.subs {
		sub.mu.Lock()
		n += sub.dropped
		sub.mu.Unlock()
	}
	return n
}

// Emit implements compass.OutputSink.
func (b *broadcastSink) Emit(rank int, t uint64, events []truenorth.SpikeEvent) {
	if b.onEmit != nil && len(events) > 0 {
		b.onEmit()
	}
	b.mu.Lock()
	if len(b.subs) == 0 {
		b.mu.Unlock()
		return
	}
	subs := make([]*subscriber, 0, len(b.subs))
	for sub := range b.subs {
		subs = append(subs, sub)
	}
	b.mu.Unlock()
	recs := make([]spikeio.Event, len(events))
	for i, ev := range events {
		recs[i] = spikeio.Event{Tick: ev.FireTick, Core: ev.Target.Core, Axon: ev.Target.Axon}
	}
	var evicted uint64
	for _, sub := range subs {
		evicted += sub.push(recs)
	}
	if b.onDrop != nil && evicted > 0 {
		b.onDrop(evicted)
	}
}
