package balance

import (
	"math"
	"math/rand"
	"testing"
)

// TestApportionRowSumInvariant is the property test for the
// largest-remainder apportionment: for any nonnegative weight vector
// (zeros included, all-zero included) and any target, the output sums
// exactly to max(target, 0), every entry is nonnegative, and zero-weight
// entries receive nothing unless the whole row is zero. Reshape feeds
// this helper telemetry counters that are legitimately zero, which is
// exactly where the old code silently dropped units.
func TestApportionRowSumInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 5000; iter++ {
		n := 1 + rng.Intn(12)
		weights := make([]float64, n)
		allZero := rng.Intn(4) == 0
		for j := range weights {
			switch {
			case allZero || rng.Intn(3) == 0:
				weights[j] = 0
			case rng.Intn(5) == 0:
				// Wildly mixed magnitudes provoke float rounding in
				// target*w/total.
				weights[j] = math.Ldexp(rng.Float64(), rng.Intn(60)-30)
			default:
				weights[j] = float64(rng.Intn(1000))
			}
		}
		target := rng.Intn(2000) - 10 // occasionally negative
		out := Apportion(weights, target)

		if len(out) != n {
			t.Fatalf("iter %d: len(out) = %d, want %d", iter, len(out), n)
		}
		want := target
		if want < 0 {
			want = 0
		}
		sum := 0
		for j, v := range out {
			if v < 0 {
				t.Fatalf("iter %d: negative allocation out[%d] = %d (weights %v, target %d)",
					iter, j, v, weights, target)
			}
			sum += v
		}
		if sum != want {
			t.Fatalf("iter %d: sum(out) = %d, want %d (weights %v, target %d, out %v)",
				iter, sum, want, weights, target, out)
		}
		total := 0.0
		for _, w := range weights {
			total += w
		}
		if total > 0 {
			for j, v := range out {
				if weights[j] == 0 && v != 0 {
					t.Fatalf("iter %d: zero-weight entry %d got %d units (weights %v, target %d)",
						iter, j, v, weights, target)
				}
			}
		}
	}
}

// TestApportionAllZeroWeights pins the all-zero convention: units spread
// uniformly, first entries taking the remainder.
func TestApportionAllZeroWeights(t *testing.T) {
	got := Apportion([]float64{0, 0, 0}, 8)
	want := []int{3, 3, 2}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("Apportion(zeros, 8) = %v, want %v", got, want)
		}
	}
	if out := Apportion(nil, 5); len(out) != 0 {
		t.Fatalf("Apportion(nil, 5) = %v, want empty", out)
	}
}

// TestRoundToIntegerRowSums checks the exported matrix wrapper keeps
// every row's sum at round(rowSums[i]), including rows containing zeros.
func TestRoundToIntegerRowSums(t *testing.T) {
	m := [][]float64{
		{2.5, 0, 2.5},
		{0, 0, 0},
		{1e-9, 3, 7},
	}
	rowSums := []float64{5, 4, 10.2}
	out := RoundToInteger(m, rowSums)
	for i, row := range out {
		want := int(math.Round(rowSums[i]))
		sum := 0
		for _, v := range row {
			sum += v
		}
		if sum != want {
			t.Fatalf("row %d sums to %d, want %d (row %v)", i, sum, want, row)
		}
	}
	if out[0][1] != 0 {
		t.Fatalf("zero-weight cell received %d units", out[0][1])
	}
}
