package compass

import (
	"strconv"

	"github.com/cognitive-sim/compass/internal/workpool"
)

// newWorkerPool starts the persistent per-rank worker team (see
// internal/workpool). Thread 0 runs on the caller (the rank goroutine),
// mirroring the paper's OpenMP master thread. When a shared limiter is
// given, the team acquires up to threads-1 extra workers from the
// daemon-wide budget and multiplexes its logical threads over the
// grant; release returns the slots and must be called after Stop.
// Every worker goroutine carries pprof labels (compass_rank,
// compass_worker) so CPU profiles of a run break down by rank and
// worker — the profiler-side view of the telemetry layer's
// load-imbalance metrics.
func newWorkerPool(rank, threads int, lim *workpool.Limiter) (pool *workpool.Pool, release func()) {
	rankLabel := strconv.Itoa(rank)
	label := func(w int) []string {
		return []string{"compass_rank", rankLabel, "compass_worker", strconv.Itoa(w)}
	}
	if lim == nil {
		return workpool.New(threads, label), func() {}
	}
	extra := lim.AcquireUpTo(threads - 1)
	return workpool.NewSized(threads, 1+extra, label), func() { lim.Release(extra) }
}
