package server

import (
	"context"
	"fmt"
	"sync"

	sim "github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// This file is the serving-side scheduler for batched execution: every
// running session whose (model hash, ranks, threads, transport,
// placement) matches an existing group joins that group, and the
// group's window loop advances all of its members' chunks with ONE
// sim.RunBatch call — one kernel sweep and one Network phase per tick
// for the whole membership — instead of one independent tick loop per
// session. Sessions join and leave at chunk boundaries only, and each
// session's trace, checkpoints, and telemetry stay byte-identical to
// solo execution (the compass-level contract tested in
// internal/compass/batch_test.go), so pause, checkpoint, stream
// injection, and egress keep their exact solo semantics while batched.

// batchKey fingerprints everything that must match for two sessions to
// share a tick loop: the image content hash plus the full decomposition.
func batchKey(img *truenorth.Image, cfg sim.Config) string {
	placement := "block"
	if cfg.RankOf != nil {
		// Hash the explicit placement so region-aware placements only
		// group with identical placements.
		h := uint64(1469598103934665603)
		for _, r := range cfg.RankOf {
			h = (h ^ uint64(r)) * 1099511628211
		}
		placement = fmt.Sprintf("p%x", h)
	}
	return fmt.Sprintf("%s|r%d|t%d|%s|%s", img.Hash(), cfg.Ranks, cfg.ThreadsPerRank, cfg.Transport, placement)
}

// batchReq is one session's pending chunk: the lane description, the
// requested tick count, and the channel its window result lands on.
type batchReq struct {
	lane  sim.BatchLane
	ticks int
	resC  chan batchRes // buffered; the window loop never blocks on it
}

// batchRes is one lane's share of a finished window.
type batchRes struct {
	stats *sim.RunStats
	lane  int
	sweep float64
	err   error
}

// batchGroup coalesces the chunks of same-keyed sessions into shared
// RunBatch windows. A window takes every request waiting at its start
// and runs min(requested ticks) ticks, so all lanes stay at chunk
// granularity and a short final chunk simply shortens one window —
// sessions whose request was trimmed resubmit their remainder and ride
// the next window.
type batchGroup struct {
	key string
	img *truenorth.Image
	cfg sim.Config // shared decomposition; ReturnState set, per-session fields empty

	// onWindow/onWindowDone feed the manager's occupancy gauge and
	// per-sweep histogram; either may be nil.
	onWindow     func(lanes int)
	onWindowDone func(lanes int, sweepSeconds float64)

	mu      sync.Mutex
	waiting []*batchReq
	running bool
	refs    int // sessions routed to this group by the manager
}

func newBatchGroup(key string, img *truenorth.Image, cfg sim.Config) *batchGroup {
	cfg.StartFrom = nil
	cfg.InputSource = nil
	cfg.OutputSink = nil
	cfg.Telemetry = nil
	cfg.RecordTrace = false
	cfg.RecordPerTick = false
	cfg.MeasurePhases = false
	cfg.ReturnState = true
	return &batchGroup{key: key, img: img, cfg: cfg}
}

// exec runs one chunk of a member session through the group: it
// enqueues the lane, wakes the window loop, and blocks until the window
// carrying the lane completes. Cancellation is chunk-bounded, exactly
// like the solo runner: a request still waiting is withdrawn
// immediately, but once its window is in flight exec waits the window
// out (a window is at most one chunk long).
func (g *batchGroup) exec(ctx context.Context, lane sim.BatchLane, ticks int) (*sim.RunStats, int, float64, error) {
	req := &batchReq{lane: lane, ticks: ticks, resC: make(chan batchRes, 1)}
	g.mu.Lock()
	g.waiting = append(g.waiting, req)
	if !g.running {
		g.running = true
		go g.windowLoop()
	}
	g.mu.Unlock()

	select {
	case res := <-req.resC:
		return res.stats, res.lane, res.sweep, res.err
	case <-ctx.Done():
		// Try to withdraw; if the window already took the request, its
		// result is imminent — wait for it so the session's checkpoint
		// reflects the ticks that actually ran.
		g.mu.Lock()
		for i, w := range g.waiting {
			if w == req {
				g.waiting = append(g.waiting[:i], g.waiting[i+1:]...)
				g.mu.Unlock()
				return nil, 0, 0, ctx.Err()
			}
		}
		g.mu.Unlock()
		res := <-req.resC
		return res.stats, res.lane, res.sweep, res.err
	}
}

// windowLoop drains the waiting list window by window: each iteration
// takes every request present (up to the lane limit), advances them
// together, and delivers per-lane results. It exits when a window
// boundary finds nobody waiting.
func (g *batchGroup) windowLoop() {
	for {
		g.mu.Lock()
		if len(g.waiting) == 0 {
			g.running = false
			g.mu.Unlock()
			return
		}
		take := len(g.waiting)
		if take > truenorth.MaxLanes {
			take = truenorth.MaxLanes
		}
		reqs := make([]*batchReq, take)
		copy(reqs, g.waiting[:take])
		rest := g.waiting[take:]
		g.waiting = append(g.waiting[:0], rest...)
		g.mu.Unlock()

		ticks := reqs[0].ticks
		lanes := make([]sim.BatchLane, len(reqs))
		for i, r := range reqs {
			if r.ticks < ticks {
				ticks = r.ticks
			}
			lanes[i] = r.lane
		}
		if g.onWindow != nil {
			g.onWindow(len(reqs))
		}
		res, err := sim.RunBatch(g.img, g.cfg, ticks, lanes)
		if g.onWindowDone != nil {
			sweep := 0.0
			if err == nil {
				sweep = res.SweepSeconds
			}
			g.onWindowDone(len(reqs), sweep)
		}
		for i, r := range reqs {
			if err != nil {
				r.resC <- batchRes{err: err}
				continue
			}
			r.resC <- batchRes{stats: res.Lanes[i], lane: i, sweep: res.SweepSeconds}
		}
	}
}
