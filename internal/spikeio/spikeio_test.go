package spikeio

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/cognitive-sim/compass/internal/truenorth"
)

func TestRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Tick: 0, Core: 0, Axon: 0},
		{Tick: 5, Core: 3, Axon: 255},
		{Tick: 1 << 40, Core: 1 << 20, Axon: 17},
	}
	for _, ev := range want {
		w.Record(ev.Tick, ev.Core, ev.Axon)
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(ticks []uint32, core uint16, axon uint8) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, tk := range ticks {
			w.Record(uint64(tk), truenorth.CoreID(core), uint16(axon))
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != len(ticks) {
			return false
		}
		for i, tk := range ticks {
			if got[i].Tick != uint64(tk) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Record(1, 2, 3)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if _, err := ReadAll(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	bad = append([]byte{}, data...)
	bad[4] = 9
	if _, err := ReadAll(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}

	// Truncated mid-record.
	if _, err := ReadAll(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("truncated record accepted")
	}

	if _, err := ReadAll(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestRateSeries(t *testing.T) {
	events := []Event{
		{Tick: 0}, {Tick: 1}, {Tick: 9},
		{Tick: 10}, {Tick: 25},
		{Tick: 99}, {Tick: 200}, // out of range
	}
	series, err := RateSeries(events, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 10 {
		t.Fatalf("series length %d", len(series))
	}
	if series[0] != 3 || series[1] != 1 || series[2] != 1 || series[9] != 1 {
		t.Fatalf("series %v", series)
	}
	if _, err := RateSeries(events, 0, 1); err == nil {
		t.Fatal("zero ticks accepted")
	}
}

func TestPerCoreRates(t *testing.T) {
	// Core 0 receives 256 spikes over 1000 ticks: 256/(256 neurons)/1s = 1 Hz.
	var events []Event
	for i := 0; i < 256; i++ {
		events = append(events, Event{Tick: uint64(i), Core: 0})
	}
	rates, err := PerCoreRates(events, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[0]-1.0) > 1e-9 || rates[1] != 0 {
		t.Fatalf("rates %v", rates)
	}
}

func TestISI(t *testing.T) {
	// Clock-like stream: period 10, CV 0.
	var events []Event
	for i := 0; i < 20; i++ {
		events = append(events, Event{Tick: uint64(i * 10), Core: 1, Axon: 5})
	}
	// Noise on another target must not interfere.
	events = append(events, Event{Tick: 3, Core: 1, Axon: 6}, Event{Tick: 4, Core: 2, Axon: 5})
	st := ISI(events, 1, 5)
	if st.Intervals != 19 || math.Abs(st.Mean-10) > 1e-9 || st.CV > 1e-9 {
		t.Fatalf("ISI stats %+v", st)
	}
	// Degenerate streams.
	if st := ISI(events, 9, 9); st.Intervals != 0 {
		t.Fatalf("empty stream stats %+v", st)
	}
}

func TestISIIrregular(t *testing.T) {
	events := []Event{
		{Tick: 0, Core: 0, Axon: 0}, {Tick: 1, Core: 0, Axon: 0},
		{Tick: 20, Core: 0, Axon: 0}, {Tick: 21, Core: 0, Axon: 0},
	}
	st := ISI(events, 0, 0)
	if st.CV < 0.5 {
		t.Fatalf("irregular stream CV %.3f too low", st.CV)
	}
}

func TestRaster(t *testing.T) {
	events := []Event{
		{Tick: 0, Core: 0}, {Tick: 0, Core: 0}, {Tick: 0, Core: 0},
		{Tick: 50, Core: 1},
	}
	out, err := Raster(events, 2, 100, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("raster lines: %d", len(lines))
	}
	if !strings.Contains(lines[0], "#") {
		t.Fatalf("peak bin not dense: %q", lines[0])
	}
	if strings.Count(lines[1], ".") != 9 {
		t.Fatalf("row 1 wrong: %q", lines[1])
	}
	if _, err := Raster(events, 0, 100, 10, 8); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

// TestRecordFromSimulation wires the recorder to a live simulation.
func TestRecordFromSimulation(t *testing.T) {
	m := &truenorth.Model{Seed: 3}
	cfg := &truenorth.CoreConfig{ID: 0}
	cfg.Neurons[0] = truenorth.NeuronParams{
		Weights:   [truenorth.NumAxonTypes]int16{1, 1, 1, 1},
		Leak:      1,
		Threshold: 5,
		Floor:     0,
		Target:    truenorth.SpikeTarget{Core: 0, Axon: 7, Delay: 1},
		Enabled:   true,
	}
	m.Cores = append(m.Cores, cfg)
	sim, err := truenorth.NewSerialSim(m)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sim.OnSpike = func(tick uint64, s truenorth.Spike) {
		w.Record(tick, s.Target.Core, s.Target.Axon)
	}
	if err := sim.Run(50); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Period-5 oscillator over 50 ticks: 10 spikes, clock-like ISI.
	if len(events) != 10 {
		t.Fatalf("recorded %d events, want 10", len(events))
	}
	st := ISI(events, 0, 7)
	if st.CV > 1e-9 || math.Abs(st.Mean-5) > 1e-9 {
		t.Fatalf("oscillator ISI %+v", st)
	}
}

func BenchmarkWriterRecord(b *testing.B) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(recordSize)
	for i := 0; i < b.N; i++ {
		w.Record(uint64(i), truenorth.CoreID(i%256), uint16(i%256))
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkReadAll(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 10000; i++ {
		w.Record(uint64(i), truenorth.CoreID(i%64), uint16(i%256))
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadAll(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReadTruncationNamesOffsetAndRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Record(1, 2, 3)
	w.Record(4, 5, 6)
	w.Record(7, 8, 9)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Chop 3 bytes off the final record: record index 2, which starts at
	// byte 8 + 2*14 = 36 and breaks at 36 + 11 = 47.
	_, err := ReadAll(bytes.NewReader(data[:len(data)-3]))
	if err == nil {
		t.Fatal("truncated final record accepted")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation error = %v, want io.ErrUnexpectedEOF in chain", err)
	}
	msg := err.Error()
	for _, want := range []string{"record 2", "byte offset 47", "11 of 14"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}

	// A partial final record must surface the already-parsed events'
	// absence as an error, not a silently shortened result.
	n := 0
	err = Read(bytes.NewReader(data[:len(data)-3]), func(Event) error { n++; return nil })
	if err == nil {
		t.Fatal("partial record not reported")
	}
	if n != 2 {
		t.Fatalf("callback saw %d complete events before the error, want 2", n)
	}

	// Truncated header names its offset too.
	_, err = ReadAll(bytes.NewReader(data[:5]))
	if err == nil {
		t.Fatal("truncated header accepted")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) || !strings.Contains(err.Error(), "byte offset 5") {
		t.Fatalf("header truncation error = %v", err)
	}

	// Empty stream: still an unexpected-EOF truncation, not a clean read.
	if _, err := ReadAll(bytes.NewReader(nil)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("empty stream error = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestEncodeDecodeRecord(t *testing.T) {
	want := Event{Tick: 1 << 40, Core: 123456, Axon: 65535}
	var rec [RecordSize]byte
	EncodeRecord(rec[:], want)
	if got := DecodeRecord(rec[:]); got != want {
		t.Fatalf("roundtrip = %+v, want %+v", got, want)
	}
}
