// Command compassd is the Compass simulation server: a long-running
// daemon hosting many concurrent simulation sessions with live spike
// streaming.
//
// Control plane (HTTP+JSON on -listen):
//
//	POST   /v1/sessions                create a session (cocomac / spec / model source)
//	GET    /v1/sessions                list sessions
//	GET    /v1/sessions/{id}           session status
//	POST   /v1/sessions/{id}/pause     park at the next chunk boundary
//	POST   /v1/sessions/{id}/resume    release a paused session
//	POST   /v1/sessions/{id}/stop      cancel (context cancellation at a tick boundary)
//	GET    /v1/sessions/{id}/checkpoint  download the latest boundary checkpoint
//	DELETE /v1/sessions/{id}           stop and remove
//	GET    /healthz                    liveness + session counts
//	GET    /metrics                    Prometheus text: server + every session's registry
//
// Data plane (length-prefixed binary frames on -stream-listen): see
// DESIGN.md §5e for the CSTR handshake and frame format.
//
// SIGINT/SIGTERM shut down gracefully: every session drains to its next
// chunk boundary and writes a checkpoint to -checkpoint-dir, so a
// successor daemon can resume each session bit-identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/cognitive-sim/compass/internal/server"
)

func main() {
	var (
		listen    = flag.String("listen", ":7474", "HTTP control-plane listen address")
		stream    = flag.String("stream-listen", ":7475", "TCP stream data-plane listen address")
		ckptDir   = flag.String("checkpoint-dir", "checkpoints", "directory for drained-session checkpoints at shutdown")
		capacity  = flag.Float64("capacity", 1.0, "admission budget: summed modelled seconds/tick of running sessions")
		maxRun    = flag.Int("max-sessions", 16, "maximum concurrently running sessions")
		chunk     = flag.Int("chunk-ticks", 25, "default ticks per chunk (pause/checkpoint granularity)")
		queueCap  = flag.Int("subscriber-queue", 65536, "per-subscriber egress queue capacity in records")
		cacheB    = flag.Int64("model-cache-bytes", 2<<30, "model image cache byte budget (negative disables residency; in-flight dedup stays on)")
		memB      = flag.Int64("memory-budget-bytes", 0, "resident-byte admission budget across running sessions; shared images charged once (0 = unlimited)")
		addrFile  = flag.String("addr-file", "", "write the bound control and stream addresses to this file (for scripts using :0)")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "HTTP connection drain bound during shutdown")
		batch     = flag.Bool("batch", true, "advance same-model same-decomposition sessions under one shared batched tick loop")
		workers   = flag.Int("max-extra-workers", 0, "daemon-wide budget of extra worker goroutines shared by compiles, image builds, and session rank teams (0 = GOMAXPROCS, negative = unlimited)")
	)
	flag.Parse()

	srv := server.New(server.Options{
		HTTPAddr:      *listen,
		StreamAddr:    *stream,
		CheckpointDir: *ckptDir,
		Manager: server.ManagerOptions{
			CapacitySecondsPerTick: *capacity,
			MaxRunning:             *maxRun,
			ChunkTicks:             *chunk,
			SubscriberQueue:        *queueCap,
			ModelCacheBytes:        *cacheB,
			MemoryBudgetBytes:      *memB,
			DisableBatch:           !*batch,
			MaxExtraWorkers:        *workers,
		},
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "compassd:", err)
		os.Exit(1)
	}
	fmt.Printf("compassd: control plane on %s, stream plane on %s\n", srv.HTTPAddr(), srv.StreamAddr())
	if *addrFile != "" {
		body := fmt.Sprintf("http=%s\nstream=%s\n", srv.HTTPAddr(), srv.StreamAddr())
		if err := writeFileAtomic(*addrFile, body); err != nil {
			fmt.Fprintln(os.Stderr, "compassd: addr-file:", err)
			os.Exit(1)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	<-ctx.Done()
	stop()
	fmt.Println("compassd: shutting down, draining sessions to checkpoints...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "compassd: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("compassd: bye")
}

// writeFileAtomic writes content via a temp file + rename so a watcher
// polling the path never reads a partial file.
func writeFileAtomic(path, content string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strings.TrimLeft(content, "\n")), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
