package server

import (
	"sync"
	"testing"
	"time"

	sim "github.com/cognitive-sim/compass/internal/compass"
)

// TestQueuedCancelPromotionRace regression-tests the admission
// accounting race where a queued session cancelled concurrently with a
// promotion sweep could be charged capacity without its runner ever
// launching — leaking the slot forever. Each round parks one session in
// the single running slot, queues a victim behind it, then races the
// victim's cancellation against the holder's completion (whose release
// triggers promotion). Whatever interleaving wins, the accounting must
// return to zero and the slot must stay usable.
func TestQueuedCancelPromotionRace(t *testing.T) {
	srv := startTestServer(t, ManagerOptions{
		CapacitySecondsPerTick: 1e9,
		MaxRunning:             1,
		ChunkTicks:             5,
	})
	mgr := srv.Manager()
	cfg := sim.Config{Ranks: 1, ThreadsPerRank: 1, Transport: sim.TransportShmem}

	for i := 0; i < 25; i++ {
		holder, err := mgr.Create(CreateParams{
			Name: "holder", Model: testModel(2, uint64(1000+i)),
			Cfg: cfg, Ticks: 5, StartPaused: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		victim, err := mgr.Create(CreateParams{
			Name: "victim", Model: testModel(2, uint64(2000+i)),
			Cfg: cfg, Ticks: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if st := victim.State(); st != StateQueued {
			t.Fatalf("round %d: victim state %s, want queued", i, st)
		}

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := mgr.Stop(victim.ID); err != nil {
				t.Errorf("stop victim: %v", err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := holder.Resume(); err != nil {
				t.Errorf("resume holder: %v", err)
			}
		}()
		wg.Wait()
		holder.Wait()
		victim.Wait()

		// The victim either died in the queue or won promotion first and
		// was cancelled (or even finished) as a running session; every
		// outcome is legal, but none may strand accounting.
		if st := victim.State(); !st.Terminal() {
			t.Fatalf("round %d: victim state %s, want terminal", i, st)
		}
		if err := mgr.Remove(holder.ID); err != nil {
			t.Fatal(err)
		}
		if err := mgr.Remove(victim.ID); err != nil {
			t.Fatal(err)
		}
	}

	running, queued, total := mgr.Counts()
	if running != 0 || queued != 0 || total != 0 {
		t.Fatalf("sessions leaked: running=%d queued=%d total=%d", running, queued, total)
	}
	if used := mgr.UsedCapacity(); used != 0 {
		t.Fatalf("capacity leak: %v modelled seconds/tick still charged", used)
	}
	if mem := mgr.MemoryUsed(); mem != 0 {
		t.Fatalf("memory leak: %d bytes still charged", mem)
	}

	// The single running slot must still be grantable: a leaked
	// m.running count would queue this forever.
	s, err := mgr.Create(CreateParams{
		Name: "after", Model: testModel(2, 3000), Cfg: cfg, Ticks: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.WaitState(30*time.Second, func(st State) bool { return st == StateDone }) {
		t.Fatalf("slot leaked: follow-up session stuck in %s", s.State())
	}
}
