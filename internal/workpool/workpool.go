// Package workpool provides the shared worker-team primitives behind
// Compass's parallel phases: a persistent Pool of goroutines dispatched
// once per phase (the simulator's per-rank thread team, mirroring the
// paper's OpenMP threads), and a bounded deterministic parallel-for
// (ForEach) used by the compiler's per-core instantiation, the image
// builder's kernel construction, and IPFP sweep scaling.
//
// Both primitives are deterministic by construction as long as the work
// items are independent: every item runs exactly once with the same
// inputs regardless of worker count, so any computation whose items do
// not communicate produces bit-identical results serial or parallel.
package workpool

import (
	"context"
	"runtime/pprof"
	"sync"
)

// Pool is a persistent team of threads-1 goroutines that lives for a
// whole run, replacing per-phase goroutine spawning. Thread 0 runs on
// the caller; workers i = 1..threads-1 block on their own channel
// between dispatches.
type Pool struct {
	work []chan task
}

// task is one parallel phase dispatched to every worker.
type task struct {
	fn func(tid int)
	wg *sync.WaitGroup
}

// New starts the workers for a pool of the given thread count; it
// returns nil when one thread needs no pool (every method is nil-safe).
// label, when non-nil, returns pprof label key/value pairs for worker
// tid, so CPU profiles of a run break down by owner and worker.
func New(threads int, label func(tid int) []string) *Pool {
	if threads <= 1 {
		return nil
	}
	p := &Pool{work: make([]chan task, threads-1)}
	for i := range p.work {
		ch := make(chan task, 1)
		p.work[i] = ch
		go func(tid int) {
			if label != nil {
				pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
					pprof.Labels(label(tid)...)))
			}
			for t := range ch {
				t.fn(tid)
				t.wg.Done()
			}
		}(i + 1)
	}
	return p
}

// Run executes fn(tid) for every tid concurrently: each worker gets one
// dispatch, the caller runs tid 0, and Run returns when all are done. A
// nil pool runs fn(0) on the caller.
func (p *Pool) Run(fn func(tid int)) {
	if p == nil {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(p.work))
	for _, ch := range p.work {
		ch <- task{fn: fn, wg: &wg}
	}
	fn(0)
	wg.Wait()
}

// Stop terminates the workers; the pool must not be used afterwards.
func (p *Pool) Stop() {
	if p == nil {
		return
	}
	for _, ch := range p.work {
		close(ch)
	}
}

// ForEach runs fn(i) for every i in [0, n) across up to workers
// goroutines, partitioning the index space into contiguous blocks, and
// returns when every call is done. workers <= 1 (or n <= 1) runs on the
// caller. fn must treat items as independent; under that contract the
// results are identical for every worker count.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
