package reshape

import (
	"bytes"
	"reflect"
	"testing"

	sim "github.com/cognitive-sim/compass/internal/compass"
	"github.com/cognitive-sim/compass/internal/coreobject"
	"github.com/cognitive-sim/compass/internal/prng"
	"github.com/cognitive-sim/compass/internal/truenorth"
)

// reshapeModel builds a stochastic model with heavy cross-core traffic:
// stochastic weights and leak make every reshape also prove that the
// per-core PRNG streams survive repartitioning bit-exactly.
func reshapeModel(nCores int, seed uint64) *truenorth.Model {
	r := prng.New(seed)
	m := &truenorth.Model{Seed: seed}
	for k := 0; k < nCores; k++ {
		cfg := &truenorth.CoreConfig{ID: truenorth.CoreID(k)}
		for a := 0; a < truenorth.CoreSize; a++ {
			cfg.AxonTypes[a] = uint8(r.Intn(truenorth.NumAxonTypes))
			for s := 0; s < 5; s++ {
				cfg.SetSynapse(a, r.Intn(truenorth.CoreSize), true)
			}
		}
		for j := 0; j < truenorth.CoreSize; j++ {
			cfg.Neurons[j] = truenorth.NeuronParams{
				Weights:          [truenorth.NumAxonTypes]int16{120, -48, 160, 80},
				StochasticWeight: [truenorth.NumAxonTypes]bool{true, false, true, false},
				Leak:             48,
				StochasticLeak:   true,
				Threshold:        int32(2 + r.Intn(4)),
				Reset:            0,
				Floor:            -24,
				Target: truenorth.SpikeTarget{
					Core:  truenorth.CoreID(r.Intn(nCores)),
					Axon:  uint16(r.Intn(truenorth.CoreSize)),
					Delay: uint8(1 + r.Intn(truenorth.MaxDelay)),
				},
				Enabled: true,
			}
		}
		m.Cores = append(m.Cores, cfg)
	}
	for tick := uint64(0); tick < 8; tick++ {
		for a := 0; a < 24; a++ {
			m.Inputs = append(m.Inputs, truenorth.InputSpike{
				Tick: tick,
				Core: truenorth.CoreID(int(tick+uint64(a)) % nCores),
				Axon: uint16(a * 11 % truenorth.CoreSize),
			})
		}
	}
	return m
}

// scheduleSource is a CSTR-style live input stream with a fixed
// tick→spike schedule, so chunked/reshaped and straight runs observe
// identical injections at every tick.
type scheduleSource struct {
	byTick map[uint64][]truenorth.InputSpike
}

func newScheduleSource(nCores int, upTo uint64) *scheduleSource {
	s := &scheduleSource{byTick: make(map[uint64][]truenorth.InputSpike)}
	for t := uint64(3); t < upTo; t += 5 { // mid-stream, straddles chunk boundaries
		for a := 0; a < 9; a++ {
			s.byTick[t] = append(s.byTick[t], truenorth.InputSpike{
				Tick: t,
				Core: truenorth.CoreID((int(t) + a*3) % nCores),
				Axon: uint16((int(t)*13 + a*29) % truenorth.CoreSize),
			})
		}
	}
	return s
}

func (s *scheduleSource) SpikesFor(t uint64) []truenorth.InputSpike { return s.byTick[t] }

func checkpointBytes(t *testing.T, cp *truenorth.Checkpoint) []byte {
	t.Helper()
	if cp == nil {
		t.Fatal("missing checkpoint")
	}
	var buf bytes.Buffer
	if err := coreobject.WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReshapeDeterminism is the elastic-repartitioning contract test: a
// run that reshapes at EVERY chunk boundary — cycling the rank count
// through 1→N→1 shapes with telemetry-driven placements — produces a
// byte-identical spike trace and final checkpoint to the same ticks run
// straight through with no reshape, on all three transports, with live
// CSTR injection mid-stream.
func TestReshapeDeterminism(t *testing.T) {
	const (
		nCores = 8
		chunk  = 6
		chunks = 6 // 36 ticks, 5 reshape boundaries
		ticks  = chunk * chunks
	)
	m := reshapeModel(nCores, 0xE1A57)
	img, err := truenorth.NewImage(m)
	if err != nil {
		t.Fatal(err)
	}
	src := newScheduleSource(nCores, ticks)

	// Straight reference run, never reshaped.
	ref, err := sim.Run(m, sim.Config{
		Ranks: 2, ThreadsPerRank: 2,
		RecordTrace: true, ReturnState: true, InputSource: src,
	}, ticks)
	if err != nil {
		t.Fatal(err)
	}
	refCP := checkpointBytes(t, ref.Final)

	// Rank shapes applied at successive boundaries: down to 1, up to the
	// core count, and back — with a couple of odd sizes in between.
	shapes := []int{1, nCores, 3, 5, 1}

	for _, tr := range []sim.Transport{sim.TransportMPI, sim.TransportPGAS, sim.TransportShmem} {
		t.Run(tr.String(), func(t *testing.T) {
			cfg := sim.Config{
				Ranks: 2, ThreadsPerRank: 2, Transport: tr,
				RecordTrace: true, ReturnState: true, InputSource: src,
			}
			var cp *truenorth.Checkpoint
			var trace []truenorth.SpikeEvent
			for c := 0; c < chunks; c++ {
				run := cfg
				run.StartFrom = cp
				stats, err := sim.RunImage(img, run, chunk)
				if err != nil {
					t.Fatalf("chunk %d: %v", c, err)
				}
				trace = append(trace, stats.Trace...)
				cp = stats.Final
				if c == chunks-1 {
					break
				}
				// Reshape at the boundary from the chunk's own telemetry.
				plan, err := Compute(cfg.Placement(nCores), LoadsFromStats(stats), shapes[c])
				if err != nil {
					t.Fatalf("boundary %d: %v", c, err)
				}
				if plan.Ranks != shapes[c] {
					t.Fatalf("boundary %d: plan has %d ranks, want %d", c, plan.Ranks, shapes[c])
				}
				cfg, err = cfg.Reshape(img, plan.ReshapePlan)
				if err != nil {
					t.Fatalf("boundary %d: %v", c, err)
				}
			}
			if !reflect.DeepEqual(trace, ref.Trace) {
				t.Fatalf("reshaped trace differs: %d events vs %d in straight run", len(trace), len(ref.Trace))
			}
			if got := checkpointBytes(t, cp); !bytes.Equal(got, refCP) {
				t.Fatal("reshaped final checkpoint is not byte-identical to straight run")
			}
		})
	}
}

// TestReshapeDeterminismBatchedLane: the same contract must hold when
// the reshaped session runs as a lane of a batched group. Lane 0 (with
// live CSTR injection) and lane 1 both reshape with the group at every
// window boundary; each lane's accumulated trace and final checkpoint
// must match its own solo, never-reshaped run byte for byte.
func TestReshapeDeterminismBatchedLane(t *testing.T) {
	const (
		nCores  = 8
		window  = 6
		windows = 4 // 24 ticks, 3 reshape boundaries
		ticks   = window * windows
	)
	m := reshapeModel(nCores, 0xBA7C4)
	img, err := truenorth.NewImage(m)
	if err != nil {
		t.Fatal(err)
	}
	src := newScheduleSource(nCores, ticks)

	solo := func(in sim.InputSource) *sim.RunStats {
		stats, err := sim.Run(m, sim.Config{
			Ranks: 2, ThreadsPerRank: 2,
			RecordTrace: true, ReturnState: true, InputSource: in,
		}, ticks)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	ref0, ref1 := solo(src), solo(nil)

	shapes := []int{1, 4, 2}
	cfg := sim.Config{Ranks: 2, ThreadsPerRank: 2, RecordTrace: true, ReturnState: true}
	lanes := []sim.BatchLane{{InputSource: src}, {}}
	var traces [2][]truenorth.SpikeEvent
	var cps [2]*truenorth.Checkpoint
	for w := 0; w < windows; w++ {
		res, err := sim.RunBatch(img, cfg, window, lanes)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		for s, stats := range res.Lanes {
			traces[s] = append(traces[s], stats.Trace...)
			cps[s] = stats.Final
			lanes[s].StartFrom = stats.Final
		}
		if w == windows-1 {
			break
		}
		// Reshape the whole group from lane 0's measured loads.
		plan, err := Compute(cfg.Placement(nCores), LoadsFromStats(res.Lanes[0]), shapes[w])
		if err != nil {
			t.Fatalf("boundary %d: %v", w, err)
		}
		cfg, err = cfg.Reshape(img, plan.ReshapePlan)
		if err != nil {
			t.Fatalf("boundary %d: %v", w, err)
		}
	}
	for s, ref := range []*sim.RunStats{ref0, ref1} {
		if !reflect.DeepEqual(traces[s], ref.Trace) {
			t.Fatalf("lane %d reshaped trace differs: %d events vs %d solo", s, len(traces[s]), len(ref.Trace))
		}
		want := checkpointBytes(t, ref.Final)
		if got := checkpointBytes(t, cps[s]); !bytes.Equal(got, want) {
			t.Fatalf("lane %d reshaped checkpoint is not byte-identical to its solo run", s)
		}
	}
}
