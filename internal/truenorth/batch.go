package truenorth

import (
	"fmt"

	"github.com/cognitive-sim/compass/internal/prng"
)

// MaxLanes is the largest number of sessions one batch group can
// advance together. The bound comes from the spike wire format (the
// lane rides one byte, see SpikeTarget.Lane) and from the batched
// scheduler's per-destination lane bitmasks, which use one uint64 word.
const MaxLanes = 64

// CoreLanes is the batched-execution state of one core: the runtime
// state of every session lane laid out contiguously, so a sweep that
// iterates cores in the outer loop and lanes in the inner loop touches
// the core's shared immutable half (crossbar planes, the bit-parallel
// kernel, neuron parameters) once per tick while walking the lanes'
// membrane potentials, delay rings, and PRNG streams sequentially in
// memory. One CoreLanes with n lanes is bit-equivalent to n private
// Cores built by Image.NewCore: the Core values only differ in where
// they live.
type CoreLanes struct {
	// lanes[s] is session lane s's live core state; the backing array is
	// one contiguous allocation. rngs keeps the per-lane PRNG streams
	// contiguous too (Core holds its stream by pointer).
	lanes []Core
	rngs  []prng.Stream
}

// NewCoreLanes instantiates batched runtime state for core i: n session
// lanes, each starting at the identical initial state Image.NewCore
// would produce. n must be in [1, MaxLanes].
func (img *Image) NewCoreLanes(i, n int) (*CoreLanes, error) {
	if n < 1 || n > MaxLanes {
		return nil, fmt.Errorf("truenorth: %d lanes outside [1,%d]", n, MaxLanes)
	}
	cfg := img.cores[i]
	cl := &CoreLanes{
		lanes: make([]Core, n),
		rngs:  make([]prng.Stream, n),
	}
	for s := 0; s < n; s++ {
		cl.rngs[s] = *prng.NewCoreStream(img.seed, uint64(cfg.ID))
		cl.lanes[s] = Core{
			cfg:     cfg,
			rng:     &cl.rngs[s],
			kern:    img.kernels[i],
			passive: img.passive[i],
		}
	}
	return cl, nil
}

// NumLanes returns the number of session lanes.
func (cl *CoreLanes) NumLanes() int { return len(cl.lanes) }

// Lane returns session lane s's live core state. The pointer stays
// valid for the CoreLanes' lifetime; all lanes share one backing array.
func (cl *CoreLanes) Lane(s int) *Core { return &cl.lanes[s] }

// ID returns the global core ID all lanes share.
func (cl *CoreLanes) ID() CoreID { return cl.lanes[0].cfg.ID }

// Config returns the shared core configuration.
func (cl *CoreLanes) Config() *CoreConfig { return cl.lanes[0].cfg }

// ForceScalar pins every lane to the scalar Synapse path and disables
// quiescent-core skipping, mirroring Core.ForceScalar.
func (cl *CoreLanes) ForceScalar() {
	for s := range cl.lanes {
		cl.lanes[s].ForceScalar()
	}
}
