package balance

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/cognitive-sim/compass/internal/prng"
)

func randomPositiveMatrix(n int, seed uint64) [][]float64 {
	r := prng.New(seed)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = 0.05 + r.Float64()
		}
	}
	return m
}

func TestDoublyStochasticConvergence(t *testing.T) {
	for _, n := range []int{2, 5, 20, 77} {
		m := randomPositiveMatrix(n, uint64(n))
		res, err := DoublyStochastic(m, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Residual > 1e-9 {
			t.Fatalf("n=%d: residual %g", n, res.Residual)
		}
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		if r := Residual(res.Matrix, ones, ones); r > 1e-8 {
			t.Fatalf("n=%d: recomputed residual %g", n, r)
		}
	}
}

func TestIPFPPrescribedMarginals(t *testing.T) {
	// Paper setting: row and column sums both equal the region "volume".
	vol := []float64{5, 1, 3, 8, 2.5}
	m := randomPositiveMatrix(len(vol), 99)
	res, err := IPFP(m, vol, vol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Matrix {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-vol[i]) > 1e-6*vol[i] {
			t.Fatalf("row %d sums to %g, want %g", i, sum, vol[i])
		}
	}
	for j := range vol {
		sum := 0.0
		for i := range res.Matrix {
			sum += res.Matrix[i][j]
		}
		if math.Abs(sum-vol[j]) > 1e-6*vol[j] {
			t.Fatalf("column %d sums to %g, want %g", j, sum, vol[j])
		}
	}
}

func TestIPFPPreservesZeroPattern(t *testing.T) {
	m := [][]float64{
		{1, 1, 0},
		{0, 1, 1},
		{1, 0, 1},
	}
	vol := []float64{2, 3, 4}
	res, err := IPFP(m, vol, vol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		for j := range m[i] {
			if m[i][j] == 0 && res.Matrix[i][j] != 0 {
				t.Fatalf("zero entry (%d,%d) became %g", i, j, res.Matrix[i][j])
			}
			if m[i][j] > 0 && res.Matrix[i][j] <= 0 {
				t.Fatalf("positive entry (%d,%d) became %g", i, j, res.Matrix[i][j])
			}
		}
	}
}

func TestIPFPInputNotModified(t *testing.T) {
	m := [][]float64{{1, 2}, {3, 4}}
	orig := [][]float64{{1, 2}, {3, 4}}
	if _, err := DoublyStochastic(m, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := range m {
		for j := range m[i] {
			if m[i][j] != orig[i][j] {
				t.Fatal("IPFP modified its input")
			}
		}
	}
}

func TestIPFPZeroTargetZeroesRow(t *testing.T) {
	m := [][]float64{
		{1, 1},
		{1, 1},
	}
	res, err := IPFP(m, []float64{0, 2}, []float64{1, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix[0][0] != 0 || res.Matrix[0][1] != 0 {
		t.Fatalf("zero-target row not zeroed: %v", res.Matrix[0])
	}
}

func TestIPFPValidation(t *testing.T) {
	good := [][]float64{{1, 1}, {1, 1}}
	vol := []float64{1, 1}
	cases := []struct {
		name string
		m    [][]float64
		r, c []float64
	}{
		{"empty", [][]float64{}, nil, nil},
		{"ragged", [][]float64{{1, 2}, {3}}, vol, vol},
		{"negative entry", [][]float64{{1, -1}, {1, 1}}, vol, vol},
		{"nan entry", [][]float64{{1, math.NaN()}, {1, 1}}, vol, vol},
		{"marginal length", good, []float64{1}, vol},
		{"negative target", good, []float64{-1, 3}, vol},
		{"inconsistent totals", good, []float64{1, 1}, []float64{5, 5}},
		{"all zero targets", good, []float64{0, 0}, []float64{0, 0}},
		{"empty row with target", [][]float64{{0, 0}, {1, 1}}, vol, vol},
		{"empty column with target", [][]float64{{0, 1}, {0, 1}}, vol, vol},
	}
	for _, tc := range cases {
		if _, err := IPFP(tc.m, tc.r, tc.c, Options{}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestIPFPInfeasiblePatternDetected(t *testing.T) {
	// Block-diagonal pattern with block totals that disagree between rows
	// and columns is infeasible: rows demand 10 units inside block 1 but
	// columns only allow 1.
	m := [][]float64{
		{1, 0},
		{0, 1},
	}
	_, err := IPFP(m, []float64{10, 1}, []float64{1, 10}, Options{MaxIter: 200})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("infeasible balancing returned %v, want ErrNotConverged", err)
	}
}

func TestQuickIPFPConvergesOnPositiveMatrices(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%10) + 2
		m := randomPositiveMatrix(n, seed)
		r := prng.New(seed ^ 0xabcdef)
		vol := make([]float64, n)
		for i := range vol {
			vol[i] = 1 + 9*r.Float64()
		}
		res, err := IPFP(m, vol, vol, Options{Tol: 1e-8})
		return err == nil && res.Residual <= 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundToIntegerRowSumsExact(t *testing.T) {
	m := [][]float64{
		{2.4, 2.6, 0},
		{1.1, 1.1, 7.8},
	}
	out := RoundToInteger(m, []float64{5, 10})
	for i, want := range []int{5, 10} {
		sum := 0
		for _, v := range out[i] {
			sum += v
		}
		if sum != want {
			t.Fatalf("row %d integer sum = %d, want %d", i, sum, want)
		}
	}
	// Zero weights must receive zero units.
	if out[0][2] != 0 {
		t.Fatalf("zero weight received %d units", out[0][2])
	}
}

func TestQuickRoundToIntegerProperties(t *testing.T) {
	f := func(seed uint64, nRaw, targetRaw uint8) bool {
		n := int(nRaw%12) + 1
		target := int(targetRaw % 100)
		r := prng.New(seed)
		w := make([]float64, n)
		anyPositive := false
		for i := range w {
			if r.Bernoulli(0.7) {
				w[i] = r.Float64() + 0.01
				anyPositive = true
			}
		}
		if !anyPositive {
			w[0] = 1
		}
		out := RoundToInteger([][]float64{w}, []float64{float64(target)})
		sum := 0
		for j, v := range out[0] {
			if v < 0 {
				return false
			}
			if w[j] == 0 && v != 0 {
				return false
			}
			sum += v
		}
		return sum == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIPFP77(b *testing.B) {
	// The CoCoMac reduced network is 77 regions; this is the compiler's
	// balancing workload.
	m := randomPositiveMatrix(77, 1)
	vol := make([]float64, 77)
	r := prng.New(2)
	for i := range vol {
		vol[i] = 1 + 9*r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IPFP(m, vol, vol, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
