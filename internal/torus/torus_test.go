package torus

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("empty dims accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Fatal("zero dim accepted")
	}
	tp, err := New(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Nodes() != 32 {
		t.Fatalf("Nodes = %d", tp.Nodes())
	}
}

func TestBalancedExactFactorization(t *testing.T) {
	for _, nodes := range []int{1, 2, 8, 64, 1024, 16384} {
		tp, err := Balanced(nodes, 5)
		if err != nil {
			t.Fatal(err)
		}
		if tp.Nodes() != nodes {
			t.Fatalf("Balanced(%d, 5) has %d nodes", nodes, tp.Nodes())
		}
		if len(tp.Dims) != 5 {
			t.Fatalf("Balanced(%d, 5) has %d dims", nodes, len(tp.Dims))
		}
	}
}

func TestBalancedShapeIsCompact(t *testing.T) {
	tp, err := Balanced(1024, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 1024 = 2^10 over 5 dims: perfect shape is 4×4×4×4×4.
	for _, d := range tp.Dims {
		if d != 4 {
			t.Fatalf("Balanced(1024, 5) dims %v, want all 4", tp.Dims)
		}
	}
}

func TestCoordRankRoundtrip(t *testing.T) {
	tp, err := New(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tp.Nodes(); r++ {
		if got := tp.Rank(tp.Coord(r)); got != r {
			t.Fatalf("roundtrip rank %d -> %v -> %d", r, tp.Coord(r), got)
		}
	}
}

func TestQuickCoordRankRoundtrip(t *testing.T) {
	f := func(a, b, c uint8, rRaw uint16) bool {
		dims := []int{int(a%6) + 1, int(b%6) + 1, int(c%6) + 1}
		tp, err := New(dims...)
		if err != nil {
			return false
		}
		r := int(rRaw) % tp.Nodes()
		return tp.Rank(tp.Coord(r)) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopDistanceWraparound(t *testing.T) {
	tp, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if d := tp.HopDistance(0, 7); d != 1 {
		t.Fatalf("ring wraparound distance = %d, want 1", d)
	}
	if d := tp.HopDistance(0, 4); d != 4 {
		t.Fatalf("antipodal distance = %d, want 4", d)
	}
	if d := tp.HopDistance(3, 3); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

func TestHopDistanceSymmetric(t *testing.T) {
	tp, err := New(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < tp.Nodes(); a++ {
		for b := 0; b < tp.Nodes(); b++ {
			if tp.HopDistance(a, b) != tp.HopDistance(b, a) {
				t.Fatalf("asymmetric distance between %d and %d", a, b)
			}
			if tp.HopDistance(a, b) > tp.Diameter() {
				t.Fatalf("distance %d exceeds diameter %d", tp.HopDistance(a, b), tp.Diameter())
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	tp, _ := New(8, 8, 16)
	if d := tp.Diameter(); d != 4+4+8 {
		t.Fatalf("Diameter = %d, want 16", d)
	}
}

func TestAvgDistanceMatchesExhaustive(t *testing.T) {
	tp, _ := New(4, 5, 2)
	sum := 0
	n := tp.Nodes()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			sum += tp.HopDistance(a, b)
		}
	}
	exact := float64(sum) / float64(n*n)
	if math.Abs(tp.AvgDistance()-exact) > 1e-12 {
		t.Fatalf("AvgDistance = %v, exhaustive %v", tp.AvgDistance(), exact)
	}
}

func TestBisectionLinks(t *testing.T) {
	tp, _ := New(8, 8, 16)
	// Largest dim 16: bisection = 2 × 1024/16 = 128 links.
	if got := tp.BisectionLinks(); got != 128 {
		t.Fatalf("BisectionLinks = %d, want 128", got)
	}
	single, _ := New(1)
	if single.BisectionLinks() != 0 {
		t.Fatal("single node has a bisection")
	}
}

func TestLinksPerNode(t *testing.T) {
	bgq, _ := New(4, 4, 4, 8, 2)
	if got := bgq.LinksPerNode(); got != 10 {
		t.Fatalf("BG/Q links per node = %d, want 10", got)
	}
	bgp, _ := New(8, 8, 16)
	if got := bgp.LinksPerNode(); got != 6 {
		t.Fatalf("BG/P links per node = %d, want 6", got)
	}
}

func TestCanonicalShapes(t *testing.T) {
	for racks, wantNodes := range map[int]int{1: 1024, 2: 2048, 4: 4096, 8: 8192, 16: 16384} {
		dims, err := BGQDims(racks)
		if err != nil {
			t.Fatal(err)
		}
		tp, _ := New(dims...)
		if tp.Nodes() != wantNodes {
			t.Fatalf("BGQ %d racks: %d nodes, want %d", racks, tp.Nodes(), wantNodes)
		}
		if len(dims) != 5 {
			t.Fatalf("BGQ shape must be 5-D, got %v", dims)
		}
	}
	for racks, wantNodes := range map[int]int{1: 1024, 2: 2048, 4: 4096} {
		dims, err := BGPDims(racks)
		if err != nil {
			t.Fatal(err)
		}
		tp, _ := New(dims...)
		if tp.Nodes() != wantNodes {
			t.Fatalf("BGP %d racks: %d nodes, want %d", racks, tp.Nodes(), wantNodes)
		}
		if len(dims) != 3 {
			t.Fatalf("BGP shape must be 3-D, got %v", dims)
		}
	}
	if _, err := BGQDims(3); err == nil {
		t.Fatal("non-canonical rack count accepted")
	}
	if _, err := BGPDims(16); err == nil {
		t.Fatal("non-canonical BG/P rack count accepted")
	}
}
